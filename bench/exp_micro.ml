(* Bechamel micro-benchmarks of the profiler's hot paths: the signature vs
   exact shadow memory, engine throughput with and without §2.4 skipping,
   and the two lock-free queues. These measure the per-operation costs that
   the whole-program slowdowns of Fig 2.9/2.12 are built from. *)

open Bechamel
open Toolkit

let fig27_access_stream () =
  (* pre-record a workload's access stream so the engine is measured alone *)
  let prog = Workloads.Registry.program ~size:400 (List.hd Workloads.Textbook.all) in
  let acc = ref [] in
  let _ =
    Mil.Interp.run
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Access a -> acc := a :: !acc
        | Trace.Event.Region _ -> ())
      prog
  in
  Array.of_list (List.rev !acc)

let tests () =
  let stream = fig27_access_stream () in
  let feed engine () = Array.iter (Profiler.Engine.feed_access engine) stream in
  let cell =
    Sigmem.Cell.v ~line:1 ~var:(Trace.Intern.Sym.intern "x") ~thread:0 ~time:1
      ~op:0 ~lstack:Trace.Intern.Lstack.empty ~locked:false
  in
  let r = Sigmem.Cell.scratch () and w = Sigmem.Cell.scratch () in
  [ Test.make ~name:"engine/signature"
      (Staged.stage (fun () ->
           feed (Profiler.Engine.create (Profiler.Engine.Signature 65_536)) ()));
    Test.make ~name:"engine/signature+skip"
      (Staged.stage (fun () ->
           feed
             (Profiler.Engine.create ~skip:true
                (Profiler.Engine.Signature 65_536))
             ()));
    Test.make ~name:"engine/perfect"
      (Staged.stage (fun () ->
           feed (Profiler.Engine.create Profiler.Engine.Perfect) ()));
    Test.make ~name:"shadow/signature-rw"
      (Staged.stage (fun () ->
           let s = Sigmem.Signature.create ~slots:65_536 in
           for a = 0 to 4_095 do
             let h = Sigmem.Signature.load s ~addr:a r w in
             Sigmem.Signature.store_write s h cell
           done));
    Test.make ~name:"shadow/perfect-rw"
      (Staged.stage (fun () ->
           let s = Sigmem.Perfect.create ~slots:0 in
           for a = 0 to 4_095 do
             let h = Sigmem.Perfect.load s ~addr:a r w in
             Sigmem.Perfect.store_write s h cell
           done));
    Test.make ~name:"shadow/paged-rw"
      (Staged.stage (fun () ->
           let s = Sigmem.Two_level.create ~slots:0 in
           for a = 0 to 4_095 do
             let h = Sigmem.Two_level.load s ~addr:a r w in
             Sigmem.Two_level.store_write s h cell
           done));
    Test.make ~name:"queue/spsc-push-pop"
      (Staged.stage (fun () ->
           let q = Profiler.Spsc_queue.create ~capacity:64 in
           for k = 0 to 4_095 do
             ignore (Profiler.Spsc_queue.try_push q k);
             ignore (Profiler.Spsc_queue.try_pop q)
           done));
    Test.make ~name:"queue/mpsc-push-pop"
      (Staged.stage (fun () ->
           let q = Profiler.Mpsc_queue.create () in
           for k = 0 to 4_095 do
             Profiler.Mpsc_queue.push q k;
             ignore (Profiler.Mpsc_queue.try_pop q)
           done)) ]

let run () =
  Util.header "Bechamel micro-benchmarks (ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols_results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        ols_results)
    (tests ())
