(* Loop-parallelism detection experiments:
   - Table 4.1: detection of parallelisable loops in the NAS programs
     (the paper's 92.5% headline);
   - Table 4.3: suggestions for the histogram-visualization program;
   - Table 4.4: detection of inter-iteration (DOACROSS) structure in the
     biggest hot loops of Starbench and NAS. *)

module L = Discovery.Loops
module R = Workloads.Registry

let run_nas () =
  Util.header "Table 4.1: detection of parallelizable loops (NAS)";
  let all_results = ref [] in
  let rows =
    List.map
      (fun (w : R.t) ->
        let results = Workloads.Score.score_workload w in
        all_results := !all_results @ results;
        let s = Workloads.Score.summarise results in
        [ w.R.name;
          string_of_int s.Workloads.Score.parallel_truth;
          string_of_int s.Workloads.Score.parallel_found;
          string_of_int s.Workloads.Score.false_parallel;
          Util.pct (Workloads.Score.detection_rate s) ])
      Util.nas
  in
  Util.table
    ~columns:[ "program"; "parallel loops"; "identified"; "false+"; "rate" ]
    rows;
  let s = Workloads.Score.summarise !all_results in
  Printf.printf "overall: %d/%d identified (%s), %d false positives\n"
    s.Workloads.Score.parallel_found s.Workloads.Score.parallel_truth
    (Util.pct (Workloads.Score.detection_rate s))
    s.Workloads.Score.false_parallel;
  print_endline "(paper: 92.5% of the parallelized NAS loops identified)"

let run_histogram () =
  Util.header "Table 4.3: suggestions for histogram visualization";
  let w = List.find (fun w -> w.R.name = "histo_vis") Workloads.Textbook.all in
  let report = Util.analyze_cached w in
  print_string (Discovery.Suggestion.render report);
  print_endline "\nloop classification with evidence:";
  List.iter
    (fun a -> Printf.printf "  %s\n" (L.to_string a))
    report.Discovery.Suggestion.loops

let run_doacross () =
  Util.header
    "Table 4.4: DOACROSS detection in the hot loops of Starbench and NAS";
  let interesting =
    [ "tinyjpeg"; "bodytrack"; "h264dec"; "CG"; "IS"; "LU"; "gauss_seidel" ]
  in
  let rows =
    List.concat_map
      (fun (w : R.t) ->
        if not (List.mem w.R.name interesting) then []
        else begin
          let report = Util.analyze_cached w in
          (* the biggest hot loop by instructions *)
          match
            List.sort
              (fun (a : L.analysis) b -> compare b.L.instructions a.L.instructions)
              report.Discovery.Suggestion.loops
          with
          | [] -> []
          | hot :: _ ->
              [ [ w.R.name;
                  Printf.sprintf "loop@%d" hot.L.loop_line;
                  string_of_int hot.L.instructions;
                  L.class_to_string hot.L.cls;
                  string_of_int (List.length hot.L.blocking);
                  string_of_int (List.length hot.L.body_cus);
                  string_of_int hot.L.free_cus ] ]
        end)
      (Util.starbench_seq @ Util.nas @ Workloads.Textbook.all)
  in
  Util.table
    ~columns:
      [ "program"; "hot loop"; "instr"; "class"; "blocking"; "body CUs";
        "free CUs" ]
    rows;
  print_endline
    "(paper: hot loops split between DOALL and DOACROSS; rgbyuv-style loops\n\
    \ pipeline their body CUs around the carried accumulator)"
