(* Shared benchmark utilities: robust timing, table rendering, and the
   workload sets each experiment sweeps over. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Median of [reps] timings; the first (warm-up) run is discarded. *)
let med_time ?(reps = 3) f =
  ignore (f ());
  let ts =
    List.init reps (fun _ ->
        let _, t = time f in
        t)
    |> List.sort compare
  in
  List.nth ts (reps / 2)

let header title = Printf.printf "\n==== %s ====\n" title

let row fmt = Printf.printf fmt

(* Render a simple aligned table. *)
let table ~columns (rows : string list list) =
  let widths =
    List.mapi
      (fun c name ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r c)))
          (String.length name) rows)
      columns
  in
  let line cells =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      cells;
    print_newline ()
  in
  line columns;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

(* Workload sets, at bench-friendly sizes. *)
let nas = Workloads.Nas.all

let starbench_seq =
  List.filter
    (fun (w : Workloads.Registry.t) -> not w.parallel_target)
    Workloads.Starbench.all

let starbench_par =
  List.filter
    (fun (w : Workloads.Registry.t) -> w.parallel_target)
    Workloads.Starbench.all

let native_time (prog : Mil.Ast.program) =
  med_time (fun () -> Mil.Interp.run ~instrument:false prog)

(* Phase-1 memo: several experiments analyze the same workload at default
   settings; profiling dominates their cost, so a full-harness run repays
   caching the reports in-process. Keyed by workload name — registry names
   are unique and every call site uses the default analyze configuration.
   Run one experiment alone (`-e <id>`) to measure it cold. *)
let analyze_memo : (string, Discovery.Suggestion.report) Hashtbl.t =
  Hashtbl.create 32

let analyze_cached (w : Workloads.Registry.t) : Discovery.Suggestion.report =
  match Hashtbl.find_opt analyze_memo w.name with
  | Some report -> report
  | None ->
      let report = Discovery.Suggestion.analyze (Workloads.Registry.program w) in
      Hashtbl.replace analyze_memo w.name report;
      report

(* Count the distinct addresses a program touches (for Eq. 2.2 columns). *)
let count_addresses prog =
  let seen = Hashtbl.create 4096 in
  let _ =
    Mil.Interp.run
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Access a -> Hashtbl.replace seen a.Trace.Event.addr ()
        | Trace.Event.Region _ -> ())
      prog
  in
  Hashtbl.length seen
