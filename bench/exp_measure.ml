(* Measured speedups of transformed programs on the work-stealing runtime —
   the paper's evaluation tables made real instead of modeled: each workload
   is analyzed, rewritten by lib/transform, and executed under
   Mil.Par_eval on a Runtime.Pool across a 1..N domain sweep
   (Transform.Measure), with every parallel run checked for observational
   equality against the sequential original.

   Alongside the per-workload tables, the experiment correlates the
   critical-path *proxy* speedup (Validate.measure — what the ranking uses
   to order suggestions) with the speedup actually measured at the maximum
   domain count: Spearman's rank correlation, published as the
   measure.proxy_rank_corr gauge. A proxy that ranks workloads in a
   different order than the hardware does is a mis-ranking bug the modeled
   numbers alone cannot expose.

   MEASURE_WORKLOADS=name,name,... restricts the sweep (CI's measure-smoke
   runs a subset); MEASURE_DOMAINS=N caps the domain sweep (default 4).
   Note: on a single-core host the parallel runs time-slice one CPU, so
   measured speedups below 1x are expected — the equality checks and
   correlation still exercise the full runtime path. *)

module P = Transform.Parallelize
module V = Transform.Validate
module M = Transform.Measure
module R = Workloads.Registry
module S = Discovery.Suggestion

(* DOALL-rich workloads plus one fork-join decomposition (fib); all
   transformable by apply_first. *)
let sample_default =
  [ "histogram"; "mandelbrot"; "matmul"; "dotprod"; "jacobi"; "match_count";
    "fib" ]

let find_workload name =
  List.find_opt
    (fun (w : R.t) -> w.name = name)
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
   @ Workloads.Numerics.all @ Workloads.Parsec.all)

(* Spearman's rank correlation, with ties given their average rank. *)
let ranks (xs : float array) =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let rx = ranks xs and ry = ranks ys in
  let n = float_of_int (Array.length xs) in
  if n < 2.0 then 0.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. n in
    let mx = mean rx and my = mean ry in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ry.(i) -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      rx;
    if !vx <= 0.0 || !vy <= 0.0 then 0.0
    else !cov /. sqrt (!vx *. !vy)
  end

let run () =
  Util.header "Measured speedups on the work-stealing runtime";
  let names =
    match Sys.getenv_opt "MEASURE_WORKLOADS" with
    | None | Some "" -> sample_default
    | Some s -> String.split_on_char ',' s |> List.map String.trim
  in
  let domains =
    match Sys.getenv_opt "MEASURE_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some d -> max 1 d | None -> 4)
    | None -> 4
  in
  Printf.printf "  (domain sweep up to %d; host has %d cores)\n" domains
    (Domain.recommended_domain_count ());
  let results =
    List.filter_map
      (fun name ->
        match find_workload name with
        | None ->
            Printf.printf "  (measure: unknown workload %s, skipped)\n" name;
            None
        | Some w -> (
            let prog = R.program w in
            let report = S.analyze ~threads:domains prog in
            match P.apply_first ~chunks:domains report with
            | Error skipped ->
                Printf.printf "  (measure: %s not transformable: %s)\n" name
                  (match skipped with
                  | (_, reason) :: _ -> reason
                  | [] -> "no suggestions");
                None
            | Ok (t, _) ->
                let proxy = V.measure ~label:name ~original:t.P.original t.P.transformed in
                let m =
                  M.measure ~domains ~warmup:1 ~reps:3 ~name
                    ~original:t.P.original t.P.transformed
                in
                print_newline ();
                print_string (M.to_string m);
                Some (name, proxy.V.d_measured_speedup, m)))
      names
  in
  let max_d_speedup (m : M.t) =
    match List.rev m.M.m_runs with
    | last :: _ -> last.M.r_speedup
    | [] -> 0.0
  in
  print_newline ();
  Util.table
    ~columns:[ "program"; "proxy"; "best"; "at max d"; "equal" ]
    (List.map
       (fun (name, proxy, m) ->
         [ name;
           Printf.sprintf "%.2fx" proxy;
           Printf.sprintf "%.2fx" m.M.m_best_speedup;
           Printf.sprintf "%.2fx" (max_d_speedup m);
           (if m.M.m_equal then "yes" else "NO") ])
       results);
  let n = List.length results in
  let equal_count =
    List.length (List.filter (fun (_, _, m) -> m.M.m_equal) results)
  in
  let corr =
    spearman
      (Array.of_list (List.map (fun (_, p, _) -> p) results))
      (Array.of_list (List.map (fun (_, _, m) -> max_d_speedup m) results))
  in
  Obs.Gauge.set_int (Obs.gauge "measure.workloads") n;
  Obs.Gauge.set_int (Obs.gauge "measure.equal_count") equal_count;
  Obs.Gauge.set (Obs.gauge "measure.proxy_rank_corr") corr;
  Printf.printf
    "\n%d/%d workloads observationally equal across the sweep;\n\
     Spearman(proxy rank, measured rank at d=%d) = %.2f\n"
    equal_count n domains corr;
  print_endline
    "proxy vs measured disagreements are expected to stay small: the proxy\n\
     counts critical-path accesses, the measurement pays runtime overheads\n\
     (task spawning, stealing, atomics) the model does not see."
