(* Table 4.2, applied: where Exp_speedup models the speedup a suggestion
   *should* give, this experiment actually rewrites each program with
   lib/transform, differentially validates the result, and measures the
   work distribution of the transformed program under the cooperative
   scheduler.

   Columns: the transform kind chosen by apply_first, the modeled speedup of
   that suggestion (Amdahl x imbalance, from the ranking), the measured
   "applied" speedup (serial accesses over the critical-path proxy of the
   transformed run), and the differential-validation verdict.

   The applied number trails the model for DOACROSS rows by construction:
   the transform serializes the carried suffix through lock hand-offs chunk
   to chunk, while the model assumes perfectly overlapped stages. *)

module P = Transform.Parallelize
module V = Transform.Validate
module R = Workloads.Registry
module S = Discovery.Suggestion

let threads = 4

let workloads =
  [ "histogram"; "mandelbrot"; "matmul"; "dotprod"; "jacobi"; "match_count";
    "prefix_sum"; "fib"; "uts"; "floorplan" ]

let find name =
  List.find (fun (w : R.t) -> w.name = name)
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
   @ Workloads.Numerics.all @ Workloads.Parsec.all)

(* p_kind is the full suggestion string; compress to the construct tag. *)
let short_kind k =
  let contains needle =
    let h = String.length k and n = String.length needle in
    let rec at i = i + n <= h && (String.sub k i n = needle || at (i + 1)) in
    at 0
  in
  if contains "DOALL" then "DOALL"
  else if contains "DOACROSS" then "DOACROSS"
  else if contains "fork-join" || contains "SPMD" then "SPMD"
  else if contains "MPMD" then "MPMD"
  else "?"

(* No registry workload has a transformable DOACROSS (their carried chains
   run through arrays, which the rewriter refuses to hand off); this
   synthetic recurrence exercises the pipelined path: a dependence-free
   prefix feeding a scalar chain, fissioned and serialized through locks. *)
let pipeline_prog =
  let open Mil.Builder in
  number
    (program
       ~globals:[ garray "a" 4096; garray "b" 4096; gscalar "s" 1 ]
       ~entry:"main" "pipeline"
       [ func "main"
           [ for_ "i" (i 0) (i 4096) [ seti "a" (v "i") (v "i" + i 3) ];
             for_ "i" (i 0) (i 4096)
               [ decl "t" (("a".%[v "i"] * i 5) % i 97);
                 set "s" ((v "s" * i 3 + v "t") % i 1009);
                 seti "b" (v "i") (v "s") ];
             return (v "s" + "b".%[i 4000]) ] ])

let transform_row name report applied =
  match applied with
  | Error _ -> [ name; "-"; "-"; "-"; "not transformable" ]
  | Ok (t : P.t) ->
      let modeled =
        match
          List.find_opt
            (fun (s : S.t) ->
              s.region = t.plan.P.p_region
              && S.kind_to_string s.kind = t.plan.P.p_kind)
            report.S.suggestions
        with
        | Some s -> Printf.sprintf "%.2fx" s.score.Discovery.Ranking.combined
        | None -> "-"
      in
      let d = V.measure ~original:t.original t.transformed in
      let v = V.differential ~original:t.original ~transformed:t.transformed () in
      [ name;
        short_kind t.plan.P.p_kind;
        modeled;
        Printf.sprintf "%.2fx" d.V.d_measured_speedup;
        (if v.V.v_ok then "PASS"
         else
           Printf.sprintf "FAIL (%d issues)"
             (List.length v.V.v_mismatches + List.length v.V.v_new_racy)) ]

let run () =
  Util.header "Table 4.2 (applied): transform, validate, measure";
  let rows =
    List.map
      (fun name ->
        let w = find name in
        let report = S.analyze ~threads (R.program w) in
        transform_row name report
          (Result.map fst (P.apply_first ~chunks:threads report)))
      workloads
  in
  let doacross_row =
    let report = S.analyze ~threads pipeline_prog in
    let applied =
      match
        List.find_opt
          (fun (s : S.t) ->
            match s.kind with S.Sdoacross _ -> true | _ -> false)
          report.S.suggestions
      with
      | Some s -> P.apply ~chunks:threads report s
      | None -> Error "no DOACROSS suggestion"
    in
    transform_row "pipeline*" report applied
  in
  Util.table
    ~columns:[ "program"; "transform"; "modeled"; "applied"; "validation" ]
    (rows @ [ doacross_row ]);
  print_newline ();
  print_endline
    "* synthetic scalar recurrence; registry DOACROSS candidates carry their\n\
    \  chains through arrays, which the rewriter conservatively refuses.";
  print_endline
    "applied < modeled on the DOACROSS row: the lock hand-off serializes the\n\
     carried suffix chunk-to-chunk, where the model assumes overlapped stages.";
  print_endline
    "applied >> modeled on fork-join rows: the critical-path proxy\n\
     (main-thread work + heaviest single task) understates the spawn-chain\n\
     depth of recursive decompositions."
