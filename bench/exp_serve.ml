(* Serve daemon experiment: an in-process `discopop serve` instance under
   sustained concurrent load. A cold pass POSTs each workload once (every
   request profiles and populates the memory LRU), then M client domains
   hammer the warm daemon concurrently. The headline numbers are sustained
   requests/sec and client-observed p50/p99 latency, plus the cold-vs-warm
   p50 ratio — the whole point of a resident daemon is that repeat requests
   cost a hash and an LRU probe, not a profile. *)

let client_count =
  match Sys.getenv_opt "SERVE_BENCH_CLIENTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let requests_per_client =
  match Sys.getenv_opt "SERVE_BENCH_REQS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 50)
  | None -> 50

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let post ~port ~name body =
  match Serve.Client.post ~port ~body ("/profile?name=" ^ name) with
  | Ok { Serve.Client.status = 200; _ } -> ()
  | Ok { Serve.Client.status; _ } ->
      failwith (Printf.sprintf "POST /profile (%s): status %d" name status)
  | Error msg -> failwith (Printf.sprintf "POST /profile (%s): %s" name msg)

let run () =
  Util.header "Serve daemon: sustained concurrent profiling requests";
  let t =
    Serve.start
      { Serve.default_config with
        Serve.port = 0;
        jobs = 4;
        queue_capacity = 256;
        mem_capacity = 128 }
  in
  let port = Serve.port t in
  let workloads =
    List.map
      (fun (w : Workloads.Registry.t) ->
        ( w.Workloads.Registry.name,
          Mil.Pretty.render_program (Workloads.Registry.program w) ))
      Workloads.Textbook.all
  in
  let time_one (name, body) =
    let t0 = Unix.gettimeofday () in
    post ~port ~name body;
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  (* Cold: every request profiles. *)
  let cold_ms = List.map time_one workloads |> Array.of_list in
  Array.sort compare cold_ms;
  (* Warm, sustained: M client domains, each cycling over the workloads. *)
  let wl = Array.of_list workloads in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init client_count (fun c ->
        Domain.spawn (fun () ->
            Array.init requests_per_client (fun i ->
                time_one wl.((c + i) mod Array.length wl))))
  in
  let warm_ms =
    List.concat_map (fun d -> Array.to_list (Domain.join d)) clients
    |> Array.of_list
  in
  let wall = Unix.gettimeofday () -. t0 in
  Serve.stop t;
  Array.sort compare warm_ms;
  let total = Array.length warm_ms in
  let req_per_sec = if wall > 0.0 then float_of_int total /. wall else 0.0 in
  let p50 = percentile warm_ms 0.50 in
  let p99 = percentile warm_ms 0.99 in
  let cold_p50 = percentile cold_ms 0.50 in
  let warm_speedup = if p50 > 0.0 then cold_p50 /. p50 else 0.0 in
  Obs.Gauge.set_int (Obs.gauge "serve.bench.clients") client_count;
  Obs.Gauge.set_int (Obs.gauge "serve.bench.requests") total;
  Obs.Gauge.set (Obs.gauge "serve.bench.req_per_sec") req_per_sec;
  Obs.Gauge.set (Obs.gauge "serve.bench.p50_ms") p50;
  Obs.Gauge.set (Obs.gauge "serve.bench.p99_ms") p99;
  Obs.Gauge.set (Obs.gauge "serve.bench.cold_p50_ms") cold_p50;
  Obs.Gauge.set (Obs.gauge "serve.bench.warm_speedup") warm_speedup;
  Printf.printf
    "%d clients x %d requests over %d workloads: %.0f req/s sustained\n"
    client_count requests_per_client (Array.length wl) req_per_sec;
  Printf.printf "warm latency p50 %.3fms p99 %.3fms (client-observed)\n" p50
    p99;
  Printf.printf "cold p50 %.1fms -> warm p50 %.3fms: %.0fx from the LRU\n"
    cold_p50 p50 warm_speedup;
  Printf.printf "server-side mem hits: %d, misses: %d\n"
    (Obs.counter_value "serve.cache.mem_hit")
    (Obs.counter_value "serve.cache.miss")
