(* Speedup experiments:
   - Table 4.2: speedups when parallelising textbook programs following the
     framework's suggestions with four threads;
   - Fig 4.11: the FaceDetection speedup curve saturating with thread count.

   The paper measured these on multicore hardware. This container may expose
   a single core, so each row reports the *modeled* speedup — greedy list
   scheduling of the suggested decomposition's measured per-iteration costs
   onto p virtual processors (Brent's bound) — alongside a wall-clock
   measurement of a native OCaml Domains implementation where the hardware
   cooperates. The modeled column is the reproducible shape. *)

module L = Discovery.Loops
module R = Workloads.Registry

let threads = 4

let modeled_speedup (w : R.t) =
  (* default analyze config is ~threads:4, which is [threads] here *)
  let report = Util.analyze_cached w in
  let total =
    Profiler.Pet.total_instructions report.Discovery.Suggestion.profile.pet
  in
  (* apply every DOALL suggestion: sum the parallelisable instruction mass *)
  let par_instr =
    List.fold_left
      (fun acc (a : L.analysis) ->
        match a.L.cls with
        | L.Doall | L.Doall_reduction ->
            (* only count top-level parallel loops (not loops nested inside
               an already-counted one) *)
            acc + a.L.instructions
        | L.Doacross | L.Sequential -> acc)
      0 report.Discovery.Suggestion.loops
  in
  let par_instr = min par_instr total in
  (* one task per iteration of the hottest parallel loop; rest sequential *)
  let hottest =
    List.fold_left
      (fun acc (a : L.analysis) ->
        match a.L.cls with
        | L.Doall | L.Doall_reduction ->
            if a.L.instructions > (match acc with Some b -> b.L.instructions | None -> 0)
            then Some a
            else acc
        | _ -> acc)
      None report.Discovery.Suggestion.loops
  in
  match hottest with
  | None -> 1.0
  | Some hot ->
      Discovery.Schedule.doall_speedup ~processors:threads
        ~iterations:(max 1 hot.L.iterations)
        ~loop_instructions:par_instr ~total_instructions:total ()

(* Native Domains implementations of a few representative suggestions, for
   wall-clock measurement. *)
let native_pair name =
  let n = 1_500_000 in
  let mix v =
    let h = ref v in
    for _ = 1 to 12 do
      h := (!h lxor (!h lsr 7)) * 0x9E3779B1 land 0x3FFFFFFF
    done;
    !h
  in
  match name with
  | "histogram" ->
      Some
        ( (fun () ->
            let hist = Array.make 32 0 in
            for k = 0 to n - 1 do
              let b = mix k land 31 in
              hist.(b) <- hist.(b) + 1
            done;
            hist.(0)),
          fun () ->
            let parts =
              List.init threads (fun d ->
                  Domain.spawn (fun () ->
                      let hist = Array.make 32 0 in
                      let lo = d * n / threads and hi = (d + 1) * n / threads in
                      for k = lo to hi - 1 do
                        let b = mix k land 31 in
                        hist.(b) <- hist.(b) + 1
                      done;
                      hist))
            in
            let acc = Array.make 32 0 in
            List.iter
              (fun dom ->
                let h = Domain.join dom in
                Array.iteri (fun b v -> acc.(b) <- acc.(b) + v) h)
              parts;
            acc.(0) )
  | "dotprod" ->
      Some
        ( (fun () ->
            let acc = ref 0 in
            for k = 0 to n - 1 do
              acc := !acc + (mix k land 1023)
            done;
            !acc),
          fun () ->
            let parts =
              List.init threads (fun d ->
                  Domain.spawn (fun () ->
                      let acc = ref 0 in
                      let lo = d * n / threads and hi = (d + 1) * n / threads in
                      for k = lo to hi - 1 do
                        acc := !acc + (mix k land 1023)
                      done;
                      !acc))
            in
            List.fold_left (fun a dom -> a + Domain.join dom) 0 parts )
  | _ -> None

let run_textbook () =
  Util.header
    (Printf.sprintf "Table 4.2: textbook speedups with %d threads" threads);
  let rows =
    List.map
      (fun (w : R.t) ->
        let modeled = modeled_speedup w in
        let measured =
          match native_pair w.R.name with
          | None -> "-"
          | Some (seq, par) ->
              let t_seq = Util.med_time seq in
              let t_par = Util.med_time par in
              Printf.sprintf "%.2fx" (t_seq /. t_par)
        in
        [ w.R.name; Printf.sprintf "%.2fx" modeled; measured ])
      Workloads.Textbook.all
  in
  Util.table ~columns:[ "program"; "modeled speedup"; "measured (Domains)" ] rows;
  Printf.printf
    "(paper: 2.5-3.9x at 4 threads for these programs; measured column is\n\
    \ bounded by this host's %d core(s))\n"
    (Domain.recommended_domain_count ())

(* Fig 4.11: FaceDetection speedup as a function of thread count. The task
   graph (Fig 4.10) has a serial grab/merge part, two parallel filters, and
   a wide window-classification stage; its span caps the speedup. *)
let run_facedetect () =
  Util.header "Fig 4.11: FaceDetection speedup vs thread count (modeled)";
  let w = List.find (fun w -> w.R.name = "facedetect") Workloads.Apps.all in
  let report = Util.analyze_cached w in
  let profile = report.Discovery.Suggestion.profile in
  let pet = profile.pet in
  (* per-PET-node costs for the pipeline stages *)
  let stage_cost line =
    let acc = ref 0 in
    Profiler.Pet.iter
      (fun n ->
        match n.Profiler.Pet.kind with
        | Profiler.Pet.Fnode _ | Profiler.Pet.Lnode _ ->
            if n.Profiler.Pet.first_line <= line && line <= n.Profiler.Pet.last_line
            then acc := max !acc (Profiler.Pet.subtree_instructions pet n.Profiler.Pet.id)
        | Profiler.Pet.Bnode _ -> ())
      pet;
    !acc
  in
  ignore stage_cost;
  let total = Profiler.Pet.total_instructions pet in
  (* stages from the loop analysis: filters (parallel pair), merge loop,
     window loop (split into per-window tasks), serial rest *)
  let loops =
    List.sort
      (fun (a : L.analysis) b -> compare a.L.loop_line b.L.loop_line)
      report.Discovery.Suggestion.loops
  in
  let windows, filters, merges =
    List.fold_left
      (fun (wd, fl, mg) (a : L.analysis) ->
        match a.L.cls with
        | L.Doall | L.Doall_reduction ->
            if a.L.instructions > 10_000 then (a :: wd, fl, mg)
            else if a.L.instructions > 2_000 then (wd, a :: fl, mg)
            else (wd, fl, a :: mg)
        | _ -> (wd, fl, mg))
      ([], [], []) loops
  in
  let task_of ~id ~cost ~deps = { Discovery.Schedule.t_id = id; t_cost = cost; t_deps = deps } in
  let tasks = ref [] and next = ref 0 in
  let add ~cost ~deps =
    let id = !next in
    incr next;
    tasks := task_of ~id ~cost ~deps :: !tasks;
    id
  in
  (* two filters in parallel, then merge, then N window-chunk tasks *)
  let filter_ids =
    List.map (fun (a : L.analysis) -> add ~cost:a.L.instructions ~deps:[]) filters
  in
  let merge_id =
    match merges with
    | m :: _ -> add ~cost:m.L.instructions ~deps:filter_ids
    | [] -> add ~cost:1 ~deps:filter_ids
  in
  (match windows with
  | win :: _ ->
      let chunks = 64 in
      for _ = 1 to chunks do
        ignore (add ~cost:(win.L.instructions / chunks) ~deps:[ merge_id ])
      done
  | [] -> ());
  let task_list = !tasks in
  let par_work = Discovery.Schedule.total_work task_list in
  let serial = max 0 (total - par_work) in
  List.iter
    (fun p ->
      let s = Discovery.Schedule.speedup ~processors:p ~serial task_list in
      Printf.printf "  threads=%-3d speedup %.2fx  %s\n" p s
        (String.make (int_of_float (s *. 4.0)) '#'))
    [ 1; 2; 4; 8; 16; 32 ];
  print_endline
    "(paper: 4.4x at 8, 7.6x at 16, 9.92x at 32 threads — saturating because\n\
    \ the serial grab/merge stages bound the span)"
