(* Batch driver experiment: the textbook suite through `discopop batch`
   twice against a scratch cache directory — the first pass is fully cold
   (every job profiles and populates the cache), the second fully warm
   (every job loads its Depfile + suggestion summary and skips phase 1).
   The headline gauge is the warm-over-cold wall-clock speedup; the summary
   also proves warm results byte-identical to cold ones. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let summaries (r : Pipeline.report) =
  List.filter_map
    (fun (j : Pipeline.job_result) ->
      match j.Pipeline.r_status with
      | Pipeline.Ok_ ok -> Some (j.Pipeline.r_name, ok.Pipeline.jr_summary)
      | _ -> None)
    r.Pipeline.b_results

let run () =
  Util.header "Batch driver: cold vs warm cache over the textbook suite";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "discopop-bench-batch.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let config = Pipeline.Cache.default_config in
  let jobs () =
    List.map
      (Pipeline.workload_job ~cache_dir:dir ~config)
      Workloads.Textbook.all
  in
  let cold = Pipeline.run_batch ~jobs:4 (jobs ()) in
  let warm = Pipeline.run_batch ~jobs:4 (jobs ()) in
  rm_rf dir;
  print_string (Pipeline.render warm);
  let identical =
    summaries cold = summaries warm
    && warm.Pipeline.b_cache_hits = List.length Workloads.Textbook.all
  in
  let speedup =
    if warm.Pipeline.b_wall_s > 0.0 then
      cold.Pipeline.b_wall_s /. warm.Pipeline.b_wall_s
    else 0.0
  in
  Obs.Gauge.set (Obs.gauge "batch.cold_wall_s") cold.Pipeline.b_wall_s;
  Obs.Gauge.set (Obs.gauge "batch.warm_wall_s") warm.Pipeline.b_wall_s;
  Obs.Gauge.set (Obs.gauge "batch.cache_hit_speedup") speedup;
  Obs.Gauge.set_int
    (Obs.gauge "batch.warm_identical")
    (if identical then 1 else 0);
  Printf.printf
    "cold %.2fs -> warm %.2fs: %.1fx from cache hits; warm results %s\n"
    cold.Pipeline.b_wall_s warm.Pipeline.b_wall_s speedup
    (if identical then "byte-identical to cold" else "DIFFER from cold (bug)")
