(* Tables 2.2-2.5 — the paper's worked examples:
   - the Figure 2.7 loop and its complete dependence set (Table 2.2);
   - the Figure 2.8 four-operation loop, showing how §2.4 skipping converges
     after two iterations (Tables 2.3-2.5). *)

open Mil.Builder

let fig27 =
  number
    (program ~entry:"main" "fig27"
       [ func "main"
           [ decl "k" (i 100);
             decl "sum" (i 0);
             while_ (v "k" > i 0)
               [ set "sum" (v "sum" + v "k" * i 2); set "k" (v "k" - i 1) ] ] ])

let fig28 =
  number
    (program ~entry:"main" "fig28" ~globals:[ gscalar "x" 0 ]
       [ func "main"
           [ for_ "it" (i 0) (i 50)
               [ set "x" (v "it");          (* op1: write x *)
                 decl "a" (v "x");          (* op2: read x *)
                 decl "b" (v "x" + i 1);    (* op3: read x *)
                 set "x" (v "a" + v "b") ] ] ])  (* op4: write x *)

let show ~tag name prog =
  Printf.printf "\n--- %s ---\n" name;
  print_string (Mil.Pretty.render_program prog);
  let plain = Profiler.Serial.profile prog in
  let ndeps = Profiler.Dep.Set_.cardinal plain.deps in
  Printf.printf "accesses: %d  deps: %d\n" plain.accesses ndeps;
  (* Mirror the printed numbers into named counters so the
     BENCH_skip-example.json summary carries exactly what the table shows. *)
  Obs.Counter.add (Obs.counter (Printf.sprintf "example.%s.accesses" tag))
    plain.accesses;
  Obs.Counter.add (Obs.counter (Printf.sprintf "example.%s.deps" tag)) ndeps;
  print_endline "dependences:";
  print_string (Profiler.Serial.report plain);
  let skip = Profiler.Serial.profile ~skip:true prog in
  let s = skip.skip_stats in
  Printf.printf
    "with §2.4 skipping: %d/%d dep-leading reads and %d/%d writes skipped;\n\
     dependence sets identical: %b\n"
    s.Profiler.Engine.reads_skipped s.Profiler.Engine.reads_total
    s.Profiler.Engine.writes_skipped s.Profiler.Engine.writes_total
    (Profiler.Dep.Set_.accuracy ~truth:plain.deps ~got:skip.deps = (0.0, 0.0))

let run () =
  Util.header "Tables 2.2-2.5: the paper's worked skipping examples";
  show ~tag:"fig27" "Figure 2.7 (Table 2.2)" fig27;
  show ~tag:"fig28" "Figure 2.8 (Tables 2.3-2.5)" fig28;
  print_endline
    "\n(paper: Fig 2.8's four operations are all skippable from the third\n\
    \ iteration on; the dependence storage is touched exactly four times)"
