(* The benchmark harness: one experiment per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- -e doall-nas
   List experiments:      dune exec bench/main.exe -- -l

   Besides the human-readable tables, every experiment run writes a
   machine-readable BENCH_<experiment>.json summary (wall time plus the full
   observability snapshot: accesses, deps found, footprint, phase timings) —
   the perf trajectory CI regresses against. *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("skip-example", "Tables 2.2-2.5: the paper's worked examples",
     Exp_examples.run);
    ("fpr-fnr", "Table 2.6: signature FPR/FNR vs slots", Exp_accuracy.run);
    ("slowdown-seq", "Fig 2.9: profiler slowdown + memory (sequential)",
     Exp_slowdown.run_sequential);
    ("slowdown-par", "Fig 2.10/2.11: profiling multi-threaded targets",
     Exp_slowdown.run_parallel_targets);
    ("load-balance", "§2.3.3: worker load balance",
     Exp_slowdown.run_load_balance);
    ("skip-slowdown", "Fig 2.12: skip-optimization slowdown reduction",
     Exp_skip.run_slowdown);
    ("skip-stats", "Table 2.7: skipped memory instructions", Exp_skip.run_stats);
    ("skip-dist", "Fig 2.13: skipped instructions by dependence type",
     Exp_skip.run_distribution);
    ("cu-graphs", "Fig 3.6/3.7: CU-graph granularity", Exp_cugraphs.run);
    ("doall-nas", "Table 4.1: DOALL detection in NAS", Exp_doall.run_nas);
    ("speedup-textbook", "Table 4.2: textbook speedups", Exp_speedup.run_textbook);
    ("transform", "Table 4.2 applied: transformed, validated, measured speedups",
     Exp_transform.run);
    ("measure", "Measured speedups: transformed programs on the task runtime",
     Exp_measure.run);
    ("histogram-suggest", "Table 4.3: histogram suggestions",
     Exp_doall.run_histogram);
    ("doacross", "Table 4.4: DOACROSS detection", Exp_doall.run_doacross);
    ("gzip-bzip2", "Table 4.5: gzip/bzip2 study", Exp_tasks.run_gzip_bzip2);
    ("spmd-bots", "Table 4.6: SPMD tasks in BOTS", Exp_tasks.run_bots);
    ("mpmd", "Table 4.7: MPMD tasks", Exp_tasks.run_mpmd);
    ("facedetect-speedup", "Fig 4.11: FaceDetection speedup curve",
     Exp_speedup.run_facedetect);
    ("ranking", "§4.3: ranking metrics", Exp_ranking.run);
    ("doall-ml", "Tables 5.1-5.3: DOALL feature classification", Exp_ml.run);
    ("stm", "Table 5.4: STM transactions", Exp_stm.run);
    ("comm-patterns", "Fig 5.1: communication patterns", Exp_comm.run);
    ("ablation", "Ablations: shadow backend, lifetime, merging", Exp_ablation.run);
    ("hotpath", "Fig 2.9/2.12 substrate: engine events/sec, minor words/access",
     Exp_hotpath.run);
    ("passes", "Mil.Pass pipeline: executed-event reduction over the registry",
     Exp_passes.run);
    ("batch", "Batch driver: cold vs warm cache over the textbook suite",
     Exp_batch.run);
    ("serve", "Serve daemon: sustained req/s and p50/p99 under concurrent clients",
     Exp_serve.run);
    ("soak", "Serve daemon: offered-load sweep past saturation (shed/p99/queue)",
     Exp_soak.run);
    ("micro", "Bechamel micro-benchmarks", Exp_micro.run) ]

(* With --trace, each experiment additionally records a per-domain timeline
   and writes it as TRACE_<id>.json (Chrome Trace Event format, validated by
   `discopop trace-check` in CI). Off by default: tracing every experiment
   would perturb the slowdown numbers the harness exists to measure. *)
let tracing = ref false

(* Run one experiment under the observability layer and write its
   BENCH_<id>.json summary. Both the metrics registry and the trace buffers
   are reset per experiment so each summary/timeline is self-contained. *)
let run_experiment (id, _, run) =
  Obs.reset ();
  Obs.Trace.reset ();
  Obs.enable ();
  if !tracing then begin
    Obs.Trace.enable ();
    Obs.Trace.set_track "bench (main)"
  end;
  let t0 = Unix.gettimeofday () in
  Obs.Trace.with_span ("experiment." ^ id) run;
  let wall = Unix.gettimeofday () -. t0 in
  Obs.publish_gc ();
  let path = Printf.sprintf "BENCH_%s.json" id in
  let summary =
    Obs.Json.Obj
      [ ("schema_version", Obs.Json.Int 1);
        ("experiment", Obs.Json.String id);
        ("wall_s", Obs.Json.Float wall);
        ("metrics", Obs.snapshot ()) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.pretty summary);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[bench] wrote %s (%.2fs)\n" path wall;
  if !tracing then begin
    let tpath = Printf.sprintf "TRACE_%s.json" id in
    Obs.Trace.write tpath;
    Printf.printf "[bench] wrote %s (%d events)\n" tpath
      (Obs.Trace.event_count ());
    Obs.Trace.disable ()
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "--trace" then begin
          tracing := true;
          false
        end
        else true)
      args
  in
  match args with
  | [ "-l" ] | [ "--list" ] ->
      List.iter (fun (id, doc, _) -> Printf.printf "%-20s %s\n" id doc) experiments
  | [ "-e"; id ] | [ id ] -> (
      match List.find_opt (fun (i, _, _) -> i = id) experiments with
      | Some exp -> run_experiment exp
      | None ->
          Printf.eprintf "unknown experiment %s; use -l to list\n" id;
          exit 1)
  | [] ->
      let t0 = Unix.gettimeofday () in
      List.iter run_experiment experiments;
      Printf.printf "\nall experiments completed in %.1fs\n"
        (Unix.gettimeofday () -. t0)
  | _ ->
      prerr_endline "usage: bench/main.exe [-l | -e <experiment>] [--trace]";
      exit 1
