(* Hot-path economics of the dependence profiler — the substrate of
   Fig. 2.9/2.12. Three metrics per sampled workload:

   - engine events/sec over a pre-recorded access stream (interpreter cost
     excluded, so this isolates Algorithm 2 + shadow-memory throughput);
   - GC minor words allocated per access during that feed (the per-access
     metadata cost that §2.3's cheap shadow lookups and dependence merging
     exist to suppress);
   - the end-to-end serial slowdown factor (profiled / native wall time).

   Each metric is published as a [hotpath.*] gauge so BENCH_hotpath.json
   carries the perf baseline that CI regresses against (see
   bench/baseline_hotpath.json and `discopop check-bench`). *)

module R = Workloads.Registry

(* Small fixed sample: textbook + BOTS + the DOACROSS-shaped gauss_seidel,
   at sizes that keep the whole experiment CI-friendly (a few seconds).
   HOTPATH_WORKLOADS=name,name,... restricts the sweep (CI's perf-smoke
   runs two); unknown names are reported, not silently dropped. *)
let sample_default =
  [ ("histogram", 4000); ("matmul", 24); ("prefix_sum", 4000);
    ("gauss_seidel", 300); ("fib", 15) ]

let find_workload name =
  List.find_opt (fun (w : R.t) -> w.name = name)
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Bots.all
   @ Workloads.Numerics.all)

let sample () =
  let wanted =
    match Sys.getenv_opt "HOTPATH_WORKLOADS" with
    | None | Some "" -> List.map fst sample_default
    | Some s -> String.split_on_char ',' s |> List.map String.trim
  in
  List.filter_map
    (fun name ->
      match find_workload name with
      | None ->
          Printf.printf "  (hotpath: unknown workload %s, skipped)\n" name;
          None
      | Some w ->
          let size =
            match List.assoc_opt name sample_default with
            | Some s -> s
            | None -> w.default_size
          in
          Some (w, size))
    wanted

(* Pre-record the access stream so the engine is measured alone. *)
let record_stream prog =
  let acc = ref [] in
  let n = ref 0 in
  let _ =
    Mil.Interp.run
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Access a ->
            incr n;
            acc := a :: !acc
        | Trace.Event.Region _ -> ())
      prog
  in
  Array.of_list (List.rev !acc)

let feed_stream shadow stream =
  let engine = Profiler.Engine.create shadow in
  Array.iter (Profiler.Engine.feed_access engine) stream;
  engine

(* Best-of-5 timed feeds (after one warm-up) plus one allocation-metered
   feed: minor words are deterministic, so one measurement suffices. The
   minimum is the least-noise estimator for a short CI microbenchmark —
   anything above it is scheduler/cache interference, not engine cost.
   Each feed gets a fresh engine, created *outside* the timed/metered
   region — the metric is event-processing throughput, not shadow-store
   setup (the off-heap signature store is a multi-MB allocation whose cost
   would otherwise dominate short CI streams). *)
let measure_engine shadow stream =
  ignore (feed_stream shadow stream);
  let time () =
    let engine = Profiler.Engine.create shadow in
    let t0 = Unix.gettimeofday () in
    Array.iter (Profiler.Engine.feed_access engine) stream;
    Unix.gettimeofday () -. t0
  in
  let t = ref (time ()) in
  for _ = 2 to 5 do
    let dt = time () in
    if dt < !t then t := dt
  done;
  let t = !t in
  let engine = Profiler.Engine.create shadow in
  let w0 = Gc.minor_words () in
  Array.iter (Profiler.Engine.feed_access engine) stream;
  let dw = Gc.minor_words () -. w0 in
  let n = float_of_int (Array.length stream) in
  (n /. t, dw /. n)

let run () =
  Util.header
    "Hot path: engine events/sec, minor words/access, serial slowdown";
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  let rows =
    List.map
      (fun ((w : R.t), size) ->
        let prog = R.program ~size w in
        let stream = record_stream prog in
        let n = Array.length stream in
        let sig_eps, sig_wpa =
          measure_engine (Profiler.Engine.Signature 65_536) stream
        in
        let perf_eps, perf_wpa = measure_engine Profiler.Engine.Perfect stream in
        let paged_eps, paged_wpa = measure_engine Profiler.Engine.Paged stream in
        let t_native = Util.native_time prog in
        let t_serial =
          Util.med_time (fun () ->
              Profiler.Serial.profile
                ~shadow:(Profiler.Engine.Signature 100_000) prog)
        in
        let slowdown = t_serial /. t_native in
        g (Printf.sprintf "hotpath.%s.sig.events_per_sec" w.name) sig_eps;
        g (Printf.sprintf "hotpath.%s.sig.minor_words_per_access" w.name) sig_wpa;
        g (Printf.sprintf "hotpath.%s.perfect.events_per_sec" w.name) perf_eps;
        g (Printf.sprintf "hotpath.%s.perfect.minor_words_per_access" w.name)
          perf_wpa;
        g (Printf.sprintf "hotpath.%s.paged.events_per_sec" w.name) paged_eps;
        g (Printf.sprintf "hotpath.%s.paged.minor_words_per_access" w.name)
          paged_wpa;
        g (Printf.sprintf "hotpath.%s.slowdown_serial" w.name) slowdown;
        Obs.Counter.add
          (Obs.counter (Printf.sprintf "hotpath.%s.accesses" w.name))
          n;
        [ w.name; string_of_int n;
          Printf.sprintf "%.2e" sig_eps; Printf.sprintf "%.1f" sig_wpa;
          Printf.sprintf "%.2e" perf_eps; Printf.sprintf "%.1f" perf_wpa;
          Printf.sprintf "%.2e" paged_eps; Printf.sprintf "%.1f" paged_wpa;
          Printf.sprintf "%.0f" slowdown ])
      (sample ())
  in
  Util.table
    ~columns:
      [ "program"; "accesses"; "sig ev/s"; "sig w/acc"; "perf ev/s";
        "perf w/acc"; "paged ev/s"; "paged w/acc"; "slowdown" ]
    rows;
  print_endline
    "(events/sec: engine alone over a pre-recorded stream; w/acc: GC minor\n\
    \ words allocated per access; slowdown: serial profiled vs native)"
