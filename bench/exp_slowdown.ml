(* Fig. 2.9 — profiler time and memory on sequential NAS and Starbench:
   serial profiler vs the parallel profiler in its lock-based and lock-free
   configurations; Fig. 2.10/2.11 — the same for multi-threaded Starbench
   targets.

   Note: on a single-core host the parallel profiler's worker domains
   time-slice with the producer, so its wall-clock "slowdown" shows pure
   synchronization overhead without any concurrency benefit. The lock-free
   vs lock-based comparison is still meaningful, as is the load-balance
   statistic. *)

let words_to_mb w = float_of_int (w * 8) /. 1024.0 /. 1024.0

let profile_row (w : Workloads.Registry.t) =
  let prog = Workloads.Registry.program w in
  let t_native = Util.native_time prog in
  (* Keep the last timed run's result: the memory column reads its footprint,
     so no extra untimed profiling pass is needed. *)
  let last_serial = ref None in
  let t_serial =
    Util.med_time (fun () ->
        last_serial :=
          Some
            (Profiler.Serial.profile ~shadow:(Profiler.Engine.Signature 100_000)
               prog))
  in
  let t_lockfree w8 =
    Util.med_time ~reps:1 (fun () ->
        Profiler.Parallel.profile ~workers:w8 ~shadow_slots:100_000 prog)
  in
  let t_lockfree4 = t_lockfree 4 in
  let t_lockfree8 = t_lockfree 8 in
  let t_locked =
    Util.med_time ~reps:1 (fun () ->
        Profiler.Parallel.profile ~workers:4 ~queue:Profiler.Parallel.Lock_based
          ~shadow_slots:100_000 prog)
  in
  let footprint =
    match !last_serial with
    | Some (r : Profiler.Serial.result) -> r.footprint_words
    | None -> 0
  in
  [ w.name;
    Printf.sprintf "%.0f" (t_serial /. t_native);
    Printf.sprintf "%.0f" (t_locked /. t_native);
    Printf.sprintf "%.0f" (t_lockfree4 /. t_native);
    Printf.sprintf "%.0f" (t_lockfree8 /. t_native);
    Printf.sprintf "%.1f" (words_to_mb footprint) ]

(* Coefficient of variation of the per-worker access counts: the Eq. 2.1
   modulo distribution plus hot-address redistribution should keep this
   small (§2.3.3). *)
let balance (r : Profiler.Parallel.result) =
  let n = Array.length r.per_worker in
  if n = 0 then 0.0
  else begin
    let mean =
      float_of_int (Array.fold_left ( + ) 0 r.per_worker) /. float_of_int n
    in
    if mean = 0.0 then 0.0
    else begin
      let var =
        Array.fold_left
          (fun acc x ->
            let d = float_of_int x -. mean in
            acc +. (d *. d))
          0.0 r.per_worker
        /. float_of_int n
      in
      sqrt var /. mean
    end
  end

let run_load_balance () =
  Util.header "§2.3.3: worker load balance (coefficient of variation)";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let r = Profiler.Parallel.profile ~workers:8 ~shadow_slots:100_000 prog in
        [ w.name;
          String.concat " "
            (Array.to_list (Array.map string_of_int r.per_worker));
          Printf.sprintf "%.3f" (balance r);
          string_of_int r.redistributions ])
      [ List.nth Util.nas 2 (* FT *); List.nth Util.nas 3 (* IS *);
        List.hd Util.starbench_seq (* c-ray *) ]
  in
  Util.table ~columns:[ "program"; "per-worker accesses"; "cv"; "redistributions" ] rows;
  print_endline
    "(paper: the modulo function distributes addresses evenly; the top-10\n\
    \ hot addresses are redistributed when the balance drifts)"

let run_sequential () =
  Util.header
    "Fig 2.9: profiler slowdown (x native) and memory, sequential programs";
  print_endline
    "(single-core host: parallel-profiler columns measure synchronization\n\
    \ overhead only; the paper's 16-core speedups need real cores)";
  let rows = List.map profile_row (Util.nas @ Util.starbench_seq) in
  Util.table
    ~columns:
      [ "program"; "serial"; "4w lock-based"; "4w lock-free"; "8w lock-free";
        "mem MB" ]
    rows;
  print_endline
    "(paper: serial 190x avg; 8T lock-based ~1.6x slower than lock-free;\n\
    \ 16T lock-free 78x avg; 649 MB avg memory)"

let run_parallel_targets () =
  Util.header "Fig 2.10/2.11: profiling multi-threaded Starbench targets";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let t_native = Util.native_time prog in
        let last = ref None in
        let t_serial =
          Util.med_time (fun () ->
              last :=
                Some
                  (Profiler.Serial.profile
                     ~shadow:(Profiler.Engine.Signature 100_000) prog))
        in
        let r =
          match !last with Some r -> r | None -> assert false
        in
        let t_par =
          Util.med_time ~reps:1 (fun () ->
              Profiler.Parallel.profile ~workers:8 ~shadow_slots:100_000 prog)
        in
        [ w.name;
          string_of_int r.accesses;
          Printf.sprintf "%.0f" (t_serial /. t_native);
          Printf.sprintf "%.0f" (t_par /. t_native);
          Printf.sprintf "%.1f" (words_to_mb r.footprint_words);
          string_of_int (List.length r.races) ])
      Util.starbench_par
  in
  Util.table
    ~columns:[ "program"; "accesses"; "serial"; "8w lock-free"; "mem MB"; "races" ]
    rows;
  print_endline
    "(paper: 346x avg at 8T, 261x at 16T; higher than sequential targets\n\
    \ because of cross-thread contention)"
