(* Economics of the Mil.Pass cleanup pipeline: executed-event reduction and
   profile wall-time across the whole workload registry.

   Every executed MIL access event is an event Algorithm 2 has to consume
   (the events/sec currency of exp_hotpath), so fewer executed events is
   directly faster profiling. Two gated facts per run, regressed by
   `discopop check-bench` against bench/baseline_passes.json:

   - [passes.geomean_event_ratio]: geometric mean over the registry of
     (optimized access events / seed access events) — the headline claim is
     that the default pipeline removes >=10% of executed events;
   - [passes.diff_workloads]: number of workloads whose optimized program
     is NOT observation-preserving (result/finals/prints differ under
     Transform.Validate.diff_observations) — must be exactly 0. A workload
     a pass cannot prove safe on is refused (pass.<name>.refused), which
     shows up as ratio 1.0 here, never as a diff.

   PASSES_WORKLOADS=name,name,... restricts the sweep (CI smoke);
   PASSES_PROFILE=0 skips the wall-time sample. *)

module R = Workloads.Registry

let registry : R.t list =
  Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
  @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
  @ Workloads.Numerics.all @ Workloads.Parsec.all

(* Wall-time sample: profiling the full registry twice would dominate CI;
   these five stand in for the shapes that matter (dense loops, recursion,
   stencils). *)
let profile_sample = [ "histogram"; "matmul"; "prefix_sum"; "fib"; "jacobi" ]

let sample () =
  match Sys.getenv_opt "PASSES_WORKLOADS" with
  | None | Some "" -> registry
  | Some s ->
      let wanted = String.split_on_char ',' s |> List.map String.trim in
      List.filter_map
        (fun name ->
          match List.find_opt (fun (w : R.t) -> w.name = name) registry with
          | Some w -> Some w
          | None ->
              Printf.printf "  (passes: unknown workload %s, skipped)\n" name;
              None)
        wanted

let access_events prog =
  let r = Mil.Interp.run prog in
  r.r_stats.reads + r.r_stats.writes

let run () =
  Util.header "Mil.Pass pipeline: executed-event reduction, 0 observation diffs";
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  let do_profile = Sys.getenv_opt "PASSES_PROFILE" <> Some "0" in
  let diffs = ref 0 and refused = ref 0 in
  let ratios = ref [] in
  let rows =
    List.map
      (fun (w : R.t) ->
        let seed = R.program w in
        let before = access_events seed in
        let report =
          match Mil.Pass.run seed with
          | Ok r -> r
          | Error e -> failwith e
        in
        let opt = report.program in
        let after = access_events opt in
        let ratio = float_of_int after /. float_of_int (max 1 before) in
        ratios := ratio :: !ratios;
        let d =
          Transform.Validate.diff_observations
            (Transform.Validate.observe seed)
            (Transform.Validate.observe opt)
        in
        if d <> [] then begin
          incr diffs;
          Printf.printf "  !! %s observation diffs: %s\n" w.name
            (String.concat "; " d)
        end;
        if not (Mil.Pass.sequential_program seed) then incr refused;
        g (Printf.sprintf "passes.%s.event_ratio" w.name) ratio;
        let speedup =
          if do_profile && List.mem w.name profile_sample then begin
            let t p =
              Util.med_time (fun () ->
                  Profiler.Serial.profile
                    ~shadow:(Profiler.Engine.Signature 100_000) p)
            in
            let s = t seed /. t opt in
            g (Printf.sprintf "passes.%s.profile_speedup" w.name) s;
            Printf.sprintf "%.2f" s
          end
          else "-"
        in
        [ w.name; string_of_int before; string_of_int after;
          Printf.sprintf "%.3f" ratio; string_of_int report.changes;
          string_of_int report.rounds; speedup ])
      (sample ())
  in
  let geomean =
    let l = !ratios in
    exp (List.fold_left (fun a r -> a +. log r) 0. l
        /. float_of_int (max 1 (List.length l)))
  in
  g "passes.geomean_event_ratio" geomean;
  g "passes.diff_workloads" (float_of_int !diffs);
  g "passes.refused_workloads" (float_of_int !refused);
  Util.table
    ~columns:
      [ "program"; "events"; "optimized"; "ratio"; "rewrites"; "rounds";
        "prof speedup" ]
    rows;
  Printf.printf
    "geomean event ratio %.3f over %d workloads (%d with sync constructs \
     restricted to count-neutral passes), %d observation diff(s)\n"
    geomean (List.length !ratios) !refused !diffs
