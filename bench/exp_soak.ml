(* Soak/overload experiment: sweep offered load on an in-process serve
   daemon from well below saturation to ~2x past it, and chart what the
   admission control does at each step — shed rate, served p99 and queue
   depth. This closes ROADMAP item 2's measurement ask: the numbers say
   where the daemon saturates and how it degrades (fast 429s, bounded
   queue), and the per-step data comes from the flight recorder's
   per-request records rather than client-side bookkeeping.

   Protocol:
   1. Calibrate: a few sequential uncached POSTs give the mean service
      time, so capacity ~= jobs / mean_service (the daemon runs with the
      memory LRU disabled — every request profiles, the expensive path).
   2. Sweep: for each multiple of calibrated capacity (default 0.25, 0.5,
      1.0, 1.5, 2.0), open-loop senders POST at the target rate for a
      fixed step duration. Open-loop is what makes overload visible: a
      shed answer returns in microseconds, so senders keep offering load
      past saturation instead of slowing down with the server.
   3. Report: per-step records are pulled from the flight recorder by
      completion-time window; queue depth is sampled by a poller domain.

   Env knobs (CI uses a shorter step): SOAK_JOBS, SOAK_QUEUE,
   SOAK_SENDERS, SOAK_STEP_S, SOAK_RATES (comma-separated multiples),
   SOAK_CALIB. *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0.0 -> v
  | _ -> default

let jobs = env_int "SOAK_JOBS" 2
let queue_capacity = env_int "SOAK_QUEUE" 8
let senders = env_int "SOAK_SENDERS" 16
let step_s = env_float "SOAK_STEP_S" 2.0
let calib_count = env_int "SOAK_CALIB" 6

let rate_multiples =
  match Sys.getenv_opt "SOAK_RATES" with
  | None -> [ 0.25; 0.5; 1.0; 1.5; 2.0 ]
  | Some s -> (
      match
        String.split_on_char ',' s
        |> List.filter (fun x -> String.trim x <> "")
        |> List.map (fun x -> float_of_string_opt (String.trim x))
      with
      | [] -> [ 0.25; 0.5; 1.0; 1.5; 2.0 ]
      | parsed ->
          if List.for_all Option.is_some parsed then
            List.map Option.get parsed
          else [ 0.25; 0.5; 1.0; 1.5; 2.0 ])

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* One load step: [senders] domains offer [rate] req/s for [step_s]
   seconds, request i firing at its schedule slot (or immediately when the
   sender is behind — open loop, the backlog is not forgiven). *)
let run_step ~port ~body ~rate =
  let n = max 1 (int_of_float (rate *. step_s)) in
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init senders (fun c ->
        Domain.spawn (fun () ->
            let ok = ref 0 and shed = ref 0 and other = ref 0 in
            let i = ref c in
            while !i < n do
              let sched = t0 +. (float_of_int !i /. rate) in
              let now = Unix.gettimeofday () in
              if sched > now then Unix.sleepf (sched -. now);
              (match Serve.Client.post ~port ~body "/profile?name=soak" with
              | Ok { Serve.Client.status = 200; _ } -> incr ok
              | Ok { Serve.Client.status = 429; _ } -> incr shed
              | Ok _ | Error _ -> incr other);
              i := !i + senders
            done;
            (!ok, !shed, !other)))
  in
  let counts = List.map Domain.join doms in
  let t1 = Unix.gettimeofday () in
  let ok = List.fold_left (fun a (o, _, _) -> a + o) 0 counts in
  let shed = List.fold_left (fun a (_, s, _) -> a + s) 0 counts in
  let other = List.fold_left (fun a (_, _, x) -> a + x) 0 counts in
  (t0, t1, n, ok, shed, other)

let run () =
  Util.header "Soak: offered load sweep past saturation (shed rate vs p99)";
  let t =
    Serve.start
      { Serve.default_config with
        Serve.port = 0;
        jobs;
        queue_capacity;
        mem_capacity = 0;
        (* big enough that one sweep never wraps: every request of every
           step must still be resident for the per-window stats below *)
        flight_capacity = 65536;
        slow_capacity = 256 }
  in
  let port = Serve.port t in
  let body =
    let w =
      match
        List.find_opt
          (fun (w : Workloads.Registry.t) -> w.Workloads.Registry.name = "histogram")
          Workloads.Textbook.all
      with
      | Some w -> w
      | None -> List.hd Workloads.Textbook.all
    in
    Mil.Pretty.render_program (Workloads.Registry.program w)
  in
  (* Queue-depth poller: samples the serve.queue.depth gauge until told to
     stop; each step's maximum comes from its completion-time window. *)
  let sampling = Atomic.make true in
  let sampler =
    Domain.spawn (fun () ->
        let samples = ref [] in
        while Atomic.get sampling do
          samples :=
            (Unix.gettimeofday (), Obs.gauge_value "serve.queue.depth")
            :: !samples;
          Unix.sleepf 0.002
        done;
        !samples)
  in
  (* 1. Calibrate. *)
  let calib_ms =
    List.init calib_count (fun _ ->
        let t0 = Unix.gettimeofday () in
        (match Serve.Client.post ~port ~body "/profile?name=soak" with
        | Ok { Serve.Client.status = 200; _ } -> ()
        | Ok { Serve.Client.status; _ } ->
            failwith (Printf.sprintf "calibration: status %d" status)
        | Error msg -> failwith ("calibration: " ^ msg));
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let mean_service_ms =
    List.fold_left ( +. ) 0.0 calib_ms /. float_of_int (List.length calib_ms)
  in
  let capacity_rps = float_of_int jobs /. (mean_service_ms /. 1e3) in
  Printf.printf
    "calibration: %d requests, mean service %.1fms -> ~%.0f req/s capacity (%d jobs)\n%!"
    calib_count mean_service_ms capacity_rps jobs;
  (* 2. Sweep. *)
  let steps =
    List.map
      (fun mult ->
        let rate = Float.max 1.0 (capacity_rps *. mult) in
        let t0, t1, n, ok, shed, other = run_step ~port ~body ~rate in
        (mult, rate, t0, t1, n, ok, shed, other))
      rate_multiples
  in
  Atomic.set sampling false;
  let depth_samples = Domain.join sampler in
  (* 3. Per-step stats from the flight recorder. *)
  let records = Obs.Flight.recent (Serve.flight t) in
  Serve.stop t;
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  Printf.printf
    "%-6s %12s %12s %10s %10s %10s %8s %8s\n"
    "mult" "offered r/s" "achieved r/s" "shed rate" "p99 ms" "queue max"
    "ok" "shed";
  let shed_rates_at_or_past_saturation = ref [] in
  List.iteri
    (fun i (mult, rate, t0, t1, _n, c_ok, c_shed, c_other) ->
      let wall = Float.max 1e-9 (t1 -. t0) in
      let in_window (r : Obs.Flight.record) =
        r.Obs.Flight.fr_done_at >= t0 && r.Obs.Flight.fr_done_at <= t1
      in
      let recs = List.filter in_window records in
      let ok_recs =
        List.filter (fun r -> r.Obs.Flight.fr_status = 200) recs
      in
      let total = List.length recs in
      (* Client-side counts are the denominator of record: the flight window
         can clip a request completing just past the step edge. *)
      let denom = max 1 (c_ok + c_shed + c_other) in
      let shed_rate = float_of_int c_shed /. float_of_int denom in
      let achieved = float_of_int total /. wall in
      let service_ms =
        ok_recs
        |> List.map (fun r -> float_of_int r.Obs.Flight.fr_service_ns /. 1e6)
        |> Array.of_list
      in
      Array.sort compare service_ms;
      let p99 = percentile service_ms 0.99 in
      let depth_max =
        List.fold_left
          (fun acc (ts, d) -> if ts >= t0 && ts <= t1 then Float.max acc d else acc)
          0.0 depth_samples
      in
      if mult >= 0.999 then
        shed_rates_at_or_past_saturation :=
          shed_rate :: !shed_rates_at_or_past_saturation;
      Printf.printf "%-6.2f %12.0f %12.0f %10.2f %10.1f %10.0f %8d %8d\n"
        mult rate achieved shed_rate p99 depth_max c_ok c_shed;
      let pre = Printf.sprintf "soak.step%d." i in
      g (pre ^ "offered_rps") rate;
      g (pre ^ "achieved_rps") achieved;
      g (pre ^ "shed_rate") shed_rate;
      g (pre ^ "p99_ms") p99;
      g (pre ^ "queue_depth_max") depth_max;
      g (pre ^ "ok") (float_of_int c_ok);
      g (pre ^ "shed") (float_of_int c_shed))
    steps;
  (* Shed rate must not fall as load climbs past saturation: admission
     control that sheds *less* under *more* overload is broken. Small eps
     absorbs run-to-run noise on short CI steps. *)
  let monotonic =
    let rec check = function
      | a :: (b :: _ as rest) -> b >= a -. 0.05 && check rest
      | _ -> true
    in
    check (List.rev !shed_rates_at_or_past_saturation)
  in
  let nth_step sel =
    match sel (List.rev steps) with
    | Some (_, _, _, _, _, ok, shed, other) ->
        let denom = max 1 (ok + shed + other) in
        float_of_int shed /. float_of_int denom
    | None -> 0.0
  in
  let last = nth_step (fun l -> List.nth_opt l 0) in
  let first =
    nth_step (fun l -> List.nth_opt l (List.length l - 1))
  in
  let overload_p99 =
    Obs.gauge_value
      (Printf.sprintf "soak.step%d.p99_ms" (List.length steps - 1))
  in
  let overload_queue_max =
    Obs.gauge_value
      (Printf.sprintf "soak.step%d.queue_depth_max" (List.length steps - 1))
  in
  g "soak.steps" (float_of_int (List.length steps));
  g "soak.capacity_rps" capacity_rps;
  g "soak.service_ms" mean_service_ms;
  g "soak.shed_monotonic" (if monotonic then 1.0 else 0.0);
  g "soak.low_shed_rate" first;
  g "soak.overload_shed_rate" last;
  g "soak.overload_p99_ms" overload_p99;
  g "soak.overload_queue_depth_max" overload_queue_max;
  Printf.printf
    "shed rate %s across saturation (%.2f low-load -> %.2f at %.1fx); queue capped at %.0f\n"
    (if monotonic then "monotone" else "NON-MONOTONE")
    first last
    (List.fold_left Float.max 0.0 rate_multiples)
    overload_queue_max
