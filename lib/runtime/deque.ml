(* Chase-Lev work-stealing deque.

   The owner pushes and pops at the [bottom]; thieves steal from the [top]
   with a CAS.  OCaml 5 atomics are sequentially consistent, so the simple
   formulation of the algorithm (Chase & Lev, SPAA'05) is sound without the
   explicit fences of the C11 version.

   Slots hold ['a option] so a taken element can be dropped eagerly (no
   space leak keeping dead closures alive through the circular buffer):
   the owner clears the cell in [pop], a thief clears it after a winning
   [steal] (with a CAS so a late clear cannot erase a value the owner has
   since pushed into a recycled cell).

   The buffer and its mask live in one immutable [buf] record published
   through an [Atomic.t], so a thief never observes a fresh array paired
   with a stale mask (or vice versa) across an owner-side resize.  Growth
   copies the [Atomic.t] cells themselves for the live [top, bottom)
   window; a thief that reads the buffer *after* reading [bottom] (as
   [steal] does) therefore finds, at [t land mask], the same cell object
   in whichever buffer version it sees. *)

type 'a buf = { slots : 'a option Atomic.t array; mask : int }

type 'a t = {
  buf : 'a buf Atomic.t;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let make_buf cap = { slots = Array.init cap (fun _ -> Atomic.make None); mask = cap - 1 }

let create ?(capacity = 64) () =
  let capacity = max 2 capacity in
  (* round up to a power of two *)
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Atomic.make (make_buf !cap); top = Atomic.make 0; bottom = Atomic.make 0 }

(* Owner-side size estimate; thieves only need "looks non-empty". *)
let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

(* Owner only: publish a doubled buffer sharing the live window's cells. *)
let grow q old bottom top =
  let n = (old.mask + 1) * 2 in
  let nb = make_buf n in
  for i = top to bottom - 1 do
    nb.slots.(i land nb.mask) <- old.slots.(i land old.mask)
  done;
  Atomic.set q.buf nb;
  nb

(* Owner only. *)
let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow q buf b t else buf in
  Atomic.set buf.slots.(b land buf.mask) (Some x);
  Atomic.set q.bottom (b + 1)

(* Owner only. *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore bottom *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let cell = buf.slots.(b land buf.mask) in
    let x = Atomic.get cell in
    if b > t then begin
      Atomic.set cell None;
      x
    end
    else begin
      (* last element: race thieves for it via top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        x
      end
      else None
    end
  end

(* Any domain.  [None] means empty or lost a race; callers just move on to
   another victim, so the two cases need not be distinguished. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    (* Read the buffer after [bottom]: the publishing order (grow before
       the bottom increment that made index [t] visible) then guarantees
       this buffer version carries index [t]'s cell. *)
    let buf = Atomic.get q.buf in
    let cell = buf.slots.(t land buf.mask) in
    let x = Atomic.get cell in
    if Atomic.compare_and_set q.top t (t + 1) then begin
      (* Eager drop, but only if the cell still holds what we took — a
         slow thief must not wipe a value pushed later into this cell. *)
      ignore (Atomic.compare_and_set cell x None);
      x
    end
    else None
  end
