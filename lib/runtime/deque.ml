(* Chase-Lev work-stealing deque.

   The owner pushes and pops at the [bottom]; thieves steal from the [top]
   with a CAS.  OCaml 5 atomics are sequentially consistent, so the simple
   formulation of the algorithm (Chase & Lev, SPAA'05) is sound without the
   explicit fences of the C11 version.

   Slots hold ['a option] so a taken element can be dropped eagerly (no
   space leak keeping dead closures alive through the circular buffer).
   The buffer grows owner-side only; growth copies the [Atomic.t] cells
   themselves, so a thief that raced with a resize still reads the same
   cell object for any index in the live [top, bottom) window. *)

type 'a t = {
  mutable slots : 'a option Atomic.t array;
  mutable mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create ?(capacity = 64) () =
  let capacity = max 2 capacity in
  (* round up to a power of two *)
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.init !cap (fun _ -> Atomic.make None);
    mask = !cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

(* Owner-side size estimate; thieves only need "looks non-empty". *)
let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let grow q bottom top =
  let old = q.slots and old_mask = q.mask in
  let n = (old_mask + 1) * 2 in
  let slots = Array.init n (fun _ -> Atomic.make None) in
  for i = top to bottom - 1 do
    slots.(i land (n - 1)) <- old.(i land old_mask)
  done;
  q.slots <- slots;
  q.mask <- n - 1

(* Owner only. *)
let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  if b - t > q.mask then grow q b t;
  Atomic.set q.slots.(b land q.mask) (Some x);
  Atomic.set q.bottom (b + 1)

(* Owner only. *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore bottom *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let cell = q.slots.(b land q.mask) in
    let x = Atomic.get cell in
    if b > t then begin
      Atomic.set cell None;
      x
    end
    else begin
      (* last element: race thieves for it via top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        x
      end
      else None
    end
  end

(* Any domain.  [None] means empty or lost a race; callers just move on to
   another victim, so the two cases need not be distinguished. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let x = Atomic.get q.slots.(t land q.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then x else None
  end
