(* Fork-join scheduling on top of [Pool]: async/await futures and
   [parallel_for] with tunable chunking.

   [await] never blocks the domain: while the future is pending it *helps*
   — runs other pool tasks (own deque first, then steals, then injected
   work) — and only backs off with [cpu_relax] when nothing is runnable.
   This keeps recursive task graphs (fib/sort/strassen) deadlock-free on a
   fixed set of workers. *)

type 'a state = Pending | Done of 'a | Raised of exn

type 'a future = 'a state Atomic.t

let async pool f =
  let fut = Atomic.make Pending in
  Pool.submit pool (fun () ->
      let r = try Done (f ()) with e -> Raised e in
      Atomic.set fut r);
  fut

(* Per-domain rng for the help loop's steal sweep. *)
let help_rng : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0x2545f491)

let rec await pool fut =
  match Atomic.get fut with
  | Done v -> v
  | Raised e -> raise e
  | Pending ->
      if not (Pool.try_run_one pool (Domain.DLS.get help_rng)) then
        Domain.cpu_relax ();
      await pool fut

let await_all pool futs = List.iter (fun f -> ignore (await pool f)) futs

(* How a [parallel_for] range is cut into tasks:
   - [Static c]: c contiguous blocks of near-equal size (c <= 0 means
     2 x pool size, the usual over-decomposition default);
   - [Guided grain]: recursive halving down to [grain] iterations per
     task, so early-finishing workers steal the larger unstarted halves. *)
type chunking = Static of int | Guided of int

let default_chunks pool = max 1 (2 * Pool.size pool)

(* [f lo hi] is applied to disjoint sub-ranges covering [lo, hi). *)
let parallel_for_ranges ?(chunking = Static 0) pool ~lo ~hi f =
  if hi > lo then
    match chunking with
    | Static c ->
        let c = if c <= 0 then default_chunks pool else c in
        let n = hi - lo in
        let c = min c n in
        let base = n / c and rem = n mod c in
        let futs = ref [] in
        let start = ref lo in
        for k = 0 to c - 1 do
          let len = base + if k < rem then 1 else 0 in
          let l = !start in
          let h = l + len in
          start := h;
          if k = c - 1 then f l h (* run the last block inline *)
          else futs := async pool (fun () -> f l h) :: !futs
        done;
        await_all pool !futs
    | Guided grain ->
        let grain = max 1 grain in
        let rec go l h =
          if h - l <= grain then f l h
          else begin
            let mid = l + ((h - l) / 2) in
            let right = async pool (fun () -> go mid h) in
            go l mid;
            await pool right
          end
        in
        go lo hi

(* Per-index body over [lo, hi). *)
let parallel_for ?chunking pool ~lo ~hi body =
  parallel_for_ranges ?chunking pool ~lo ~hi (fun l h ->
      for i = l to h - 1 do
        body i
      done)
