(* A pool of persistent worker domains around per-executor Chase-Lev deques.

   Executor 0 is the *caller*: [run] temporarily enrols the calling domain
   so it pushes/pops its own deque like any worker.  Executors 1..n-1 are
   spawned domains that live until [shutdown].  Work submitted from a
   domain that is not an executor goes through a mutex-protected inject
   queue, which executors poll when their own deque and steals come up
   empty.

   Tasks must not block: [Sched.await] helps (pop own deque, steal, run
   injected work) instead of waiting, so as long as every submitted task
   is itself non-blocking the pool cannot deadlock.  Code that needs real
   blocking (the interpreter's lock-serialized DOACROSS hand-offs) runs on
   dedicated domains outside the pool — see [Mil.Par_eval]. *)

type stats = {
  mutable tasks : int;  (* tasks executed by this executor *)
  mutable steals : int; (* successful steals by this executor *)
  mutable busy_ns : int; (* wall time spent inside tasks *)
}

type t = {
  uid : int;
  n : int; (* executors, including the caller slot 0 *)
  deques : (unit -> unit) Deque.t array;
  stats : stats array;
  inject : (unit -> unit) Queue.t;
  inject_mu : Mutex.t;
  stop : bool Atomic.t;
  pending : int Atomic.t; (* submitted but not yet completed *)
  mutable workers : unit Domain.t array;
  c_tasks : Obs.counter;
  c_steals : Obs.counter;
  c_busy : Obs.counter array;
}

let next_uid = Atomic.make 0

(* Which pool/executor the current domain is enrolled in, if any. *)
let dls : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_exec pool =
  match !(Domain.DLS.get dls) with
  | Some (uid, i) when uid = pool.uid -> Some i
  | _ -> None

let size pool = pool.n

(* Cheap per-executor xorshift for randomized victim order. *)
let rand_next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  st := x land max_int;
  !st

let execute pool i f =
  let t0 = Obs.now_ns () in
  (try f ()
   with _ ->
     (* Futures capture exceptions before they reach the pool; a stray one
        from a bare [submit] must not kill the worker. *)
     ());
  let dt = Obs.now_ns () - t0 in
  if i >= 0 then begin
    let st = pool.stats.(i) in
    st.tasks <- st.tasks + 1;
    st.busy_ns <- st.busy_ns + dt;
    Obs.Counter.add pool.c_busy.(i) dt
  end;
  Obs.Counter.incr pool.c_tasks;
  ignore (Atomic.fetch_and_add pool.pending (-1))

let try_inject pool =
  Mutex.lock pool.inject_mu;
  let task = if Queue.is_empty pool.inject then None else Some (Queue.pop pool.inject) in
  Mutex.unlock pool.inject_mu;
  task

(* One scheduling attempt for executor [i]: own deque, then steals in a
   randomized sweep over the other executors, then the inject queue.
   Returns true if a task was run. *)
let try_run_as pool i rng =
  match Deque.pop pool.deques.(i) with
  | Some f ->
      execute pool i f;
      true
  | None -> (
      let n = pool.n in
      let stolen = ref None in
      if n > 1 then begin
        let off = rand_next rng in
        let k = ref 0 in
        while !stolen = None && !k < n - 1 do
          (* [land max_int] first: [off + !k] can wrap negative, and a
             negative [mod] would index the deque array out of bounds. *)
          let v = (i + 1 + (((off + !k) land max_int) mod (n - 1))) mod n in
          (match Deque.steal pool.deques.(v) with
          | Some f -> stolen := Some f
          | None -> ());
          incr k
        done
      end;
      match !stolen with
      | Some f ->
          pool.stats.(i).steals <- pool.stats.(i).steals + 1;
          Obs.Counter.incr pool.c_steals;
          execute pool i f;
          true
      | None -> (
          match try_inject pool with
          | Some f ->
              execute pool i f;
              true
          | None -> false))

(* Help from a domain that is not an executor of this pool: steal or take
   injected work.  Keeps external [await]ers productive and guarantees
   progress even if every worker is busy. *)
let try_run_external pool rng =
  let stolen = ref None in
  let off = rand_next rng in
  let k = ref 0 in
  while !stolen = None && !k < pool.n do
    (match Deque.steal pool.deques.(((off + !k) land max_int) mod pool.n) with
    | Some f -> stolen := Some f
    | None -> ());
    incr k
  done;
  match !stolen with
  | Some f ->
      execute pool (-1) f;
      true
  | None -> (
      match try_inject pool with
      | Some f ->
          execute pool (-1) f;
          true
      | None -> false)

(* Run one available task on the calling domain, from wherever it can be
   found.  Used by [Sched.await]. *)
let try_run_one pool rng =
  match my_exec pool with
  | Some i -> try_run_as pool i rng
  | None -> try_run_external pool rng

let submit pool f =
  ignore (Atomic.fetch_and_add pool.pending 1);
  match my_exec pool with
  | Some i -> Deque.push pool.deques.(i) f
  | None ->
      Mutex.lock pool.inject_mu;
      Queue.push f pool.inject;
      Mutex.unlock pool.inject_mu

let worker_loop pool i =
  let cell = Domain.DLS.get dls in
  cell := Some (pool.uid, i);
  let rng = ref (0x9e3779b9 + (i * 0x85ebca6b)) in
  let idle = ref 0 in
  let continue = ref true in
  while !continue do
    if try_run_as pool i rng then idle := 0
    else if Atomic.get pool.stop && Atomic.get pool.pending = 0 then
      continue := false
    else begin
      incr idle;
      (* Spin briefly, then back off to short sleeps so an idle pool does
         not burn a core. *)
      if !idle < 64 then Domain.cpu_relax ()
      else if !idle < 256 then Unix.sleepf 0.00005
      else Unix.sleepf 0.001
    end
  done;
  cell := None

let create ?(domains = Domain.recommended_domain_count ()) () =
  let n = max 1 domains in
  let pool =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      n;
      deques = Array.init n (fun _ -> Deque.create ());
      stats = Array.init n (fun _ -> { tasks = 0; steals = 0; busy_ns = 0 });
      inject = Queue.create ();
      inject_mu = Mutex.create ();
      stop = Atomic.make false;
      pending = Atomic.make 0;
      workers = [||];
      c_tasks = Obs.counter "runtime.tasks";
      c_steals = Obs.counter "runtime.steals";
      c_busy =
        Array.init n (fun i ->
            Obs.counter (Printf.sprintf "runtime.worker%d.busy_ns" i));
    }
  in
  pool.workers <-
    Array.init (n - 1) (fun k -> Domain.spawn (fun () -> worker_loop pool (k + 1)));
  pool

(* Enrol the calling domain as executor 0 for the duration of [f], so its
   submissions go to its own deque and its awaits help. *)
let run pool f =
  let cell = Domain.DLS.get dls in
  let saved = !cell in
  cell := Some (pool.uid, 0);
  Fun.protect ~finally:(fun () -> cell := saved) f

(* Workers finish everything already submitted, then exit. *)
let shutdown pool =
  Atomic.set pool.stop true;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||];
  (* If the caller raced a submit with shutdown, drain it here so pending
     work is never silently dropped. *)
  let rng = ref 1 in
  while Atomic.get pool.pending > 0 do
    if not (try_run_one pool rng) then Domain.cpu_relax ()
  done

let stats pool =
  Array.map
    (fun s -> { tasks = s.tasks; steals = s.steals; busy_ns = s.busy_ns })
    pool.stats

let total_steals pool =
  Array.fold_left (fun acc s -> acc + s.steals) 0 pool.stats

let total_tasks pool = Array.fold_left (fun acc s -> acc + s.tasks) 0 pool.stats

(* max busy / mean busy over executors that did any work: 1.0 = perfectly
   balanced.  [Measure] reports this per run. *)
let imbalance pool =
  let busy = Array.map (fun s -> float_of_int s.busy_ns) pool.stats in
  let sum = Array.fold_left ( +. ) 0. busy in
  let mx = Array.fold_left max 0. busy in
  if sum <= 0. then 1.0 else mx /. (sum /. float_of_int (Array.length busy))
