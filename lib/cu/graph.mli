(** The CU graph (§3.4): vertices are CUs, edges are profiled data
    dependences mapped to the CUs containing their sink and source lines.
    Edge admission follows Table 3.1: between different CUs all three kinds;
    within one CU only RAW self-edges. *)

module Dep = Profiler.Dep

type edge = {
  e_from : int;              (** the dependent CU (the dependence's sink) *)
  e_to : int;                (** the CU depended on (the source) *)
  e_type : Dep.dtype;
  e_var : string;            (** variable at the dependence's source *)
  e_carried : int option;    (** carrying loop header line, if loop-carried *)
  e_count : int;             (** merged occurrence count *)
  e_risk : float;            (** max false-positive risk of the merged deps
                                 (from {!Dep.prov}; 0 under exact shadows) *)
}

type t = {
  cus : Cu.t array;
  index_of : (int, int) Hashtbl.t;   (** CU id -> array position *)
  edges : edge list;
  succ : int list array;  (** dependence direction: dependent -> source *)
  pred : int list array;
}

val build : ?static_edges:bool -> cus:Cu.t list -> deps:Dep.Set_.t -> unit -> t
(** [static_edges] (default true) adds RAW edges from the CUs'
    interprocedural read/write sets — dataflow through callees is profiled on
    callee lines and cannot be attributed to the calling CUs otherwise. *)

val size : t -> int
val cu : t -> int -> Cu.t
val edges_between : t -> from_:int -> to_:int -> edge list

val raw_succ : ?exclude_vars:(string -> bool) -> t -> int list array
(** RAW-only adjacency (the unbreakable true dependences), by position.
    [exclude_vars] drops edges on variables resolvable by parallel
    reduction. *)

val self_raw : t -> int list
(** Positions of CUs with RAW self-edges: iterative feedback (Fig. 3.4). *)

val to_dot : ?risk_threshold:float -> t -> string
(** Graphviz rendering. Edges whose false-positive risk reaches
    [risk_threshold] (default 0.5) render dashed with the risk in the label —
    `discopop explain --dot`'s risk overlay. Under exact shadows all risks
    are 0 and the output is unchanged. *)
