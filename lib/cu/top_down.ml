(* Top-down CU construction (Algorithm 3, §3.2.3).

   Starting from functions — the largest constructs that naturally resemble
   the read-compute-write pattern — the algorithm checks whether a whole
   control region is one CU: every variable global to the region must have
   all its reads happen before its writes. Reads that violate the pattern
   split the region into multiple CUs at the violating statements. Nested
   regions are treated as single items at their parent's level (a CU never
   crosses a control-region boundary) and are decomposed recursively.

   Special rules (§3.2.5): scalar function parameters belong to the read set
   only; the return value is the virtual variable [ret] in the write set;
   loop iteration variables are local to their loop unless the body writes
   them. *)

open Mil
module SS = Static.SS

(* One item of a region's statement sequence: either a plain statement or a
   nested control region collapsed to its aggregated access sets. *)
type item = {
  it_line : int;
  it_reads : SS.t;         (* region-global variables read by the item *)
  it_writes : SS.t;
  it_lines : int list;     (* all lines covered (subtree for regions) *)
  it_weight : int;
  it_call : bool;
  it_region : int option;  (* nested region id, if the item is a region *)
}

type result = {
  cus : Cu.t list;                  (* every CU, all regions *)
  by_region : (int, Cu.t list) Hashtbl.t;  (* region id -> its CU partition *)
  static : Static.t;
}

let region_lines (st : Static.t) rid =
  let r = st.regions.(rid) in
  let rec span lines id =
    let r = st.regions.(id) in
    let lines = ref lines in
    for l = r.first_line to r.last_line do
      if Hashtbl.find_opt st.line_region l = Some id then lines := l :: !lines
    done;
    List.fold_left span !lines r.children
  in
  span [] r.id

let rec stmt_lines (s : Ast.stmt) =
  s.line
  ::
  (match s.node with
  | Ast.If (_, t, e) -> List.concat_map stmt_lines (t @ e)
  | Ast.While (_, b) -> List.concat_map stmt_lines b
  | Ast.For { body; _ } -> List.concat_map stmt_lines body
  | Ast.Par bs -> List.concat_map stmt_lines (List.concat bs)
  | _ -> [])

let rec stmt_weight (s : Ast.stmt) =
  match s.node with
  | Ast.If (_, t, e) -> 1 + List.fold_left (fun a s -> a + stmt_weight s) 0 (t @ e)
  | Ast.While (_, b) | Ast.For { body = b; _ } ->
      1 + List.fold_left (fun a s -> a + stmt_weight s) 0 b
  | Ast.Par bs ->
      1 + List.fold_left (fun a s -> a + stmt_weight s) 0 (List.concat bs)
  | _ -> 1

let rec stmt_has_call (s : Ast.stmt) =
  let expr_has_call e = Static.expr_callees e [] <> [] in
  match s.node with
  | Ast.Call_stmt _ -> true
  | Ast.Decl (_, e) | Ast.Assign (_, e) | Ast.Atomic_assign (_, e)
  | Ast.Decl_arr (_, e) | Ast.Return (Some e) ->
      expr_has_call e
  | Ast.If (c, t, e) -> expr_has_call c || List.exists stmt_has_call (t @ e)
  | Ast.While (c, b) -> expr_has_call c || List.exists stmt_has_call b
  | Ast.For { lo; hi; step; body; _ } ->
      expr_has_call lo || expr_has_call hi || expr_has_call step
      || List.exists stmt_has_call body
  | Ast.Par bs -> List.exists stmt_has_call (List.concat bs)
  | Ast.Return None | Ast.Break | Ast.Lock _ | Ast.Unlock _ | Ast.Barrier _
  | Ast.Free _ ->
      false

(* Reads and writes of the directly-evaluated expressions of a statement,
   including interprocedural call effects. Nested blocks are NOT included —
   they become their own items. *)
let shallow_rw (st : Static.t) (s : Ast.stmt) : SS.t * SS.t =
  let reads_of e = Static.expr_read_vars e SS.empty in
  let call_effects e =
    List.fold_left
      (fun (r, w) (callee_name, args) ->
        match List.find_opt (fun g -> g.Ast.fname = callee_name) st.program.funcs with
        | None -> (r, w)
        | Some callee -> (
            match Static.summary st callee_name with
            | None -> (r, w)
            | Some callee_sum ->
                let cr, cw = Static.apply_call_summary ~callee_sum ~callee ~args in
                (SS.union r cr, SS.union w cw)))
      (SS.empty, SS.empty) (Static.expr_callees e [])
  in
  let of_expr e =
    let cr, cw = call_effects e in
    (SS.union (reads_of e) cr, cw)
  in
  match s.node with
  | Ast.Decl (x, e) | Ast.Decl_arr (x, e) ->
      let r, w = of_expr e in
      (r, SS.add x w)
  | Ast.Assign (l, e) | Ast.Atomic_assign (l, e) ->
      let r, w = of_expr e in
      let r = SS.union r (Static.lhs_index_reads l) in
      (r, SS.add (Static.lhs_written l) w)
  | Ast.Call_stmt (f, args) -> of_expr (Ast.Call (f, args))
  | Ast.Return (Some e) ->
      let r, w = of_expr e in
      (r, SS.add "ret" w)
  | Ast.Return None -> (SS.empty, SS.singleton "ret")
  | Ast.If (c, _, _) | Ast.While (c, _) -> of_expr c
  | Ast.For { lo; hi; step; _ } ->
      let r1, w1 = of_expr lo in
      let r2, w2 = of_expr hi in
      let r3, w3 = of_expr step in
      (SS.union r1 (SS.union r2 r3), SS.union w1 (SS.union w2 w3))
  | Ast.Free x -> (SS.empty, SS.singleton x)
  | Ast.Break | Ast.Lock _ | Ast.Unlock _ | Ast.Barrier _ | Ast.Par _ ->
      (SS.empty, SS.empty)

(* The variable set used for CU construction in region [rid]: variables global
   to the region, with the §3.2.5 special rules applied — function parameters
   and the virtual [ret] are global to a function body; a loop index is local
   to its loop unless the body writes it. *)
let construction_globals (st : Static.t) rid =
  let r = st.regions.(rid) in
  let gv = SS.union r.globals_read r.globals_written in
  match r.kind with
  | Static.Rloop { index = Some ix; _ } ->
      if r.index_written_in_body then SS.add ix gv else SS.remove ix gv
  | Static.Rfunc fname ->
      let f = Ast.find_func st.program fname in
      SS.add "ret" (SS.union gv (SS.of_list f.Ast.params))
  | Static.Rloop { index = None; _ } | Static.Rbranch _ -> gv

(* Items of region [rid]: its direct statements, with nested-region statements
   collapsed. The per-item sets are restricted to [gv]. *)
let items_of_region (st : Static.t) rid gv : item list =
  let r = st.regions.(rid) in
  (* Children regions in source order, to match statements that own them. *)
  let child_of_line = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      let c = st.regions.(cid) in
      let prev = try Hashtbl.find child_of_line c.first_line with Not_found -> [] in
      Hashtbl.replace child_of_line c.first_line (prev @ [ cid ]))
    r.children;
  List.map
    (fun (s : Ast.stmt) ->
      match s.node with
      | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Par _ ->
          let subregions =
            try Hashtbl.find child_of_line s.line with Not_found -> []
          in
          let reads, writes =
            List.fold_left
              (fun (r_acc, w_acc) cid ->
                let c = st.regions.(cid) in
                (SS.union r_acc c.globals_read, SS.union w_acc c.globals_written))
              (shallow_rw st s) subregions
          in
          { it_line = s.line;
            it_reads = SS.inter reads gv;
            it_writes = SS.inter writes gv;
            it_lines = stmt_lines s;
            it_weight = stmt_weight s;
            it_call = stmt_has_call s;
            it_region = (match subregions with [ c ] -> Some c | _ -> None) }
      | _ ->
          let reads, writes = shallow_rw st s in
          { it_line = s.line;
            it_reads = SS.inter reads gv;
            it_writes = SS.inter writes gv;
            it_lines = [ s.line ];
            it_weight = stmt_weight s;
            it_call = stmt_has_call s;
            it_region = None })
    r.stmts

(* Partition the item sequence of one region into CUs: cut before every item
   containing a violating read — a read of a global already written by an
   earlier item of the region (the read-compute-write pattern is broken). *)
let partition_items items : item list list =
  let written = ref SS.empty in
  let segments = ref [] in
  let current = ref [] in
  List.iter
    (fun it ->
      let violating = not (SS.is_empty (SS.inter it.it_reads !written)) in
      if violating && !current <> [] then begin
        segments := List.rev !current :: !segments;
        current := [];
        written := SS.empty
      end;
      current := it :: !current;
      written := SS.union !written it.it_writes)
    items;
  if !current <> [] then segments := List.rev !current :: !segments;
  List.rev !segments

let c_cus = Obs.counter "cu.top_down.cus"

let build (st : Static.t) : result =
  Obs.Span.with_ ~phase:"cu.top_down" @@ fun () ->
  let by_region = Hashtbl.create 16 in
  let all = ref [] in
  let next_id = ref 0 in
  let rec build_region rid =
    let gv = construction_globals st rid in
    let items = items_of_region st rid gv in
    let segments = partition_items items in
    let func = Static.func_of_region st rid in
    (* by-value parameters never enter a write set (§3.2.5) *)
    let param_filter =
      match st.regions.(rid).kind with
      | Static.Rfunc fname ->
          let f = Ast.find_func st.program fname in
          fun ws -> List.fold_left (fun acc p -> SS.remove p acc) ws f.Ast.params
      | Static.Rloop _ | Static.Rbranch _ -> Fun.id
    in
    let cus =
      List.map
        (fun seg ->
          let id = !next_id in
          incr next_id;
          let lines = List.concat_map (fun it -> it.it_lines) seg in
          let read_set =
            List.fold_left (fun acc it -> SS.union acc it.it_reads) SS.empty seg
          in
          let write_set =
            param_filter
              (List.fold_left (fun acc it -> SS.union acc it.it_writes) SS.empty seg)
          in
          let weight = List.fold_left (fun acc it -> acc + it.it_weight) 0 seg in
          Cu.make ~id ~region:rid ~func ~lines ~read_set ~write_set ~weight
            ~contains_call:(List.exists (fun it -> it.it_call) seg)
            ~contains_region:(List.exists (fun it -> it.it_region <> None) seg))
        segments
    in
    Hashtbl.replace by_region rid cus;
    all := cus @ !all;
    (* Recurse: nested regions get their own internal decomposition. *)
    List.iter build_region st.regions.(rid).children
  in
  Array.iter
    (fun (r : Static.region) -> if r.parent = -1 then build_region r.id)
    st.regions;
  Obs.Counter.add c_cus !next_id;
  { cus = List.rev !all; by_region; static = st }

let cus_of_region (res : result) rid =
  try Hashtbl.find res.by_region rid with Not_found -> []

(* True when the whole region satisfies the read-compute-write pattern. *)
let region_is_single_cu res rid =
  match cus_of_region res rid with [ _ ] | [] -> true | _ :: _ :: _ -> false
