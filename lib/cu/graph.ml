(* The CU graph (§3.4): vertices are CUs, edges are profiled data dependences
   mapped to the CUs containing their sink and source lines.

   Edge admission follows Table 3.1: between different CUs all three kinds
   are kept; within one CU only RAW self-edges are kept (they reveal the
   iterative read-compute-write-feedback pattern), WAR/WAW self-edges carry
   no information for parallelism discovery and are dropped. *)

module Dep = Profiler.Dep

type edge = {
  e_from : int;              (* the dependent CU (the dependence's sink) *)
  e_to : int;                (* the CU depended on (the source) *)
  e_type : Dep.dtype;
  e_var : string;            (* variable at the dependence's source *)
  e_carried : int option;    (* carrying loop header line, if loop-carried *)
  e_count : int;             (* merged occurrence count *)
  e_risk : float;            (* max false-positive risk of the merged deps *)
}

type t = {
  cus : Cu.t array;                       (* indexed by position *)
  index_of : (int, int) Hashtbl.t;        (* cu id -> position *)
  edges : edge list;
  succ : int list array;  (* dependence direction: from dependent to source *)
  pred : int list array;
}

let line_map (cus : Cu.t list) =
  let m = Hashtbl.create 64 in
  List.iter
    (fun (cu : Cu.t) ->
      Cu.SS.iter
        (fun lk ->
          (* Innermost CU wins if several cover a line; later entries come
             from deeper regions in construction order, so keep the last. *)
          Hashtbl.replace m (int_of_string lk) cu.Cu.id)
        cu.Cu.lines)
    cus;
  m

let build ?(static_edges = true) ~(cus : Cu.t list) ~(deps : Dep.Set_.t) () : t =
  let arr = Array.of_list cus in
  let index_of = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i cu -> Hashtbl.replace index_of cu.Cu.id i) arr;
  let lines = line_map cus in
  let tbl : (int * int * Dep.dtype * string * int option, int * float) Hashtbl.t =
    Hashtbl.create 64
  in
  Dep.Set_.iter
    (fun d count ->
      match d.Dep.dtype with
      | Dep.Init -> ()
      | _ -> (
          match
            ( Hashtbl.find_opt lines d.Dep.sink_line,
              Hashtbl.find_opt lines d.Dep.src_line )
          with
          | Some c_sink, Some c_src ->
              let same = c_sink = c_src in
              let keep =
                match d.Dep.dtype with
                | Dep.Raw -> true
                | Dep.War | Dep.Waw -> not same
                | Dep.Init -> false
              in
              if keep then begin
                let key = (c_sink, c_src, d.Dep.dtype, d.Dep.var, d.Dep.carrier) in
                let prev_n, prev_r =
                  try Hashtbl.find tbl key with Not_found -> (0, 0.0)
                in
                (* An edge merging several records is as suspect as its most
                   collision-prone witness. *)
                Hashtbl.replace tbl key
                  (prev_n + count, Float.max prev_r (Dep.Set_.risk_of deps d))
              end
          | _ -> ()))
    deps;
  let edges =
    Hashtbl.fold
      (fun (f, t_, ty, var, ca) (n, risk) acc ->
        { e_from = f; e_to = t_; e_type = ty; e_var = var; e_carried = ca;
          e_count = n; e_risk = risk }
        :: acc)
      tbl []
  in
  (* Dataflow through callees is profiled on the callee's source lines and
     cannot be attributed to the calling CUs by line; the CUs' interprocedural
     read/write sets can. Add a static RAW edge whenever a later CU of the
     same region reads a variable an earlier one wrote. *)
  let edges =
    if not static_edges then edges
    else begin
      let by_region = Hashtbl.create 8 in
      List.iter
        (fun (cu : Cu.t) ->
          let prev = try Hashtbl.find by_region cu.Cu.region with Not_found -> [] in
          Hashtbl.replace by_region cu.Cu.region (cu :: prev))
        cus;
      Hashtbl.fold
        (fun _ group acc ->
          let ordered =
            List.sort (fun (a : Cu.t) b -> compare a.Cu.first_line b.Cu.first_line)
              group
          in
          let rec pairs acc = function
            | [] -> acc
            | (a : Cu.t) :: rest ->
                let acc =
                  List.fold_left
                    (fun acc (b : Cu.t) ->
                      match
                        Cu.SS.choose_opt (Cu.SS.inter a.Cu.write_set b.Cu.read_set)
                      with
                      | Some var ->
                          { e_from = b.Cu.id; e_to = a.Cu.id; e_type = Dep.Raw;
                            e_var = var; e_carried = None; e_count = 0;
                            e_risk = 0.0 }
                          :: acc
                      | None -> acc)
                    acc rest
                in
                pairs acc rest
          in
          pairs acc ordered)
        by_region edges
    end
  in
  let n = Array.length arr in
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt index_of e.e_from, Hashtbl.find_opt index_of e.e_to) with
      | Some i, Some j when i <> j ->
          succ.(i) <- j :: succ.(i);
          pred.(j) <- i :: pred.(j)
      | _ -> ())
    edges;
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq compare l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.sort_uniq compare l) pred;
  { cus = arr; index_of; edges; succ; pred }

let size g = Array.length g.cus
let cu g i = g.cus.(i)

let edges_between g ~from_ ~to_ =
  List.filter (fun e -> e.e_from = from_ && e.e_to = to_) g.edges

(* RAW edges only, by graph position — the "true dependences that cannot be
   broken" view used for task discovery. [exclude_vars] drops edges on
   variables resolvable by parallel reduction. *)
let raw_succ ?(exclude_vars = fun (_ : string) -> false) g =
  let n = size g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      if e.e_type = Dep.Raw && not (exclude_vars e.e_var) then
        match (Hashtbl.find_opt g.index_of e.e_from, Hashtbl.find_opt g.index_of e.e_to) with
        | Some i, Some j when i <> j -> adj.(i) <- j :: adj.(i)
        | _ -> ())
    g.edges;
  Array.map (List.sort_uniq compare) adj

(* Self RAW edges: the CU feeds itself across executions (Fig 3.4). *)
let self_raw g =
  List.filter_map
    (fun e ->
      if e.e_type = Dep.Raw && e.e_from = e.e_to then
        Hashtbl.find_opt g.index_of e.e_from
      else None)
    g.edges
  |> List.sort_uniq compare

(* [risk_threshold]: edges whose false-positive risk reaches it render dashed
   (with the risk in the label), so a signature-shadow run's suspect edges
   are visually separable from trustworthy ones. Risk is 0 everywhere under
   exact shadows, reproducing the old output byte for byte. *)
let to_dot ?(risk_threshold = 0.5) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph cu_graph {\n";
  Array.iteri
    (fun i (cu : Cu.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"CU%d %d-%d\\nr:%s w:%s\"];\n" i
           cu.Cu.id cu.Cu.first_line cu.Cu.last_line
           (String.concat "," (Cu.SS.elements cu.Cu.read_set))
           (String.concat "," (Cu.SS.elements cu.Cu.write_set))))
    g.cus;
  List.iter
    (fun e ->
      match (Hashtbl.find_opt g.index_of e.e_from, Hashtbl.find_opt g.index_of e.e_to) with
      | Some i, Some j ->
          let risky = e.e_risk > 0.0 && e.e_risk >= risk_threshold in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s%s%s\"%s];\n" i j
               (Dep.dtype_to_string e.e_type)
               (match e.e_carried with Some _ -> "*" | None -> "")
               (if risky then Printf.sprintf " r=%.2f" e.e_risk else "")
               (if risky then ", style=dashed" else ""))
      | _ -> ())
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
