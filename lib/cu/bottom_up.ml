(* Bottom-up CU construction (§3.2.3).

   The dynamic alternative to Algorithm 3: every instruction starts as its own
   CU; a CU is merged with the CUs of the instructions it anti-depends on
   (WAR), while true dependences (RAW) become graph edges. The paper found
   the resulting CUs too fine-grained for task discovery (Fig 3.7) but uses
   them for fine-grained views; we reproduce the method at source-line
   granularity over the profiled dependence set, with dependences on
   region-local variables excluded per step 2 of the algorithm. *)

module Dep = Profiler.Dep
module SS = Mil.Static.SS

type t = {
  group_of_line : (int, int) Hashtbl.t;  (* line -> CU group id *)
  groups : (int, int list) Hashtbl.t;    (* group id -> member lines *)
  raw_edges : (int * int) list;          (* group -> group true dependences *)
}

let c_groups = Obs.counter "cu.bottom_up.groups"

(* Union-find over lines. *)
let build ?(exclude_vars = SS.empty) ~lo ~hi (deps : Dep.Set_.t) : t =
  Obs.Span.with_ ~phase:"cu.bottom_up" @@ fun () ->
  let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec find l =
    match Hashtbl.find_opt parent l with
    | Some p when p <> l ->
        let r = find p in
        Hashtbl.replace parent l r;
        r
    | Some _ -> l
    | None ->
        Hashtbl.replace parent l l;
        l
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent rb ra
  in
  let in_range l = l >= lo && l <= hi in
  (* Merge along anti-dependences. *)
  Dep.Set_.iter
    (fun d _ ->
      if
        d.Dep.dtype = Dep.War
        && (not (SS.mem d.Dep.var exclude_vars))
        && in_range d.Dep.sink_line && in_range d.Dep.src_line
      then union d.Dep.src_line d.Dep.sink_line)
    deps;
  (* Collect groups and RAW edges between them. *)
  let group_of_line = Hashtbl.create 64 in
  let groups = Hashtbl.create 64 in
  for l = lo to hi do
    if Hashtbl.mem parent l then begin
      let g = find l in
      Hashtbl.replace group_of_line l g;
      let prev = try Hashtbl.find groups g with Not_found -> [] in
      Hashtbl.replace groups g (l :: prev)
    end
  done;
  let raw_edges = ref [] in
  Dep.Set_.iter
    (fun d _ ->
      if
        d.Dep.dtype = Dep.Raw
        && (not (SS.mem d.Dep.var exclude_vars))
        && in_range d.Dep.sink_line && in_range d.Dep.src_line
      then begin
        let gs = find d.Dep.sink_line and gd = find d.Dep.src_line in
        raw_edges := (gs, gd) :: !raw_edges
      end)
    deps;
  Obs.Counter.add c_groups (Hashtbl.length groups);
  { group_of_line; groups; raw_edges = List.sort_uniq compare !raw_edges }

let n_groups t = Hashtbl.length t.groups

(* The dynamic, instruction-level variant (§3.2.3's on-the-fly algorithm):
   every static memory operation starts as its own CU; a write merges with
   the operations it anti-depends on (the last readers of the address), true
   dependences become edges, and local-variable accesses are excluded by the
   caller's [exclude_vars]. This is the construction whose output is "too
   fine to discover coarse-grained parallel tasks" (Fig 3.7) — the reason
   the framework adopted the top-down algorithm. *)

type dynamic = {
  group_of_op : (int, int) Hashtbl.t;      (* op id -> group representative *)
  op_lines : (int, int) Hashtbl.t;         (* op id -> source line *)
  d_raw_edges : (int * int) list;          (* group -> group true deps *)
  n_ops : int;
}

let build_dynamic ?(exclude_vars = SS.empty) (events : Trace.Event.t list) :
    dynamic =
  Obs.Span.with_ ~phase:"cu.bottom_up" @@ fun () ->
  let parent : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec find o =
    match Hashtbl.find_opt parent o with
    | Some p when p <> o ->
        let r = find p in
        Hashtbl.replace parent o r;
        r
    | Some _ -> o
    | None ->
        Hashtbl.replace parent o o;
        o
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent rb ra
  in
  let op_lines = Hashtbl.create 256 in
  (* last reader ops and last writer op per address *)
  let readers : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let writer : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let raw = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Event.Access a
        when not (SS.mem (Trace.Intern.Sym.name a.Trace.Event.var) exclude_vars)
        ->
          Hashtbl.replace op_lines a.Trace.Event.op a.Trace.Event.line;
          ignore (find a.Trace.Event.op);
          (match a.Trace.Event.kind with
          | Trace.Event.Read ->
              (match Hashtbl.find_opt writer a.Trace.Event.addr with
              | Some w -> raw := (a.Trace.Event.op, w) :: !raw
              | None -> ());
              let prev =
                try Hashtbl.find readers a.Trace.Event.addr with Not_found -> []
              in
              Hashtbl.replace readers a.Trace.Event.addr
                (a.Trace.Event.op :: List.filteri (fun i _ -> i < 7) prev)
          | Trace.Event.Write ->
              (* merge with the operations this write anti-depends on *)
              (match Hashtbl.find_opt readers a.Trace.Event.addr with
              | Some rs -> List.iter (fun r -> union r a.Trace.Event.op) rs
              | None -> ());
              Hashtbl.replace writer a.Trace.Event.addr a.Trace.Event.op;
              Hashtbl.replace readers a.Trace.Event.addr [])
      | Trace.Event.Access _ -> ()
      | Trace.Event.Region (Trace.Event.Dealloc { addrs }) ->
          List.iter
            (fun (base, len, _) ->
              for addr = base to base + len - 1 do
                Hashtbl.remove readers addr;
                Hashtbl.remove writer addr
              done)
            addrs
      | Trace.Event.Region _ -> ())
    events;
  let group_of_op = Hashtbl.create 256 in
  Hashtbl.iter (fun o _ -> Hashtbl.replace group_of_op o (find o)) parent;
  let d_raw_edges =
    List.rev_map (fun (snk, src) -> (find snk, find src)) !raw
    |> List.filter (fun (a, b) -> a <> b)
    |> List.sort_uniq compare
  in
  { group_of_op; op_lines; d_raw_edges; n_ops = Hashtbl.length parent }

let dynamic_group_count d =
  Hashtbl.fold (fun _ g acc -> g :: acc) d.group_of_op []
  |> List.sort_uniq compare |> List.length
