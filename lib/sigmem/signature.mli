(** Signature-based shadow memory (§2.3.2): a fixed-length slot array indexed
    by a single hash of the memory address. Distinct addresses hashing to the
    same slot collide — the accuracy/space trade-off of Table 2.6. One hash
    function (not a k-hash Bloom filter) is used so variable-lifetime
    analysis can remove elements. Read and write signatures share one flat
    off-heap {!Store}, one (read, write) slot pair per hash index. *)

type t

val hash_addr : int -> int -> int
(** [hash_addr addr slots]: the slot index, via splitmix-style bit mixing so
    dense bump-allocator addresses land in quasi-random slots. *)

val create : slots:int -> t
(** Two signatures (reads and writes) of [slots] slots each. *)

val load : t -> addr:int -> Cell.t -> Cell.t -> int
(** Hash [addr] once; decode its read and write slots into the scratch
    cells; return the slot index for [store_*]. Collisions may decode
    another address's record — that is the point. *)

val store_read : t -> int -> Cell.t -> unit
val store_write : t -> int -> Cell.t -> unit

val remove : t -> addr:int -> unit
(** Variable-lifetime analysis (§2.3.5): clear [addr]'s slots. *)

val slots_used : t -> int
(** Occupied slots across both signatures. *)

val occupied_reads : t -> int
val occupied_writes : t -> int

val takeovers : t -> int
(** Occupied-slot overwrites whose stored variable differs from the incoming
    one — a cheap collision proxy for the false-positive pressure of
    Table 2.6 (slots do not retain the hashed address). *)

val slots : t -> int

val collision_risk : t -> float
(** Current false-positive risk: the occupied fraction across both
    signatures, i.e. the probability a fresh address's probe hits a stale
    colliding slot right now — the per-witness analogue of Eq. 2.2. Feeds
    the per-dependence risk column of [discopop explain]. *)

val word_footprint : t -> int
(** Approximate resident words of the store itself. *)

val extra_stats : t -> (string * int) list
(** Slots, per-signature occupancy, takeovers — the {!Shadow.S} gauges. *)

val fp_risk : t -> float
(** Alias of {!collision_risk}, satisfying {!Shadow.S}. *)
