(* The "perfect signature" (§2.5.1): an exact shadow memory in which every
   address has its own entry, so hash collisions — and hence false positives
   and false negatives — cannot occur. Used as the ground-truth baseline for
   measuring the signature's FPR/FNR, and offered to users who need 100%
   accurate dependences (§2.3.7) at a time/memory premium. *)

type entry = { mutable r : Cell.t; mutable w : Cell.t }

type t = { tbl : (int, entry) Hashtbl.t }

let create ~slots:_ = { tbl = Hashtbl.create 4096 }

(* [Hashtbl.find] + [Not_found] instead of [find_opt]: lookups run once or
   twice per dynamic access and the option would be a minor allocation each
   time; the exception path only triggers on an address's first touch. *)
let entry t addr =
  match Hashtbl.find t.tbl addr with
  | e -> e
  | exception Not_found ->
      let e = { r = Cell.empty; w = Cell.empty } in
      Hashtbl.replace t.tbl addr e;
      e

let last_read t ~addr =
  match Hashtbl.find t.tbl addr with
  | e -> e.r
  | exception Not_found -> Cell.empty

let last_write t ~addr =
  match Hashtbl.find t.tbl addr with
  | e -> e.w
  | exception Not_found -> Cell.empty

let set_read t ~addr cell = (entry t addr).r <- cell
let set_write t ~addr cell = (entry t addr).w <- cell
let remove t ~addr = Hashtbl.remove t.tbl addr

let slots_used t =
  Hashtbl.fold
    (fun _ e n ->
      n
      + (if Cell.is_empty e.r then 0 else 1)
      + if Cell.is_empty e.w then 0 else 1)
    t.tbl 0

(* Hashtbl entry: key + record of two pointers + bucket overhead (~6 words) *)
let word_footprint t = 6 * Hashtbl.length t.tbl

let extra_stats _ = []
let fp_risk _ = 0.0
