(* The "perfect signature" (§2.5.1): an exact shadow memory in which every
   address has its own entry, so hash collisions — and hence false positives
   and false negatives — cannot occur. Used as the ground-truth baseline for
   measuring the signature's FPR/FNR, and offered to users who need 100%
   accurate dependences (§2.3.7) at a time/memory premium.

   Implementation: an open-addressed, linear-probing table of int keys over
   a flat off-heap {!Store} of (read, write) slot pairs — the i-th key owns
   the i-th pair. One probe sequence per access resolves both slots (the
   boxed-Hashtbl predecessor paid two lookups plus a per-entry record);
   inserting never allocates on the OCaml minor heap (keys live in a plain
   int array, pairs in the Bigarray store). Removals (variable-lifetime
   analysis) leave tombstones that are recycled by later inserts and
   squeezed out on growth. *)

(* Interpreter addresses are small non-negative ints; the sentinels cannot
   collide with any real address. *)
let empty_key = min_int
let tomb_key = min_int + 1

type t = {
  mutable keys : int array;     (* unboxed ints: no write barrier *)
  mutable data : Store.t;
  mutable mask : int;           (* capacity - 1; capacity a power of two *)
  mutable live : int;           (* entries holding a real key *)
  mutable tombs : int;
}

let initial_capacity = 1024

(* Same splitmix-style mixing as the signature, masked instead of mod. *)
let mix addr =
  let h = addr in
  let h = (h lxor (h lsr 30)) * 0x1F85EBCA6B land max_int in
  let h = (h lxor (h lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  h lxor (h lsr 31)

let create ~slots:_ =
  { keys = Array.make initial_capacity empty_key;
    data = Store.create initial_capacity;
    mask = initial_capacity - 1;
    live = 0;
    tombs = 0 }

(* The probe loops take all state as arguments: as closures over [t] they
   would be allocated on every call, and [find] runs once per access. *)

(* Slot of [addr], or -1. Terminates because the load factor cap keeps at
   least a quarter of the table [empty_key]. *)
let rec find_from keys addr mask i =
  let k = Array.unsafe_get keys i in
  if k = addr then i
  else if k = empty_key then -1
  else find_from keys addr mask ((i + 1) land mask)

let find t addr = find_from t.keys addr t.mask (mix addr land t.mask)

(* First reusable slot (tombstone or empty) on [addr]'s probe path; the
   caller has established that [addr] is absent. *)
let rec insert_from keys mask i =
  let k = Array.unsafe_get keys i in
  if k = empty_key || k = tomb_key then i else insert_from keys mask ((i + 1) land mask)

let insert_pos t addr = insert_from t.keys t.mask (mix addr land t.mask)

(* Double (or, when tombstones dominate, just rebuild) and reinsert the live
   entries, moving their slot pairs. *)
let grow t =
  let old_keys = t.keys and old_data = t.data in
  let cap = t.mask + 1 in
  let cap' = if t.live * 2 > cap then 2 * cap else cap in
  let keys = Array.make cap' empty_key in
  let data = Store.create cap' in
  let mask' = cap' - 1 in
  Array.iteri
    (fun i k ->
      if k <> empty_key && k <> tomb_key then begin
        let rec free j =
          if keys.(j) = empty_key then j else free ((j + 1) land mask')
        in
        let j = free (mix k land mask') in
        keys.(j) <- k;
        Store.blit_pair old_data i data j
      end)
    old_keys;
  t.keys <- keys;
  t.data <- data;
  t.mask <- mask';
  t.tombs <- 0

let load t ~addr r w =
  let i = find t addr in
  let i =
    if i >= 0 then i
    else begin
      (* Keep load ≤ 3/4 including tombstones so probes stay short and
         [find] always terminates. *)
      if (t.live + t.tombs + 1) * 4 > (t.mask + 1) * 3 then grow t;
      let i = insert_pos t addr in
      if Array.unsafe_get t.keys i = tomb_key then t.tombs <- t.tombs - 1;
      t.keys.(i) <- addr;
      t.live <- t.live + 1;
      i
    end
  in
  Store.load t.data (Store.read_base i) r;
  Store.load t.data (Store.write_base i) w;
  i

let store_read t i cell = Store.store t.data (Store.read_base i) cell
let store_write t i cell = Store.store t.data (Store.write_base i) cell

let remove t ~addr =
  let i = find t addr in
  if i >= 0 then begin
    t.keys.(i) <- tomb_key;
    t.live <- t.live - 1;
    t.tombs <- t.tombs + 1;
    Store.clear_pair t.data i
  end

let slots_used t = Store.occupied t.data

let capacity t = t.mask + 1
let live t = t.live

(* Keys array + slot store. *)
let word_footprint t = (t.mask + 1) + Store.words t.data

let extra_stats t =
  [ ("capacity", t.mask + 1); ("live", t.live); ("tombstones", t.tombs) ]

let fp_risk _ = 0.0
