(* The per-slot access record exchanged with shadow memories.

   The paper stores the source line of the last read and the last write per
   slot (3-byte slots, §2.3.2). We additionally keep the attribution data the
   profiler reports (variable, thread, timestamp, loop stack, static memory
   operation id). With interned names and loop stacks (Trace.Intern) every
   field is an immediate int.

   Since the off-heap overhaul, cells are *scratch buffers*, not stored
   values: the shadow backends keep slots as packed int fields in flat
   off-heap stores ({!Store}) and decode/encode them through a handful of
   per-engine mutable cells. Nothing on the per-access hot path allocates a
   cell — each engine creates its three scratches once and reuses them for
   every access. *)

type t = {
  mutable line : int;               (* source line of the access *)
  mutable var : int;                (* variable name (Trace.Intern.Sym) *)
  mutable thread : int;
  mutable time : int;               (* global timestamp; 0 = empty *)
  mutable op : int;                 (* static memory-operation id *)
  mutable lstack : int;             (* loop stack (Trace.Intern.Lstack id) *)
  mutable locked : bool;
}

(* A fresh scratch cell holding the empty sentinel; [time = 0] never occurs
   in real accesses. *)
let scratch () =
  { line = 0; var = -1; thread = -1; time = 0; op = -1;
    lstack = Trace.Intern.Lstack.empty; locked = false }

let clear c =
  c.line <- 0;
  c.var <- -1;
  c.thread <- -1;
  c.time <- 0;
  c.op <- -1;
  c.lstack <- Trace.Intern.Lstack.empty;
  c.locked <- false

let is_empty c = c.time = 0

(* Construction by fields, for tests and micro-benchmarks. *)
let v ~line ~var ~thread ~time ~op ~lstack ~locked =
  { line; var; thread; time; op; lstack; locked }

let set c (a : Trace.Event.access) =
  c.line <- a.line;
  c.var <- a.var;
  c.thread <- a.thread;
  c.time <- a.time;
  c.op <- a.op;
  c.lstack <- a.lstack;
  c.locked <- a.locked
