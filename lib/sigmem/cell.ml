(* The per-slot access record kept by shadow memories.

   The paper stores the source line of the last read and the last write per
   slot (3-byte slots, §2.3.2). We additionally keep the attribution data the
   profiler reports (variable, thread, timestamp, loop stack, static memory
   operation id). With interned names and loop stacks (Trace.Intern) every
   field is an immediate int, so a cell is one flat 8-word record: storing an
   access copies no strings and no lists, and the memory behaviour of the
   signature is unchanged — accuracy loss still comes only from hash
   collisions. *)

type t = {
  line : int;                       (* source line of the access *)
  var : int;                        (* variable name (Trace.Intern.Sym) *)
  thread : int;
  time : int;                       (* global timestamp *)
  op : int;                         (* static memory-operation id *)
  lstack : int;                     (* loop stack (Trace.Intern.Lstack id) *)
  locked : bool;
}

let of_access (a : Trace.Event.access) =
  { line = a.line; var = a.var; thread = a.thread; time = a.time; op = a.op;
    lstack = a.lstack; locked = a.locked }

(* Sentinel for empty slots; [time = 0] never occurs in real accesses. *)
let empty =
  { line = 0; var = -1; thread = -1; time = 0; op = -1;
    lstack = Trace.Intern.Lstack.empty; locked = false }

let is_empty c = c.time = 0
