(* Flat off-heap backing store for shadow slots.

   A store is a Bigarray of native ints holding fixed-width packed slots —
   the reproduction of the paper's compact shadow slots (§2.3.2: 3 bytes per
   access record there; here 6 machine words of interned attribution data).
   Every shadow backend keeps its slots in one or more of these arrays
   instead of boxed per-slot records, which buys three things on the
   per-access hot path:

   - zero allocation: storing an access writes 6 ints in place (no record
     construction, no minor-heap churn);
   - no GC write barrier: Bigarray data lives outside the OCaml heap, so
     slot updates never call [caml_modify] (an array of boxed cells pays the
     barrier on every store);
   - locality: a slot's fields are adjacent, and the read/write slots of one
     address are adjacent to each other, so a shadow probe touches one or
     two cache lines instead of chasing per-cell pointers.

   Layout: slots come in (read, write) pairs, one pair per address slot.
   Each slot is [field_count] ints; field 0 packs the global timestamp and
   the locked flag as [time lsl 1 lor locked], so 0 marks an empty slot
   ([time = 0] never occurs in real accesses) and emptiness is a single
   load. Cells ({!Cell}) are the mutable scratch records slots are decoded
   into / encoded from. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* timelocked, line, var, thread, op, lstack *)
let field_count = 6
let pair_width = 2 * field_count

let create pairs : t =
  let a =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (pairs * pair_width)
  in
  Bigarray.Array1.fill a 0;
  a

let pairs (t : t) = Bigarray.Array1.dim t / pair_width

(* Base index of the read / write slot of pair [i]. *)
let read_base i = i * pair_width
let write_base i = (i * pair_width) + field_count

let is_empty (t : t) base = Bigarray.Array1.unsafe_get t base = 0

let load (t : t) base (c : Cell.t) =
  let tl = Bigarray.Array1.unsafe_get t base in
  c.Cell.time <- tl lsr 1;
  c.Cell.locked <- tl land 1 = 1;
  c.Cell.line <- Bigarray.Array1.unsafe_get t (base + 1);
  c.Cell.var <- Bigarray.Array1.unsafe_get t (base + 2);
  c.Cell.thread <- Bigarray.Array1.unsafe_get t (base + 3);
  c.Cell.op <- Bigarray.Array1.unsafe_get t (base + 4);
  c.Cell.lstack <- Bigarray.Array1.unsafe_get t (base + 5)

let store (t : t) base (c : Cell.t) =
  Bigarray.Array1.unsafe_set t base
    ((c.Cell.time lsl 1) lor (if c.Cell.locked then 1 else 0));
  Bigarray.Array1.unsafe_set t (base + 1) c.Cell.line;
  Bigarray.Array1.unsafe_set t (base + 2) c.Cell.var;
  Bigarray.Array1.unsafe_set t (base + 3) c.Cell.thread;
  Bigarray.Array1.unsafe_set t (base + 4) c.Cell.op;
  Bigarray.Array1.unsafe_set t (base + 5) c.Cell.lstack

(* The stored variable symbol, without decoding the whole slot (collision
   accounting in the signature backend). *)
let var_at (t : t) base = Bigarray.Array1.unsafe_get t (base + 2)

let clear (t : t) base =
  for k = 0 to field_count - 1 do
    Bigarray.Array1.unsafe_set t (base + k) 0
  done

let clear_pair (t : t) i = clear t (read_base i); clear t (write_base i)

(* Move pair [i] of [src] into pair [j] of [dst] (open-addressed rehash). *)
let blit_pair (src : t) i (dst : t) j =
  let sb = read_base i and db = read_base j in
  for k = 0 to pair_width - 1 do
    Bigarray.Array1.unsafe_set dst (db + k) (Bigarray.Array1.unsafe_get src (sb + k))
  done

(* Number of occupied (non-empty) slots, both kinds; observe-time only. *)
let occupied (t : t) =
  let n = ref 0 in
  let slots = 2 * pairs t in
  for s = 0 to slots - 1 do
    if Bigarray.Array1.unsafe_get t (s * field_count) <> 0 then incr n
  done;
  !n

(* Resident words of the backing array (one int element = one word). *)
let words (t : t) = Bigarray.Array1.dim t
