(* Shadow-memory interface shared by the approximate signature and the exact
   ("perfect signature") implementations.

   A shadow memory records, per memory address, the last read access and the
   last write access. Algorithm 2 of the paper is expressed entirely against
   this interface, so the profiler can be instantiated with either backing
   store. *)

module type S = sig
  type t

  val create : slots:int -> t
  (** [slots] bounds the store for approximate implementations; exact
      implementations may ignore it. *)

  val last_read : t -> addr:int -> Cell.t
  (** The recorded last read of [addr]; {!Cell.is_empty} if none. *)

  val last_write : t -> addr:int -> Cell.t

  val set_read : t -> addr:int -> Cell.t -> unit
  val set_write : t -> addr:int -> Cell.t -> unit

  val remove : t -> addr:int -> unit
  (** Variable-lifetime analysis: forget all state for [addr]. *)

  val slots_used : t -> int
  (** Number of distinct occupied slots (memory-consumption reporting). *)

  val word_footprint : t -> int
  (** Approximate resident words of the store itself. *)

  val extra_stats : t -> (string * int) list
  (** Backend-specific observability (collision proxy, per-signature
      occupancy, page count), published as [<prefix>.shadow.*] gauges. *)

  val fp_risk : t -> float
  (** False-positive risk attribution for the dependence being recorded
      right now: slot-occupancy collision proxy for the signature, 0 for
      exact backends. Stored in each record's first-witness provenance. *)
end

(* Predicted false-positive probability of a signature after inserting [n]
   distinct addresses into [m] slots (Equation 2.2): 1 - (1 - 1/m)^n. *)
let predicted_fpr ~slots ~addresses =
  if slots <= 0 then 1.0
  else 1.0 -. ((1.0 -. (1.0 /. float_of_int slots)) ** float_of_int addresses)
