(** Flat off-heap backing store for shadow slots.

    A Bigarray of native ints holding fixed-width packed slots in
    (read, write) pairs — one pair per address slot. Slot field 0 packs the
    timestamp and locked flag as [time lsl 1 lor locked], so 0 marks an
    empty slot and emptiness is a single load. Slots are decoded into /
    encoded from mutable {!Cell} scratches; nothing here allocates on the
    per-access path, and updates never touch the GC write barrier (the data
    lives outside the OCaml heap). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val field_count : int
(** Ints per slot. *)

val pair_width : int
(** Ints per (read, write) slot pair, [2 * field_count]. *)

val create : int -> t
(** [create n] is a zeroed store of [n] slot pairs. *)

val pairs : t -> int

val read_base : int -> int
(** Base index of pair [i]'s read slot. *)

val write_base : int -> int
(** Base index of pair [i]'s write slot. *)

val is_empty : t -> int -> bool
(** [is_empty t base]: is the slot at [base] empty? One load. *)

val load : t -> int -> Cell.t -> unit
(** Decode the slot at [base] into the scratch cell; an empty slot decodes
    to [time = 0]. *)

val store : t -> int -> Cell.t -> unit
(** Encode the scratch cell into the slot at [base]. *)

val var_at : t -> int -> int
(** The stored variable symbol of the slot at [base], without a full
    decode (signature collision accounting). *)

val clear : t -> int -> unit
(** Zero the slot at [base]. *)

val clear_pair : t -> int -> unit
(** Zero both slots of pair [i]. *)

val blit_pair : t -> int -> t -> int -> unit
(** [blit_pair src i dst j] copies pair [i] of [src] into pair [j] of
    [dst] (open-addressed rehash). *)

val occupied : t -> int
(** Occupied (non-empty) slots of either kind; O(slots), observe-time
    only. *)

val words : t -> int
(** Resident words of the backing array. *)
