(* Signature-based shadow memory (§2.3.2).

   A signature is a fixed-length slot array indexed by a single hash of the
   memory address. Distinct addresses hashing to the same slot collide: the
   membership check then reports a stale access, creating false-positive
   dependences and masking true ones (false negatives) — the accuracy/space
   trade-off quantified in Table 2.6.

   One hash function (not a k-hash Bloom filter) is used deliberately so that
   variable-lifetime analysis can *remove* elements (§2.3.2). The read and
   write signatures share one flat off-heap store ({!Store}), one (read,
   write) slot pair per hash index, so each access resolves the hash once and
   probes adjacent memory for both slots. *)

type t = {
  slots : int;
  mask : int;
      (* [slots - 1] when [slots] is a power of two, else 0: the standard
         64K/4096-slot configurations reduce the hash with one [land]
         instead of an integer division — same indices, no [div] on the hot
         path *)
  store : Store.t;                   (* [slots] (read, write) pairs *)
  mutable occupied_reads : int;
  mutable occupied_writes : int;
  (* Occupied-slot overwrites where the stored variable differs from the
     incoming one: a cheap proxy for hash collisions (slots do not retain the
     address), i.e. for the false-positive pressure of Table 2.6. *)
  mutable takeovers : int;
}

(* Splitmix-style bit mixing: dense bump-allocator addresses must land in
   quasi-random slots, otherwise collision statistics (the FPR/FNR behaviour
   of Table 2.6) would not reflect the signature's approximate nature. *)
let mix addr =
  let h = addr in
  let h = (h lxor (h lsr 30)) * 0x1F85EBCA6B land max_int in
  let h = (h lxor (h lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  h lxor (h lsr 31)

let hash_addr addr slots = mix addr mod slots

let create ~slots =
  let slots = max slots 1 in
  { slots;
    mask = (if slots land (slots - 1) = 0 then slots - 1 else 0);
    store = Store.create slots;
    occupied_reads = 0;
    occupied_writes = 0;
    takeovers = 0 }

(* [mix] is non-negative, so masking and [mod] agree on power-of-two slot
   counts: [hash_addr] remains the specification. *)
let slot_of t addr =
  let h = mix addr in
  if t.mask <> 0 then h land t.mask else h mod t.slots

let load t ~addr r w =
  let i = slot_of t addr in
  Store.load t.store (Store.read_base i) r;
  Store.load t.store (Store.write_base i) w;
  i

let store_read t i (cell : Cell.t) =
  let base = Store.read_base i in
  if Store.is_empty t.store base then
    t.occupied_reads <- t.occupied_reads + 1
  else if Store.var_at t.store base <> cell.Cell.var then
    t.takeovers <- t.takeovers + 1;
  Store.store t.store base cell

let store_write t i (cell : Cell.t) =
  let base = Store.write_base i in
  if Store.is_empty t.store base then
    t.occupied_writes <- t.occupied_writes + 1
  else if Store.var_at t.store base <> cell.Cell.var then
    t.takeovers <- t.takeovers + 1;
  Store.store t.store base cell

let remove t ~addr =
  let i = slot_of t addr in
  let rb = Store.read_base i and wb = Store.write_base i in
  if not (Store.is_empty t.store rb) then begin
    Store.clear t.store rb;
    t.occupied_reads <- t.occupied_reads - 1
  end;
  if not (Store.is_empty t.store wb) then begin
    Store.clear t.store wb;
    t.occupied_writes <- t.occupied_writes - 1
  end

let slots_used t = t.occupied_reads + t.occupied_writes
let occupied_reads t = t.occupied_reads
let occupied_writes t = t.occupied_writes
let takeovers t = t.takeovers
let slots t = t.slots

(* Current false-positive risk attribution: the occupied fraction across both
   signatures — the probability that a fresh address's membership probe hits
   a stale colliding slot (the per-witness analogue of Eq. 2.2's predicted
   FPR, which integrates over a whole run). 0 when empty, → 1 as slots
   fill. *)
let collision_risk t =
  float_of_int (t.occupied_reads + t.occupied_writes)
  /. float_of_int (2 * t.slots)

let word_footprint t = Store.words t.store

let extra_stats t =
  [ ("slots", t.slots);
    ("occupied_reads", t.occupied_reads);
    ("occupied_writes", t.occupied_writes);
    ("takeovers", t.takeovers) ]

let fp_risk = collision_risk
