(* Signature-based shadow memory (§2.3.2).

   A signature is a fixed-length array indexed by a single hash of the memory
   address. Distinct addresses hashing to the same slot collide: the
   membership check then reports a stale access, creating false-positive
   dependences and masking true ones (false negatives) — the accuracy/space
   trade-off quantified in Table 2.6.

   One hash function (not a k-hash Bloom filter) is used deliberately so that
   variable-lifetime analysis can *remove* elements (§2.3.2). Two signatures
   are kept: one for reads, one for writes. *)

type t = {
  slots : int;
  reads : Cell.t array;
  writes : Cell.t array;
  mutable occupied_reads : int;
  mutable occupied_writes : int;
  (* Occupied-slot overwrites where the stored variable differs from the
     incoming one: a cheap proxy for hash collisions (cells do not retain the
     address), i.e. for the false-positive pressure of Table 2.6. *)
  mutable takeovers : int;
}

(* Splitmix-style bit mixing: dense bump-allocator addresses must land in
   quasi-random slots, otherwise collision statistics (the FPR/FNR behaviour
   of Table 2.6) would not reflect the signature's approximate nature. *)
let hash_addr addr slots =
  let h = addr in
  let h = (h lxor (h lsr 30)) * 0x1F85EBCA6B land max_int in
  let h = (h lxor (h lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  let h = h lxor (h lsr 31) in
  h mod slots

let create ~slots =
  let slots = max slots 1 in
  { slots;
    reads = Array.make slots Cell.empty;
    writes = Array.make slots Cell.empty;
    occupied_reads = 0;
    occupied_writes = 0;
    takeovers = 0 }

let last_read t ~addr = t.reads.(hash_addr addr t.slots)
let last_write t ~addr = t.writes.(hash_addr addr t.slots)

let set_read t ~addr cell =
  let i = hash_addr addr t.slots in
  let old = t.reads.(i) in
  if Cell.is_empty old then t.occupied_reads <- t.occupied_reads + 1
  else if old.Cell.var <> cell.Cell.var then t.takeovers <- t.takeovers + 1;
  t.reads.(i) <- cell

let set_write t ~addr cell =
  let i = hash_addr addr t.slots in
  let old = t.writes.(i) in
  if Cell.is_empty old then t.occupied_writes <- t.occupied_writes + 1
  else if old.Cell.var <> cell.Cell.var then t.takeovers <- t.takeovers + 1;
  t.writes.(i) <- cell

let remove t ~addr =
  let i = hash_addr addr t.slots in
  if not (Cell.is_empty t.reads.(i)) then begin
    t.reads.(i) <- Cell.empty;
    t.occupied_reads <- t.occupied_reads - 1
  end;
  if not (Cell.is_empty t.writes.(i)) then begin
    t.writes.(i) <- Cell.empty;
    t.occupied_writes <- t.occupied_writes - 1
  end

let slots_used t = t.occupied_reads + t.occupied_writes
let occupied_reads t = t.occupied_reads
let occupied_writes t = t.occupied_writes
let takeovers t = t.takeovers
let slots t = t.slots

(* Current false-positive risk attribution: the occupied fraction across both
   signatures — the probability that a fresh address's membership probe hits
   a stale colliding cell (the per-witness analogue of Eq. 2.2's predicted
   FPR, which integrates over a whole run). 0 when empty, → 1 as slots
   fill. *)
let collision_risk t =
  float_of_int (t.occupied_reads + t.occupied_writes)
  /. float_of_int (2 * t.slots)

(* Each slot holds one boxed record pointer; count array words. *)
let word_footprint t = 2 * t.slots

let extra_stats t =
  [ ("slots", t.slots);
    ("occupied_reads", t.occupied_reads);
    ("occupied_writes", t.occupied_writes);
    ("takeovers", t.takeovers) ]

let fp_risk = collision_risk
