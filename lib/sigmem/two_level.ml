(* Two-level paged exact shadow memory.

   The classic alternative to both the signature and a flat hash table
   (§2.3.2): the address space is split into fixed-size pages allocated on
   first touch, so lookups are two array indexings — faster than hashing at
   the cost of memory proportional to the touched address range. This is the
   "multilevel tables" design the paper mentions as partially mitigating
   shadow memory's footprint; the micro-benchmarks compare all three. *)

type page = { reads : Cell.t array; writes : Cell.t array }

type t = {
  page_bits : int;
  mutable pages : page option array;  (* indexed by addr lsr page_bits *)
}

let default_page_bits = 12

let create ~slots:_ =
  { page_bits = default_page_bits; pages = Array.make 64 None }

let page_size t = 1 lsl t.page_bits

let ensure_dir t idx =
  if idx >= Array.length t.pages then begin
    let cap = max (2 * Array.length t.pages) (idx + 1) in
    let d = Array.make cap None in
    Array.blit t.pages 0 d 0 (Array.length t.pages);
    t.pages <- d
  end

let page_of t addr ~create_missing =
  let idx = addr lsr t.page_bits in
  ensure_dir t idx;
  match t.pages.(idx) with
  | Some p -> Some p
  | None ->
      if create_missing then begin
        let p =
          { reads = Array.make (page_size t) Cell.empty;
            writes = Array.make (page_size t) Cell.empty }
        in
        t.pages.(idx) <- Some p;
        Some p
      end
      else None

let offset t addr = addr land (page_size t - 1)

let last_read t ~addr =
  match page_of t addr ~create_missing:false with
  | Some p -> p.reads.(offset t addr)
  | None -> Cell.empty

let last_write t ~addr =
  match page_of t addr ~create_missing:false with
  | Some p -> p.writes.(offset t addr)
  | None -> Cell.empty

let set_read t ~addr cell =
  match page_of t addr ~create_missing:true with
  | Some p -> p.reads.(offset t addr) <- cell
  | None -> ()

let set_write t ~addr cell =
  match page_of t addr ~create_missing:true with
  | Some p -> p.writes.(offset t addr) <- cell
  | None -> ()

let remove t ~addr =
  match page_of t addr ~create_missing:false with
  | Some p ->
      p.reads.(offset t addr) <- Cell.empty;
      p.writes.(offset t addr) <- Cell.empty
  | None -> ()

let pages_allocated t =
  Array.fold_left
    (fun acc page -> match page with None -> acc | Some _ -> acc + 1)
    0 t.pages

let slots_used t =
  Array.fold_left
    (fun acc page ->
      match page with
      | None -> acc
      | Some p ->
          let count arr =
            Array.fold_left
              (fun n c -> if Cell.is_empty c then n else n + 1)
              0 arr
          in
          acc + count p.reads + count p.writes)
    0 t.pages

let word_footprint t =
  Array.fold_left
    (fun acc page -> match page with None -> acc + 1 | Some _ -> acc + (2 * page_size t))
    0 t.pages

let extra_stats t = [ ("pages", pages_allocated t) ]
let fp_risk _ = 0.0
