(* Two-level paged exact shadow memory.

   The classic alternative to both the signature and a flat hash table
   (§2.3.2): the address space is split into fixed-size pages allocated on
   first touch, so lookups are two array indexings — faster than hashing at
   the cost of memory proportional to the touched address range. This is the
   "multilevel tables" design the paper mentions as partially mitigating
   shadow memory's footprint; the micro-benchmarks compare all three.

   Each page is one flat off-heap {!Store} of [page_size] (read, write) slot
   pairs, so a page lookup lands on the address's read and write slots
   adjacently. The page located by [load] is cached in [cur] so the matching
   [store_*] does not repeat the directory walk. *)

type t = {
  page_bits : int;
  mutable dir : Store.t array;        (* indexed by addr lsr page_bits *)
  mutable cur : Store.t;              (* page located by the last [load] *)
  mutable pages_allocated : int;
}

(* Missing-page sentinel (zero pairs); compared physically. *)
let null : Store.t = Store.create 0

let default_page_bits = 12

let create ~slots:_ =
  { page_bits = default_page_bits; dir = Array.make 64 null; cur = null;
    pages_allocated = 0 }

let page_size t = 1 lsl t.page_bits

let ensure_dir t idx =
  if idx >= Array.length t.dir then begin
    let cap = max (2 * Array.length t.dir) (idx + 1) in
    let d = Array.make cap null in
    Array.blit t.dir 0 d 0 (Array.length t.dir);
    t.dir <- d
  end

let load t ~addr r w =
  let idx = addr lsr t.page_bits in
  ensure_dir t idx;
  let p = Array.unsafe_get t.dir idx in
  let p =
    if p != null then p
    else begin
      let p = Store.create (page_size t) in
      t.dir.(idx) <- p;
      t.pages_allocated <- t.pages_allocated + 1;
      p
    end
  in
  t.cur <- p;
  let off = addr land (page_size t - 1) in
  Store.load p (Store.read_base off) r;
  Store.load p (Store.write_base off) w;
  off

let store_read t off cell = Store.store t.cur (Store.read_base off) cell
let store_write t off cell = Store.store t.cur (Store.write_base off) cell

let remove t ~addr =
  let idx = addr lsr t.page_bits in
  if idx < Array.length t.dir then begin
    let p = t.dir.(idx) in
    if p != null then Store.clear_pair p (addr land (page_size t - 1))
  end

let pages_allocated t = t.pages_allocated

let slots_used t =
  Array.fold_left
    (fun acc p -> if p == null then acc else acc + Store.occupied p)
    0 t.dir

let word_footprint t =
  Array.fold_left
    (fun acc p -> if p == null then acc + 1 else acc + Store.words p)
    0 t.dir

let extra_stats t = [ ("pages", pages_allocated t) ]
let fp_risk _ = 0.0
