(** The per-slot access record kept by shadow memories.

    The paper stores the source line of the last read and the last write per
    slot (§2.3.2); we additionally keep the attribution data the profiler
    reports. With interned names and loop stacks every field is an immediate
    int — one flat record per stored access. *)

type t = {
  line : int;                       (** source line of the access *)
  var : int;                        (** variable name ({!Trace.Intern.Sym}) *)
  thread : int;
  time : int;                       (** global timestamp; 0 = empty slot *)
  op : int;                         (** static memory-operation id *)
  lstack : int;                     (** loop stack ({!Trace.Intern.Lstack}) *)
  locked : bool;
}

val of_access : Trace.Event.access -> t

val empty : t
(** Sentinel for empty slots; [time = 0] never occurs in real accesses. *)

val is_empty : t -> bool
