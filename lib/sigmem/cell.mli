(** The per-slot access record exchanged with shadow memories.

    The paper stores the source line of the last read and the last write per
    slot (§2.3.2); we additionally keep the attribution data the profiler
    reports. With interned names and loop stacks every field is an immediate
    int.

    Cells are mutable *scratch buffers*: shadow backends keep slots as
    packed int fields in flat off-heap stores ({!Store}) and decode/encode
    them through per-engine scratch cells, so the per-access hot path
    allocates nothing. *)

type t = {
  mutable line : int;         (** source line of the access *)
  mutable var : int;          (** variable name ({!Trace.Intern.Sym}) *)
  mutable thread : int;
  mutable time : int;         (** global timestamp; 0 = empty slot *)
  mutable op : int;           (** static memory-operation id *)
  mutable lstack : int;       (** loop stack ({!Trace.Intern.Lstack}) *)
  mutable locked : bool;
}

val scratch : unit -> t
(** A fresh scratch cell holding the empty sentinel ([time = 0], which never
    occurs in real accesses). *)

val clear : t -> unit
(** Reset to the empty sentinel. *)

val is_empty : t -> bool

val v :
  line:int -> var:int -> thread:int -> time:int -> op:int -> lstack:int ->
  locked:bool -> t
(** Construction by fields, for tests and micro-benchmarks. *)

val set : t -> Trace.Event.access -> unit
(** Copy an access record's attribution fields into the scratch. *)
