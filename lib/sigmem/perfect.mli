(** The "perfect signature" (§2.5.1): an exact shadow memory in which every
    address has its own entry, so collisions — and hence false positives and
    false negatives — cannot occur. The ground-truth baseline for measuring
    the signature's FPR/FNR, and the 100%-accuracy option of §2.3.7.

    Implemented as an open-addressed, linear-probing int-keyed table over a
    flat off-heap {!Store} of (read, write) slot pairs: one probe sequence
    per access resolves both slots, inserts allocate nothing on the minor
    heap, removals leave tombstones squeezed out on growth. *)

type t

val create : slots:int -> t
(** [slots] is ignored; the table grows with the touched address set. *)

val load : t -> addr:int -> Cell.t -> Cell.t -> int
(** Probe (inserting on first touch, growing at 3/4 load) and decode
    [addr]'s slots into the scratches; return the table slot handle. *)

val store_read : t -> int -> Cell.t -> unit
val store_write : t -> int -> Cell.t -> unit

val remove : t -> addr:int -> unit
(** Tombstone [addr]'s entry and clear its slots; never grows the table. *)

val slots_used : t -> int
val capacity : t -> int
val live : t -> int

val word_footprint : t -> int

val extra_stats : t -> (string * int) list
(** Capacity, live entries, tombstones — the {!Shadow.S} gauges. *)

val fp_risk : t -> float
(** Always 0: exact backends produce no false positives. *)
