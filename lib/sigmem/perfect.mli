(** The "perfect signature" (§2.5.1): an exact, hash-table-backed shadow
    memory in which every address has its own entry, so false positives and
    false negatives cannot occur. The ground-truth baseline for measuring
    the signature's FPR/FNR, and the 100%-accuracy option of §2.3.7. *)

type t

val create : slots:int -> t
(** [slots] is ignored; the table grows with the touched address set. *)

val last_read : t -> addr:int -> Cell.t
val last_write : t -> addr:int -> Cell.t
val set_read : t -> addr:int -> Cell.t -> unit
val set_write : t -> addr:int -> Cell.t -> unit
val remove : t -> addr:int -> unit
val slots_used : t -> int
val word_footprint : t -> int

val extra_stats : t -> (string * int) list
(** Always empty: nothing approximate to report. *)

val fp_risk : t -> float
(** Always 0: exact backends produce no false positives. *)
