(** Shadow-memory interface shared by the approximate signature and the exact
    implementations, plus the Eq. 2.2 false-positive predictor. *)

(** Every shadow memory records, per address, the last read and the last
    write access; Algorithm 2 is expressed against this interface.

    The interface is handle-based and allocation-free: {!S.load} locates the
    (read, write) slot pair for an address in the backend's flat off-heap
    store ({!Store}), decodes both slots into caller-owned scratch cells,
    and returns an opaque slot handle; the matching
    {!S.store_read}/{!S.store_write} encodes the current access into that
    handle without re-locating it. *)
module type S = sig
  type t

  val create : slots:int -> t
  (** [slots] bounds the store for approximate implementations; exact
      implementations may ignore it. *)

  val load : t -> addr:int -> Cell.t -> Cell.t -> int
  (** [load t ~addr r w] locates the slot pair for [addr] — allocating
      backing storage on first touch — decodes the recorded last read into
      [r] and the last write into [w] ({!Cell.is_empty}, i.e. [time = 0],
      when none), and returns the slot handle for the matching [store_*]
      call. The handle is invalidated by the next [load] or [remove] on
      [t]. *)

  val store_read : t -> int -> Cell.t -> unit
  (** Record the cell as the last read of the pair behind the handle
      returned by the preceding {!load}. *)

  val store_write : t -> int -> Cell.t -> unit

  val remove : t -> addr:int -> unit
  (** Variable-lifetime analysis: forget all state for [addr]. Never
      allocates backing storage. *)

  val slots_used : t -> int
  (** Number of distinct occupied slots (memory-consumption reporting);
      may be O(store), called at observe time only. *)

  val word_footprint : t -> int
  (** Approximate resident words of the store itself. *)

  val extra_stats : t -> (string * int) list
  (** Backend-specific observability (collision proxy, per-signature
      occupancy, page count), published as [<prefix>.shadow.*] gauges. *)

  val fp_risk : t -> float
  (** False-positive risk attribution for the dependence being recorded
      right now: slot-occupancy collision proxy for the signature, 0 for
      exact backends. Stored in each record's first-witness provenance. *)
end

val predicted_fpr : slots:int -> addresses:int -> float
(** Equation 2.2: the probability that a given slot is occupied after
    inserting [addresses] distinct addresses into [slots] slots,
    [1 - (1 - 1/m)^n]. *)
