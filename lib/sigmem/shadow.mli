(** Shadow-memory interface shared by the approximate signature and the exact
    implementations, plus the Eq. 2.2 false-positive predictor. *)

(** Every shadow memory records, per address, the last read and the last
    write access; Algorithm 2 is expressed against this interface. *)
module type S = sig
  type t

  val create : slots:int -> t
  (** [slots] bounds the store for approximate implementations; exact
      implementations may ignore it. *)

  val last_read : t -> addr:int -> Cell.t
  (** The recorded last read of [addr]; {!Cell.is_empty} if none. *)

  val last_write : t -> addr:int -> Cell.t
  val set_read : t -> addr:int -> Cell.t -> unit
  val set_write : t -> addr:int -> Cell.t -> unit

  val remove : t -> addr:int -> unit
  (** Variable-lifetime analysis: forget all state for [addr]. *)

  val slots_used : t -> int
  (** Number of distinct occupied slots (memory-consumption reporting). *)

  val word_footprint : t -> int
  (** Approximate resident words of the store itself. *)

  val extra_stats : t -> (string * int) list
  (** Backend-specific observability (collision proxy, per-signature
      occupancy, page count), published as [<prefix>.shadow.*] gauges. *)

  val fp_risk : t -> float
  (** False-positive risk attribution for the dependence being recorded
      right now: slot-occupancy collision proxy for the signature, 0 for
      exact backends. Stored in each record's first-witness provenance. *)
end

val predicted_fpr : slots:int -> addresses:int -> float
(** Equation 2.2: the probability that a given slot is occupied after
    inserting [addresses] distinct addresses into [slots] slots,
    [1 - (1 - 1/m)^n]. *)
