(** Two-level paged exact shadow memory: the address space is split into
    pages allocated on first touch, so lookups are two array indexings —
    faster than hashing, memory proportional to the touched address range.
    The "multilevel tables" design the paper mentions in §2.3.2. *)

type t

val default_page_bits : int

val create : slots:int -> t
(** [slots] is ignored; pages are allocated on demand. *)

val last_read : t -> addr:int -> Cell.t
val last_write : t -> addr:int -> Cell.t
val set_read : t -> addr:int -> Cell.t -> unit
val set_write : t -> addr:int -> Cell.t -> unit
val remove : t -> addr:int -> unit
val slots_used : t -> int
val word_footprint : t -> int

val pages_allocated : t -> int
(** Pages materialised by first-touch allocation so far. *)

val extra_stats : t -> (string * int) list
(** The allocated-page count, as the {!Shadow.S} gauge. *)

val fp_risk : t -> float
(** Always 0: exact backends produce no false positives. *)
