(** Two-level paged exact shadow memory: the address space is split into
    pages allocated on first touch, so lookups are two array indexings —
    faster than hashing, memory proportional to the touched address range.
    The "multilevel tables" design the paper mentions in §2.3.2. Each page
    is one flat off-heap {!Store} of (read, write) slot pairs; [load]
    caches the located page for the matching [store_*]. *)

type t

val default_page_bits : int

val create : slots:int -> t
(** [slots] is ignored; pages are allocated on demand. *)

val load : t -> addr:int -> Cell.t -> Cell.t -> int
(** Locate (first-touch allocating) [addr]'s page, decode its slots into
    the scratches, cache the page, return the in-page slot handle. *)

val store_read : t -> int -> Cell.t -> unit
val store_write : t -> int -> Cell.t -> unit

val remove : t -> addr:int -> unit
(** Clears [addr]'s slots; never allocates a page. *)

val slots_used : t -> int
val word_footprint : t -> int

val pages_allocated : t -> int
(** Pages materialised by first-touch allocation so far. *)

val extra_stats : t -> (string * int) list
(** The allocated-page count, as the {!Shadow.S} gauge. *)

val fp_risk : t -> float
(** Always 0: exact backends produce no false positives. *)
