(* Batch pipeline driver with a content-addressed result cache.

   The ROADMAP's production north star needs profiling cost amortized across
   runs: every `discopop` invocation used to re-run phases 1-3 for a single
   workload from scratch, and the bench harness re-profiled identical
   programs across experiments. Here a batch of workloads runs concurrently
   over a bounded pool of domains, phase-1 results are keyed by the content
   hash of (program, profiler config) and persisted on disk, and a job that
   raises or overruns its deadline is reported — never fatal to the batch. *)

module Suggestion = Discovery.Suggestion

let now () = Unix.gettimeofday ()

(* ---- Obs wiring ---- *)

let c_ok = Obs.counter "pipeline.jobs.ok"
let c_failed = Obs.counter "pipeline.jobs.failed"
let c_timeout = Obs.counter "pipeline.jobs.timeout"
let c_cache_hit = Obs.counter "pipeline.jobs.cache_hit"
let c_cache_miss = Obs.counter "pipeline.jobs.cache_miss"
let c_retried = Obs.counter "pipeline.jobs.retried"
let c_evicted = Obs.counter "pipeline.cache.evicted"

(* ---- content-addressed cache ---- *)

module Cache = struct
  type config = {
    shadow : Profiler.Engine.shadow_kind;
    skip : bool;
    workers : int;
    threads : int;
  }

  let default_config =
    { shadow = Profiler.Engine.Perfect; skip = true; workers = 0; threads = 4 }

  (* Bump when the cached representation changes shape (depfile format,
     summary format, scoring semantics): old entries then miss instead of
     round-tripping stale bytes. *)
  let format_version = 1

  let config_to_string (c : config) =
    Printf.sprintf "shadow=%s skip=%b workers=%d threads=%d"
      (match c.shadow with
      | Profiler.Engine.Perfect -> "perfect"
      | Profiler.Engine.Paged -> "paged"
      | Profiler.Engine.Signature n -> Printf.sprintf "signature:%d" n)
      c.skip c.workers c.threads

  let key (c : config) (prog : Mil.Ast.program) : string =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "discopop-cache v%d\n%s\n%s" format_version
            (config_to_string c)
            (Mil.Pretty.render_program prog)))

  let deps_path ~dir ~key = Filename.concat dir (key ^ ".deps")
  let sugg_path ~dir ~key = Filename.concat dir (key ^ ".sugg")

  type limits = { max_bytes : int option; ttl_s : float option }

  let no_limits = { max_bytes = None; ttl_s = None }

  let limits ?max_mb ?ttl_s () =
    { max_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_mb; ttl_s }

  (* mtime doubles as the recency stamp: {!load} touches both files of an
     entry on a hit, so LRU-by-mtime sees reads, not just writes. *)
  let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

  (* One entry = the <key>.deps / <key>.sugg pair; its size is the pair's
     total bytes, its recency the newer of the two mtimes. Files vanishing
     mid-scan (a concurrent sweep) are skipped, never an error. *)
  let entries dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | files ->
        let tbl = Hashtbl.create 32 in
        Array.iter
          (fun f ->
            match Filename.extension f with
            | ".deps" | ".sugg" -> (
                match Unix.stat (Filename.concat dir f) with
                | exception Unix.Unix_error _ -> ()
                | st ->
                    let key = Filename.remove_extension f in
                    let sz, mt =
                      try Hashtbl.find tbl key with Not_found -> (0, 0.0)
                    in
                    Hashtbl.replace tbl key
                      ( sz + st.Unix.st_size,
                        Float.max mt st.Unix.st_mtime ))
            | _ -> ())
          files;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

  let remove_entry ~dir ~key =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ deps_path ~dir ~key; sugg_path ~dir ~key ]

  (* Evict expired entries (mtime older than the TTL), then — if the
     directory still exceeds the byte budget — least-recently-used entries,
     oldest mtime first, until it fits. [keep] shields a key (the one just
     published) from eviction regardless of budget pressure. Returns the
     number of entries removed; also counted on [pipeline.cache.evicted]. *)
  let sweep ?keep ~dir (l : limits) : int =
    if l.max_bytes = None && l.ttl_s = None then 0
    else begin
      let now = Unix.gettimeofday () in
      let keep_key k = keep = Some k in
      let evicted = ref 0 in
      let evict key =
        remove_entry ~dir ~key;
        incr evicted
      in
      let live = entries dir in
      let live =
        match l.ttl_s with
        | None -> live
        | Some ttl ->
            List.filter
              (fun (k, (_, mt)) ->
                if (not (keep_key k)) && now -. mt > ttl then begin
                  evict k;
                  false
                end
                else true)
              live
      in
      (match l.max_bytes with
      | None -> ()
      | Some budget ->
          let total =
            List.fold_left (fun acc (_, (sz, _)) -> acc + sz) 0 live
          in
          let by_age =
            List.sort (fun (_, (_, a)) (_, (_, b)) -> compare a b) live
          in
          let rec drop total = function
            | [] -> ()
            | _ when total <= budget -> ()
            | (k, (sz, _)) :: rest ->
                if keep_key k then drop total rest
                else begin
                  evict k;
                  drop (total - sz) rest
                end
          in
          drop total by_age);
      Obs.Counter.add c_evicted !evicted;
      !evicted
    end

  let read_file path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try Some (really_input_string ic (in_channel_length ic))
            with Sys_error _ | End_of_file -> None)

  let load ~dir ~key : (Profiler.Dep.Set_.t * string) option =
    match Profiler.Depfile.read_opt (deps_path ~dir ~key) with
    | None -> None
    | Some deps -> (
        match read_file (sugg_path ~dir ~key) with
        | None -> None
        | Some summary -> (
            (* A summary that no longer parses is a miss: the job re-runs
               and overwrites the entry. *)
            match Suggestion.summary_of_string summary with
            | Ok _ ->
                (* refresh the recency stamp so LRU eviction spares entries
                   that are actually being read *)
                touch (deps_path ~dir ~key);
                touch (sugg_path ~dir ~key);
                Some (deps, summary)
            | Error _ -> None))

  (* Atomic publish: write to a unique temp file in the cache directory,
     then rename over the final name. Concurrent jobs storing the same key
     race benignly — both write identical bytes. *)
  let write_atomic path contents =
    let dir = Filename.dirname path in
    let tmp =
      Filename.temp_file ~temp_dir:dir "discopop" ".tmp"
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let store ?(limits = no_limits) ~dir ~key ~deps ~summary () =
    mkdir_p dir;
    write_atomic (deps_path ~dir ~key) (Profiler.Depfile.render deps);
    write_atomic (sugg_path ~dir ~key) summary;
    (* publish-time sweep: the just-written entry is shielded, so a budget
       smaller than one entry still leaves the latest result readable *)
    ignore (sweep ~keep:key ~dir limits)
end

(* ---- in-process memory cache tier ---- *)

(* An LRU of recent pipeline results keyed by the same content hash as the
   disk cache, sitting in front of it. [discopop serve] answers repeat
   requests from here without touching the filesystem; the disk tier
   persists across processes. Entries are immutable after insertion, so a
   value handed out under the lock is safe to read from any domain. *)
module Mem_cache = struct
  type t = {
    mc_cap : int;
    mc_lock : Mutex.t;
    mc_tbl : (string, Profiler.Dep.Set_.t * string) Hashtbl.t;
    (* Most-recently-used first. Capacities are small (tens to hundreds),
       so the O(n) promote/evict list walk is noise next to a request. *)
    mutable mc_order : string list;
    mutable mc_hits : int;
    mutable mc_misses : int;
  }

  let create ~capacity =
    { mc_cap = max 0 capacity;
      mc_lock = Mutex.create ();
      mc_tbl = Hashtbl.create 64;
      mc_order = [];
      mc_hits = 0;
      mc_misses = 0 }

  let with_lock t f =
    Mutex.lock t.mc_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mc_lock) f

  let capacity t = t.mc_cap
  let length t = with_lock t (fun () -> Hashtbl.length t.mc_tbl)
  let hits t = with_lock t (fun () -> t.mc_hits)
  let misses t = with_lock t (fun () -> t.mc_misses)

  let find t key =
    with_lock t @@ fun () ->
    match Hashtbl.find_opt t.mc_tbl key with
    | Some v ->
        t.mc_hits <- t.mc_hits + 1;
        t.mc_order <- key :: List.filter (fun k -> k <> key) t.mc_order;
        Some v
    | None ->
        t.mc_misses <- t.mc_misses + 1;
        None

  let add t key v =
    if t.mc_cap > 0 then
      with_lock t @@ fun () ->
      Hashtbl.replace t.mc_tbl key v;
      t.mc_order <- key :: List.filter (fun k -> k <> key) t.mc_order;
      if Hashtbl.length t.mc_tbl > t.mc_cap then begin
        (* Evict the least-recently-used entry: last in the order list. *)
        match List.rev t.mc_order with
        | victim :: _ ->
            Hashtbl.remove t.mc_tbl victim;
            t.mc_order <- List.filter (fun k -> k <> victim) t.mc_order
        | [] -> ()
      end

  let invalidate t key =
    with_lock t @@ fun () ->
    Hashtbl.remove t.mc_tbl key;
    t.mc_order <- List.filter (fun k -> k <> key) t.mc_order

  let clear t =
    with_lock t @@ fun () ->
    Hashtbl.reset t.mc_tbl;
    t.mc_order <- []

  let keys_mru_first t = with_lock t (fun () -> t.mc_order)
end

type cache_tier = Mem | Disk | Uncached

let lookup ?mem ?dir ~key () :
    (Profiler.Dep.Set_.t * string) option * cache_tier =
  match Option.bind mem (fun m -> Mem_cache.find m key) with
  | Some v -> (Some v, Mem)
  | None -> (
      match Option.bind dir (fun d -> Cache.load ~dir:d ~key) with
      | Some v ->
          (* Promote disk hits so the next lookup is memory-resident. *)
          Option.iter (fun m -> Mem_cache.add m key v) mem;
          (Some v, Disk)
      | None -> (None, Uncached))

(* ---- jobs ---- *)

type job_ok = {
  jr_summary : string;
  jr_deps : int;
  jr_suggestions : int;
  jr_cache_hit : bool;
  jr_entry : Profiler.Dep.Set_.t * string;
}

type status = Ok_ of job_ok | Failed of string | Timed_out

type job = {
  j_name : string;
  j_run : cancelled:(unit -> bool) -> job_ok;
}

type job_result = {
  r_name : string;
  r_status : status;
  r_attempts : int;
  r_wall_s : float;
}

type report = {
  b_results : job_result list;
  b_ok : int;
  b_failed : int;
  b_timeout : int;
  b_cache_hits : int;
  b_cache_misses : int;
  b_wall_s : float;
}

(* A parallel-profiled run repackaged as the serial result record, so the
   discovery phases (typed against the serial reference profiler) run
   unchanged on top of it. *)
let serial_of_parallel (p : Profiler.Parallel.result) : Profiler.Serial.result =
  { Profiler.Serial.deps = p.Profiler.Parallel.deps;
    pet = p.Profiler.Parallel.pet;
    races = p.Profiler.Parallel.races;
    accesses = p.Profiler.Parallel.accesses;
    skip_stats = p.Profiler.Parallel.skip_stats;
    footprint_words = p.Profiler.Parallel.footprint_words;
    merging_factor = p.Profiler.Parallel.merging_factor;
    interp = p.Profiler.Parallel.interp }

let program_job ?cache_dir ?(cache_limits = Cache.no_limits) ?mem ~name
    ~(config : Cache.config) (prog : Mil.Ast.program) : job =
  let run ~cancelled =
    let key = Cache.key config prog in
    match lookup ?mem ?dir:cache_dir ~key () with
    | Some (deps, summary), _tier ->
        Obs.Counter.incr c_cache_hit;
        let entries =
          match Suggestion.summary_of_string summary with
          | Ok es -> es
          | Error _ -> [] (* unreachable: load validated it *)
        in
        { jr_summary = summary;
          jr_deps = Profiler.Dep.Set_.cardinal deps;
          jr_suggestions = List.length entries;
          jr_cache_hit = true;
          jr_entry = (deps, summary) }
    | None, _ ->
        Obs.Counter.incr c_cache_miss;
        let profile =
          if config.Cache.workers > 0 then
            serial_of_parallel
              (Profiler.Parallel.profile ~workers:config.Cache.workers
                 ~perfect:(config.Cache.shadow = Profiler.Engine.Perfect)
                 ?shadow_slots:
                   (match config.Cache.shadow with
                   | Profiler.Engine.Signature n -> Some n
                   | Profiler.Engine.Perfect | Profiler.Engine.Paged -> None)
                 ~skip:config.Cache.skip prog)
          else
            Profiler.Serial.profile ~shadow:config.Cache.shadow
              ~skip:config.Cache.skip ~cancelled prog
        in
        let report =
          Suggestion.analyze_profiled ~threads:config.Cache.threads prog
            profile
        in
        let summary =
          Suggestion.summary_to_string ~name (Suggestion.summarize report)
        in
        let deps = profile.Profiler.Serial.deps in
        Option.iter
          (fun dir ->
            Cache.store ~limits:cache_limits ~dir ~key ~deps ~summary ())
          cache_dir;
        Option.iter (fun m -> Mem_cache.add m key (deps, summary)) mem;
        { jr_summary = summary;
          jr_deps = Profiler.Dep.Set_.cardinal deps;
          jr_suggestions =
            List.length report.Suggestion.suggestions;
          jr_cache_hit = false;
          jr_entry = (deps, summary) }
  in
  { j_name = name; j_run = run }

let workload_job ?cache_dir ?cache_limits ?mem ?size ~(config : Cache.config)
    (w : Workloads.Registry.t) : job =
  let name = w.Workloads.Registry.name in
  (* Build the program inside the job so a raising builder is isolated by
     the driver like any other job fault. *)
  { j_name = name;
    j_run =
      (fun ~cancelled ->
        let prog = Workloads.Registry.program ?size w in
        (program_job ?cache_dir ?cache_limits ?mem ~name ~config prog).j_run
          ~cancelled) }

(* One job outside the batch driver: run it on the calling domain with the
   caller's cancel flag, isolating faults into a [status]. A poll that fires
   mid-profile surfaces as {!Mil.Interp.Cancelled}, reported [Timed_out] —
   the serve daemon's deadline watchdog relies on this. *)
let run_job ~cancelled (j : job) : status =
  match j.j_run ~cancelled with
  | ok ->
      Obs.Counter.incr c_ok;
      Ok_ ok
  | exception Mil.Interp.Cancelled ->
      Obs.Counter.incr c_timeout;
      Timed_out
  | exception e ->
      Obs.Counter.incr c_failed;
      Failed (Printexc.to_string e)

(* ---- the bounded-pool driver ---- *)

type outcome = Pending | Done of (job_ok, string) result

type running = {
  run_idx : int;
  run_attempt : int;
  run_started : float;
  run_cancel : bool Atomic.t;
  run_slot : outcome Atomic.t;
  run_domain : unit Domain.t;
}

let spawn_attempt (jobs : job array) idx attempt : running =
  let j = jobs.(idx) in
  let cancel = Atomic.make false in
  let slot = Atomic.make Pending in
  let domain =
    Domain.spawn (fun () ->
        (* Each attempt is its own domain, hence its own trace track; the
           span makes the job's extent visible on the timeline. *)
        Obs.Trace.set_track
          (Printf.sprintf "batch %s#%d" j.j_name attempt);
        let out =
          try
            Ok
              (Obs.Trace.with_span ("job." ^ j.j_name) (fun () ->
                   j.j_run ~cancelled:(fun () -> Atomic.get cancel)))
          with e -> Error (Printexc.to_string e)
        in
        Atomic.set slot (Done out))
  in
  { run_idx = idx; run_attempt = attempt; run_started = now ();
    run_cancel = cancel; run_slot = slot; run_domain = domain }

let run_batch ?(jobs = 4) ?(timeout_s = 120.0) ?(retries = 1)
    (js : job list) : report =
  Obs.Span.with_ ~phase:"pipeline.batch" @@ fun () ->
  let pool = max 1 jobs in
  let jobs_arr = Array.of_list js in
  let n = Array.length jobs_arr in
  let results : job_result option array = Array.make n None in
  let pending = Queue.create () in
  Array.iteri (fun i _ -> Queue.push (i, 1) pending) jobs_arr;
  let running = ref [] in
  let abandoned = ref [] in
  let t0 = now () in
  (* A failed or timed-out attempt either requeues (retry budget left) or
     records the job's final status. *)
  let settle (r : running) (st : status) =
    let wall = now () -. r.run_started in
    let retriable = match st with Ok_ _ -> false | _ -> true in
    if retriable && r.run_attempt <= retries then begin
      Obs.Counter.incr c_retried;
      Queue.push (r.run_idx, r.run_attempt + 1) pending
    end
    else begin
      (match st with
      | Ok_ _ -> Obs.Counter.incr c_ok
      | Failed _ -> Obs.Counter.incr c_failed
      | Timed_out -> Obs.Counter.incr c_timeout);
      results.(r.run_idx) <-
        Some
          { r_name = jobs_arr.(r.run_idx).j_name;
            r_status = st;
            r_attempts = r.run_attempt;
            r_wall_s = wall }
    end
  in
  while not (Queue.is_empty pending) || !running <> [] do
    while List.length !running < pool && not (Queue.is_empty pending) do
      let idx, attempt = Queue.pop pending in
      running := spawn_attempt jobs_arr idx attempt :: !running
    done;
    running :=
      List.filter
        (fun r ->
          match Atomic.get r.run_slot with
          | Done out ->
              Domain.join r.run_domain;
              settle r
                (match out with Ok ok -> Ok_ ok | Error msg -> Failed msg);
              false
          | Pending when now () -. r.run_started > timeout_s ->
              (* Ask the attempt to wind down; whether it listens or not,
                 the batch moves on. The domain is reaped below if the job
                 honours the flag, and dies with the process otherwise. *)
              Atomic.set r.run_cancel true;
              abandoned := r :: !abandoned;
              settle r Timed_out;
              false
          | Pending -> true)
        !running;
    if !running <> [] then Unix.sleepf 0.001
  done;
  (* Grace period for cancelled attempts that poll the flag: join the ones
     that finish so their domains are not leaked. *)
  let grace_deadline = now () +. 0.5 in
  List.iter
    (fun r ->
      let rec wait () =
        match Atomic.get r.run_slot with
        | Done _ -> Domain.join r.run_domain
        | Pending when now () < grace_deadline ->
            Unix.sleepf 0.005;
            wait ()
        | Pending -> ()
      in
      wait ())
    !abandoned;
  let results =
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every job settles exactly once *))
  in
  let count p = List.length (List.filter p results) in
  let cache_hits, cache_misses =
    List.fold_left
      (fun (h, m) r ->
        match r.r_status with
        | Ok_ { jr_cache_hit = true; _ } -> (h + 1, m)
        | Ok_ { jr_cache_hit = false; _ } -> (h, m + 1)
        | Failed _ | Timed_out -> (h, m))
      (0, 0) results
  in
  { b_results = results;
    b_ok = count (fun r -> match r.r_status with Ok_ _ -> true | _ -> false);
    b_failed =
      count (fun r -> match r.r_status with Failed _ -> true | _ -> false);
    b_timeout = count (fun r -> r.r_status = Timed_out);
    b_cache_hits = cache_hits;
    b_cache_misses = cache_misses;
    b_wall_s = now () -. t0 }

(* ---- reporting ---- *)

let status_string = function
  | Ok_ { jr_cache_hit = true; _ } -> "ok (cached)"
  | Ok_ _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out -> "timeout"

let render (r : report) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %-12s %8s %6s %9s  %s\n" "workload" "status" "deps"
       "sugg" "wall" "detail");
  List.iter
    (fun jr ->
      let deps, sugg, detail =
        match jr.r_status with
        | Ok_ ok -> (string_of_int ok.jr_deps,
                     string_of_int ok.jr_suggestions, "")
        | Failed msg -> ("-", "-", msg)
        | Timed_out -> ("-", "-", "")
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-12s %8s %6s %8.2fs  %s%s\n" jr.r_name
           (status_string jr.r_status) deps sugg jr.r_wall_s detail
           (if jr.r_attempts > 1 then
              Printf.sprintf " (%d attempts)" jr.r_attempts
            else "")))
    r.b_results;
  Buffer.add_string buf
    (Printf.sprintf
       "batch: %d ok, %d failed, %d timeout; cache %d hit / %d miss; %.2fs\n"
       r.b_ok r.b_failed r.b_timeout r.b_cache_hits r.b_cache_misses
       r.b_wall_s);
  Buffer.contents buf

let report_to_json ?suite (r : report) : Obs.Json.t =
  let open Obs.Json in
  let job jr =
    let base =
      [ ("name", String jr.r_name);
        ("status",
         String
           (match jr.r_status with
           | Ok_ _ -> "ok"
           | Failed _ -> "failed"
           | Timed_out -> "timeout"));
        ("attempts", Int jr.r_attempts);
        ("wall_s", Float jr.r_wall_s) ]
    in
    let extra =
      match jr.r_status with
      | Ok_ ok ->
          [ ("cached", Bool ok.jr_cache_hit);
            ("deps", Int ok.jr_deps);
            ("suggestions", Int ok.jr_suggestions);
            ("summary", String ok.jr_summary) ]
      | Failed msg -> [ ("error", String msg) ]
      | Timed_out -> []
    in
    Obj (base @ extra)
  in
  Obj
    ([ ("schema_version", Int 1) ]
    @ (match suite with Some s -> [ ("suite", String s) ] | None -> [])
    @ [ ("jobs_total", Int (List.length r.b_results));
        ("ok", Int r.b_ok);
        ("failed", Int r.b_failed);
        ("timeout", Int r.b_timeout);
        ("cache_hits", Int r.b_cache_hits);
        ("cache_misses", Int r.b_cache_misses);
        ("wall_s", Float r.b_wall_s);
        ("jobs", List (List.map job r.b_results)) ])
