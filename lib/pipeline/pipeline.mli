(** Batch pipeline driver: run the full profile -> CU -> discovery ->
    ranking pipeline over many workloads concurrently across a bounded pool
    of domains, with a content-addressed on-disk result cache, per-job fault
    isolation (a raising or timed-out job is reported, not fatal, with one
    configurable retry) and {!Obs} wiring
    ([pipeline.jobs.{ok,failed,timeout,cache_hit,cache_miss}] counters,
    per-job spans on the trace timeline).

    Surfaced as [discopop batch] and reused by the bench harness's [batch]
    experiment. *)

(** Content-addressed cache of pipeline results. The key is the hash of the
    rendered MIL program plus the profiler configuration (shadow kind, skip
    flag, worker count, thread count) — any change to program or config
    misses; an unchanged workload skips phase 1 entirely on re-runs. Each
    entry is two files under the cache directory: [<key>.deps] (Depfile v2)
    and [<key>.sugg] (serialized suggestion summary,
    {!Discovery.Suggestion.summary_to_string}). *)
module Cache : sig
  type config = {
    shadow : Profiler.Engine.shadow_kind;
    skip : bool;
    workers : int;   (** 0 = serial profiler, n > 0 = parallel with n domains *)
    threads : int;   (** thread count assumed by the local-speedup metric *)
  }

  val default_config : config
  (** Perfect shadow, skip on, serial, 4 threads — the defaults of
      {!Discovery.Suggestion.analyze}. *)

  val config_to_string : config -> string
  (** Canonical rendering hashed into the key (also stored in batch reports
      for debuggability). *)

  val key : config -> Mil.Ast.program -> string
  (** Hex digest of the rendered program + [config_to_string] + cache format
      version. *)

  (** Retention policy for the cache directory, enforced by {!sweep}.
      [None] in a field means unbounded on that axis. *)
  type limits = { max_bytes : int option; ttl_s : float option }

  val no_limits : limits

  val limits : ?max_mb:int -> ?ttl_s:float -> unit -> limits
  (** Convenience constructor; [max_mb] is converted to bytes. *)

  val load :
    dir:string -> key:string -> (Profiler.Dep.Set_.t * string) option
  (** The cached (dependences, suggestion-summary text) for [key], or [None]
      if either file is absent or fails to parse (a malformed entry is a
      miss, never an error). A hit refreshes the entry's mtime
      ([Unix.utimes]) so LRU eviction tracks reads, not just writes. *)

  val store :
    ?limits:limits ->
    dir:string ->
    key:string ->
    deps:Profiler.Dep.Set_.t ->
    summary:string ->
    unit ->
    unit
  (** Write both files atomically (temp file + rename), creating [dir] if
      needed; concurrent writers of the same key are safe. With [limits]
      (default {!no_limits}), runs {!sweep} after publishing, shielding the
      just-written key. *)

  val sweep : ?keep:string -> dir:string -> limits -> int
  (** Enforce [limits] on the directory now: delete entries whose mtime is
      older than [ttl_s], then — while the directory's total size exceeds
      [max_bytes] — the least-recently-used remaining entries (oldest mtime
      first). An entry is the [<key>.deps]/[<key>.sugg] pair; [keep] shields
      one key. Returns the number of entries evicted, also added to the
      [pipeline.cache.evicted] counter. With {!no_limits} this is a no-op. *)
end

(** In-process LRU tier in front of the disk cache, keyed by the same
    {!Cache.key} content hash. [discopop serve] answers repeat requests from
    here without touching the filesystem. All operations take an internal
    lock, so request-handler domains share one instance; entries are
    immutable once inserted. *)
module Mem_cache : sig
  type t

  val create : capacity:int -> t
  (** Holds at most [capacity] entries; inserting into a full cache evicts
      the least-recently-used one. [capacity <= 0] disables insertion (every
      lookup misses). *)

  val find : t -> string -> (Profiler.Dep.Set_.t * string) option
  (** Lookup by cache key; a hit promotes the entry to most-recently-used.
      Hits and misses are counted (see {!hits}/{!misses}). *)

  val add : t -> string -> Profiler.Dep.Set_.t * string -> unit
  val invalidate : t -> string -> unit
  (** Drop one key (e.g. after deleting the disk entry, to keep the tiers
      coherent); unknown keys are ignored. *)

  val clear : t -> unit
  val length : t -> int
  val capacity : t -> int
  val hits : t -> int
  val misses : t -> int

  val keys_mru_first : t -> string list
  (** Resident keys, most-recently-used first (eviction takes the last). *)
end

type cache_tier = Mem | Disk | Uncached

val lookup :
  ?mem:Mem_cache.t -> ?dir:string -> key:string -> unit ->
  (Profiler.Dep.Set_.t * string) option * cache_tier
(** Consult the memory tier, then the disk tier; a disk hit is promoted into
    [mem] so the next lookup is memory-resident. Returns the entry (if any)
    and which tier answered. *)

(** What a successful job yields. *)
type job_ok = {
  jr_summary : string;       (** serialized suggestion summary *)
  jr_deps : int;             (** distinct dependence records *)
  jr_suggestions : int;
  jr_cache_hit : bool;       (** phase 1 was skipped entirely *)
  jr_entry : Profiler.Dep.Set_.t * string;
  (** the dependence set + summary the job computed or loaded — the same
      shape {!lookup} returns, so a renderer can use a fresh result without
      re-reading the just-written cache tier *)
}

type status =
  | Ok_ of job_ok
  | Failed of string         (** the job raised; the exception message *)
  | Timed_out

(** A batch job: [j_run] may raise (isolated by the driver) and should poll
    [cancelled] in any long loop so a timed-out attempt can wind down
    instead of burning a domain until process exit. *)
type job = {
  j_name : string;
  j_run : cancelled:(unit -> bool) -> job_ok;
}

type job_result = {
  r_name : string;
  r_status : status;
  r_attempts : int;
  r_wall_s : float;          (** wall time of the recorded (last) attempt *)
}

type report = {
  b_results : job_result list;  (** in submission order, one per job *)
  b_ok : int;
  b_failed : int;
  b_timeout : int;
  b_cache_hits : int;
  b_cache_misses : int;
  b_wall_s : float;
}

val program_job :
  ?cache_dir:string -> ?cache_limits:Cache.limits -> ?mem:Mem_cache.t ->
  name:string -> config:Cache.config -> Mil.Ast.program -> job
(** The full pipeline over an arbitrary MIL program (e.g. one POSTed to
    [discopop serve] and parsed with {!Mil.Parse.program}): consult the
    memory then disk cache tiers, else profile per [config] — polling
    [cancelled] so a deadline can abort mid-run — analyze, summarize, and
    populate both tiers. [cache_limits] (default {!Cache.no_limits}) is
    enforced by a sweep at each disk publish. *)

val workload_job :
  ?cache_dir:string -> ?cache_limits:Cache.limits -> ?mem:Mem_cache.t ->
  ?size:int -> config:Cache.config -> Workloads.Registry.t -> job
(** {!program_job} over one registry workload, built inside the job so a
    raising builder is isolated like any other fault. *)

val run_job : cancelled:(unit -> bool) -> job -> status
(** Run one job on the calling domain, outside the batch pool: a raise is
    [Failed], {!Mil.Interp.Cancelled} (the [cancelled] poll fired mid-run)
    is [Timed_out]. Bumps the same [pipeline.jobs.*] counters as the batch
    driver. *)

val run_batch :
  ?jobs:int -> ?timeout_s:float -> ?retries:int -> job list -> report
(** Run the jobs over at most [jobs] (default 4) concurrent domains. An
    attempt that raises is [Failed]; one exceeding [timeout_s] (default 120)
    is cancelled and, if it ignores the flag, abandoned — the batch always
    completes with a full report. [retries] (default 1) extra attempts are
    granted per failed or timed-out job. *)

val render : report -> string
(** Human-readable per-job table plus totals. *)

val report_to_json : ?suite:string -> report -> Obs.Json.t
(** The batch report as JSON ([--json OUT]): totals, cache hit/miss counts,
    and per-job rows including the raw summary text (so warm-vs-cold runs
    can be compared byte-for-byte). *)
