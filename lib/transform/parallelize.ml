(* Suggestion-driven auto-parallelization of MIL (Table 4.2).

   The paper validates Phase-3 suggestions by hand-parallelizing the
   suggested regions; MIL already has [Par]/[Lock]/[Atomic_assign] and an
   interpreter, so this subsystem closes the loop mechanically. Each
   transform consumes a {!Discovery.Suggestion.t} and rewrites a deep copy
   of the program:

   - DOALL: the loop becomes one [Par] statement of C chunk blocks, each
     running a contiguous slice of the iteration space; recognised
     reductions accumulate into per-chunk locals combined atomically (or,
     when the update lives in a callee, the callee's reduction statement is
     made atomic in place); carried WAR/WAW scalars are privatised with a
     guarded lastprivate write-back.
   - DOACROSS: the body is fissioned into a dependence-free prefix A and
     the carried suffix B at statement granularity; every chunk runs its
     A-slice concurrently, while B-slices execute in chunk order, passing
     the carried scalars from chunk to chunk through lock-protected
     hand-off sections gated by ready flags.
   - SPMD (recursive fork-join): consecutive recursive task statements
     become [Par]-spawned bodies with declared results hoisted.
   - MPMD (task graph): a contiguous, pairwise-independent run of
     same-stage items becomes one [Par] statement.

   A transform that cannot be proven shape-safe returns [Error] with the
   reason; differential validation ({!Validate}) is the backstop for
   everything the static checks cannot see. *)

module Ast = Mil.Ast
module B = Mil.Builder
module R = Mil.Rewrite
module Static = Mil.Static
module SS = Static.SS
module TD = Cunit.Top_down
module Dep = Profiler.Dep
module Loops = Discovery.Loops
module Tasks = Discovery.Tasks
module Suggestion = Discovery.Suggestion

let c_applied = Obs.counter "transform.applied"
let c_unsupported = Obs.counter "transform.unsupported"

let ( let* ) = Result.bind

type plan = {
  p_kind : string;
  p_region : int;
  p_line : int;  (* header line of the transformed construct (original) *)
  p_chunks : int;
  p_notes : string list;
}

type t = {
  original : Ast.program;
  transformed : Ast.program;
  plan : plan;
}

(* ---- small helpers ---- *)

(* Probe for any syntactic occurrence of [x]: renaming to a name that can
   never appear in a program ('\000' is not produced by any builder) changes
   the block iff [x] occurs. *)
let mentions_var (b : Ast.block) x =
  R.rename_block ~from:x ~to_:"\000probe" b <> b

let array_names (p : Ast.program) : SS.t =
  let acc = ref SS.empty in
  List.iter
    (function Ast.Garray (n, _) -> acc := SS.add n !acc | Ast.Gscalar _ -> ())
    p.globals;
  let rec scan_block b = List.iter scan_stmt b
  and scan_stmt (s : Ast.stmt) =
    match s.node with
    | Decl_arr (x, _) -> acc := SS.add x !acc
    | If (_, t, e) -> scan_block t; scan_block e
    | While (_, b) | For { body = b; _ } -> scan_block b
    | Par bs -> List.iter scan_block bs
    | _ -> ()
  in
  List.iter
    (fun (f : Ast.func) ->
      List.iter (fun a -> acc := SS.add a !acc) f.arr_params;
      scan_block f.body)
    p.funcs;
  !acc

let identity_of_op (op : Ast.binop) =
  match op with
  | Add | Bor | Bxor -> Some 0
  | Mul -> Some 1
  | Band -> Some (-1)
  | Min -> Some max_int
  | Max -> Some min_int
  | _ -> None

(* Rename [from] only within the statements at the given lines (used to
   redirect reduction statements to a per-chunk accumulator while leaving
   the rest of the body alone). *)
let rec rename_at_lines ~from ~to_ lines (b : Ast.block) : Ast.block =
  List.map
    (fun (s : Ast.stmt) ->
      if List.mem s.line lines then R.rename_stmt ~from ~to_ s
      else
        let node =
          match s.node with
          | Ast.If (c, t, e) ->
              Ast.If (c, rename_at_lines ~from ~to_ lines t,
                      rename_at_lines ~from ~to_ lines e)
          | While (c, body) ->
              While (c, rename_at_lines ~from ~to_ lines body)
          | For f -> For { f with body = rename_at_lines ~from ~to_ lines f.body }
          | Par bs -> Par (List.map (rename_at_lines ~from ~to_ lines) bs)
          | n -> n
        in
        { s with node })
    b

let rec reduction_lines_in r op (b : Ast.block) : int list =
  List.concat_map
    (fun (s : Ast.stmt) ->
      let here =
        match Static.reduction_of_stmt s with
        | Some (r', op') when r' = r && op' = op -> [ s.line ]
        | _ -> []
      in
      let nested =
        match s.node with
        | Ast.If (_, t, e) ->
            reduction_lines_in r op t @ reduction_lines_in r op e
        | While (_, body) | For { body; _ } -> reduction_lines_in r op body
        | Par bs -> List.concat_map (reduction_lines_in r op) bs
        | _ -> []
      in
      here @ nested)
    b

let atomicize prog line =
  match
    R.replace_by_line prog ~line ~f:(fun s ->
        match s.Ast.node with
        | Ast.Assign (l, e) -> [ { s with node = Ast.Atomic_assign (l, e) } ]
        | _ -> [ s ])
  with
  | Some p -> p
  | None -> prog

(* ---- loop chunking (shared by DOALL and DOACROSS) ----

   A chunk k of C covers iterations [lo + floor(k*n/C)*step,
   lo + floor((k+1)*n/C)*step) with n the trip count; the boundaries are
   monotone and reach lo + n*step, so exactly the last non-empty chunk
   satisfies [__c1 == __end] — the guard the lastprivate write-back uses. *)

let bounds_prelude (f : Ast.for_loop) ~step ~chunks ~k =
  B.[
    decl "__n" ((f.hi - f.lo + i (step -$ 1)) / i step);
    decl "__c0" (f.lo + (i k * v "__n" / i chunks) * i step);
    decl "__c1" (f.lo + (i (k +$ 1) * v "__n" / i chunks) * i step);
    decl "__end" (f.lo + (v "__n" * i step));
  ]

(* More chunks than iterations would emit degenerate empty-range arms
   ([__c0 == __c1]): each still costs a thread spawn, and in DOACROSS each
   allocates a zero-length carry buffer and a useless ready-flag hop. When
   the bounds are static we clamp the chunk count to the trip count (floor
   1, so a zero-trip loop still produces one well-formed arm). Dynamic
   bounds pass through: the boundary formula keeps empty chunks correct,
   just wasteful, and the trip count is unknowable here. *)
let clamp_chunks (f : Ast.for_loop) ~step ~chunks =
  match (f.lo, f.hi) with
  | Ast.Int l, Ast.Int h ->
      let trip = if h > l then (h - l + step - 1) / step else 0 in
      max 1 (min chunks trip)
  | _ -> chunks

let check_loop_shape prog (la : Loops.analysis) (stmt : Ast.stmt) =
  match stmt.Ast.node with
  | Ast.For f ->
      let* step =
        match f.step with
        | Ast.Int s when s > 0 -> Ok s
        | _ -> Error "non-constant or non-positive step"
      in
      if R.expr_has_call f.lo || R.expr_has_call f.hi then
        Error "calls in loop bounds"
      else if R.has_sync f.body then
        Error "body already contains synchronization"
      else if R.has_return f.body then
        Error "body returns from the enclosing function"
      else if R.has_toplevel_break f.body then Error "body breaks out of the loop"
      else if la.Loops.region.Static.index_written_in_body then
        Error "loop index written in body"
      else if R.calls_transitively prog f.body "rand" then
        Error "body calls rand (chunking would perturb the stream)"
      else Ok (f, step)
  | _ -> Error "suggested region is not a for loop"

(* ---- DOALL ---- *)

let doall ~chunks prog (la : Loops.analysis) :
    (Ast.program * string list, string) result =
  let* () =
    match la.Loops.cls with
    | Loops.Doall | Loops.Doall_reduction -> Ok ()
    | _ -> Error "loop is not classified DOALL"
  in
  let* stmt =
    match R.find_by_line prog ~line:la.Loops.loop_line with
    | Some (s, _) -> Ok s
    | None -> Error "loop line not found"
  in
  let* f, step = check_loop_shape prog la stmt in
  let requested = chunks in
  let chunks = clamp_chunks f ~step ~chunks in
  let arrays = array_names prog in
  let bound_reads =
    Static.expr_read_vars f.lo (Static.expr_read_vars f.hi SS.empty)
  in
  let* () =
    if List.exists (fun pv -> SS.mem pv arrays) la.private_vars then
      Error "array privatization unsupported"
    else if List.exists (fun pv -> SS.mem pv bound_reads) la.private_vars then
      Error "privatizable variable feeds the loop bounds"
    else Ok ()
  in
  let global_reductions = Static.reduction_only_vars prog in
  (* Reduction plan: per variable either a per-chunk accumulator (update in
     the body) or in-place atomicization of a callee's reduction statement. *)
  let* red_plans =
    List.fold_left
      (fun acc (r, op) ->
        let* acc = acc in
        let* ident =
          match identity_of_op op with
          | Some n -> Ok n
          | None -> Error ("no identity for reduction op on " ^ r)
        in
        let body_lines = reduction_lines_in r op f.body in
        if body_lines <> [] then Ok ((`Local (r, op, ident, body_lines)) :: acc)
        else
          match Hashtbl.find_opt global_reductions r with
          | Some (op', lines) when op' = op -> Ok (`Atomic (r, lines) :: acc)
          | _ -> Error ("no reduction statement found for " ^ r))
      (Ok []) la.reduction_vars
  in
  let red_plans = List.rev red_plans in
  (* Rewrite the body: reduction statements to accumulators, private scalars
     to per-chunk names. *)
  let* body =
    List.fold_left
      (fun body plan ->
        let* body = body in
        match plan with
        | `Atomic (r, _) ->
            if mentions_var body r then
              Error ("callee-reduced variable " ^ r ^ " also accessed in body")
            else Ok body
        | `Local (r, _, _, lines) ->
            let body =
              rename_at_lines ~from:r ~to_:("__red_" ^ r) lines body
            in
            if mentions_var body r then
              Error ("reduction variable " ^ r ^ " accessed outside its reduction")
            else Ok body)
      (Ok f.body) red_plans
  in
  let* () =
    let unconditional p =
      List.exists
        (fun (s : Ast.stmt) ->
          match s.node with
          | Ast.Assign (Lvar x, _) | Ast.Atomic_assign (Lvar x, _) -> x = p
          | Ast.Decl (x, _) -> x = p
          | _ -> false)
        body
    in
    match List.find_opt (fun p -> not (unconditional p)) la.private_vars with
    | Some p -> Error ("conditionally-written private variable " ^ p)
    | None -> Ok ()
  in
  let body =
    List.fold_left
      (fun b p -> R.rename_block ~from:p ~to_:("__pv_" ^ p) b)
      body la.private_vars
  in
  (* Per-chunk pieces. All names are [Decl]s local to the chunk's thread, so
     the same names can be reused across chunks. *)
  let red_decls () =
    List.concat_map
      (function
        | `Atomic _ -> []
        | `Local (r, _, ident, _) ->
            if SS.mem r arrays then
              [ B.decl_arr ("__red_" ^ r) (B.len r);
                B.for_ "__ri" (B.i 0) (B.len r)
                  [ B.seti ("__red_" ^ r) (B.v "__ri") (B.i ident) ] ]
            else [ B.decl ("__red_" ^ r) (B.i ident) ])
      red_plans
  in
  let red_combines () =
    List.concat_map
      (function
        | `Atomic _ -> []
        | `Local (r, op, _, _) ->
            if SS.mem r arrays then
              [ B.for_ "__ri" (B.i 0) (B.len r)
                  [ B.atomic_seti r (B.v "__ri")
                      (Ast.Bin (op, Ast.Idx (r, Ast.Var "__ri"),
                                Ast.Idx ("__red_" ^ r, Ast.Var "__ri"))) ] ]
            else
              [ B.atomic_set r (Ast.Bin (op, Ast.Var r, Ast.Var ("__red_" ^ r))) ])
      red_plans
  in
  let lastprivates () =
    List.map
      (fun p ->
        B.when_
          B.(v "__c1" == v "__end" && v "__c0" < v "__c1")
          [ B.atomic_set p (B.v ("__pv_" ^ p)) ])
      la.private_vars
  in
  let priv_decls () = List.map (fun p -> B.decl ("__pv_" ^ p) (B.i 0)) la.private_vars in
  let chunk k =
    bounds_prelude f ~step ~chunks ~k
    @ red_decls () @ priv_decls ()
    @ [ B.for_step f.index (B.v "__c0") (B.v "__c1") (B.i step)
          (R.copy_block body) ]
    @ red_combines () @ lastprivates ()
  in
  let par_stmt = B.par (List.init chunks chunk) in
  let* prog =
    match R.replace_by_line prog ~line:la.loop_line ~f:(fun _ -> [ par_stmt ]) with
    | Some p -> Ok p
    | None -> Error "loop statement vanished during rewriting"
  in
  let prog =
    List.fold_left
      (fun prog plan ->
        match plan with
        | `Atomic (_, lines) -> List.fold_left atomicize prog lines
        | `Local _ -> prog)
      prog red_plans
  in
  let notes =
    (if chunks < requested then
       Printf.sprintf "%d chunks over iteration space (clamped from %d to the \
                       trip count)" chunks requested
     else Printf.sprintf "%d chunks over iteration space" chunks)
    :: List.map
         (function
           | `Local (r, op, _, _) ->
               Printf.sprintf "reduction %s (%s) via per-chunk accumulator" r
                 (Ast.string_of_binop op)
           | `Atomic (r, lines) ->
               Printf.sprintf "reduction %s made atomic at callee line(s) %s" r
                 (String.concat "," (List.map string_of_int lines)))
         red_plans
    @ List.map (fun p -> "privatized " ^ p ^ " (guarded lastprivate)") la.private_vars
  in
  Ok (prog, notes)

(* ---- DOACROSS ---- *)

let doacross ~chunks ~deps prog (la : Loops.analysis) :
    (Ast.program * string list, string) result =
  let* stmt =
    match R.find_by_line prog ~line:la.Loops.loop_line with
    | Some (s, _) -> Ok s
    | None -> Error "loop line not found"
  in
  let* f, step = check_loop_shape prog la stmt in
  let requested = chunks in
  let chunks = clamp_chunks f ~step ~chunks in
  let body_lines = List.concat_map TD.stmt_lines f.body in
  let carried =
    Dep.Set_.in_range deps ~lo:la.region.Static.first_line
      ~hi:la.region.Static.last_line
    |> List.filter (fun (d : Dep.t) ->
           d.carrier = Some la.loop_line && d.var <> f.index && d.dtype <> Dep.Init)
  in
  let* () = if carried = [] then Error "no carried dependences recorded" else Ok () in
  let endpoints =
    List.concat_map (fun (d : Dep.t) -> [ d.src_line; d.sink_line ]) carried
    |> List.sort_uniq compare
  in
  let* () =
    if List.for_all (fun l -> List.mem l body_lines) endpoints then Ok ()
    else Error "carried dependence endpoint outside the loop body (callee?)"
  in
  let arrays = array_names prog in
  let handoff =
    List.filter_map
      (fun (d : Dep.t) -> if d.dtype = Dep.Raw then Some d.var else None)
      carried
    |> List.sort_uniq compare
  in
  let* () =
    match List.find_opt (fun v -> SS.mem v arrays) handoff with
    | Some v -> Error ("array-carried dependence on " ^ v)
    | None -> Ok ()
  in
  (* Fission point: the shortest suffix of the body covering every carried
     endpoint. The prefix A is then dependence-free across iterations and
     runs as DOALL; the suffix B executes serialized in chunk order. *)
  let stmt_line_sets = List.map (fun s -> TD.stmt_lines s) f.body in
  let n_stmts = List.length f.body in
  let covered_from p =
    let lines =
      List.concat (List.filteri (fun i _ -> i >= p) stmt_line_sets)
    in
    List.for_all (fun l -> List.mem l lines) endpoints
  in
  let rec find_p p = if p < n_stmts && covered_from (p + 1) then find_p (p + 1) else p in
  let p = find_p 0 in
  let* () =
    if p = 0 then Error "no dependence-free prefix to overlap with the carried chain"
    else Ok ()
  in
  let a_stmts = List.filteri (fun i _ -> i < p) f.body in
  let b_stmts = List.filteri (fun i _ -> i >= p) f.body in
  (* Values produced by top-level [Decl]s in A and consumed in B travel
     through a per-chunk buffer indexed by iteration offset. *)
  let* buffered =
    List.fold_left
      (fun acc (s : Ast.stmt) ->
        let* acc = acc in
        match s.node with
        | Ast.Decl (x, _) when mentions_var b_stmts x -> Ok (x :: acc)
        | Ast.Decl_arr (x, _) when mentions_var b_stmts x ->
            Error ("local array " ^ x ^ " flows from prefix into carried suffix")
        | _ -> Ok acc)
      (Ok []) a_stmts
  in
  let buffered = List.rev buffered in
  let buf x = "__dx_buf_" ^ x in
  let a_body =
    List.concat_map
      (fun (s : Ast.stmt) ->
        match s.node with
        | Ast.Decl (x, _) when List.mem x buffered ->
            [ s; B.seti (buf x) B.(v f.index - v "__c0") (B.v x) ]
        | _ -> [ s ])
      a_stmts
  in
  let b_body =
    List.map (fun x -> B.decl x B.((buf x).%[v f.index - v "__c0"])) buffered
    @ List.fold_left
        (fun b v -> R.rename_block ~from:v ~to_:("__dx_" ^ v) b)
        b_stmts handoff
  in
  let mutex = "__dx_m" in
  let rdy k = "__dx_rdy" ^ string_of_int k in
  let chunk k =
    bounds_prelude f ~step ~chunks ~k
    @ List.map (fun x -> B.decl_arr (buf x) B.(v "__c1" - v "__c0")) buffered
    @ [ B.for_step f.index (B.v "__c0") (B.v "__c1") (B.i step)
          (R.copy_block a_body) ]
    @ (if k = 0 then []
       else
         [ B.decl "__dx_t" (B.i 0);
           B.while_
             B.(v "__dx_t" == i 0)
             [ B.lock mutex; B.set "__dx_t" (B.v (rdy k)); B.unlock mutex ] ])
    @ [ B.lock mutex ]
    @ List.map (fun v -> B.decl ("__dx_" ^ v) (B.v v)) handoff
    @ [ B.unlock mutex ]
    @ [ B.for_step f.index (B.v "__c0") (B.v "__c1") (B.i step)
          (R.copy_block b_body) ]
    @ [ B.lock mutex ]
    @ List.map (fun v -> B.set v (B.v ("__dx_" ^ v))) handoff
    @ (if k < chunks - 1 then [ B.set (rdy (k + 1)) (B.i 1) ] else [])
    @ [ B.unlock mutex ]
  in
  let par_stmt = B.par (List.init chunks chunk) in
  let* prog =
    match R.replace_by_line prog ~line:la.loop_line ~f:(fun _ -> [ par_stmt ]) with
    | Some p -> Ok p
    | None -> Error "loop statement vanished during rewriting"
  in
  let prog =
    { prog with
      globals =
        prog.globals
        @ List.init (chunks - 1) (fun k -> Ast.Gscalar (rdy (k + 1), 0)) }
  in
  let notes =
    [ Printf.sprintf
        "%d pipelined chunks%s: %d free statement(s) overlap, %d carried \
         statement(s) serialized"
        chunks
        (if chunks < requested then
           Printf.sprintf " (clamped from %d to the trip count)" requested
         else "")
        p (n_stmts - p);
      Printf.sprintf "carried scalar(s) %s handed off through locked sections"
        (String.concat "," handoff) ]
    @ (if buffered <> [] then
         [ Printf.sprintf "prefix value(s) %s buffered per chunk"
             (String.concat "," buffered) ]
       else [])
  in
  Ok (prog, notes)

(* ---- SPMD: recursive fork-join and taskloops ---- *)

(* Full read/write effect of one statement, including callee effects mapped
   through call sites (array-parameter writes become writes of the actual
   argument arrays). The top-down item sets only cover the region's
   construction variables at the direct level; task statements that touch
   shared state inside callees need this interprocedural view. *)
let stmt_effects (static : Static.t) (prog : Ast.program) (s : Ast.stmt) :
    SS.t * SS.t =
  let reads = ref SS.empty and writes = ref SS.empty in
  let add_call (callee, args) =
    match
      ( Static.summary static callee,
        List.find_opt
          (fun (fn : Ast.func) -> fn.Ast.fname = callee)
          prog.Ast.funcs )
    with
    | Some sum, Some fn ->
        let r, w = Static.apply_call_summary ~callee_sum:sum ~callee:fn ~args in
        reads := SS.union r !reads;
        writes := SS.union w !writes
    | _ -> ()
  in
  let expr e =
    reads := Static.expr_read_vars e !reads;
    List.iter add_call (Static.expr_callees e [])
  in
  let lhs l =
    writes := SS.add (Static.lhs_written l) !writes;
    reads := SS.union (Static.lhs_index_reads l) !reads
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Decl (x, e) | Ast.Decl_arr (x, e) ->
        writes := SS.add x !writes;
        expr e
    | Assign (l, e) | Atomic_assign (l, e) ->
        lhs l;
        expr e
    | Call_stmt (callee, args) ->
        List.iter expr args;
        add_call (callee, args)
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | While (c, b) ->
        expr c;
        List.iter stmt b
    | For f ->
        writes := SS.add f.index !writes;
        reads := SS.add f.index !reads;
        expr f.lo;
        expr f.hi;
        expr f.step;
        List.iter stmt f.body
    | Par bs -> List.iter (List.iter stmt) bs
    | Return (Some e) -> expr e
    | Return None | Break | Lock _ | Unlock _ | Barrier _ | Free _ -> ()
  in
  stmt s;
  (!reads, !writes)

let task_eligible prog task_lines (s : Ast.stmt) =
  List.mem s.Ast.line task_lines
  && (match s.Ast.node with
     | Ast.Decl _ | Ast.Call_stmt _ | Ast.Assign _ | Ast.Atomic_assign _ -> true
     | _ -> false)
  && not (R.calls_transitively prog [ s ] "rand")

(* Replace the first run of >= 2 consecutive task statements in the
   function body with hoisted result declarations plus a [Par]. *)
let forkjoin prog fname task_lines : (Ast.program * string list, string) result =
  let eligible = task_eligible prog task_lines in
  let captured = ref None in
  let parize run =
    captured := Some run;
    let hoists, threads =
      List.fold_right
        (fun (ts : Ast.stmt) (hs, bs) ->
          match ts.node with
          | Ast.Decl (x, e) -> (B.decl x (B.i 0) :: hs, [ B.set x e ] :: bs)
          | _ -> (hs, [ ts ] :: bs))
        run ([], [])
    in
    hoists @ [ B.par threads ]
  in
  let rec go b : Ast.block * bool =
    match b with
    | [] -> ([], false)
    | s :: rest when eligible s ->
        let rec take acc = function
          | t :: more when eligible t -> take (t :: acc) more
          | more -> (List.rev acc, more)
        in
        let run, rest' = take [ s ] rest in
        if List.length run >= 2 then (parize run @ rest', true)
        else
          let rest2, hit = go rest' in
          (run @ rest2, hit)
    | s :: rest ->
        let s', hit = descend s in
        if hit then (s' :: rest, true)
        else
          let rest', hit = go rest in
          (s :: rest', hit)
  and descend (s : Ast.stmt) : Ast.stmt * bool =
    let wrap node = { s with Ast.node } in
    match s.node with
    | Ast.If (c, t, e) ->
        let t', hit = go t in
        if hit then (wrap (Ast.If (c, t', e)), true)
        else
          let e', hit = go e in
          (wrap (Ast.If (c, t, e')), hit)
    | While (c, body) ->
        let body', hit = go body in
        (wrap (Ast.While (c, body')), hit)
    | For fl ->
        let body', hit = go fl.body in
        (wrap (Ast.For { fl with body = body' }), hit)
    | _ -> (s, false)
  in
  match List.find_opt (fun (fn : Ast.func) -> fn.fname = fname) prog.Ast.funcs with
  | None -> Error ("no function " ^ fname)
  | Some fn -> (
      let body', hit = go fn.body in
      if not hit then Error "no consecutive pair of task statements"
      else
        (* The forked tasks run unsynchronized, so any variable one task
           writes and another touches must be a reduction-only global (a
           recursive branch-and-bound minimum, a task counter): its update
           statements are made atomic; any other shared write rejects the
           fork. *)
        let run = match !captured with Some r -> r | None -> [] in
        let static = Static.analyze prog in
        let effs = List.map (stmt_effects static prog) run in
        let conflicts =
          let rec pairs acc = function
            | [] -> acc
            | (r1, w1) :: rest ->
                let acc =
                  List.fold_left
                    (fun acc (r2, w2) ->
                      SS.union (SS.inter w1 w2)
                        (SS.union (SS.inter w1 r2)
                           (SS.union (SS.inter r1 w2) acc)))
                    acc rest
                in
                pairs acc rest
          in
          pairs SS.empty effs
        in
        let greds = Static.reduction_only_vars prog in
        let* atomic_lines =
          SS.fold
            (fun v acc ->
              let* ls = acc in
              match Hashtbl.find_opt greds v with
              | Some (_, lines) -> Ok (lines @ ls)
              | None -> Error ("tasks share non-reduction variable " ^ v))
            conflicts (Ok [])
        in
        let funcs =
          List.map
            (fun (g : Ast.func) ->
              if g.fname = fname then { g with body = body' } else g)
            prog.funcs
        in
        let prog = List.fold_left atomicize { prog with funcs } atomic_lines in
        let notes =
          Printf.sprintf "recursive tasks of %s spawned as Par threads" fname
          ::
          (if atomic_lines = [] then []
           else
             [ Printf.sprintf "shared reduction update(s) made atomic at line(s) %s"
                 (String.concat ","
                    (List.map string_of_int (List.sort_uniq compare atomic_lines))) ])
        in
        Ok (prog, notes))

let spmd ~chunks prog (report : Suggestion.report) (sp : Tasks.spmd) =
  match sp.Tasks.s_kind with
  | `Loop_tasks _ -> (
      match
        List.find_opt
          (fun (la : Loops.analysis) -> la.region.Static.id = sp.s_region)
          report.loops
      with
      | Some la -> doall ~chunks prog la
      | None -> Error "no loop analysis for taskloop region")
  | `Recursive_forkjoin fname -> forkjoin prog fname sp.s_task_lines

(* ---- MPMD: task-graph stages ---- *)

(* Replace the consecutive statement segment starting at [List.hd lines]
   and matching [lines] exactly. *)
let replace_segment prog ~lines ~f : Ast.program option =
  let n = List.length lines in
  let rec seg_in_block (b : Ast.block) : Ast.block * bool =
    match b with
    | [] -> ([], false)
    | s :: _ when s.Ast.line = List.hd lines ->
        let seg = List.filteri (fun i _ -> i < n) b in
        let rest = List.filteri (fun i _ -> i >= n) b in
        if List.map (fun (t : Ast.stmt) -> t.Ast.line) seg = lines then
          (f seg @ rest, true)
        else (b, false)
    | s :: rest ->
        let s', hit = seg_in_stmt s in
        if hit then (s' :: rest, true)
        else
          let rest', hit = seg_in_block rest in
          (s :: rest', hit)
  and seg_in_stmt (s : Ast.stmt) : Ast.stmt * bool =
    let wrap node = { s with Ast.node } in
    match s.node with
    | Ast.If (c, t, e) ->
        let t', hit = seg_in_block t in
        if hit then (wrap (Ast.If (c, t', e)), true)
        else
          let e', hit = seg_in_block e in
          (wrap (Ast.If (c, t, e')), hit)
    | While (c, body) ->
        let body', hit = seg_in_block body in
        (wrap (Ast.While (c, body')), hit)
    | For fl ->
        let body', hit = seg_in_block fl.body in
        (wrap (Ast.For { fl with body = body' }), hit)
    | _ -> (s, false)
  in
  let rec go = function
    | [] -> None
    | (fn : Ast.func) :: rest -> (
        let body', hit = seg_in_block fn.body in
        if hit then Some ({ fn with body = body' } :: rest)
        else
          match go rest with
          | Some rest' -> Some (fn :: rest')
          | None -> None)
  in
  Option.map (fun funcs -> { prog with Ast.funcs }) (go prog.Ast.funcs)

let mpmd prog (report : Suggestion.report) (m : Tasks.mpmd) :
    (Ast.program * string list, string) result =
  let* () =
    if m.Tasks.m_shape = Tasks.Taskgraph then Ok ()
    else Error "pipeline-shaped task graphs unsupported"
  in
  let static = report.static in
  let region = Static.region static m.m_region in
  let gv =
    SS.union (TD.construction_globals static m.m_region) region.Static.locals
  in
  let items = TD.items_of_region static m.m_region gv in
  let item_by_line l =
    List.find_opt (fun (it : TD.item) -> it.it_line = l) items
  in
  let indep (a : TD.item) (b : TD.item) =
    SS.is_empty (SS.inter a.it_writes b.it_writes)
    && SS.is_empty (SS.inter a.it_writes b.it_reads)
    && SS.is_empty (SS.inter a.it_reads b.it_writes)
  in
  let stmt_ok (s : Ast.stmt) =
    (match s.node with
    | Ast.Decl _ | Ast.Assign _ | Ast.Atomic_assign _ | Ast.Call_stmt _
    | Ast.If _ | Ast.While _ | Ast.For _ ->
        true
    | _ -> false)
    && (not (R.has_return [ s ]))
    && (not (R.has_sync [ s ]))
    && (not (R.has_toplevel_break [ s ]))
    && not (R.calls_transitively prog [ s ] "rand")
  in
  (* Pairwise independence at the effect level: no statement of the stage
     may write a variable another statement reads or writes, counting
     callee effects. *)
  let effects_independent seg =
    let effs = List.map (stmt_effects static prog) seg in
    let rec ok = function
      | [] -> true
      | (r1, w1) :: rest ->
          List.for_all
            (fun (r2, w2) ->
              SS.is_empty (SS.inter w1 w2)
              && SS.is_empty (SS.inter w1 r2)
              && SS.is_empty (SS.inter r1 w2))
            rest
          && ok rest
    in
    ok effs
  in
  let parize seg =
    let hoists, threads =
      List.fold_right
        (fun (ts : Ast.stmt) (hs, bs) ->
          match ts.Ast.node with
          | Ast.Decl (x, e) -> (B.decl x (B.i 0) :: hs, [ B.set x e ] :: bs)
          | _ -> (hs, [ ts ] :: bs))
        seg ([], [])
    in
    hoists @ [ B.par threads ]
  in
  (* A stage is parallelizable when its members are consecutive items of
     the region, pairwise independent, and shape-safe statements. *)
  let item_lines = List.map (fun (it : TD.item) -> it.it_line) items in
  let consecutive lines =
    let idx l =
      let rec at i = function
        | [] -> -1
        | x :: _ when x = l -> i
        | _ :: r -> at (i + 1) r
      in
      at 0 item_lines
    in
    let idxs = List.map idx lines in
    List.for_all (fun i -> i >= 0) idxs
    &&
    let sorted = List.sort compare idxs in
    List.mapi (fun i x -> x - i) sorted |> function
    | [] -> false
    | d :: rest -> List.for_all (fun x -> x = d) rest
  in
  let try_stage prog stage =
    if List.length stage < 2 then None
    else
      let lines = List.sort compare stage in
      let members = List.filter_map item_by_line lines in
      if List.length members <> List.length lines then None
      else if not (consecutive lines) then None
      else
        let rec all_pairs = function
          | [] -> true
          | x :: rest -> List.for_all (indep x) rest && all_pairs rest
        in
        if not (all_pairs members) then None
        else
          match
            replace_segment prog ~lines ~f:(fun seg ->
                if List.for_all stmt_ok seg && effects_independent seg then
                  parize seg
                else seg)
          with
          | Some prog' when prog' <> prog -> Some (prog', List.length lines)
          | _ -> None
  in
  let prog', widths =
    List.fold_left
      (fun (prog, ws) stage ->
        match try_stage prog stage with
        | Some (prog', w) -> (prog', w :: ws)
        | None -> (prog, ws))
      (prog, []) m.m_stages
  in
  if widths = [] then Error "no stage with a consecutive independent run"
  else
    Ok
      ( prog',
        [ Printf.sprintf "%d task-graph stage(s) spawned as Par (widths %s)"
            (List.length widths)
            (String.concat "," (List.map string_of_int (List.rev widths))) ] )

(* ---- naive (deliberately wrong) transform: the validation fixture ---- *)

(* Chunk a loop with NO privatization, reduction or carried-dependence
   handling. On any loop that is not plain DOALL this miscompiles — the
   fixture differential validation must reject. *)
let naive_doall ?(chunks = 4) (prog : Ast.program) ~line :
    (Ast.program, string) result =
  let prog = R.copy_program prog in
  match R.find_by_line prog ~line with
  | Some ({ Ast.node = Ast.For ({ step = Ast.Int step; _ } as f); _ }, _)
    when step > 0 ->
      let chunk k =
        bounds_prelude f ~step ~chunks ~k
        @ [ B.for_step f.index (B.v "__c0") (B.v "__c1") (B.i step)
              (R.copy_block f.body) ]
      in
      let par_stmt = B.par (List.init chunks chunk) in
      (match R.replace_by_line prog ~line ~f:(fun _ -> [ par_stmt ]) with
      | Some p ->
          Ok (B.number { p with pname = p.pname ^ "_naive" })
      | None -> Error "loop not found")
  | Some _ -> Error "not a constant-step for loop"
  | None -> Error "no statement at that line"

(* ---- entry points ---- *)

let apply ?(chunks = 4) (report : Suggestion.report) (s : Suggestion.t) :
    (t, string) result =
  let prog = R.copy_program report.program in
  let deps = report.profile.Profiler.Serial.deps in
  let result =
    match s.kind with
    | Suggestion.Sdoall la -> doall ~chunks prog la
    | Sdoacross la -> doacross ~chunks ~deps prog la
    | Sspmd sp -> spmd ~chunks prog report sp
    | Smpmd m -> mpmd prog report m
  in
  match result with
  | Error e ->
      Obs.Counter.incr c_unsupported;
      Error e
  | Ok (prog', notes) ->
      Obs.Counter.incr c_applied;
      let prog' = B.number { prog' with pname = prog'.pname ^ "_par" } in
      let region = Static.region report.static s.region in
      Ok
        { original = report.program;
          transformed = prog';
          plan =
            { p_kind = Suggestion.kind_to_string s.kind;
              p_region = s.region;
              p_line = region.Static.first_line;
              p_chunks = chunks;
              p_notes = notes } }

let apply_first ?chunks (report : Suggestion.report) :
    (t * (Suggestion.t * string) list, (Suggestion.t * string) list) result =
  let rec go skipped = function
    | [] -> Error (List.rev skipped)
    | s :: rest -> (
        match apply ?chunks report s with
        | Ok t -> Ok (t, List.rev skipped)
        | Error e -> go ((s, e) :: skipped) rest)
  in
  go [] report.suggestions

let plan_to_string (p : plan) =
  Printf.sprintf "%s @ region %d (line %d), %d chunks\n%s" p.p_kind p.p_region
    p.p_line p.p_chunks
    (String.concat "" (List.map (fun n -> "  - " ^ n ^ "\n") p.p_notes))
