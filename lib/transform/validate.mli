(** Differential validation and measured work distribution for transformed
    programs — the dynamic backstop behind [discopop parallelize
    --validate].

    State equivalence runs original and transformed under several scheduler
    seeds and compares observable state (entry return value, final globals
    of the original program, [print] stream); the race check re-profiles
    both with [scramble_unlocked] and requires no {e new} racy variables in
    the transformed program. *)

type observation = {
  o_result : int;
  o_globals : (string * int array) list;
      (** final globals, transform-internal ["__"] names excluded *)
  o_prints : int list list;
}

val observe : ?seed:int -> Mil.Ast.program -> observation

val diff_observations : observation -> observation -> string list
(** Human-readable discrepancies; empty means observably equal. *)

type verdict = {
  v_ok : bool;
  v_seeds : int list;
  v_mismatches : (int * string) list;  (** (seed, issue) *)
  v_new_racy : string list;
      (** variables racy in the transformed profile but not the original *)
  v_racy_raw : int;  (** racy RAW records in the transformed profile *)
}

val default_seeds : int list

val differential :
  ?seeds:int list ->
  original:Mil.Ast.program ->
  transformed:Mil.Ast.program ->
  unit ->
  verdict
(** Counts the outcome in the [Obs] registry
    ([transform.validate.pass] / [transform.validate.fail]). *)

val verdict_to_string : verdict -> string

type distribution = {
  d_threads : (int * int) list;  (** thread id -> profiled accesses *)
  d_total : int;
  d_critical : int;      (** main-thread work + heaviest spawned thread *)
  d_serial_total : int;  (** accesses of the original serial run *)
  d_measured_speedup : float;
      (** serial work over the critical path proxy — the "applied" number
          to place next to the modeled {!Discovery.Schedule} speedup *)
  d_parallel_fraction : float;  (** share of work off the main thread *)
}

val measure :
  ?seed:int ->
  ?label:string ->
  original:Mil.Ast.program ->
  Mil.Ast.program ->
  distribution
(** [label] additionally publishes the critical-path speedup proxy as the
    [Obs] gauge [transform.proxy.<label>] — the per-suggestion number
    {!Measure} correlates against real wall-clock speedups. *)

val distribution_to_string : distribution -> string
