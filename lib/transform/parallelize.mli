(** Suggestion-driven auto-parallelization of MIL programs (the mechanical
    counterpart of the paper's hand-parallelized Table-4.2 validation).

    Each transform consumes one ranked suggestion from
    {!Discovery.Suggestion.analyze} and rewrites a deep copy of the program
    with [Par]/[Lock]/[Atomic_assign]:

    - DOALL loops become chunked [Par] blocks with per-chunk reduction
      accumulators (or atomicized callee reductions) and privatized scalars
      with a guarded lastprivate write-back;
    - DOACROSS loops are fissioned into a dependence-free prefix that runs
      chunk-parallel and a carried suffix serialized chunk-to-chunk through
      lock-protected scalar hand-offs;
    - SPMD recursive fork-join tasks and MPMD task-graph stages become
      [Par]-spawned statement runs with declared results hoisted.

    Transforms are deliberately conservative: any shape the rewriter cannot
    prove safe returns [Error reason] and the caller falls through to the
    next suggestion. {!Validate} is the dynamic backstop. *)

type plan = {
  p_kind : string;    (** suggestion kind, e.g. "DOALL" *)
  p_region : int;     (** region id in the original program *)
  p_line : int;       (** header line of the transformed construct *)
  p_chunks : int;
  p_notes : string list;  (** human-readable transform decisions *)
}

type t = {
  original : Mil.Ast.program;
  transformed : Mil.Ast.program;  (** renumbered; name suffixed ["_par"] *)
  plan : plan;
}

val apply :
  ?chunks:int ->
  Discovery.Suggestion.report ->
  Discovery.Suggestion.t ->
  (t, string) result
(** Apply the transform for one suggestion. [chunks] (default 4) is the
    thread count for chunked loops. The report's program is never mutated:
    the transform runs on a deep copy which is renumbered afresh. *)

val apply_first :
  ?chunks:int ->
  Discovery.Suggestion.report ->
  (t * (Discovery.Suggestion.t * string) list,
   (Discovery.Suggestion.t * string) list)
  result
(** Apply the best-ranked transformable suggestion. [Ok (t, skipped)]
    carries the suggestions skipped on the way (with reasons); [Error all]
    means nothing was transformable. *)

val naive_doall :
  ?chunks:int -> Mil.Ast.program -> line:int -> (Mil.Ast.program, string) result
(** Chunk the for loop at [line] with {e no} privatization, reduction or
    carried-dependence handling — an intentionally unsound transform used
    as the fixture that differential validation must reject. *)

val plan_to_string : plan -> string
