(** Measured wall-clock speedups of transformed programs.

    Where {!Validate.measure} reports a critical-path *proxy* from profiled
    access counts, this module actually executes: the sequential original
    under {!Mil.Interp} (uninstrumented) and the transformed program under
    {!Mil.Par_eval} on a {!Runtime.Pool} of 1..N domains, with warmup and
    repetitions, checking output equality against the sequential
    observation on every parallel run.  This is the paper's Tables made
    real: suggestion -> transform -> verified speedup. *)

type run_stat = {
  r_domains : int;
  r_wall_s : float;       (** median wall-clock of the timed repetitions *)
  r_speedup : float;      (** sequential median / this median *)
  r_efficiency : float;   (** speedup / domains *)
  r_equal : bool;         (** observably equal to the sequential run *)
  r_tasks : int;          (** pool tasks executed during the timed reps *)
  r_steals : int;         (** successful steals during the timed reps *)
  r_imbalance : float;    (** max executor busy-ns / mean busy-ns (>= 1) *)
}

type t = {
  m_name : string;
  m_domains : int;              (** the sweep's maximum *)
  m_warmup : int;
  m_reps : int;
  m_seq_wall_s : float;         (** sequential median *)
  m_runs : run_stat list;       (** one row per domain count, ascending *)
  m_equal : bool;               (** every parallel run observably equal *)
  m_best_speedup : float;       (** best over the sweep *)
}

val domain_counts : int -> int list
(** The sweep for a maximum of [n]: powers of two up to [n], plus [n] —
    [4 -> [1;2;4]], [6 -> [1;2;4;6]]. *)

val measure :
  ?domains:int ->
  ?warmup:int ->
  ?reps:int ->
  ?seed:int ->
  name:string ->
  original:Mil.Ast.program ->
  Mil.Ast.program ->
  t
(** Defaults: [domains] = 4, [warmup] = 1, [reps] = 3, [seed] = 42.  The
    pool for each domain count is created and warmed before the timed
    region.  Publishes per-run gauges [measure.<name>.speedup_d<d>] and
    [measure.<name>.equal] (1/0) in the [Obs] registry. *)

val to_json : t -> Obs.Json.t

val table_rows : t -> string list list
(** Rows for a [domains | wall ms | speedup | efficiency | equal | tasks |
    steals | imbalance] table. *)

val to_string : t -> string
(** The rendered table with a header line, for the CLI report. *)
