(* Differential validation of transformed programs (the check the paper ran
   by hand: parallelize the suggestion, then make sure the program still
   computes the same thing — and actually distributes work).

   Three layers, all over the MIL interpreter:

   1. State equivalence: run original and transformed under several
      scheduler seeds and compare the observable state — entry return
      value, final values of the original program's globals, and the
      [print] output stream.
   2. Race check: re-profile both programs with [scramble_unlocked] (the
      §2.3.4 reordering that exposes unsynchronized accesses) and require
      the transformed program to introduce no *new* racy variables — in
      particular no unsynchronized cross-chunk RAW on transformed DOALL
      regions. Variables introduced by the transform itself (the "__"
      namespace) only count if actually racy; original-program lines moved
      by renumbering are compared by variable, which renumbering preserves.
   3. Work distribution: count profiled accesses per thread of the
      transformed run, giving a measured speedup proxy (total work over
      the critical chunk) to place next to the modeled Schedule speedup. *)

module Interp = Mil.Interp
module Dep = Profiler.Dep

let c_pass = Obs.counter "transform.validate.pass"
let c_fail = Obs.counter "transform.validate.fail"

let is_internal name = String.length name >= 2 && String.sub name 0 2 = "__"

type observation = {
  o_result : int;
  o_globals : (string * int array) list;  (* transform-internal "__" globals excluded *)
  o_prints : int list list;
}

let observe ?(seed = 42) (prog : Mil.Ast.program) : observation =
  let prints = ref [] in
  let r =
    Interp.run ~seed ~instrument:false
      ~on_print:(fun vs -> prints := vs :: !prints)
      prog
  in
  { o_result = r.result;
    o_globals =
      List.filter (fun (n, _) -> not (is_internal n)) r.final_globals;
    o_prints = List.rev !prints }

let diff_observations (a : observation) (b : observation) : string list =
  let issues = ref [] in
  if a.o_result <> b.o_result then
    issues :=
      Printf.sprintf "result %d <> %d" a.o_result b.o_result :: !issues;
  List.iter
    (fun (name, va) ->
      match List.assoc_opt name b.o_globals with
      | None -> issues := Printf.sprintf "global %s missing" name :: !issues
      | Some vb ->
          if va <> vb then
            issues := Printf.sprintf "global %s differs" name :: !issues)
    a.o_globals;
  if a.o_prints <> b.o_prints then issues := "print stream differs" :: !issues;
  List.rev !issues

(* Racy variables of a profile: names with an observed timestamp reversal,
   from the engine's race list and the racy flag on merged dependence
   records. Comparing by name survives the transform's renumbering. *)
let racy_vars (r : Profiler.Serial.result) : string list =
  let acc = ref [] in
  List.iter (fun (v, _, _) -> acc := v :: !acc) r.races;
  Dep.Set_.iter
    (fun d _ -> if d.Dep.racy then acc := d.Dep.var :: !acc)
    r.deps;
  List.sort_uniq compare !acc

let racy_raw_count (r : Profiler.Serial.result) : int =
  let n = ref 0 in
  Dep.Set_.iter
    (fun d _ -> if d.Dep.racy && d.Dep.dtype = Dep.Raw then incr n)
    r.deps;
  !n

type verdict = {
  v_ok : bool;
  v_seeds : int list;
  v_mismatches : (int * string) list;  (* (seed, issue) *)
  v_new_racy : string list;            (* racy vars only in the transformed run *)
  v_racy_raw : int;                    (* racy RAW records in the transformed run *)
}

let default_seeds = [ 42; 1009; 77777 ]

let differential ?(seeds = default_seeds) ~(original : Mil.Ast.program)
    ~(transformed : Mil.Ast.program) () : verdict =
  let mismatches =
    List.concat_map
      (fun seed ->
        let a = observe ~seed original and b = observe ~seed transformed in
        List.map (fun issue -> (seed, issue)) (diff_observations a b))
      seeds
  in
  let seed0 = match seeds with s :: _ -> s | [] -> 42 in
  let p_orig =
    Profiler.Serial.profile ~scramble_unlocked:true ~seed:seed0 original
  in
  let p_tran =
    Profiler.Serial.profile ~scramble_unlocked:true ~seed:seed0 transformed
  in
  let base = racy_vars p_orig in
  let new_racy =
    List.filter (fun v -> not (List.mem v base)) (racy_vars p_tran)
  in
  let v_ok = mismatches = [] && new_racy = [] in
  Obs.Counter.incr (if v_ok then c_pass else c_fail);
  { v_ok;
    v_seeds = seeds;
    v_mismatches = mismatches;
    v_new_racy = new_racy;
    v_racy_raw = racy_raw_count p_tran }

let verdict_to_string (v : verdict) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "validation: %s (%d seed(s): %s)\n"
       (if v.v_ok then "PASS" else "FAIL")
       (List.length v.v_seeds)
       (String.concat "," (List.map string_of_int v.v_seeds)));
  List.iter
    (fun (seed, issue) ->
      Buffer.add_string b (Printf.sprintf "  seed %d: %s\n" seed issue))
    v.v_mismatches;
  if v.v_new_racy <> [] then
    Buffer.add_string b
      (Printf.sprintf "  new racy var(s): %s\n"
         (String.concat "," v.v_new_racy));
  Buffer.add_string b
    (Printf.sprintf "  racy RAW records in transformed profile: %d\n"
       v.v_racy_raw);
  Buffer.contents b

(* ---- measured work distribution ---- *)

type distribution = {
  d_threads : (int * int) list;  (* thread id -> profiled accesses *)
  d_total : int;
  d_critical : int;      (* main-thread work + heaviest spawned thread *)
  d_serial_total : int;  (* accesses of the original (serial) run *)
  d_measured_speedup : float;
  d_parallel_fraction : float;
}

let measure ?(seed = 42) ?label ~(original : Mil.Ast.program)
    (transformed : Mil.Ast.program) : distribution =
  let serial = Interp.run ~seed original in
  let d_serial_total = serial.r_stats.reads + serial.r_stats.writes in
  let per_thread = Hashtbl.create 8 in
  let _ =
    Interp.run ~seed
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Access a ->
            let n =
              match Hashtbl.find_opt per_thread a.Trace.Event.thread with
              | Some n -> n
              | None -> 0
            in
            Hashtbl.replace per_thread a.Trace.Event.thread (n + 1)
        | _ -> ())
      transformed
  in
  let d_threads =
    Hashtbl.fold (fun t n acc -> (t, n) :: acc) per_thread []
    |> List.sort compare
  in
  let d_total = List.fold_left (fun acc (_, n) -> acc + n) 0 d_threads in
  let main = match List.assoc_opt 0 d_threads with Some n -> n | None -> 0 in
  let heaviest =
    List.fold_left
      (fun acc (t, n) -> if t > 0 then max acc n else acc)
      0 d_threads
  in
  let d_critical = max 1 (main + heaviest) in
  let d_measured_speedup =
    float_of_int d_serial_total /. float_of_int d_critical
  in
  (* Export the critical-path proxy per suggestion so it lands in bench
     snapshots next to the wall-clock speedups Measure reports — the rank
     correlation between the two (measure.proxy_rank_corr) is the first
     calibration input for overlap-aware ranking. *)
  (match label with
  | Some l -> Obs.Gauge.set (Obs.gauge ("transform.proxy." ^ l)) d_measured_speedup
  | None -> ());
  { d_threads;
    d_total;
    d_critical;
    d_serial_total;
    d_measured_speedup;
    d_parallel_fraction =
      (if d_total = 0 then 0.0
       else float_of_int (d_total - main) /. float_of_int d_total) }

let distribution_to_string (d : distribution) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "work distribution: %d accesses over %d thread(s), %.0f%% off the main thread\n"
       d.d_total (List.length d.d_threads) (100.0 *. d.d_parallel_fraction));
  List.iter
    (fun (t, n) ->
      Buffer.add_string b
        (Printf.sprintf "  thread %d: %d accesses (%.0f%%)\n" t n
           (100.0 *. float_of_int n /. float_of_int (max 1 d.d_total))))
    d.d_threads;
  Buffer.add_string b
    (Printf.sprintf
       "measured speedup proxy: %.2fx (serial %d / critical %d)\n"
       d.d_measured_speedup d.d_serial_total d.d_critical);
  Buffer.contents b
