(* Measured wall-clock speedups (see measure.mli).

   Protocol, per domain count d of the sweep:
     1. create the pool (d > 1) OUTSIDE the timed region — persistent
        workers, so domain spawn never pollutes a measurement;
     2. [warmup] untimed runs (page-table faults, arena growth, OCaml
        code warm);
     3. [reps] timed runs; the reported wall is the MEDIAN;
     4. every run's observation (result, non-internal globals, prints) is
        compared against the sequential observation — a measurement of a
        wrong answer is worthless;
     5. task/steal/busy counters are deltas over the timed reps only.

   The sequential baseline is the uninstrumented {!Mil.Interp} on the
   *original* program, same warmup/reps/median policy. *)

module V = Validate

type run_stat = {
  r_domains : int;
  r_wall_s : float;
  r_speedup : float;
  r_efficiency : float;
  r_equal : bool;
  r_tasks : int;
  r_steals : int;
  r_imbalance : float;
}

type t = {
  m_name : string;
  m_domains : int;
  m_warmup : int;
  m_reps : int;
  m_seq_wall_s : float;
  m_runs : run_stat list;
  m_equal : bool;
  m_best_speedup : float;
}

let domain_counts n =
  let n = max 1 n in
  let rec powers acc d = if d >= n then List.rev acc else powers (d :: acc) (2 * d) in
  powers [] 1 @ [ n ]

let median l =
  match List.sort compare l with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

let observe_par ?pool ~domains ~seed prog : V.observation =
  let prints = ref [] in
  let r =
    Mil.Par_eval.run ?pool ~domains ~seed
      ~on_print:(fun vs -> prints := vs :: !prints)
      prog
  in
  {
    V.o_result = r.Mil.Par_eval.result;
    o_globals =
      List.filter
        (fun (n, _) -> not (String.length n >= 2 && String.sub n 0 2 = "__"))
        r.Mil.Par_eval.final_globals;
    o_prints = List.rev !prints;
  }

let time f =
  let t0 = Obs.now_ns () in
  let obs = f () in
  let dt = float_of_int (Obs.now_ns () - t0) /. 1e9 in
  (dt, obs)

let measure ?(domains = 4) ?(warmup = 1) ?(reps = 3) ?(seed = 42) ~name
    ~(original : Mil.Ast.program) (transformed : Mil.Ast.program) : t =
  let reps = max 1 reps and warmup = max 0 warmup in
  (* sequential baseline *)
  let seq_run () = V.observe ~seed original in
  for _ = 1 to warmup do
    ignore (seq_run ())
  done;
  let seq_obs = ref (V.observe ~seed original) in
  let seq_walls =
    List.init reps (fun _ ->
        let dt, obs = time seq_run in
        seq_obs := obs;
        dt)
  in
  let seq_wall = median seq_walls in
  let run_one d =
    let pool = if d > 1 then Some (Runtime.Pool.create ~domains:d ()) else None in
    Fun.protect
      ~finally:(fun () ->
        match pool with Some p -> Runtime.Pool.shutdown p | None -> ())
      (fun () ->
        let go () = observe_par ?pool ~domains:d ~seed transformed in
        let equal = ref true in
        let check obs =
          if V.diff_observations !seq_obs obs <> [] then equal := false
        in
        for _ = 1 to warmup do
          check (go ())
        done;
        let stats_before =
          match pool with Some p -> Runtime.Pool.stats p | None -> [||]
        in
        let walls =
          List.init reps (fun _ ->
              let dt, obs = time go in
              check obs;
              dt)
        in
        let stats_after =
          match pool with Some p -> Runtime.Pool.stats p | None -> [||]
        in
        let delta f =
          let tot = ref 0 in
          Array.iteri
            (fun i (a : Runtime.Pool.stats) -> tot := !tot + (f a - f stats_before.(i)))
            stats_after;
          !tot
        in
        let tasks = delta (fun s -> s.Runtime.Pool.tasks) in
        let steals = delta (fun s -> s.Runtime.Pool.steals) in
        let imbalance =
          if Array.length stats_after = 0 then 1.0
          else begin
            let busy =
              Array.mapi
                (fun i (s : Runtime.Pool.stats) ->
                  float_of_int (s.Runtime.Pool.busy_ns - stats_before.(i).Runtime.Pool.busy_ns))
                stats_after
            in
            let sum = Array.fold_left ( +. ) 0. busy in
            let mx = Array.fold_left max 0. busy in
            if sum <= 0. then 1.0 else mx /. (sum /. float_of_int (Array.length busy))
          end
        in
        let wall = median walls in
        let speedup = if wall > 0. then seq_wall /. wall else 0. in
        {
          r_domains = d;
          r_wall_s = wall;
          r_speedup = speedup;
          r_efficiency = speedup /. float_of_int d;
          r_equal = !equal;
          r_tasks = tasks;
          r_steals = steals;
          r_imbalance = imbalance;
        })
  in
  let runs = List.map run_one (domain_counts domains) in
  let m_equal = List.for_all (fun r -> r.r_equal) runs in
  let best = List.fold_left (fun acc r -> max acc r.r_speedup) 0.0 runs in
  List.iter
    (fun r ->
      Obs.Gauge.set
        (Obs.gauge (Printf.sprintf "measure.%s.speedup_d%d" name r.r_domains))
        r.r_speedup)
    runs;
  Obs.Gauge.set_int
    (Obs.gauge (Printf.sprintf "measure.%s.equal" name))
    (if m_equal then 1 else 0);
  {
    m_name = name;
    m_domains = domains;
    m_warmup = warmup;
    m_reps = reps;
    m_seq_wall_s = seq_wall;
    m_runs = runs;
    m_equal;
    m_best_speedup = best;
  }

let to_json (m : t) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [ ("name", String m.m_name);
      ("domains", Int m.m_domains);
      ("warmup", Int m.m_warmup);
      ("reps", Int m.m_reps);
      ("seq_wall_s", Float m.m_seq_wall_s);
      ("equal", Bool m.m_equal);
      ("best_speedup", Float m.m_best_speedup);
      ( "runs",
        List
          (List.map
             (fun r ->
               Obj
                 [ ("domains", Int r.r_domains);
                   ("wall_s", Float r.r_wall_s);
                   ("speedup", Float r.r_speedup);
                   ("efficiency", Float r.r_efficiency);
                   ("equal", Bool r.r_equal);
                   ("tasks", Int r.r_tasks);
                   ("steals", Int r.r_steals);
                   ("imbalance", Float r.r_imbalance) ])
             m.m_runs) ) ]

let table_rows (m : t) =
  List.map
    (fun r ->
      [ string_of_int r.r_domains;
        Printf.sprintf "%.2f" (r.r_wall_s *. 1e3);
        Printf.sprintf "%.2fx" r.r_speedup;
        Printf.sprintf "%.2f" r.r_efficiency;
        (if r.r_equal then "yes" else "NO");
        string_of_int r.r_tasks;
        string_of_int r.r_steals;
        Printf.sprintf "%.2f" r.r_imbalance ])
    m.m_runs

let to_string (m : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "measured speedups for %s (sequential %.2f ms, median of %d after %d warmup):\n"
       m.m_name (m.m_seq_wall_s *. 1e3) m.m_reps m.m_warmup);
  let header =
    [ "domains"; "wall ms"; "speedup"; "efficiency"; "equal"; "tasks";
      "steals"; "imbalance" ]
  in
  let rows = header :: table_rows m in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map (fun _ -> 0) header)
      rows
  in
  List.iter
    (fun row ->
      List.iteri
        (fun i c ->
          Buffer.add_string b (Printf.sprintf "%-*s  " (List.nth widths i) c))
        row;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b
