(** Interning for the profiler hot path: variable names as int symbols and
    hash-consed loop stacks as int ids.

    Only the producer domain (the interpreter) interns; worker domains read
    ids they received through the profiler queues, whose push/pop is the
    happens-before edge publishing the table entries. *)

(** Variable-name symbols. *)
module Sym : sig
  val intern : string -> int

  val name : int -> string
  (** The original string; physically shared, so resolving the same symbol
      twice yields [==]-equal strings. *)

  val count : unit -> int
end

(** Hash-consed loop stacks: a stack is an int id; equal ids are equal
    stacks (same frames, same iteration numbers). *)
module Lstack : sig
  val empty : int
  (** The empty stack (id 0). *)

  val is_empty : int -> bool

  val push : parent:int -> loop_line:int -> inst:int -> iter:int -> int
  (** The stack [parent] extended with one frame; memoised, so re-pushing an
      existing frame returns the existing id. *)

  val depth : int -> int

  val innermost_line : int -> int
  (** Innermost frame's loop header line; [-1] for the empty stack. *)

  val innermost : int -> Event.frame option

  val carrier_code : src:int -> snk:int -> int
  (** {!Event.carrier} on interned stacks, as a code: the carrying loop's
      header line, or [-1] when the dependence is not loop-carried.
      Allocation-free. *)

  val to_frames : int -> Event.frame list
  val of_frames : Event.frame list -> int

  val count : unit -> int
end
