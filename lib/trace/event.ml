(* The instrumented instruction stream.

   The MIL interpreter emits one {!access} per dynamic memory instruction and
   {!region} events at control-region boundaries — the same interface DiscoPoP
   obtains by instrumenting LLVM IR loads/stores and control regions. *)

type kind = Read | Write

(* One entry of the dynamic loop stack: which static loop (by header line),
   which dynamic instance of it, and the current iteration number. Stacks are
   stored outermost-first and shared immutably between accesses. *)
type frame = { loop_line : int; inst : int; iter : int }

type access = {
  kind : kind;
  addr : int;
  var : int;            (* source-level variable name, as an Intern.Sym *)
  line : int;           (* source line of the access *)
  thread : int;
  time : int;           (* global timestamp, strictly increasing *)
  op : int;             (* static memory-operation id (for §2.4 skipping) *)
  lstack : int;         (* loop stack at the access, as an Intern.Lstack id *)
  locked : bool;        (* thread held >=1 lock / access was atomic *)
}

type region =
  | Loop_entry of { line : int; inst : int }
  | Loop_iter of { line : int; inst : int; iter : int }
  | Loop_exit of { line : int; inst : int; iterations : int }
  | Func_entry of { name : string; line : int; call_line : int }
  | Func_exit of { name : string; line : int }
  | Dealloc of { addrs : (int * int * string) list }
      (* (base, length, var): scope exit or explicit free ended these
         variables' lifetimes (§2.3.5) *)
  | Thread_start of { thread : int }
  | Thread_end of { thread : int }

type t = Access of access | Region of region

let kind_to_string = function Read -> "read" | Write -> "write"

(* Deepest loop at which two accesses share a dynamic instance. *)
let rec common_frames a b =
  match (a, b) with
  | fa :: ra, fb :: rb when fa.loop_line = fb.loop_line && fa.inst = fb.inst ->
      (fa, fb) :: common_frames ra rb
  | _ -> []

(* If a dependence between accesses with loop stacks [src] and [snk] is
   loop-carried, return the carrying frame (from the sink's stack): the
   deepest common loop instance where the iteration numbers differ. *)
let carrier ~src ~snk =
  match List.rev (common_frames src snk) with
  | (fa, fb) :: _ when fa.iter <> fb.iter -> Some fb
  | _ -> None

let innermost lstack =
  match List.rev lstack with [] -> None | f :: _ -> Some f
