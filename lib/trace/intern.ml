(* Interning for the profiler hot path.

   Every dynamic memory access used to carry a [string] variable name and a
   [frame list] loop stack; at millions of accesses per run the copies and
   the per-dependence stack zips dominated profiling cost. Instead:

   - variable names are interned to int symbols ({!Sym}), rendered back to
     strings only at reporting boundaries;
   - loop stacks are hash-consed into an append-only node store ({!Lstack}):
     a stack is an int id, pushing a frame is one memo lookup per loop
     iteration (not per access), and the carrier computation of
     {!Event.carrier} becomes an allocation-free parent walk over int arrays.

   Hash-consing gives maximal sharing: equal stacks (same frames, same
   iteration numbers) have equal ids, so id equality is stack equality.

   Concurrency: interning ([Sym.intern], [Lstack.push]) is serialized by a
   mutex — the batch pipeline driver runs whole profiling jobs in concurrent
   domains, each interpreting (and therefore interning) at once. Sharing the
   tables across jobs is sound because hash-consing is content-addressed:
   equal keys denote equal content, whichever domain inserted first. Within
   one run the lock is uncontended and taken once per loop iteration /
   variable binding, never per access. Resolution stays lock-free: profiler
   worker domains read ids they received through the lock-free queues, whose
   push/pop is the happens-before edge publishing every entry an id refers
   to (for same-domain or mutex-passing readers the lock itself is). The
   growable backing arrays are swapped in via [Atomic.set] after the copy,
   so a reader never observes a store whose prefix is not fully
   initialised. *)

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

module Sym = struct
  type store = { names : string array }

  let store = Atomic.make { names = Array.make 64 "" }
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 256
  let next = ref 0

  let intern (s : string) : int =
    with_lock @@ fun () ->
    match Hashtbl.find_opt tbl s with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        let cur = Atomic.get store in
        if id >= Array.length cur.names then begin
          let names = Array.make (2 * Array.length cur.names) "" in
          Array.blit cur.names 0 names 0 (Array.length cur.names);
          Atomic.set store { names }
        end;
        (Atomic.get store).names.(id) <- s;
        Hashtbl.replace tbl s id;
        id

  (* The returned string is physically the one passed to [intern], so
     consumers resolving the same symbol twice get [==]-equal strings. *)
  let name (id : int) : string = (Atomic.get store).names.(id)

  let count () = !next
end

module Lstack = struct
  (* Node store: stack id -> frame fields + parent stack id. Id 0 is the
     empty stack. Struct-of-arrays keeps the carrier walk on int arrays. *)
  type store = {
    parent : int array;
    line : int array;    (* loop header line *)
    inst : int array;    (* dynamic loop-instance id *)
    iter : int array;    (* iteration number *)
    depth : int array;   (* 0 for the empty stack *)
  }

  let mk_store n =
    { parent = Array.make n 0; line = Array.make n 0; inst = Array.make n 0;
      iter = Array.make n 0; depth = Array.make n 0 }

  let store = Atomic.make (mk_store 1024)
  let next = ref 1  (* 0 = empty stack, preallocated as all-zero *)

  (* Hash-consing memo: (parent, line, inst, iter) -> id. Touched once per
     loop iteration, not per access. *)
  let memo : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 1024

  let empty = 0
  let is_empty id = id = 0

  let push ~parent ~loop_line ~inst ~iter : int =
    with_lock @@ fun () ->
    let key = (parent, loop_line, inst, iter) in
    match Hashtbl.find_opt memo key with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        let cur = Atomic.get store in
        if id >= Array.length cur.parent then begin
          let bigger = mk_store (2 * Array.length cur.parent) in
          Array.blit cur.parent 0 bigger.parent 0 id;
          Array.blit cur.line 0 bigger.line 0 id;
          Array.blit cur.inst 0 bigger.inst 0 id;
          Array.blit cur.iter 0 bigger.iter 0 id;
          Array.blit cur.depth 0 bigger.depth 0 id;
          Atomic.set store bigger
        end;
        let s = Atomic.get store in
        s.parent.(id) <- parent;
        s.line.(id) <- loop_line;
        s.inst.(id) <- inst;
        s.iter.(id) <- iter;
        s.depth.(id) <- s.depth.(parent) + 1;
        Hashtbl.replace memo key id;
        id

  let depth id = (Atomic.get store).depth.(id)

  (* The innermost frame's loop header line; [-1] for the empty stack. *)
  let innermost_line id =
    if id = 0 then -1 else (Atomic.get store).line.(id)

  let innermost id : Event.frame option =
    if id = 0 then None
    else
      let s = Atomic.get store in
      Some
        { Event.loop_line = s.line.(id); inst = s.inst.(id);
          iter = s.iter.(id) }

  (* Carrier of a dependence between loop stacks [src] and [snk], as a code:
     the carrying loop's header line, or [-1] when the dependence is not
     loop-carried (including when either stack is empty).

     This is {!Event.carrier} on interned stacks. The walk exploits two
     hash-consing facts: (1) equal ids are equal stacks, so reaching [a = b]
     means the deepest common frame (if any) has equal iteration numbers —
     not carried; (2) loop-instance ids are globally unique and a dynamic
     instance's outer stack is fixed for its whole lifetime, so two nodes
     agreeing on (line, inst) necessarily agree on everything above them —
     the first (line, inst) match found walking upward IS the deepest common
     frame of the prefix zip, and its ids differ iff the iterations differ
     (i.e. the dependence is carried by that loop). *)
  (* The walk helpers take the store snapshot as an argument: as closures
     capturing [s] they would be allocated afresh on every call, and this
     sits on the profiler's per-access hot path. *)
  let rec cc_up s id n = if n <= 0 then id else cc_up s s.parent.(id) (n - 1)

  let rec cc_walk s a b =
    if a = b then -1
    else if s.line.(a) = s.line.(b) && s.inst.(a) = s.inst.(b) then s.line.(a)
    else cc_walk s s.parent.(a) s.parent.(b)

  let carrier_code ~src ~snk : int =
    if src = snk then -1
    else
      let s = Atomic.get store in
      let da = s.depth.(src) and db = s.depth.(snk) in
      let a = if da > db then cc_up s src (da - db) else src in
      let b = if db > da then cc_up s snk (db - da) else snk in
      cc_walk s a b

  (* Conversions to/from the list representation, for tests and reporting. *)
  let to_frames id : Event.frame list =
    let s = Atomic.get store in
    let rec go id acc =
      if id = 0 then acc
      else
        go s.parent.(id)
          ({ Event.loop_line = s.line.(id); inst = s.inst.(id);
             iter = s.iter.(id) }
          :: acc)
    in
    go id []

  let of_frames (frames : Event.frame list) : int =
    List.fold_left
      (fun parent (f : Event.frame) ->
        push ~parent ~loop_line:f.Event.loop_line ~inst:f.Event.inst
          ~iter:f.Event.iter)
      empty frames

  let count () = !next
end
