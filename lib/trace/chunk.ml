(* Fixed-size chunks, the unit of transfer between the producer (the
   executing program) and the profiler's worker threads (§2.3.3). Chunk size
   is configurable in the interest of scalability, and empty chunks are
   recycled to avoid allocation churn. *)

type 'a t = {
  mutable used : int;
  mutable seq : int;  (* producer-assigned sequence number, for tracing *)
  slots : 'a array;
  dummy : 'a;
  clear_on_reset : bool;
}

let default_capacity = 512

let create ?(capacity = default_capacity) ?(seq = 0) ?(clear_on_reset = true)
    ~dummy () =
  { used = 0; seq; slots = Array.make capacity dummy; dummy; clear_on_reset }

let seq c = c.seq
let set_seq c s = c.seq <- s

let capacity c = Array.length c.slots
let length c = c.used
let is_full c = c.used = Array.length c.slots
let is_empty c = c.used = 0

let push c a =
  c.slots.(c.used) <- a;
  c.used <- c.used + 1

let get c i =
  assert (i < c.used);
  c.slots.(i)

let iter f c =
  for i = 0 to c.used - 1 do
    f c.slots.(i)
  done

(* Clearing is O(used) and only matters when stale slots would keep dead
   values alive past the chunk's next fill; a pool that overwrites slots
   immediately opts out with [clear_on_reset:false] and resets in O(1). *)
let reset c =
  if c.clear_on_reset then Array.fill c.slots 0 c.used c.dummy;
  c.used <- 0
