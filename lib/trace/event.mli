(** The instrumented instruction stream.

    The MIL interpreter emits one {!access} per dynamic memory instruction and
    {!region} events at control-region boundaries — the same interface
    DiscoPoP obtains by instrumenting LLVM IR loads/stores and control
    regions. *)

type kind = Read | Write

(** One entry of the dynamic loop stack: which static loop (by header line),
    which dynamic instance of it, and the current iteration number. Stacks
    are stored outermost-first and shared immutably between accesses. *)
type frame = { loop_line : int; inst : int; iter : int }

(** A dynamic memory instruction. Variable names and loop stacks are
    interned ({!Intern}): [var] is a symbol and [lstack] a hash-consed stack
    id, so an access is a flat record of immediates — the hot path copies no
    strings and no lists. *)
type access = {
  kind : kind;
  addr : int;           (** memory address (dense, bump-allocated) *)
  var : int;            (** source-level variable name ({!Intern.Sym}) *)
  line : int;           (** source line of the access *)
  thread : int;         (** executing thread id; 0 is the main thread *)
  time : int;           (** global timestamp, strictly increasing *)
  op : int;             (** static memory-operation id (for §2.4 skipping) *)
  lstack : int;         (** loop stack at the access ({!Intern.Lstack} id) *)
  locked : bool;        (** the thread held at least one lock *)
}

(** Control-region and lifetime events. *)
type region =
  | Loop_entry of { line : int; inst : int }
  | Loop_iter of { line : int; inst : int; iter : int }
  | Loop_exit of { line : int; inst : int; iterations : int }
  | Func_entry of { name : string; line : int; call_line : int }
  | Func_exit of { name : string; line : int }
  | Dealloc of { addrs : (int * int * string) list }
      (** [(base, length, var)]: scope exit or explicit free ended these
          variables' lifetimes (§2.3.5) *)
  | Thread_start of { thread : int }
  | Thread_end of { thread : int }

type t = Access of access | Region of region

val kind_to_string : kind -> string

val common_frames : frame list -> frame list -> (frame * frame) list
(** Longest common prefix of two loop stacks sharing loop instances. *)

val carrier : src:frame list -> snk:frame list -> frame option
(** If a dependence between accesses with loop stacks [src] and [snk] is
    loop-carried, the carrying frame (from the sink's stack): the deepest
    common loop instance where the iteration numbers differ. *)

val innermost : frame list -> frame option
(** The innermost loop frame, if the access was inside a loop. *)
