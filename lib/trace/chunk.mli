(** Fixed-size chunks, the unit of transfer between the producer (the
    executing program) and the profiler's worker threads (§2.3.3). *)

type 'a t

val default_capacity : int

val create : ?capacity:int -> ?seq:int -> ?clear_on_reset:bool -> dummy:'a ->
  unit -> 'a t
(** A fresh chunk; [dummy] fills unused slots; [seq] (default 0) is the
    producer-assigned sequence number. [clear_on_reset] (default [true])
    makes {!reset} refill used slots with [dummy]; pass [false] for pooled
    chunks whose slots are overwritten before they are read again, making
    {!reset} O(1). *)

val seq : 'a t -> int
(** The producer-assigned sequence number — labels this chunk's consumption
    span on a worker's trace timeline. *)

val set_seq : 'a t -> int -> unit

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append one item. The caller must check {!is_full} first. *)

val get : 'a t -> int -> 'a
(** [get c i] is the [i]-th item pushed; [i < length c]. *)

val iter : ('a -> unit) -> 'a t -> unit

val reset : 'a t -> unit
(** Empty the chunk for reuse (chunk recycling, §2.3.3). O(length) when the
    chunk clears on reset, O(1) otherwise. *)
