(** The serial DiscoPoP profiler front end: run a MIL program under the
    instrumenting interpreter, feeding every event to one dependence engine
    plus the PET builder. This is the "serial" configuration of Fig. 2.9 and
    the reference the lock-free parallel profiler must agree with. *)

type result = {
  deps : Dep.Set_.t;
  pet : Pet.t;
  races : (string * int * int) list;
  accesses : int;            (** dynamic memory instructions profiled *)
  skip_stats : Engine.skip_stats;
  footprint_words : int;     (** resident words of profiling structures *)
  merging_factor : float;
  interp : Mil.Interp.run_result;
}

val profile :
  ?shadow:Engine.shadow_kind ->
  ?skip:bool ->
  ?lifetime:bool ->
  ?seed:int ->
  ?scramble_unlocked:bool ->
  ?cancelled:(unit -> bool) ->
  Mil.Ast.program ->
  result
(** [cancelled] is polled periodically by the interpreter; returning true
    aborts the run with {!Mil.Interp.Cancelled} (see the batch driver's
    timeout handling and [discopop serve] deadlines). *)

val report : ?threads:bool -> result -> string
(** The profile in the paper's text format. *)

val publish :
  accesses:int ->
  deps:Dep.Set_.t ->
  footprint_words:int ->
  merging_factor:float ->
  unit
(** Publish run-level metrics ([profiler.accesses], [profiler.deps],
    footprint and merging-factor gauges) into the {!Obs} registry. Shared
    with {!Parallel.profile} so serial and parallel runs of the same workload
    report under identical names. No-op when observability is disabled. *)
