(* The serial DiscoPoP profiler front end: runs a MIL program under the
   instrumenting interpreter and feeds every event to one dependence engine,
   the PET builder, and lifetime analysis. This is the configuration the
   paper reports as "serial" in Fig. 2.9, and the reference implementation the
   lock-free parallel profiler must agree with. *)

type result = {
  deps : Dep.Set_.t;
  pet : Pet.t;
  races : (string * int * int) list;
  accesses : int;            (* dynamic memory instructions profiled *)
  skip_stats : Engine.skip_stats;
  footprint_words : int;     (* resident words of profiling structures *)
  merging_factor : float;
  interp : Mil.Interp.run_result;
}

(* Run-level metrics shared with the parallel profiler, so serial and
   parallel runs of the same workload are directly comparable in a stats
   export ("profiler.accesses" and "profiler.deps" must agree). *)
let c_accesses = Obs.counter "profiler.accesses"
let c_deps = Obs.counter "profiler.deps"
let g_footprint = Obs.gauge "profiler.footprint_words"
let g_merging = Obs.gauge "profiler.merging_factor"
let m_access_rate = Obs.meter "profiler.access_rate" ~per:"profile"

let publish ~accesses ~deps ~footprint_words ~merging_factor =
  if Obs.is_enabled () then begin
    Obs.Counter.add c_accesses accesses;
    Obs.Counter.add c_deps (Dep.Set_.cardinal deps);
    Obs.Meter.mark m_access_rate accesses;
    Obs.Gauge.set_int g_footprint footprint_words;
    Obs.Gauge.set g_merging merging_factor
  end

let profile ?(shadow = Engine.Perfect) ?(skip = false) ?(lifetime = true)
    ?(seed = 42) ?(scramble_unlocked = false) ?cancelled
    (prog : Mil.Ast.program) : result =
  Obs.Span.with_ ~phase:"profile" @@ fun () ->
  let engine = Engine.create ~skip ~lifetime shadow in
  let petb = Pet.create_builder () in
  (* In-order accesses arrive as unboxed fields through [on_access] — no
     [Event.Access] record is ever allocated on that path. Region events and
     scrambled (delayed, reordered) accesses still arrive through [emit]. *)
  let on_access ~kind ~addr ~var ~line ~thread ~time ~op ~lstack ~locked =
    Engine.feed_fields engine ~kind ~addr ~var ~line ~thread ~time ~op ~lstack
      ~locked;
    Pet.feed_access_line petb ~line
  in
  let emit ev =
    Engine.feed engine ev;
    Pet.feed petb ev
  in
  let interp =
    Mil.Interp.run ~seed ~scramble_unlocked ?cancelled ~emit ~on_access prog
  in
  let pet = Pet.finish petb in
  let deps = Engine.deps engine in
  Pet.attach_deps pet deps;
  let r =
    { deps;
      pet;
      races = Engine.races engine;
      accesses = Engine.processed engine;
      skip_stats = Engine.skip_stats engine;
      footprint_words = Engine.word_footprint engine;
      merging_factor = Dep.Set_.merging_factor deps;
      interp }
  in
  publish ~accesses:r.accesses ~deps ~footprint_words:r.footprint_words
    ~merging_factor:r.merging_factor;
  Engine.observe engine;
  r

(* Convenience: render the profile in the paper's text format. *)
let report ?(threads = false) (r : result) : string =
  Report.render ~threads ~control:(Report.control_of_pet r.pet) r.deps
