(* Textual output in the paper's format (Fig. 2.1 / 2.3):

     1:60 BGN loop
     1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
     ...
     1:74 END loop 1200

   Dependences with the same sink are aggregated on one line; sinks carry
   thread ids when [threads] is set (parallel targets, Fig. 2.3). *)

type control = {
  loop_begin : (int, unit) Hashtbl.t;
  loop_end : (int, int) Hashtbl.t;  (* end line -> iterations *)
  func_begin : (int, string) Hashtbl.t;
  func_end : (int, string) Hashtbl.t;
}

let empty_control () =
  { loop_begin = Hashtbl.create 16; loop_end = Hashtbl.create 16;
    func_begin = Hashtbl.create 16; func_end = Hashtbl.create 16 }

(* Derive region begin/end markers from a PET. *)
let control_of_pet (pet : Pet.t) : control =
  let c = empty_control () in
  Pet.iter
    (fun n ->
      match n.Pet.kind with
      | Pet.Lnode line ->
          Hashtbl.replace c.loop_begin line ();
          Hashtbl.replace c.loop_end n.Pet.last_line
            (n.Pet.iterations / max n.Pet.instances 1)
      | Pet.Fnode f ->
          Hashtbl.replace c.func_begin n.Pet.first_line f;
          Hashtbl.replace c.func_end n.Pet.last_line f
      | Pet.Bnode _ -> ())
    pet;
  c

let render ?(threads = false) ?(control = empty_control ()) (deps : Dep.Set_.t)
    : string =
  let by_sink : (int * int, Dep.t list) Hashtbl.t = Hashtbl.create 64 in
  Dep.Set_.iter
    (fun d _ ->
      let key = (d.Dep.sink_line, if threads then d.Dep.sink_thread else 0) in
      let prev = try Hashtbl.find by_sink key with Not_found -> [] in
      Hashtbl.replace by_sink key (d :: prev))
    deps;
  let sinks =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_sink []
    |> List.sort_uniq Stdlib.compare
  in
  let buf = Buffer.create 1024 in
  let emitted_begin = Hashtbl.create 16 in
  List.iter
    (fun (line, thread) ->
      if Hashtbl.mem control.loop_begin line && not (Hashtbl.mem emitted_begin line)
      then begin
        Hashtbl.replace emitted_begin line ();
        Buffer.add_string buf (Printf.sprintf "1:%d BGN loop\n" line)
      end;
      (match Hashtbl.find_opt control.func_begin line with
      | Some f when not (Hashtbl.mem emitted_begin (-line)) ->
          Hashtbl.replace emitted_begin (-line) ();
          Buffer.add_string buf (Printf.sprintf "1:%d BGN func %s\n" line f)
      | _ -> ());
      let ds = List.sort Dep.compare (Hashtbl.find by_sink (line, thread)) in
      let sink =
        if threads then Printf.sprintf "1:%d|%d" line thread
        else Printf.sprintf "1:%d" line
      in
      Buffer.add_string buf
        (Printf.sprintf "%s NOM %s\n" sink
           (String.concat " " (List.map (Dep.to_string ~threads) ds)));
      match Hashtbl.find_opt control.loop_end line with
      | Some iters -> Buffer.add_string buf (Printf.sprintf "1:%d END loop %d\n" line iters)
      | None -> ())
    sinks;
  Buffer.contents buf

(* Ranked provenance table for `discopop explain`: one row per merged record,
   hottest first, each carrying its first dynamic witness and the shadow
   backend's false-positive risk at that moment (0 under exact shadows). *)
let render_explain ?(top = 0) ?(threads = false) (deps : Dep.Set_.t) : string =
  let rows = Dep.Set_.to_ranked deps in
  let shown = if top > 0 then List.filteri (fun i _ -> i < top) rows else rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "# %d records, %d instances (merging %.1fx)%s\n"
       (Dep.Set_.cardinal deps)
       (Dep.Set_.occurrences deps)
       (Dep.Set_.merging_factor deps)
       (if top > 0 && List.length rows > top then
          Printf.sprintf ", showing top %d" top
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "%4s  %-4s  %-12s  %-12s  %-10s  %9s  %-10s  %12s  %10s  %6s  %s\n"
       "#" "type" "sink" "source" "var" "count" "carried" "first-time"
       "first-idx" "dom" "risk");
  List.iteri
    (fun i ((d : Dep.t), count, prov) ->
      let loc line thread =
        if threads then Printf.sprintf "1:%d|%d" line thread
        else Printf.sprintf "1:%d" line
      in
      let src =
        if d.Dep.dtype = Dep.Init then "-" else loc d.Dep.src_line d.Dep.src_thread
      in
      let carried =
        match d.Dep.carrier with
        | Some l -> Printf.sprintf "@%d" l
        | None -> "-"
      in
      let first_time, first_idx, dom, risk =
        match (prov : Dep.prov option) with
        | Some p ->
            ( string_of_int p.Dep.first_time,
              string_of_int p.Dep.first_index,
              string_of_int p.Dep.witness_domain,
              Printf.sprintf "%.4f" p.Dep.risk )
        | None -> ("-", "-", "-", "0.0000")
      in
      Buffer.add_string buf
        (Printf.sprintf "%4d  %-4s  %-12s  %-12s  %-10s  %9d  %-10s  %12s  %10s  %6s  %s%s\n"
           (i + 1)
           (Dep.dtype_to_string d.Dep.dtype)
           (loc d.Dep.sink_line d.Dep.sink_thread)
           src d.Dep.var count carried first_time first_idx dom risk
           (if d.Dep.racy then "  RACY" else "")))
    shown;
  Buffer.contents buf
