(** Representation and runtime merging of data dependences (§2.3.1, §2.3.5).

    A dependence is the triple <sink, type, source> with attributes: variable
    name, thread ids, a loop-carried tag, and a race flag. Identical
    dependences are merged at runtime — the paper's 10^5x output-size
    reduction. *)

type dtype = Raw | War | Waw | Init

val dtype_to_string : dtype -> string

type t = {
  sink_line : int;
  sink_thread : int;
  dtype : dtype;
  src_line : int;       (** 0 for INIT *)
  src_thread : int;
  var : string;         (** variable at the source access; ["*"] for INIT *)
  carrier : int option; (** carrying loop's header line, if loop-carried *)
  racy : bool;          (** timestamp reversal observed (potential race) *)
}

val init_dep : sink_line:int -> sink_thread:int -> t
(** The INIT record for a first write. *)

val compare : t -> t -> int

val to_string : ?threads:bool -> t -> string
(** The paper's [{TYPE file:line|var}] source form; [threads] adds thread ids
    (Fig. 2.3). *)

(** Provenance of a merged record: its first dynamic witness and the shadow
    backend's false-positive risk at that moment. Makes every reported
    dependence explainable ([discopop explain]). *)
type prov = {
  first_time : int;     (** interpreter timestamp of the witnessing sink access *)
  first_index : int;    (** engine-local dynamic access index of that witness *)
  witness_domain : int; (** profiler domain that built the record *)
  risk : float;         (** shadow false-positive risk at witness time; 0 = exact *)
}

(** A merged multiset of dependences: each distinct record stored once with
    its occurrence count, plus first-witness provenance when profiled. *)
module Set_ : sig
  type dep = t
  type t

  val create : unit -> t
  val add : t -> dep -> unit

  val add_witness :
    t -> dep -> time:int -> index:int -> domain:int -> risk:(unit -> float) ->
    unit
  (** Like {!add}, recording first-witness provenance when [dep] is new;
      [risk] is only evaluated then. Accesses must arrive in increasing
      [time] order (as every engine produces them) for the stored witness to
      be the earliest. *)

  val note :
    t -> dep -> time:int -> index:int -> domain:int -> risk:(unit -> float) ->
    int ref
  (** {!add_witness} returning the record's count cell, for the engine's
      per-op duplicate-suppression fast path. The cell is owned by this set;
      only bump it through {!hit}. *)

  val hit : t -> int ref -> unit
  (** One more occurrence of a record whose count cell the caller already
      holds (from {!note}): no hashing, no lookup. *)

  val prov : t -> dep -> prov option

  val risk_of : t -> dep -> float
  (** [prov]'s risk, or 0 for records added without provenance. *)

  val mem : t -> dep -> bool
  val cardinal : t -> int
  (** Distinct records. *)

  val occurrences : t -> int
  (** Pre-merge dynamic instances. *)

  val merging_factor : t -> float
  (** Average instances per record (§2.3.5). *)

  val iter : (dep -> int -> unit) -> t -> unit
  val to_list : t -> (dep * int) list
  (** Sorted by {!compare}. *)

  val to_ranked : t -> (dep * int * prov option) list
  (** Hottest-first (occurrence count descending, ties by {!compare}) — the
      order [discopop explain] presents. *)

  val union : t -> t -> unit
  (** [union into from] merges [from] into [into] — the cheap final step of
      the parallel profiler (Fig. 2.2). Provenance keeps the earliest
      witness. *)

  val strip : dep -> dep
  (** Clears the race flag, which is not part of identity for accuracy
      comparisons. *)

  val accuracy : truth:t -> got:t -> float * float
  (** Record-level [(FPR, FNR)] of [got] against the exact [truth]
      (§2.5.1). *)

  val accuracy_weighted : truth:t -> got:t -> float * float
  (** Occurrence-weighted [(FPR, FNR)]: each record weighted by its merged
      instance count, so a one-off hash collision counts one instance against
      the millions of instances of hot true dependences — how the paper's
      Table 2.6 reaches sub-percent rates. *)

  val at_sink : t -> int -> dep list
  (** Dependences whose sink is at the given line. *)

  val in_range : t -> lo:int -> hi:int -> dep list
  (** Dependences whose sink lies in [[lo, hi]]. *)
end
