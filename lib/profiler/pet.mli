(** The Program Execution Tree (§2.3.6): functions, loops, and straight-line
    blocks with "calling"/"containing" edges. Multiple dynamic instances of a
    static construct are merged into one node; per-node metrics (executed
    instructions, iterations, dependences) feed the ranking phase. *)

type kind =
  | Fnode of string           (** function *)
  | Lnode of int              (** loop, by header line *)
  | Bnode of int              (** straight-line block, by first access line *)

type node = {
  id : int;
  kind : kind;
  parent : int;                (** [-1] for a root *)
  mutable children : int list;
  mutable instructions : int;  (** dynamic memory instructions directly here *)
  mutable iterations : int;    (** loops: total iterations across instances *)
  mutable instances : int;     (** dynamic instances merged into this node *)
  mutable first_line : int;
  mutable last_line : int;
  mutable dep_count : int;     (** dependences whose sink lies in the span *)
}

type t

(** {1 Construction} *)

type builder

val create_builder : unit -> builder
val feed : builder -> Trace.Event.t -> unit

val feed_access_line : builder -> line:int -> unit
(** The access case of {!feed} given just the line — an access contributes
    nothing else to the tree — so the serial fast path can feed the builder
    without an [Event.Access] record. *)

val finish : builder -> t

(** {1 Queries} *)

val node : t -> int -> node
val size : t -> int
val subtree_instructions : t -> int -> int
val total_instructions : t -> int

val attach_deps : t -> Dep.Set_.t -> unit
(** Attribute merged dependences to every node whose line span contains their
    sink. *)

val iter : (node -> unit) -> t -> unit
val to_string : t -> string
