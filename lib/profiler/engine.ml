(* The dependence-building engine: Algorithm 2 (signature-based profiling)
   plus the §2.4 optimization that skips repeatedly-executed memory operations
   in loops, variable-lifetime analysis (§2.3.5), and timestamp-based race
   flagging (§2.3.4).

   The engine is shadow-memory agnostic, but not at per-access cost: it is a
   functor ({!Make}) over the {!Sigmem.Shadow.S} signature, so each backend
   gets its own copy of the hot loop with direct calls into the store — no
   per-access dispatch through a record of closures. The [shadow_kind]-driven
   wrapper API at the bottom dispatches once per call on a three-constructor
   variant and keeps every existing caller compiling. One engine instance
   also serves as the per-worker consumer of the parallel profiler.

   The per-access path is (near-)zero-allocation end to end: shadow slots
   live in flat off-heap stores and are decoded into three per-engine
   mutable scratch cells ({!Sigmem.Cell}), and {!Make.feed_fields} accepts
   the access as unboxed int fields so the serial interpreter path never
   constructs an [Event.access] record. The record-based {!Make.feed_access}
   remains for the parallel/chunked path, whose queues carry records
   anyway. *)

module Event = Trace.Event
module Intern = Trace.Intern
module Cell = Sigmem.Cell

type shadow_kind =
  | Signature of int  (* approximate, fixed slot count *)
  | Perfect           (* exact, open-addressed flat table *)
  | Paged             (* exact, two-level page table *)

(* Counters for Table 2.7 / Fig 2.13: skipped instructions, classified by the
   dependence type they would have created. *)
type skip_stats = {
  mutable reads_total : int;      (* reads that lead to a dependence *)
  mutable writes_total : int;
  mutable reads_skipped : int;
  mutable writes_skipped : int;
  mutable skipped_raw : int;
  mutable skipped_war : int;
  mutable skipped_waw : int;
  mutable shadow_update_elided : int;  (* §2.4.3 special case *)
}

(* Duplicate-suppression slot (the paper's "dependence merging", made O(1)):
   per static memory operation and dependence type, the ingredients of a
   recently built record plus the occurrence count cell it lives under in
   [Dep.Set_]. When the current access would rebuild a field-for-field
   identical record, we bump the shared count instead of allocating the
   record and re-hashing its variable name. [d_src_line = min_int] marks an
   empty slot.

   Slots are kept two ways deep per (operation, dependence type): real
   streams routinely alternate between two sources for one operation (the
   first touch of an address vs the loop-carried repeat), and a single slot
   thrashes on exactly that pattern. See [record]. *)
type dslot = {
  mutable d_src_line : int;
  mutable d_src_thread : int;
  mutable d_var : int;              (* source variable symbol *)
  mutable d_carrier : int;          (* carrier code: line / -1 *)
  mutable d_sink_line : int;
  mutable d_sink_thread : int;
  mutable d_racy : bool;
  mutable d_count : int ref;        (* the count cell inside Dep.Set_ *)
}

let fresh_dslot () =
  { d_src_line = min_int; d_src_thread = 0; d_var = -1; d_carrier = 0;
    d_sink_line = 0; d_sink_thread = 0; d_racy = false; d_count = ref 0 }

(* Overwrite [dst]'s ingredients with [src]'s (two-way eviction). All fields
   are immediates except the count ref, so this is barrier-free but for one
   pointer store. *)
let dslot_copy (dst : dslot) (src : dslot) =
  dst.d_src_line <- src.d_src_line;
  dst.d_src_thread <- src.d_src_thread;
  dst.d_var <- src.d_var;
  dst.d_carrier <- src.d_carrier;
  dst.d_sink_line <- src.d_sink_line;
  dst.d_sink_thread <- src.d_sink_thread;
  dst.d_racy <- src.d_racy;
  dst.d_count <- src.d_count

let no_op = -1
let no_addr = min_int

(* Direct-mapped memo for the carrier computation over interned loop-stack
   ids. Hot loops produce the same (src, snk) id pair for every access of an
   iteration pair, so the parent walk is almost always replaced by one probe.
   Engine-local (single domain), collisions simply overwrite. *)
let memo_size = 4096 (* power of two *)

type carrier_memo = {
  m_src : int array;
  m_snk : int array;
  m_code : int array;
}

let make_memo () =
  { m_src = Array.make memo_size (-1);
    m_snk = Array.make memo_size (-1);
    m_code = Array.make memo_size 0 }

(* Index is masked, so the probes are always in bounds. *)
let memo_probe m ~src ~snk =
  let h = (src * 0x9E3779B1) lxor (snk * 0x85EBCA77) in
  let i = h land (memo_size - 1) in
  if Array.unsafe_get m.m_src i = src && Array.unsafe_get m.m_snk i = snk then
    Array.unsafe_get m.m_code i
  else begin
    let code = Intern.Lstack.carrier_code ~src ~snk in
    Array.unsafe_set m.m_src i src;
    Array.unsafe_set m.m_snk i snk;
    Array.unsafe_set m.m_code i code;
    code
  end

(* Engine state independent of the shadow backend. *)
type common = {
  deps : Dep.Set_.t;
  skip : bool;
  lifetime : bool;  (* variable-lifetime analysis (§2.3.5); off for ablation *)
  memo : carrier_memo;
  (* §2.4 per-memory-operation state, grown on demand. Beyond the paper's
     lastAddr/lastStatusRead/lastStatusWrite we also fingerprint the carrying
     loop of the dependence the instruction would create: our dependence
     records carry a per-loop carrier attribute, so two instances of the same
     operation with identical shadow status can still produce *distinct*
     records at loop boundaries (inner-carried vs outer-carried). *)
  mutable last_addr : int array;
  mutable last_status_read : int array;
  mutable last_status_write : int array;
  mutable last_raw_carrier : int array;   (* reads: would-be RAW carrier *)
  mutable last_war_carrier : int array;   (* writes: would-be WAR carrier *)
  mutable last_waw_carrier : int array;   (* writes: would-be WAW carrier *)
  mutable raw_slot : dslot array;         (* per-op dedup, two ways per op *)
  mutable war_slot : dslot array;
  mutable waw_slot : dslot array;
  mutable init_slot : dslot array;        (* one way per op *)
  sstats : skip_stats;
  mutable races : (string * int * int) list;  (* var, line-a, line-b *)
  mutable n_processed : int;
  mutable lifetime_removals : int;
}

(* Initial per-op capacity. Deliberately small: op ids are dense interpreter
   assignments, most workloads use well under 128 static memory operations,
   and doubling growth amortizes the rest — while engine construction stays
   cheap enough that short streams (per-worker engines, small programs)
   aren't dominated by setup allocation. *)
let initial_ops = 128

let make_common ~skip ~lifetime =
  { deps = Dep.Set_.create ();
    skip;
    lifetime;
    memo = make_memo ();
    last_addr = Array.make initial_ops no_addr;
    last_status_read = Array.make initial_ops no_op;
    last_status_write = Array.make initial_ops no_op;
    last_raw_carrier = Array.make initial_ops min_int;
    last_war_carrier = Array.make initial_ops min_int;
    last_waw_carrier = Array.make initial_ops min_int;
    raw_slot = Array.init (2 * initial_ops) (fun _ -> fresh_dslot ());
    war_slot = Array.init (2 * initial_ops) (fun _ -> fresh_dslot ());
    waw_slot = Array.init (2 * initial_ops) (fun _ -> fresh_dslot ());
    init_slot = Array.init initial_ops (fun _ -> fresh_dslot ());
    sstats =
      { reads_total = 0; writes_total = 0; reads_skipped = 0;
        writes_skipped = 0; skipped_raw = 0; skipped_war = 0; skipped_waw = 0;
        shadow_update_elided = 0 };
    races = [];
    n_processed = 0;
    lifetime_removals = 0 }

let ensure_op_capacity c op =
  let n = Array.length c.last_addr in
  if op >= n then begin
    let n' = max (2 * n) (op + 1) in
    let grow arr fill =
      let a = Array.make n' fill in
      Array.blit arr 0 a 0 n;
      a
    in
    let grow_slots arr width =
      let m = width * n in
      Array.init (width * n') (fun i -> if i < m then arr.(i) else fresh_dslot ())
    in
    c.last_addr <- grow c.last_addr no_addr;
    c.last_status_read <- grow c.last_status_read no_op;
    c.last_status_write <- grow c.last_status_write no_op;
    c.last_raw_carrier <- grow c.last_raw_carrier min_int;
    c.last_war_carrier <- grow c.last_war_carrier min_int;
    c.last_waw_carrier <- grow c.last_waw_carrier min_int;
    c.raw_slot <- grow_slots c.raw_slot 2;
    c.war_slot <- grow_slots c.war_slot 2;
    c.waw_slot <- grow_slots c.waw_slot 2;
    c.init_slot <- grow_slots c.init_slot 1
  end

let note_race c ~sink_var ~sink_line (src : Cell.t) =
  let var = Intern.Sym.name sink_var in
  c.races <- (var, src.line, sink_line) :: c.races;
  if Obs.Trace.is_enabled () then Obs.Trace.instant ("race:" ^ var)

(* The monomorphic engine over one shadow backend. *)
module Make (S : Sigmem.Shadow.S) = struct
  type t = {
    shadow : S.t;
    c : common;
    risk : unit -> float;
        (* one closure per engine, not per record: [Dep.Set_.note] evaluates
           it only when a record is new *)
    (* Scratch cells: the current address's decoded last read / last write,
       and the current access being stored. Reused for every access — the
       engine allocates no cell on the hot path. *)
    rcell : Cell.t;
    wcell : Cell.t;
    acell : Cell.t;
  }

  let create ?(skip = false) ?(lifetime = true) ~slots () =
    let shadow = S.create ~slots in
    { shadow; c = make_common ~skip ~lifetime;
      risk = (fun () -> S.fp_risk shadow);
      rcell = Cell.scratch (); wcell = Cell.scratch ();
      acell = Cell.scratch () }

  (* Record the dependence of the current access (sink fields passed
     unboxed) against source cell [src] through the per-op dedup slots: on
     ingredient match, one [incr] on the shared count; otherwise build the
     record once, insert it with first-witness provenance (sink timestamp,
     engine-local access index, profiling domain, current shadow
     false-positive risk), and remember the ingredients. [ccode] is the
     precomputed carrier code (>= -1).

     [arr] holds two ways per op, at [2 op] and [2 op + 1]. One way thrashes
     on the ubiquitous two-source alternation (the first touch of an address
     vs the loop-carried repeat produce different records for the same
     operation, interleaved per address), rebuilding and re-hashing a known
     record on every access; with two ways both sources stay resident. On a
     double miss the first way is demoted and the new record takes its
     place, so a repeating pair always converges to resident. *)
  let slot_matches (slot : dslot) ~src_line ~src_thread ~src_var ~ccode
      ~sink_line ~sink_thread ~racy =
    slot.d_src_line = src_line
    && slot.d_src_thread = src_thread
    && slot.d_var = src_var
    && slot.d_carrier = ccode
    && slot.d_sink_line = sink_line
    && slot.d_sink_thread = sink_thread
    && slot.d_racy = racy

  let record c risk ~sink_line ~sink_thread ~sink_time ~sink_var dtype
      (arr : dslot array) op (src : Cell.t) ~ccode =
    let racy =
      (* Timestamp reversal: the recorded "earlier" access actually executed
         later — atomicity of access and push was violated, exposing a
         potential data race (§2.3.4). *)
      sink_time < src.time
    in
    if racy then note_race c ~sink_var ~sink_line src;
    let w0 = Array.unsafe_get arr (2 * op) in
    if
      slot_matches w0 ~src_line:src.line ~src_thread:src.thread
        ~src_var:src.var ~ccode ~sink_line ~sink_thread ~racy
    then Dep.Set_.hit c.deps w0.d_count
    else begin
      let w1 = Array.unsafe_get arr ((2 * op) + 1) in
      if
        slot_matches w1 ~src_line:src.line ~src_thread:src.thread
          ~src_var:src.var ~ccode ~sink_line ~sink_thread ~racy
      then Dep.Set_.hit c.deps w1.d_count
      else begin
        let d =
          { Dep.sink_line; sink_thread; dtype;
            src_line = src.line; src_thread = src.thread;
            var = Intern.Sym.name src.var;
            carrier = (if ccode >= 0 then Some ccode else None);
            racy }
        in
        let count =
          Dep.Set_.note c.deps d ~time:sink_time ~index:c.n_processed
            ~domain:(Domain.self () :> int) ~risk
        in
        dslot_copy w1 w0;
        w0.d_src_line <- src.line;
        w0.d_src_thread <- src.thread;
        w0.d_var <- src.var;
        w0.d_carrier <- ccode;
        w0.d_sink_line <- sink_line;
        w0.d_sink_thread <- sink_thread;
        w0.d_racy <- racy;
        w0.d_count <- count
      end
    end

  let record_init c risk ~sink_line ~sink_thread ~sink_time (slot : dslot) =
    if
      slot.d_sink_line = sink_line
      && slot.d_sink_thread = sink_thread
      && slot.d_src_line = 0 (* marks a populated INIT slot *)
    then Dep.Set_.hit c.deps slot.d_count
    else begin
      let d = Dep.init_dep ~sink_line ~sink_thread in
      let count =
        Dep.Set_.note c.deps d ~time:sink_time ~index:c.n_processed
          ~domain:(Domain.self () :> int) ~risk
      in
      slot.d_src_line <- 0;
      slot.d_sink_line <- sink_line;
      slot.d_sink_thread <- sink_thread;
      slot.d_count <- count
    end

  (* Algorithm 2 on one dynamic memory instruction, access fields unboxed:
     this is the zero-allocation entry point the serial interpreter path
     calls without ever constructing an [Event.access] record. Each carrier
     code (RAW for reads; WAR and WAW for writes) is computed exactly once
     and reused for the skip check, the dependence record, and the skip
     fingerprint update. *)
  let feed_fields t ~kind ~addr ~var ~line ~thread ~time ~op ~lstack ~locked =
    let c = t.c in
    c.n_processed <- c.n_processed + 1;
    ensure_op_capacity c op;
    let r = t.rcell and w = t.wcell in
    let h = S.load t.shadow ~addr r w in
    let status_read = if r.Cell.time = 0 then no_op else r.Cell.op in
    let status_write = if w.Cell.time = 0 then no_op else w.Cell.op in
    let a = t.acell in
    a.Cell.line <- line;
    a.Cell.var <- var;
    a.Cell.thread <- thread;
    a.Cell.time <- time;
    a.Cell.op <- op;
    a.Cell.lstack <- lstack;
    a.Cell.locked <- locked;
    (* [ensure_op_capacity] guarantees [op] indexes every per-op array. *)
    let base_skip =
      c.skip
      && Array.unsafe_get c.last_addr op = addr
      && Array.unsafe_get c.last_status_read op = status_read
      && Array.unsafe_get c.last_status_write op = status_write
    in
    match kind with
    | Event.Read ->
        (* Fingerprint of the RAW dependence this read would form against
           the last write: the carrying loop's header line, -1 for an
           intra-iteration dependence, -2 when there is no write at all. *)
        let raw_code =
          if status_write = no_op then -2
          else memo_probe c.memo ~src:w.Cell.lstack ~snk:lstack
        in
        if status_write <> no_op then
          c.sstats.reads_total <- c.sstats.reads_total + 1;
        if base_skip && raw_code = Array.unsafe_get c.last_raw_carrier op
        then begin
          if status_write <> no_op then begin
            c.sstats.reads_skipped <- c.sstats.reads_skipped + 1;
            c.sstats.skipped_raw <- c.sstats.skipped_raw + 1
          end;
          (* §2.4.3 special case: the read slot already holds this very
             operation. The paper elides the shadow update here; our slots
             also carry the loop stack used for carrier attribution, so we
             count the condition but refresh the slot to keep carriers
             exact. *)
          if status_read = op then
            c.sstats.shadow_update_elided <- c.sstats.shadow_update_elided + 1;
          S.store_read t.shadow h a
        end
        else begin
          if status_write <> no_op then
            record c t.risk ~sink_line:line ~sink_thread:thread
              ~sink_time:time ~sink_var:var Dep.Raw c.raw_slot op w
              ~ccode:raw_code;
          S.store_read t.shadow h a;
          (* The fingerprints are only ever read when [skip] is on; with it
             off, skip the five stores too. *)
          if c.skip then begin
            Array.unsafe_set c.last_addr op addr;
            Array.unsafe_set c.last_status_read op status_read;
            Array.unsafe_set c.last_status_write op status_write;
            Array.unsafe_set c.last_raw_carrier op raw_code
          end
        end
    | Event.Write ->
        (* WAW is recorded only for consecutive writes; a read since the
           last write re-orients the pair to WAR+RAW, so the orientation
           must be part of the write-side skip fingerprint. *)
        let waw_applies =
          status_write <> no_op
          && (status_read = no_op || r.Cell.time < w.Cell.time)
        in
        let war_code =
          if status_read = no_op then -2
          else memo_probe c.memo ~src:r.Cell.lstack ~snk:lstack
        in
        let waw_code =
          if not waw_applies then -4
          else memo_probe c.memo ~src:w.Cell.lstack ~snk:lstack
        in
        if status_read <> no_op || waw_applies then
          c.sstats.writes_total <- c.sstats.writes_total + 1;
        if
          base_skip
          && war_code = Array.unsafe_get c.last_war_carrier op
          && waw_code = Array.unsafe_get c.last_waw_carrier op
        then begin
          if status_read <> no_op || waw_applies then begin
            c.sstats.writes_skipped <- c.sstats.writes_skipped + 1;
            if status_read <> no_op then
              c.sstats.skipped_war <- c.sstats.skipped_war + 1;
            if waw_applies then
              c.sstats.skipped_waw <- c.sstats.skipped_waw + 1
          end;
          (* see the read-side comment on the §2.4.3 special case *)
          if status_write = op then
            c.sstats.shadow_update_elided <- c.sstats.shadow_update_elided + 1;
          S.store_write t.shadow h a
        end
        else begin
          if status_read <> no_op then
            record c t.risk ~sink_line:line ~sink_thread:thread
              ~sink_time:time ~sink_var:var Dep.War c.war_slot op r
              ~ccode:war_code;
          if waw_applies then
            record c t.risk ~sink_line:line ~sink_thread:thread
              ~sink_time:time ~sink_var:var Dep.Waw c.waw_slot op w
              ~ccode:waw_code
          else if status_write = no_op then
            record_init c t.risk ~sink_line:line ~sink_thread:thread
              ~sink_time:time c.init_slot.(op);
          S.store_write t.shadow h a;
          (* see the read-side comment: fingerprints are dead when [skip]
             is off *)
          if c.skip then begin
            Array.unsafe_set c.last_addr op addr;
            Array.unsafe_set c.last_status_read op status_read;
            Array.unsafe_set c.last_status_write op status_write;
            Array.unsafe_set c.last_war_carrier op war_code;
            Array.unsafe_set c.last_waw_carrier op waw_code
          end
        end

  let feed_access t (a : Event.access) =
    feed_fields t ~kind:a.kind ~addr:a.addr ~var:a.var ~line:a.line
      ~thread:a.thread ~time:a.time ~op:a.op ~lstack:a.lstack ~locked:a.locked

  (* Variable-lifetime analysis: clear dead address ranges so their slots
     can be reused without manufacturing false dependences. *)
  let feed_dealloc t addrs =
    let c = t.c in
    if c.lifetime then
      List.iter
        (fun (base, len, _var) ->
          for a = base to base + len - 1 do
            S.remove t.shadow ~addr:a
          done;
          c.lifetime_removals <- c.lifetime_removals + len)
        addrs

  (* Resident words attributable to this engine: shadow store + per-op skip
     state + merged dependence table. *)
  let word_footprint t =
    S.word_footprint t.shadow
    + (3 * Array.length t.c.last_addr)
    + (8 * Dep.Set_.cardinal t.c.deps)

  let observe ~prefix t =
    let c name v = Obs.Counter.add (Obs.counter (prefix ^ name)) v in
    let g name v = Obs.Gauge.set_int (Obs.gauge (prefix ^ name)) v in
    let s = t.c.sstats in
    c ".accesses" t.c.n_processed;
    c ".deps" (Dep.Set_.cardinal t.c.deps);
    c ".lifetime.removals" t.c.lifetime_removals;
    c ".skip.reads_total" s.reads_total;
    c ".skip.writes_total" s.writes_total;
    c ".skip.reads_skipped" s.reads_skipped;
    c ".skip.writes_skipped" s.writes_skipped;
    c ".skip.raw" s.skipped_raw;
    c ".skip.war" s.skipped_war;
    c ".skip.waw" s.skipped_waw;
    c ".skip.shadow_update_elided" s.shadow_update_elided;
    g ".shadow.slots_used" (S.slots_used t.shadow);
    g ".shadow.words" (S.word_footprint t.shadow);
    List.iter (fun (k, v) -> g (".shadow." ^ k) v) (S.extra_stats t.shadow)
end

module Esig = Make (Sigmem.Signature)
module Eperfect = Make (Sigmem.Perfect)
module Epaged = Make (Sigmem.Two_level)

(* The shadow_kind-driven wrapper: one three-way dispatch per call, then
   straight into the monomorphic code. *)
type t =
  | Tsig of Esig.t
  | Tperfect of Eperfect.t
  | Tpaged of Epaged.t

let create ?(skip = false) ?(lifetime = true) = function
  | Signature slots -> Tsig (Esig.create ~skip ~lifetime ~slots ())
  | Perfect -> Tperfect (Eperfect.create ~skip ~lifetime ~slots:0 ())
  | Paged -> Tpaged (Epaged.create ~skip ~lifetime ~slots:0 ())

let common = function
  | Tsig e -> e.Esig.c
  | Tperfect e -> e.Eperfect.c
  | Tpaged e -> e.Epaged.c

let feed_fields t ~kind ~addr ~var ~line ~thread ~time ~op ~lstack ~locked =
  match t with
  | Tsig e ->
      Esig.feed_fields e ~kind ~addr ~var ~line ~thread ~time ~op ~lstack
        ~locked
  | Tperfect e ->
      Eperfect.feed_fields e ~kind ~addr ~var ~line ~thread ~time ~op ~lstack
        ~locked
  | Tpaged e ->
      Epaged.feed_fields e ~kind ~addr ~var ~line ~thread ~time ~op ~lstack
        ~locked

let feed_access t a =
  match t with
  | Tsig e -> Esig.feed_access e a
  | Tperfect e -> Eperfect.feed_access e a
  | Tpaged e -> Epaged.feed_access e a

let feed_dealloc t addrs =
  match t with
  | Tsig e -> Esig.feed_dealloc e addrs
  | Tperfect e -> Eperfect.feed_dealloc e addrs
  | Tpaged e -> Epaged.feed_dealloc e addrs

let feed t (ev : Event.t) =
  match ev with
  | Event.Access a -> feed_access t a
  | Event.Region (Event.Dealloc { addrs }) -> feed_dealloc t addrs
  | Event.Region _ -> ()

let deps t = (common t).deps
(* Distinct potential races (var, earlier line, later line). *)
let races t = List.sort_uniq compare (common t).races
let skip_stats t = (common t).sstats
let processed t = (common t).n_processed

let word_footprint = function
  | Tsig e -> Esig.word_footprint e
  | Tperfect e -> Eperfect.word_footprint e
  | Tpaged e -> Epaged.word_footprint e

(* Publish this engine's end-of-run statistics into the observability
   registry under [prefix]. Counters accumulate across engines (the parallel
   profiler's workers all observe under their own prefix AND the shared
   aggregate one), gauges record the last observed store shape. No-op when
   observability is disabled. *)
let observe ?(prefix = "engine") t =
  if Obs.is_enabled () then
    match t with
    | Tsig e -> Esig.observe ~prefix e
    | Tperfect e -> Eperfect.observe ~prefix e
    | Tpaged e -> Epaged.observe ~prefix e
