(* The dependence-building engine: Algorithm 2 (signature-based profiling)
   plus the §2.4 optimization that skips repeatedly-executed memory operations
   in loops, variable-lifetime analysis (§2.3.5), and timestamp-based race
   flagging (§2.3.4).

   The engine is shadow-memory agnostic: the same code runs over the
   approximate signature and over the exact "perfect signature", and one
   engine instance serves as the per-worker consumer of the parallel
   profiler. *)

module Event = Trace.Event
module Cell = Sigmem.Cell

type shadow_ops = {
  last_read : addr:int -> Cell.t;
  last_write : addr:int -> Cell.t;
  set_read : addr:int -> Cell.t -> unit;
  set_write : addr:int -> Cell.t -> unit;
  remove : addr:int -> unit;
  slots_used : unit -> int;
  word_footprint : unit -> int;
  extra_stats : unit -> (string * int) list;
  (* backend-specific observability: collision proxy and per-signature
     occupancy for Signature, page count for Paged; published as gauges *)
  fp_risk : unit -> float;
  (* false-positive risk attribution for the dependence being recorded right
     now: slot-occupancy collision proxy for Signature, 0 for exact
     backends; stored in each record's first-witness provenance *)
}

type shadow_kind =
  | Signature of int  (* approximate, fixed slot count *)
  | Perfect           (* exact, hash-table backed *)
  | Paged             (* exact, two-level page table *)

let make_shadow = function
  | Signature slots ->
      let s = Sigmem.Signature.create ~slots in
      { last_read = (fun ~addr -> Sigmem.Signature.last_read s ~addr);
        last_write = (fun ~addr -> Sigmem.Signature.last_write s ~addr);
        set_read = (fun ~addr c -> Sigmem.Signature.set_read s ~addr c);
        set_write = (fun ~addr c -> Sigmem.Signature.set_write s ~addr c);
        remove = (fun ~addr -> Sigmem.Signature.remove s ~addr);
        slots_used = (fun () -> Sigmem.Signature.slots_used s);
        word_footprint = (fun () -> Sigmem.Signature.word_footprint s);
        extra_stats =
          (fun () ->
            [ ("slots", Sigmem.Signature.slots s);
              ("occupied_reads", Sigmem.Signature.occupied_reads s);
              ("occupied_writes", Sigmem.Signature.occupied_writes s);
              ("takeovers", Sigmem.Signature.takeovers s) ]);
        fp_risk = (fun () -> Sigmem.Signature.collision_risk s) }
  | Perfect ->
      let s = Sigmem.Perfect.create ~slots:0 in
      { last_read = (fun ~addr -> Sigmem.Perfect.last_read s ~addr);
        last_write = (fun ~addr -> Sigmem.Perfect.last_write s ~addr);
        set_read = (fun ~addr c -> Sigmem.Perfect.set_read s ~addr c);
        set_write = (fun ~addr c -> Sigmem.Perfect.set_write s ~addr c);
        remove = (fun ~addr -> Sigmem.Perfect.remove s ~addr);
        slots_used = (fun () -> Sigmem.Perfect.slots_used s);
        word_footprint = (fun () -> Sigmem.Perfect.word_footprint s);
        extra_stats = (fun () -> []);
        fp_risk = (fun () -> 0.0) }
  | Paged ->
      let s = Sigmem.Two_level.create ~slots:0 in
      { last_read = (fun ~addr -> Sigmem.Two_level.last_read s ~addr);
        last_write = (fun ~addr -> Sigmem.Two_level.last_write s ~addr);
        set_read = (fun ~addr c -> Sigmem.Two_level.set_read s ~addr c);
        set_write = (fun ~addr c -> Sigmem.Two_level.set_write s ~addr c);
        remove = (fun ~addr -> Sigmem.Two_level.remove s ~addr);
        slots_used = (fun () -> Sigmem.Two_level.slots_used s);
        word_footprint = (fun () -> Sigmem.Two_level.word_footprint s);
        extra_stats =
          (fun () -> [ ("pages", Sigmem.Two_level.pages_allocated s) ]);
        fp_risk = (fun () -> 0.0) }

(* Counters for Table 2.7 / Fig 2.13: skipped instructions, classified by the
   dependence type they would have created. *)
type skip_stats = {
  mutable reads_total : int;      (* reads that lead to a dependence *)
  mutable writes_total : int;
  mutable reads_skipped : int;
  mutable writes_skipped : int;
  mutable skipped_raw : int;
  mutable skipped_war : int;
  mutable skipped_waw : int;
  mutable shadow_update_elided : int;  (* §2.4.3 special case *)
}

type t = {
  shadow : shadow_ops;
  deps : Dep.Set_.t;
  skip : bool;
  lifetime : bool;  (* variable-lifetime analysis (§2.3.5); off for ablation *)
  (* §2.4 per-memory-operation state, grown on demand. Beyond the paper's
     lastAddr/lastStatusRead/lastStatusWrite we also fingerprint the carrying
     loop of the dependence the instruction would create: our dependence
     records carry a per-loop carrier attribute, so two instances of the same
     operation with identical shadow status can still produce *distinct*
     records at loop boundaries (inner-carried vs outer-carried). *)
  mutable last_addr : int array;
  mutable last_status_read : int array;
  mutable last_status_write : int array;
  mutable last_raw_carrier : int array;   (* reads: would-be RAW carrier *)
  mutable last_war_carrier : int array;   (* writes: would-be WAR carrier *)
  mutable last_waw_carrier : int array;   (* writes: would-be WAW carrier *)
  sstats : skip_stats;
  mutable races : (string * int * int) list;  (* var, line-a, line-b *)
  mutable n_processed : int;
  mutable lifetime_removals : int;
}

let no_op = -1
let no_addr = min_int

let create ?(skip = false) ?(lifetime = true) shadow_kind =
  { shadow = make_shadow shadow_kind;
    deps = Dep.Set_.create ();
    skip;
    lifetime;
    last_addr = Array.make 1024 no_addr;
    last_status_read = Array.make 1024 no_op;
    last_status_write = Array.make 1024 no_op;
    last_raw_carrier = Array.make 1024 min_int;
    last_war_carrier = Array.make 1024 min_int;
    last_waw_carrier = Array.make 1024 min_int;
    sstats =
      { reads_total = 0; writes_total = 0; reads_skipped = 0;
        writes_skipped = 0; skipped_raw = 0; skipped_war = 0; skipped_waw = 0;
        shadow_update_elided = 0 };
    races = [];
    n_processed = 0;
    lifetime_removals = 0 }

let ensure_op_capacity t op =
  let n = Array.length t.last_addr in
  if op >= n then begin
    let n' = max (2 * n) (op + 1) in
    let grow arr fill =
      let a = Array.make n' fill in
      Array.blit arr 0 a 0 n;
      a
    in
    t.last_addr <- grow t.last_addr no_addr;
    t.last_status_read <- grow t.last_status_read no_op;
    t.last_status_write <- grow t.last_status_write no_op;
    t.last_raw_carrier <- grow t.last_raw_carrier min_int;
    t.last_war_carrier <- grow t.last_war_carrier min_int;
    t.last_waw_carrier <- grow t.last_waw_carrier min_int
  end

let cell_op (c : Cell.t) = if Cell.is_empty c then no_op else c.op

(* Fingerprint of the dependence a current access would form against [src]:
   the carrying loop's header line, -1 for an intra-iteration dependence, -2
   when there is no source access at all. *)
let carrier_code (a : Event.access) (src : Cell.t) =
  if Cell.is_empty src then -2
  else
    match Event.carrier ~src:src.lstack ~snk:a.lstack with
    | Some f -> f.Event.loop_line
    | None -> -1

(* Build one dependence record from the current access and the stored cell. *)
let make_dep (a : Event.access) dtype (src : Cell.t) =
  let carrier =
    match Event.carrier ~src:src.lstack ~snk:a.lstack with
    | Some f -> Some f.Event.loop_line
    | None -> None
  in
  let racy =
    (* Timestamp reversal: the recorded "earlier" access actually executed
       later — atomicity of access and push was violated, exposing a
       potential data race (§2.3.4). *)
    a.time < src.time
  in
  { Dep.sink_line = a.line; sink_thread = a.thread; dtype;
    src_line = src.line; src_thread = src.thread; var = src.var; carrier; racy }

let note_race t (a : Event.access) (src : Cell.t) =
  t.races <- (a.var, src.line, a.line) :: t.races;
  if Obs.Trace.is_enabled () then Obs.Trace.instant ("race:" ^ a.var)

(* Record one dependence with first-witness provenance: the sink access's
   global timestamp and this engine's dynamic access index, the profiling
   domain, and the shadow backend's current false-positive risk (evaluated
   only when the record is new). *)
let record_dep t (a : Event.access) d =
  Dep.Set_.add_witness t.deps d ~time:a.time ~index:t.n_processed
    ~domain:(Domain.self () :> int) ~risk:t.shadow.fp_risk

let feed_access t (a : Event.access) =
  t.n_processed <- t.n_processed + 1;
  ensure_op_capacity t a.op;
  let addr = a.addr in
  let r = t.shadow.last_read ~addr in
  let w = t.shadow.last_write ~addr in
  let status_read = cell_op r in
  let status_write = cell_op w in
  (* WAW is recorded only for consecutive writes; a read since the last
     write re-orients the pair to WAR+RAW, so the orientation must be part
     of the write-side skip fingerprint. *)
  let waw_applies =
    (not (Cell.is_empty w)) && (Cell.is_empty r || r.time < w.time)
  in
  let waw_code = if not waw_applies then -4 else carrier_code a w in
  let base_skip =
    t.skip
    && t.last_addr.(a.op) = addr
    && t.last_status_read.(a.op) = status_read
    && t.last_status_write.(a.op) = status_write
  in
  let can_skip =
    base_skip
    &&
    match a.kind with
    | Event.Read -> carrier_code a w = t.last_raw_carrier.(a.op)
    | Event.Write ->
        carrier_code a r = t.last_war_carrier.(a.op)
        && waw_code = t.last_waw_carrier.(a.op)
  in
  let cell = Cell.of_access a in
  match a.kind with
  | Event.Read ->
      if status_write <> no_op then t.sstats.reads_total <- t.sstats.reads_total + 1;
      if can_skip then begin
        if status_write <> no_op then begin
          t.sstats.reads_skipped <- t.sstats.reads_skipped + 1;
          t.sstats.skipped_raw <- t.sstats.skipped_raw + 1
        end;
        (* §2.4.3 special case: the read slot already holds this very
           operation. The paper elides the shadow update here; our cells also
           carry the loop stack used for carrier attribution, so we count the
           condition but refresh the cell to keep carriers exact. *)
        if status_read = a.op then
          t.sstats.shadow_update_elided <- t.sstats.shadow_update_elided + 1;
        t.shadow.set_read ~addr cell
      end
      else begin
        if status_write <> no_op then begin
          let d = make_dep a Dep.Raw w in
          if d.racy then note_race t a w;
          record_dep t a d
        end;
        t.shadow.set_read ~addr cell;
        t.last_addr.(a.op) <- addr;
        t.last_status_read.(a.op) <- status_read;
        t.last_status_write.(a.op) <- status_write;
        t.last_raw_carrier.(a.op) <- carrier_code a w
      end
  | Event.Write ->
      if status_read <> no_op || waw_applies then
        t.sstats.writes_total <- t.sstats.writes_total + 1;
      if can_skip then begin
        if status_read <> no_op || waw_applies then begin
          t.sstats.writes_skipped <- t.sstats.writes_skipped + 1;
          if status_read <> no_op then t.sstats.skipped_war <- t.sstats.skipped_war + 1;
          if waw_applies then t.sstats.skipped_waw <- t.sstats.skipped_waw + 1
        end;
        (* see the read-side comment on the §2.4.3 special case *)
        if status_write = a.op then
          t.sstats.shadow_update_elided <- t.sstats.shadow_update_elided + 1;
        t.shadow.set_write ~addr cell
      end
      else begin
        if status_read <> no_op then begin
          let d = make_dep a Dep.War r in
          if d.racy then note_race t a r;
          record_dep t a d
        end;
        if waw_applies then begin
          let d = make_dep a Dep.Waw w in
          if d.racy then note_race t a w;
          record_dep t a d
        end
        else if status_write = no_op then
          record_dep t a (Dep.init_dep ~sink_line:a.line ~sink_thread:a.thread);
        t.shadow.set_write ~addr cell;
        t.last_addr.(a.op) <- addr;
        t.last_status_read.(a.op) <- status_read;
        t.last_status_write.(a.op) <- status_write;
        t.last_war_carrier.(a.op) <- carrier_code a r;
        t.last_waw_carrier.(a.op) <- waw_code
      end

(* Variable-lifetime analysis: clear dead address ranges so their slots can be
   reused without manufacturing false dependences. *)
let feed_dealloc t addrs =
  if t.lifetime then
    List.iter
      (fun (base, len, _var) ->
        for a = base to base + len - 1 do
          t.shadow.remove ~addr:a
        done;
        t.lifetime_removals <- t.lifetime_removals + len)
      addrs

let feed t (ev : Event.t) =
  match ev with
  | Event.Access a -> feed_access t a
  | Event.Region (Event.Dealloc { addrs }) -> feed_dealloc t addrs
  | Event.Region _ -> ()

let deps t = t.deps
(* Distinct potential races (var, earlier line, later line). *)
let races t = List.sort_uniq compare t.races
let skip_stats t = t.sstats
let processed t = t.n_processed

(* Resident words attributable to this engine: shadow store + per-op skip
   state + merged dependence table. *)
let word_footprint t =
  t.shadow.word_footprint ()
  + (3 * Array.length t.last_addr)
  + (8 * Dep.Set_.cardinal t.deps)

(* Publish this engine's end-of-run statistics into the observability
   registry under [prefix]. Counters accumulate across engines (the parallel
   profiler's workers all observe under their own prefix AND the shared
   aggregate one), gauges record the last observed store shape. No-op when
   observability is disabled. *)
let observe ?(prefix = "engine") t =
  if Obs.is_enabled () then begin
    let c name v = Obs.Counter.add (Obs.counter (prefix ^ name)) v in
    let g name v = Obs.Gauge.set_int (Obs.gauge (prefix ^ name)) v in
    c ".accesses" t.n_processed;
    c ".deps" (Dep.Set_.cardinal t.deps);
    c ".lifetime.removals" t.lifetime_removals;
    c ".skip.reads_total" t.sstats.reads_total;
    c ".skip.writes_total" t.sstats.writes_total;
    c ".skip.reads_skipped" t.sstats.reads_skipped;
    c ".skip.writes_skipped" t.sstats.writes_skipped;
    c ".skip.raw" t.sstats.skipped_raw;
    c ".skip.war" t.sstats.skipped_war;
    c ".skip.waw" t.sstats.skipped_waw;
    c ".skip.shadow_update_elided" t.sstats.shadow_update_elided;
    g ".shadow.slots_used" (t.shadow.slots_used ());
    g ".shadow.words" (t.shadow.word_footprint ());
    List.iter (fun (k, v) -> g (".shadow." ^ k) v) (t.shadow.extra_stats ())
  end
