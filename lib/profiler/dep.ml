(* Representation and runtime merging of data dependences (§2.3.1, §2.3.5).

   A dependence is the triple <sink, type, source> with attributes: variable
   name, thread ids (meaningful for multi-threaded targets), a loop-carried
   tag, and a race flag. Two dependences are identical iff every element of
   the triple and all attributes are identical; identical dependences are
   merged at runtime, which is what makes whole-program profiling feasible
   (the paper reports a 10^5x output reduction). *)

type dtype = Raw | War | Waw | Init

let dtype_to_string = function
  | Raw -> "RAW"
  | War -> "WAR"
  | Waw -> "WAW"
  | Init -> "INIT"

type t = {
  sink_line : int;
  sink_thread : int;
  dtype : dtype;
  src_line : int;      (* 0 for INIT *)
  src_thread : int;
  var : string;        (* variable at the source access; "*" for INIT *)
  carrier : int option; (* header line of the carrying loop, if loop-carried *)
  racy : bool;         (* timestamp reversal observed (potential data race) *)
}

let init_dep ~sink_line ~sink_thread =
  { sink_line; sink_thread; dtype = Init; src_line = 0; src_thread = -1;
    var = "*"; carrier = None; racy = false }

let compare = Stdlib.compare

let to_string ?(threads = false) d =
  match d.dtype with
  | Init -> "{INIT *}"
  | _ ->
      let loc =
        if threads then Printf.sprintf "1:%d|%d" d.src_line d.src_thread
        else Printf.sprintf "1:%d" d.src_line
      in
      Printf.sprintf "{%s %s|%s%s%s}" (dtype_to_string d.dtype) loc d.var
        (match d.carrier with Some l -> Printf.sprintf "|carried@%d" l | None -> "")
        (if d.racy then "|racy" else "")

(* Provenance of a merged dependence record: the first dynamic instance that
   witnessed it, and how collision-prone the shadow slot that produced it was
   at that moment. The source-line pair and variable live in the record
   itself (they are part of its identity); provenance adds the when/where/how
   that makes a reported dependence auditable. *)
type prov = {
  first_time : int;     (* interpreter timestamp of the witnessing sink access *)
  first_index : int;    (* engine-local dynamic access index of that witness *)
  witness_domain : int; (* profiler domain that built the record *)
  risk : float;         (* shadow false-positive risk at witness time; 0 = exact *)
}

(* A merged multiset of dependences: each distinct dependence is stored once
   with its occurrence count, plus (when profiled with provenance) its
   first-witness record. Counts are [int ref] cells so the engine's per-op
   duplicate-suppression fast path can bump a record's count without
   re-hashing it ({!note} hands the cell out, {!hit} bumps it). *)
module Set_ = struct
  type dep = t

  type t = {
    tbl : (dep, int ref) Hashtbl.t;
    provs : (dep, prov) Hashtbl.t;
    mutable raw_occurrences : int;  (* pre-merge instance count *)
  }

  let create () =
    { tbl = Hashtbl.create 256; provs = Hashtbl.create 256; raw_occurrences = 0 }

  let add t d =
    t.raw_occurrences <- t.raw_occurrences + 1;
    match Hashtbl.find_opt t.tbl d with
    | Some n -> incr n
    | None -> Hashtbl.replace t.tbl d (ref 1)

  (* Like [add], but record first-witness provenance when [d] is new, and
     return the count cell for the engine's dedup fast path. Within one
     engine, accesses arrive in increasing timestamp order, so the first
     instance is the earliest witness; [risk] is a thunk so backends only
     pay for it on new records. *)
  let note t d ~time ~index ~domain ~risk =
    t.raw_occurrences <- t.raw_occurrences + 1;
    match Hashtbl.find_opt t.tbl d with
    | Some n ->
        incr n;
        n
    | None ->
        let n = ref 1 in
        Hashtbl.replace t.tbl d n;
        Hashtbl.replace t.provs d
          { first_time = time; first_index = index; witness_domain = domain;
            risk = risk () };
        n

  let add_witness t d ~time ~index ~domain ~risk =
    ignore (note t d ~time ~index ~domain ~risk)

  (* One more occurrence of a record whose count cell the caller already
     holds: no hashing, no lookup. *)
  let hit t n =
    t.raw_occurrences <- t.raw_occurrences + 1;
    incr n

  let prov t d = Hashtbl.find_opt t.provs d

  (* Risk of a record, defaulting to 0 when it was added without provenance
     (files read back from disk, hand-built sets in tests). *)
  let risk_of t d = match prov t d with Some p -> p.risk | None -> 0.0

  let mem t d = Hashtbl.mem t.tbl d
  let cardinal t = Hashtbl.length t.tbl
  let occurrences t = t.raw_occurrences

  (* Merging factor: how many dependence instances each merged record stands
     for, on average (the paper's 10^5 output-size reduction). *)
  let merging_factor t =
    if Hashtbl.length t.tbl = 0 then 1.0
    else float_of_int t.raw_occurrences /. float_of_int (Hashtbl.length t.tbl)

  let iter f t = Hashtbl.iter (fun d n -> f d !n) t.tbl

  let to_list t =
    Hashtbl.fold (fun d n acc -> (d, !n) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* Records ranked hottest-first (by merged occurrence count, ties broken by
     {!compare} for determinism), with provenance where available — the order
     `discopop explain` presents. *)
  let to_ranked t =
    Hashtbl.fold (fun d n acc -> (d, !n, prov t d) :: acc) t.tbl []
    |> List.sort (fun (a, na, _) (b, nb, _) ->
           match Stdlib.compare nb na with 0 -> compare a b | c -> c)

  let union into from =
    Hashtbl.iter
      (fun d n ->
        (* Copy the count, never alias [from]'s cell into [into]. *)
        match Hashtbl.find_opt into.tbl d with
        | Some m -> m := !m + !n
        | None -> Hashtbl.replace into.tbl d (ref !n))
      from.tbl;
    (* The earliest witness wins: after a hot-address redistribution the same
       record can be witnessed by two workers. *)
    Hashtbl.iter
      (fun d p ->
        match Hashtbl.find_opt into.provs d with
        | Some q when q.first_time <= p.first_time -> ()
        | _ -> Hashtbl.replace into.provs d p)
      from.provs;
    into.raw_occurrences <- into.raw_occurrences + from.raw_occurrences

  (* Accuracy of an approximate dependence set [got] against the exact set
     [truth] (§2.5.1): FPR = |got \ truth| / |got|, FNR = |truth \ got| /
     |truth|. The race flag is not part of identity here. *)
  let strip d = { d with racy = false }

  let accuracy ~truth ~got =
    let truth_keys = Hashtbl.create (cardinal truth) in
    iter (fun d _ -> Hashtbl.replace truth_keys (strip d) ()) truth;
    let got_keys = Hashtbl.create (cardinal got) in
    iter (fun d _ -> Hashtbl.replace got_keys (strip d) ()) got;
    let fp = ref 0 and fn = ref 0 in
    Hashtbl.iter (fun d () -> if not (Hashtbl.mem truth_keys d) then incr fp) got_keys;
    Hashtbl.iter (fun d () -> if not (Hashtbl.mem got_keys d) then incr fn) truth_keys;
    let n_got = Hashtbl.length got_keys and n_truth = Hashtbl.length truth_keys in
    let fpr = if n_got = 0 then 0.0 else float_of_int !fp /. float_of_int n_got in
    let fnr = if n_truth = 0 then 0.0 else float_of_int !fn /. float_of_int n_truth in
    (fpr, fnr)

  (* Occurrence-weighted accuracy: each dependence record weighted by how
     many dynamic instances it stands for. A one-off hash collision then
     contributes one instance against the millions of instances of the hot
     true dependences — matching how sub-percent error rates arise in the
     paper's Table 2.6 despite non-zero collision counts. *)
  let accuracy_weighted ~truth ~got =
    let truth_keys = Hashtbl.create (cardinal truth) in
    iter (fun d n -> Hashtbl.replace truth_keys (strip d) n) truth;
    let got_keys = Hashtbl.create (cardinal got) in
    iter (fun d n -> Hashtbl.replace got_keys (strip d) n) got;
    let fp = ref 0 and fn = ref 0 and got_total = ref 0 and truth_total = ref 0 in
    Hashtbl.iter
      (fun d n ->
        got_total := !got_total + n;
        if not (Hashtbl.mem truth_keys d) then fp := !fp + n)
      got_keys;
    Hashtbl.iter
      (fun d n ->
        truth_total := !truth_total + n;
        if not (Hashtbl.mem got_keys d) then fn := !fn + n)
      truth_keys;
    let fpr =
      if !got_total = 0 then 0.0 else float_of_int !fp /. float_of_int !got_total
    in
    let fnr =
      if !truth_total = 0 then 0.0
      else float_of_int !fn /. float_of_int !truth_total
    in
    (fpr, fnr)

  (* Dependences whose sink is at [line]. *)
  let at_sink t line =
    Hashtbl.fold
      (fun d _ acc -> if d.sink_line = line then d :: acc else acc)
      t.tbl []
    |> List.sort compare

  (* All dependences whose sink lies within [lo, hi]. *)
  let in_range t ~lo ~hi =
    Hashtbl.fold
      (fun d _ acc -> if d.sink_line >= lo && d.sink_line <= hi then d :: acc else acc)
      t.tbl []
    |> List.sort compare
end
