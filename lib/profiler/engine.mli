(** The dependence-building engine: Algorithm 2 (signature-based profiling),
    the §2.4 skip optimization, variable-lifetime analysis (§2.3.5), and
    timestamp-based race flagging (§2.3.4).

    The engine is a functor over the shadow-memory interface, so each
    backend gets a monomorphic copy of the per-access hot loop (no closure
    or dispatch records on the hot path). The [shadow_kind]-driven API below
    wraps the three standard instantiations; one instance also serves as the
    per-worker consumer of the parallel profiler. *)

module Event = Trace.Event
module Cell = Sigmem.Cell

type shadow_kind =
  | Signature of int  (** approximate, fixed slot count *)
  | Perfect           (** exact, hash-table backed *)
  | Paged             (** exact, two-level page table *)

(** Counters for Table 2.7 / Fig 2.13: skipped instructions classified by the
    dependence type they would have created. *)
type skip_stats = {
  mutable reads_total : int;       (** reads that lead to a dependence *)
  mutable writes_total : int;
  mutable reads_skipped : int;
  mutable writes_skipped : int;
  mutable skipped_raw : int;
  mutable skipped_war : int;
  mutable skipped_waw : int;
  mutable shadow_update_elided : int;  (** §2.4.3 special-case hits *)
}

(** The monomorphic engine over one shadow backend. [Make(S).t] runs
    Algorithm 2 with direct calls into [S] — instantiate it to profile over
    a custom store; the three standard backends are pre-instantiated behind
    {!create}. *)
module Make (S : Sigmem.Shadow.S) : sig
  type t

  val create : ?skip:bool -> ?lifetime:bool -> slots:int -> unit -> t

  val feed_fields :
    t ->
    kind:Event.kind ->
    addr:int ->
    var:int ->
    line:int ->
    thread:int ->
    time:int ->
    op:int ->
    lstack:int ->
    locked:bool ->
    unit
  (** Algorithm 2 on one dynamic memory instruction with the access fields
      passed unboxed: the zero-allocation entry point — no [Event.access]
      record is built anywhere on this path. *)

  val feed_access : t -> Event.access -> unit
  (** Record-based shim over {!feed_fields}, for callers that already hold
      an [Event.access] (the parallel profiler's chunk queues). *)

  val feed_dealloc : t -> (int * int * string) list -> unit
  val word_footprint : t -> int
  val observe : prefix:string -> t -> unit
end

type t

val create : ?skip:bool -> ?lifetime:bool -> shadow_kind -> t
(** [skip] enables the §2.4 optimization; [lifetime:false] disables
    variable-lifetime analysis (ablation). *)

val feed_fields :
  t ->
  kind:Event.kind ->
  addr:int ->
  var:int ->
  line:int ->
  thread:int ->
  time:int ->
  op:int ->
  lstack:int ->
  locked:bool ->
  unit
(** Algorithm 2 on one dynamic memory instruction, access fields unboxed —
    the serial interpreter's zero-allocation fast path. *)

val feed_access : t -> Event.access -> unit
(** Algorithm 2 on one dynamic memory instruction. *)

val feed_dealloc : t -> (int * int * string) list -> unit
(** Clear dead [(base, len, var)] ranges so their slots can be reused without
    manufacturing false dependences. *)

val feed : t -> Event.t -> unit
(** Dispatch accesses and deallocations; other region events are ignored. *)

val deps : t -> Dep.Set_.t
val races : t -> (string * int * int) list
(** Distinct potential races: (variable, earlier line, later line). *)

val skip_stats : t -> skip_stats
val processed : t -> int
val word_footprint : t -> int
(** Resident words: shadow store + per-op skip state + dependence table. *)

val observe : ?prefix:string -> t -> unit
(** Publish end-of-run statistics (accesses, deps, skip stats, shadow slot
    usage and footprint) into the {!Obs} registry under [prefix] (default
    ["engine"]). No-op when observability is disabled. *)
