(* The parallel DiscoPoP profiler (§2.3.3, Fig. 2.2).

   The main thread executes the target program (here: the MIL interpreter)
   and acts as producer: it collects memory accesses into per-worker chunks
   and pushes full chunks into the lock-free SPSC queue of the worker that
   owns the address. Worker domains consume chunks, run the dependence engine
   over their address shard, and store dependences in thread-local maps that
   are merged at the end — duplicate-free, so the merge is cheap.

   Addresses are distributed by [addr mod W] (Eq. 2.1). Access frequencies
   are monitored and the most heavily accessed addresses are periodically
   redistributed via a rules map that takes priority over the modulo function.
   Redistribution retires the address's signature slot on the old owner, so
   subsequent accesses build a fresh dependence chain on the new owner.

   A lock-based variant (mutex-protected queues) exists solely as the
   baseline of Fig. 2.9's lock-free-vs-lock-based comparison. *)

module Event = Trace.Event
module Chunk = Trace.Chunk

type entry =
  | Acc of Event.access
  | Remove of int          (* lifetime analysis / slot migration *)

let dummy_entry = Remove (-1)

type item =
  | Ichunk of entry Chunk.t
  | Istop

type queue_kind = Lockfree | Lock_based

(* Mutex-protected queue used only for the lock-based comparison baseline. *)
module Locked_queue = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    capacity : int;
    mutable stalls : int;    (* producer-owned: full-queue backoff rounds *)
  }

  let create ~capacity =
    { q = Queue.create (); m = Mutex.create (); capacity; stalls = 0 }

  let push t x =
    let rec go () =
      Mutex.lock t.m;
      if Queue.length t.q >= t.capacity then begin
        Mutex.unlock t.m;
        t.stalls <- t.stalls + 1;
        Domain.cpu_relax ();
        go ()
      end
      else begin
        Queue.push x t.q;
        Mutex.unlock t.m
      end
    in
    go ()

  let try_pop t =
    Mutex.lock t.m;
    let r = Queue.take_opt t.q in
    Mutex.unlock t.m;
    r

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

type channel =
  | Cfree of item Spsc_queue.t
  | Clocked of item Locked_queue.t

let channel_push c x =
  match c with
  | Cfree q -> Spsc_queue.push q x
  | Clocked q -> Locked_queue.push q x

let channel_try_pop c =
  match c with
  | Cfree q -> Spsc_queue.try_pop q
  | Clocked q -> Locked_queue.try_pop q

let channel_stalls c =
  match c with
  | Cfree q -> Spsc_queue.stalls q
  | Clocked q -> q.Locked_queue.stalls

let channel_depth c =
  match c with
  | Cfree q -> Spsc_queue.length q
  | Clocked q -> Locked_queue.length q

type worker_result = {
  w_deps : Dep.Set_.t;
  w_races : (string * int * int) list;
  w_processed : int;
  w_footprint : int;
  w_skip : Engine.skip_stats;
  w_chunks : int;          (* chunks consumed by this worker *)
  w_idle_spins : int;      (* empty-queue backoff rounds (consumer stalls) *)
}

type result = {
  deps : Dep.Set_.t;
  pet : Pet.t;
  races : (string * int * int) list;
  accesses : int;
  footprint_words : int;
  merging_factor : float;
  redistributions : int;
  per_worker : int array;   (* accesses processed by each worker *)
  skip_stats : Engine.skip_stats;
  interp : Mil.Interp.run_result;
}

let sum_skip (a : Engine.skip_stats) (b : Engine.skip_stats) : Engine.skip_stats =
  { Engine.reads_total = a.Engine.reads_total + b.Engine.reads_total;
    writes_total = a.writes_total + b.writes_total;
    reads_skipped = a.reads_skipped + b.reads_skipped;
    writes_skipped = a.writes_skipped + b.writes_skipped;
    skipped_raw = a.skipped_raw + b.skipped_raw;
    skipped_war = a.skipped_war + b.skipped_war;
    skipped_waw = a.skipped_waw + b.skipped_waw;
    shadow_update_elided = a.shadow_update_elided + b.shadow_update_elided }

let worker_loop (queue : channel) ~(returns : entry Chunk.t Spsc_queue.t)
    ~index ~shadow ~skip () : worker_result =
  (* Name this domain's track on the trace timeline (no-op when tracing is
     off); each worker then appears as its own row in chrome://tracing. *)
  Obs.Trace.set_track (Printf.sprintf "worker %d" index);
  let engine = Engine.create ~skip shadow in
  let chunks = ref 0 in
  let idle_spins = ref 0 in
  let rec loop backoff =
    match channel_try_pop queue with
    | Some (Ichunk chunk) ->
        incr chunks;
        let consume () =
          Chunk.iter
            (fun e ->
              match e with
              | Acc a -> Engine.feed_access engine a
              | Remove addr -> Engine.feed_dealloc engine [ (addr, 1, "") ])
            chunk
        in
        if Obs.Trace.is_enabled () then
          Obs.Trace.with_span
            (Printf.sprintf "chunk.%d" (Chunk.seq chunk))
            consume
        else consume ();
        (* Hand the drained chunk back to the producer for recycling. The
           return channel is SPSC with this worker as producer; when it is
           full the chunk is simply dropped for the GC — never block here. *)
        Chunk.reset chunk;
        ignore (Spsc_queue.try_push returns chunk);
        loop 1
    | Some Istop ->
        (* Per-worker shadow/skip statistics go out under a per-worker engine
           prefix (engine.w0, engine.w1, …): concurrent workers must not
           overwrite each other's shadow gauges under the shared default
           "engine" prefix. Atomic counters make cross-domain publishing
           safe. *)
        Engine.observe ~prefix:(Printf.sprintf "engine.w%d" index) engine;
        { w_deps = Engine.deps engine;
          w_races = Engine.races engine;
          w_processed = Engine.processed engine;
          w_footprint = Engine.word_footprint engine;
          w_skip = Engine.skip_stats engine;
          w_chunks = !chunks;
          w_idle_spins = !idle_spins }
    | None ->
        incr idle_spins;
        for _ = 1 to backoff do
          Domain.cpu_relax ()
        done;
        loop (min (2 * backoff) 256)
  in
  loop 1

(* How often (in accesses) the producer re-evaluates the hot-address
   distribution; the paper checks every 50,000 chunks. *)
let rebalance_interval = 50_000
let top_n_hot = 10

let profile ?(workers = 4) ?(shadow_slots = 100_000) ?(perfect = false)
    ?(skip = false) ?(queue = Lockfree) ?(chunk_capacity = Chunk.default_capacity)
    ?(queue_capacity = 64) ?(seed = 42) ?(scramble_unlocked = false)
    (prog : Mil.Ast.program) : result =
  Obs.Span.with_ ~phase:"profile" @@ fun () ->
  Obs.Trace.set_track "producer (main)";
  let w = max 1 workers in
  let shadow_kind =
    if perfect then Engine.Perfect else Engine.Signature (max 1 (shadow_slots / w))
  in
  let channels =
    Array.init w (fun _ ->
        match queue with
        | Lockfree -> Cfree (Spsc_queue.create ~capacity:queue_capacity)
        | Lock_based -> Clocked (Locked_queue.create ~capacity:queue_capacity))
  in
  (* Worker→producer return channels for drained chunks (chunk recycling,
     §2.3.3): sized past the forward queue so a worker's try_push only drops
     a chunk when the producer has stopped recycling (end of run). *)
  let returns =
    Array.init w (fun _ -> Spsc_queue.create ~capacity:(queue_capacity + 4))
  in
  let domains =
    Array.mapi
      (fun i c ->
        Domain.spawn
          (worker_loop c ~returns:returns.(i) ~index:i ~shadow:shadow_kind
             ~skip))
      channels
  in
  (* Deepest queue fill level seen at chunk-push time; sampled only when the
     observability layer is on, so the disabled hot path is untouched. *)
  let max_depth = ref 0 in
  (* Producer state *)
  let next_seq = ref 0 in
  let chunk_reuses = ref 0 in
  (* Prefer a recycled chunk from the worker's return channel over a fresh
     allocation. Recycled chunks skip dummy-filling on reset
     ([clear_on_reset:false]): every slot is overwritten before the consumer
     reads it, so the O(capacity) clear would buy nothing. *)
  let fresh_chunk worker =
    incr next_seq;
    match Spsc_queue.try_pop returns.(worker) with
    | Some c ->
        incr chunk_reuses;
        Chunk.set_seq c !next_seq;
        c
    | None ->
        Chunk.create ~capacity:chunk_capacity ~seq:!next_seq
          ~clear_on_reset:false ~dummy:dummy_entry ()
  in
  let open_chunks = Array.init w (fun i -> ref (fresh_chunk i)) in
  (* Counter-track names for per-queue depth samples, allocated up front so
     the traced push path does no formatting. *)
  let depth_tracks = Array.init w (Printf.sprintf "queue.%d.depth") in
  let rules : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let since_rebalance = ref 0 in
  let redistributions = ref 0 in
  let route addr =
    match Hashtbl.find_opt rules addr with
    | Some worker -> worker
    | None -> addr mod w
  in
  let push_entry worker e =
    let c = !(open_chunks.(worker)) in
    Chunk.push c e;
    if Chunk.is_full c then begin
      channel_push channels.(worker) (Ichunk c);
      if Obs.is_enabled () then
        max_depth := max !max_depth (channel_depth channels.(worker));
      if Obs.Trace.is_enabled () then
        Obs.Trace.counter depth_tracks.(worker)
          (channel_depth channels.(worker));
      open_chunks.(worker) := fresh_chunk worker
    end
  in
  let rebalance () =
    since_rebalance := 0;
    let hot =
      Hashtbl.fold (fun addr n acc -> (addr, !n) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < top_n_hot)
    in
    (* Spread the top-N hot addresses round-robin over the workers. *)
    List.iteri
      (fun i (addr, _) ->
        let target = i mod w in
        let current = route addr in
        if current <> target then begin
          incr redistributions;
          (* Retire the signature state on the old owner before re-routing. *)
          push_entry current (Remove addr);
          Hashtbl.replace rules addr target
        end)
      hot
  in
  let petb = Pet.create_builder () in
  let emit ev =
    Pet.feed petb ev;
    match ev with
    | Event.Access a ->
        (match Hashtbl.find_opt counts a.addr with
        | Some r -> incr r
        | None -> Hashtbl.replace counts a.addr (ref 1));
        incr since_rebalance;
        if !since_rebalance >= rebalance_interval then rebalance ();
        push_entry (route a.addr) (Acc a)
    | Event.Region (Event.Dealloc { addrs }) ->
        List.iter
          (fun (base, len, _) ->
            for addr = base to base + len - 1 do
              push_entry (route addr) (Remove addr)
            done)
          addrs
    | Event.Region _ -> ()
  in
  let interp = Mil.Interp.run ~seed ~scramble_unlocked ~emit prog in
  (* Flush partial chunks and stop the workers. *)
  Array.iteri
    (fun i c ->
      if not (Chunk.is_empty !c) then channel_push channels.(i) (Ichunk !c);
      channel_push channels.(i) Istop)
    open_chunks;
  let results = Array.map Domain.join domains in
  (* Drain the worker->producer return channels now that the workers are
     gone: the final flush's chunks (and any returned after the producer's
     last pop) are still parked in the SPSC buffers, which would keep them
     reachable until the queues die and leave the recycling accounting
     short — reuses + drained + still-open must equal chunks created, so
     [profiler.chunk.reuses] stays comparable run-over-run. *)
  let chunks_drained = ref 0 in
  Array.iter
    (fun q ->
      let rec drain () =
        match Spsc_queue.try_pop q with
        | Some _ -> incr chunks_drained; drain ()
        | None -> ()
      in
      drain ())
    returns;
  (* Merge thread-local maps into the global map (duplicate-free locally, so
     this is the cheap final step of Fig. 2.2). *)
  let deps = Dep.Set_.create () in
  Array.iter (fun r -> Dep.Set_.union deps r.w_deps) results;
  let pet = Pet.finish petb in
  Pet.attach_deps pet deps;
  let skip_stats =
    Array.fold_left
      (fun acc r -> sum_skip acc r.w_skip)
      { Engine.reads_total = 0; writes_total = 0; reads_skipped = 0;
        writes_skipped = 0; skipped_raw = 0; skipped_war = 0; skipped_waw = 0;
        shadow_update_elided = 0 }
      results
  in
  let r =
    { deps;
      pet;
      races = Array.to_list results |> List.concat_map (fun r -> r.w_races);
      accesses = Array.fold_left (fun acc r -> acc + r.w_processed) 0 results;
      per_worker = Array.map (fun r -> r.w_processed) results;
      footprint_words =
        Array.fold_left (fun acc r -> acc + r.w_footprint) 0 results
        + (8 * Hashtbl.length counts);
      merging_factor = Dep.Set_.merging_factor deps;
      redistributions = !redistributions;
      skip_stats;
      interp }
  in
  if Obs.is_enabled () then begin
    (* Same run-level names as Serial.publish: the registry hands back the
       identical counter instances, keeping serial and parallel comparable. *)
    Serial.publish ~accesses:r.accesses ~deps ~footprint_words:r.footprint_words
      ~merging_factor:r.merging_factor;
    Obs.Counter.add (Obs.counter "profiler.rebalance.events") !redistributions;
    Obs.Counter.add (Obs.counter "profiler.chunk.reuses") !chunk_reuses;
    Obs.Counter.add (Obs.counter "profiler.chunk.drained") !chunks_drained;
    Obs.Gauge.set_int (Obs.gauge "profiler.queue.max_depth") !max_depth;
    Obs.Counter.add
      (Obs.counter "profiler.queue.push_stalls")
      (Array.fold_left (fun acc c -> acc + channel_stalls c) 0 channels);
    Array.iteri
      (fun i (wr : worker_result) ->
        let c name v =
          Obs.Counter.add
            (Obs.counter (Printf.sprintf "profiler.worker.%d.%s" i name))
            v
        in
        c "accesses" wr.w_processed;
        c "chunks" wr.w_chunks;
        c "idle_spins" wr.w_idle_spins)
      results
  end;
  r
