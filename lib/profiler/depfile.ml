(* On-disk dependence files.

   DiscoPoP writes the merged dependences to a file that the phase-2
   parallelism-discovery tool reads back (§1.5); runtime merging is what
   shrinks these files from gigabytes to kilobytes (§2.3.5). The v2 format
   is one line per record:

     D <sink_line> <sink_thread> <TYPE> <src_line> <src_thread> <var> \
       <carrier|-> <racy:0|1> <count> <first_time> <first_index> <domain> \
       <risk>

   where the last four fields are the record's first-witness provenance
   ("-" when the record was built without it). v1 files (no provenance
   fields) still parse. [measure] reports what the file sizes would be with
   and without merging — the Table-in-§2.3.5 ablation. *)

let type_tag = Dep.dtype_to_string

let tag_type = function
  | "RAW" -> Dep.Raw
  | "WAR" -> Dep.War
  | "WAW" -> Dep.Waw
  | "INIT" -> Dep.Init
  | s -> invalid_arg ("Depfile: unknown dependence type " ^ s)

let record_line (d : Dep.t) count =
  Printf.sprintf "D %d %d %s %d %d %s %s %d %d" d.Dep.sink_line
    d.Dep.sink_thread (type_tag d.Dep.dtype) d.Dep.src_line d.Dep.src_thread
    (if d.Dep.var = "" then "_" else d.Dep.var)
    (match d.Dep.carrier with Some l -> string_of_int l | None -> "-")
    (if d.Dep.racy then 1 else 0)
    count

let prov_fields (p : Dep.prov option) =
  match p with
  | None -> "- - - -"
  | Some p ->
      Printf.sprintf "%d %d %d %.6g" p.Dep.first_time p.Dep.first_index
        p.Dep.witness_domain p.Dep.risk

let render (deps : Dep.Set_.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# discopop-deps v2 records=%d instances=%d\n"
       (Dep.Set_.cardinal deps) (Dep.Set_.occurrences deps));
  List.iter
    (fun (d, n) ->
      Buffer.add_string buf (record_line d n);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (prov_fields (Dep.Set_.prov deps d));
      Buffer.add_char buf '\n')
    (Dep.Set_.to_list deps);
  Buffer.contents buf

let write path deps =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render deps))

exception Parse_error of string

let parse_line line : (Dep.t * int * Dep.prov option) option =
  if line = "" || line.[0] = '#' then None
  else
    let record sink sthr ty src srcthr var carrier racy count prov =
      Some
        ( { Dep.sink_line = int_of_string sink;
            sink_thread = int_of_string sthr;
            dtype = tag_type ty;
            src_line = int_of_string src;
            src_thread = int_of_string srcthr;
            var = (if var = "_" then "" else var);
            carrier =
              (if carrier = "-" then None else Some (int_of_string carrier));
            racy = racy = "1" },
          int_of_string count,
          prov )
    in
    match String.split_on_char ' ' line with
    | [ "D"; sink; sthr; ty; src; srcthr; var; carrier; racy; count ] ->
        (* v1: no provenance fields *)
        record sink sthr ty src srcthr var carrier racy count None
    | [ "D"; sink; sthr; ty; src; srcthr; var; carrier; racy; count; "-"; "-";
        "-"; "-" ] ->
        record sink sthr ty src srcthr var carrier racy count None
    | [ "D"; sink; sthr; ty; src; srcthr; var; carrier; racy; count; ftime;
        findex; domain; risk ] ->
        record sink sthr ty src srcthr var carrier racy count
          (Some
             { Dep.first_time = int_of_string ftime;
               first_index = int_of_string findex;
               witness_domain = int_of_string domain;
               risk = float_of_string risk })
    | _ -> raise (Parse_error ("Depfile: malformed line: " ^ line))

let parse (s : string) : Dep.Set_.t =
  let deps = Dep.Set_.create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match parse_line line with
         | Some (d, n, prov) ->
             (match prov with
             | Some p ->
                 Dep.Set_.add_witness deps d ~time:p.Dep.first_time
                   ~index:p.Dep.first_index ~domain:p.Dep.witness_domain
                   ~risk:(fun () -> p.Dep.risk)
             | None -> Dep.Set_.add deps d);
             for _ = 2 to n do
               Dep.Set_.add deps d
             done
         | None -> ());
  deps

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

(* Tolerant variant for cache lookups: a missing, truncated or otherwise
   malformed file is a miss, not an error. *)
let read_opt path =
  match read path with
  | deps -> Some deps
  | exception (Parse_error _ | Sys_error _ | Failure _ | Invalid_argument _) ->
      None

(* Sizes (in bytes) the dependence file would have with and without runtime
   merging — every dynamic instance would otherwise be its own record. *)
type sizes = { merged_bytes : int; unmerged_bytes : int; reduction : float }

let measure (deps : Dep.Set_.t) : sizes =
  let merged = ref 0 and unmerged = ref 0 in
  List.iter
    (fun (d, n) ->
      let len = String.length (record_line d n) + 1 in
      merged := !merged + len;
      unmerged := !unmerged + (n * (String.length (record_line d 1) + 1)))
    (Dep.Set_.to_list deps);
  { merged_bytes = !merged;
    unmerged_bytes = !unmerged;
    reduction =
      (if !merged = 0 then 1.0
       else float_of_int !unmerged /. float_of_int !merged) }
