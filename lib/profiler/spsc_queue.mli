(** Lock-free single-producer-single-consumer bounded queue (§2.3.3).

    The producer owns the tail index, the consumer the head; as long as they
    differ the two sides touch disjoint slots, so an atomic store on the
    index is the only synchronisation — no slot is ever locked. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two (min 2). *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer side; [false] when full. *)

val push : 'a t -> 'a -> unit
(** Blocking push with exponential backoff. *)

val try_pop : 'a t -> 'a option
(** Consumer side; [None] when empty. *)

val stalls : 'a t -> int
(** Full-queue backoff rounds the blocking {!push} went through — the
    producer-side stall pressure the profiler's observability layer reports.
    Producer-owned; exact once the producer is done. *)
