(* The Program Execution Tree (§2.3.6).

   Nodes are functions, loops, and blocks of straight-line code; edges are
   "calling" and "containing". Multiple dynamic instances of the same static
   construct are merged into one node (the paper treats a loop "as a whole"),
   with counters accumulating across instances. Per-node metrics (executed
   memory instructions, iterations, dependences) drive the ranking phase. *)

module Event = Trace.Event

type kind =
  | Fnode of string           (* function *)
  | Lnode of int              (* loop, by header line *)
  | Bnode of int              (* straight-line block, by first access line *)

type node = {
  id : int;
  kind : kind;
  parent : int;               (* -1 for the root function *)
  mutable children : int list; (* in first-encounter order, reversed *)
  mutable instructions : int;  (* dynamic memory instructions directly here *)
  mutable iterations : int;    (* loops: total iterations across instances *)
  mutable instances : int;     (* dynamic instances merged into this node *)
  mutable first_line : int;
  mutable last_line : int;
  mutable dep_count : int;     (* dependences with sink directly here *)
}

type t = {
  mutable nodes : node array;
  mutable n : int;
  root : int;
}

type builder = {
  mutable barr : node array;              (* dynamic array of nodes *)
  mutable count : int;
  (* Instance merging: a static construct under a given parent maps to one
     node. *)
  index : (int * string, int) Hashtbl.t;  (* (parent, key) -> node id *)
  mutable stack : node list;              (* innermost first *)
  mutable current_block : node option;
}

let key_of_kind = function
  | Fnode f -> "f:" ^ f
  | Lnode l -> "l:" ^ string_of_int l
  | Bnode l -> "b:" ^ string_of_int l

let dummy_node =
  { id = -1; kind = Bnode 0; parent = -1; children = []; instructions = 0;
    iterations = 0; instances = 0; first_line = 0; last_line = 0;
    dep_count = 0 }

let create_builder () =
  { barr = Array.make 64 dummy_node; count = 0; index = Hashtbl.create 64;
    stack = []; current_block = None }

let new_node b kind parent line =
  let n =
    { id = b.count; kind; parent; children = []; instructions = 0;
      iterations = 0; instances = 0; first_line = line; last_line = line;
      dep_count = 0 }
  in
  if b.count = Array.length b.barr then begin
    let a = Array.make (2 * b.count) dummy_node in
    Array.blit b.barr 0 a 0 b.count;
    b.barr <- a
  end;
  b.barr.(b.count) <- n;
  b.count <- b.count + 1;
  n

(* Find or create the merged node for [kind] under the current top. *)
let enter b kind line =
  let parent_id = match b.stack with [] -> -1 | p :: _ -> p.id in
  let key = (parent_id, key_of_kind kind) in
  let n =
    match Hashtbl.find_opt b.index key with
    | Some id -> b.barr.(id)
    | None ->
        let n = new_node b kind parent_id line in
        Hashtbl.replace b.index key n.id;
        (match b.stack with [] -> () | p :: _ -> p.children <- n.id :: p.children);
        n
  in
  n.instances <- n.instances + 1;
  b.stack <- n :: b.stack;
  b.current_block <- None;
  n

let leave b =
  (match b.stack with [] -> () | _ :: rest -> b.stack <- rest);
  b.current_block <- None

(* An access contributes only its line; exposing this directly lets the
   serial fast path feed the builder without an [Event.Access] record. *)
let feed_access_line b ~line =
  match b.current_block with
  | Some blk ->
      blk.instructions <- blk.instructions + 1;
      if line < blk.first_line then blk.first_line <- line;
      if line > blk.last_line then blk.last_line <- line
  | None ->
      (* Open a block node for this run of straight-line accesses. *)
      let parent_id = match b.stack with [] -> -1 | p :: _ -> p.id in
      let key = (parent_id, key_of_kind (Bnode line)) in
      let blk =
        match Hashtbl.find_opt b.index key with
        | Some id -> b.barr.(id)
        | None ->
            let n = new_node b (Bnode line) parent_id line in
            Hashtbl.replace b.index key n.id;
            (match b.stack with
            | [] -> ()
            | p :: _ -> p.children <- n.id :: p.children);
            n
      in
      blk.instances <- blk.instances + 1;
      blk.instructions <- blk.instructions + 1;
      b.current_block <- Some blk

let feed b (ev : Event.t) =
  match ev with
  | Event.Access a -> feed_access_line b ~line:a.line
  | Event.Region r -> (
      match r with
      | Event.Func_entry { name; line; _ } -> ignore (enter b (Fnode name) line)
      | Event.Func_exit _ -> leave b
      | Event.Loop_entry { line; _ } -> ignore (enter b (Lnode line) line)
      | Event.Loop_exit { iterations; _ } ->
          (match b.stack with
          | n :: _ -> n.iterations <- n.iterations + iterations
          | [] -> ());
          leave b
      | Event.Loop_iter _ -> b.current_block <- None
      | Event.Dealloc _ | Event.Thread_start _ | Event.Thread_end _ -> ())

let finish b : t =
  if b.count = 0 then ignore (new_node b (Fnode "<empty>") (-1) 0);
  let arr = Array.sub b.barr 0 b.count in
  Array.iter (fun n -> n.children <- List.rev n.children) arr;
  (* Propagate line spans upward so containers cover their contents. *)
  let rec span id =
    let n = arr.(id) in
    List.iter
      (fun c ->
        span c;
        if arr.(c).first_line < n.first_line && arr.(c).first_line > 0 then
          n.first_line <- arr.(c).first_line;
        if arr.(c).last_line > n.last_line then n.last_line <- arr.(c).last_line)
      n.children
  in
  Array.iter (fun n -> if n.parent = -1 then span n.id) arr;
  { nodes = arr; n = b.count; root = 0 }

let node t id = t.nodes.(id)
let size t = t.n

(* Total memory instructions in the subtree rooted at [id]. *)
let rec subtree_instructions t id =
  let n = t.nodes.(id) in
  List.fold_left
    (fun acc c -> acc + subtree_instructions t c)
    n.instructions n.children

let total_instructions t = subtree_instructions t t.root

(* Attribute merged dependences to the PET: a dependence counts for every
   node whose line span contains its sink. *)
let attach_deps t (deps : Dep.Set_.t) =
  Dep.Set_.iter
    (fun d _count ->
      Array.iter
        (fun n ->
          if d.Dep.sink_line >= n.first_line && d.Dep.sink_line <= n.last_line
          then n.dep_count <- n.dep_count + 1)
        t.nodes)
    deps

let iter f t =
  for i = 0 to t.n - 1 do
    f t.nodes.(i)
  done

let to_string t =
  let buf = Buffer.create 256 in
  let rec go indent id =
    let n = t.nodes.(id) in
    let label =
      match n.kind with
      | Fnode f -> Printf.sprintf "func %s" f
      | Lnode l -> Printf.sprintf "loop @%d (%d iterations)" l n.iterations
      | Bnode l -> Printf.sprintf "block @%d" l
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s [lines %d-%d, %d instr, %d deps]\n"
         (String.make indent ' ') label n.first_line n.last_line
         (subtree_instructions t id) n.dep_count);
    List.iter (go (indent + 2)) n.children
  in
  go 0 t.root;
  Buffer.contents buf
