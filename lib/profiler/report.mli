(** Textual output in the paper's format (Fig. 2.1 / 2.3): [BGN]/[END]
    control records and [NOM] lines aggregating the dependences whose sink is
    that source line. *)

(** Region begin/end markers to interleave with the dependence lines. *)
type control = {
  loop_begin : (int, unit) Hashtbl.t;
  loop_end : (int, int) Hashtbl.t;  (** end line -> iterations *)
  func_begin : (int, string) Hashtbl.t;
  func_end : (int, string) Hashtbl.t;
}

val empty_control : unit -> control

val control_of_pet : Pet.t -> control
(** Derive the markers from a program execution tree. *)

val render : ?threads:bool -> ?control:control -> Dep.Set_.t -> string
(** [threads] switches sinks and sources to the [file:line|thread] form used
    for multi-threaded targets (Fig. 2.3). *)

val render_explain : ?top:int -> ?threads:bool -> Dep.Set_.t -> string
(** The [discopop explain] table: merged records ranked hottest-first, each
    with its first-witness provenance (timestamp, dynamic access index,
    profiling domain) and false-positive risk (0 under exact shadows).
    [top > 0] limits the rows shown. *)
