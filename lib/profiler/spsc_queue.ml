(* Lock-free single-producer-single-consumer bounded queue (§2.3.3).

   The producer (the executing program's main thread) owns [tail], the
   consumer (one profiler worker) owns [head]. As long as tail <> head, the
   two sides touch disjoint slots, so an atomic store with release semantics
   on the index — OCaml's [Atomic.set] — is the only synchronisation needed;
   no slot is ever locked. *)

type 'a t = {
  slots : 'a option array;
  mask : int;                (* capacity - 1; capacity is a power of two *)
  head : int Atomic.t;       (* next index to pop  (consumer-owned) *)
  tail : int Atomic.t;       (* next index to push (producer-owned) *)
  mutable stalls : int;      (* producer-owned: full-queue backoff rounds *)
}

let create ~capacity =
  let cap = max 2 capacity in
  (* round up to a power of two *)
  let rec pow2 n = if n >= cap then n else pow2 (2 * n) in
  let cap = pow2 2 in
  { slots = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    stalls = 0 }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0

(* Producer side. Returns false when the queue is full. *)
let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some x;
    (* Release: the consumer's acquire-load of [tail] sees the slot write. *)
    Atomic.set t.tail (tail + 1);
    true
  end

(* Blocking push with exponential backoff; used by the profiler producer. *)
let push t x =
  let rec go backoff =
    if not (try_push t x) then begin
      t.stalls <- t.stalls + 1;
      for _ = 1 to backoff do
        Domain.cpu_relax ()
      done;
      go (min (2 * backoff) 1024)
    end
  in
  go 1

(* Producer-side stall count: only the producer writes it, so a plain read
   after the workers are joined is exact. *)
let stalls t = t.stalls

(* Consumer side. *)
let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head = tail then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end
