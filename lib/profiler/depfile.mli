(** On-disk dependence files: the merged dependences phase 2 reads back
    (§1.5). Runtime merging is what shrinks these files from gigabytes to
    kilobytes (§2.3.5). *)

exception Parse_error of string

val record_line : Dep.t -> int -> string
(** One record with its occurrence count. *)

val render : Dep.Set_.t -> string
val write : string -> Dep.Set_.t -> unit
val parse : string -> Dep.Set_.t

val read : string -> Dep.Set_.t
(** @raise Parse_error on malformed input. *)

val read_opt : string -> Dep.Set_.t option
(** Like {!read}, but a missing or malformed file is [None] — the batch
    cache treats either as a miss instead of failing the job. *)

(** File sizes with and without runtime merging — every dynamic instance
    would otherwise be its own record. *)
type sizes = { merged_bytes : int; unmerged_bytes : int; reduction : float }

val measure : Dep.Set_.t -> sizes
