(** Ranking of parallelization targets (§4.3): instruction coverage, the
    local speedup bound from the CU graph's work/span, and CU imbalance
    (Fig. 4.6), combined through Amdahl's law. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type score = {
  coverage : float;        (** share of whole-program instructions, [0,1] *)
  local_speedup : float;   (** work/span bound, >= 1 *)
  imbalance : float;       (** [0,1], lower is better *)
  combined : float;        (** Amdahl gain discounted by imbalance *)
}

val rank_key : score -> float
(** The sort key for [combined]: identical for finite scores, but maps NaN
    to [neg_infinity] so ordering by it is always a total order. *)

val combine :
  coverage:float -> local_speedup:float -> imbalance:float -> score
(** Build a score from the three metrics, clamping each to its documented
    range (NaN and infinities included) so every field — [combined] in
    particular — is finite. *)

val coverage_of_region : Static.t -> Profiler.Pet.t -> int -> float
val local_speedup_of_cus : Cunit.Graph.t -> float
val imbalance_of_cus : Cunit.Graph.t -> float

val score_region :
  Static.t -> Cunit.Top_down.result -> Dep.Set_.t -> Profiler.Pet.t -> int ->
  score

val to_string : score -> string
