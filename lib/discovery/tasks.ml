(* Task parallelism discovery (§4.2).

   SPMD-style tasks: the same computation applied to independent work items —
   loop iterations that spawn independent heavy work (BOTS-style `omp task`
   in a loop), or recursive calls whose CUs are mutually independent in the
   CU graph (fib/nqueens-style fork-join).

   MPMD-style tasks: different computations that may run concurrently —
   found by simplifying the CU graph (contract SCCs, then chains of CUs, per
   Fig 4.5) and looking for antichains in the resulting DAG; a linear DAG
   whose stages are only self-dependent across a surrounding loop is a
   pipeline. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type spmd = {
  s_kind : [ `Loop_tasks of int | `Recursive_forkjoin of string ];
  s_region : int;
  s_task_lines : int list;     (* lines of the task bodies / call sites *)
  s_evidence : string;
}

type mpmd_shape = Taskgraph | Pipeline

type mpmd = {
  m_region : int;
  m_shape : mpmd_shape;
  m_stages : int list list;    (* CU ids per stage, in dataflow order *)
  m_width : int;               (* size of the largest antichain *)
  m_evidence : string;
}

(* ---- SPMD ---- *)

let call_sites_to (f : string) (block : Mil.Ast.block) : int list =
  let expr_calls e acc =
    List.fold_left
      (fun acc (name, _) -> if name = f then true :: acc else acc)
      acc
      (Static.expr_callees e [])
  in
  let rec go (s : Mil.Ast.stmt) acc =
    let has_call e = expr_calls e [] <> [] in
    match s.Mil.Ast.node with
    | Mil.Ast.Call_stmt (name, args) ->
        if name = f || has_call (Mil.Ast.Call (name, args)) then s.Mil.Ast.line :: acc
        else acc
    | Mil.Ast.Decl (_, e) | Mil.Ast.Assign (_, e) | Mil.Ast.Atomic_assign (_, e)
    | Mil.Ast.Decl_arr (_, e) | Mil.Ast.Return (Some e) ->
        if has_call e then s.Mil.Ast.line :: acc else acc
    | Mil.Ast.If (_, t, e) -> List.fold_right go (t @ e) acc
    | Mil.Ast.While (_, b) -> List.fold_right go b acc
    | Mil.Ast.For { body; _ } -> List.fold_right go body acc
    | Mil.Ast.Par bs -> List.fold_right go (List.concat bs) acc
    | _ -> acc
  in
  List.fold_right go block []

(* Recursive fork-join: a function with >=2 recursive call sites whose
   subtasks are mutually independent (the classic fib pattern, Fig 4.3).

   Independence is judged on the profiled dependences between the CUs
   containing the call sites: the later call's CU must not truly depend (RAW)
   on anything the earlier call's CU produced *at or after* the call itself.
   Values computed before the first call (e.g. the midpoint both halves of a
   divide-and-conquer receive) are task inputs, captured by value at spawn,
   and do not serialise the tasks; neither does RAW flow through
   reduction-only variables (a best-cost bound or a node counter). *)
let c_spmd = Obs.counter "discovery.tasks.spmd"
let c_mpmd = Obs.counter "discovery.tasks.mpmd"

let recursive_forkjoin (st : Static.t) (cures : Cunit.Top_down.result)
    (deps : Dep.Set_.t) : spmd list =
  Obs.Span.with_ ~phase:"discovery.tasks" @@ fun () ->
  let global_reductions = Static.reduction_only_vars st.Static.program in
  let found =
  List.filter_map
    (fun (f : Mil.Ast.func) ->
      let sites = call_sites_to f.Mil.Ast.fname f.Mil.Ast.body in
      if List.length sites < 2 then None
      else begin
        let rid = Static.func_region st f.Mil.Ast.fname in
        let serialises s1 s2 =
          (* s1 executes before s2. The later task is serialised when the
             spawning statement itself consumes a value produced at or after
             the first call — e.g. y = f(x) where x = f(...) just above.
             (Dependences between the tasks' own effects flow through callee
             source lines shared by both subtrees and cannot be attributed to
             either site; like DiscoPoP, we rely on the profiled dependences
             of the spawning function's body.) *)
          let blocked = ref false in
          Dep.Set_.iter
            (fun d _ ->
              if
                d.Dep.dtype = Dep.Raw
                && (not (Hashtbl.mem global_reductions d.Dep.var))
                && d.Dep.sink_line = s2
                && d.Dep.src_line >= s1
                && d.Dep.src_line < s2
              then blocked := true)
            deps;
          !blocked
        in
        let sorted = List.sort_uniq compare sites in
        let rec pairs = function
          | [] | [ _ ] -> true
          | s1 :: rest ->
              List.for_all (fun s2 -> not (serialises s1 s2)) rest && pairs rest
        in
        if pairs sorted then
          Some
            { s_kind = `Recursive_forkjoin f.Mil.Ast.fname;
              s_region = rid;
              s_task_lines = sorted;
              s_evidence =
                Printf.sprintf
                  "%d recursive call sites with no true dependence between tasks"
                  (List.length sorted) }
        else None
      end)
    cures.Cunit.Top_down.static.Static.program.Mil.Ast.funcs
  in
  Obs.Counter.add c_spmd (List.length found);
  found

(* Loop-body tasks: a DOALL(-with-reduction) loop whose body performs heavy
   work through calls becomes an SPMD task loop (one task per iteration). *)
let loop_tasks (loops : Loops.analysis list) : spmd list =
  Obs.Span.with_ ~phase:"discovery.tasks" @@ fun () ->
  let found =
    List.filter_map
      (fun (a : Loops.analysis) ->
        let heavy =
          List.exists
            (fun (cu : Cunit.Cu.t) -> cu.Cunit.Cu.contains_call)
            a.Loops.body_cus
        in
        match a.Loops.cls with
        | Loops.Doall | Loops.Doall_reduction when heavy ->
            Some
              { s_kind = `Loop_tasks a.Loops.loop_line;
                s_region = a.Loops.region.Static.id;
                s_task_lines = [ a.Loops.loop_line ];
                s_evidence = "independent iterations calling worker functions" }
        | _ -> None)
      loops
  in
  Obs.Counter.add c_spmd (List.length found);
  found

(* ---- MPMD ---- *)

(* MPMD task-graph extraction over a region's item-level dataflow graph.

   Algorithm 3's CU partition merges adjacent statements that do not violate
   the read-compute-write pattern — including mutually independent stages
   like FaceDetection's two filters — so the CU sequence alone cannot expose
   task-graph width. The items of the region (statements, with nested
   regions collapsed and interprocedural read/write sets attached) carry
   exactly the dataflow needed: item B depends on item A when B reads a
   variable A wrote earlier. Levelling that DAG yields the stage structure
   of Fig 4.5: an antichain of width >= 2 is a task graph, a substantial
   chain a pipeline. *)
let mpmd_of_region (cures : Cunit.Top_down.result) (deps : Dep.Set_.t)
    (rid : int) : mpmd option =
  Obs.Span.with_ ~phase:"discovery.tasks" @@ fun () ->
  ignore deps;
  let st = cures.Cunit.Top_down.static in
  (* Dataflow between a region's items also travels through its direct
     locals (e.g. the per-chunk fingerprint handed from stage to stage), so
     they join the globals for this analysis. *)
  let gv =
    Mil.Static.SS.union
      (Cunit.Top_down.construction_globals st rid)
      (Mil.Static.region st rid).Mil.Static.locals
  in
  let items = Cunit.Top_down.items_of_region st rid gv in
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n < 2 then None
  else begin
    let module SS = Mil.Static.SS in
    (* preds.(b) = earlier items b truly depends on *)
    let level = Array.make n 0 in
    for b = 0 to n - 1 do
      for a = 0 to b - 1 do
        if
          not
            (SS.is_empty
               (SS.inter arr.(a).Cunit.Top_down.it_writes
                  arr.(b).Cunit.Top_down.it_reads))
        then level.(b) <- max level.(b) (level.(a) + 1)
      done
    done;
    (* A stage member is "substantial" when it is a call or a compound
       statement; bare declarations do not make a task. *)
    let substantial k =
      arr.(k).Cunit.Top_down.it_call || arr.(k).Cunit.Top_down.it_weight >= 3
    in
    let n_levels = 1 + Array.fold_left max 0 level in
    let members = Array.make n_levels [] in
    let counts = Array.make n_levels 0 in
    Array.iteri
      (fun k it ->
        members.(level.(k)) <- it.Cunit.Top_down.it_line :: members.(level.(k));
        if substantial k then counts.(level.(k)) <- counts.(level.(k)) + 1)
      arr;
    let width = Array.fold_left max 0 counts in
    let substantial_total =
      Array.fold_left ( + ) 0 counts
    in
    if n_levels < 2 || substantial_total < 2 then None
    else begin
      let stages =
        Array.to_list (Array.map (fun ls -> List.sort compare ls) members)
      in
      let shape = if width >= 2 then Taskgraph else Pipeline in
      Obs.Counter.incr c_mpmd;
      Some
        { m_region = rid;
          m_shape = shape;
          m_stages = stages;
          m_width = max 1 width;
          m_evidence =
            Printf.sprintf
              "%d items -> %d dataflow stages (width %d, %d substantial tasks)"
              n n_levels width substantial_total }
    end
  end

let spmd_to_string s =
  match s.s_kind with
  | `Loop_tasks line ->
      Printf.sprintf "SPMD tasks: loop@%d (%s)" line s.s_evidence
  | `Recursive_forkjoin f ->
      Printf.sprintf "SPMD fork-join: %s at lines [%s] (%s)" f
        (String.concat "," (List.map string_of_int s.s_task_lines))
        s.s_evidence

let mpmd_to_string m =
  Printf.sprintf "MPMD %s: region %d, %d stages (width %d): %s"
    (match m.m_shape with Taskgraph -> "task graph" | Pipeline -> "pipeline")
    m.m_region (List.length m.m_stages) m.m_width m.m_evidence
