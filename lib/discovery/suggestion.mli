(** The framework front door: phases 1-3 of Fig. 1.3 — profile, construct
    CUs, discover loop and task parallelism, rank — over a MIL program. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type kind =
  | Sdoall of Loops.analysis
  | Sdoacross of Loops.analysis
  | Sspmd of Tasks.spmd
  | Smpmd of Tasks.mpmd

type t = { kind : kind; region : int; score : Ranking.score }

type report = {
  program : Mil.Ast.program;
  static : Static.t;
  cures : Cunit.Top_down.result;
  profile : Profiler.Serial.result;
  loops : Loops.analysis list;
  suggestions : t list;  (** sorted by rank, best first *)
}

val kind_to_string : kind -> string

val compare_rank : t -> t -> int
(** Rank order, best first: a total order even if a score's [combined] is
    NaN (ranked below every finite score), with deterministic region/kind
    tie-breaks. *)

val analyze :
  ?shadow:Profiler.Engine.shadow_kind ->
  ?skip:bool ->
  ?seed:int ->
  ?threads:int ->
  Mil.Ast.program ->
  report
(** [threads] (default 4) bounds the kind-aware local-speedup metric. *)

val analyze_profiled :
  ?threads:int -> Mil.Ast.program -> Profiler.Serial.result -> report
(** Phases 2-3 only, over an existing phase-1 profile of [prog] — how the
    batch pipeline analyzes a profile restored from its cache, and how a
    parallel-profiled run (adapted into a {!Profiler.Serial.result}) is
    analyzed without re-profiling. *)

(** A suggestion reduced to what the batch cache persists: region, rendered
    kind, and score. *)
type summary_entry = {
  e_region : int;
  e_kind : string;
  e_score : Ranking.score;
}

val summarize : report -> summary_entry list

val summary_to_string : ?name:string -> summary_entry list -> string
(** One [S]-line per suggestion with %.17g floats (exact round-trip); the
    serialization the batch cache stores and compares byte-for-byte. *)

val summary_of_string : string -> (summary_entry list, string) result

val render : report -> string
