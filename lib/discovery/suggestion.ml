(* The framework front door: run phases 1-3 (§1.5) over a MIL program and
   produce ranked parallelization suggestions. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type kind =
  | Sdoall of Loops.analysis
  | Sdoacross of Loops.analysis
  | Sspmd of Tasks.spmd
  | Smpmd of Tasks.mpmd

type t = {
  kind : kind;
  region : int;
  score : Ranking.score;
}

type report = {
  program : Mil.Ast.program;
  static : Static.t;
  cures : Cunit.Top_down.result;
  profile : Profiler.Serial.result;
  loops : Loops.analysis list;
  suggestions : t list;  (* sorted by rank, best first *)
}

let kind_to_string = function
  | Sdoall a | Sdoacross a -> Loops.to_string a
  | Sspmd s -> Tasks.spmd_to_string s
  | Smpmd m -> Tasks.mpmd_to_string m

let c_suggestions = Obs.counter "discovery.suggestions"

let analyze ?(shadow = Profiler.Engine.Perfect) ?(skip = true) ?seed
    ?(threads = 4) (prog : Mil.Ast.program) : report =
  let profile = Profiler.Serial.profile ~shadow ~skip ?seed prog in
  let static = Obs.Span.with_ ~phase:"static" (fun () -> Static.analyze prog) in
  let cures = Cunit.Top_down.build static in
  let deps = profile.Profiler.Serial.deps in
  let pet = profile.Profiler.Serial.pet in
  Obs.Span.with_ ~phase:"discovery" @@ fun () ->
  let loops = Loops.analyze_all static cures deps pet in
  let t = float_of_int (max 1 threads) in
  (* Kind-aware local speedup: DOALL iterations scale with the thread count;
     DOACROSS is bounded by the number of overlappable body CUs; task shapes
     are bounded by the CU-graph work/span (computed by Ranking). *)
  let score ?local rid =
    let s = Ranking.score_region static cures deps pet rid in
    let local_speedup =
      match local with
      | Some l -> min l t
      | None -> min s.Ranking.local_speedup t
    in
    let amdahl =
      1.0
      /. ((1.0 -. s.Ranking.coverage) +. (s.Ranking.coverage /. local_speedup))
    in
    { s with
      Ranking.local_speedup;
      combined = amdahl *. (1.0 -. (0.5 *. s.Ranking.imbalance)) }
  in
  let loop_suggestions =
    List.filter_map
      (fun (a : Loops.analysis) ->
        let rid = a.Loops.region.Static.id in
        match a.Loops.cls with
        | Loops.Doall | Loops.Doall_reduction ->
            let local = min t (float_of_int (max 1 a.Loops.iterations)) in
            Some { kind = Sdoall a; region = rid; score = score ~local rid }
        | Loops.Doacross ->
            let stages = max 2 (List.length a.Loops.body_cus) in
            let local = min t (float_of_int stages) in
            Some { kind = Sdoacross a; region = rid; score = score ~local rid }
        | Loops.Sequential -> None)
      loops
  in
  let spmd =
    Tasks.recursive_forkjoin static cures deps @ Tasks.loop_tasks loops
    |> List.map (fun (s : Tasks.spmd) ->
           { kind = Sspmd s; region = s.Tasks.s_region;
             score = score ~local:t s.Tasks.s_region })
  in
  let mpmd =
    (* Look for MPMD structure in every function and executed loop body. *)
    Array.to_list static.Static.regions
    |> List.filter_map (fun (r : Static.region) ->
           match r.Static.kind with
           | Static.Rfunc _ | Static.Rloop _ -> (
               match Tasks.mpmd_of_region cures deps r.Static.id with
               | Some m when m.Tasks.m_width >= 2 ->
                   Some
                     { kind = Smpmd m; region = r.Static.id;
                       score =
                         score ~local:(float_of_int m.Tasks.m_width)
                           r.Static.id }
               | Some ({ Tasks.m_shape = Tasks.Pipeline; _ } as m)
                 when List.length m.Tasks.m_stages >= 3
                      && (match r.Static.kind with
                         | Static.Rloop _ -> true
                         | Static.Rfunc _ | Static.Rbranch _ -> false) ->
                   (* a linear stage chain executed per loop iteration:
                      pipeline parallelism over the stream of work items
                      (speedup bounded by the stage count) *)
                   Some
                     { kind = Smpmd m; region = r.Static.id;
                       score =
                         score
                           ~local:(float_of_int (List.length m.Tasks.m_stages))
                           r.Static.id }
               | Some _ | None -> None)
           | Static.Rbranch _ -> None)
  in
  let suggestions =
    loop_suggestions @ spmd @ mpmd
    |> List.sort (fun a b ->
           compare b.score.Ranking.combined a.score.Ranking.combined)
  in
  Obs.Counter.add c_suggestions (List.length suggestions);
  { program = prog; static; cures; profile; loops; suggestions }

let render (r : report) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "=== %s: %d suggestions ===\n" r.program.Mil.Ast.pname
       (List.length r.suggestions));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. [%s] %s\n" (i + 1) (Ranking.to_string s.score)
           (kind_to_string s.kind)))
    r.suggestions;
  Buffer.contents buf
