(* The framework front door: run phases 1-3 (§1.5) over a MIL program and
   produce ranked parallelization suggestions. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type kind =
  | Sdoall of Loops.analysis
  | Sdoacross of Loops.analysis
  | Sspmd of Tasks.spmd
  | Smpmd of Tasks.mpmd

type t = {
  kind : kind;
  region : int;
  score : Ranking.score;
}

type report = {
  program : Mil.Ast.program;
  static : Static.t;
  cures : Cunit.Top_down.result;
  profile : Profiler.Serial.result;
  loops : Loops.analysis list;
  suggestions : t list;  (* sorted by rank, best first *)
}

let kind_to_string = function
  | Sdoall a | Sdoacross a -> Loops.to_string a
  | Sspmd s -> Tasks.spmd_to_string s
  | Smpmd m -> Tasks.mpmd_to_string m

let c_suggestions = Obs.counter "discovery.suggestions"

(* Rank comparator, best first. Total even when a NaN sneaks into
   [combined] ([Ranking.rank_key] maps it to -inf), with deterministic
   region/kind tie-breaks so equal-scored suggestions keep a stable order —
   the batch cache compares serialized suggestion lists byte-for-byte. *)
let compare_rank (a : t) (b : t) : int =
  let c = compare (Ranking.rank_key b.score) (Ranking.rank_key a.score) in
  if c <> 0 then c
  else
    let c = compare a.region b.region in
    if c <> 0 then c
    else compare (kind_to_string a.kind) (kind_to_string b.kind)

let analyze_profiled ?(threads = 4) (prog : Mil.Ast.program)
    (profile : Profiler.Serial.result) : report =
  let static = Obs.Span.with_ ~phase:"static" (fun () -> Static.analyze prog) in
  let cures = Cunit.Top_down.build static in
  let deps = profile.Profiler.Serial.deps in
  let pet = profile.Profiler.Serial.pet in
  Obs.Span.with_ ~phase:"discovery" @@ fun () ->
  let loops = Loops.analyze_all static cures deps pet in
  let t = float_of_int (max 1 threads) in
  (* Kind-aware local speedup: DOALL iterations scale with the thread count;
     DOACROSS is bounded by the number of overlappable body CUs; task shapes
     are bounded by the CU-graph work/span (computed by Ranking). *)
  let score ?local rid =
    let s = Ranking.score_region static cures deps pet rid in
    let local_speedup =
      match local with
      | Some l -> min l t
      | None -> min s.Ranking.local_speedup t
    in
    Ranking.combine ~coverage:s.Ranking.coverage ~local_speedup
      ~imbalance:s.Ranking.imbalance
  in
  let loop_suggestions =
    List.filter_map
      (fun (a : Loops.analysis) ->
        let rid = a.Loops.region.Static.id in
        match a.Loops.cls with
        | Loops.Doall | Loops.Doall_reduction ->
            let local = min t (float_of_int (max 1 a.Loops.iterations)) in
            Some { kind = Sdoall a; region = rid; score = score ~local rid }
        | Loops.Doacross ->
            let stages = max 2 (List.length a.Loops.body_cus) in
            let local = min t (float_of_int stages) in
            Some { kind = Sdoacross a; region = rid; score = score ~local rid }
        | Loops.Sequential -> None)
      loops
  in
  let spmd =
    Tasks.recursive_forkjoin static cures deps @ Tasks.loop_tasks loops
    |> List.map (fun (s : Tasks.spmd) ->
           { kind = Sspmd s; region = s.Tasks.s_region;
             score = score ~local:t s.Tasks.s_region })
  in
  let mpmd =
    (* Look for MPMD structure in every function and executed loop body. *)
    Array.to_list static.Static.regions
    |> List.filter_map (fun (r : Static.region) ->
           match r.Static.kind with
           | Static.Rfunc _ | Static.Rloop _ -> (
               match Tasks.mpmd_of_region cures deps r.Static.id with
               | Some m when m.Tasks.m_width >= 2 ->
                   Some
                     { kind = Smpmd m; region = r.Static.id;
                       score =
                         score ~local:(float_of_int m.Tasks.m_width)
                           r.Static.id }
               | Some ({ Tasks.m_shape = Tasks.Pipeline; _ } as m)
                 when List.length m.Tasks.m_stages >= 3
                      && (match r.Static.kind with
                         | Static.Rloop _ -> true
                         | Static.Rfunc _ | Static.Rbranch _ -> false) ->
                   (* a linear stage chain executed per loop iteration:
                      pipeline parallelism over the stream of work items
                      (speedup bounded by the stage count) *)
                   Some
                     { kind = Smpmd m; region = r.Static.id;
                       score =
                         score
                           ~local:(float_of_int (List.length m.Tasks.m_stages))
                           r.Static.id }
               | Some _ | None -> None)
           | Static.Rbranch _ -> None)
  in
  let suggestions = loop_suggestions @ spmd @ mpmd |> List.sort compare_rank in
  Obs.Counter.add c_suggestions (List.length suggestions);
  { program = prog; static; cures; profile; loops; suggestions }

let analyze ?(shadow = Profiler.Engine.Perfect) ?(skip = true) ?seed
    ?(threads = 4) (prog : Mil.Ast.program) : report =
  let profile = Profiler.Serial.profile ~shadow ~skip ?seed prog in
  analyze_profiled ~threads prog profile

(* ---- serialized suggestion summaries (the batch cache's phase-2/3
   artifact) ----

   One line per suggestion:

     S <region> <coverage> <local_speedup> <imbalance> <combined> <kind...>

   Floats use %.17g so parsing reproduces them exactly; the kind string is
   last because it contains spaces. *)

type summary_entry = {
  e_region : int;
  e_kind : string;
  e_score : Ranking.score;
}

let summarize (r : report) : summary_entry list =
  List.map
    (fun s ->
      { e_region = s.region; e_kind = kind_to_string s.kind; e_score = s.score })
    r.suggestions

let summary_to_string ?(name = "") (entries : summary_entry list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "# discopop-suggestions v1 name=%s count=%d\n"
       (if name = "" then "-" else name)
       (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "S %d %.17g %.17g %.17g %.17g %s\n" e.e_region
           e.e_score.Ranking.coverage e.e_score.Ranking.local_speedup
           e.e_score.Ranking.imbalance e.e_score.Ranking.combined e.e_kind))
    entries;
  Buffer.contents buf

let summary_of_string (s : string) : (summary_entry list, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_line line =
    (* Split off the first six space-separated fields; the remainder is the
       kind string verbatim (it may itself contain spaces). *)
    let rec field_end i n =
      if n = 0 then i
      else
        match String.index_from_opt line i ' ' with
        | Some j -> field_end (j + 1) (n - 1)
        | None -> String.length line
    in
    let cut = field_end 0 6 in
    match String.split_on_char ' ' (String.sub line 0 (max 0 (cut - 1))) with
    | [ "S"; region; cov; ls; imb; comb ] -> (
        try
          Ok
            { e_region = int_of_string region;
              e_kind = String.sub line cut (String.length line - cut);
              e_score =
                { Ranking.coverage = float_of_string cov;
                  local_speedup = float_of_string ls;
                  imbalance = float_of_string imb;
                  combined = float_of_string comb } }
        with Failure _ -> Error ())
    | _ -> Error ()
  in
  match String.split_on_char '\n' s with
  | header :: rest when String.length header >= 25
                        && String.sub header 0 25 = "# discopop-suggestions v1" ->
      let entries = ref [] in
      let bad = ref None in
      List.iter
        (fun line ->
          if line <> "" && !bad = None then
            match parse_line line with
            | Ok e -> entries := e :: !entries
            | Error () -> bad := Some line)
        rest;
      (match !bad with
      | Some line -> err "malformed suggestion line: %s" line
      | None -> Ok (List.rev !entries))
  | _ -> err "missing discopop-suggestions v1 header"

let render (r : report) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "=== %s: %d suggestions ===\n" r.program.Mil.Ast.pname
       (List.length r.suggestions));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. [%s] %s\n" (i + 1) (Ranking.to_string s.score)
           (kind_to_string s.kind)))
    r.suggestions;
  Buffer.contents buf
