(* Loop parallelism discovery (§4.1).

   DOALL: no iteration of the loop truly depends on a previous iteration —
   i.e. no RAW dependence carried at the loop, after discounting dependences
   on the loop index (local to the loop unless the body writes it, §3.2.5)
   and on recognised reduction variables (resolvable by parallel reduction).
   Carried WAR/WAW are name dependences, resolvable by privatisation; the
   affected variables are reported as the private set.

   DOACROSS: carried RAW dependences exist, but parts of the loop body are
   not involved in them, so consecutive iterations can partially overlap
   (pipeline the body CUs). A loop whose body is a single CU entirely tied
   into the carried dependence is sequential. *)

module Dep = Profiler.Dep
module Static = Mil.Static
module SS = Static.SS

type loop_class =
  | Doall                  (* fully independent iterations *)
  | Doall_reduction        (* independent after parallel reduction *)
  | Doacross               (* carried deps, partial overlap possible *)
  | Sequential

let class_to_string = function
  | Doall -> "DOALL"
  | Doall_reduction -> "DOALL(reduction)"
  | Doacross -> "DOACROSS"
  | Sequential -> "sequential"

type analysis = {
  region : Static.region;
  loop_line : int;
  cls : loop_class;
  blocking : Dep.t list;        (* carried RAW deps that prevent DOALL *)
  reduction_vars : (string * Mil.Ast.binop) list; (* used by carried deps *)
  private_vars : string list;   (* carried WAR/WAW name-dependence targets *)
  body_cus : Cunit.Cu.t list;
  free_cus : int;               (* body CUs not touched by blocking deps *)
  iterations : int;             (* total iterations observed (from PET) *)
  instructions : int;           (* dynamic memory instructions in the loop *)
}

(* Reduction statements anywhere in the loop's subtree, with their lines: a
   sum accumulated in a nested loop is still a reduction over the outer loop.
   The lines let the classifier excuse only carried dependences whose
   dependent read *is* the reduction update itself. *)
let rec loop_level_reductions (st : Static.t) rid =
  let r = st.regions.(rid) in
  let here =
    List.filter_map
      (fun (s : Mil.Ast.stmt) ->
        match Static.reduction_of_stmt s with
        | Some (x, op) -> Some (x, op, s.Mil.Ast.line)
        | None -> None)
      r.stmts
  in
  List.fold_left (fun acc cid -> acc @ loop_level_reductions st cid) here r.children

(* PET statistics for the loop with header [line]. *)
let pet_stats (pet : Profiler.Pet.t) line =
  let iters = ref 0 and instr = ref 0 in
  Profiler.Pet.iter
    (fun n ->
      match n.Profiler.Pet.kind with
      | Profiler.Pet.Lnode l when l = line ->
          iters := !iters + n.Profiler.Pet.iterations;
          instr := !instr + Profiler.Pet.subtree_instructions pet n.Profiler.Pet.id
      | _ -> ())
    pet;
  (!iters, !instr)

let analyze_loop ?global_reductions (st : Static.t)
    (cures : Cunit.Top_down.result) (deps : Dep.Set_.t) (pet : Profiler.Pet.t)
    (r : Static.region) : analysis =
  let global_reductions =
    match global_reductions with
    | Some g -> g
    | None -> Static.reduction_only_vars st.Static.program
  in
  let loop_line = r.first_line in
  let index_var =
    match r.kind with
    | Static.Rloop { index = Some ix; _ } when not r.index_written_in_body -> Some ix
    | _ -> None
  in
  let reductions = loop_level_reductions st r.id in
  (* A dependence carried by this loop can live entirely inside a callee,
     outside the region's own line range (a recursive task counter updated
     three frames down still blocks — or reduces over — the loop). The
     carrier attribution already proves both endpoints executed inside an
     iteration pair of this loop, so collect by carrier, not line range. *)
  let carried =
    let acc = ref [] in
    Dep.Set_.iter
      (fun d _ -> if d.Dep.carrier = Some loop_line then acc := d :: !acc)
      deps;
    List.rev !acc
  in
  let is_index v = index_var = Some v in
  let carried_raw =
    List.filter (fun d -> d.Dep.dtype = Dep.Raw && not (is_index d.Dep.var)) carried
  in
  (* A carried RAW is resolvable by parallel reduction when the variable is
     reduced at loop level, or is a program-wide reduction-only variable and
     the dependent read is itself one of the reduction statements — which
     covers reductions performed inside callees (recursive task counters). *)
  let cond_vars =
    match r.kind with
    | Static.Rloop { cond_vars; _ } -> cond_vars
    | Static.Rfunc _ | Static.Rbranch _ -> SS.empty
  in
  let reduction_of d =
    (* A variable the loop condition reads controls the iteration space; a
       carried dependence on it is never reducible. Otherwise a carried RAW
       is reducible when its dependent read is itself a reduction update of
       the variable — either somewhere in this loop's subtree, or anywhere
       in the program for reduction-only variables (updates in callees). *)
    if SS.mem d.Dep.var cond_vars && index_var <> Some d.Dep.var then None
    else
      match
        List.find_opt
          (fun (x, _, line) -> x = d.Dep.var && line = d.Dep.sink_line)
          reductions
      with
      | Some (_, op, _) -> Some op
      | None -> (
          match Hashtbl.find_opt global_reductions d.Dep.var with
          | Some (op, lines) when List.mem d.Dep.sink_line lines -> Some op
          | Some _ | None -> None)
  in
  let blocking, reducible =
    List.partition (fun d -> reduction_of d = None) carried_raw
  in
  let reduction_vars =
    List.sort_uniq compare
      (List.filter_map
         (fun d ->
           match reduction_of d with
           | Some op -> Some (d.Dep.var, op)
           | None -> None)
         reducible)
  in
  let reduced_vars = List.map (fun (x, _, _) -> x) reductions in
  let private_vars =
    List.filter
      (fun d ->
        (d.Dep.dtype = Dep.War || d.Dep.dtype = Dep.Waw)
        && (not (is_index d.Dep.var))
        && (not (List.mem d.Dep.var reduced_vars))
        && not (List.mem d.Dep.var (List.map fst reduction_vars)))
      carried
    |> List.map (fun d -> d.Dep.var)
    |> List.sort_uniq compare
  in
  let body_cus = Cunit.Top_down.cus_of_region cures r.id in
  let blocked_lines =
    List.concat_map (fun d -> [ d.Dep.sink_line; d.Dep.src_line ]) blocking
  in
  let free_cus =
    List.length
      (List.filter
         (fun cu -> not (List.exists (fun l -> Cunit.Cu.mem_line cu l) blocked_lines))
         body_cus)
  in
  let cls =
    if blocking = [] then if reduction_vars = [] then Doall else Doall_reduction
    else if free_cus > 0 || List.length body_cus > 1 then Doacross
    else Sequential
  in
  let iterations, instructions = pet_stats pet loop_line in
  { region = r; loop_line; cls; blocking; reduction_vars; private_vars;
    body_cus; free_cus; iterations; instructions }

let class_counter = function
  | Doall -> Obs.counter "discovery.loops.doall"
  | Doall_reduction -> Obs.counter "discovery.loops.doall_reduction"
  | Doacross -> Obs.counter "discovery.loops.doacross"
  | Sequential -> Obs.counter "discovery.loops.sequential"

(* Analyse every loop of the program that was actually executed. *)
let analyze_all (st : Static.t) (cures : Cunit.Top_down.result)
    (deps : Dep.Set_.t) (pet : Profiler.Pet.t) : analysis list =
  Obs.Span.with_ ~phase:"discovery.loops" @@ fun () ->
  let global_reductions = Static.reduction_only_vars st.Static.program in
  let analyses =
    Static.loop_regions st
    |> List.filter_map (fun r ->
           let iters, _ = pet_stats pet r.Static.first_line in
           if iters = 0 then None
           else Some (analyze_loop ~global_reductions st cures deps pet r))
  in
  List.iter (fun a -> Obs.Counter.incr (class_counter a.cls)) analyses;
  analyses

let to_string a =
  Printf.sprintf
    "loop@%d: %s (%d iters, %d instr)%s%s%s" a.loop_line
    (class_to_string a.cls) a.iterations a.instructions
    (if a.reduction_vars = [] then ""
     else
       Printf.sprintf " reduction(%s)"
         (String.concat "," (List.map fst a.reduction_vars)))
    (if a.private_vars = [] then ""
     else Printf.sprintf " private(%s)" (String.concat "," a.private_vars))
    (if a.blocking = [] then ""
     else
       Printf.sprintf " blocked-by[%s]"
         (String.concat "; "
            (List.map (Dep.to_string ~threads:false)
               (List.filteri (fun i _ -> i < 4) a.blocking))))
