(* Ranking of parallelization targets (§4.3) by three metrics:

   - instruction coverage: dynamic memory instructions spent in the target
     region divided by the whole program's — parallelising a region the
     program barely executes cannot pay off.
   - local speedup: the bound obtained from the region's CU graph — total CU
     weight over critical-path weight (work over span), capped by the thread
     count when one is given.
   - CU imbalance: how unevenly the concurrently-runnable CUs are sized; a
     perfectly balanced antichain scores 0, a lopsided one approaches 1
     (Fig 4.6). Imbalanced opportunities waste the threads assigned to the
     small CUs. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type score = {
  coverage : float;        (* [0, 1] *)
  local_speedup : float;   (* >= 1 *)
  imbalance : float;       (* [0, 1], lower is better *)
  combined : float;
}

(* Every metric must stay finite: a single NaN (e.g. from a degenerate
   region with no profiled instructions) would poison [combined] and, since
   NaN is incomparable, silently scramble the suggestion sort downstream.
   Non-finite inputs collapse to the metric's neutral value. *)
let clamp ~lo ~hi ~nan x =
  if Float.is_nan x then nan
  else if x < lo then lo
  else if x > hi then hi
  else x (* +/-inf fall into the lo/hi branches *)

(* The sort key for [combined]: total even if a NaN slips through — NaN
   ranks below every real score (treated as -inf). *)
let rank_key (s : score) : float =
  if Float.is_nan s.combined then neg_infinity else s.combined

(* Amdahl's whole-program gain, guarded: [coverage] in [0,1],
   [local_speedup] >= 1, so the denominator is positive unless the inputs
   were already degenerate — then fall back to the local bound itself. *)
let amdahl ~coverage ~local_speedup =
  let denom = 1.0 -. coverage +. (coverage /. local_speedup) in
  if Float.is_nan denom || denom <= 0.0 then local_speedup else 1.0 /. denom

let combine ~coverage ~local_speedup ~imbalance =
  let coverage = clamp ~lo:0.0 ~hi:1.0 ~nan:0.0 coverage in
  let local_speedup =
    clamp ~lo:1.0 ~hi:1e9 ~nan:1.0 local_speedup
  in
  let imbalance = clamp ~lo:0.0 ~hi:1.0 ~nan:0.0 imbalance in
  let combined =
    amdahl ~coverage ~local_speedup *. (1.0 -. (0.5 *. imbalance))
  in
  { coverage; local_speedup; imbalance;
    combined = clamp ~lo:0.0 ~hi:1e9 ~nan:0.0 combined }

(* Instruction coverage of a region from the PET. A region (or a whole run)
   with zero PET instructions covers nothing — the divide below must never
   see a zero or negative total. *)
let coverage_of_region (st : Static.t) (pet : Profiler.Pet.t) (rid : int) : float =
  let total = Profiler.Pet.total_instructions pet in
  if total <= 0 then 0.0
  else begin
    let r = st.regions.(rid) in
    let matches (n : Profiler.Pet.node) =
      match (r.Static.kind, n.Profiler.Pet.kind) with
      | Static.Rloop _, Profiler.Pet.Lnode l -> l = r.Static.first_line
      | Static.Rfunc f, Profiler.Pet.Fnode f' -> f = f'
      | Static.Rbranch _, _ | _, _ -> false
    in
    let acc = ref 0 in
    Profiler.Pet.iter
      (fun n ->
        if matches n then
          acc := !acc + Profiler.Pet.subtree_instructions pet n.Profiler.Pet.id)
      pet;
    clamp ~lo:0.0 ~hi:1.0 ~nan:0.0
      (float_of_int !acc /. float_of_int total)
  end

(* Work/span bound over the RAW CU graph of a region. SCCs execute
   sequentially, so an SCC's span is its total weight. *)
let local_speedup_of_cus (g : Cunit.Graph.t) : float =
  let n = Cunit.Graph.size g in
  if n = 0 then 1.0
  else begin
    let weight i = float_of_int (max 1 (Cunit.Graph.cu g i).Cunit.Cu.weight) in
    let adj = Cunit.Graph.raw_succ g in
    let scc = Cunit.Scc.run adj in
    let cadj = Cunit.Scc.condense adj scc in
    let cweight =
      Array.map
        (fun members -> List.fold_left (fun acc v -> acc +. weight v) 0.0 members)
        scc.Cunit.Scc.components
    in
    let total = Array.fold_left ( +. ) 0.0 cweight in
    let memo = Array.make scc.Cunit.Scc.count 0.0 in
    let rec span c =
      if memo.(c) > 0.0 then memo.(c)
      else begin
        let below = List.fold_left (fun m w -> max m (span w)) 0.0 cadj.(c) in
        memo.(c) <- cweight.(c) +. below;
        memo.(c)
      end
    in
    let critical = Array.fold_left max 1.0 (Array.init scc.Cunit.Scc.count span) in
    clamp ~lo:1.0 ~hi:1e9 ~nan:1.0 (total /. critical)
  end

(* Imbalance of the concurrently-runnable CUs: coefficient of variation of
   antichain member weights, normalised to [0, 1]. *)
let imbalance_of_cus (g : Cunit.Graph.t) : float =
  let n = Cunit.Graph.size g in
  if n < 2 then 0.0
  else begin
    let adj = Cunit.Graph.raw_succ g in
    let scc = Cunit.Scc.run adj in
    let cadj = Cunit.Scc.condense adj scc in
    let weight c =
      List.fold_left
        (fun acc v -> acc + max 1 (Cunit.Graph.cu g v).Cunit.Cu.weight)
        0 scc.Cunit.Scc.components.(c)
    in
    (* Group components by depth level; each level is an antichain. *)
    let level = Array.make scc.Cunit.Scc.count 0 in
    let rec depth v =
      if level.(v) > 0 then level.(v)
      else begin
        let d = 1 + List.fold_left (fun m w -> max m (depth w)) 0 cadj.(v) in
        level.(v) <- d;
        d
      end
    in
    Array.iteri (fun v _ -> ignore (depth v)) level;
    let by_level = Hashtbl.create 8 in
    Array.iteri
      (fun v d ->
        let prev = try Hashtbl.find by_level d with Not_found -> [] in
        Hashtbl.replace by_level d (weight v :: prev))
      level;
    let worst = ref 0.0 in
    Hashtbl.iter
      (fun _ ws ->
        match ws with
        | [] | [ _ ] -> ()
        | ws ->
            let n = float_of_int (List.length ws) in
            let mean = float_of_int (List.fold_left ( + ) 0 ws) /. n in
            let var =
              List.fold_left
                (fun acc w ->
                  let d = float_of_int w -. mean in
                  acc +. (d *. d))
                0.0 ws
              /. n
            in
            let cv = if mean = 0.0 then 0.0 else sqrt var /. mean in
            (* cv of k equal weights is 0; of one-dominates-all approaches
               sqrt(k-1); normalise to [0,1]. *)
            let norm = cv /. sqrt (n -. 1.0) in
            if norm > !worst then worst := norm)
      by_level;
    min 1.0 !worst
  end

let c_scored = Obs.counter "discovery.ranking.regions_scored"

let score_region (st : Static.t) (cures : Cunit.Top_down.result)
    (deps : Dep.Set_.t) (pet : Profiler.Pet.t) (rid : int) : score =
  Obs.Span.with_ ~phase:"discovery.ranking" @@ fun () ->
  Obs.Counter.incr c_scored;
  let cus = Cunit.Top_down.cus_of_region cures rid in
  let g = Cunit.Graph.build ~cus ~deps () in
  let coverage = coverage_of_region st pet rid in
  let local_speedup = local_speedup_of_cus g in
  let imbalance = imbalance_of_cus g in
  (* Combined rank: expected whole-program gain by Amdahl, discounted by
     imbalance; [combine] clamps every input so the result is finite. *)
  combine ~coverage ~local_speedup ~imbalance

let to_string s =
  Printf.sprintf "coverage=%.2f local-speedup=%.2f imbalance=%.2f rank=%.3f"
    s.coverage s.local_speedup s.imbalance s.combined
