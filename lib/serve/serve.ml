(* discopop serve: a resident profiling-as-a-service daemon.

   The ROADMAP's production north star is a long-lived service that amortizes
   profiling cost across many requests. This module is that service: a
   hand-rolled HTTP/1.1 daemon (no dependencies beyond Unix) that accepts MIL
   programs over POST /profile, runs them through the pipeline on a pool of
   persistent worker domains, and answers repeats from an in-process LRU in
   front of the on-disk cache.

   Shape:

     acceptor domain --> bounded connection queue --> N worker domains

   Admission control happens at the acceptor: when the queue is full the
   connection is answered 429 + Retry-After immediately, so overload degrades
   into fast rejections instead of unbounded latency. Each request carries a
   deadline; the cooperative-cancel poll the interpreter already exposes
   checks the clock, so a runaway program aborts mid-run and the request
   answers 504 without a dedicated watchdog domain. Every connection is
   HTTP/1.1 with Connection: close — one request per connection keeps the
   parser trivial and the workers stateless. *)

let now () = Unix.gettimeofday ()

(* ---- Obs wiring ---- *)

let c_ok = Obs.counter "serve.requests.ok"
let c_shed = Obs.counter "serve.requests.shed"
let c_timeout = Obs.counter "serve.requests.timeout"
let c_failed = Obs.counter "serve.requests.failed"
let c_bad = Obs.counter "serve.requests.bad"
let c_mem_hit = Obs.counter "serve.cache.mem_hit"
let c_disk_hit = Obs.counter "serve.cache.disk_hit"
let c_miss = Obs.counter "serve.cache.miss"
let g_queue = Obs.gauge "serve.queue.depth"

(* serve.latency (from enqueue, queue wait included) predates the split
   pair and stays for baseline continuity; queue_wait + service decompose
   it so an overloaded queue and a slow handler are distinguishable. *)
let h_latency = Obs.histogram "serve.latency"
let h_queue_wait = Obs.histogram "serve.queue_wait"
let h_service = Obs.histogram "serve.service"

(* ---- configuration ---- *)

type config = {
  port : int;
  jobs : int;
  queue_capacity : int;
  deadline_s : float;
  cache_dir : string option;
  cache_limits : Pipeline.Cache.limits;
  mem_capacity : int;
  profile : Pipeline.Cache.config;
  flight_capacity : int;
  slow_capacity : int;
  slow_threshold_s : float;
  flight_dump : string option;
}

let default_config =
  { port = 8123;
    jobs = 4;
    queue_capacity = 32;
    deadline_s = 30.0;
    cache_dir = None;
    cache_limits = Pipeline.Cache.no_limits;
    mem_capacity = 128;
    profile = Pipeline.Cache.default_config;
    flight_capacity = 512;
    slow_capacity = 64;
    slow_threshold_s = 0.25;
    flight_dump = None }

(* ---- trace ids ---- *)

(* Request ids are a per-daemon tag (boot time xor pid, so two daemons on
   one host do not collide) plus a process-wide sequence number. Opaque,
   cheap, and unique within any plausible flight-recorder window. *)
let id_seq = Atomic.make 0

let fresh_id_tag () =
  (int_of_float (Unix.gettimeofday () *. 1e3)
   lxor (Unix.getpid () * 2654435761))
  land 0xffffffff

let fresh_trace_id tag =
  Printf.sprintf "%08x%06x" tag (Atomic.fetch_and_add id_seq 1 land 0xffffff)

(* ---- minimal HTTP plumbing ---- *)

let max_body = 8 * 1024 * 1024

let reason_of_status = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write_substring fd s !off (len - !off) in
    if n <= 0 then raise Exit;
    off := !off + n
  done

let write_response fd ~status ?(headers = []) body =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_of_status status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  if not (List.mem_assoc "Content-Type" headers) then
    Buffer.add_string buf "Content-Type: text/plain\r\n";
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\nConnection: close\r\n\r\n"
       (String.length body));
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Exit
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | hi, lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | exception Exit -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
      let path = String.sub target 0 q in
      let rest = String.sub target (q + 1) (String.length target - q - 1) in
      let params =
        String.split_on_char '&' rest
        |> List.filter (fun s -> s <> "")
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | None -> (percent_decode kv, "")
               | Some e ->
                   ( percent_decode (String.sub kv 0 e),
                     percent_decode
                       (String.sub kv (e + 1) (String.length kv - e - 1)) ))
      in
      (path, params)

(* Read one request: buffer until the header terminator, then exactly
   Content-Length body bytes. Sockets carry a receive timeout, so a stalled
   client errors out instead of pinning a worker. *)
let read_request fd : (request, string) result =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let find_headers_end () =
    let s = Buffer.contents buf in
    let rec go i =
      if i + 3 >= String.length s then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n'
      then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec fill_headers () =
    match find_headers_end () with
    | Some i -> Ok i
    | None ->
        if Buffer.length buf > 64 * 1024 then Error "headers too large"
        else
          let n = try Unix.read fd chunk 0 4096 with _ -> 0 in
          if n = 0 then Error "connection closed before headers"
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            fill_headers ()
          end
  in
  match fill_headers () with
  | Error e -> Error e
  | Ok head_end -> (
      let head = Buffer.sub buf 0 head_end in
      match String.split_on_char '\n' head with
      | [] -> Error "empty request"
      | request_line :: header_lines -> (
          let strip s = String.trim s in
          match String.split_on_char ' ' (strip request_line) with
          | meth :: target :: _ ->
              let headers =
                List.filter_map
                  (fun line ->
                    match String.index_opt line ':' with
                    | None -> None
                    | Some c ->
                        Some
                          ( String.lowercase_ascii (strip (String.sub line 0 c)),
                            strip
                              (String.sub line (c + 1)
                                 (String.length line - c - 1)) ))
                  header_lines
              in
              let content_length =
                match List.assoc_opt "content-length" headers with
                | None -> 0
                | Some v -> ( try int_of_string (strip v) with _ -> -1)
              in
              if content_length < 0 || content_length > max_body then
                Error "bad content-length"
              else begin
                let body_start = head_end + 4 in
                let rec fill_body () =
                  if Buffer.length buf - body_start >= content_length then
                    Ok ()
                  else
                    let n = try Unix.read fd chunk 0 4096 with _ -> 0 in
                    if n = 0 then Error "connection closed before body"
                    else begin
                      Buffer.add_subbytes buf chunk 0 n;
                      fill_body ()
                    end
                in
                match fill_body () with
                | Error e -> Error e
                | Ok () ->
                    let body = Buffer.sub buf body_start content_length in
                    let path, query = parse_target target in
                    Ok { meth; path; query; headers; body }
              end
          | _ -> Error "malformed request line"))

(* ---- request-level profiler configuration ---- *)

let profile_config_of_query ~(base : Pipeline.Cache.config) query :
    (Pipeline.Cache.config, string) result =
  let ( let* ) = Result.bind in
  let int_param name v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad %s: %s" name v)
  in
  let bool_param name v =
    match v with
    | "true" | "1" -> Ok true
    | "false" | "0" -> Ok false
    | _ -> Error (Printf.sprintf "bad %s: %s" name v)
  in
  List.fold_left
    (fun acc (k, v) ->
      let* (c : Pipeline.Cache.config) = acc in
      match k with
      | "shadow" -> (
          match String.split_on_char ':' v with
          | [ "perfect" ] -> Ok { c with Pipeline.Cache.shadow = Profiler.Engine.Perfect }
          | [ "paged" ] -> Ok { c with Pipeline.Cache.shadow = Profiler.Engine.Paged }
          | [ "signature"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 ->
                  Ok { c with Pipeline.Cache.shadow = Profiler.Engine.Signature n }
              | _ -> Error (Printf.sprintf "bad signature slots: %s" n))
          | _ -> Error (Printf.sprintf "bad shadow: %s" v))
      | "skip" ->
          let* b = bool_param "skip" v in
          Ok { c with Pipeline.Cache.skip = b }
      | "workers" ->
          let* n = int_param "workers" v in
          if n < 0 then Error "workers must be >= 0"
          else Ok { c with Pipeline.Cache.workers = n }
      | "threads" ->
          let* n = int_param "threads" v in
          if n < 1 then Error "threads must be >= 1"
          else Ok { c with Pipeline.Cache.threads = n }
      | _ -> Ok c (* name/format/deadline/entry handled elsewhere *))
    (Ok base) query

(* ---- the daemon ---- *)

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mem : Pipeline.Mem_cache.t;
  queue : (Unix.file_descr * float) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  stopping : bool Atomic.t;
  flight : Obs.Flight.t;
  id_tag : int;
  mutable acceptor : unit Domain.t option;
  mutable workers : unit Domain.t list;
}

let port t = t.bound_port
let mem_cache t = t.mem
let flight t = t.flight

(* Per-request response context: the trace id rides every response as
   X-Trace-Id, and the handler's status / cache tier are captured here so
   the flight record matches what the client was actually told. *)
type ctx = {
  cx_id : string;
  cx_fd : Unix.file_descr;
  mutable cx_status : int;
  mutable cx_tier : string;
}

let respond cx ~status ?(headers = []) body =
  cx.cx_status <- status;
  write_response cx.cx_fd ~status
    ~headers:(("X-Trace-Id", cx.cx_id) :: headers)
    body
let request_stop t =
  Atomic.set t.stopping true;
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let stopping t = Atomic.get t.stopping

(* ---- /profile ---- *)

let handle_profile t (req : request) ~(enqueued : float) cx =
  let qp name = List.assoc_opt name req.query in
  let name = Option.value (qp "name") ~default:"posted" in
  let format = Option.value (qp "format") ~default:"summary" in
  match profile_config_of_query ~base:t.cfg.profile req.query with
  | Error msg ->
      Obs.Counter.incr c_bad;
      respond cx ~status:400 (msg ^ "\n")
  | Ok config -> (
      match
        Obs.Span.with_ ~phase:"serve.parse" (fun () ->
            Mil.Parse.program ~name ?entry:(qp "entry") req.body)
      with
      | Error msg ->
          Obs.Counter.incr c_bad;
          respond cx ~status:400 ("MIL parse error: " ^ msg ^ "\n")
      | Ok prog -> (
          let deadline_s =
            match Option.bind (qp "deadline") float_of_string_opt with
            | Some d -> Float.min d t.cfg.deadline_s
            | None -> t.cfg.deadline_s
          in
          let deadline_at = enqueued +. deadline_s in
          let cancelled () =
            Atomic.get t.stopping || now () > deadline_at
          in
          let key = Pipeline.Cache.key config prog in
          let respond_entry ~cache_tag (deps, summary) =
            cx.cx_tier <- cache_tag;
            Obs.Span.with_ ~phase:"serve.render" @@ fun () ->
            let entries =
              match Discovery.Suggestion.summary_of_string summary with
              | Ok es -> es
              | Error _ -> []
            in
            let headers = [ ("X-Cache", cache_tag) ] in
            match format with
            | "depfile" ->
                respond cx ~status:200 ~headers
                  (Profiler.Depfile.render deps)
            | "json" ->
                let open Obs.Json in
                respond cx ~status:200
                  ~headers:(("Content-Type", "application/json") :: headers)
                  (pretty
                     (Obj
                        [ ("name", String name);
                          ("key", String key);
                          ("cache", String cache_tag);
                          ("deps", Int (Profiler.Dep.Set_.cardinal deps));
                          ("suggestions", Int (List.length entries));
                          ("summary", String summary) ])
                   ^ "\n")
            | _ -> respond cx ~status:200 ~headers summary
          in
          match
            Obs.Span.with_ ~phase:"serve.cache_lookup" (fun () ->
                Pipeline.lookup ~mem:t.mem ?dir:t.cfg.cache_dir ~key ())
          with
          | Some entry, tier ->
              Obs.Counter.incr
                (match tier with
                | Pipeline.Mem -> c_mem_hit
                | Pipeline.Disk -> c_disk_hit
                | Pipeline.Uncached -> c_miss (* unreachable on a hit *));
              Obs.Counter.incr c_ok;
              respond_entry
                ~cache_tag:(match tier with Pipeline.Mem -> "mem" | _ -> "disk")
                entry
          | None, _ -> (
              Obs.Counter.incr c_miss;
              let job =
                Pipeline.program_job ?cache_dir:t.cfg.cache_dir
                  ~cache_limits:t.cfg.cache_limits ~mem:t.mem ~name ~config
                  prog
              in
              match Pipeline.run_job ~cancelled job with
              | Pipeline.Ok_ ok ->
                  Obs.Counter.incr c_ok;
                  (* The job carries its dependence set + summary, so
                     depfile/json render from the fresh result even when no
                     cache tier is configured. *)
                  respond_entry ~cache_tag:"miss" ok.Pipeline.jr_entry
              | Pipeline.Timed_out ->
                  Obs.Counter.incr c_timeout;
                  respond cx ~status:504
                    (Printf.sprintf "deadline of %.3fs exceeded\n" deadline_s)
              | Pipeline.Failed msg ->
                  Obs.Counter.incr c_failed;
                  respond cx ~status:500 (msg ^ "\n"))))

(* ---- GET /metrics, /trace, /requests ---- *)

let handle_metrics cx (req : request) =
  match List.assoc_opt "format" req.query with
  | None | Some "json" ->
      respond cx ~status:200
        ~headers:[ ("Content-Type", "application/json") ]
        (Obs.Json.pretty (Obs.snapshot ()) ^ "\n")
  | Some "prometheus" ->
      respond cx ~status:200
        ~headers:
          [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ]
        (Obs.prometheus ())
  | Some other ->
      Obs.Counter.incr c_bad;
      respond cx ~status:400
        (Printf.sprintf "unknown metrics format: %s\n" other)

let handle_trace t cx (req : request) =
  match List.assoc_opt "id" req.query with
  | None | Some "" ->
      Obs.Counter.incr c_bad;
      respond cx ~status:400 "missing id query parameter\n"
  | Some id -> (
      match Obs.Flight.find t.flight id with
      | Some r ->
          respond cx ~status:200
            ~headers:[ ("Content-Type", "application/json") ]
            (Obs.Json.pretty (Obs.Flight.chrome_trace r) ^ "\n")
      | None ->
          respond cx ~status:404
            (Printf.sprintf "no record of trace %s in the flight window\n" id))

(* ---- connection handling ---- *)

let handle_conn t ~(enqueued : float) fd =
  let started = now () in
  let started_ns = Obs.now_ns () in
  let queue_ns = max 0 (int_of_float ((started -. enqueued) *. 1e9)) in
  let cx =
    { cx_id = fresh_trace_id t.id_tag;
      cx_fd = fd;
      cx_status = 0;
      cx_tier = "-" }
  in
  (* Collect every span the handler runs — parse, cache lookup, the
     profiler's own phases, rendering — into this request's tree. *)
  Obs.Req.start ();
  let route = ref "(bad)" in
  let profile_req = ref false in
  let dispatch () =
    match read_request fd with
    | Error msg ->
        Obs.Counter.incr c_bad;
        respond cx ~status:400 (msg ^ "\n")
    | Ok req -> (
        route := req.meth ^ " " ^ req.path;
        match (req.meth, req.path) with
        | "GET", "/health" -> respond cx ~status:200 "ok\n"
        | "GET", "/metrics" -> handle_metrics cx req
        | "GET", "/trace" -> handle_trace t cx req
        | "GET", "/requests" ->
            respond cx ~status:200
              ~headers:[ ("Content-Type", "application/json") ]
              (Obs.Json.pretty (Obs.Flight.to_json t.flight) ^ "\n")
        | "POST", "/shutdown" ->
            respond cx ~status:200 "shutting down\n";
            request_stop t
        | "POST", "/profile" ->
            profile_req := true;
            handle_profile t req ~enqueued cx
        | ( _,
            ( "/profile" | "/shutdown" | "/health" | "/metrics" | "/trace"
            | "/requests" ) ) ->
            Obs.Counter.incr c_bad;
            respond cx ~status:405 "method not allowed\n"
        | _ ->
            Obs.Counter.incr c_bad;
            respond cx ~status:404 "not found\n")
  in
  let record () =
    (* The queue wait predates the collector; splice it in as a synthetic
       top-level span so the trace starts when the request did. *)
    let spans =
      { Obs.Req.sp_name = "queue_wait";
        sp_start_ns = started_ns - queue_ns;
        sp_dur_ns = queue_ns;
        sp_depth = 0 }
      :: Obs.Req.finish ()
    in
    let done_at = now () in
    let service_ns = max 0 (int_of_float ((done_at -. started) *. 1e9)) in
    if !profile_req then begin
      Obs.Histogram.observe h_latency
        (max 0 (int_of_float ((done_at -. enqueued) *. 1e9)));
      Obs.Histogram.observe h_queue_wait queue_ns;
      Obs.Histogram.observe h_service service_ns
    end;
    Obs.Flight.record t.flight
      { Obs.Flight.fr_id = cx.cx_id;
        fr_route = !route;
        fr_status = cx.cx_status;
        fr_tier = cx.cx_tier;
        fr_queue_ns = queue_ns;
        fr_service_ns = service_ns;
        fr_done_at = done_at;
        fr_spans = spans }
  in
  match dispatch () with
  | () -> record ()
  | exception e ->
      record ();
      raise e

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping: drain done *)
    else begin
      let fd, enqueued = Queue.pop t.queue in
      Obs.Gauge.set_int g_queue (Queue.length t.queue);
      Mutex.unlock t.lock;
      (try handle_conn t ~enqueued fd with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let admit t fd =
  Unix.clear_nonblock fd;
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  let depth = Queue.length t.queue in
  if depth >= t.cfg.queue_capacity || Atomic.get t.stopping then begin
    Mutex.unlock t.lock;
    (* Load shed at admission: answer before any parsing so a full queue
       costs the server almost nothing. Shed requests still get a trace id
       and a flight record — an invisible rejection is the exact failure
       mode the recorder exists to explain. *)
    Obs.Counter.incr c_shed;
    let id = fresh_trace_id t.id_tag in
    (try
       write_response fd ~status:429
         ~headers:[ ("Retry-After", "1"); ("X-Trace-Id", id) ]
         "server at capacity\n"
     with _ -> ());
    Obs.Flight.record t.flight
      { Obs.Flight.fr_id = id;
        fr_route = "(shed)";
        fr_status = 429;
        fr_tier = "-";
        fr_queue_ns = 0;
        fr_service_ns = 0;
        fr_done_at = now ();
        fr_spans = [] };
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    Queue.push (fd, now ()) t.queue;
    Obs.Gauge.set_int g_queue (depth + 1);
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR),
                  _,
                  _ ) ->
              ()
          | fd, _ -> admit t fd));
      loop ()
    end
  in
  (* Unblock on a listener closed out from under us during shutdown. *)
  try loop () with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()

let start (cfg : config) : t =
  (* A worker writing to a connection the client already closed must see
     EPIPE, not die of SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Obs.enable ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    { cfg;
      listen_fd;
      bound_port;
      mem = Pipeline.Mem_cache.create ~capacity:cfg.mem_capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = Atomic.make false;
      flight =
        Obs.Flight.create ~capacity:cfg.flight_capacity
          ~slow_capacity:cfg.slow_capacity
          ~slow_threshold_s:cfg.slow_threshold_s;
      id_tag = fresh_id_tag ();
      acceptor = None;
      workers = [] }
  in
  t.workers <-
    List.init (max 1 cfg.jobs) (fun i ->
        Domain.spawn (fun () ->
            Obs.Trace.set_track (Printf.sprintf "serve worker %d" i);
            worker_loop t));
  t.acceptor <-
    Some
      (Domain.spawn (fun () ->
           Obs.Trace.set_track "serve acceptor";
           accept_loop t));
  t

let stop t =
  request_stop t;
  Option.iter Domain.join t.acceptor;
  t.acceptor <- None;
  List.iter Domain.join t.workers;
  t.workers <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Connections still queued were never handled; close them so clients see
     EOF promptly rather than a timeout. *)
  Queue.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.queue;
  Queue.clear t.queue

let run (cfg : config) : unit =
  let t = start cfg in
  let on_signal _ = request_stop t in
  let restore =
    List.filter_map
      (fun s ->
        try Some (s, Sys.signal s (Sys.Signal_handle on_signal))
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  Printf.printf "discopop serve: listening on 127.0.0.1:%d (%d workers, queue %d, deadline %.1fs)\n%!"
    t.bound_port (max 1 cfg.jobs) cfg.queue_capacity cfg.deadline_s;
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.05
  done;
  stop t;
  List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) restore;
  (* Dump the flight recorder on the way out: the last window of requests
     (and retained slow ones) survives the daemon for post-mortems. *)
  (match cfg.flight_dump with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.pretty (Obs.Flight.to_json t.flight));
      output_char oc '\n';
      close_out oc;
      Printf.printf
        "discopop serve: flight recorder (%d requests, %d slow) -> %s\n%!"
        (Obs.Flight.total t.flight)
        (Obs.Flight.slow_total t.flight)
        path);
  Printf.printf "discopop serve: stopped\n%!"

(* ---- a minimal HTTP client (tests, bench, smoke) ---- *)

module Client = struct
  type response = {
    status : int;
    headers : (string * string) list;
    body : string;
  }

  let read_all fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
    in
    go ();
    Buffer.contents buf

  let split_head raw =
    let n = String.length raw in
    let rec go i =
      if i + 3 >= n then None
      else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
              && raw.[i + 3] = '\n'
      then Some (String.sub raw 0 i, String.sub raw (i + 4) (n - i - 4))
      else go (i + 1)
    in
    go 0

  let parse_response raw : (response, string) result =
    match split_head raw with
    | None -> Error "no header terminator in response"
    | Some (head, body) -> (
        match String.split_on_char '\n' head with
        | status_line :: header_lines -> (
            match String.split_on_char ' ' (String.trim status_line) with
            | _http :: code :: _ -> (
                match int_of_string_opt code with
                | None -> Error ("bad status: " ^ status_line)
                | Some status ->
                    let headers =
                      List.filter_map
                        (fun line ->
                          match String.index_opt line ':' with
                          | None -> None
                          | Some c ->
                              Some
                                ( String.lowercase_ascii
                                    (String.trim (String.sub line 0 c)),
                                  String.trim
                                    (String.sub line (c + 1)
                                       (String.length line - c - 1)) ))
                        header_lines
                    in
                    Ok { status; headers; body })
            | _ -> Error ("bad status line: " ^ status_line))
        | [] -> Error "empty response")

  let request ?(meth = "GET") ?(body = "") ~port path :
      (response, string) result =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
        with
        | exception Unix.Unix_error (e, _, _) ->
            Error ("connect: " ^ Unix.error_message e)
        | () -> (
            let req =
              Printf.sprintf
                "%s %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
                meth path port (String.length body) body
            in
            match write_all fd req with
            | exception _ -> Error "write failed"
            | () -> parse_response (read_all fd)))

  let get ~port path = request ~meth:"GET" ~port path
  let post ~port ~body path = request ~meth:"POST" ~body ~port path
end
