(** [discopop serve]: a resident profiling-as-a-service daemon.

    A hand-rolled HTTP/1.1 server (plain [Unix] sockets, no dependencies)
    that keeps the pipeline warm across requests: one acceptor domain feeds
    a bounded connection queue drained by a pool of persistent worker
    domains, with an in-process {!Pipeline.Mem_cache} LRU in front of the
    on-disk result cache.

    Every response carries an [X-Trace-Id] header; the id resolves through
    [GET /trace] while the request is within the flight-recorder window
    ({!Obs.Flight}), which retains the last [flight_capacity] completed
    requests plus an always-retained ring of slow ones.

    Endpoints (all connections are one-request, [Connection: close]):

    - [POST /profile] — body is MIL source ({!Mil.Parse.program} grammar).
      Query parameters: [name], [entry], [shadow=perfect|paged|signature:N],
      [skip=true|false], [workers=N], [threads=N], [deadline=SECONDS]
      (clamped to the server deadline), [format=summary|depfile|json].
      Answers [200] with the suggestion summary (or Depfile v2 / a JSON
      envelope), [400] on parse or parameter errors, [504] when the deadline
      expires mid-profile (cooperative cancel), [500] when the job raises.
      The [X-Cache] response header says which tier answered:
      [mem], [disk] or [miss] (a miss renders from the freshly computed
      result, so [format=depfile|json] work with no cache configured).
    - [GET /metrics] — the {!Obs} registry snapshot as JSON, including
      [serve.requests.{ok,shed,timeout,failed,bad}] and
      [serve.cache.{mem_hit,disk_hit,miss}] counters, the
      [serve.queue.depth] gauge and the [serve.latency] /
      [serve.queue_wait] / [serve.service] histograms (latency from
      enqueue = queue wait + service). [?format=prometheus] renders the
      same registry in the Prometheus text format ({!Obs.prometheus});
      unknown formats answer [400].
    - [GET /trace?id=ID] — one request's span tree (queue-wait, parse,
      cache lookup, the profiler's own phases, render) as Chrome Trace
      Event JSON ({!Obs.Flight.chrome_trace}); [404] when the id has
      left the flight window, [400] without an [id].
    - [GET /requests] — both flight-recorder rings as JSON
      ({!Obs.Flight.to_json}).
    - [GET /health] — [200 ok].
    - [POST /shutdown] — answers [200], then stops the daemon cleanly.

    Admission control: a connection arriving while the queue holds
    [queue_capacity] others is answered [429] with [Retry-After: 1] straight
    from the acceptor, so overload degrades into cheap rejections — but the
    rejection still carries an [X-Trace-Id] and lands in the flight recorder
    as a [("(shed)", 429)] record. *)

type config = {
  port : int;              (** 0 = pick an ephemeral port (see {!port}) *)
  jobs : int;              (** worker domains (min 1) *)
  queue_capacity : int;    (** pending connections before load-shedding *)
  deadline_s : float;      (** per-request processing deadline *)
  cache_dir : string option;  (** disk cache tier; [None] = memory only *)
  cache_limits : Pipeline.Cache.limits;
  (** disk-tier retention, enforced by a sweep at each publish *)
  mem_capacity : int;      (** LRU entries; 0 disables the memory tier *)
  profile : Pipeline.Cache.config;  (** per-request defaults *)
  flight_capacity : int;   (** flight-recorder main ring (min 1) *)
  slow_capacity : int;     (** slow-request ring (min 1) *)
  slow_threshold_s : float;  (** service time that counts as slow *)
  flight_dump : string option;
  (** write both rings as JSON here on {!run} shutdown *)
}

val default_config : config
(** Port 8123, 4 workers, queue 32, 30s deadline, no disk cache, 128 LRU
    entries, {!Pipeline.Cache.default_config}; flight ring 512 + 64 slow
    at a 0.25s threshold, no dump file. *)

type t

val start : config -> t
(** Bind, listen on 127.0.0.1, and spawn the acceptor and worker domains.
    Enables the {!Obs} registry (the [/metrics] endpoint needs it) and
    ignores [SIGPIPE]. *)

val port : t -> int
(** The bound port — useful with [config.port = 0]. *)

val mem_cache : t -> Pipeline.Mem_cache.t
(** The daemon's memory cache tier (tests inspect hit counts). *)

val flight : t -> Obs.Flight.t
(** The daemon's flight recorder (tests inspect records directly). *)

val request_stop : t -> unit
(** Flag shutdown and wake every domain; returns immediately. In-flight
    profile jobs see the flag through their cancel poll. *)

val stopping : t -> bool

val stop : t -> unit
(** {!request_stop}, then join the acceptor and workers (queued connections
    drain first), close the listener and any still-queued connections. *)

val run : config -> unit
(** [start], then block until [POST /shutdown], SIGINT or SIGTERM, then
    {!stop}. The CLI entry point. *)

(** A minimal HTTP/1.1 client for the daemon (tests, bench harness, smoke
    scripts): one blocking request per call over a fresh connection. *)
module Client : sig
  type response = {
    status : int;
    headers : (string * string) list;  (** names lowercased *)
    body : string;
  }

  val request :
    ?meth:string -> ?body:string -> port:int -> string ->
    (response, string) result

  val get : port:int -> string -> (response, string) result
  val post : port:int -> body:string -> string -> (response, string) result
end
