(** The MIL optimization-pass framework (ROADMAP item 3): named
    [program -> program] passes with per-pass Obs click counters and a
    fixpoint pipeline driver.

    Counters, under the pipeline's Obs registry:
    - [pass.<name>.fired] — invocations that changed the program
    - [pass.<name>.stmts_removed] / [pass.<name>.exprs_folded] — work done
    - [pass.<name>.refused] — the pass skipped the whole program because it
      could not prove safety (restructuring passes on programs containing
      sync constructs); the program is returned untouched, never silently
      misrewritten
    - [pass.pipeline.rounds] — fixpoint rounds executed

    Every pass preserves the observable behaviour compared by
    [Transform.Validate.diff_observations] (entry result, final globals,
    print stream) and keeps the [line] of every surviving statement;
    statements a pass introduces reuse the line of the construct they
    replace, so an optimized program's depfile line keys are a subset of
    the seed's. *)

val names : unit -> string list
(** Registered pass names, in default pipeline order-independent registry
    order. *)

val doc : string -> string option
(** One-line description of a pass, if registered. *)

val default_pipeline : string list
(** The standard cleanup pipeline:
    fold → prop → simplify → dce → unroll → hoist. *)

val sequential_program : Ast.program -> bool
(** No [Par]/[Lock]/[Unlock]/[Barrier] anywhere — the precondition for
    restructuring passes (statement counts drive the fiber scheduler's
    shared PRNG, so only sequential programs may change them). *)

type report = {
  program : Ast.program;  (** the optimized program (input is not mutated) *)
  rounds : int;           (** fixpoint rounds run *)
  changes : int;          (** total rewrites across all rounds *)
  per_pass : (string * int) list;  (** changes attributed to each pass *)
}

val run :
  ?passes:string list ->
  ?max_rounds:int ->
  ?debug:bool ->
  Ast.program ->
  (report, string) result
(** Run the selected passes (default {!default_pipeline}) in list order,
    repeating the whole sequence until a round makes no change or
    [max_rounds] (default 8) is hit. [debug] traces per-pass rewrite counts
    to stderr. [Error] names the first unknown pass. *)
