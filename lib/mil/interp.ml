(* The MIL instrumenting interpreter.

   Executing a MIL program under this interpreter produces the event stream of
   {!Trace.Event}: one access event per dynamic memory instruction plus region
   events. This is the substitute for DiscoPoP's LLVM instrumentation pass and
   runtime library hooks.

   Thread-parallel MIL programs ([Par] blocks with [Lock]/[Unlock]) run as
   cooperative fibers over OCaml effects with a seeded pseudo-random scheduler,
   so that interleavings are reproducible yet varied. Accesses carry a global
   timestamp and a [locked] flag, which is what the profiler's race detection
   (§2.3.4) consumes. *)

open Ast
module Event = Trace.Event
module Intern = Trace.Intern

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* ---- deterministic PRNG (xorshift) used by MIL's [rand] builtin and by the
   fiber scheduler ---- *)
module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (if seed = 0 then 0x9e3779b9 else seed) }

  let next t =
    let s = t.s in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    t.s <- s land max_int;
    t.s

  let int t bound = if bound <= 0 then 0 else next t mod bound
end

(* ---- effects for cooperative threading ---- *)

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) list -> unit Effect.t
  | Acquire : string -> unit Effect.t
  | Release : string -> unit Effect.t
  | Await_barrier : string -> unit Effect.t

(* ---- bindings and environments ---- *)

(* A binding carries its variable's interned symbol ({!Trace.Intern.Sym}) so
   the per-access hot path never re-hashes the name string. *)
type binding =
  | Bscalar of { addr : int; sym : int }
  | Barray of { base : int; len : int; sym : int }

type env = {
  vars : (string, binding) Hashtbl.t;  (* function-local bindings *)
  globals : (string, binding) Hashtbl.t;
}

(* Thread control block. *)
type tcb = {
  tid : int;
  mutable lstack : int;               (* loop stack ({!Intern.Lstack} id) *)
  mutable held : int;                 (* number of locks currently held *)
  mutable finished : bool;
  group : int;                        (* spawn group, for barriers *)
  mutable group_live : int ref;       (* live threads in the group *)
}

exception Return_exc of int
exception Break_exc
exception Cancelled

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable loop_iterations : int;
  mutable calls : int;
}

(* Record-free access sink: the fields of an [Event.access], passed as
   labeled arguments so the hot serial path can hand them straight to the
   profiler engine without materialising the record. *)
type access_sink =
  kind:Event.kind ->
  addr:int ->
  var:int ->
  line:int ->
  thread:int ->
  time:int ->
  op:int ->
  lstack:int ->
  locked:bool ->
  unit

type state = {
  prog : program;
  emit : Event.t -> unit;
  on_access : access_sink option;
      (* when set, in-order accesses bypass [emit] (and the [Event.Access]
         allocation) entirely; scrambled/delayed accesses still go through
         [emit] as records via [pending] *)
  instrument : bool;
  mutable mem : int array;
  mutable brk : int;
  free_scalars : int Stack.t;
  free_arrays : (int, int list) Hashtbl.t;  (* size -> bases *)
  mutable time : int;
  op_ids : (int, int) Hashtbl.t;  (* packed (line,kind,occ) -> op id *)
  mutable n_ops : int;
  mutable occ : int;              (* occurrence counter within a statement *)
  rng : Rng.t;
  globals_env : (string, binding) Hashtbl.t;
  on_print : int list -> unit;
  mutable loop_inst : int;
  mutable cur : tcb;
  mutable live_threads : int;
  mutable next_tid : int;
  stats : stats;
  (* Optional reordering of unlocked pushes, to exercise race detection: the
     event as seen by the profiler may be emitted out of timestamp order. *)
  scramble_unlocked : bool;
  mutable pending : Event.t list;  (* delayed unlocked accesses *)
  (* Cooperative cancellation: polled every [tick_mask]+1 statements so a
     deadline watchdog (batch driver, serve daemon) can stop a run without
     per-statement cost. *)
  cancelled : unit -> bool;
  mutable ticks : int;
}

let grow st needed =
  if st.brk + needed > Array.length st.mem then begin
    let cap = max (2 * Array.length st.mem) (st.brk + needed) in
    let m = Array.make cap 0 in
    Array.blit st.mem 0 m 0 st.brk;
    st.mem <- m
  end

let alloc_scalar st =
  match Stack.pop_opt st.free_scalars with
  | Some a -> a
  | None ->
      grow st 1;
      let a = st.brk in
      st.brk <- st.brk + 1;
      a

let alloc_array st size =
  let size = max size 1 in
  match Hashtbl.find_opt st.free_arrays size with
  | Some (b :: rest) ->
      Hashtbl.replace st.free_arrays size rest;
      Array.fill st.mem b size 0;
      b
  | Some [] | None ->
      grow st size;
      let b = st.brk in
      st.brk <- st.brk + size;
      b

let free_scalar st a = Stack.push a st.free_scalars

let free_array st base size =
  let size = max size 1 in
  let prev = try Hashtbl.find st.free_arrays size with Not_found -> [] in
  Hashtbl.replace st.free_arrays size (base :: prev)

(* ---- event emission ---- *)

let flush_pending st =
  (* Emit delayed unlocked accesses in a scrambled cross-thread
     interleaving. A profiling thread pushes its own accesses in program
     order — only the interleaving between threads is nondeterministic
     (§2.3.4) — so per-thread order is preserved and timestamp reversals
     (the race signal) are only ever manufactured across threads. *)
  let evs = List.rev st.pending in
  st.pending <- [];
  let tid = function
    | Event.Access a -> a.Event.thread
    | Event.Region _ -> -1
  in
  let tids = List.sort_uniq compare (List.map tid evs) in
  let queues =
    List.map (fun t -> ref (List.filter (fun e -> tid e = t) evs)) tids
  in
  let rec drain () =
    match List.filter (fun q -> !q <> []) queues with
    | [] -> ()
    | qs ->
        let q = List.nth qs (Rng.int st.rng (List.length qs)) in
        (match !q with
        | ev :: rest ->
            st.emit ev;
            q := rest
        | [] -> assert false);
        drain ()
  in
  drain ()

let intern_op st line kind =
  let key = (line * 64 + st.occ) * 2 + (match kind with Event.Read -> 0 | Event.Write -> 1) in
  st.occ <- st.occ + 1;
  match Hashtbl.find_opt st.op_ids key with
  | Some id -> id
  | None ->
      let id = st.n_ops in
      st.n_ops <- id + 1;
      Hashtbl.replace st.op_ids key id;
      id

let emit_access st ~kind ~addr ~var ~line =
  (match kind with
  | Event.Read -> st.stats.reads <- st.stats.reads + 1
  | Event.Write -> st.stats.writes <- st.stats.writes + 1);
  if st.instrument then begin
    st.time <- st.time + 1;
    let op = intern_op st line kind in
    let locked = st.cur.held > 0 in
    if st.scramble_unlocked && st.live_threads > 1 && not locked then begin
      (* Delayed accesses must exist as records: the scrambler buffers and
         reorders them before emission. *)
      let a =
        { Event.kind; addr; var; line; thread = st.cur.tid; time = st.time;
          op; lstack = st.cur.lstack; locked }
      in
      st.pending <- Event.Access a :: st.pending;
      if List.length st.pending > 4 then flush_pending st
    end
    else begin
      if st.pending <> [] then flush_pending st;
      match st.on_access with
      | Some sink ->
          sink ~kind ~addr ~var ~line ~thread:st.cur.tid ~time:st.time ~op
            ~lstack:st.cur.lstack ~locked
      | None ->
          st.emit
            (Event.Access
               { Event.kind; addr; var; line; thread = st.cur.tid;
                 time = st.time; op; lstack = st.cur.lstack; locked })
    end
  end

let emit_region st r =
  if st.instrument then begin
    (* A deallocation ends the addresses' lifetime: delayed accesses still
       pending from before it must not be emitted after it, or the engine's
       lifetime analysis would attribute them to the slot's next owner and
       manufacture cross-thread dependences on reused stack slots. *)
    (match r with
    | Event.Dealloc _ when st.pending <> [] -> flush_pending st
    | _ -> ());
    st.emit (Event.Region r)
  end

(* ---- variable lookup ---- *)

let lookup env x =
  match Hashtbl.find_opt env.vars x with
  | Some b -> Some b
  | None -> Hashtbl.find_opt env.globals x

let lookup_exn env x =
  match lookup env x with
  | Some b -> b
  | None -> error "unbound variable %s" x

(* ---- expression evaluation ---- *)

let truthy n = n <> 0

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | And -> if truthy a && truthy b then 1 else 0
  | Or -> if truthy a || truthy b then 1 else 0
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Min -> min a b
  | Max -> max a b

let maybe_yield st = if st.live_threads > 1 then Effect.perform Yield

let rec eval st env line (e : expr) : int =
  match e with
  | Int n -> n
  | Var x -> (
      match lookup_exn env x with
      | Bscalar { addr; sym } ->
          emit_access st ~kind:Event.Read ~addr ~var:sym ~line;
          st.mem.(addr)
      | Barray { base; _ } -> base)
  | Idx (a, ie) -> (
      let idx = eval st env line ie in
      match lookup_exn env a with
      | Barray { base; len; sym } ->
          if idx < 0 || idx >= len then error "index %d out of bounds for %s (len %d) at line %d" idx a len line;
          let addr = base + idx in
          emit_access st ~kind:Event.Read ~addr ~var:sym ~line;
          st.mem.(addr)
      | Bscalar _ -> error "%s is not an array (line %d)" a line)
  | Len a -> (
      match lookup_exn env a with
      | Barray { len; _ } -> len
      | Bscalar _ -> error "%s is not an array (line %d)" a line)
  | Bin (op, e1, e2) ->
      let a = eval st env line e1 in
      (* Short-circuit semantics for And/Or would hide reads; MIL evaluates
         both operands, which matches how the workloads are written. *)
      let b = eval st env line e2 in
      apply_binop op a b
  | Neg e1 -> -eval st env line e1
  | Not e1 -> if truthy (eval st env line e1) then 0 else 1
  | Call (f, args) -> eval_call st env line f args

and eval_call st env line f args =
  match List.find_opt (fun g -> g.fname = f) st.prog.funcs with
  | Some callee -> call_user st env line callee args
  | None -> call_builtin st env line f args

and call_builtin st env line f args =
  let evals () = List.map (eval st env line) args in
  match (f, args) with
  | "rand", [ bound ] ->
      let b = eval st env line bound in
      Rng.int st.rng (max b 1)
  | "rand", [] -> Rng.next st.rng land 0xFFFF
  | "abs", [ e ] -> abs (eval st env line e)
  | "print", _ ->
      st.on_print (evals ());
      0
  | _ -> error "unknown function %s (line %d)" f line

and call_user st env line callee args =
  st.stats.calls <- st.stats.calls + 1;
  let n_scalars = List.length callee.params in
  let scalar_args = List.filteri (fun k _ -> k < n_scalars) args in
  let array_args = List.filteri (fun k _ -> k >= n_scalars) args in
  if List.length array_args <> List.length callee.arr_params then
    error "call %s: expected %d array args, got %d (line %d)" callee.fname
      (List.length callee.arr_params) (List.length array_args) line;
  let scalar_vals = List.map (eval st env line) scalar_args in
  let array_bindings =
    List.map
      (fun a ->
        match a with
        | Var name -> (
            match lookup_exn env name with
            | Barray _ as b -> b
            | Bscalar _ -> error "call %s: %s is not an array" callee.fname name)
        | _ -> error "call %s: array arguments must be variables" callee.fname)
      array_args
  in
  let fenv = { vars = Hashtbl.create 8; globals = st.globals_env } in
  emit_region st (Event.Func_entry { name = callee.fname; line = callee.fline; call_line = line });
  (* Pass-by-value scalars: copy into fresh locations; the initialising writes
     are attributed to the function header line. *)
  let saved_occ = st.occ in
  st.occ <- 0;
  let param_addrs =
    List.map2
      (fun p v ->
        let addr = alloc_scalar st in
        st.mem.(addr) <- v;
        emit_access st ~kind:Event.Write ~addr ~var:(Intern.Sym.intern p)
          ~line:callee.fline;
        Hashtbl.replace fenv.vars p (Bscalar { addr; sym = Intern.Sym.intern p });
        (addr, p))
      callee.params scalar_vals
  in
  st.occ <- saved_occ;
  List.iter2
    (fun p b ->
      (* By-reference arrays keep their addresses but are accessed — and
         reported — under the callee's parameter name. *)
      let b =
        match b with
        | Barray { base; len; _ } ->
            Barray { base; len; sym = Intern.Sym.intern p }
        | Bscalar _ -> b
      in
      Hashtbl.replace fenv.vars p b)
    callee.arr_params array_bindings;
  let result =
    try
      exec_block st fenv callee.body;
      0
    with Return_exc v -> v
  in
  List.iter (fun (addr, _) -> free_scalar st addr) param_addrs;
  if param_addrs <> [] then
    emit_region st
      (Event.Dealloc { addrs = List.map (fun (a, p) -> (a, 1, p)) param_addrs });
  emit_region st (Event.Func_exit { name = callee.fname; line = callee.fline });
  result

and assign st env line (l : lhs) v =
  match l with
  | Lvar x -> (
      match lookup_exn env x with
      | Bscalar { addr; sym } ->
          st.mem.(addr) <- v;
          emit_access st ~kind:Event.Write ~addr ~var:sym ~line
      | Barray _ -> error "cannot assign to array %s (line %d)" x line)
  | Lidx (a, ie) -> (
      let idx = eval st env line ie in
      match lookup_exn env a with
      | Barray { base; len; sym } ->
          if idx < 0 || idx >= len then error "index %d out of bounds for %s (len %d) at line %d" idx a len line;
          let addr = base + idx in
          st.mem.(addr) <- v;
          emit_access st ~kind:Event.Write ~addr ~var:sym ~line
      | Bscalar _ -> error "%s is not an array (line %d)" a line)

and exec_stmt st env (s : stmt) : unit =
  maybe_yield st;
  st.ticks <- st.ticks + 1;
  if st.ticks land 2047 = 0 && st.cancelled () then raise Cancelled;
  st.occ <- 0;
  match s.node with
  | Decl (x, e) ->
      let v = eval st env s.line e in
      let addr = alloc_scalar st in
      st.mem.(addr) <- v;
      let sym = Intern.Sym.intern x in
      emit_access st ~kind:Event.Write ~addr ~var:sym ~line:s.line;
      Hashtbl.replace env.vars x (Bscalar { addr; sym })
  | Decl_arr (x, se) ->
      let size = eval st env s.line se in
      if size < 0 then error "negative array size for %s (line %d)" x s.line;
      let base = alloc_array st size in
      Hashtbl.replace env.vars x
        (Barray { base; len = max size 1; sym = Intern.Sym.intern x })
  | Assign (l, e) ->
      let v = eval st env s.line e in
      assign st env s.line l v
  | Atomic_assign (l, e) ->
      (* Atomicity: treat the update as lock-protected for race reporting. *)
      st.cur.held <- st.cur.held + 1;
      let v = eval st env s.line e in
      assign st env s.line l v;
      st.cur.held <- st.cur.held - 1
  | If (c, t, e) ->
      if truthy (eval st env s.line c) then exec_scope st env t
      else exec_scope st env e
  | While (c, body) ->
      st.loop_inst <- st.loop_inst + 1;
      let inst = st.loop_inst in
      emit_region st (Event.Loop_entry { line = s.line; inst });
      let outer = st.cur.lstack in
      let iters = ref 0 in
      (* The condition check admitting iteration n is attributed to iteration
         n itself, so a value it reads from iteration n-1 is loop-carried. *)
      let enter_iteration () =
        st.cur.lstack <-
          Intern.Lstack.push ~parent:outer ~loop_line:s.line ~inst ~iter:!iters;
        st.occ <- 0
      in
      (try
         enter_iteration ();
         while truthy (eval st env s.line c) do
           emit_region st (Event.Loop_iter { line = s.line; inst; iter = !iters });
           incr iters;
           st.stats.loop_iterations <- st.stats.loop_iterations + 1;
           exec_scope st env body;
           enter_iteration ()
         done
       with Break_exc -> ());
      st.cur.lstack <- outer;
      emit_region st (Event.Loop_exit { line = s.line; inst; iterations = !iters })
  | For { index; lo; hi; step; body } ->
      st.loop_inst <- st.loop_inst + 1;
      let inst = st.loop_inst in
      emit_region st (Event.Loop_entry { line = s.line; inst });
      let outer = st.cur.lstack in
      let lo_v = eval st env s.line lo in
      let addr = alloc_scalar st in
      st.mem.(addr) <- lo_v;
      let isym = Intern.Sym.intern index in
      emit_access st ~kind:Event.Write ~addr ~var:isym ~line:s.line;
      let saved = Hashtbl.find_opt env.vars index in
      Hashtbl.replace env.vars index (Bscalar { addr; sym = isym });
      let iters = ref 0 in
      (try
         (* Bound check and index increment admit the upcoming iteration and
            are attributed to it. *)
         let continue_loop () =
           st.cur.lstack <-
             Intern.Lstack.push ~parent:outer ~loop_line:s.line ~inst
               ~iter:!iters;
           st.occ <- 0;
           let hi_v = eval st env s.line hi in
           emit_access st ~kind:Event.Read ~addr ~var:isym ~line:s.line;
           st.mem.(addr) < hi_v
         in
         while continue_loop () do
           emit_region st (Event.Loop_iter { line = s.line; inst; iter = !iters });
           incr iters;
           st.stats.loop_iterations <- st.stats.loop_iterations + 1;
           exec_scope st env body;
           st.cur.lstack <-
             Intern.Lstack.push ~parent:outer ~loop_line:s.line ~inst
               ~iter:!iters;
           st.occ <- 0;
           let step_v = eval st env s.line step in
           emit_access st ~kind:Event.Read ~addr ~var:isym ~line:s.line;
           let next = st.mem.(addr) + step_v in
           st.mem.(addr) <- next;
           emit_access st ~kind:Event.Write ~addr ~var:isym ~line:s.line
         done
       with Break_exc -> ());
      st.cur.lstack <- outer;
      (match saved with
      | Some b -> Hashtbl.replace env.vars index b
      | None -> Hashtbl.remove env.vars index);
      free_scalar st addr;
      emit_region st (Event.Dealloc { addrs = [ (addr, 1, index) ] });
      emit_region st (Event.Loop_exit { line = s.line; inst; iterations = !iters })
  | Call_stmt (f, args) -> ignore (eval_call st env s.line f args)
  | Return (Some e) -> raise (Return_exc (eval st env s.line e))
  | Return None -> raise (Return_exc 0)
  | Break -> raise Break_exc
  | Lock _ when st.live_threads <= 1 -> st.cur.held <- st.cur.held + 1
  | Lock m ->
      Effect.perform (Acquire m);
      st.cur.held <- st.cur.held + 1
  | Unlock _ when st.live_threads <= 1 && st.cur.held > 0 ->
      st.cur.held <- st.cur.held - 1
  | Unlock m ->
      st.cur.held <- max 0 (st.cur.held - 1);
      Effect.perform (Release m)
  | Barrier _ when st.live_threads <= 1 -> ()
  | Barrier m -> Effect.perform (Await_barrier m)
  | Free x -> (
      match lookup_exn env x with
      | Barray { base; len; _ } ->
          free_array st base len;
          Hashtbl.remove env.vars x;
          emit_region st (Event.Dealloc { addrs = [ (base, len, x) ] })
      | Bscalar { addr; _ } ->
          free_scalar st addr;
          Hashtbl.remove env.vars x;
          emit_region st (Event.Dealloc { addrs = [ (addr, 1, x) ] }))
  | Par blocks ->
      let parent = st.cur in
      let thunks =
        List.map
          (fun b () ->
            (* Runs with a fresh tcb installed by the scheduler wrapper. *)
            exec_scope st { vars = Hashtbl.copy env.vars; globals = env.globals } b)
          blocks
      in
      ignore parent;
      (* Forking is a synchronization edge: the children must observe the
         parent's accesses already pushed, so delayed unlocked accesses
         cannot be scrambled past the fork. *)
      if st.pending <> [] then flush_pending st;
      Effect.perform (Spawn thunks)

(* Execute a block in a child scope: locals declared here die on exit, and
   their addresses are recycled — exactly the situation variable-lifetime
   analysis (§2.3.5) must handle. *)
and exec_scope st env block =
  let before = Hashtbl.copy env.vars in
  List.iter (exec_stmt st env) block;
  (* Find bindings introduced by this block and release them. *)
  let dead = ref [] in
  Hashtbl.iter
    (fun x b ->
      match Hashtbl.find_opt before x with
      | Some b' when b' = b -> ()
      | _ -> (
          match b with
          | Bscalar { addr; _ } ->
              free_scalar st addr;
              dead := (addr, 1, x) :: !dead
          | Barray { base; len; _ } ->
              free_array st base len;
              dead := (base, len, x) :: !dead))
    env.vars;
  Hashtbl.reset env.vars;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.vars k v) before;
  if !dead <> [] then emit_region st (Event.Dealloc { addrs = !dead })

and exec_block st env block = List.iter (exec_stmt st env) block

(* ---- scheduler ---- *)

type run_result = {
  result : int;
  r_stats : stats;
  dynamic_ops : int;  (* distinct static memory operations executed *)
  final_globals : (string * int array) list;
      (* snapshot of every global's final value, scalars as 1-element
         arrays; the observable state differential validation compares *)
}

exception Deadlock

type work =
  | Resume : ('a, unit) Effect.Deep.continuation * 'a * tcb -> work
  | Start of (unit -> unit) * tcb

let run ?(seed = 42) ?(instrument = true) ?(scramble_unlocked = false)
    ?(emit = fun (_ : Event.t) -> ()) ?on_access
    ?(on_print = fun (_ : int list) -> ())
    ?(cancelled = fun () -> false) (prog : program) : run_result =
  let st =
    { prog; emit; on_access; instrument; mem = Array.make 4096 0; brk = 1;
      free_scalars = Stack.create (); free_arrays = Hashtbl.create 16; time = 0;
      op_ids = Hashtbl.create 256; n_ops = 0; occ = 0; rng = Rng.create seed;
      globals_env = Hashtbl.create 16; on_print; loop_inst = 0;
      cur =
        { tid = 0; lstack = Intern.Lstack.empty; held = 0; finished = false;
          group = 0; group_live = ref 1 };
      live_threads = 1; next_tid = 1;
      stats = { reads = 0; writes = 0; loop_iterations = 0; calls = 0 };
      scramble_unlocked; pending = []; cancelled; ticks = 0 }
  in
  List.iter
    (fun g ->
      match g with
      | Gscalar (name, v) ->
          let addr = alloc_scalar st in
          st.mem.(addr) <- v;
          Hashtbl.replace st.globals_env name
            (Bscalar { addr; sym = Intern.Sym.intern name })
      | Garray (name, size) ->
          let base = alloc_array st size in
          Hashtbl.replace st.globals_env name
            (Barray { base; len = max size 1; sym = Intern.Sym.intern name }))
    prog.globals;
  let entry = find_func prog prog.entry in
  let result = ref 0 in
  (* Scheduler state: a bag of runnable work items picked pseudo-randomly, a
     per-mutex wait queue, and join counters for [Par] parents. *)
  let readyq : work list ref = ref [] in
  let waiting :
      (string, (tcb * (unit, unit) Effect.Deep.continuation) Queue.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let lock_owner : (string, int option) Hashtbl.t = Hashtbl.create 8 in
  (* Barrier state: (group, name) -> threads currently waiting. *)
  let barriers :
      (int * string, (tcb * (unit, unit) Effect.Deep.continuation) list ref)
      Hashtbl.t =
    Hashtbl.create 8
  in
  let enqueue w = readyq := w :: !readyq in
  (* A barrier opens when every live thread of the group has arrived; it is
     also re-checked when a group member finishes without reaching it. *)
  let release_barriers group =
    Hashtbl.iter
      (fun (g, _) waiters ->
        if g = group then begin
          match !waiters with
          | (t0, _) :: _ when List.length !waiters >= !(t0.group_live) ->
              List.iter (fun (t, k) -> enqueue (Resume (k, (), t))) !waiters;
              waiters := []
          | _ -> ()
        end)
      barriers
  in
  let pick () =
    match !readyq with
    | [] -> None
    | l ->
        let n = List.length l in
        let k = Rng.int st.rng n in
        let chosen = List.nth l k in
        readyq := List.filteri (fun i _ -> i <> k) l;
        Some chosen
  in
  let rec schedule () =
    match pick () with
    | Some (Resume (k, x, tcb)) ->
        st.cur <- tcb;
        Effect.Deep.continue k x
    | Some (Start (thunk, tcb)) ->
        st.cur <- tcb;
        run_fiber tcb thunk
    | None ->
        let blocked =
          Hashtbl.fold (fun _ q n -> n + Queue.length q) waiting 0
          + Hashtbl.fold (fun _ w n -> n + List.length !w) barriers 0
        in
        if blocked > 0 then raise Deadlock
  and run_fiber tcb thunk =
    Effect.Deep.match_with
      (fun () -> thunk ())
      ()
      { retc =
          (fun () ->
            tcb.finished <- true;
            st.live_threads <- st.live_threads - 1;
            schedule ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    enqueue (Resume (k, (), tcb));
                    schedule ())
            | Spawn thunks ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    let pending = ref (List.length thunks) in
                    let group = st.next_tid in
                    let group_live = ref (List.length thunks) in
                    List.iter
                      (fun child_thunk ->
                        let child =
                          { tid = st.next_tid; lstack = tcb.lstack; held = 0;
                            finished = false; group; group_live }
                        in
                        st.next_tid <- st.next_tid + 1;
                        st.live_threads <- st.live_threads + 1;
                        let wrapped () =
                          if st.instrument then
                            st.emit
                              (Event.Region (Event.Thread_start { thread = child.tid }));
                          (try child_thunk () with Return_exc _ -> ());
                          (* Thread termination is a synchronization edge:
                             whoever joins on this thread must observe its
                             accesses already pushed, so delayed unlocked
                             accesses cannot be scrambled past the join. *)
                          if st.pending <> [] then flush_pending st;
                          if st.instrument then
                            st.emit
                              (Event.Region (Event.Thread_end { thread = child.tid }));
                          decr child.group_live;
                          release_barriers child.group;
                          decr pending;
                          if !pending = 0 then enqueue (Resume (k, (), tcb))
                        in
                        enqueue (Start (wrapped, child)))
                      thunks;
                    schedule ())
            | Acquire m ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    let owner =
                      try Hashtbl.find lock_owner m with Not_found -> None
                    in
                    (match owner with
                    | None ->
                        Hashtbl.replace lock_owner m (Some tcb.tid);
                        enqueue (Resume (k, (), tcb))
                    | Some _ ->
                        let q =
                          match Hashtbl.find_opt waiting m with
                          | Some q -> q
                          | None ->
                              let q = Queue.create () in
                              Hashtbl.replace waiting m q;
                              q
                        in
                        Queue.push (tcb, k) q);
                    schedule ())
            | Await_barrier m ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    let key = (tcb.group, m) in
                    let waiters =
                      match Hashtbl.find_opt barriers key with
                      | Some w -> w
                      | None ->
                          let w = ref [] in
                          Hashtbl.replace barriers key w;
                          w
                    in
                    waiters := (tcb, k) :: !waiters;
                    if List.length !waiters >= !(tcb.group_live) then begin
                      List.iter (fun (t, k') -> enqueue (Resume (k', (), t))) !waiters;
                      waiters := []
                    end;
                    schedule ())
            | Release m ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    (match Hashtbl.find_opt waiting m with
                    | Some q when not (Queue.is_empty q) ->
                        let tcb', k' = Queue.pop q in
                        Hashtbl.replace lock_owner m (Some tcb'.tid);
                        enqueue (Resume (k', (), tcb'))
                    | Some _ | None -> Hashtbl.replace lock_owner m None);
                    enqueue (Resume (k, (), tcb));
                    schedule ())
            | _ -> None) }
  in
  let main_tcb = st.cur in
  let main () =
    let env = { vars = Hashtbl.create 8; globals = st.globals_env } in
    emit_region st
      (Event.Func_entry { name = entry.fname; line = entry.fline; call_line = 0 });
    (try exec_block st env entry.body with Return_exc v -> result := v);
    emit_region st (Event.Func_exit { name = entry.fname; line = entry.fline });
    if st.pending <> [] then flush_pending st
  in
  run_fiber main_tcb main;
  let final_globals =
    List.map
      (fun g ->
        let name = match g with Gscalar (n, _) | Garray (n, _) -> n in
        match Hashtbl.find st.globals_env name with
        | Bscalar { addr; _ } -> (name, [| st.mem.(addr) |])
        | Barray { base; len; _ } -> (name, Array.sub st.mem base len))
      prog.globals
  in
  { result = !result; r_stats = st.stats; dynamic_ops = st.n_ops;
    final_globals }

(* Run and collect all events into a list; convenient for tests and for the
   offline (phase-2) analyses. *)
let trace ?seed ?scramble_unlocked prog =
  let acc = ref [] in
  let res =
    run ?seed ?scramble_unlocked ~emit:(fun e -> acc := e :: !acc) prog
  in
  (res, List.rev !acc)
