(* Parallel MIL evaluation on real domains (see par_eval.mli).

   The evaluator mirrors {!Interp}'s semantics — same scoping, same
   by-value/by-reference calling convention, same arithmetic (shared via
   {!Interp.apply_binop}) — minus instrumentation, plus a memory and
   scheduling model that is safe under real concurrency:

   - the heap is paged: a fixed table of [int array Atomic.t] pages,
     installed on first touch with a CAS.  Addresses are allocated by a
     global fetch-and-add bump pointer; each task carves per-task arenas
     out of it so allocation is contention-free off the refill path.
     Scope-exit recycling goes to task-local free lists only — addresses
     never migrate between tasks, so no cross-task ABA.
   - [Par] blocks free of blocking synchronisation run as fork-join tasks
     on a {!Runtime.Pool}: first block inline, siblings async, awaited
     with help (the awaiting task runs other pool work), so pool tasks
     never block and the fixed worker set cannot deadlock.
   - [Par] blocks that do synchronise (transitively through calls and
     nested [Par]: [Lock]/[Unlock]/[Barrier]) each get a dedicated
     [Domain.spawn]: the DOACROSS hand-off loops emitted by
     [Transform.Parallelize] busy-wait on a flag under a lock, and a
     busy-wait must never occupy a pool worker another task needs to make
     the flag true.  Which [Par] statements synchronise is precomputed per
     program (keyed by the statement's unique line), so the hot path is a
     hashtable hit. *)

open Ast

exception Cancelled = Interp.Cancelled

let error fmt =
  Printf.ksprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* ---- paged shared heap ---- *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let max_pages = 1 lsl 16 (* 2^28 ints =~ 2 GiB of heap, far above any workload *)

type mem = { pages : int array Atomic.t array; next : int Atomic.t }

let no_page : int array = [||]

let mem_create () =
  {
    pages = Array.init max_pages (fun _ -> Atomic.make no_page);
    next = Atomic.make 1 (* address 0 stays unused, as in Interp *);
  }

let page m i =
  if i < 0 || i >= max_pages then error "parallel heap exhausted";
  let cell = m.pages.(i) in
  let p = Atomic.get cell in
  if p != no_page then p
  else begin
    let fresh = Array.make page_size 0 in
    if Atomic.compare_and_set cell no_page fresh then fresh
    else Atomic.get cell
  end

let bump m size = Atomic.fetch_and_add m.next size

(* ---- bindings and environments ---- *)

type binding = Scalar of int | Arr of { base : int; len : int }

type env = {
  vars : (string, binding) Hashtbl.t;
  globals : (string, binding) Hashtbl.t;
}

(* ---- barrier groups (dedicated-domain path only) ---- *)

type bstate = { mutable arrived : int; mutable phase : int }

type group = {
  g_mu : Mutex.t;
  g_cv : Condition.t;
  mutable g_live : int;
  g_bars : (string, bstate) Hashtbl.t;
}

let group_create n =
  {
    g_mu = Mutex.create ();
    g_cv = Condition.create ();
    g_live = n;
    g_bars = Hashtbl.create 4;
  }

(* A barrier opens when every still-live member of the group has arrived —
   the same rule as the fiber scheduler, where members that finish without
   reaching the barrier stop being counted. *)
let open_ready_bars g =
  Hashtbl.iter
    (fun _ b ->
      if b.arrived > 0 && b.arrived >= g.g_live then begin
        b.arrived <- 0;
        b.phase <- b.phase + 1
      end)
    g.g_bars;
  Condition.broadcast g.g_cv

let group_leave g =
  Mutex.lock g.g_mu;
  g.g_live <- g.g_live - 1;
  open_ready_bars g;
  Mutex.unlock g.g_mu

let barrier_arrive g name =
  Mutex.lock g.g_mu;
  let b =
    match Hashtbl.find_opt g.g_bars name with
    | Some b -> b
    | None ->
        let b = { arrived = 0; phase = 0 } in
        Hashtbl.add g.g_bars name b;
        b
  in
  b.arrived <- b.arrived + 1;
  if b.arrived >= g.g_live then open_ready_bars g
  else begin
    let ph = b.phase in
    while b.phase = ph do
      Condition.wait g.g_cv g.g_mu
    done
  end;
  Mutex.unlock g.g_mu

(* ---- per-task allocation context ---- *)

let arena_chunk = 4096
let big_alloc = 2048 (* allocations this large bypass the arena *)

(* Per-task cache of the last two page pointers touched: a page's array is
   immutable once installed, so caching the pointer skips the Atomic.get
   on the per-access hot path (values inside the page are still read
   fresh; only the pointer is cached).  Two entries cover the common
   read-one-array / write-another iteration shape. *)
type task = {
  mutable cur : int; (* arena bump pointer *)
  mutable lim : int;
  free_scalars : int Stack.t;
  free_arrays : (int, int list) Hashtbl.t; (* size -> bases *)
  mutable ticks : int;
  group : group option; (* barrier group, on the dedicated-domain path *)
  mutable pc_idx0 : int;
  mutable pc_page0 : int array;
  mutable pc_idx1 : int;
  mutable pc_page1 : int array;
}

let task_create ?group () =
  {
    cur = 0;
    lim = 0;
    free_scalars = Stack.create ();
    free_arrays = Hashtbl.create 8;
    ticks = 0;
    group;
    pc_idx0 = -1;
    pc_page0 = no_page;
    pc_idx1 = -1;
    pc_page1 = no_page;
  }

let get_page m t idx =
  if t.pc_idx0 = idx then t.pc_page0
  else if t.pc_idx1 = idx then begin
    (* promote to front *)
    let p = t.pc_page1 in
    t.pc_idx1 <- t.pc_idx0;
    t.pc_page1 <- t.pc_page0;
    t.pc_idx0 <- idx;
    t.pc_page0 <- p;
    p
  end
  else begin
    let p = page m idx in
    t.pc_idx1 <- t.pc_idx0;
    t.pc_page1 <- t.pc_page0;
    t.pc_idx0 <- idx;
    t.pc_page0 <- p;
    p
  end

let load m t addr = (get_page m t (addr lsr page_bits)).(addr land page_mask)

let store m t addr v =
  (get_page m t (addr lsr page_bits)).(addr land page_mask) <- v

(* ---- run state ---- *)

type state = {
  prog : program;
  mem : mem;
  pool : Runtime.Pool.t option;
  globals_env : (string, binding) Hashtbl.t;
  locks : (string, Mutex.t) Hashtbl.t;
  stripes : Mutex.t array; (* Atomic_assign serialization, hashed by addr *)
  par_sync : (int, bool) Hashtbl.t; (* Par stmt line -> needs dedicated domains *)
  rng : Interp.Rng.t;
  rng_mu : Mutex.t;
  print_mu : Mutex.t;
  on_print : int list -> unit;
  cancelled : unit -> bool;
  failed : exn option Atomic.t;
      (* first failure from any task; other tasks poll it so a crashed
         DOACROSS producer cannot leave its consumer spinning forever *)
}

let n_stripes = 64

let alloc st t size =
  if size >= big_alloc then bump st.mem size
  else begin
    if t.cur + size > t.lim then begin
      let chunk = max arena_chunk size in
      t.cur <- bump st.mem chunk;
      t.lim <- t.cur + chunk
    end;
    let a = t.cur in
    t.cur <- t.cur + size;
    a
  end

let alloc_scalar st t =
  match Stack.pop_opt t.free_scalars with
  | Some a -> a
  | None -> alloc st t 1

let alloc_array st t size =
  let size = max size 1 in
  match Hashtbl.find_opt t.free_arrays size with
  | Some (b :: rest) ->
      Hashtbl.replace t.free_arrays size rest;
      (* fresh heap is zero by construction; recycled spans must be wiped *)
      for i = b to b + size - 1 do
        store st.mem t i 0
      done;
      b
  | Some [] | None -> alloc st t size

let free_scalar t a = Stack.push a t.free_scalars

let free_array t base size =
  let size = max size 1 in
  let prev = try Hashtbl.find t.free_arrays size with Not_found -> [] in
  Hashtbl.replace t.free_arrays size (base :: prev)

(* ---- which Par statements need dedicated domains ----

   A block needs them if it contains Lock/Unlock/Barrier anywhere —
   including inside nested [Par] bodies and transitively through the
   functions it calls.  Computed once per program, before any parallelism
   exists, so the table is read-only at run time. *)

let rec expr_calls acc = function
  | Int _ | Var _ | Len _ -> acc
  | Idx (_, e) | Neg e | Not e -> expr_calls acc e
  | Bin (_, a, b) -> expr_calls (expr_calls acc a) b
  | Call (f, args) -> List.fold_left expr_calls (f :: acc) args

let lhs_calls acc = function
  | Lvar _ -> acc
  | Lidx (_, e) -> expr_calls acc e

(* (does this block itself sync?, function names it mentions) *)
let rec block_scan b =
  List.fold_left
    (fun (sync, calls) s ->
      let sync', calls' = stmt_scan s in
      (sync || sync', calls' @ calls))
    (false, []) b

and stmt_scan s =
  match s.node with
  | Lock _ | Unlock _ | Barrier _ -> (true, [])
  | Decl (_, e) | Decl_arr (_, e) | Return (Some e) -> (false, expr_calls [] e)
  | Assign (l, e) | Atomic_assign (l, e) ->
      (false, expr_calls (lhs_calls [] l) e)
  | Call_stmt (f, args) -> (false, List.fold_left expr_calls [ f ] args)
  | If (c, tb, eb) ->
      let s1, c1 = block_scan tb and s2, c2 = block_scan eb in
      (s1 || s2, expr_calls (c1 @ c2) c)
  | While (c, body) ->
      let s1, c1 = block_scan body in
      (s1, expr_calls c1 c)
  | For { lo; hi; step; body; _ } ->
      let s1, c1 = block_scan body in
      (s1, expr_calls (expr_calls (expr_calls c1 lo) hi) step)
  | Par blocks ->
      List.fold_left
        (fun (sync, calls) b ->
          let s', c' = block_scan b in
          (sync || s', c' @ calls))
        (false, []) blocks
  | Return None | Break | Free _ -> (false, [])

(* fname -> (body syncs transitively) via fixpoint over the call graph *)
let sync_funcs prog =
  let info =
    List.map (fun f -> (f.fname, block_scan f.body)) prog.funcs
  in
  let sync = Hashtbl.create 16 in
  List.iter (fun (name, (s, _)) -> Hashtbl.replace sync name s) info;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, (_, calls)) ->
        if
          (not (try Hashtbl.find sync name with Not_found -> false))
          && List.exists
               (fun c -> try Hashtbl.find sync c with Not_found -> false)
               calls
        then begin
          Hashtbl.replace sync name true;
          changed := true
        end)
      info
  done;
  sync

let par_sync_table prog =
  let fsync = sync_funcs prog in
  let table = Hashtbl.create 16 in
  let block_needs b =
    let s, calls = block_scan b in
    s
    || List.exists
         (fun c -> try Hashtbl.find fsync c with Not_found -> false)
         calls
  in
  let rec stmt s =
    match s.node with
    | Par blocks ->
        Hashtbl.replace table s.line (List.exists block_needs blocks);
        List.iter block blocks
    | If (_, t, e) ->
        block t;
        block e
    | While (_, body) | For { body; _ } -> block body
    | _ -> ()
  and block b = List.iter stmt b in
  List.iter (fun f -> block f.body) prog.funcs;
  table

(* ---- evaluation ---- *)

exception Preturn of int
exception Pbreak

let lookup env x =
  match Hashtbl.find_opt env.vars x with
  | Some b -> Some b
  | None -> Hashtbl.find_opt env.globals x

let lookup_exn env x =
  match lookup env x with
  | Some b -> b
  | None -> error "unbound variable %s" x

let check_failed st =
  if st.cancelled () then raise Cancelled;
  match Atomic.get st.failed with
  | Some _ ->
      (* another task already crashed; unwind quietly so joins report the
         original error rather than a pile of secondary spins *)
      raise Cancelled
  | None -> ()

let rec eval st t env line (e : expr) : int =
  match e with
  | Int n -> n
  | Var x -> (
      match lookup_exn env x with
      | Scalar addr -> load st.mem t addr
      | Arr { base; _ } -> base)
  | Idx (a, ie) -> (
      let idx = eval st t env line ie in
      match lookup_exn env a with
      | Arr { base; len } ->
          if idx < 0 || idx >= len then
            error "index %d out of bounds for %s (len %d) at line %d" idx a len
              line;
          load st.mem t (base + idx)
      | Scalar _ -> error "%s is not an array (line %d)" a line)
  | Len a -> (
      match lookup_exn env a with
      | Arr { len; _ } -> len
      | Scalar _ -> error "%s is not an array (line %d)" a line)
  | Bin (op, e1, e2) ->
      (* both operands evaluated, as in Interp (no short-circuit) *)
      let a = eval st t env line e1 in
      let b = eval st t env line e2 in
      Interp.apply_binop op a b
  | Neg e1 -> -eval st t env line e1
  | Not e1 -> if Interp.truthy (eval st t env line e1) then 0 else 1
  | Call (f, args) -> eval_call st t env line f args

and eval_call st t env line f args =
  match List.find_opt (fun g -> g.fname = f) st.prog.funcs with
  | Some callee -> call_user st t env line callee args
  | None -> call_builtin st t env line f args

and call_builtin st t env line f args =
  match (f, args) with
  | "rand", [ bound ] ->
      let b = eval st t env line bound in
      Mutex.lock st.rng_mu;
      let v = Interp.Rng.int st.rng (max b 1) in
      Mutex.unlock st.rng_mu;
      v
  | "rand", [] ->
      Mutex.lock st.rng_mu;
      let v = Interp.Rng.next st.rng land 0xFFFF in
      Mutex.unlock st.rng_mu;
      v
  | "abs", [ e ] -> abs (eval st t env line e)
  | "print", _ ->
      let vs = List.map (eval st t env line) args in
      Mutex.lock st.print_mu;
      (try st.on_print vs
       with e ->
         Mutex.unlock st.print_mu;
         raise e);
      Mutex.unlock st.print_mu;
      0
  | _ -> error "unknown function %s (line %d)" f line

and call_user st t env line callee args =
  let n_scalars = List.length callee.params in
  let scalar_args = List.filteri (fun k _ -> k < n_scalars) args in
  let array_args = List.filteri (fun k _ -> k >= n_scalars) args in
  if List.length array_args <> List.length callee.arr_params then
    error "call %s: expected %d array args, got %d (line %d)" callee.fname
      (List.length callee.arr_params)
      (List.length array_args) line;
  let scalar_vals = List.map (eval st t env line) scalar_args in
  let array_bindings =
    List.map
      (fun a ->
        match a with
        | Var name -> (
            match lookup_exn env name with
            | Arr _ as b -> b
            | Scalar _ -> error "call %s: %s is not an array" callee.fname name)
        | _ -> error "call %s: array arguments must be variables" callee.fname)
      array_args
  in
  let fenv = { vars = Hashtbl.create 8; globals = st.globals_env } in
  let param_addrs =
    List.map2
      (fun p v ->
        let addr = alloc_scalar st t in
        store st.mem t addr v;
        Hashtbl.replace fenv.vars p (Scalar addr);
        addr)
      callee.params scalar_vals
  in
  List.iter2
    (fun p b -> Hashtbl.replace fenv.vars p b)
    callee.arr_params array_bindings;
  let result =
    try
      exec_block st t fenv callee.body;
      0
    with Preturn v -> v
  in
  List.iter (free_scalar t) param_addrs;
  result

and assign st t env line (l : lhs) v =
  match l with
  | Lvar x -> (
      match lookup_exn env x with
      | Scalar addr -> store st.mem t addr v
      | Arr _ -> error "cannot assign to array %s (line %d)" x line)
  | Lidx (a, ie) -> (
      let idx = eval st t env line ie in
      match lookup_exn env a with
      | Arr { base; len } ->
          if idx < 0 || idx >= len then
            error "index %d out of bounds for %s (len %d) at line %d" idx a len
              line;
          store st.mem t (base + idx) v
      | Scalar _ -> error "%s is not an array (line %d)" a line)

(* Target address of an lhs, with the index evaluated *outside* any stripe
   lock (indices are private in the transforms that emit Atomic_assign). *)
and lhs_addr st t env line (l : lhs) =
  match l with
  | Lvar x -> (
      match lookup_exn env x with
      | Scalar addr -> addr
      | Arr _ -> error "cannot assign to array %s (line %d)" x line)
  | Lidx (a, ie) -> (
      let idx = eval st t env line ie in
      match lookup_exn env a with
      | Arr { base; len } ->
          if idx < 0 || idx >= len then
            error "index %d out of bounds for %s (len %d) at line %d" idx a len
              line;
          base + idx
      | Scalar _ -> error "%s is not an array (line %d)" a line)

and exec_stmt st t env (s : stmt) : unit =
  t.ticks <- t.ticks + 1;
  if t.ticks land 2047 = 0 then check_failed st;
  match s.node with
  | Decl (x, e) ->
      let v = eval st t env s.line e in
      let addr = alloc_scalar st t in
      store st.mem t addr v;
      Hashtbl.replace env.vars x (Scalar addr)
  | Decl_arr (x, se) ->
      let size = eval st t env s.line se in
      if size < 0 then error "negative array size for %s (line %d)" x s.line;
      let base = alloc_array st t size in
      Hashtbl.replace env.vars x (Arr { base; len = max size 1 })
  | Assign (l, e) ->
      let v = eval st t env s.line e in
      assign st t env s.line l v
  | Atomic_assign (l, e) ->
      (* The read-modify-write must be indivisible: reduction merges read
         the target inside the RHS.  Serialize through a stripe hashed by
         the target address; the RHS is evaluated under the stripe, so it
         must not itself Lock or atomically update a colliding stripe —
         true of everything Transform emits. *)
      let addr = lhs_addr st t env s.line l in
      let mu = st.stripes.(addr land (n_stripes - 1)) in
      Mutex.lock mu;
      (try store st.mem t addr (eval st t env s.line e)
       with ex ->
         Mutex.unlock mu;
         raise ex);
      Mutex.unlock mu
  | If (c, tb, eb) ->
      if Interp.truthy (eval st t env s.line c) then exec_scope st t env tb
      else exec_scope st t env eb
  | While (c, body) -> (
      try
        while Interp.truthy (eval st t env s.line c) do
          exec_scope st t env body
        done
      with Pbreak -> ())
  | For { index; lo; hi; step; body } ->
      let lo_v = eval st t env s.line lo in
      let addr = alloc_scalar st t in
      store st.mem t addr lo_v;
      let saved = Hashtbl.find_opt env.vars index in
      Hashtbl.replace env.vars index (Scalar addr);
      (try
         while
           let hi_v = eval st t env s.line hi in
           load st.mem t addr < hi_v
         do
           exec_scope st t env body;
           let step_v = eval st t env s.line step in
           store st.mem t addr (load st.mem t addr + step_v)
         done
       with Pbreak -> ());
      (match saved with
      | Some b -> Hashtbl.replace env.vars index b
      | None -> Hashtbl.remove env.vars index);
      free_scalar t addr
  | Call_stmt (f, args) -> ignore (eval_call st t env s.line f args)
  | Return (Some e) -> raise (Preturn (eval st t env s.line e))
  | Return None -> raise (Preturn 0)
  | Break -> raise Pbreak
  | Lock m -> Mutex.lock (find_lock st m)
  | Unlock m -> Mutex.unlock (find_lock st m)
  | Barrier m -> (
      match t.group with
      | Some g -> barrier_arrive g m
      | None -> (* sole thread: a barrier is a no-op, as in Interp *) ())
  | Free x -> (
      match lookup_exn env x with
      | Arr { base; len } ->
          free_array t base len;
          Hashtbl.remove env.vars x
      | Scalar addr ->
          free_scalar t addr;
          Hashtbl.remove env.vars x)
  | Par blocks -> exec_par st t env s blocks

and find_lock st m =
  match Hashtbl.find_opt st.locks m with
  | Some mu -> mu
  | None -> error "unknown lock %s" m

and exec_par st t env s blocks =
  let snapshots =
    (* each arm sees the parent's bindings as of the fork, like the fiber
       scheduler's Hashtbl.copy per spawned thunk *)
    List.map (fun b -> (Hashtbl.copy env.vars, b)) blocks
  in
  let sync = try Hashtbl.find st.par_sync s.line with Not_found -> true in
  if sync then begin
    (* Dedicated domain per arm: arms may block on locks/barriers or
       busy-wait on hand-off flags, and the OS scheduler guarantees every
       arm keeps running regardless of arm order or pool capacity. *)
    let g = group_create (List.length snapshots) in
    let doms =
      List.map
        (fun (vars, b) ->
          Domain.spawn (fun () ->
              let ct = task_create ~group:g () in
              Fun.protect
                ~finally:(fun () -> group_leave g)
                (fun () ->
                  try exec_scope st ct { vars; globals = env.globals } b
                  with ex ->
                    ignore
                      (Atomic.compare_and_set st.failed None (Some ex));
                    raise ex)))
        snapshots
    in
    let outcomes =
      List.map (fun d -> try Domain.join d; None with ex -> Some ex) doms
    in
    let first_real =
      List.find_map
        (function Some Cancelled -> None | Some ex -> Some ex | None -> None)
        outcomes
    in
    match first_real with
    | Some ex -> raise ex
    | None ->
        if List.exists (function Some _ -> true | None -> false) outcomes
        then raise Cancelled
  end
  else begin
    match st.pool with
    | None ->
        (* single-executor mode: arms run inline in order (sync-free arms
           cannot depend on each other's interleaving) *)
        List.iter
          (fun (vars, b) -> exec_scope st t { vars; globals = env.globals } b)
          snapshots
    | Some pool ->
        (* fork-join: siblings are stealable, first arm runs inline *)
        let rest_futs =
          match snapshots with
          | [] -> []
          | _ :: rest ->
              List.map
                (fun (vars, b) ->
                  Runtime.Sched.async pool (fun () ->
                      let ct = task_create () in
                      try exec_scope st ct { vars; globals = env.globals } b
                      with ex ->
                        ignore
                          (Atomic.compare_and_set st.failed None (Some ex));
                        raise ex))
                rest
        in
        (* Every arm is joined no matter which one failed: with an
           externally supplied pool (Measure reuses one across reps) an
           unjoined sibling would keep executing into the caller's next
           use of the pool.  Mirrors the dedicated-domain path above:
           collect all outcomes, then surface the first real (non-Cancelled)
           error, falling back to Cancelled. *)
        let inline_outcome =
          match snapshots with
          | (vars, b) :: _ -> (
              try
                exec_scope st t { vars; globals = env.globals } b;
                None
              with ex ->
                ignore (Atomic.compare_and_set st.failed None (Some ex));
                Some ex)
          | [] -> None
        in
        let outcomes =
          inline_outcome
          :: List.map
               (fun f ->
                 try
                   Runtime.Sched.await pool f;
                   None
                 with ex -> Some ex)
               rest_futs
        in
        let first_real =
          List.find_map
            (function Some Cancelled -> None | Some ex -> Some ex | None -> None)
            outcomes
        in
        (match first_real with
        | Some ex -> raise ex
        | None ->
            if List.exists (function Some _ -> true | None -> false) outcomes
            then raise Cancelled)
  end

(* Child scope: bindings introduced by the block die on exit and their
   storage is recycled into the *task's* free lists. *)
and exec_scope st t env block =
  let before = Hashtbl.copy env.vars in
  List.iter (exec_stmt st t env) block;
  Hashtbl.iter
    (fun x b ->
      match Hashtbl.find_opt before x with
      | Some b' when b' = b -> ()
      | _ -> (
          match b with
          | Scalar addr -> free_scalar t addr
          | Arr { base; len } -> free_array t base len))
    env.vars;
  Hashtbl.reset env.vars;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.vars k v) before

and exec_block st t env block = List.iter (exec_stmt st t env) block

(* ---- lock discovery ---- *)

let lock_names prog =
  let names = Hashtbl.create 8 in
  let rec stmt s =
    match s.node with
    | Lock m | Unlock m -> Hashtbl.replace names m ()
    | If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | While (_, b) | For { body = b; _ } -> List.iter stmt b
    | Par bs -> List.iter (List.iter stmt) bs
    | _ -> ()
  in
  List.iter (fun f -> List.iter stmt f.body) prog.funcs;
  names

(* ---- entry point ---- *)

type result = { result : int; final_globals : (string * int array) list }

let run ?(domains = 1) ?pool ?(seed = 42) ?(on_print = fun (_ : int list) -> ())
    ?(cancelled = fun () -> false) (prog : program) : result =
  let owned_pool, pool =
    match pool with
    | Some p -> (None, Some p)
    | None ->
        if domains <= 1 then (None, None)
        else
          let p = Runtime.Pool.create ~domains () in
          (Some p, Some p)
  in
  let locks = Hashtbl.create 8 in
  Hashtbl.iter
    (fun m () -> Hashtbl.replace locks m (Mutex.create ()))
    (lock_names prog);
  let st =
    {
      prog;
      mem = mem_create ();
      pool;
      globals_env = Hashtbl.create 16;
      locks;
      stripes = Array.init n_stripes (fun _ -> Mutex.create ());
      par_sync = par_sync_table prog;
      rng = Interp.Rng.create seed;
      rng_mu = Mutex.create ();
      print_mu = Mutex.create ();
      on_print;
      cancelled;
      failed = Atomic.make None;
    }
  in
  let t = task_create () in
  (* Globals are installed by the main task before any parallelism; the
     table is read-only afterwards, so concurrent lookups are safe. *)
  List.iter
    (fun g ->
      match g with
      | Gscalar (name, v) ->
          let addr = alloc_scalar st t in
          store st.mem t addr v;
          Hashtbl.replace st.globals_env name (Scalar addr)
      | Garray (name, size) ->
          let base = alloc_array st t size in
          Hashtbl.replace st.globals_env name
            (Arr { base; len = max size 1 }))
    prog.globals;
  let finish () =
    match owned_pool with Some p -> Runtime.Pool.shutdown p | None -> ()
  in
  let result =
    match
      let entry = find_func prog prog.entry in
      let env = { vars = Hashtbl.create 8; globals = st.globals_env } in
      try
        exec_block st t env entry.body;
        0
      with Preturn v -> v
    with
    | v ->
        finish ();
        v
    | exception ex ->
        finish ();
        (* prefer the root cause recorded by the first failing task *)
        let ex =
          match (ex, Atomic.get st.failed) with
          | Cancelled, Some root when root <> Cancelled -> root
          | _ -> ex
        in
        raise ex
  in
  let final_globals =
    List.map
      (fun g ->
        let name = match g with Gscalar (n, _) | Garray (n, _) -> n in
        match Hashtbl.find st.globals_env name with
        | Scalar addr -> (name, [| load st.mem t addr |])
        | Arr { base; len } ->
            (name, Array.init len (fun i -> load st.mem t (base + i))))
      prog.globals
  in
  { result; final_globals }
