(** Rewrite and substitution utilities over MIL ASTs, used by the
    [lib/transform] auto-parallelization subsystem.

    Statements carry a mutable [line] field that {!Builder.number} patches
    in place, so a program about to be edited and renumbered must first be
    deep-copied — otherwise renumbering the transformed program would
    corrupt the original that suggestions (and their line numbers) were
    computed against. *)

(** {1 Deep copy} *)

val copy_stmt : Ast.stmt -> Ast.stmt
val copy_block : Ast.block -> Ast.block
val copy_func : Ast.func -> Ast.func
val copy_program : Ast.program -> Ast.program

(** {1 Variable renaming}

    Rename every syntactic occurrence of a name — scalar and array
    reads/writes, lengths, declarations, loop indices. Callee bodies are
    separate scopes and are not entered. *)

val rename_expr : from:string -> to_:string -> Ast.expr -> Ast.expr
val rename_stmt : from:string -> to_:string -> Ast.stmt -> Ast.stmt
val rename_block : from:string -> to_:string -> Ast.block -> Ast.block

(** {1 Search / replace by source line} *)

val replace_by_line :
  Ast.program -> line:int -> f:(Ast.stmt -> Ast.stmt list) -> Ast.program option
(** Replace the unique statement at [line] with the statements produced by
    [f]; [None] if no statement carries that line. The replacement is pure:
    enclosing blocks are rebuilt, untouched siblings are shared. *)

val find_by_line : Ast.program -> line:int -> (Ast.stmt * string) option
(** The statement at [line] and the name of its enclosing function. *)

(** {1 Syntactic feasibility probes} *)

val expr_calls : Ast.expr -> string list -> string list
(** Names of all calls in the expression, prepended to the accumulator. *)

val expr_has_call : Ast.expr -> bool

val block_calls : Ast.block -> string list -> string list

val reachable_calls : Ast.program -> Ast.block -> string list
(** Transitive closure of call targets reachable from the block through
    user-function bodies; builtins ("rand", "abs", "print") appear as
    leaves. *)

val calls_transitively : Ast.program -> Ast.block -> string -> bool

val has_sync : Ast.block -> bool
(** [Par] / [Lock] / [Unlock] / [Barrier] anywhere in the block. *)

val has_return : Ast.block -> bool

val has_toplevel_break : Ast.block -> bool
(** A [Break] that would escape the region's own loop, i.e. one not nested
    inside a deeper loop of the block. *)
