(* MIL source parser: the inverse of Pretty.render_program.

   The rendered format is line-structured — one statement per line, block
   openers end their line with `{`, closers are lines of `}` / `} else {`,
   par sections are introduced by `thread N:` — so the parser is a
   recursive descent over a cursor of pre-tokenised lines. Expressions use
   C-like precedence climbing; Pretty emits them fully parenthesised, so
   precedence only matters for hand-written input. *)

open Ast

exception Fail of int * string (* 1-based source line, message *)

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Fail (lineno, m))) fmt

(* ---- lexer ---- *)

type token =
  | Tint of int
  | Tid of string
  | Top of string (* operators and punctuation *)

let token_to_string = function
  | Tint n -> string_of_int n
  | Tid s -> s
  | Top s -> Printf.sprintf "'%s'" s

let is_id_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let two_char_ops =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "++" ]

let tokenize lineno (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      toks := Tint (int_of_string (String.sub s start (!i - start))) :: !toks
    end
    else if is_id_char c then begin
      let start = !i in
      while !i < n && is_id_char s.[!i] do
        incr i
      done;
      toks := Tid (String.sub s start (!i - start)) :: !toks
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub s !i 2) else None
      in
      match two with
      | Some op when List.mem op two_char_ops ->
          toks := Top op :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '=' | '+'
          | '-' | '*' | '/' | '%' | '<' | '>' | '&' | '|' | '^' | '!' ->
              toks := Top (String.make 1 c) :: !toks;
              incr i
          | c -> fail lineno "unexpected character '%c'" c)
    end
  done;
  List.rev !toks

(* ---- line stream ----

   Each significant line becomes (source line number, explicit MIL line,
   tokens). Leading line numbers — `%4d  stmt` from Pretty — are recognised
   as an integer first token followed by more tokens: no MIL statement or
   closer starts with an integer literal. When every statement and function
   header carries one, the numbers are kept verbatim as the parsed
   statements' [line]s instead of renumbering — so a program whose lines
   are gapped or duplicated (the output of {!Pass} rewrites) round-trips
   through render∘parse unchanged and cache keys stay stable. *)

let strip_comment line =
  let n = String.length line in
  let cut = ref n in
  for i = n - 1 downto 0 do
    if line.[i] = '#' then cut := i
    else if i + 1 < n && line.[i] = '/' && line.[i + 1] = '/' then cut := i
  done;
  if !cut = n then line else String.sub line 0 !cut

type cursor = {
  lines : (int * int option * token list) array;
  mutable pos : int;
  mutable all_numbered : bool;
      (* every statement/func line so far carried an explicit line prefix *)
}

let make_cursor (src : string) : cursor =
  let raw = String.split_on_char '\n' src in
  let sig_lines =
    List.mapi (fun i l -> (i + 1, l)) raw
    |> List.filter_map (fun (no, l) ->
           let l = strip_comment l in
           match tokenize no l with
           | [] -> None
           | Tint n :: (_ :: _ as rest) -> Some (no, Some n, rest)
           | toks -> Some (no, None, toks))
  in
  { lines = Array.of_list sig_lines; pos = 0; all_numbered = true }

let peek cur =
  if cur.pos < Array.length cur.lines then Some cur.lines.(cur.pos) else None

let next cur =
  match peek cur with
  | Some l ->
      cur.pos <- cur.pos + 1;
      l
  | None -> fail 0 "unexpected end of input"

(* ---- expression parsing (precedence climbing) ---- *)

type tstate = { lineno : int; mutable toks : token list }

let tpeek ts = match ts.toks with [] -> None | t :: _ -> Some t

let tnext ts =
  match ts.toks with
  | [] -> fail ts.lineno "unexpected end of line"
  | t :: rest ->
      ts.toks <- rest;
      t

let texpect ts op =
  match tnext ts with
  | Top o when o = op -> ()
  | t -> fail ts.lineno "expected '%s', got %s" op (token_to_string t)

let tident ts =
  match tnext ts with
  | Tid x -> x
  | t -> fail ts.lineno "expected identifier, got %s" (token_to_string t)

(* Binary operator precedence, loosest first; Pretty parenthesises fully so
   this only disambiguates hand-written sources. *)
let binop_of = function
  | "||" -> Some (Or, 1)
  | "&&" -> Some (And, 2)
  | "|" -> Some (Bor, 3)
  | "^" -> Some (Bxor, 4)
  | "&" -> Some (Band, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | _ -> None

let rec parse_expr ts = parse_binary ts 1

and parse_binary ts min_prec =
  let lhs = ref (parse_unary ts) in
  let continue_ = ref true in
  while !continue_ do
    match tpeek ts with
    | Some (Top op) -> (
        match binop_of op with
        | Some (bop, prec) when prec >= min_prec ->
            ignore (tnext ts);
            let rhs = parse_binary ts (prec + 1) in
            lhs := Bin (bop, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary ts =
  match tpeek ts with
  | Some (Top "-") -> (
      ignore (tnext ts);
      (* Fold a negated literal into the literal, so `-3` parses to the same
         AST the builders produce for (i (-3)) and round-trips as `-3`. *)
      match tpeek ts with
      | Some (Tint n) ->
          ignore (tnext ts);
          Int (-n)
      | _ -> Neg (parse_unary ts))
  | Some (Top "!") ->
      ignore (tnext ts);
      Not (parse_unary ts)
  | _ -> parse_primary ts

and parse_primary ts =
  match tnext ts with
  | Tint n -> Int n
  | Top "(" ->
      let e = parse_expr ts in
      texpect ts ")";
      e
  | Tid "len" when tpeek ts = Some (Top "(") ->
      ignore (tnext ts);
      let a = tident ts in
      texpect ts ")";
      Len a
  | Tid (("min" | "max") as mm) when tpeek ts = Some (Top "(") ->
      ignore (tnext ts);
      let a = parse_expr ts in
      texpect ts ",";
      let b = parse_expr ts in
      texpect ts ")";
      Bin ((if mm = "min" then Min else Max), a, b)
  | Tid f when tpeek ts = Some (Top "(") ->
      ignore (tnext ts);
      Call (f, parse_args ts)
  | Tid a when tpeek ts = Some (Top "[") ->
      ignore (tnext ts);
      let idx = parse_expr ts in
      texpect ts "]";
      Idx (a, idx)
  | Tid x -> Var x
  | t -> fail ts.lineno "expected expression, got %s" (token_to_string t)

and parse_args ts =
  if tpeek ts = Some (Top ")") then (
    ignore (tnext ts);
    [])
  else begin
    let rec go acc =
      let e = parse_expr ts in
      match tnext ts with
      | Top "," -> go (e :: acc)
      | Top ")" -> List.rev (e :: acc)
      | t -> fail ts.lineno "expected ',' or ')', got %s" (token_to_string t)
    in
    go []
  end

let expr_done ts =
  match ts.toks with
  | [] -> ()
  | t :: _ -> fail ts.lineno "trailing tokens after statement: %s" (token_to_string t)

(* ---- statements ---- *)

let st = Builder.stmt

(* Apply an explicit line prefix to a freshly parsed statement; its absence
   on a statement line means the whole program falls back to renumbering. *)
let stamp cur explicit (s : Ast.stmt) =
  (match explicit with
  | Some n -> s.line <- n
  | None -> cur.all_numbered <- false);
  s

(* A closing line: `}` alone or `} else {`. *)
let is_close toks = toks = [ Top "}" ]
let is_else toks = toks = [ Top "}"; Tid "else"; Top "{" ]

let is_thread_header toks =
  match toks with
  | [ Tid "thread"; Tint _; Top ":" ] -> true
  | _ -> false

let expect_open ts =
  texpect ts "{";
  expr_done ts

let rec parse_block cur : block =
  let rec go acc =
    match peek cur with
    | None -> fail 0 "unexpected end of input: unclosed block"
    | Some (_, _, toks)
      when is_close toks || is_else toks || is_thread_header toks ->
        List.rev acc
    | Some _ -> go (parse_stmt cur :: acc)
  in
  go []

and parse_stmt cur : stmt =
  let lineno, explicit, toks = next cur in
  let ts = { lineno; toks } in
  let st n = stamp cur explicit (st n) in
  match tnext ts with
  | Tid "var" -> (
      let x = tident ts in
      match tnext ts with
      | Top "=" ->
          let e = parse_expr ts in
          expr_done ts;
          st (Decl (x, e))
      | Top "[" ->
          let e = parse_expr ts in
          texpect ts "]";
          expr_done ts;
          st (Decl_arr (x, e))
      | t -> fail lineno "expected '=' or '[' after var %s, got %s" x (token_to_string t))
  | Tid "atomic" ->
      let l = parse_lhs ts in
      texpect ts "=";
      let e = parse_expr ts in
      expr_done ts;
      st (Atomic_assign (l, e))
  | Tid "if" ->
      texpect ts "(";
      let c = parse_expr ts in
      texpect ts ")";
      expect_open ts;
      let then_ = parse_block cur in
      let lineno', _, close = next cur in
      if is_else close then begin
        let else_ = parse_block cur in
        let _, _, close' = next cur in
        if not (is_close close') then fail lineno' "expected '}' closing else";
        st (If (c, then_, else_))
      end
      else if is_close close then st (If (c, then_, []))
      else fail lineno' "expected '}' or '} else {'"
  | Tid "while" ->
      texpect ts "(";
      let c = parse_expr ts in
      texpect ts ")";
      expect_open ts;
      let body = parse_block cur in
      expect_close cur;
      st (While (c, body))
  | Tid "for" ->
      (* Pretty emits `for (i = 0; i < n; i++) {`; hand-written input may
         drop the parentheses. *)
      let parens = tpeek ts = Some (Top "(") in
      if parens then texpect ts "(";
      let i = tident ts in
      texpect ts "=";
      let lo = parse_expr ts in
      texpect ts ";";
      let i2 = tident ts in
      if i2 <> i then fail lineno "for condition tests %s, expected %s" i2 i;
      texpect ts "<";
      let hi = parse_expr ts in
      texpect ts ";";
      let i3 = tident ts in
      if i3 <> i then fail lineno "for update names %s, expected %s" i3 i;
      let step =
        match tnext ts with
        | Top "++" -> Int 1
        | Top "+=" -> parse_expr ts
        | t -> fail lineno "expected '++' or '+=', got %s" (token_to_string t)
      in
      if parens then texpect ts ")";
      expect_open ts;
      let body = parse_block cur in
      expect_close cur;
      st (For { index = i; lo; hi; step; body })
  | Tid "par" ->
      expect_open ts;
      let rec sections acc =
        match peek cur with
        | Some (_, _, toks) when is_thread_header toks ->
            ignore (next cur);
            let b = parse_block cur in
            sections (b :: acc)
        | Some (_, _, toks) when is_close toks ->
            ignore (next cur);
            List.rev acc
        | Some (l, _, _) -> fail l "expected 'thread N:' or '}' in par block"
        | None -> fail 0 "unexpected end of input in par block"
      in
      st (Par (sections []))
  | Tid "return" ->
      if ts.toks = [] then st (Return None)
      else begin
        let e = parse_expr ts in
        expr_done ts;
        st (Return (Some e))
      end
  | Tid "break" ->
      expr_done ts;
      st Break
  | Tid (("lock" | "unlock" | "barrier" | "free") as kw)
    when tpeek ts = Some (Top "(") -> (
      ignore (tnext ts);
      let m = tident ts in
      texpect ts ")";
      expr_done ts;
      match kw with
      | "lock" -> st (Lock m)
      | "unlock" -> st (Unlock m)
      | "barrier" -> st (Barrier m)
      | _ -> st (Free m))
  | Tid f when tpeek ts = Some (Top "(") ->
      ignore (tnext ts);
      let args = parse_args ts in
      expr_done ts;
      st (Call_stmt (f, args))
  | Tid x when tpeek ts = Some (Top "[") ->
      ignore (tnext ts);
      let idx = parse_expr ts in
      texpect ts "]";
      texpect ts "=";
      let e = parse_expr ts in
      expr_done ts;
      st (Assign (Lidx (x, idx), e))
  | Tid x when tpeek ts = Some (Top "+=") ->
      (* hand-written sugar: `s += e` is `s = (s + e)` *)
      ignore (tnext ts);
      let e = parse_expr ts in
      expr_done ts;
      st (Assign (Lvar x, Bin (Add, Var x, e)))
  | Tid x ->
      texpect ts "=";
      let e = parse_expr ts in
      expr_done ts;
      st (Assign (Lvar x, e))
  | t -> fail lineno "expected statement, got %s" (token_to_string t)

and parse_lhs ts =
  let x = tident ts in
  if tpeek ts = Some (Top "[") then begin
    ignore (tnext ts);
    let idx = parse_expr ts in
    texpect ts "]";
    Lidx (x, idx)
  end
  else Lvar x

and expect_close cur =
  let lineno, _, toks = next cur in
  if not (is_close toks) then fail lineno "expected '}'"

(* ---- top level ---- *)

let parse_global lineno ts : global =
  let name = tident ts in
  match tnext ts with
  | Top "=" -> (
      match tnext ts with
      | Tint v ->
          expr_done ts;
          Gscalar (name, v)
      | Top "-" -> (
          match tnext ts with
          | Tint v ->
              expr_done ts;
              Gscalar (name, -v)
          | t -> fail lineno "expected integer, got %s" (token_to_string t))
      | t -> fail lineno "expected integer initialiser, got %s" (token_to_string t))
  | Top "[" -> (
      match tnext ts with
      | Tint size ->
          texpect ts "]";
          expr_done ts;
          Garray (name, size)
      | t -> fail lineno "expected integer size, got %s" (token_to_string t))
  | t -> fail lineno "expected '=' or '[' after global %s, got %s" name (token_to_string t)

let parse_func cur lineno explicit ts : func =
  (match explicit with None -> cur.all_numbered <- false | Some _ -> ());
  let name = tident ts in
  texpect ts "(";
  let params = ref [] and arr_params = ref [] in
  (if tpeek ts = Some (Top ")") then ignore (tnext ts)
   else
     let rec go () =
       let p = tident ts in
       let is_arr =
         if tpeek ts = Some (Top "[") then begin
           ignore (tnext ts);
           texpect ts "]";
           true
         end
         else false
       in
       if is_arr then arr_params := p :: !arr_params
       else params := p :: !params;
       match tnext ts with
       | Top "," -> go ()
       | Top ")" -> ()
       | t -> fail lineno "expected ',' or ')', got %s" (token_to_string t)
     in
     go ());
  expect_open ts;
  let body = parse_block cur in
  expect_close cur;
  { fname = name;
    params = List.rev !params;
    arr_params = List.rev !arr_params;
    body;
    fline = (match explicit with Some n -> n | None -> 0) }

let program ?(name = "posted") ?entry (src : string) :
    (Ast.program, string) result =
  try
    let cur = make_cursor src in
    let globals = ref [] and funcs = ref [] in
    while peek cur <> None do
      let lineno, explicit, toks = next cur in
      let ts = { lineno; toks } in
      match tnext ts with
      | Tid "global" -> globals := parse_global lineno ts :: !globals
      | Tid "func" -> funcs := parse_func cur lineno explicit ts :: !funcs
      | t -> fail lineno "expected 'global' or 'func', got %s" (token_to_string t)
    done;
    let funcs = List.rev !funcs in
    if funcs = [] then Error "no functions in program"
    else begin
      let entry =
        match entry with
        | Some e -> e
        | None ->
            if List.exists (fun f -> f.fname = "main") funcs then "main"
            else (List.hd funcs).fname
      in
      if not (List.exists (fun f -> f.fname = entry) funcs) then
        Error (Printf.sprintf "entry function %s not defined" entry)
      else
        let p = { pname = name; globals = List.rev !globals; funcs; entry } in
        (* Explicit line prefixes on every statement are authoritative —
           keeping them makes render∘parse the identity on rendered
           programs even when lines are gapped (DCE) or duplicated
           (unrolling). Hand-written sources without them are numbered
           pre-order as before. *)
        Ok (if cur.all_numbered then p else Builder.number p)
    end
  with
  | Fail (0, msg) -> Error msg
  | Fail (lineno, msg) -> Error (Printf.sprintf "line %d: %s" lineno msg)
