(* Rewrite and substitution utilities over MIL ASTs.

   The transform subsystem (lib/transform) edits programs mechanically:
   deep-copy (statements are mutable because of [line] patching, so a
   transformed program must never share them with the original the
   suggestions were computed on), variable renaming for privatisation and
   reduction rewriting, statement replacement by source line, and the
   syntactic feasibility probes (calls, transitive rand use, escaping
   control flow) a transform must run before touching a region. *)

open Ast

(* ---- deep copy ---- *)

let rec copy_stmt (s : stmt) : stmt =
  let node =
    match s.node with
    | Decl _ | Decl_arr _ | Assign _ | Atomic_assign _ | Call_stmt _
    | Return _ | Break | Lock _ | Unlock _ | Barrier _ | Free _ ->
        s.node
    | If (c, t, e) -> If (c, copy_block t, copy_block e)
    | While (c, b) -> While (c, copy_block b)
    | For f -> For { f with body = copy_block f.body }
    | Par blocks -> Par (List.map copy_block blocks)
  in
  { line = s.line; node }

and copy_block (b : block) : block = List.map copy_stmt b

let copy_func (f : func) : func = { f with body = copy_block f.body }

let copy_program (p : program) : program =
  { p with funcs = List.map copy_func p.funcs }

(* ---- variable renaming ----

   Renames every occurrence of a name: scalar reads/writes, array
   reads/writes, lengths, declarations. Function parameters and call
   arguments are expressions and rename with the rest; callee bodies are
   separate scopes and are not touched. *)

let rec rename_expr ~from ~to_ (e : expr) : expr =
  let r = rename_expr ~from ~to_ in
  match e with
  | Int _ -> e
  | Var x -> if x = from then Var to_ else e
  | Idx (a, ie) -> Idx ((if a = from then to_ else a), r ie)
  | Len a -> if a = from then Len to_ else e
  | Bin (op, e1, e2) -> Bin (op, r e1, r e2)
  | Neg e1 -> Neg (r e1)
  | Not e1 -> Not (r e1)
  | Call (f, args) -> Call (f, List.map r args)

let rename_lhs ~from ~to_ (l : lhs) : lhs =
  match l with
  | Lvar x -> if x = from then Lvar to_ else l
  | Lidx (a, ie) ->
      Lidx ((if a = from then to_ else a), rename_expr ~from ~to_ ie)

let rec rename_stmt ~from ~to_ (s : stmt) : stmt =
  let re = rename_expr ~from ~to_ in
  let rl = rename_lhs ~from ~to_ in
  let rb = rename_block ~from ~to_ in
  let node =
    match s.node with
    | Decl (x, e) -> Decl ((if x = from then to_ else x), re e)
    | Decl_arr (x, e) -> Decl_arr ((if x = from then to_ else x), re e)
    | Assign (l, e) -> Assign (rl l, re e)
    | Atomic_assign (l, e) -> Atomic_assign (rl l, re e)
    | If (c, t, e) -> If (re c, rb t, rb e)
    | While (c, b) -> While (re c, rb b)
    | For f ->
        For
          { index = (if f.index = from then to_ else f.index);
            lo = re f.lo; hi = re f.hi; step = re f.step; body = rb f.body }
    | Call_stmt (f, args) -> Call_stmt (f, List.map re args)
    | Return (Some e) -> Return (Some (re e))
    | Return None | Break | Lock _ | Unlock _ | Barrier _ -> s.node
    | Free x -> Free (if x = from then to_ else x)
    | Par blocks -> Par (List.map rb blocks)
  in
  { line = s.line; node }

and rename_block ~from ~to_ (b : block) : block =
  List.map (rename_stmt ~from ~to_) b

(* ---- statement search / replacement by source line ---- *)

let rec replace_in_block (b : block) ~line ~(f : stmt -> stmt list) :
    block * bool =
  match b with
  | [] -> ([], false)
  | s :: rest when s.line = line ->
      (f s @ rest, true)
  | s :: rest ->
      let s', hit = replace_in_stmt s ~line ~f in
      if hit then (s' :: rest, true)
      else
        let rest', hit = replace_in_block rest ~line ~f in
        (s :: rest', hit)

and replace_in_stmt (s : stmt) ~line ~f : stmt * bool =
  let wrap node = { line = s.line; node } in
  match s.node with
  | If (c, t, e) ->
      let t', hit = replace_in_block t ~line ~f in
      if hit then (wrap (If (c, t', e)), true)
      else
        let e', hit = replace_in_block e ~line ~f in
        (wrap (If (c, t, e')), hit)
  | While (c, b) ->
      let b', hit = replace_in_block b ~line ~f in
      (wrap (While (c, b')), hit)
  | For fl ->
      let b', hit = replace_in_block fl.body ~line ~f in
      (wrap (For { fl with body = b' }), hit)
  | Par blocks ->
      let rec go = function
        | [] -> ([], false)
        | blk :: rest ->
            let blk', hit = replace_in_block blk ~line ~f in
            if hit then (blk' :: rest, true)
            else
              let rest', hit = go rest in
              (blk :: rest', hit)
      in
      let blocks', hit = go blocks in
      (wrap (Par blocks'), hit)
  | _ -> (s, false)

let replace_by_line (p : program) ~line ~(f : stmt -> stmt list) :
    program option =
  let rec go = function
    | [] -> None
    | fn :: rest -> (
        let body', hit = replace_in_block fn.body ~line ~f in
        if hit then Some ({ fn with body = body' } :: rest)
        else match go rest with Some rest' -> Some (fn :: rest') | None -> None)
  in
  Option.map (fun funcs -> { p with funcs }) (go p.funcs)

let rec find_in_block (b : block) ~line : stmt option =
  List.find_map
    (fun s ->
      if s.line = line then Some s
      else
        match s.node with
        | If (_, t, e) -> (
            match find_in_block t ~line with
            | Some r -> Some r
            | None -> find_in_block e ~line)
        | While (_, body) | For { body; _ } -> find_in_block body ~line
        | Par blocks -> List.find_map (fun blk -> find_in_block blk ~line) blocks
        | _ -> None)
    b

let find_by_line (p : program) ~line : (stmt * string) option =
  List.find_map
    (fun fn ->
      Option.map (fun s -> (s, fn.fname)) (find_in_block fn.body ~line))
    p.funcs

(* ---- syntactic probes ---- *)

let rec expr_calls (e : expr) acc =
  match e with
  | Int _ | Var _ | Len _ -> acc
  | Idx (_, ie) -> expr_calls ie acc
  | Bin (_, e1, e2) -> expr_calls e1 (expr_calls e2 acc)
  | Neg e1 | Not e1 -> expr_calls e1 acc
  | Call (f, args) -> f :: List.fold_right expr_calls args acc

let expr_has_call e = expr_calls e [] <> []

let rec block_calls (b : block) acc =
  List.fold_right
    (fun s acc ->
      match s.node with
      | Decl (_, e) | Decl_arr (_, e) | Return (Some e) -> expr_calls e acc
      | Assign (l, e) | Atomic_assign (l, e) ->
          let acc = expr_calls e acc in
          (match l with Lidx (_, ie) -> expr_calls ie acc | Lvar _ -> acc)
      | If (c, t, els) -> expr_calls c (block_calls t (block_calls els acc))
      | While (c, body) -> expr_calls c (block_calls body acc)
      | For { lo; hi; step; body; _ } ->
          expr_calls lo (expr_calls hi (expr_calls step (block_calls body acc)))
      | Call_stmt (f, args) -> f :: List.fold_right expr_calls args acc
      | Par blocks -> List.fold_right block_calls blocks acc
      | Return None | Break | Lock _ | Unlock _ | Barrier _ | Free _ -> acc)
    b acc

(* Transitive closure of the call names reachable from [b], following user
   function bodies; builtin names ("rand", "abs", "print") stay in the set
   as leaves. *)
let reachable_calls (p : program) (b : block) : string list =
  let seen = Hashtbl.create 8 in
  let rec visit names =
    List.iter
      (fun name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          match List.find_opt (fun f -> f.fname = name) p.funcs with
          | Some f -> visit (block_calls f.body [])
          | None -> ()
        end)
      names
  in
  visit (block_calls b []);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let calls_transitively (p : program) (b : block) name =
  List.mem name (reachable_calls p b)

(* Thread-parallelism or synchronisation constructs anywhere in the block
   (directly; callee bodies are not inspected). *)
let rec has_sync (b : block) =
  List.exists
    (fun s ->
      match s.node with
      | Par _ | Lock _ | Unlock _ | Barrier _ -> true
      | If (_, t, e) -> has_sync t || has_sync e
      | While (_, body) | For { body; _ } -> has_sync body
      | _ -> false)
    b

let rec has_return (b : block) =
  List.exists
    (fun s ->
      match s.node with
      | Return _ -> true
      | If (_, t, e) -> has_return t || has_return e
      | While (_, body) | For { body; _ } -> has_return body
      | Par blocks -> List.exists has_return blocks
      | _ -> false)
    b

(* A [Break] that would escape the region's own loop: one not nested inside
   a deeper loop of the block. *)
let rec has_toplevel_break (b : block) =
  List.exists
    (fun s ->
      match s.node with
      | Break -> true
      | If (_, t, e) -> has_toplevel_break t || has_toplevel_break e
      | While _ | For _ -> false
      | Par blocks -> List.exists has_toplevel_break blocks
      | _ -> false)
    b
