(** Parsing MIL source text back into {!Ast.program} — the inverse of
    {!Pretty.render_program}, and the front door of [discopop serve], which
    receives programs as text over HTTP rather than as OCaml builder calls.

    The grammar is exactly what {!Pretty} emits (one statement per line,
    blocks delimited by braces on the statement's line), with a few
    conveniences for hand-written sources: leading line numbers are optional,
    binary expressions need not be fully parenthesised (C-like precedence),
    [#]- and [//]-comments run to end of line, and [i += 1] is accepted for
    [i++]. [parse] after [render] is idempotent — a parsed program re-renders
    to the same bytes on every further round-trip — which keeps
    content-addressed cache keys stable across the text boundary. (Builder
    programs that share statement records, e.g. via [Builder.return_unit],
    render with duplicated line numbers and re-render with fresh pre-order
    ones after the first parse; everything else round-trips byte-identically.) *)

val program :
  ?name:string -> ?entry:string -> string -> (Ast.program, string) result
(** Parse a whole program. [name] (default ["posted"]) becomes [pname];
    [entry] selects the entry function (default: [main] if present, else the
    first function). Statements are renumbered with {!Builder.number}, so
    line numbers in the input are ignored. Errors carry the 1-based source
    line: [Error "line 12: expected ')'"]. *)
