(* The MIL optimization-pass framework — ROADMAP item 3, modeled on flrc's
   mil/optimise architecture: a registry of named [program -> program]
   passes, per-pass Obs click counters ([pass.<name>.fired],
   [pass.<name>.stmts_removed], [pass.<name>.exprs_folded],
   [pass.<name>.refused]), and a fixpoint pipeline driver.

   Two invariants every pass must keep:

   - Observation preservation: the entry function's result, the final value
     of every program global, and the [print] stream are exactly those of
     the input program, for every seed ({!Transform.Validate.observe}).
     This forces two safety tiers. Passes that preserve the *dynamic
     statement count* (folding, constant propagation, branch-condition
     normalisation) are legal everywhere, even inside [Par] — the fiber
     scheduler and the [rand] builtin share one PRNG, and yields happen per
     executed statement, so only statement-count changes can perturb
     scheduling and thereby the rand stream. Restructuring passes (DCE,
     hoisting, unrolling, splicing) change statement counts and therefore
     run only on programs with no sync constructs anywhere; on anything
     else they click [pass.<name>.refused] and return the program
     untouched, never a silent misrewrite.

   - Line identity: surviving statements keep their [line] numbers
     (depfiles and suggestions are keyed by source line), and statements a
     pass introduces reuse the line of the construct they came from — so an
     optimized program's depfile lines are a subset of the seed's, and
     [Pretty.render] ∘ [Parse.program] stays idempotent (the parser
     preserves explicit line prefixes). *)

open Ast
module SS = Static.SS

(* ---- syntactic helpers ---- *)

let rec pure_simple (e : expr) =
  (* No faults, no events beyond scalar reads, no calls: safe to evaluate
     anywhere the same names are in scope, and safe to drop. [Len]/[Idx]
     are excluded — they fault on unbound arrays / OOB indices. *)
  match e with
  | Int _ | Var _ -> true
  | Bin (_, a, b) -> pure_simple a && pure_simple b
  | Neg a | Not a -> pure_simple a
  | Idx _ | Len _ | Call _ -> false

let expr_reads e = Static.expr_read_vars e SS.empty

let rec expr_has_idx = function
  | Int _ | Var _ | Len _ -> false
  | Idx _ -> true
  | Neg a | Not a -> expr_has_idx a
  | Bin (_, a, b) -> expr_has_idx a || expr_has_idx b
  | Call (_, args) -> List.exists expr_has_idx args

(* Every name an expression mentions, including array names. *)
let rec expr_mentions e acc =
  match e with
  | Int _ -> acc
  | Var x | Len x -> SS.add x acc
  | Idx (a, i) -> expr_mentions i (SS.add a acc)
  | Neg a | Not a -> expr_mentions a acc
  | Bin (_, a, b) -> expr_mentions a (expr_mentions b acc)
  | Call (_, args) -> List.fold_left (fun acc a -> expr_mentions a acc) acc args

let lhs_mentions l acc =
  match l with
  | Lvar x -> SS.add x acc
  | Lidx (a, i) -> expr_mentions i (SS.add a acc)

(* All names a block mentions anywhere: reads, writes, binders, indices. *)
let rec block_mentions b acc = List.fold_left (fun acc s -> stmt_mentions s acc) acc b

and stmt_mentions s acc =
  match s.node with
  | Decl (x, e) -> expr_mentions e (SS.add x acc)
  | Decl_arr (x, e) -> expr_mentions e (SS.add x acc)
  | Assign (l, e) | Atomic_assign (l, e) -> expr_mentions e (lhs_mentions l acc)
  | If (c, t, el) -> block_mentions el (block_mentions t (expr_mentions c acc))
  | While (c, body) -> block_mentions body (expr_mentions c acc)
  | For { index; lo; hi; step; body } ->
      block_mentions body
        (expr_mentions step
           (expr_mentions hi (expr_mentions lo (SS.add index acc))))
  | Call_stmt (_, args) ->
      List.fold_left (fun acc a -> expr_mentions a acc) acc args
  | Return (Some e) -> expr_mentions e acc
  | Return None | Break | Lock _ | Unlock _ | Barrier _ -> acc
  | Free x -> SS.add x acc
  | Par arms -> List.fold_left (fun acc b -> block_mentions b acc) acc arms

(* Names assigned (scalar writes) anywhere in a block, at any depth. *)
let rec block_assigns b acc = List.fold_left (fun acc s -> stmt_assigns s acc) acc b

and stmt_assigns s acc =
  match s.node with
  | Assign (Lvar x, _) | Atomic_assign (Lvar x, _) -> SS.add x acc
  | Assign (Lidx _, _) | Atomic_assign (Lidx _, _) -> acc
  | Decl _ | Decl_arr _ | Call_stmt _ | Return _ | Break | Lock _ | Unlock _
  | Barrier _ | Free _ ->
      acc
  | If (_, t, el) -> block_assigns el (block_assigns t acc)
  | While (_, body) -> block_assigns body acc
  | For { body; _ } -> block_assigns body acc
  | Par arms -> List.fold_left (fun acc b -> block_assigns b acc) acc arms

(* Names bound by Decl/Decl_arr or used as a For index, at any depth. *)
let rec block_binders b acc = List.fold_left (fun acc s -> stmt_binders s acc) acc b

and stmt_binders s acc =
  match s.node with
  | Decl (x, _) | Decl_arr (x, _) -> SS.add x acc
  | For { index; body; _ } -> block_binders body (SS.add index acc)
  | If (_, t, el) -> block_binders el (block_binders t acc)
  | While (_, body) -> block_binders body acc
  | Par arms -> List.fold_left (fun acc b -> block_binders b acc) acc arms
  | Assign _ | Atomic_assign _ | Call_stmt _ | Return _ | Break | Lock _
  | Unlock _ | Barrier _ | Free _ ->
      acc

let rec block_frees b acc = List.fold_left (fun acc s -> stmt_frees s acc) acc b

and stmt_frees s acc =
  match s.node with
  | Free x -> SS.add x acc
  | If (_, t, el) -> block_frees el (block_frees t acc)
  | While (_, body) -> block_frees body acc
  | For { body; _ } -> block_frees body acc
  | Par arms -> List.fold_left (fun acc b -> block_frees b acc) acc arms
  | _ -> acc

let rec count_stmts b = List.fold_left (fun n s -> n + count_stmt s) 0 b

and count_stmt s =
  1
  +
  match s.node with
  | If (_, t, el) -> count_stmts t + count_stmts el
  | While (_, body) | For { body; _ } -> count_stmts body
  | Par arms -> List.fold_left (fun n b -> n + count_stmts b) 0 arms
  | _ -> 0

let mk line node = { line; node }

(* Substitute [Var x] by expression [by] everywhere in an expression.
   Callers must ensure no binder of [x] shadows inside the walked region. *)
let rec subst_var x by e =
  match e with
  | Var y when y = x -> by
  | Int _ | Var _ | Len _ -> e
  | Idx (a, i) -> Idx (a, subst_var x by i)
  | Neg a -> Neg (subst_var x by a)
  | Not a -> Not (subst_var x by a)
  | Bin (op, a, b) -> Bin (op, subst_var x by a, subst_var x by b)
  | Call (f, args) -> Call (f, List.map (subst_var x by) args)

let rec subst_var_block x by b = List.map (subst_var_stmt x by) b

and subst_var_stmt x by s =
  let e = subst_var x by in
  let node =
    match s.node with
    | Decl (y, rhs) -> Decl (y, e rhs)
    | Decl_arr (y, se) -> Decl_arr (y, e se)
    | Assign (l, rhs) -> Assign (subst_lhs x by l, e rhs)
    | Atomic_assign (l, rhs) -> Atomic_assign (subst_lhs x by l, e rhs)
    | If (c, t, el) -> If (e c, subst_var_block x by t, subst_var_block x by el)
    | While (c, body) -> While (e c, subst_var_block x by body)
    | For f ->
        For
          { f with
            lo = e f.lo;
            hi = e f.hi;
            step = e f.step;
            body = subst_var_block x by f.body }
    | Call_stmt (f, args) -> Call_stmt (f, List.map e args)
    | Return (Some r) -> Return (Some (e r))
    | (Return None | Break | Lock _ | Unlock _ | Barrier _ | Free _) as n -> n
    | Par arms -> Par (List.map (subst_var_block x by) arms)
  in
  mk s.line node

and subst_lhs x by l =
  match l with Lvar _ -> l | Lidx (a, i) -> Lidx (a, subst_var x by i)

(* Can this expression's evaluation be skipped without dropping an effect?
   Scalar arithmetic always; calls only when everything transitively
   reachable is effect-free by {!Static.summary} (writes no globals, writes
   no array params) and never reaches [rand]/[print]. [Idx] is refused so a
   pass never masks an out-of-bounds fault the seed would have hit. *)
let droppable_rhs (st : Static.t Lazy.t) prog (e : expr) =
  (not (expr_has_idx e))
  &&
  if not (Rewrite.expr_has_call e) then true
  else
    let probe = [ mk 0 (Call_stmt ("__probe", [ e ])) ] in
    let callees = Rewrite.reachable_calls prog probe in
    List.for_all
      (fun f ->
        match f with
        | "rand" | "print" -> false
        | "abs" -> true
        | "__probe" -> true
        | f -> (
            match Static.summary (Lazy.force st) f with
            | Some s -> SS.is_empty s.sum_gwritten && SS.is_empty s.sum_pwritten
            | None -> false))
      callees

(* ---- pass plumbing ---- *)

type ctx = {
  prog : program;
  sequential : bool; (* no Par/Lock/Unlock/Barrier anywhere in the program *)
  globals : SS.t;
  static : Static.t Lazy.t;
  mutable changes : int;
  mutable fresh : int; (* unroll name counter, unique per driver run *)
  pass : string;
  debug : bool;
}

let click ctx what n =
  if n > 0 then Obs.Counter.add (Obs.counter (Printf.sprintf "pass.%s.%s" ctx.pass what)) n

let note ctx what n =
  if n > 0 then begin
    ctx.changes <- ctx.changes + n;
    click ctx what n;
    if ctx.debug then
      Printf.eprintf "[pass.%s] %s +%d\n%!" ctx.pass what n
  end

type t = {
  name : string;
  doc : string;
  restructuring : bool;
      (* changes dynamic statement counts: sequential programs only *)
  rewrite : ctx -> program -> program;
}

let map_funcs f (p : program) =
  { p with funcs = List.map (fun fn -> { fn with body = f fn fn.body }) p.funcs }

(* ---- constant folding ---- *)

let fold_pass =
  let rec fe ctx e =
    match e with
    | Int _ | Var _ | Len _ -> e
    | Idx (a, i) -> Idx (a, fe ctx i)
    | Neg a -> (
        match fe ctx a with
        | Int n ->
            note ctx "exprs_folded" 1;
            Int (-n)
        | a' -> Neg a')
    | Not a -> (
        match fe ctx a with
        | Int n ->
            note ctx "exprs_folded" 1;
            Int (if n <> 0 then 0 else 1)
        | a' -> Not a')
    | Call (f, args) -> Call (f, List.map (fe ctx) args)
    | Bin (op, a, b) -> (
        let a = fe ctx a and b = fe ctx b in
        let hit e' =
          note ctx "exprs_folded" 1;
          e'
        in
        match (op, a, b) with
        (* Division/mod by a literal zero is left intact: the interpreter
           defines it (yields 0), but the fold must not normalise away the
           anomaly the source spells out. *)
        | (Div | Mod), _, Int 0 -> Bin (op, a, b)
        | _, Int x, Int y -> hit (Int (Interp.apply_binop op x y))
        | Add, x, Int 0 | Add, Int 0, x | Sub, x, Int 0 -> hit x
        | Mul, x, Int 1 | Mul, Int 1, x | Div, x, Int 1 -> hit x
        | (Shl | Shr), x, Int 0 -> hit x
        | Mul, x, Int 0 | Mul, Int 0, x when pure_simple x -> hit (Int 0)
        | And, x, Int 0 | And, Int 0, x when pure_simple x -> hit (Int 0)
        | Or, x, Int c when c <> 0 && pure_simple x -> hit (Int 1)
        | Or, Int c, x when c <> 0 && pure_simple x -> hit (Int 1)
        | _ -> Bin (op, a, b))
  in
  let rec fs ctx s =
    let e = fe ctx in
    let node =
      match s.node with
      | Decl (x, rhs) -> Decl (x, e rhs)
      | Decl_arr (x, se) -> Decl_arr (x, e se)
      | Assign (l, rhs) -> Assign (flhs ctx l, e rhs)
      | Atomic_assign (l, rhs) -> Atomic_assign (flhs ctx l, e rhs)
      | If (c, t, el) -> If (e c, List.map (fs ctx) t, List.map (fs ctx) el)
      | While (c, body) -> While (e c, List.map (fs ctx) body)
      | For f ->
          For
            { f with
              lo = e f.lo;
              hi = e f.hi;
              step = e f.step;
              body = List.map (fs ctx) f.body }
      | Call_stmt (f, args) -> Call_stmt (f, List.map e args)
      | Return (Some r) -> Return (Some (e r))
      | (Return None | Break | Lock _ | Unlock _ | Barrier _ | Free _) as n -> n
      | Par arms -> Par (List.map (List.map (fs ctx)) arms)
    in
    mk s.line node
  and flhs ctx = function
    | Lvar x -> Lvar x
    | Lidx (a, i) -> Lidx (a, fe ctx i)
  in
  { name = "fold";
    doc = "constant folding and algebraic identities (div/mod-by-zero kept)";
    restructuring = false;
    rewrite = (fun ctx p -> map_funcs (fun _ b -> List.map (fs ctx) b) p) }

(* ---- constant propagation ---- *)

(* A [Decl (x, Int v)] whose name is never reassigned or freed in its scope
   lets every dominated read of [x] become the literal — each substituted
   read is one access event the profiler no longer pays for. Never-written
   scalar globals propagate the same way. Declarations are left in place
   (their removal is DCE's job, which runs only on sequential programs):
   substitution keeps the dynamic statement count, so it is legal inside
   [Par] arms — where it folds the DOALL chunk-bound arithmetic
   [__c0]/[__c1] into literal loop bounds. *)
let prop_pass =
  let module SM = Map.Make (String) in
  let rec subst ctx (env : int SM.t) e =
    if SM.is_empty env then e
    else
      match e with
      | Var x -> (
          match SM.find_opt x env with
          | Some v ->
              note ctx "exprs_folded" 1;
              Int v
          | None -> e)
      | Int _ | Len _ -> e
      | Idx (a, i) -> Idx (a, subst ctx env i)
      | Neg a -> Neg (subst ctx env a)
      | Not a -> Not (subst ctx env a)
      | Bin (op, a, b) -> Bin (op, subst ctx env a, subst ctx env b)
      | Call (f, args) -> Call (f, List.map (subst ctx env) args)
  in
  let rec walk ctx env block =
    match block with
    | [] -> []
    | s :: rest -> (
        match s.node with
        | Decl (x, rhs) ->
            let rhs = subst ctx !env rhs in
            (match rhs with
            | Int v
              when (not (SS.mem x (block_assigns rest SS.empty)))
                   && not (SS.mem x (block_frees rest SS.empty)) ->
                env := SM.add x v !env
            | _ -> env := SM.remove x !env);
            mk s.line (Decl (x, rhs)) :: walk ctx env rest
        | Decl_arr (x, se) ->
            let se = subst ctx !env se in
            env := SM.remove x !env;
            mk s.line (Decl_arr (x, se)) :: walk ctx env rest
        | Free x ->
            env := SM.remove x !env;
            s :: walk ctx env rest
        | Assign (l, rhs) ->
            let l = subst_l ctx !env l in
            let rhs = subst ctx !env rhs in
            (match l with Lvar x -> env := SM.remove x !env | Lidx _ -> ());
            mk s.line (Assign (l, rhs)) :: walk ctx env rest
        | Atomic_assign (l, rhs) ->
            let l = subst_l ctx !env l in
            let rhs = subst ctx !env rhs in
            (match l with Lvar x -> env := SM.remove x !env | Lidx _ -> ());
            mk s.line (Atomic_assign (l, rhs)) :: walk ctx env rest
        | If (c, t, el) ->
            let c = subst ctx !env c in
            let t = walk ctx (ref !env) t and el = walk ctx (ref !env) el in
            mk s.line (If (c, t, el)) :: walk ctx env rest
        | While (c, body) ->
            (* Anything the body writes is unknown across iterations — and
               the condition is re-evaluated after the body ran. *)
            let killed = block_assigns body (block_binders body SS.empty) in
            let env' = SM.filter (fun x _ -> not (SS.mem x killed)) !env in
            env := env';
            let c = subst ctx env' c in
            let body = walk ctx (ref env') body in
            mk s.line (While (c, body)) :: walk ctx env rest
        | For f ->
            let killed = block_assigns f.body (block_binders f.body SS.empty) in
            let env' = SM.filter (fun x _ -> not (SS.mem x killed)) !env in
            env := env';
            let lo = subst ctx env' f.lo in
            (* hi/step are evaluated with the index in scope. *)
            let env_in = SM.remove f.index env' in
            let hi = subst ctx env_in f.hi
            and step = subst ctx env_in f.step in
            let body = walk ctx (ref env_in) f.body in
            mk s.line (For { f with lo; hi; step; body }) :: walk ctx env rest
        | Call_stmt (f, args) ->
            mk s.line (Call_stmt (f, List.map (subst ctx !env) args))
            :: walk ctx env rest
        | Return (Some r) ->
            mk s.line (Return (Some (subst ctx !env r))) :: walk ctx env rest
        | Return None | Break | Lock _ | Unlock _ | Barrier _ ->
            s :: walk ctx env rest
        | Par arms ->
            (* Arms share the parent's bindings (copy-on-fork of the
               binding table, same addresses): a name is only propagated if
               no arm writes it — [block_assigns] above sees through [Par],
               and arm-local declarations shadow via the recursive walk. *)
            let arms = List.map (fun b -> walk ctx (ref !env) b) arms in
            mk s.line (Par arms) :: walk ctx env rest)
  and subst_l ctx env = function
    | Lvar x -> Lvar x
    | Lidx (a, i) -> Lidx (a, subst ctx env i)
  in
  let run ctx p =
    (* Scalar globals never assigned anywhere are program-wide constants. *)
    let written =
      List.fold_left
        (fun acc f -> block_assigns f.body acc)
        SS.empty p.funcs
    in
    let const_globals =
      List.filter_map
        (function
          | Gscalar (g, v) when not (SS.mem g written) -> Some (g, v)
          | _ -> None)
        p.globals
    in
    map_funcs
      (fun fn body ->
        let env0 =
          List.fold_left
            (fun m (g, v) ->
              if List.mem g fn.params || List.mem g fn.arr_params then m
              else SM.add g v m)
            SM.empty const_globals
        in
        walk ctx (ref env0) body)
      p
  in
  { name = "prop";
    doc = "forward propagation of constant locals and never-written globals";
    restructuring = false;
    rewrite = run }

(* ---- branch / diamond simplification ---- *)

let simplify_pass =
  let rec walk ctx block = List.concat_map (one ctx) block
  and one ctx s =
    match s.node with
    | If (Int c, t, el) ->
        let live, dead = if Interp.truthy c then (t, el) else (el, t) in
        let dropped = count_stmts dead in
        note ctx "stmts_removed" dropped;
        if c <> 1 || dead <> [] then note ctx "normalized" 1;
        let live = walk ctx live in
        if
          ctx.sequential
          && List.for_all
               (fun s' ->
                 match s'.node with Decl _ | Decl_arr _ -> false | _ -> true)
               live
        then begin
          (* Splicing the arm into the enclosing block removes the branch
             statement itself; arms with top-level declarations keep the
             [If] shell, since their bindings must not leak. *)
          note ctx "stmts_removed" 1;
          live
        end
        else [ mk s.line (If (Int 1, live, [])) ]
    | If (c, [], []) when ctx.sequential && pure_simple c ->
        note ctx "stmts_removed" 1;
        []
    | If (c, [], el) when el <> [] ->
        note ctx "normalized" 1;
        [ mk s.line (If (Not c, walk ctx el, [])) ]
    | If (c, t, el) -> [ mk s.line (If (c, walk ctx t, walk ctx el)) ]
    | While (Int 0, body) when ctx.sequential ->
        note ctx "stmts_removed" (1 + count_stmts body);
        []
    | While (c, body) -> [ mk s.line (While (c, walk ctx body)) ]
    | For ({ lo = Int l; hi = Int h; _ } as f) when ctx.sequential && h <= l ->
        note ctx "stmts_removed" (1 + count_stmts f.body);
        []
    | For f -> [ mk s.line (For { f with body = walk ctx f.body }) ]
    | Par arms -> [ mk s.line (Par (List.map (walk ctx) arms)) ]
    | _ -> [ s ]
  in
  { name = "simplify";
    doc = "branch simplification on known conditions, empty-arm collapse";
    restructuring = true;
    (* The statement-count-neutral subset (dead-arm dropping, arm flips)
       would be legal everywhere, but splice/removal is not; the pass is
       gated as a whole and applies the neutral subset via [ctx.sequential]
       checks when it does run. *)
    rewrite = (fun ctx p -> map_funcs (fun _ b -> walk ctx b) p) }

(* ---- dead code elimination ---- *)

(* Names a function actually *reads* (any occurrence that is not a plain
   scalar-assignment target): removal candidates must stay out of this set. *)
let func_reads (fn : func) =
  let rec blk b acc = List.fold_left (fun acc s -> stmt s acc) acc b
  and stmt s acc =
    match s.node with
    | Decl (_, e) | Decl_arr (_, e) -> expr_mentions e acc
    | Assign (Lvar _, e) | Atomic_assign (Lvar _, e) -> expr_mentions e acc
    | Assign (Lidx (a, i), e) | Atomic_assign (Lidx (a, i), e) ->
        expr_mentions e (expr_mentions i (SS.add a acc))
    | If (c, t, el) -> blk el (blk t (expr_mentions c acc))
    | While (c, body) -> blk body (expr_mentions c acc)
    | For { index; lo; hi; step; body } ->
        (* the loop's own bookkeeping reads the index address every
           iteration, so an index written in the body is live *)
        blk body
          (expr_mentions step
             (expr_mentions hi (expr_mentions lo (SS.add index acc))))
    | Call_stmt (_, args) ->
        List.fold_left (fun acc a -> expr_mentions a acc) acc args
    | Return (Some e) -> expr_mentions e acc
    | Return None | Break | Lock _ | Unlock _ | Barrier _ -> acc
    | Free x -> SS.add x acc
    | Par arms -> List.fold_left (fun acc b -> blk b acc) acc arms
  in
  blk fn.body SS.empty

let dce_pass =
  let run ctx p =
    map_funcs
      (fun fn body ->
        let reads = func_reads fn in
        let binders = block_binders body SS.empty in
        (* A scalar name is fully dead when nothing ever reads it, it names
           no global or parameter (assignments must keep hitting the same
           binding), and every write to it has a droppable RHS — then the
           declaration *and* all its assignments go together. *)
        let dead_ok x =
          (not (SS.mem x reads))
          && (not (SS.mem x ctx.globals))
          && (not (List.mem x fn.params))
          && (not (List.mem x fn.arr_params))
          && SS.mem x binders
        in
        let rhs_ok e = droppable_rhs ctx.static ctx.prog e in
        (* First reject names with any non-droppable write. *)
        let blocked = ref SS.empty in
        let rec scan b =
          List.iter
            (fun s ->
              match s.node with
              | Decl (x, e) when dead_ok x && not (rhs_ok e) ->
                  blocked := SS.add x !blocked
              | Assign (Lvar x, e) when dead_ok x && not (rhs_ok e) ->
                  blocked := SS.add x !blocked
              | Atomic_assign (Lvar x, _) when dead_ok x ->
                  blocked := SS.add x !blocked
              | Decl_arr (x, _) when dead_ok x ->
                  (* arrays keep their allocation (Len/addr semantics) *)
                  blocked := SS.add x !blocked
              | If (_, t, el) ->
                  scan t;
                  scan el
              | While (_, body) | For { body; _ } -> scan body
              | Par arms -> List.iter scan arms
              | _ -> ())
            b
        in
        scan body;
        let removable x = dead_ok x && not (SS.mem x !blocked) in
        let rec sweep b =
          let b =
            (* post-Return/Break trimming: nothing after an unconditional
               exit of the block executes *)
            let rec cut = function
              | [] -> []
              | ({ node = Return _ | Break; _ } as s) :: rest ->
                  note ctx "stmts_removed" (count_stmts rest);
                  [ s ]
              | s :: rest -> s :: cut rest
            in
            cut b
          in
          List.concat_map
            (fun s ->
              match s.node with
              | Decl (x, _) when removable x ->
                  note ctx "stmts_removed" 1;
                  []
              | Assign (Lvar x, _) when removable x ->
                  note ctx "stmts_removed" 1;
                  []
              | If (c, t, el) -> [ mk s.line (If (c, sweep t, sweep el)) ]
              | While (c, body) -> [ mk s.line (While (c, sweep body)) ]
              | For f -> [ mk s.line (For { f with body = sweep f.body }) ]
              | Par arms -> [ mk s.line (Par (List.map sweep arms)) ]
              | _ -> [ s ])
            b
        in
        sweep body)
      p
  in
  { name = "dce";
    doc = "remove never-read locals and unreachable post-return/break code";
    restructuring = true;
    rewrite = run }

(* ---- loop-invariant hoisting ---- *)

let hoist_pass =
  let run ctx p =
    map_funcs
      (fun fn body ->
        (* visible: names certainly bound when control reaches this point *)
        let rec walk visible block =
          match block with
          | [] -> []
          | s :: rest -> (
              let continue_with s' vis = s' :: walk vis rest in
              match s.node with
              | Decl (x, _) | Decl_arr (x, _) ->
                  continue_with s (SS.add x visible)
              | If (c, t, el) ->
                  continue_with
                    (mk s.line (If (c, walk visible t, walk visible el)))
                    visible
              | While (c, wb) ->
                  let hoisted, wb' = hoist_from visible s wb in
                  hoisted
                  @ continue_with
                      (mk s.line (While (c, walk visible wb')))
                      visible
              | For f ->
                  let hoisted, fb' = hoist_from visible s f.body in
                  hoisted
                  @ continue_with
                      (mk s.line
                         (For
                            { f with
                              body = walk (SS.add f.index visible) fb' }))
                      visible
              | Par arms ->
                  continue_with
                    (mk s.line (Par (List.map (walk visible) arms)))
                    visible
              | _ -> continue_with s visible)
        (* Pull invariant leading declarations out of a loop body. *)
        and hoist_from visible loop_stmt body =
          let index_of =
            match loop_stmt.node with
            | For { index; _ } -> Some index
            | _ -> None
          in
          let assigns = block_assigns body SS.empty in
          let binders = block_binders body SS.empty in
          (* occurrences of a name in the function, excluding this loop:
             a hoisted binding must not shadow or capture anything the rest
             of the function mentions *)
          let rec mentions_excl b acc =
            List.fold_left
              (fun acc s ->
                if s == loop_stmt then acc else stmt_mentions_excl s acc)
              acc b
          and stmt_mentions_excl s acc =
            match s.node with
            | If (c, t, el) ->
                mentions_excl el
                  (mentions_excl t (expr_mentions c acc))
            | While (c, b) -> mentions_excl b (expr_mentions c acc)
            | For { index; lo; hi; step; body = b; _ } ->
                mentions_excl b
                  (expr_mentions step
                     (expr_mentions hi
                        (expr_mentions lo (SS.add index acc))))
            | Par arms ->
                List.fold_left (fun acc b -> mentions_excl b acc) acc arms
            | _ -> stmt_mentions s acc
          in
          let outside_mentions = mentions_excl fn.body SS.empty in
          let rec take prefix rest =
            match rest with
            | ({ node = Decl (x, rhs); _ } as d) :: more
              when pure_simple rhs
                   && (let rv = expr_reads rhs in
                       SS.subset rv visible
                       && SS.is_empty (SS.inter rv assigns)
                       && SS.is_empty (SS.inter rv binders)
                       && match index_of with
                          | Some i -> not (SS.mem i rv)
                          | None -> true)
                   && (not (SS.mem x assigns))
                   && (not (SS.mem x outside_mentions))
                   && (not (SS.mem x ctx.globals))
                   && (match index_of with Some i -> x <> i | None -> true) ->
                note ctx "hoisted" 1;
                take (d :: prefix) more
            | _ -> (List.rev prefix, rest)
          in
          take [] body
        in
        let visible0 =
          List.fold_left
            (fun acc x -> SS.add x acc)
            ctx.globals (fn.params @ fn.arr_params)
        in
        walk visible0 body)
      p
  in
  { name = "hoist";
    doc = "hoist loop-invariant leading declarations out of loop bodies";
    restructuring = true;
    rewrite = run }

(* ---- loop unrolling ---- *)

(* The event-economics pass: each [For] iteration pays three bookkeeping
   accesses (condition index read, increment read+write) plus the bound
   re-evaluation. Fully unrolling a small constant-trip loop turns every
   index read into a literal and deletes all bookkeeping; partially
   unrolling a hot innermost loop amortises bookkeeping over [factor]
   body copies. Trip-count semantics (including negative/zero trips) follow
   the interpreter exactly; the remainder loop reuses the original body, so
   every surviving statement keeps its seed line. *)
let unroll_factor = 4

let unroll_pass =
  let marked index =
    String.length index >= 3 && String.sub index 0 3 = "__u"
  in
  let rec body_plain b =
    (* statements that neither escape the loop nor manage storage *)
    List.for_all
      (fun s ->
        match s.node with
        | Break | Return _ | Par _ | Lock _ | Unlock _ | Barrier _ | Free _
        | Decl_arr _ | Atomic_assign _ ->
            false
        | If (_, t, el) -> body_plain t && body_plain el
        | While (_, body) | For { body; _ } -> body_plain body
        | Decl _ | Assign _ | Call_stmt _ -> true)
      b
  in
  let rec has_loop b =
    List.exists
      (fun s ->
        match s.node with
        | While _ | For _ -> true
        | If (_, t, el) -> has_loop t || has_loop el
        | _ -> false)
      b
  in
  (* Partial unrolling pays a per-entry prelude (trip + main-bound decls);
     a loop that calls user code per iteration is dominated by the callee
     and is typically a short trip entered many times (recursive descent),
     where the prelude is a net loss — refuse those. Builtins stay fine. *)
  let has_user_call b =
    List.exists
      (fun f -> not (List.mem f [ "rand"; "abs"; "print" ]))
      (Rewrite.block_calls b [])
  in
  (* No top-level-declared name may be mentioned before its declaration:
     copies concatenate into one scope, so an early read would see the
     previous copy's binding instead of the enclosing scope's. *)
  let decl_order_ok body =
    let rec go seen = function
      | [] -> true
      | s :: rest -> (
          match s.node with
          | Decl (x, rhs) ->
              if SS.mem x (expr_mentions rhs SS.empty) then false
              else go (SS.add x seen) rest
          | _ ->
              let m = stmt_mentions s SS.empty in
              let later_decls =
                List.fold_left
                  (fun acc s' ->
                    match s'.node with
                    | Decl (x, _) -> SS.add x acc
                    | _ -> acc)
                  SS.empty rest
              in
              if not (SS.is_empty (SS.inter m later_decls)) then false
              else go seen rest)
    in
    go SS.empty body
  in
  let top_decls body =
    List.filter_map
      (fun s -> match s.node with Decl (x, _) -> Some x | _ -> None)
      body
  in
  (* One body copy: rename its top-level locals to copy-unique names and
     replace the index variable by [by]. *)
  let instantiate ctx uid c body index by =
    let copy = Rewrite.copy_block body in
    let copy =
      List.fold_left
        (fun b d ->
          Rewrite.rename_block ~from:d
            ~to_:(Printf.sprintf "__u%dc%d_%s" uid c d)
            b)
        copy (top_decls body)
    in
    ignore ctx;
    subst_var_block index by copy
  in
  let calls_write_any ctx body vars =
    SS.exists
      (fun v ->
        SS.mem v ctx.globals
        && List.exists
             (fun f ->
               match f with
               | "rand" | "abs" | "print" -> false
               | f -> (
                   match Static.summary (Lazy.force ctx.static) f with
                   | Some s -> SS.mem v s.sum_gwritten
                   | None -> true))
             (Rewrite.reachable_calls ctx.prog body))
      vars
  in
  let rec walk ctx block = List.concat_map (one ctx) block
  and one ctx s =
    match s.node with
    | If (c, t, el) -> [ mk s.line (If (c, walk ctx t, walk ctx el)) ]
    | While (c, body) -> [ mk s.line (While (c, walk ctx body)) ]
    | Par arms -> [ mk s.line (Par (List.map (walk ctx) arms)) ]
    | For f when not (marked f.index) -> (
        let body = walk ctx f.body in
        let f = { f with body } in
        let binders = block_binders f.body SS.empty in
        let assigns = block_assigns f.body SS.empty in
        let base_ok =
          body_plain f.body && decl_order_ok f.body
          && (not (SS.mem f.index binders))
          && (not (SS.mem f.index assigns))
          && f.body <> []
        in
        match (f.lo, f.hi, f.step) with
        | Int l, Int h, Int st
          when base_ok && st > 0 && h > l
               && (h - l + st - 1) / st <= 8
               && (h - l + st - 1) / st * count_stmts f.body <= 48 ->
            (* full unroll: the index becomes a literal everywhere *)
            let trip = (h - l + st - 1) / st in
            let uid = ctx.fresh in
            ctx.fresh <- ctx.fresh + 1;
            note ctx "full" 1;
            note ctx "stmts_removed" 1;
            List.concat
              (List.init trip (fun c ->
                   instantiate ctx uid c f.body f.index (Int (l + (c * st)))))
        | lo, hi, Int st
          when base_ok && st > 0
               && (not (has_loop f.body))
               && (not (has_user_call f.body))
               && pure_simple lo && pure_simple hi
               && count_stmts f.body <= 16
               &&
               let bound_vars = expr_reads hi (* lo too *) in
               let bound_vars = SS.union bound_vars (expr_reads lo) in
               (not (SS.mem f.index bound_vars))
               && SS.is_empty (SS.inter bound_vars assigns)
               && SS.is_empty (SS.inter bound_vars binders)
               && not (calls_write_any ctx f.body bound_vars) ->
            (* partial unroll by [unroll_factor], remainder loop reuses the
               original body under a marked index name *)
            let u = unroll_factor in
            let uid = ctx.fresh in
            ctx.fresh <- ctx.fresh + 1;
            note ctx "partial" 1;
            let nm sfx = Printf.sprintf "__u%d%s" uid sfx in
            let tname = nm "t" and mname = nm "m" in
            let mi = nm ("_" ^ f.index) in
            let ri = nm ("r_" ^ f.index) in
            let trip =
              (* iterations executed = max(0, ceil((hi-lo)/step)), with
                 truncating division reproducing the interpreter's count
                 for hi<=lo as a non-positive value *)
              Bin (Div, Bin (Add, Bin (Sub, hi, lo), Int (st - 1)), Int st)
            in
            let main_bound =
              Bin
                ( Add,
                  lo,
                  Bin (Mul, Bin (Mul, Bin (Div, Var tname, Int u), Int u), Int st)
                )
            in
            let copies =
              List.concat
                (List.init u (fun c ->
                     let by =
                       if c = 0 then Var mi
                       else Bin (Add, Var mi, Int (c * st))
                     in
                     instantiate ctx uid c f.body f.index by))
            in
            let remainder_body =
              Rewrite.rename_block ~from:f.index ~to_:ri
                (Rewrite.copy_block f.body)
            in
            [ mk s.line (Decl (tname, trip));
              mk s.line (Decl (mname, main_bound));
              mk s.line
                (For
                   { index = mi;
                     lo;
                     hi = Var mname;
                     step = Int (u * st);
                     body = copies });
              mk s.line
                (For
                   { index = ri;
                     lo = Var mname;
                     hi;
                     step = Int st;
                     body = remainder_body }) ]
        | _ -> [ mk s.line (For f) ])
    | For f -> [ mk s.line (For { f with body = walk ctx f.body }) ]
    | _ -> [ s ]
  in
  { name = "unroll";
    doc = "full unroll of small constant loops, 4x partial unroll of hot \
           innermost loops";
    restructuring = true;
    rewrite = (fun ctx p -> map_funcs (fun _ b -> walk ctx b) p) }

(* ---- registry and driver ---- *)

let all = [ fold_pass; prop_pass; simplify_pass; dce_pass; hoist_pass; unroll_pass ]
let names () = List.map (fun p -> p.name) all
let doc name =
  List.find_opt (fun p -> p.name = name) all |> Option.map (fun p -> p.doc)

let default_pipeline = [ "fold"; "prop"; "simplify"; "dce"; "unroll"; "hoist" ]

type report = {
  program : program;
  rounds : int;
  changes : int;
  per_pass : (string * int) list; (* total changes attributed per pass *)
}

let sequential_program (p : program) =
  not (List.exists (fun f -> Rewrite.has_sync f.body) p.funcs)

let run ?(passes = default_pipeline) ?(max_rounds = 8) ?(debug = false) prog :
    (report, string) result =
  match
    List.filter (fun n -> not (List.exists (fun p -> p.name = n) all)) passes
  with
  | bad :: _ -> Error (Printf.sprintf "unknown pass: %s" bad)
  | [] ->
      let selected =
        List.map (fun n -> List.find (fun p -> p.name = n) all) passes
      in
      let prog = ref (Rewrite.copy_program prog) in
      let sequential = sequential_program !prog in
      let totals = Hashtbl.create 8 in
      let rounds = ref 0 and total = ref 0 in
      let fresh = ref 0 in
      let continue_ = ref true in
      while !continue_ && !rounds < max_rounds do
        incr rounds;
        let round_changes = ref 0 in
        List.iter
          (fun pass ->
            if pass.restructuring && not sequential then begin
              if !rounds = 1 then
                Obs.Counter.incr
                  (Obs.counter (Printf.sprintf "pass.%s.refused" pass.name))
            end
            else begin
              let ctx =
                { prog = !prog;
                  sequential;
                  globals =
                    List.fold_left
                      (fun acc g ->
                        match g with
                        | Gscalar (n, _) | Garray (n, _) -> SS.add n acc)
                      SS.empty !prog.globals;
                  static = lazy (Static.analyze !prog);
                  changes = 0;
                  fresh = !fresh;
                  pass = pass.name;
                  debug }
              in
              let p' = pass.rewrite ctx !prog in
              fresh := ctx.fresh;
              if ctx.changes > 0 then begin
                Obs.Counter.incr
                  (Obs.counter (Printf.sprintf "pass.%s.fired" pass.name));
                prog := p';
                round_changes := !round_changes + ctx.changes;
                Hashtbl.replace totals pass.name
                  ((try Hashtbl.find totals pass.name with Not_found -> 0)
                  + ctx.changes);
                if debug then
                  Printf.eprintf "[pass.%s] round %d: %d change(s)\n%!"
                    pass.name !rounds ctx.changes
              end
            end)
          selected;
        total := !total + !round_changes;
        if !round_changes = 0 then continue_ := false
      done;
      Obs.Counter.add (Obs.counter "pass.pipeline.rounds") !rounds;
      Ok
        { program = !prog;
          rounds = !rounds;
          changes = !total;
          per_pass =
            List.filter_map
              (fun p ->
                match Hashtbl.find_opt totals p.name with
                | Some n -> Some (p.name, n)
                | None -> None)
              selected }
