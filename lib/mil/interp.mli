(** The MIL instrumenting interpreter: executing a program produces the
    {!Trace.Event} stream — the substitute for DiscoPoP's LLVM
    instrumentation pass and runtime hooks.

    Thread-parallel programs ([Par] blocks with locks and barriers) run as
    cooperative fibers over OCaml effects with a seeded pseudo-random
    scheduler, so interleavings are reproducible yet varied. *)

exception Runtime_error of string
(** Out-of-bounds accesses, unbound variables, arity errors. *)

exception Deadlock
(** All live threads are blocked on locks or barriers. *)

exception Cancelled
(** Raised out of {!run} when the [cancelled] poll returns true — the
    cooperative-cancel hook deadline watchdogs (batch driver, serve daemon)
    use to stop a runaway program. *)

(** Deterministic xorshift PRNG behind MIL's [rand] builtin and the fiber
    scheduler. *)
module Rng : sig
  type t

  val create : int -> t
  val next : t -> int

  (** [int t bound] is uniform in [0, bound). *)
  val int : t -> int -> int
end

val truthy : int -> bool
(** MIL's boolean coercion: any non-zero value is true. *)

val apply_binop : Ast.binop -> int -> int -> int
(** The shared arithmetic/comparison semantics (division by zero yields 0,
    shifts mask their count); {!Par_eval} reuses it so the two evaluators
    cannot drift. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable loop_iterations : int;
  mutable calls : int;
}

type access_sink =
  kind:Trace.Event.kind ->
  addr:int ->
  var:int ->
  line:int ->
  thread:int ->
  time:int ->
  op:int ->
  lstack:int ->
  locked:bool ->
  unit
(** Record-free access sink: the fields of a {!Trace.Event.access} passed as
    labeled (unboxed) arguments, so the serial profiler's hot path can
    consume accesses without the record ever being allocated. *)

type run_result = {
  result : int;            (** the entry function's return value *)
  r_stats : stats;
  dynamic_ops : int;       (** distinct static memory operations executed *)
  final_globals : (string * int array) list;
      (** final value of every global, in declaration order; scalars as
          1-element arrays. Together with [result] and the [print] stream
          this is the observable state differential validation compares. *)
}

val run :
  ?seed:int ->
  ?instrument:bool ->
  ?scramble_unlocked:bool ->
  ?emit:(Trace.Event.t -> unit) ->
  ?on_access:access_sink ->
  ?on_print:(int list -> unit) ->
  ?cancelled:(unit -> bool) ->
  Ast.program ->
  run_result
(** Execute the program. [instrument:false] skips event construction (the
    native baseline for slowdown measurements). [scramble_unlocked] delays
    and reorders the emission of unlocked accesses from concurrent threads,
    modelling the access/push atomicity violation that exposes potential
    data races (§2.3.4). [on_access], when given, receives every in-order
    access as unboxed fields instead of an [Event.Access] through [emit] —
    the zero-allocation fast path; scrambled/delayed accesses still arrive
    at [emit] as records. [on_print] observes each [print] builtin call's
    evaluated arguments. [cancelled] is polled every ~2k statements;
    returning true raises {!Cancelled} out of the run. *)

val trace :
  ?seed:int -> ?scramble_unlocked:bool -> Ast.program ->
  run_result * Trace.Event.t list
(** Run and collect all events in order; convenient for tests and offline
    analyses. *)
