(** The MIL instrumenting interpreter: executing a program produces the
    {!Trace.Event} stream — the substitute for DiscoPoP's LLVM
    instrumentation pass and runtime hooks.

    Thread-parallel programs ([Par] blocks with locks and barriers) run as
    cooperative fibers over OCaml effects with a seeded pseudo-random
    scheduler, so interleavings are reproducible yet varied. *)

exception Runtime_error of string
(** Out-of-bounds accesses, unbound variables, arity errors. *)

exception Deadlock
(** All live threads are blocked on locks or barriers. *)

exception Cancelled
(** Raised out of {!run} when the [cancelled] poll returns true — the
    cooperative-cancel hook deadline watchdogs (batch driver, serve daemon)
    use to stop a runaway program. *)

(** Deterministic xorshift PRNG behind MIL's [rand] builtin and the fiber
    scheduler. *)
module Rng : sig
  type t

  val create : int -> t
  val next : t -> int

  (** [int t bound] is uniform in [0, bound). *)
  val int : t -> int -> int
end

val truthy : int -> bool
(** MIL's boolean coercion: any non-zero value is true. *)

val apply_binop : Ast.binop -> int -> int -> int
(** The shared arithmetic/comparison semantics (division by zero yields 0,
    shifts mask their count); {!Par_eval} reuses it so the two evaluators
    cannot drift. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable loop_iterations : int;
  mutable calls : int;
}

type run_result = {
  result : int;            (** the entry function's return value *)
  r_stats : stats;
  dynamic_ops : int;       (** distinct static memory operations executed *)
  final_globals : (string * int array) list;
      (** final value of every global, in declaration order; scalars as
          1-element arrays. Together with [result] and the [print] stream
          this is the observable state differential validation compares. *)
}

val run :
  ?seed:int ->
  ?instrument:bool ->
  ?scramble_unlocked:bool ->
  ?emit:(Trace.Event.t -> unit) ->
  ?on_print:(int list -> unit) ->
  ?cancelled:(unit -> bool) ->
  Ast.program ->
  run_result
(** Execute the program. [instrument:false] skips event construction (the
    native baseline for slowdown measurements). [scramble_unlocked] delays
    and reorders the emission of unlocked accesses from concurrent threads,
    modelling the access/push atomicity violation that exposes potential
    data races (§2.3.4). [on_print] observes each [print] builtin call's
    evaluated arguments. [cancelled] is polled every ~2k statements;
    returning true raises {!Cancelled} out of the run. *)

val trace :
  ?seed:int -> ?scramble_unlocked:bool -> Ast.program ->
  run_result * Trace.Event.t list
(** Run and collect all events in order; convenient for tests and offline
    analyses. *)
