(** Parallel MIL evaluation on real domains.

    Where {!Interp} runs [Par] blocks as cooperative fibers to *profile*
    them, this evaluator runs them on OCaml 5 domains to *measure* them:
    DOALL chunk blocks and SPMD task trees execute as fork-join tasks on a
    {!Runtime.Pool} work-stealing pool, while blocks containing blocking
    synchronisation ([Lock]/[Unlock]/[Barrier] — e.g. the lock-serialized
    DOACROSS hand-offs emitted by [Transform.Parallelize]) each get a
    dedicated domain, so a busy-wait hand-off can never starve a pool
    worker. [Lock] is a real [Mutex.t]; [Atomic_assign] serializes its
    read-modify-write through a stripe of mutexes hashed by target address.

    Memory is a paged shared heap ([int array] pages behind an [Atomic.t]
    page table) with per-task bump arenas, so concurrent tasks allocate
    without contending on anything but a fetch-and-add per arena refill.

    No instrumentation events are emitted; this is the measured-execution
    backend behind [discopop parallelize --measure]. *)

type result = {
  result : int;  (** the entry function's return value *)
  final_globals : (string * int array) list;
      (** final value of every global in declaration order, scalars as
          1-element arrays — same shape as {!Interp.run_result} so output
          equality checks compare directly *)
}

val run :
  ?domains:int ->
  ?pool:Runtime.Pool.t ->
  ?seed:int ->
  ?on_print:(int list -> unit) ->
  ?cancelled:(unit -> bool) ->
  Ast.program ->
  result
(** Execute the program. [pool] reuses an existing (already running)
    work-stealing pool — what {!Measure} does across repetitions so pool
    spin-up is not timed; otherwise a fresh pool of [domains] executors is
    created for the run and shut down afterwards ([domains = 1] runs
    sync-free [Par] blocks inline and still gives dedicated domains to
    blocks that synchronise). [on_print] observes [print] calls (serialized
    by a mutex when tasks race). [cancelled] is polled every ~2k statements
    per task, as in {!Interp.run}; a true verdict raises
    {!Interp.Cancelled} out of every task and then out of [run]. *)
