(** Lightweight observability for the profiling pipeline: named counters,
    gauges, monotonic timing spans and per-phase throughput meters in one
    global, domain-safe registry, with JSON / JSONL exporters.

    The registry starts {e disabled}: every update is a single atomic flag
    load plus a branch, so instrumentation can sit in hot paths without
    perturbing the slowdown numbers the benchmarks measure. Enable it (CLI
    [--stats], bench harness) and a run yields a phase-by-phase cost
    breakdown. Counters are atomic, so profiler worker domains can publish
    concurrently. *)

(** Minimal JSON value type with compact/indented printers and a parser —
    used by the exporters, the bench harness's [BENCH_*.json] files, and
    their round-trip tests. No external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering. *)

  val pretty : t -> string
  (** Indented rendering. *)

  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  val get_int : t -> int option
  val get_float : t -> float option
  val get_string : t -> string option
end

(** Per-domain timeline tracing, exported as Chrome Trace Event JSON
    (loadable in chrome://tracing or Perfetto).

    Each domain owns a lock-free append-only buffer of timestamped events and
    becomes one track of the exported timeline; the parallel profiler's
    worker domains name their tracks via {!set_track}. Like the metrics
    registry, tracing starts {e disabled} and every emission is gated on one
    atomic flag load, so trace points can sit in hot paths for free. Enable
    it with [--trace FILE] on the CLI or [--trace] on the bench harness. *)
module Trace : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool

  val reset : unit -> unit
  (** Truncate every domain's buffer and forget track names. Only call when
      no other domain is tracing (between runs / experiments). *)

  val set_track : string -> unit
  (** Name the calling domain's track in the exported timeline. *)

  val begin_ : string -> unit
  (** Open a duration slice on the calling domain's track. *)

  val end_ : string -> unit
  val instant : string -> unit

  val counter : string -> int -> unit
  (** A sample of a named counter track (e.g. a queue depth). *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** [begin_]/[end_] around [f]; calls [f] directly when disabled. *)

  val event_count : unit -> int
  (** Buffered events across all domains. *)

  val export : unit -> Json.t
  (** The buffered events as one Chrome Trace Event JSON document:
      [{"traceEvents": [...], "displayTimeUnit": "ms"}], with [ts] in
      microseconds and one [thread_name] metadata record per named track. *)

  val write : string -> unit
end

(** Request-scoped span collection for the serve daemon. A handler domain
    installs a collector with {!Req.start} before dispatching a request;
    every {!Span.with_} that runs on that domain until {!Req.finish} —
    parse, cache lookup, the profiler's own phase spans, rendering — is
    recorded into the request's own span tree in addition to the global
    registry/timeline. One domain handles one request at a time, so the
    collector is plain domain-local state. Works even when the metrics
    registry and tracing are disabled. *)
module Req : sig
  type entry = {
    sp_name : string;
    sp_start_ns : int;  (** absolute monotonic nanoseconds *)
    sp_dur_ns : int;
    sp_depth : int;  (** nesting depth; 0 = top-level phase *)
  }

  type collector

  val start : unit -> unit
  (** Install a fresh collector on the calling domain, replacing any
      leftover from an abandoned request. *)

  val active : unit -> bool
  val current : unit -> collector option

  val add : name:string -> start_ns:int -> dur_ns:int -> unit
  (** Record a span not measured by {!Span.with_} — e.g. the queue wait a
      request suffered before any handler code ran. No-op without a
      collector. *)

  val finish : unit -> entry list
  (** Uninstall the collector and return its spans in chronological order
      (by start time). Empty list if none was installed. *)

  val entry_json : entry -> Json.t
end

(** Flight recorder: two fixed-size rings of completed request records. The
    main ring keeps the last N requests of any kind; the slow ring
    additionally retains the last M requests whose service time crossed a
    threshold — so a burst of fast traffic cannot evict the slow request you
    are trying to explain. Writers are concurrent request handlers; a single
    mutex per recorder is plenty at per-request rates. *)
module Flight : sig
  type record = {
    fr_id : string;  (** trace id, as returned in X-Trace-Id *)
    fr_route : string;  (** e.g. ["POST /profile"], or ["(shed)"] *)
    fr_status : int;  (** HTTP status answered *)
    fr_tier : string;  (** cache tier: mem | disk | miss | "-" *)
    fr_queue_ns : int;  (** time queued before a handler ran *)
    fr_service_ns : int;  (** handler time, excluding queue wait *)
    fr_done_at : float;  (** unix time at completion *)
    fr_spans : Req.entry list;  (** the request's span tree, chronological *)
  }

  type t

  val create :
    capacity:int -> slow_capacity:int -> slow_threshold_s:float -> t
  (** Capacities are clamped to at least 1; a negative threshold behaves
      as 0 (every request is "slow"). *)

  val record : t -> record -> unit
  val total : t -> int
  (** Records ever written (not capped by capacity). *)

  val slow_total : t -> int
  val capacity : t -> int
  val slow_threshold_ns : t -> int

  val recent : t -> record list
  (** The main ring's retained records, newest first. *)

  val slow : t -> record list

  val find : t -> string -> record option
  (** Look a trace id up in the main ring, then the slow ring (which
      outlives it for slow requests). *)

  val record_json : record -> Json.t

  val to_json : t -> Json.t
  (** Both rings plus capacities/thresholds/write totals, for
      [GET /requests] and the shutdown dump. *)

  val chrome_trace : record -> Json.t
  (** One request's spans as a Chrome Trace Event document (complete ['X']
      events on one track) — loads in chrome://tracing / Perfetto and
      passes [discopop trace-check]. A record with no spans (e.g. a shed
      request) yields one synthetic event so [traceEvents] is never
      empty. *)
end

val now_ns : unit -> int
(** The monotonic clock in nanoseconds — the same clock {!Span.with_} and
    {!Req} entries use, so callers can synthesize {!Req.entry} values (e.g.
    a queue wait measured outside any span) on a comparable timeline. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every metric's value; registrations survive. *)

type counter
type gauge
type span
type meter
type histogram

val counter : string -> counter
(** Find or register the counter [name]. Cheap after the first call. *)

val gauge : string -> gauge
val meter : string -> per:string -> meter
(** A throughput meter: events counted against the accumulated wall time of
    the span named [per]. *)

val histogram : string -> histogram
(** A log-bucketed latency histogram (4 sub-buckets per octave, so quantile
    estimates are within ~9% of the true value). Observation is atomic:
    concurrent domains (e.g. [discopop serve] request handlers) can observe
    without a lock. *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
end

module Gauge : sig
  val set : gauge -> float -> unit
  val set_int : gauge -> int -> unit
  val value : gauge -> float
end

module Span : sig
  val with_ : phase:string -> (unit -> 'a) -> 'a
  (** Time [f] with the monotonic clock and accumulate into the span named
      [phase] (created on first use); also emits a begin/end slice on the
      calling domain's {!Trace} track when tracing is enabled. When both
      layers are disabled, calls [f] directly. *)

  val ns : string -> int
  (** Accumulated nanoseconds of a phase; 0 if it never ran. *)

  val calls : string -> int
end

module Meter : sig
  val mark : meter -> int -> unit
  val count : meter -> int

  val rate : meter -> float
  (** Events per second over the [per] span's elapsed time; 0 when the span
      never ran. *)
end

module Histogram : sig
  val observe : histogram -> int -> unit
  (** Record one observation in nanoseconds (clamped at 0). No-op when the
      registry is disabled. *)

  val count : histogram -> int

  val quantile_ns : histogram -> float -> float
  (** The value at quantile [q] (clamped to [0,1]); 0 when empty. Exported
      snapshots carry p50/p90/p99 precomputed. *)

  val mean_ns : histogram -> float
  val max_ns : histogram -> int
end

val counter_value : string -> int
(** Current value of a counter by name; 0 if unregistered. *)

val publish_gc : unit -> unit
(** Snapshot {!Gc.quick_stat} into gauges ([gc.minor_words],
    [gc.major_words], [gc.promoted_words], [gc.minor_collections],
    [gc.major_collections]). No-op when disabled. Call at end of run, before
    exporting. *)

val gauge_value : string -> float

val snapshot : unit -> Json.t
(** All metrics as one JSON object with
    [counters]/[gauges]/[spans]/[meters]/[histograms] sections, each sorted
    by name. *)

val to_jsonl : unit -> string
(** One self-describing JSON object per line per metric. *)

val write_json : string -> unit
val write_jsonl : string -> unit

val prometheus : unit -> string
(** The registry in the Prometheus text exposition format
    ([text/plain; version=0.0.4]). Dotted names sanitize to underscore
    form; counters gain the conventional [_total] suffix; spans and meters
    render as labelled counter families; histograms become cumulative
    [_bucket]/[_sum]/[_count] series in seconds (a bucket line is emitted
    only where the count changes, closed by [le="+Inf"]). *)
