(** Lightweight observability for the profiling pipeline: named counters,
    gauges, monotonic timing spans and per-phase throughput meters in one
    global, domain-safe registry, with JSON / JSONL exporters.

    The registry starts {e disabled}: every update is a single atomic flag
    load plus a branch, so instrumentation can sit in hot paths without
    perturbing the slowdown numbers the benchmarks measure. Enable it (CLI
    [--stats], bench harness) and a run yields a phase-by-phase cost
    breakdown. Counters are atomic, so profiler worker domains can publish
    concurrently. *)

(** Minimal JSON value type with compact/indented printers and a parser —
    used by the exporters, the bench harness's [BENCH_*.json] files, and
    their round-trip tests. No external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering. *)

  val pretty : t -> string
  (** Indented rendering. *)

  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  val get_int : t -> int option
  val get_float : t -> float option
  val get_string : t -> string option
end

(** Per-domain timeline tracing, exported as Chrome Trace Event JSON
    (loadable in chrome://tracing or Perfetto).

    Each domain owns a lock-free append-only buffer of timestamped events and
    becomes one track of the exported timeline; the parallel profiler's
    worker domains name their tracks via {!set_track}. Like the metrics
    registry, tracing starts {e disabled} and every emission is gated on one
    atomic flag load, so trace points can sit in hot paths for free. Enable
    it with [--trace FILE] on the CLI or [--trace] on the bench harness. *)
module Trace : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool

  val reset : unit -> unit
  (** Truncate every domain's buffer and forget track names. Only call when
      no other domain is tracing (between runs / experiments). *)

  val set_track : string -> unit
  (** Name the calling domain's track in the exported timeline. *)

  val begin_ : string -> unit
  (** Open a duration slice on the calling domain's track. *)

  val end_ : string -> unit
  val instant : string -> unit

  val counter : string -> int -> unit
  (** A sample of a named counter track (e.g. a queue depth). *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** [begin_]/[end_] around [f]; calls [f] directly when disabled. *)

  val event_count : unit -> int
  (** Buffered events across all domains. *)

  val export : unit -> Json.t
  (** The buffered events as one Chrome Trace Event JSON document:
      [{"traceEvents": [...], "displayTimeUnit": "ms"}], with [ts] in
      microseconds and one [thread_name] metadata record per named track. *)

  val write : string -> unit
end

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every metric's value; registrations survive. *)

type counter
type gauge
type span
type meter
type histogram

val counter : string -> counter
(** Find or register the counter [name]. Cheap after the first call. *)

val gauge : string -> gauge
val meter : string -> per:string -> meter
(** A throughput meter: events counted against the accumulated wall time of
    the span named [per]. *)

val histogram : string -> histogram
(** A log-bucketed latency histogram (4 sub-buckets per octave, so quantile
    estimates are within ~9% of the true value). Observation is atomic:
    concurrent domains (e.g. [discopop serve] request handlers) can observe
    without a lock. *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
end

module Gauge : sig
  val set : gauge -> float -> unit
  val set_int : gauge -> int -> unit
  val value : gauge -> float
end

module Span : sig
  val with_ : phase:string -> (unit -> 'a) -> 'a
  (** Time [f] with the monotonic clock and accumulate into the span named
      [phase] (created on first use); also emits a begin/end slice on the
      calling domain's {!Trace} track when tracing is enabled. When both
      layers are disabled, calls [f] directly. *)

  val ns : string -> int
  (** Accumulated nanoseconds of a phase; 0 if it never ran. *)

  val calls : string -> int
end

module Meter : sig
  val mark : meter -> int -> unit
  val count : meter -> int

  val rate : meter -> float
  (** Events per second over the [per] span's elapsed time; 0 when the span
      never ran. *)
end

module Histogram : sig
  val observe : histogram -> int -> unit
  (** Record one observation in nanoseconds (clamped at 0). No-op when the
      registry is disabled. *)

  val count : histogram -> int

  val quantile_ns : histogram -> float -> float
  (** The value at quantile [q] (clamped to [0,1]); 0 when empty. Exported
      snapshots carry p50/p90/p99 precomputed. *)

  val mean_ns : histogram -> float
  val max_ns : histogram -> int
end

val counter_value : string -> int
(** Current value of a counter by name; 0 if unregistered. *)

val publish_gc : unit -> unit
(** Snapshot {!Gc.quick_stat} into gauges ([gc.minor_words],
    [gc.major_words], [gc.promoted_words], [gc.minor_collections],
    [gc.major_collections]). No-op when disabled. Call at end of run, before
    exporting. *)

val gauge_value : string -> float

val snapshot : unit -> Json.t
(** All metrics as one JSON object with
    [counters]/[gauges]/[spans]/[meters]/[histograms] sections, each sorted
    by name. *)

val to_jsonl : unit -> string
(** One self-describing JSON object per line per metric. *)

val write_json : string -> unit
val write_jsonl : string -> unit
