(* Lightweight observability for the profiling pipeline.

   One global, domain-safe registry of named counters, gauges, timing spans
   and throughput meters. The registry starts *disabled*: every update is a
   single atomic flag load plus a branch, so instrumentation can live in hot
   paths (the dependence engine, the parallel profiler's producer loop)
   without perturbing the slowdown numbers the benchmarks measure. When
   enabled — by `--stats` on the CLI or by the bench harness — a run yields a
   phase-by-phase cost breakdown exportable as one JSON document or as JSONL
   (one metric per line).

   Counters are atomic so profiler worker domains can publish concurrently;
   registration takes a mutex but happens once per metric name. *)

(* ---- JSON ---- *)

(* A deliberately small JSON implementation (no external dependency): value
   type, compact and indented printers, and a recursive-descent parser used
   by the exporter round-trip tests and by consumers of BENCH_*.json files. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  (* Floats must re-parse as floats: keep a decimal point (or exponent), and
     never emit the non-JSON tokens inf/nan. *)
  let float_repr x =
    if not (Float.is_finite x) then "0"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else Printf.sprintf "%.12g" x

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (float_repr x)
    | String s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            write b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            add_escaped b k;
            Buffer.add_string b "\":";
            write b v)
          kvs;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    write b v;
    Buffer.contents b

  let pretty v =
    let b = Buffer.create 256 in
    let pad n = Buffer.add_string b (String.make n ' ') in
    let rec go indent = function
      | (Null | Bool _ | Int _ | Float _ | String _) as v -> write b v
      | List [] -> Buffer.add_string b "[]"
      | List xs ->
          Buffer.add_string b "[\n";
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string b ",\n";
              pad (indent + 2);
              go (indent + 2) x)
            xs;
          Buffer.add_char b '\n';
          pad indent;
          Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj kvs ->
          Buffer.add_string b "{\n";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_string b ",\n";
              pad (indent + 2);
              Buffer.add_char b '"';
              add_escaped b k;
              Buffer.add_string b "\": ";
              go (indent + 2) v)
            kvs;
          Buffer.add_char b '\n';
          pad indent;
          Buffer.add_char b '}'
    in
    go 0 v;
    Buffer.contents b

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (
        pos := !pos + l;
        v)
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let in_number c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && in_number s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (
            incr pos;
            Obj [])
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (
            incr pos;
            List [])
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elements [])
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "empty input"
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error "trailing characters after value" else Ok v
    with Parse_error m -> Error m

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let get_int = function Int i -> Some i | _ -> None

  let get_float = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | _ -> None

  let get_string = function String s -> Some s | _ -> None
end

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* ---- timeline tracing ---- *)

(* A lock-free per-domain buffer of timestamped events, exported as Chrome
   Trace Event JSON (chrome://tracing / Perfetto). Each domain appends only
   to its own buffer — the hot path is a flag load, a DLS read and an array
   store — so worker domains of the parallel profiler can trace concurrently
   without synchronisation. The global buffer list is only locked at domain
   registration (once per domain) and at export/reset time. *)
module Trace = struct
  type ev = {
    e_ph : char;   (* 'B' begin | 'E' end | 'i' instant | 'C' counter *)
    e_name : string;
    e_ts : int;    (* monotonic nanoseconds *)
    e_value : int; (* counter value; 0 otherwise *)
  }

  let dummy_ev = { e_ph = 'i'; e_name = ""; e_ts = 0; e_value = 0 }

  type buf = {
    b_tid : int;                    (* the owning domain's id *)
    mutable b_track : string option;(* display name of this domain's track *)
    mutable b_evs : ev array;
    mutable b_len : int;
  }

  let tracing = Atomic.make false
  let enable () = Atomic.set tracing true
  let disable () = Atomic.set tracing false
  let is_enabled () = Atomic.get tracing

  let bufs_lock = Mutex.create ()
  let bufs : buf list ref = ref []

  let key =
    Domain.DLS.new_key (fun () ->
        let b =
          { b_tid = (Domain.self () :> int);
            b_track = None;
            b_evs = Array.make 256 dummy_ev;
            b_len = 0 }
        in
        Mutex.lock bufs_lock;
        bufs := b :: !bufs;
        Mutex.unlock bufs_lock;
        b)

  (* Only the owning domain pushes, so no synchronisation is needed. *)
  let push ph name value =
    let b = Domain.DLS.get key in
    if b.b_len = Array.length b.b_evs then begin
      let a = Array.make (2 * b.b_len) dummy_ev in
      Array.blit b.b_evs 0 a 0 b.b_len;
      b.b_evs <- a
    end;
    b.b_evs.(b.b_len) <-
      { e_ph = ph; e_name = name; e_ts = now_ns (); e_value = value };
    b.b_len <- b.b_len + 1

  let set_track name =
    if Atomic.get tracing then (Domain.DLS.get key).b_track <- Some name

  let begin_ name = if Atomic.get tracing then push 'B' name 0
  let end_ name = if Atomic.get tracing then push 'E' name 0
  let instant name = if Atomic.get tracing then push 'i' name 0
  let counter name v = if Atomic.get tracing then push 'C' name v

  let with_span name f =
    if not (Atomic.get tracing) then f ()
    else begin
      push 'B' name 0;
      Fun.protect ~finally:(fun () -> push 'E' name 0) f
    end

  let snapshot_bufs () =
    Mutex.lock bufs_lock;
    let bs = !bufs in
    Mutex.unlock bufs_lock;
    bs

  (* Call only when no other domain is tracing (between runs / experiments):
     buffers are truncated in place. *)
  let reset () =
    List.iter
      (fun b ->
        b.b_len <- 0;
        b.b_track <- None)
      (snapshot_bufs ())

  let event_count () =
    List.fold_left (fun acc b -> acc + b.b_len) 0 (snapshot_bufs ())

  (* ---- Chrome Trace Event export ----

     One JSON object per event; [ts] is in microseconds as the format
     requires. Each domain becomes one track (tid); a thread_name metadata
     record carries the track's display name. *)

  let pid = 1

  let ev_json ~tid e =
    let base =
      [ ("name", Json.String e.e_name);
        ("ph", Json.String (String.make 1 e.e_ph));
        ("ts", Json.Float (float_of_int e.e_ts /. 1e3));
        ("pid", Json.Int pid);
        ("tid", Json.Int tid) ]
    in
    match e.e_ph with
    | 'C' ->
        Json.Obj (base @ [ ("args", Json.Obj [ ("value", Json.Int e.e_value) ]) ])
    | 'i' -> Json.Obj (base @ [ ("s", Json.String "t") ])
    | _ -> Json.Obj base

  let export () =
    let bs =
      snapshot_bufs ()
      |> List.filter (fun b -> b.b_len > 0 || b.b_track <> None)
      |> List.sort (fun a b -> compare a.b_tid b.b_tid)
    in
    let events =
      List.concat_map
        (fun b ->
          let meta =
            match b.b_track with
            | Some name ->
                [ Json.Obj
                    [ ("name", Json.String "thread_name");
                      ("ph", Json.String "M");
                      ("ts", Json.Float 0.0);
                      ("pid", Json.Int pid);
                      ("tid", Json.Int b.b_tid);
                      ("args", Json.Obj [ ("name", Json.String name) ]) ] ]
            | None -> []
          in
          meta @ List.init b.b_len (fun i -> ev_json ~tid:b.b_tid b.b_evs.(i)))
        bs
    in
    Json.Obj
      [ ("traceEvents", Json.List events);
        ("displayTimeUnit", Json.String "ms") ]

  let write path = write_file path (Json.to_string (export ()) ^ "\n")
end

(* ---- request-scoped span collection ---- *)

(* A per-domain collector of completed spans for the *current request*. The
   serve daemon installs one before dispatching a request and drains it
   afterwards, so every {!Span.with_} executed on the handling domain —
   parse, cache lookup, the profiler's own phase spans, rendering — lands in
   that request's span tree in addition to the global registry/timeline.
   One domain handles one request at a time, so plain domain-local state
   (no atomics) is enough; other domains' requests collect independently. *)
module Req = struct
  type entry = {
    sp_name : string;
    sp_start_ns : int; (* absolute monotonic nanoseconds *)
    sp_dur_ns : int;
    sp_depth : int;    (* nesting depth; 0 = top-level phase *)
  }

  type collector = {
    mutable rq_entries : entry list; (* completed spans, most recent first *)
    mutable rq_depth : int;          (* currently open spans *)
  }

  let key : collector option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let current () = !(Domain.DLS.get key)
  let active () = current () <> None

  (* Install a fresh collector for this domain, replacing any leftover. *)
  let start () =
    Domain.DLS.get key := Some { rq_entries = []; rq_depth = 0 }

  (* Record a span that was not measured by {!Span.with_} — e.g. the queue
     wait a request suffered before any handler code ran. *)
  let add ~name ~start_ns ~dur_ns =
    match current () with
    | None -> ()
    | Some c ->
        c.rq_entries <-
          { sp_name = name; sp_start_ns = start_ns; sp_dur_ns = dur_ns;
            sp_depth = c.rq_depth }
          :: c.rq_entries

  let enter c = c.rq_depth <- c.rq_depth + 1

  let exit_ c ~name ~start_ns ~dur_ns =
    c.rq_depth <- c.rq_depth - 1;
    c.rq_entries <-
      { sp_name = name; sp_start_ns = start_ns; sp_dur_ns = dur_ns;
        sp_depth = c.rq_depth }
      :: c.rq_entries

  (* Uninstall the collector and return its spans in chronological order. *)
  let finish () =
    let r = Domain.DLS.get key in
    let entries = match !r with None -> [] | Some c -> c.rq_entries in
    r := None;
    List.stable_sort
      (fun a b -> compare a.sp_start_ns b.sp_start_ns)
      (List.rev entries)

  let entry_json (e : entry) =
    Json.Obj
      [ ("name", Json.String e.sp_name);
        ("start_ns", Json.Int e.sp_start_ns);
        ("dur_ns", Json.Int e.sp_dur_ns);
        ("depth", Json.Int e.sp_depth) ]
end

(* ---- flight recorder ---- *)

(* Two fixed-size rings of completed request records: the main ring keeps
   the last N requests of any kind, the slow ring additionally retains the
   last M requests whose service time crossed a threshold — so one burst of
   fast traffic cannot evict the slow request you are trying to explain.
   Writers are concurrent request handlers; a single mutex per recorder is
   plenty at per-request (not per-event) rates. *)
module Flight = struct
  type record = {
    fr_id : string;           (* trace id, as returned in X-Trace-Id *)
    fr_route : string;        (* e.g. "POST /profile", or "(shed)" *)
    fr_status : int;          (* HTTP status answered *)
    fr_tier : string;         (* cache tier: mem | disk | miss | "-" *)
    fr_queue_ns : int;        (* time spent queued before a handler ran *)
    fr_service_ns : int;      (* handler time, excluding queue wait *)
    fr_done_at : float;       (* unix time at completion *)
    fr_spans : Req.entry list;(* the request's span tree, chronological *)
  }

  type t = {
    fl_lock : Mutex.t;
    fl_ring : record option array;
    mutable fl_next : int;      (* total records ever written to the ring *)
    fl_slow_ns : int;
    fl_slow : record option array;
    mutable fl_slow_next : int;
  }

  let create ~capacity ~slow_capacity ~slow_threshold_s =
    { fl_lock = Mutex.create ();
      fl_ring = Array.make (max 1 capacity) None;
      fl_next = 0;
      fl_slow_ns = int_of_float (Float.max 0.0 slow_threshold_s *. 1e9);
      fl_slow = Array.make (max 1 slow_capacity) None;
      fl_slow_next = 0 }

  let locked t f =
    Mutex.lock t.fl_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.fl_lock) f

  let capacity t = Array.length t.fl_ring
  let slow_threshold_ns t = t.fl_slow_ns

  let record t r =
    locked t @@ fun () ->
    t.fl_ring.(t.fl_next mod Array.length t.fl_ring) <- Some r;
    t.fl_next <- t.fl_next + 1;
    if r.fr_service_ns >= t.fl_slow_ns then begin
      t.fl_slow.(t.fl_slow_next mod Array.length t.fl_slow) <- Some r;
      t.fl_slow_next <- t.fl_slow_next + 1
    end

  let total t = locked t (fun () -> t.fl_next)
  let slow_total t = locked t (fun () -> t.fl_slow_next)

  (* Newest first. Call with the lock held. *)
  let dump_ring ring next =
    let cap = Array.length ring in
    let n = min next cap in
    List.init n (fun i -> ring.((next - 1 - i) mod cap))
    |> List.filter_map Fun.id

  let recent t = locked t (fun () -> dump_ring t.fl_ring t.fl_next)
  let slow t = locked t (fun () -> dump_ring t.fl_slow t.fl_slow_next)

  (* Look a trace id up in either ring: the main window first, then the
     slow ring (which outlives it for slow requests). *)
  let find t id =
    locked t @@ fun () ->
    let scan ring next =
      List.find_opt (fun r -> r.fr_id = id) (dump_ring ring next)
    in
    match scan t.fl_ring t.fl_next with
    | Some r -> Some r
    | None -> scan t.fl_slow t.fl_slow_next

  let record_json (r : record) =
    Json.Obj
      [ ("id", Json.String r.fr_id);
        ("route", Json.String r.fr_route);
        ("status", Json.Int r.fr_status);
        ("cache", Json.String r.fr_tier);
        ("queue_ns", Json.Int r.fr_queue_ns);
        ("service_ns", Json.Int r.fr_service_ns);
        ("done_at", Json.Float r.fr_done_at);
        ("spans", Json.List (List.map Req.entry_json r.fr_spans)) ]

  let to_json t =
    let recent_l, slow_l, total_n, slow_n =
      locked t (fun () ->
          ( dump_ring t.fl_ring t.fl_next,
            dump_ring t.fl_slow t.fl_slow_next,
            t.fl_next,
            t.fl_slow_next ))
    in
    Json.Obj
      [ ("capacity", Json.Int (Array.length t.fl_ring));
        ("slow_capacity", Json.Int (Array.length t.fl_slow));
        ("slow_threshold_ns", Json.Int t.fl_slow_ns);
        ("recorded", Json.Int total_n);
        ("slow_recorded", Json.Int slow_n);
        ("recent", Json.List (List.map record_json recent_l));
        ("slow", Json.List (List.map record_json slow_l)) ]

  (* One request's spans as a Chrome Trace Event document (complete 'X'
     events on a single track), so `GET /trace?id=` output loads directly
     in chrome://tracing / Perfetto and passes `discopop trace-check`. *)
  let chrome_trace (r : record) =
    let span_ev (e : Req.entry) =
      Json.Obj
        [ ("name", Json.String e.sp_name);
          ("ph", Json.String "X");
          ("ts", Json.Float (float_of_int e.sp_start_ns /. 1e3));
          ("dur", Json.Float (float_of_int e.sp_dur_ns /. 1e3));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1) ]
    in
    let events =
      match r.fr_spans with
      | [] ->
          (* Nothing ran (e.g. a shed request): one synthetic event still
             makes the document well-formed and self-describing. *)
          [ Json.Obj
              [ ("name", Json.String ("request " ^ r.fr_route));
                ("ph", Json.String "X");
                ("ts", Json.Float 0.0);
                ("dur", Json.Float (float_of_int r.fr_service_ns /. 1e3));
                ("pid", Json.Int 1);
                ("tid", Json.Int 1) ] ]
      | spans -> List.map span_ev spans
    in
    Json.Obj
      [ ("traceEvents", Json.List events);
        ("displayTimeUnit", Json.String "ms");
        ("otherData",
         Json.Obj
           [ ("trace_id", Json.String r.fr_id);
             ("route", Json.String r.fr_route);
             ("status", Json.Int r.fr_status);
             ("cache", Json.String r.fr_tier);
             ("queue_ns", Json.Int r.fr_queue_ns);
             ("service_ns", Json.Int r.fr_service_ns) ]) ]
end

(* ---- registry ---- *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : float Atomic.t }

type span = {
  s_name : string;
  s_ns : int Atomic.t;     (* accumulated elapsed nanoseconds *)
  s_calls : int Atomic.t;
}

type meter = { m_name : string; m_per : string; m_count : int Atomic.t }

(* Log-bucketed histogram: 4 sub-buckets per octave (growth ~1.19x, so a
   quantile estimate is within ~9% of the true value) spanning 1ns to ~2^64ns.
   Buckets are atomic so concurrent request handlers can observe without a
   lock; observation is one float log + one fetch_and_add, cheap enough for
   per-request (not per-event) paths. *)
let hist_buckets = 256
let hist_growth = Float.exp (Float.log 2.0 /. 4.0)
let hist_log_growth = Float.log hist_growth

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum_ns : int Atomic.t;
  h_max_ns : int Atomic.t;
}

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* Registration is rare (once per metric name, usually at module init); a
   single mutex over the four tables is plenty. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let spans : (string, span) Hashtbl.t = Hashtbl.create 64
let meters : (string, meter) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_add tbl name make =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some x -> x
      | None ->
          let x = make () in
          Hashtbl.replace tbl name x;
          x)

let counter name =
  find_or_add counters name (fun () ->
      { c_name = name; c_v = Atomic.make 0 })

let gauge name =
  find_or_add gauges name (fun () -> { g_name = name; g_v = Atomic.make 0.0 })

let span_of name =
  find_or_add spans name (fun () ->
      { s_name = name; s_ns = Atomic.make 0; s_calls = Atomic.make 0 })

let meter name ~per =
  find_or_add meters name (fun () ->
      { m_name = name; m_per = per; m_count = Atomic.make 0 })

let histogram name =
  find_or_add histograms name (fun () ->
      { h_name = name;
        h_counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
        h_count = Atomic.make 0;
        h_sum_ns = Atomic.make 0;
        h_max_ns = Atomic.make 0 })

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_v 0.0) gauges;
      Hashtbl.iter
        (fun _ s ->
          Atomic.set s.s_ns 0;
          Atomic.set s.s_calls 0)
        spans;
      Hashtbl.iter (fun _ m -> Atomic.set m.m_count 0) meters;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.h_counts;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum_ns 0;
          Atomic.set h.h_max_ns 0)
        histograms)

module Counter = struct
  let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_v n)
  let incr c = add c 1
  let value c = Atomic.get c.c_v
end

module Gauge = struct
  let set g x = if Atomic.get enabled then Atomic.set g.g_v x
  let set_int g i = set g (float_of_int i)
  let value g = Atomic.get g.g_v
end

module Span = struct
  (* Spans serve three layers: they accumulate into the metrics registry
     when stats are enabled, appear as begin/end slices on the timeline when
     tracing is enabled, AND land in the current request's span tree when
     this domain has a {!Req} collector installed. All three off (the
     default) costs two atomic loads and a domain-local read. *)
  let with_ ~phase f =
    let stats_on = Atomic.get enabled in
    let trace_on = Atomic.get Trace.tracing in
    let req = Req.current () in
    if not (stats_on || trace_on || req <> None) then f ()
    else begin
      if trace_on then Trace.push 'B' phase 0;
      let s = if stats_on then Some (span_of phase) else None in
      (match req with Some c -> Req.enter c | None -> ());
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now_ns () - t0 in
          (match s with
          | Some s ->
              ignore (Atomic.fetch_and_add s.s_ns dt);
              ignore (Atomic.fetch_and_add s.s_calls 1)
          | None -> ());
          (match req with
          | Some c -> Req.exit_ c ~name:phase ~start_ns:t0 ~dur_ns:dt
          | None -> ());
          if Atomic.get Trace.tracing then Trace.push 'E' phase 0)
        f
    end

  let ns phase =
    match locked (fun () -> Hashtbl.find_opt spans phase) with
    | Some s -> Atomic.get s.s_ns
    | None -> 0

  let calls phase =
    match locked (fun () -> Hashtbl.find_opt spans phase) with
    | Some s -> Atomic.get s.s_calls
    | None -> 0
end

module Meter = struct
  let mark m n =
    if Atomic.get enabled then ignore (Atomic.fetch_and_add m.m_count n)

  let count m = Atomic.get m.m_count

  (* Events per second against the accumulated wall time of the [per] span;
     0 when the span never ran. *)
  let rate m =
    let ns = Span.ns m.m_per in
    if ns <= 0 then 0.0
    else float_of_int (Atomic.get m.m_count) /. (float_of_int ns /. 1e9)
end

module Histogram = struct
  let bucket_of_ns ns =
    if ns <= 1 then 0
    else
      min (hist_buckets - 1)
        (int_of_float (Float.log (float_of_int ns) /. hist_log_growth))

  (* Geometric midpoint of a bucket's [growth^i, growth^(i+1)) span. *)
  let bucket_mid i = hist_growth ** (float_of_int i +. 0.5)

  let observe h ns =
    if Atomic.get enabled then begin
      let ns = max ns 0 in
      ignore (Atomic.fetch_and_add h.h_counts.(bucket_of_ns ns) 1);
      ignore (Atomic.fetch_and_add h.h_count 1);
      ignore (Atomic.fetch_and_add h.h_sum_ns ns);
      let rec raise_max () =
        let cur = Atomic.get h.h_max_ns in
        if ns > cur && not (Atomic.compare_and_set h.h_max_ns cur ns) then
          raise_max ()
      in
      raise_max ()
    end

  let count h = Atomic.get h.h_count

  (* The value at quantile [q]: walk the cumulative bucket counts to the
     q-th observation and return that bucket's midpoint. Exact for the
     ordering of buckets, ~9% value resolution within one. *)
  let quantile_ns h q =
    let total = Atomic.get h.h_count in
    if total = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target =
        max 1 (int_of_float (Float.round (q *. float_of_int total)))
      in
      let rec walk i acc =
        if i >= hist_buckets then float_of_int (Atomic.get h.h_max_ns)
        else
          let acc = acc + Atomic.get h.h_counts.(i) in
          if acc >= target then
            Float.min (bucket_mid i) (float_of_int (Atomic.get h.h_max_ns))
          else walk (i + 1) acc
      in
      walk 0 0
    end

  let mean_ns h =
    let n = Atomic.get h.h_count in
    if n = 0 then 0.0 else float_of_int (Atomic.get h.h_sum_ns) /. float_of_int n

  let max_ns h = Atomic.get h.h_max_ns
end

let counter_value name =
  match locked (fun () -> Hashtbl.find_opt counters name) with
  | Some c -> Atomic.get c.c_v
  | None -> 0

let gauge_value name =
  match locked (fun () -> Hashtbl.find_opt gauges name) with
  | Some g -> Atomic.get g.g_v
  | None -> 0.0

(* Snapshot the OCaml GC's allocation counters into gauges, so every exported
   stats file carries the run's allocation profile next to its wall-clock
   phases (the substrate of the minor-words/access hot-path metric). *)
let publish_gc () =
  if is_enabled () then begin
    let s = Gc.quick_stat () in
    Gauge.set (gauge "gc.minor_words") s.Gc.minor_words;
    Gauge.set (gauge "gc.major_words") s.Gc.major_words;
    Gauge.set (gauge "gc.promoted_words") s.Gc.promoted_words;
    Gauge.set_int (gauge "gc.minor_collections") s.Gc.minor_collections;
    Gauge.set_int (gauge "gc.major_collections") s.Gc.major_collections
  end

(* ---- export ---- *)

(* Snapshot lists are sorted by metric name so exports are deterministic
   regardless of registration order. *)
let sorted_entries tbl =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let span_json (s : span) =
  let ns = Atomic.get s.s_ns in
  Json.Obj
    [ ("ns", Json.Int ns);
      ("s", Json.Float (float_of_int ns /. 1e9));
      ("calls", Json.Int (Atomic.get s.s_calls)) ]

let meter_json (m : meter) =
  Json.Obj
    [ ("count", Json.Int (Atomic.get m.m_count));
      ("per", Json.String m.m_per);
      ("rate_per_s", Json.Float (Meter.rate m)) ]

let histogram_json (h : histogram) =
  Json.Obj
    [ ("count", Json.Int (Atomic.get h.h_count));
      ("mean_ns", Json.Float (Histogram.mean_ns h));
      ("p50_ns", Json.Float (Histogram.quantile_ns h 0.50));
      ("p90_ns", Json.Float (Histogram.quantile_ns h 0.90));
      ("p99_ns", Json.Float (Histogram.quantile_ns h 0.99));
      ("max_ns", Json.Int (Atomic.get h.h_max_ns)) ]

let snapshot () =
  Json.Obj
    [ ("counters",
       Json.Obj
         (List.map
            (fun (k, c) -> (k, Json.Int (Atomic.get c.c_v)))
            (sorted_entries counters)));
      ("gauges",
       Json.Obj
         (List.map
            (fun (k, g) -> (k, Json.Float (Atomic.get g.g_v)))
            (sorted_entries gauges)));
      ("spans",
       Json.Obj
         (List.map (fun (k, s) -> (k, span_json s)) (sorted_entries spans)));
      ("meters",
       Json.Obj
         (List.map (fun (k, m) -> (k, meter_json m)) (sorted_entries meters)));
      ("histograms",
       Json.Obj
         (List.map
            (fun (k, h) -> (k, histogram_json h))
            (sorted_entries histograms)))
    ]

(* JSONL: one self-describing object per line, parseable line by line. *)
let to_jsonl () =
  let b = Buffer.create 1024 in
  let line kind name fields =
    Buffer.add_string b
      (Json.to_string
         (Json.Obj
            (("kind", Json.String kind) :: ("name", Json.String name) :: fields)));
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (k, c) -> line "counter" k [ ("value", Json.Int (Atomic.get c.c_v)) ])
    (sorted_entries counters);
  List.iter
    (fun (k, g) -> line "gauge" k [ ("value", Json.Float (Atomic.get g.g_v)) ])
    (sorted_entries gauges);
  List.iter
    (fun (k, s) ->
      line "span" k
        [ ("ns", Json.Int (Atomic.get s.s_ns));
          ("calls", Json.Int (Atomic.get s.s_calls)) ])
    (sorted_entries spans);
  List.iter
    (fun (k, m) ->
      line "meter" k
        [ ("count", Json.Int (Atomic.get m.m_count));
          ("per", Json.String m.m_per);
          ("rate_per_s", Json.Float (Meter.rate m)) ])
    (sorted_entries meters);
  List.iter
    (fun (k, h) ->
      line "histogram" k
        [ ("count", Json.Int (Atomic.get h.h_count));
          ("p50_ns", Json.Float (Histogram.quantile_ns h 0.50));
          ("p99_ns", Json.Float (Histogram.quantile_ns h 0.99));
          ("max_ns", Json.Int (Atomic.get h.h_max_ns)) ])
    (sorted_entries histograms);
  Buffer.contents b

let write_json path = write_file path (Json.pretty (snapshot ()) ^ "\n")
let write_jsonl path = write_file path (to_jsonl ())

(* ---- Prometheus text exposition ---- *)

(* The same registry in the Prometheus text format (text/plain; version
   0.0.4), so a scraper can poll `GET /metrics?format=prometheus` without a
   translation shim. Dotted metric names sanitize to underscore form;
   counters gain the conventional `_total` suffix; spans and meters render
   as labelled counter families; histograms become proper cumulative
   `_bucket`/`_sum`/`_count` series in seconds, emitting a bucket line only
   where the count changes (le boundaries need not be uniform, and 256
   mostly-empty log buckets would drown the useful ones). *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let prom_name s =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
        | '0' .. '9' ->
            if i = 0 then Buffer.add_char b '_';
            Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      s;
    Buffer.contents b
  end

(* Label values escape backslash, double quote and newline. *)
let prom_label_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus () =
  let b = Buffer.create 4096 in
  let typ name kind =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (k, c) ->
      let n = prom_name k ^ "_total" in
      typ n "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" n (Atomic.get c.c_v)))
    (sorted_entries counters);
  List.iter
    (fun (k, g) ->
      let n = prom_name k in
      typ n "gauge";
      Buffer.add_string b
        (Printf.sprintf "%s %s\n" n (prom_float (Atomic.get g.g_v))))
    (sorted_entries gauges);
  (let spans_l = sorted_entries spans in
   if spans_l <> [] then begin
     typ "discopop_span_seconds_total" "counter";
     List.iter
       (fun (k, s) ->
         Buffer.add_string b
           (Printf.sprintf "discopop_span_seconds_total{phase=\"%s\"} %s\n"
              (prom_label_escape k)
              (prom_float (float_of_int (Atomic.get s.s_ns) /. 1e9))))
       spans_l;
     typ "discopop_span_calls_total" "counter";
     List.iter
       (fun (k, s) ->
         Buffer.add_string b
           (Printf.sprintf "discopop_span_calls_total{phase=\"%s\"} %d\n"
              (prom_label_escape k) (Atomic.get s.s_calls)))
       spans_l
   end);
  (let meters_l = sorted_entries meters in
   if meters_l <> [] then begin
     typ "discopop_meter_events_total" "counter";
     List.iter
       (fun (k, m) ->
         Buffer.add_string b
           (Printf.sprintf
              "discopop_meter_events_total{meter=\"%s\",per=\"%s\"} %d\n"
              (prom_label_escape k)
              (prom_label_escape m.m_per)
              (Atomic.get m.m_count)))
       meters_l
   end);
  List.iter
    (fun (k, h) ->
      let n = prom_name k ^ "_seconds" in
      typ n "histogram";
      let acc = ref 0 in
      Array.iteri
        (fun i cnt ->
          let c = Atomic.get cnt in
          if c > 0 then begin
            acc := !acc + c;
            (* Bucket i covers observations up to growth^(i+1) ns. *)
            let le = (hist_growth ** float_of_int (i + 1)) /. 1e9 in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float le)
                 !acc)
          end)
        h.h_counts;
      (* +Inf must close the series at the total even if a concurrent
         observer raced the bucket walk. *)
      let total = max !acc (Atomic.get h.h_count) in
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n total);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n
           (prom_float (float_of_int (Atomic.get h.h_sum_ns) /. 1e9)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n total))
    (sorted_entries histograms);
  Buffer.contents b
