(* Determining software-transactional-memory parameters from profiler output
   (§5.2, Table 5.4): the dependence profile identifies the code sections that
   update shared state inside parallelisable loops — each becomes a
   transaction — and the read/write-set sizes those transactions would have,
   which are the tuning inputs an STM needs (e.g. buffer sizing). *)

module Dep = Profiler.Dep
module L = Discovery.Loops

type transaction = {
  t_loop : int;              (* enclosing loop header line *)
  t_lines : int list;        (* statement lines inside the transaction *)
  t_vars : string list;      (* shared variables accessed *)
  t_instances : int;         (* dynamic executions (loop iterations) *)
}

type report = {
  transactions : transaction list;
  read_set_avg : float;      (* avg distinct shared vars read per txn *)
  write_set_avg : float;
}

(* A transaction is the set of statements in a parallelisable loop body that
   update variables involved in loop-carried dependences (the accesses that
   would conflict when iterations run concurrently). *)
let analyze (report : Discovery.Suggestion.report) : report =
  let deps = report.Discovery.Suggestion.profile.Profiler.Serial.deps in
  let txns =
    List.filter_map
      (fun (a : L.analysis) ->
        match a.L.cls with
        | L.Doall -> None  (* nothing shared: no transaction needed *)
        | L.Doall_reduction | L.Doacross ->
            let carried =
              Dep.Set_.in_range deps ~lo:a.L.region.Mil.Static.first_line
                ~hi:a.L.region.Mil.Static.last_line
              |> List.filter (fun d -> d.Dep.carrier = Some a.L.loop_line)
            in
            let lines =
              List.concat_map (fun d -> [ d.Dep.sink_line; d.Dep.src_line ]) carried
              |> List.sort_uniq compare
            in
            let vars =
              List.map (fun d -> d.Dep.var) carried |> List.sort_uniq compare
            in
            if lines = [] then None
            else
              Some
                { t_loop = a.L.loop_line; t_lines = lines; t_vars = vars;
                  t_instances = a.L.iterations }
        | L.Sequential -> None)
      report.Discovery.Suggestion.loops
  in
  let avg f =
    if txns = [] then 0.0
    else
      float_of_int (List.fold_left (fun acc t -> acc + f t) 0 txns)
      /. float_of_int (List.length txns)
  in
  { transactions = txns;
    read_set_avg = avg (fun t -> List.length t.t_vars);
    write_set_avg = avg (fun t -> List.length t.t_vars) }

let count r = List.length r.transactions
