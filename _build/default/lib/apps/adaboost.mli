(** AdaBoost over decision stumps (§5.1, Tables 5.2/5.3): classifies DOALL
    loops from the profiler-derived feature vectors and reports feature
    importance as the ensemble weight carried by each feature. *)

type stump = {
  feature : int;
  threshold : float;
  polarity : bool;  (** [true]: predict positive when value <= threshold *)
}

type model

val predict_stump : stump -> float array -> bool
val predict : model -> float array -> bool

val train : ?rounds:int -> Features.sample list -> model

val feature_importance : model -> (string * float) list
(** Share of total ensemble weight per feature, descending (Table 5.2). *)

type scores = {
  accuracy : float;
  precision : float;
  recall : float;
  f1 : float;
  n : int;
}

val evaluate : model -> Features.sample list -> scores

val split : ?test_share:int -> Features.sample list ->
  Features.sample list * Features.sample list
(** Deterministic train/test split by hash of the sample tag; roughly one in
    [test_share] samples goes to the test set. *)
