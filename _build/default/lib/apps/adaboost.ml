(* AdaBoost over decision stumps (§5.1, Tables 5.2/5.3): learns to classify
   DOALL loops from the profiler-derived feature vectors, and reports feature
   importance as the weighted error reduction attributable to each feature
   across the ensemble — the paper's Table 5.2 metric. *)

type stump = {
  feature : int;
  threshold : float;
  polarity : bool;  (* true: predict positive when x.(feature) <= threshold *)
}

type model = {
  stumps : (stump * float) list;  (* weak learner, alpha weight *)
  n_features : int;
}

let predict_stump s (x : float array) =
  let le = x.(s.feature) <= s.threshold in
  if s.polarity then le else not le

let predict (m : model) (x : float array) : bool =
  let score =
    List.fold_left
      (fun acc (s, alpha) ->
        acc +. (alpha *. if predict_stump s x then 1.0 else -1.0))
      0.0 m.stumps
  in
  score >= 0.0

(* Best stump for the weighted sample set: scan candidate thresholds per
   feature (midpoints of sorted distinct values). *)
let best_stump ~(xs : float array array) ~(ys : bool array) ~(w : float array)
    ~(n_features : int) : stump * float =
  let n = Array.length xs in
  let best = ref ({ feature = 0; threshold = 0.0; polarity = true }, infinity) in
  for f = 0 to n_features - 1 do
    let values =
      Array.to_list (Array.map (fun x -> x.(f)) xs) |> List.sort_uniq compare
    in
    let thresholds =
      match values with
      | [] -> []
      | first :: _ ->
          (first -. 1.0)
          :: List.map2
               (fun a b -> (a +. b) /. 2.0)
               (List.filteri (fun k _ -> k < List.length values - 1) values)
               (List.tl values)
    in
    List.iter
      (fun thr ->
        List.iter
          (fun pol ->
            let s = { feature = f; threshold = thr; polarity = pol } in
            let err = ref 0.0 in
            for k = 0 to n - 1 do
              if predict_stump s xs.(k) <> ys.(k) then err := !err +. w.(k)
            done;
            if !err < snd !best then best := (s, !err))
          [ true; false ])
      thresholds
  done;
  !best

let train ?(rounds = 20) (samples : Features.sample list) : model =
  let xs = Array.of_list (List.map (fun s -> s.Features.x) samples) in
  let ys = Array.of_list (List.map (fun s -> s.Features.y) samples) in
  let n = Array.length xs in
  if n = 0 then { stumps = []; n_features = Features.dim }
  else begin
    let w = Array.make n (1.0 /. float_of_int n) in
    let stumps = ref [] in
    (try
       for _ = 1 to rounds do
         let s, err = best_stump ~xs ~ys ~w ~n_features:Features.dim in
         let err = max err 1e-10 in
         if err >= 0.5 then raise Exit;
         let alpha = 0.5 *. log ((1.0 -. err) /. err) in
         stumps := (s, alpha) :: !stumps;
         (* reweight *)
         let z = ref 0.0 in
         for k = 0 to n - 1 do
           let correct = predict_stump s xs.(k) = ys.(k) in
           w.(k) <- w.(k) *. exp (if correct then -.alpha else alpha);
           z := !z +. w.(k)
         done;
         for k = 0 to n - 1 do
           w.(k) <- w.(k) /. !z
         done
       done
     with Exit -> ());
    { stumps = List.rev !stumps; n_features = Features.dim }
  end

(* Table 5.2: feature importance = share of total alpha mass (weighted error
   reduction) carried by stumps testing each feature. *)
let feature_importance (m : model) : (string * float) list =
  let totals = Array.make m.n_features 0.0 in
  let sum =
    List.fold_left
      (fun acc (s, alpha) ->
        totals.(s.feature) <- totals.(s.feature) +. alpha;
        acc +. alpha)
      0.0 m.stumps
  in
  List.mapi
    (fun k name -> (name, if sum = 0.0 then 0.0 else totals.(k) /. sum))
    Features.names
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type scores = {
  accuracy : float;
  precision : float;
  recall : float;
  f1 : float;
  n : int;
}

let evaluate (m : model) (samples : Features.sample list) : scores =
  let tp = ref 0 and fp = ref 0 and tn = ref 0 and fn = ref 0 in
  List.iter
    (fun s ->
      match (predict m s.Features.x, s.Features.y) with
      | true, true -> incr tp
      | true, false -> incr fp
      | false, false -> incr tn
      | false, true -> incr fn)
    samples;
  let fi = float_of_int in
  let precision =
    if !tp + !fp = 0 then 1.0 else fi !tp /. fi (!tp + !fp)
  in
  let recall = if !tp + !fn = 0 then 1.0 else fi !tp /. fi (!tp + !fn) in
  { accuracy = fi (!tp + !tn) /. fi (max 1 (!tp + !fp + !tn + !fn));
    precision;
    recall;
    f1 =
      (if precision +. recall = 0.0 then 0.0
       else 2.0 *. precision *. recall /. (precision +. recall));
    n = List.length samples }

(* Deterministic train/test split by hash of the sample tag. *)
let split ?(test_share = 3) (samples : Features.sample list) =
  List.partition (fun s -> Hashtbl.hash s.Features.tag mod test_share <> 0) samples
