(** Detecting communication patterns on multicore systems (§5.3, Fig. 5.1):
    cross-thread RAW dependences form a thread-to-thread communication
    matrix whose shape distinguishes master-worker, neighbour, and
    all-to-all programs. *)

module Dep = Profiler.Dep

type matrix = {
  threads : int;
  counts : int array array;  (** consumer x producer *)
}

val of_deps : ?max_threads:int -> Dep.Set_.t -> matrix

type pattern = All_to_all | Master_worker | Neighbour | Uncoupled

val classify : matrix -> pattern
val pattern_to_string : pattern -> string

val render : ?diagonal:bool -> matrix -> string
(** ASCII heatmap in the style of Fig. 5.1; the diagonal (self-communication)
    is suppressed unless [diagonal] is set. *)
