(** Determining software-transactional-memory parameters from the profiler
    output (§5.2, Table 5.4): code sections updating shared state inside
    parallelisable loops become transactions, with the set sizes an STM
    needs for tuning. *)

module Dep = Profiler.Dep
module L = Discovery.Loops

type transaction = {
  t_loop : int;              (** enclosing loop header line *)
  t_lines : int list;        (** statement lines inside the transaction *)
  t_vars : string list;      (** shared variables accessed *)
  t_instances : int;         (** dynamic executions (loop iterations) *)
}

type report = {
  transactions : transaction list;
  read_set_avg : float;
  write_set_avg : float;
}

val analyze : Discovery.Suggestion.report -> report
val count : report -> int
