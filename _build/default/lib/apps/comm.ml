(* Detecting communication patterns on multicore systems (§5.3, Fig. 5.1):
   cross-thread RAW dependences captured by the profiler form a thread-to-
   thread communication matrix — cell (i, j) counts values produced by thread
   j and consumed by thread i. The matrix shape distinguishes the patterns
   the paper's Fig. 5.1 shows for splash2x (all-to-all, neighbour,
   master-worker...). *)

module Dep = Profiler.Dep

type matrix = {
  threads : int;
  counts : int array array;  (* consumer x producer *)
}

let of_deps ?(max_threads = 32) (deps : Dep.Set_.t) : matrix =
  let top = ref 0 in
  Dep.Set_.iter
    (fun d _ ->
      if d.Dep.dtype = Dep.Raw then begin
        if d.Dep.sink_thread > !top then top := d.Dep.sink_thread;
        if d.Dep.src_thread > !top then top := d.Dep.src_thread
      end)
    deps;
  let n = min max_threads (!top + 1) in
  let counts = Array.make_matrix n n 0 in
  Dep.Set_.iter
    (fun d cnt ->
      if
        d.Dep.dtype = Dep.Raw && d.Dep.sink_thread >= 0 && d.Dep.src_thread >= 0
        && d.Dep.sink_thread < n && d.Dep.src_thread < n
      then
        counts.(d.Dep.sink_thread).(d.Dep.src_thread) <-
          counts.(d.Dep.sink_thread).(d.Dep.src_thread) + cnt)
    deps;
  { threads = n; counts }

type pattern = All_to_all | Master_worker | Neighbour | Uncoupled

(* Classify by where the cross-thread communication mass sits. *)
let classify (m : matrix) : pattern =
  let n = m.threads in
  if n <= 1 then Uncoupled
  else begin
    let total = ref 0 and master = ref 0 and neigh = ref 0 in
    for c = 0 to n - 1 do
      for p = 0 to n - 1 do
        if c <> p then begin
          total := !total + m.counts.(c).(p);
          if p = 0 || c = 0 then master := !master + m.counts.(c).(p);
          if abs (c - p) = 1 then neigh := !neigh + m.counts.(c).(p)
        end
      done
    done;
    if !total = 0 then Uncoupled
    else if 10 * !master >= 9 * !total then Master_worker
    else if 10 * !neigh >= 8 * !total then Neighbour
    else All_to_all
  end

let pattern_to_string = function
  | All_to_all -> "all-to-all"
  | Master_worker -> "master-worker"
  | Neighbour -> "neighbour"
  | Uncoupled -> "uncoupled"

(* ASCII heatmap in the style of Fig. 5.1. Self-communication (the diagonal)
   is not communication between threads and is suppressed by default so the
   inter-thread structure is visible. *)
let render ?(diagonal = false) (m : matrix) : string =
  let buf = Buffer.create 256 in
  let cell c p = if (not diagonal) && c = p then 0 else m.counts.(c).(p) in
  let maxc = ref 1 in
  Array.iteri
    (fun c row -> Array.iteri (fun p _ -> if cell c p > !maxc then maxc := cell c p) row)
    m.counts;
  let shades = [| ' '; '.'; ':'; '+'; '#'; '@' |] in
  Buffer.add_string buf "      producer ->\n";
  Array.iteri
    (fun c row ->
      Buffer.add_string buf (Printf.sprintf "  t%-2d |" c);
      Array.iteri
        (fun p _ ->
          let v = cell c p in
          let lvl =
            if v = 0 then 0 else 1 + (v * (Array.length shades - 2) / !maxc)
          in
          Buffer.add_char buf
            (if (not diagonal) && c = p then '-'
             else shades.(min lvl (Array.length shades - 1)));
          Buffer.add_char buf ' ')
        row;
      Buffer.add_string buf "|\n")
    m.counts;
  Buffer.contents buf
