(** Dynamic features for DOALL loop characterisation (§5.1, Table 5.1):
    each executed loop is described by a vector extracted from the profiler
    output, which the AdaBoost ensemble learns to classify. *)

module Dep = Profiler.Dep
module L = Discovery.Loops

type vector = {
  f_iterations : float;
  f_instr_per_iter : float;
  f_carried_raw : float;       (** distinct loop-carried RAW deps *)
  f_carried_war : float;
  f_carried_waw : float;
  f_intra_raw : float;
  f_reduction_updates : float;
  f_body_cus : float;
  f_has_calls : float;         (** 0/1 *)
  f_write_ratio : float;
  f_coverage : float;
}

val names : string list
val dim : int
val to_array : vector -> float array

val of_loop : Dep.Set_.t -> Profiler.Pet.t -> L.analysis -> vector

(** A labelled corpus row. *)
type sample = { x : float array; y : bool; tag : string }

val corpus : Workloads.Registry.t list -> sample list
(** Build the corpus from workloads, labelling loops by ground truth;
    unscored ([Eany]) loops and parallel targets are skipped. *)
