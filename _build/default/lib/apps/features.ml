(* Dynamic features for DOALL loop characterisation (§5.1, Table 5.1).

   Each executed loop is described by a feature vector extracted from the
   profiler output — dependence counts by type and carriedness, loop shape and
   intensity metrics — which the AdaBoost stump ensemble (§{!Adaboost}) learns
   to classify as parallelisable or not without seeing the rule-based
   classifier's reduction/index heuristics. *)

module Dep = Profiler.Dep
module L = Discovery.Loops

type vector = {
  f_iterations : float;
  f_instr_per_iter : float;
  f_carried_raw : float;      (* distinct loop-carried RAW deps *)
  f_carried_war : float;
  f_carried_waw : float;
  f_intra_raw : float;        (* intra-iteration RAW deps in the body *)
  f_reduction_updates : float; (* recognised reduction statements *)
  f_body_cus : float;
  f_has_calls : float;        (* 0/1 *)
  f_write_ratio : float;      (* writes / accesses inside the loop *)
  f_coverage : float;         (* share of whole-program instructions *)
}

let names =
  [ "iterations"; "instr_per_iter"; "carried_raw"; "carried_war";
    "carried_waw"; "intra_raw"; "reduction_updates"; "body_cus"; "has_calls";
    "write_ratio"; "coverage" ]

let to_array v =
  [| v.f_iterations; v.f_instr_per_iter; v.f_carried_raw; v.f_carried_war;
     v.f_carried_waw; v.f_intra_raw; v.f_reduction_updates; v.f_body_cus;
     v.f_has_calls; v.f_write_ratio; v.f_coverage |]

let dim = List.length names

(* Extract the vector for one analysed loop. *)
let of_loop (deps : Dep.Set_.t) (pet : Profiler.Pet.t) (a : L.analysis) : vector =
  let r = a.L.region in
  let lo = r.Mil.Static.first_line and hi = r.Mil.Static.last_line in
  let in_loop = Dep.Set_.in_range deps ~lo ~hi in
  let carried ty =
    List.length
      (List.filter
         (fun d -> d.Dep.dtype = ty && d.Dep.carrier = Some a.L.loop_line)
         in_loop)
  in
  let intra ty =
    List.length
      (List.filter (fun d -> d.Dep.dtype = ty && d.Dep.carrier = None) in_loop)
  in
  let total_instr = max 1 (Profiler.Pet.total_instructions pet) in
  let writes_in_range =
    (* approximate write share by WAW+WAR+INIT sinks vs all dep sinks *)
    List.length
      (List.filter
         (fun d -> d.Dep.dtype = Dep.Waw || d.Dep.dtype = Dep.War || d.Dep.dtype = Dep.Init)
         in_loop)
  in
  { f_iterations = float_of_int a.L.iterations;
    f_instr_per_iter =
      float_of_int a.L.instructions /. float_of_int (max 1 a.L.iterations);
    f_carried_raw = float_of_int (carried Dep.Raw);
    f_carried_war = float_of_int (carried Dep.War);
    f_carried_waw = float_of_int (carried Dep.Waw);
    f_intra_raw = float_of_int (intra Dep.Raw);
    f_reduction_updates =
      float_of_int (List.length r.Mil.Static.reductions);
    f_body_cus = float_of_int (List.length a.L.body_cus);
    f_has_calls =
      (if List.exists (fun (c : Cunit.Cu.t) -> c.Cunit.Cu.contains_call) a.L.body_cus
       then 1.0
       else 0.0);
    f_write_ratio =
      float_of_int writes_in_range /. float_of_int (max 1 (List.length in_loop));
    f_coverage = float_of_int a.L.instructions /. float_of_int total_instr }

(* A labelled corpus row: features plus the parallelisable label. *)
type sample = { x : float array; y : bool; tag : string }

(* Build the corpus from a set of workloads, labelling by ground truth. *)
let corpus (workloads : Workloads.Registry.t list) : sample list =
  List.concat_map
    (fun (w : Workloads.Registry.t) ->
      if w.Workloads.Registry.parallel_target then []
      else begin
        let prog = Workloads.Registry.program w in
        let report = Discovery.Suggestion.analyze prog in
        let deps = report.Discovery.Suggestion.profile.Profiler.Serial.deps in
        let pet = report.Discovery.Suggestion.profile.Profiler.Serial.pet in
        let loops =
          List.sort
            (fun (a : L.analysis) b -> compare a.L.loop_line b.L.loop_line)
            report.Discovery.Suggestion.loops
        in
        List.filteri
          (fun k _ -> k < List.length w.Workloads.Registry.expected_loops)
          loops
        |> List.mapi (fun k (a : L.analysis) ->
               let expected = List.nth w.Workloads.Registry.expected_loops k in
               let label =
                 match expected with
                 | Workloads.Registry.Edoall | Workloads.Registry.Edoall_reduction ->
                     Some true
                 | Workloads.Registry.Edoacross | Workloads.Registry.Eseq ->
                     Some false
                 | Workloads.Registry.Eany -> None
               in
               match label with
               | Some y ->
                   Some
                     { x = to_array (of_loop deps pet a);
                       y;
                       tag =
                         Printf.sprintf "%s@%d" w.Workloads.Registry.name
                           a.L.loop_line }
               | None -> None)
        |> List.filter_map Fun.id
      end)
    workloads
