lib/apps/features.ml: Cunit Discovery Fun List Mil Printf Profiler Workloads
