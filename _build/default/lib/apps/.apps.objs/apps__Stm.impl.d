lib/apps/stm.ml: Discovery List Mil Profiler
