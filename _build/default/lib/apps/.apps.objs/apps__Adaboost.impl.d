lib/apps/adaboost.ml: Array Features Hashtbl List
