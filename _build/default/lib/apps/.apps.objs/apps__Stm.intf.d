lib/apps/stm.mli: Discovery Profiler
