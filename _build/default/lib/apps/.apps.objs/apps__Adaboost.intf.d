lib/apps/adaboost.mli: Features
