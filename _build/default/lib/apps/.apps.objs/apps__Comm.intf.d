lib/apps/comm.mli: Profiler
