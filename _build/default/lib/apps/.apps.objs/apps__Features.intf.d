lib/apps/features.mli: Discovery Profiler Workloads
