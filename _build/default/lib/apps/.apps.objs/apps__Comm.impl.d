lib/apps/comm.ml: Array Buffer Printf Profiler
