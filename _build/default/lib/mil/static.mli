(** Static analysis over MIL programs — the counterpart of DiscoPoP's
    compile-time passes: the control-region tree, global/local variable
    classification per region (§3.2.1), interprocedural read/write summaries,
    and reduction recognition (§4.1.1). *)

module SS : Set.S with type elt = string

type region_kind =
  | Rfunc of string
  | Rloop of { index : string option; cond_vars : SS.t }
      (** [index] is [None] for while loops; [cond_vars] are the variables
          the loop condition reads — a carried true dependence on one of
          them controls the iteration space and can never be discounted. *)
  | Rbranch of { arm_then : bool }

(** A control region: a function body, loop body, or branch arm. Statements
    of a region occupy the contiguous line interval
    [[first_line, last_line]]. *)
type region = {
  id : int;
  kind : region_kind;
  parent : int;                       (** [-1] at a function root *)
  depth : int;
  mutable children : int list;        (** in source order *)
  first_line : int;                   (** header line of the construct *)
  mutable last_line : int;
  mutable globals_read : SS.t;        (** global-to-region vars read inside *)
  mutable globals_written : SS.t;
  mutable locals : SS.t;              (** vars declared directly in region *)
  mutable reductions : (string * Ast.binop) list;
      (** reduction statements at this region's direct level *)
  mutable index_written_in_body : bool;  (** §3.2.5 loop-index special rule *)
  stmts : Ast.block;                  (** direct statements *)
}

(** Interprocedural summary: which program globals and array parameters a
    function transitively reads and writes. *)
type summary = {
  sum_gread : SS.t;
  sum_gwritten : SS.t;
  sum_pread : SS.t;        (** names of array params read *)
  sum_pwritten : SS.t;
}

type t = {
  program : Ast.program;
  regions : region array;
  func_region : (string, int) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
  line_region : (int, int) Hashtbl.t;    (** statement line -> region id *)
  program_globals : SS.t;
}

val analyze : Ast.program -> t

(** {1 Accessors} *)

val region : t -> int -> region
val func_region : t -> string -> int
val summary : t -> string -> summary option
val global_vars : t -> int -> SS.t
(** Variables global to a region (read or written), per §3.2.1. *)

val region_of_line : t -> int -> int option
val enclosing_loops : t -> int -> region list
(** Enclosing loop regions, innermost first. *)

val loop_regions : t -> region list
val func_of_region : t -> int -> string
(** The function whose body (transitively) contains the region. *)

(** {1 Syntactic helpers} *)

val expr_read_vars : Ast.expr -> SS.t -> SS.t
(** Variable names an expression reads, added to the accumulator. *)

val expr_callees : Ast.expr -> (string * Ast.expr list) list -> (string * Ast.expr list) list
(** Call sites named in an expression, with their argument lists. *)

val lhs_written : Ast.lhs -> string
val lhs_index_reads : Ast.lhs -> SS.t

val reduction_of_stmt : Ast.stmt -> (string * Ast.binop) option
(** Recognise [x = x op e] / [a[i] = a[i] op e] with a reduction operator
    where [e] does not re-read the reduced variable ([a[i] = a[i] + a[i-1]]
    is a recurrence, not a reduction). *)

val reduction_only_vars :
  Ast.program -> (string, Ast.binop * int list) Hashtbl.t
(** Variables whose every write in the whole program is a reduction with a
    consistent operator (initialisation outside loops allowed); the value is
    the operator and the reduction statement lines. Carried RAW dependences
    on such variables whose sink is one of those lines are resolvable by
    parallel reduction even when the update happens inside a callee. *)

val apply_call_summary :
  callee_sum:summary -> callee:Ast.func -> args:Ast.expr list -> SS.t * SS.t
(** Map a callee summary through a call site: array-parameter effects become
    effects on the actual argument arrays. Returns [(reads, writes)]. *)

val compute_summaries : Ast.program -> SS.t -> (string, summary) Hashtbl.t
(** Fixpoint over the call graph; exposed for testing. *)

val empty_summary : summary
val summary_equal : summary -> summary -> bool
