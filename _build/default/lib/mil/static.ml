(* Static analysis over MIL programs.

   This module plays the role of DiscoPoP's compile-time passes: it builds the
   control-region tree (functions, loops, branch arms), classifies variables as
   global or local to each region (§3.2.1), computes interprocedural
   read/write summaries used by the top-down CU construction, and recognises
   reduction statements (needed for DOALL classification, §4.1.1). *)

open Ast
module SS = Set.Make (String)

type region_kind =
  | Rfunc of string
  | Rloop of { index : string option; cond_vars : SS.t }
      (* [index] is [None] for while loops; [cond_vars] are the variables the
         loop condition reads — a carried true dependence on one of them
         controls the iteration space and can never be discounted. *)
  | Rbranch of { arm_then : bool }

type region = {
  id : int;
  kind : region_kind;
  parent : int;                       (* -1 at a function root *)
  depth : int;
  mutable children : int list;        (* in source order *)
  first_line : int;                   (* header line of the construct *)
  mutable last_line : int;            (* last line inside the region *)
  mutable globals_read : SS.t;        (* global-to-region vars read inside *)
  mutable globals_written : SS.t;
  mutable locals : SS.t;              (* vars declared directly in region *)
  mutable reductions : (string * binop) list;
  (* Reduction variables updated at this region's direct level. *)
  mutable index_written_in_body : bool;  (* §3.2.5 loop-index special rule *)
  stmts : block;                      (* direct statements *)
}

(* Interprocedural summary: which program globals and which array parameters a
   function (transitively) reads and writes. Scalar params are by-value. *)
type summary = {
  sum_gread : SS.t;
  sum_gwritten : SS.t;
  sum_pread : SS.t;        (* names of array params read *)
  sum_pwritten : SS.t;
}

type t = {
  program : program;
  regions : region array;
  func_region : (string, int) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
  line_region : (int, int) Hashtbl.t;    (* statement line -> region id *)
  program_globals : SS.t;
}

let region t id = t.regions.(id)
let func_region t name = Hashtbl.find t.func_region name
let summary t name = Hashtbl.find_opt t.summaries name

let rec expr_read_vars e acc =
  match e with
  | Int _ | Len _ -> acc
  | Var x -> SS.add x acc
  | Idx (a, e1) -> expr_read_vars e1 (SS.add a acc)
  | Bin (_, e1, e2) -> expr_read_vars e2 (expr_read_vars e1 acc)
  | Neg e1 | Not e1 -> expr_read_vars e1 acc
  | Call (_, args) -> List.fold_left (fun acc e1 -> expr_read_vars e1 acc) acc args

(* Callees named in an expression, for summary propagation. *)
let rec expr_callees e acc =
  match e with
  | Int _ | Var _ | Len _ -> acc
  | Idx (_, e1) | Neg e1 | Not e1 -> expr_callees e1 acc
  | Bin (_, e1, e2) -> expr_callees e2 (expr_callees e1 acc)
  | Call (f, args) ->
      List.fold_left (fun acc e1 -> expr_callees e1 acc) ((f, args) :: acc) args

let lhs_written = function Lvar x | Lidx (x, _) -> x
let lhs_index_reads = function Lvar _ -> SS.empty | Lidx (_, e) -> expr_read_vars e SS.empty

(* Recognise a reduction statement: [x = x op e] or [a[i] = a[i] op e] with a
   commutative-associative operator, where [e] does not read the reduced
   variable again — [a[i] = a[i] + a[i-1]] is a recurrence, not a reduction. *)
let reduction_of_stmt s =
  let reads_var v e = SS.mem v (expr_read_vars e SS.empty) in
  match s.node with
  | Assign (Lvar x, Bin (op, Var x', e)) when x = x' && is_reduction_op op
                                               && not (reads_var x e) ->
      Some (x, op)
  | Assign (Lvar x, Bin (op, e, Var x')) when x = x' && is_reduction_op op
                                               && not (reads_var x e) ->
      Some (x, op)
  | Assign (Lidx (a, i1), Bin (op, Idx (a', i2), e))
    when a = a' && i1 = i2 && is_reduction_op op && not (reads_var a e)
         && not (reads_var a i1) ->
      Some (a, op)
  | Assign (Lidx (a, i1), Bin (op, e, Idx (a', i2)))
    when a = a' && i1 = i2 && is_reduction_op op && not (reads_var a e)
         && not (reads_var a i1) ->
      Some (a, op)
  | Atomic_assign (Lvar x, Bin (op, Var x', e))
    when x = x' && is_reduction_op op && not (reads_var x e) ->
      Some (x, op)
  | Atomic_assign (Lidx (a, i1), Bin (op, Idx (a', i2), e))
    when a = a' && i1 = i2 && is_reduction_op op && not (reads_var a e)
         && not (reads_var a i1) ->
      Some (a, op)
  | _ -> None

(* Program-wide reduction analysis: variables whose every write statement in
   the whole program is a reduction with a consistent operator (a first write
   outside any loop — plain initialisation — is also allowed). Carried RAW
   dependences on such variables whose sink is one of the reduction lines are
   resolvable by parallel reduction even when the update happens in a callee
   (e.g. a recursive task incrementing a global counter). *)
let reduction_only_vars (p : program) :
    (string, binop * int list (* reduction stmt lines *)) Hashtbl.t =
  let candidates : (string, binop option * int list) Hashtbl.t = Hashtbl.create 16 in
  let disqualify v = Hashtbl.replace candidates v (None, []) in
  let note_reduction v op line =
    match Hashtbl.find_opt candidates v with
    | Some (None, _) -> ()
    | Some (Some op', lines) ->
        if op = op' then Hashtbl.replace candidates v (Some op, line :: lines)
        else disqualify v
    | None -> Hashtbl.replace candidates v (Some op, [ line ])
  in
  let note_plain_write ~in_loop v =
    match (Hashtbl.find_opt candidates v, in_loop) with
    | Some (None, _), _ -> ()
    | _, true -> disqualify v
    | None, false -> ()  (* initialisation before any reduction: fine *)
    | Some _, false -> disqualify v
  in
  let rec stmt ~in_loop s =
    match (reduction_of_stmt s, s.node) with
    | Some (v, op), _ -> note_reduction v op s.line
    | None, (Assign (l, _) | Atomic_assign (l, _)) ->
        note_plain_write ~in_loop (lhs_written l)
    | None, (Decl (x, _) | Decl_arr (x, _)) -> note_plain_write ~in_loop x
    | None, Free x -> note_plain_write ~in_loop x
    | None, If (_, t, e) ->
        List.iter (stmt ~in_loop) t;
        List.iter (stmt ~in_loop) e
    | None, (While (_, b) | For { body = b; _ }) -> List.iter (stmt ~in_loop:true) b
    | None, Par bs -> List.iter (List.iter (stmt ~in_loop)) bs
    | None, (Call_stmt _ | Return _ | Break | Lock _ | Unlock _ | Barrier _) -> ()
  in
  List.iter
    (fun f -> List.iter (stmt ~in_loop:false) f.body)
    p.funcs;
  let out = Hashtbl.create 8 in
  Hashtbl.iter
    (fun v entry ->
      match entry with
      | Some op, lines when lines <> [] -> Hashtbl.replace out v (op, lines)
      | _ -> ())
    candidates;
  out

(* ---- Function summaries (fixpoint over the call graph) ---- *)

let empty_summary =
  { sum_gread = SS.empty; sum_gwritten = SS.empty;
    sum_pread = SS.empty; sum_pwritten = SS.empty }

let summary_equal a b =
  SS.equal a.sum_gread b.sum_gread
  && SS.equal a.sum_gwritten b.sum_gwritten
  && SS.equal a.sum_pread b.sum_pread
  && SS.equal a.sum_pwritten b.sum_pwritten

(* Map a callee summary through a call site: array-parameter effects become
   effects on the actual argument arrays (which may be the caller's params,
   locals, or program globals). Actual array arguments in MIL are written as
   [Var name] in the argument list positions that correspond to array params. *)
let apply_call_summary ~callee_sum ~callee ~args =
  let n_scalars = List.length callee.params in
  let arr_actuals =
    (* Array actuals follow the scalar actuals positionally. *)
    List.filteri (fun k _ -> k >= n_scalars) args
    |> List.map (function
         | Var a -> Some a
         | _ -> None)
  in
  let map_params pset =
    List.fold_left2
      (fun acc formal actual ->
        if SS.mem formal pset then
          match actual with Some a -> SS.add a acc | None -> acc
        else acc)
      SS.empty callee.arr_params
      (if List.length arr_actuals = List.length callee.arr_params then arr_actuals
       else List.map (fun _ -> None) callee.arr_params)
  in
  let reads = SS.union callee_sum.sum_gread (map_params callee_sum.sum_pread) in
  let writes = SS.union callee_sum.sum_gwritten (map_params callee_sum.sum_pwritten) in
  (reads, writes)

let compute_summaries (p : program) (program_globals : SS.t) :
    (string, summary) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace tbl f.fname empty_summary) p.funcs;
  let get name = try Hashtbl.find tbl name with Not_found -> empty_summary in
  let classify f name (gr, gw, pr, pw) ~write =
    (* A name touched inside [f] contributes to the summary if it is a program
       global or one of [f]'s array parameters; everything else is local. *)
    if List.mem name f.arr_params then
      if write then (gr, gw, pr, SS.add name pw) else (gr, gw, SS.add name pr, pw)
    else if SS.mem name program_globals && not (List.mem name f.params) then
      if write then (gr, SS.add name gw, pr, pw) else (SS.add name gr, gw, pr, pw)
    else (gr, gw, pr, pw)
  in
  let rec stmt_effects f locals acc s =
    let add_reads e (acc, locals) =
      let acc =
        SS.fold
          (fun x acc -> if SS.mem x locals then acc else classify f x acc ~write:false)
          (expr_read_vars e SS.empty) acc
      in
      let acc =
        List.fold_left
          (fun acc (callee_name, args) ->
            match List.find_opt (fun g -> g.fname = callee_name) p.funcs with
            | None -> acc
            | Some callee ->
                let reads, writes =
                  apply_call_summary ~callee_sum:(get callee_name) ~callee ~args
                in
                let acc =
                  SS.fold
                    (fun x acc ->
                      if SS.mem x locals then acc else classify f x acc ~write:false)
                    reads acc
                in
                SS.fold
                  (fun x acc ->
                    if SS.mem x locals then acc else classify f x acc ~write:true)
                  writes acc)
          acc (expr_callees e [])
      in
      (acc, locals)
    in
    let add_write name (acc, locals) =
      if SS.mem name locals then (acc, locals)
      else (classify f name acc ~write:true, locals)
    in
    match s.node with
    | Decl (x, e) ->
        let acc, _ = add_reads e (acc, locals) in
        (acc, SS.add x locals)
    | Decl_arr (x, e) ->
        let acc, _ = add_reads e (acc, locals) in
        (acc, SS.add x locals)
    | Assign (l, e) | Atomic_assign (l, e) ->
        (acc, locals)
        |> add_reads e
        |> (fun (acc, locals) ->
             SS.fold
               (fun x acc -> if SS.mem x locals then acc else classify f x acc ~write:false)
               (lhs_index_reads l) acc
             |> fun acc -> (acc, locals))
        |> add_write (lhs_written l)
    | Call_stmt (name, args) ->
        add_reads (Call (name, args)) (acc, locals)
    | Return (Some e) -> add_reads e (acc, locals)
    | Return None | Break | Lock _ | Unlock _ | Barrier _ -> (acc, locals)
    | Free x -> add_write x (acc, locals)
    | If (c, t, e) ->
        let acc, locals = add_reads c (acc, locals) in
        let acc = block_effects f locals acc t in
        let acc = block_effects f locals acc e in
        (acc, locals)
    | While (c, body) ->
        let acc, locals = add_reads c (acc, locals) in
        (block_effects f locals acc body, locals)
    | For { index; lo; hi; step; body } ->
        let acc, locals = add_reads lo (acc, locals) in
        let acc, locals = add_reads hi (acc, locals) in
        let acc, locals = add_reads step (acc, locals) in
        (block_effects f (SS.add index locals) acc body, locals)
    | Par blocks ->
        (List.fold_left (fun acc b -> block_effects f locals acc b) acc blocks, locals)
  and block_effects f locals acc block =
    let acc, _ =
      List.fold_left (fun (acc, locals) s -> stmt_effects f locals acc s) (acc, locals) block
    in
    acc
  in
  let step () =
    List.fold_left
      (fun changed f ->
        let locals = SS.of_list f.params in
        let gr, gw, pr, pw =
          block_effects f locals (SS.empty, SS.empty, SS.empty, SS.empty) f.body
        in
        let s' = { sum_gread = gr; sum_gwritten = gw; sum_pread = pr; sum_pwritten = pw } in
        if summary_equal (get f.fname) s' then changed
        else begin
          Hashtbl.replace tbl f.fname s';
          true
        end)
      false p.funcs
  in
  let rec fix n = if step () && n > 0 then fix (n - 1) in
  fix (List.length p.funcs + 4);
  tbl

(* ---- Region tree ---- *)

let analyze (p : program) : t =
  let program_globals =
    List.fold_left
      (fun acc g -> match g with Gscalar (n, _) | Garray (n, _) -> SS.add n acc)
      SS.empty p.globals
  in
  let summaries = compute_summaries p program_globals in
  let regions : region list ref = ref [] in
  let n_regions = ref 0 in
  let func_region = Hashtbl.create 16 in
  let line_region = Hashtbl.create 256 in
  let new_region ~kind ~parent ~depth ~first_line ~stmts =
    let r =
      { id = !n_regions; kind; parent; depth; children = []; first_line;
        last_line = first_line; globals_read = SS.empty;
        globals_written = SS.empty; locals = SS.empty; reductions = [];
        index_written_in_body = false; stmts }
    in
    incr n_regions;
    regions := r :: !regions;
    r
  in
  (* [decl_region] maps a variable name to the region stack of its current
     declaration; shadowing pushes, region exit pops. *)
  let decl_region : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  let push_decl x rid =
    let prev = try Hashtbl.find decl_region x with Not_found -> [] in
    Hashtbl.replace decl_region x (rid :: prev)
  in
  let pop_decl x =
    match Hashtbl.find_opt decl_region x with
    | Some (_ :: rest) -> Hashtbl.replace decl_region x rest
    | _ -> ()
  in
  let declaring_region x =
    match Hashtbl.find_opt decl_region x with Some (r :: _) -> r | _ -> -1
    (* -1: program-global (or undeclared, treated as global) *)
  in
  (* Record an access to [x] made while inside region [rid]: [x] is global to
     every region from [rid] up to (and excluding) its declaring region.
     The declaring region is resolved at note time (scope pops would corrupt a
     later lookup); the upward walk is replayed once the region array exists. *)
  let all_regions = ref [||] in
  let record_access ~write x rid d =
    let rec up id =
      if id <> d && id >= 0 then begin
        let r = (!all_regions).(id) in
        if write then r.globals_written <- SS.add x r.globals_written
        else r.globals_read <- SS.add x r.globals_read;
        up r.parent
      end
    in
    up rid
  in
  (* First pass: build the region tree and collect locals; record accesses in
     a worklist to replay once the array is available. *)
  let accesses : (bool * string * int * int) list ref = ref [] in
  let note ~write x rid =
    accesses := (write, x, rid, declaring_region x) :: !accesses
  in
  let note_expr e rid =
    SS.iter (fun x -> note ~write:false x rid) (expr_read_vars e SS.empty);
    List.iter
      (fun (callee_name, args) ->
        match List.find_opt (fun g -> g.fname = callee_name) p.funcs with
        | None -> ()
        | Some callee ->
            let callee_sum =
              try Hashtbl.find summaries callee_name with Not_found -> empty_summary
            in
            let reads, writes = apply_call_summary ~callee_sum ~callee ~args in
            SS.iter (fun x -> note ~write:false x rid) reads;
            SS.iter (fun x -> note ~write:true x rid) writes)
      (expr_callees e [])
  in
  let rec walk_block block (r : region) scoped =
    (* [scoped] accumulates names declared in this block, popped on exit. *)
    let scoped =
      List.fold_left
        (fun scoped s ->
          Hashtbl.replace line_region s.line r.id;
          r.last_line <- max r.last_line s.line;
          (match reduction_of_stmt s with
          | Some (x, op) when not (List.mem_assoc x r.reductions) ->
              r.reductions <- (x, op) :: r.reductions
          | _ -> ());
          match s.node with
          | Decl (x, e) | Decl_arr (x, e) ->
              note_expr e r.id;
              push_decl x r.id;
              r.locals <- SS.add x r.locals;
              note ~write:true x r.id;
              x :: scoped
          | Assign (l, e) | Atomic_assign (l, e) ->
              note_expr e r.id;
              note_expr (match l with Lvar _ -> Int 0 | Lidx (_, ie) -> ie) r.id;
              note ~write:true (lhs_written l) r.id;
              scoped
          | Call_stmt (name, args) ->
              note_expr (Call (name, args)) r.id;
              scoped
          | Return (Some e) ->
              note_expr e r.id;
              scoped
          | Return None | Break | Lock _ | Unlock _ | Barrier _ -> scoped
          | Free x ->
              note ~write:true x r.id;
              scoped
          | If (c, t, e) ->
              note_expr c r.id;
              let rt =
                new_region ~kind:(Rbranch { arm_then = true }) ~parent:r.id
                  ~depth:(r.depth + 1) ~first_line:s.line ~stmts:t
              in
              r.children <- r.children @ [ rt.id ];
              walk_block t rt [];
              r.last_line <- max r.last_line rt.last_line;
              if e <> [] then begin
                let re =
                  new_region ~kind:(Rbranch { arm_then = false }) ~parent:r.id
                    ~depth:(r.depth + 1) ~first_line:s.line ~stmts:e
                in
                r.children <- r.children @ [ re.id ];
                walk_block e re [];
                r.last_line <- max r.last_line re.last_line
              end;
              scoped
          | While (c, body) ->
              note_expr c r.id;
              let rl =
                new_region
                  ~kind:(Rloop { index = None; cond_vars = expr_read_vars c SS.empty })
                  ~parent:r.id ~depth:(r.depth + 1) ~first_line:s.line ~stmts:body
              in
              r.children <- r.children @ [ rl.id ];
              walk_block body rl [];
              r.last_line <- max r.last_line rl.last_line;
              scoped
          | For { index; lo; hi; step; body } ->
              note_expr lo r.id;
              note_expr hi r.id;
              note_expr step r.id;
              let cond_vars = expr_read_vars hi (SS.singleton index) in
              let rl =
                new_region ~kind:(Rloop { index = Some index; cond_vars })
                  ~parent:r.id ~depth:(r.depth + 1) ~first_line:s.line ~stmts:body
              in
              r.children <- r.children @ [ rl.id ];
              push_decl index rl.id;
              rl.locals <- SS.add index rl.locals;
              walk_block body rl [];
              pop_decl index;
              (* §3.2.5: an index written in the body becomes global to it. *)
              rl.index_written_in_body <- block_writes_var body index;
              r.last_line <- max r.last_line rl.last_line;
              scoped
          | Par blocks ->
              List.iter
                (fun b ->
                  let rb =
                    new_region ~kind:(Rbranch { arm_then = true }) ~parent:r.id
                      ~depth:(r.depth + 1) ~first_line:s.line ~stmts:b
                  in
                  r.children <- r.children @ [ rb.id ];
                  walk_block b rb [];
                  r.last_line <- max r.last_line rb.last_line)
                blocks;
              scoped)
        scoped block
    in
    List.iter pop_decl scoped
  and block_writes_var block x =
    List.exists
      (fun s ->
        match s.node with
        | Assign (l, _) | Atomic_assign (l, _) -> lhs_written l = x
        | If (_, t, e) -> block_writes_var t x || block_writes_var e x
        | While (_, b) -> block_writes_var b x
        | For { body; _ } -> block_writes_var body x
        | Par bs -> List.exists (fun b -> block_writes_var b x) bs
        | Decl _ | Decl_arr _ | Call_stmt _ | Return _ | Break | Lock _
        | Unlock _ | Barrier _ | Free _ ->
            false)
      block
  in
  List.iter
    (fun f ->
      let rf =
        new_region ~kind:(Rfunc f.fname) ~parent:(-1) ~depth:0
          ~first_line:f.fline ~stmts:f.body
      in
      Hashtbl.replace func_region f.fname rf.id;
      Hashtbl.replace line_region f.fline rf.id;
      List.iter (fun x -> push_decl x rf.id) f.params;
      rf.locals <- SS.union rf.locals (SS.of_list f.params);
      (* Array params are by-reference: global to the function body. *)
      walk_block f.body rf [];
      List.iter pop_decl f.params)
    p.funcs;
  let arr =
    match !regions with
    | [] -> [||]
    | r0 :: _ -> Array.make !n_regions r0
  in
  List.iter (fun r -> arr.(r.id) <- r) !regions;
  all_regions := arr;
  List.iter (fun (write, x, rid, d) -> record_access ~write x rid d) (List.rev !accesses);
  { program = p; regions = arr; func_region; summaries; line_region;
    program_globals }

(* Variables global to a region, per the paper's definition. *)
let global_vars t rid =
  let r = t.regions.(rid) in
  SS.union r.globals_read r.globals_written

let region_of_line t line = Hashtbl.find_opt t.line_region line

(* Enclosing loop regions of a region, innermost first. *)
let enclosing_loops t rid =
  let rec up id acc =
    if id < 0 then List.rev acc
    else
      let r = t.regions.(id) in
      let acc = match r.kind with Rloop _ -> r :: acc | _ -> acc in
      up r.parent acc
  in
  List.rev (up rid [])

let loop_regions t =
  Array.to_list t.regions
  |> List.filter (fun r -> match r.kind with Rloop _ -> true | _ -> false)

let func_of_region t rid =
  let rec up id = if t.regions.(id).parent < 0 then id else up t.regions.(id).parent in
  match t.regions.(up rid).kind with
  | Rfunc name -> name
  | Rloop _ | Rbranch _ -> assert false
