(* Source rendering of MIL programs with line numbers, used by the CLI and
   examples so users can correlate profiler output (fileID:lineID) with code. *)

open Ast

let rec expr_to_string e =
  match e with
  | Int n -> string_of_int n
  | Var x -> x
  | Idx (a, e1) -> Printf.sprintf "%s[%s]" a (expr_to_string e1)
  | Len a -> Printf.sprintf "len(%s)" a
  | Bin ((Min | Max) as op, e1, e2) ->
      Printf.sprintf "%s(%s, %s)" (string_of_binop op) (expr_to_string e1)
        (expr_to_string e2)
  | Bin (op, e1, e2) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string e1) (string_of_binop op)
        (expr_to_string e2)
  | Neg e1 -> Printf.sprintf "(-%s)" (expr_to_string e1)
  | Not e1 -> Printf.sprintf "(!%s)" (expr_to_string e1)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))

let lhs_to_string = function
  | Lvar x -> x
  | Lidx (a, e) -> Printf.sprintf "%s[%s]" a (expr_to_string e)

let render_program (p : program) : string =
  let buf = Buffer.create 1024 in
  let line s fmt =
    Printf.ksprintf
      (fun str -> Buffer.add_string buf (Printf.sprintf "%4d  %s%s\n" s "" str))
      fmt
  in
  let pad d = String.make (2 * d) ' ' in
  let rec stmt d s =
    let p = pad d in
    match s.node with
    | Decl (x, e) -> line s.line "%svar %s = %s" p x (expr_to_string e)
    | Decl_arr (x, e) -> line s.line "%svar %s[%s]" p x (expr_to_string e)
    | Assign (l, e) -> line s.line "%s%s = %s" p (lhs_to_string l) (expr_to_string e)
    | Atomic_assign (l, e) ->
        line s.line "%satomic %s = %s" p (lhs_to_string l) (expr_to_string e)
    | If (c, t, []) ->
        line s.line "%sif (%s) {" p (expr_to_string c);
        List.iter (stmt (d + 1)) t;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
    | If (c, t, e) ->
        line s.line "%sif (%s) {" p (expr_to_string c);
        List.iter (stmt (d + 1)) t;
        Buffer.add_string buf (Printf.sprintf "      %s} else {\n" p);
        List.iter (stmt (d + 1)) e;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
    | While (c, body) ->
        line s.line "%swhile (%s) {" p (expr_to_string c);
        List.iter (stmt (d + 1)) body;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
    | For { index; lo; hi; step = Int 1; body } ->
        line s.line "%sfor (%s = %s; %s < %s; %s++) {" p index (expr_to_string lo)
          index (expr_to_string hi) index;
        List.iter (stmt (d + 1)) body;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
    | For { index; lo; hi; step; body } ->
        line s.line "%sfor (%s = %s; %s < %s; %s += %s) {" p index
          (expr_to_string lo) index (expr_to_string hi) index (expr_to_string step);
        List.iter (stmt (d + 1)) body;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
    | Call_stmt (f, args) ->
        line s.line "%s%s(%s)" p f
          (String.concat ", " (List.map expr_to_string args))
    | Return (Some e) -> line s.line "%sreturn %s" p (expr_to_string e)
    | Return None -> line s.line "%sreturn" p
    | Break -> line s.line "%sbreak" p
    | Lock m -> line s.line "%slock(%s)" p m
    | Unlock m -> line s.line "%sunlock(%s)" p m
    | Barrier m -> line s.line "%sbarrier(%s)" p m
    | Free x -> line s.line "%sfree(%s)" p x
    | Par blocks ->
        line s.line "%spar {" p;
        List.iteri
          (fun i b ->
            Buffer.add_string buf
              (Printf.sprintf "      %sthread %d:\n" (pad (d + 1)) i);
            List.iter (stmt (d + 2)) b)
          blocks;
        Buffer.add_string buf (Printf.sprintf "      %s}\n" p)
  in
  List.iter
    (fun g ->
      match g with
      | Gscalar (n, v) -> Buffer.add_string buf (Printf.sprintf "      global %s = %d\n" n v)
      | Garray (n, s) -> Buffer.add_string buf (Printf.sprintf "      global %s[%d]\n" n s))
    p.globals;
  List.iter
    (fun f ->
      let params =
        String.concat ", " (f.params @ List.map (fun a -> a ^ "[]") f.arr_params)
      in
      line f.fline "func %s(%s) {" f.fname params;
      List.iter (stmt 1) f.body;
      Buffer.add_string buf "      }\n")
    p.funcs;
  Buffer.contents buf
