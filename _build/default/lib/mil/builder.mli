(** A DSL for constructing MIL programs in OCaml source, plus the
    line-numbering pass. The expression operators below shadow the Stdlib
    integer operators; use the [$]-suffixed variants for plain integer
    arithmetic inside builder code. *)

(** {1 Plain integer arithmetic} *)

val ( +$ ) : int -> int -> int
val ( -$ ) : int -> int -> int
val ( *$ ) : int -> int -> int
val ( /$ ) : int -> int -> int


(** {1 Expressions} *)

val i : int -> Ast.expr
val v : string -> Ast.expr

(** ["a".%[e]] is the array read [a[e]]. *)
val ( .%[] ) : string -> Ast.expr -> Ast.expr
val len : string -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr

(** Both operands are evaluated — MIL has no short-circuiting. *)

val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val ( land ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lor ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lxor ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lsl ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lsr ) : Ast.expr -> Ast.expr -> Ast.expr
val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val call : string -> Ast.expr list -> Ast.expr


(** {1 Statements} — [line] fields are patched by {!number}. *)

val stmt : Ast.node -> Ast.stmt
val decl : string -> Ast.expr -> Ast.stmt
val decl_arr : string -> Ast.expr -> Ast.stmt
val set : string -> Ast.expr -> Ast.stmt

(** [seti a idx e] is the array write [a[idx] = e]. *)
val seti : string -> Ast.expr -> Ast.expr -> Ast.stmt
val atomic_set : string -> Ast.expr -> Ast.stmt
val atomic_seti : string -> Ast.expr -> Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.block -> Ast.block -> Ast.stmt

(** [when_ c body] is [if] without an [else] arm. *)
val when_ : Ast.expr -> Ast.block -> Ast.stmt
val while_ : Ast.expr -> Ast.block -> Ast.stmt
val for_ : string -> Ast.expr -> Ast.expr -> Ast.block -> Ast.stmt
val for_step : string -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.block -> Ast.stmt
val call_ : string -> Ast.expr list -> Ast.stmt
val return : Ast.expr -> Ast.stmt
val return_unit : Ast.stmt

val break_ : Ast.stmt
val par : Ast.block list -> Ast.stmt
val lock : string -> Ast.stmt
val unlock : string -> Ast.stmt
val barrier : string -> Ast.stmt
val free : string -> Ast.stmt

(** [incr x] is [x = x + 1]. *)
val incr : string -> Ast.stmt


(** {1 Programs} *)

val func :
  ?params:string list -> ?arrays:string list -> string -> Ast.block -> Ast.func

val gscalar : string -> int -> Ast.global
val garray : string -> int -> Ast.global

val program :
  ?globals:Ast.global list -> entry:string -> string -> Ast.func list ->
  Ast.program

val number : Ast.program -> Ast.program

(** Pre-order line numbering: functions get the line of their header, each
    statement a fresh line, so a region's statements occupy a contiguous
    interval — the property the BGN/END region reporting relies on. *)
