(** Source rendering of MIL programs with line numbers, so users can
    correlate profiler output (fileID:lineID) with code. *)

val expr_to_string : Ast.expr -> string
val lhs_to_string : Ast.lhs -> string
val render_program : Ast.program -> string
