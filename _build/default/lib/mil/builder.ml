(* A small DSL for constructing MIL programs in OCaml source, plus the
   line-numbering pass that assigns every statement a unique source line in
   pre-order.  Workloads build their kernels with this module. *)

open Ast

(* Plain integer arithmetic, for size computations in builder code (the
   expression operators below shadow the Stdlib ones). *)
let ( +$ ) = Stdlib.( + )
let ( -$ ) = Stdlib.( - )
let ( *$ ) = Stdlib.( * )
let ( /$ ) = Stdlib.( / )

(* Expressions *)
let i n = Int n
let v x = Var x
let ( .%[] ) a e = Idx (a, e)
let len a = Len a
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( % ) a b = Bin (Mod, a, b)
let ( == ) a b = Bin (Eq, a, b)
let ( != ) a b = Bin (Ne, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( && ) a b = Bin (And, a, b)
let ( || ) a b = Bin (Or, a, b)
let ( land ) a b = Bin (Band, a, b)
let ( lor ) a b = Bin (Bor, a, b)
let ( lxor ) a b = Bin (Bxor, a, b)
let ( lsl ) a b = Bin (Shl, a, b)
let ( lsr ) a b = Bin (Shr, a, b)
let min_ a b = Bin (Min, a, b)
let max_ a b = Bin (Max, a, b)
let neg a = Neg a
let not_ a = Not a
let call f args = Call (f, args)

(* Statements; [line] is patched by {!number}. *)
let stmt node = { line = 0; node }
let decl x e = stmt (Decl (x, e))
let decl_arr x n = stmt (Decl_arr (x, n))
let set x e = stmt (Assign (Lvar x, e))
let seti a idx e = stmt (Assign (Lidx (a, idx), e))
let atomic_set x e = stmt (Atomic_assign (Lvar x, e))
let atomic_seti a idx e = stmt (Atomic_assign (Lidx (a, idx), e))
let if_ c t e = stmt (If (c, t, e))
let when_ c t = stmt (If (c, t, []))
let while_ c body = stmt (While (c, body))

let for_ index lo hi body =
  stmt (For { index; lo; hi; step = Int 1; body })

let for_step index lo hi step body = stmt (For { index; lo; hi; step; body })
let call_ f args = stmt (Call_stmt (f, args))
let return e = stmt (Return (Some e))
let return_unit = stmt (Return None)
let break_ = stmt Break
let par blocks = stmt (Par blocks)
let lock m = stmt (Lock m)
let unlock m = stmt (Unlock m)
let barrier m = stmt (Barrier m)
let free a = stmt (Free a)

(* Common idiom: increment a scalar. *)
let incr x = set x (v x + i 1)

let func ?(params = []) ?(arrays = []) fname body =
  { fname; params; arr_params = arrays; body; fline = 0 }

let gscalar name value = Gscalar (name, value)
let garray name size = Garray (name, size)

let program ?(globals = []) ~entry pname funcs =
  { pname; globals; funcs; entry }

(* Pre-order line numbering.  Functions get the line of their header; each
   statement a fresh line; nested blocks are numbered inside their parent so
   that a region's statements occupy a contiguous line interval — the property
   DiscoPoP's [BGN]/[END] region reporting relies on. *)
let number (p : program) : program =
  let next = ref 1 in
  let fresh () =
    let n = !next in
    next := Stdlib.( + ) n 1;
    n
  in
  let rec number_block block = List.iter number_stmt block
  and number_stmt s =
    s.line <- fresh ();
    match s.node with
    | Decl _ | Decl_arr _ | Assign _ | Call_stmt _ | Return _ | Break
    | Lock _ | Unlock _ | Barrier _ | Free _ | Atomic_assign _ ->
        ()
    | If (_, t, e) ->
        number_block t;
        number_block e
    | While (_, body) -> number_block body
    | For { body; _ } -> number_block body
    | Par blocks -> List.iter number_block blocks
  in
  List.iter
    (fun f ->
      f.fline <- fresh ();
      number_block f.body)
    p.funcs;
  p
