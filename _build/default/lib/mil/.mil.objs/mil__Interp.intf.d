lib/mil/interp.mli: Ast Trace
