lib/mil/pretty.mli: Ast
