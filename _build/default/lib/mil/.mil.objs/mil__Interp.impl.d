lib/mil/interp.ml: Array Ast Effect Hashtbl List Printf Queue Stack Trace
