lib/mil/pretty.ml: Ast Buffer List Printf String
