lib/mil/ast.ml: List Printf
