lib/mil/ast.mli:
