lib/mil/builder.ml: Ast List Stdlib
