lib/mil/static.ml: Array Ast Hashtbl List Set String
