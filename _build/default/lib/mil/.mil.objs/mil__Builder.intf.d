lib/mil/builder.mli: Ast
