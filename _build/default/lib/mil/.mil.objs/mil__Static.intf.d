lib/mil/static.mli: Ast Hashtbl Set
