(** Abstract syntax of MIL, the mini imperative language that stands in for
    C/C++-compiled-to-LLVM-IR in this reproduction.

    MIL mirrors the subset of program structure that matters to DiscoPoP:
    scalar and array memory accesses with source locations, nested control
    regions (functions, loops, branches), function calls, and explicitly
    locked thread parallelism. Values are machine integers; the dependence
    structure of a program does not depend on the value domain. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Band | Bor | Bxor | Shl | Shr
  | Min | Max

type expr =
  | Int of int
  | Var of string                 (** scalar read *)
  | Idx of string * expr          (** array element read: [a[e]] *)
  | Len of string                 (** array length; no memory access *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list    (** call for value *)

type lhs =
  | Lvar of string                (** scalar write *)
  | Lidx of string * expr         (** array element write *)

(** Statements carry a [line] filled in by {!Builder.number}: a global,
    pre-order source-line number, playing the role of fileID:lineID. *)
type stmt = { mutable line : int; node : node }

and node =
  | Decl of string * expr              (** scalar local declaration *)
  | Decl_arr of string * expr          (** local array of given size, zeroed *)
  | Assign of lhs * expr
  | If of expr * block * block
  | While of expr * block
  | For of for_loop
  | Call_stmt of string * expr list    (** call for effect *)
  | Return of expr option
  | Break
  | Par of block list                  (** fork blocks as threads, join all *)
  | Lock of string                     (** named mutex *)
  | Unlock of string
  | Barrier of string                  (** all threads of the par group wait *)
  | Free of string                     (** explicit array deallocation *)
  | Atomic_assign of lhs * expr        (** lock-free atomic update *)

and for_loop = { index : string; lo : expr; hi : expr; step : expr; body : block }
(** [for index = lo; index < hi; index += step] *)

and block = stmt list

type func = {
  fname : string;
  params : string list;       (** scalar parameters, passed by value *)
  arr_params : string list;   (** array parameters, passed by reference *)
  body : block;
  mutable fline : int;        (** line of the function header *)
}

type global =
  | Gscalar of string * int   (** name, initial value *)
  | Garray of string * int    (** name, size (zero-initialised) *)

type program = {
  pname : string;
  globals : global list;
  funcs : func list;
  entry : string;             (** name of the entry function *)
}

val find_func : program -> string -> func
(** @raise Invalid_argument on unknown function names. *)

val is_reduction_op : binop -> bool
(** Operators over which loop-carried dependences are resolvable by parallel
    reduction (§4.1.1): commutative-associative arithmetic. *)

val string_of_binop : binop -> string
