(* The "perfect signature" (§2.5.1): an exact shadow memory in which every
   address has its own entry, so hash collisions — and hence false positives
   and false negatives — cannot occur. Used as the ground-truth baseline for
   measuring the signature's FPR/FNR, and offered to users who need 100%
   accurate dependences (§2.3.7) at a time/memory premium. *)

type entry = { mutable r : Cell.t; mutable w : Cell.t }

type t = { tbl : (int, entry) Hashtbl.t }

let create ~slots:_ = { tbl = Hashtbl.create 4096 }

let find t addr = Hashtbl.find_opt t.tbl addr

let entry t addr =
  match Hashtbl.find_opt t.tbl addr with
  | Some e -> e
  | None ->
      let e = { r = Cell.empty; w = Cell.empty } in
      Hashtbl.replace t.tbl addr e;
      e

let last_read t ~addr =
  match find t addr with Some e -> e.r | None -> Cell.empty

let last_write t ~addr =
  match find t addr with Some e -> e.w | None -> Cell.empty

let set_read t ~addr cell = (entry t addr).r <- cell
let set_write t ~addr cell = (entry t addr).w <- cell
let remove t ~addr = Hashtbl.remove t.tbl addr

let slots_used t =
  Hashtbl.fold
    (fun _ e n ->
      n
      + (if Cell.is_empty e.r then 0 else 1)
      + if Cell.is_empty e.w then 0 else 1)
    t.tbl 0

(* Hashtbl entry: key + record of two pointers + bucket overhead (~6 words) *)
let word_footprint t = 6 * Hashtbl.length t.tbl
