(* The per-slot access record kept by shadow memories.

   The paper stores the source line of the last read and the last write per
   slot (3-byte slots, §2.3.2). We additionally keep the attribution data the
   profiler reports (variable, thread, timestamp, loop stack, static memory
   operation id). The record is fixed-size per slot, so the memory behaviour
   of the signature is unchanged: accuracy loss still comes only from hash
   collisions. *)

type t = {
  line : int;                       (* source line of the access *)
  var : string;
  thread : int;
  time : int;                       (* global timestamp *)
  op : int;                         (* static memory-operation id *)
  lstack : Trace.Event.frame list;  (* loop stack at the access *)
  locked : bool;
}

let of_access (a : Trace.Event.access) =
  { line = a.line; var = a.var; thread = a.thread; time = a.time; op = a.op;
    lstack = a.lstack; locked = a.locked }

(* Sentinel for empty slots; [time = 0] never occurs in real accesses. *)
let empty =
  { line = 0; var = ""; thread = -1; time = 0; op = -1; lstack = []; locked = false }

let is_empty c = c.time = 0
