lib/sigmem/perfect.mli: Cell
