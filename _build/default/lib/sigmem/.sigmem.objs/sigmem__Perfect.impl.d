lib/sigmem/perfect.ml: Cell Hashtbl
