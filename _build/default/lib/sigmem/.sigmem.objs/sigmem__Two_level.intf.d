lib/sigmem/two_level.mli: Cell
