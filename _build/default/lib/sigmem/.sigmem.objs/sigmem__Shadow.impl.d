lib/sigmem/shadow.ml: Cell
