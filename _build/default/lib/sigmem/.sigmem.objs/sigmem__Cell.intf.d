lib/sigmem/cell.mli: Trace
