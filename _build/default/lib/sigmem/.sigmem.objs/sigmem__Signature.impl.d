lib/sigmem/signature.ml: Array Cell
