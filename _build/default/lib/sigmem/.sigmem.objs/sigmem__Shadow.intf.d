lib/sigmem/shadow.mli: Cell
