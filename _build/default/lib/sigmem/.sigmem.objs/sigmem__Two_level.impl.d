lib/sigmem/two_level.ml: Array Cell
