lib/sigmem/signature.mli: Cell
