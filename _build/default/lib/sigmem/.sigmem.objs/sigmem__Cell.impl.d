lib/sigmem/cell.ml: Trace
