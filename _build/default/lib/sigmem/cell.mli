(** The per-slot access record kept by shadow memories.

    The paper stores the source line of the last read and the last write per
    slot (§2.3.2); we additionally keep the attribution data the profiler
    reports. The record is fixed-size per slot, so the memory behaviour of
    the signature is unchanged: accuracy loss still comes only from hash
    collisions. *)

type t = {
  line : int;                       (** source line of the access *)
  var : string;                     (** variable name at the access *)
  thread : int;
  time : int;                       (** global timestamp; 0 = empty slot *)
  op : int;                         (** static memory-operation id *)
  lstack : Trace.Event.frame list;  (** loop stack at the access *)
  locked : bool;
}

val of_access : Trace.Event.access -> t

val empty : t
(** Sentinel for empty slots; [time = 0] never occurs in real accesses. *)

val is_empty : t -> bool
