lib/profiler/depfile.ml: Buffer Dep Fun List Printf String
