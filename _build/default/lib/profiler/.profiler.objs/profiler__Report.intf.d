lib/profiler/report.mli: Dep Hashtbl Pet
