lib/profiler/report.ml: Buffer Dep Hashtbl List Pet Printf Stdlib String
