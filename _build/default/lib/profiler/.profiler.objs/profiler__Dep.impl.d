lib/profiler/dep.ml: Hashtbl List Printf Stdlib
