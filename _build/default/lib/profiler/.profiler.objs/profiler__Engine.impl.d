lib/profiler/engine.ml: Array Dep List Sigmem Trace
