lib/profiler/pet.mli: Dep Trace
