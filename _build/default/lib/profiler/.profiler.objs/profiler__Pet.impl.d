lib/profiler/pet.ml: Array Buffer Dep Hashtbl List Printf String Trace
