lib/profiler/spsc_queue.mli:
