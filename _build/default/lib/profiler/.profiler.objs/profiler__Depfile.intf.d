lib/profiler/depfile.mli: Dep
