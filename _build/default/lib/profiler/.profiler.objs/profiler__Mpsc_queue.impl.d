lib/profiler/mpsc_queue.ml: Array Atomic Domain
