lib/profiler/mpsc_queue.mli:
