lib/profiler/engine.mli: Dep Sigmem Trace
