lib/profiler/parallel.ml: Array Dep Domain Engine Hashtbl List Mil Mutex Pet Queue Spsc_queue Trace
