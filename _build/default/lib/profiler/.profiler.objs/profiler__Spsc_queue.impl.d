lib/profiler/spsc_queue.ml: Array Atomic Domain
