lib/profiler/parallel.mli: Dep Engine Mil Pet Trace
