lib/profiler/serial.ml: Dep Engine Mil Pet Report
