lib/profiler/serial.mli: Dep Engine Mil Pet
