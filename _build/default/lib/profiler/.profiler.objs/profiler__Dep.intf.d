lib/profiler/dep.mli:
