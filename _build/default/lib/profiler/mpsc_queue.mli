(** Lock-free multiple-producer-single-consumer queue (§2.3.4, Fig. 2.5):
    a linked list of fixed-size arrays. Producers claim slots with an atomic
    fetch-and-add; when a node fills up, one producer appends a fresh node
    with a CAS. The single consumer walks slots in order and drops drained
    nodes. *)

val node_capacity : int

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Safe from any number of domains concurrently. *)

val try_pop : 'a t -> 'a option
(** Single consumer only. [None] when no item is visible; a slot claimed but
    not yet filled by a running producer is awaited briefly. *)

val is_empty : 'a t -> bool
