(** The parallel DiscoPoP profiler (§2.3.3, Fig. 2.2).

    The main thread executes the target program and produces per-worker
    chunks of accesses; worker domains consume chunks through lock-free SPSC
    queues, run the dependence engine over their address shard (addresses
    distributed by [addr mod W], Eq. 2.1, with hot addresses periodically
    redistributed through a rules map), and keep thread-local dependence maps
    merged at the end. A mutex-protected queue variant exists solely as the
    lock-based baseline of Fig. 2.9. *)

type entry =
  | Acc of Trace.Event.access
  | Remove of int          (** lifetime analysis / slot migration *)

type item = Ichunk of entry Trace.Chunk.t | Istop

type queue_kind = Lockfree | Lock_based

type result = {
  deps : Dep.Set_.t;
  pet : Pet.t;
  races : (string * int * int) list;
  accesses : int;
  footprint_words : int;
  merging_factor : float;
  redistributions : int;   (** hot-address migrations performed *)
  per_worker : int array;  (** accesses processed by each worker *)
  skip_stats : Engine.skip_stats;
  interp : Mil.Interp.run_result;
}

val rebalance_interval : int
(** Accesses between hot-address re-evaluations (the paper checks every
    50,000 chunks). *)

val top_n_hot : int

val profile :
  ?workers:int ->
  ?shadow_slots:int ->
  ?perfect:bool ->
  ?skip:bool ->
  ?queue:queue_kind ->
  ?chunk_capacity:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?scramble_unlocked:bool ->
  Mil.Ast.program ->
  result
(** Profile with [workers] consumer domains. [perfect] switches the workers
    to the exact shadow memory; otherwise each worker gets
    [shadow_slots / workers] signature slots. *)
