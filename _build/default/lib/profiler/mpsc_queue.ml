(* Lock-free multiple-producer-single-consumer queue (§2.3.4, Fig. 2.5):
   a linked list of fixed-size arrays. Producers claim a slot index with an
   atomic fetch-and-add and then fill it; when a node's array is exhausted, a
   producer appends a fresh node with a CAS on [next]. The single consumer
   walks slots in order, spinning on a claimed-but-unfilled slot, and drops
   fully-drained nodes, so nodes are deallocated as the paper describes. *)

let node_capacity = 256

type 'a node = {
  cells : 'a option Atomic.t array;
  claimed : int Atomic.t;           (* fetch-and-add slot allocator *)
  next : 'a node option Atomic.t;
}

let make_node () =
  { cells = Array.init node_capacity (fun _ -> Atomic.make None);
    claimed = Atomic.make 0;
    next = Atomic.make None }

type 'a t = {
  mutable head : 'a node;           (* consumer-owned *)
  mutable head_pos : int;           (* consumer-owned read cursor *)
  tail : 'a node Atomic.t;          (* shared: node producers append to *)
}

let create () =
  let n = make_node () in
  { head = n; head_pos = 0; tail = Atomic.make n }

let rec push t x =
  let node = Atomic.get t.tail in
  let idx = Atomic.fetch_and_add node.claimed 1 in
  if idx < node_capacity then Atomic.set node.cells.(idx) (Some x)
  else begin
    (* Node full: append a new node (one winner), then retry. *)
    (match Atomic.get node.next with
    | Some next -> ignore (Atomic.compare_and_set t.tail node next)
    | None ->
        let fresh = make_node () in
        if Atomic.compare_and_set node.next None (Some fresh) then
          ignore (Atomic.compare_and_set t.tail node fresh)
        else ignore (Atomic.compare_and_set t.tail node
                       (match Atomic.get node.next with
                        | Some n -> n
                        | None -> fresh)));
    push t x
  end

(* Single consumer: returns [None] only when no item is *visible*; an item
   whose slot was claimed but not yet filled is awaited briefly (it will be
   filled by a running producer). *)
let try_pop t =
  let rec advance () =
    if t.head_pos >= node_capacity then
      match Atomic.get t.head.next with
      | Some next ->
          t.head <- next;
          t.head_pos <- 0;
          advance ()
      | None -> None
    else
      let claimed = min (Atomic.get t.head.claimed) node_capacity in
      if t.head_pos >= claimed then None
      else begin
        let cell = t.head.cells.(t.head_pos) in
        let rec spin n =
          match Atomic.get cell with
          | Some x ->
              Atomic.set cell None;
              t.head_pos <- t.head_pos + 1;
              Some x
          | None ->
              if n > 0 then begin
                Domain.cpu_relax ();
                spin (n - 1)
              end
              else None
        in
        spin 1024
      end
  in
  advance ()

let is_empty t =
  t.head_pos >= min (Atomic.get t.head.claimed) node_capacity
  && Atomic.get t.head.next = None
