lib/trace/chunk.ml: Array
