lib/trace/event.mli:
