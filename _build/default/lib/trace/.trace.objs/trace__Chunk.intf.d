lib/trace/chunk.mli:
