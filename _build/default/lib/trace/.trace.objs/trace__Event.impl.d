lib/trace/event.ml: List
