(** The framework front door: phases 1-3 of Fig. 1.3 — profile, construct
    CUs, discover loop and task parallelism, rank — over a MIL program. *)

module Dep = Profiler.Dep
module Static = Mil.Static

type kind =
  | Sdoall of Loops.analysis
  | Sdoacross of Loops.analysis
  | Sspmd of Tasks.spmd
  | Smpmd of Tasks.mpmd

type t = { kind : kind; region : int; score : Ranking.score }

type report = {
  program : Mil.Ast.program;
  static : Static.t;
  cures : Cunit.Top_down.result;
  profile : Profiler.Serial.result;
  loops : Loops.analysis list;
  suggestions : t list;  (** sorted by rank, best first *)
}

val kind_to_string : kind -> string

val analyze :
  ?shadow:Profiler.Engine.shadow_kind ->
  ?skip:bool ->
  ?seed:int ->
  ?threads:int ->
  Mil.Ast.program ->
  report
(** [threads] (default 4) bounds the kind-aware local-speedup metric. *)

val render : report -> string
