(** Loop parallelism discovery (§4.1): DOALL, DOALL-with-reduction, DOACROSS
    and sequential classification from profiled loop-carried dependences,
    discounting loop indices (§3.2.5) and recognised reductions, and
    reporting privatisable name-dependence targets. *)

module Dep = Profiler.Dep
module Static = Mil.Static
module SS = Static.SS

type loop_class =
  | Doall                  (** fully independent iterations *)
  | Doall_reduction        (** independent given a reduction clause *)
  | Doacross               (** carried deps, partial overlap possible *)
  | Sequential

val class_to_string : loop_class -> string

type analysis = {
  region : Static.region;
  loop_line : int;
  cls : loop_class;
  blocking : Dep.t list;        (** carried RAW deps that prevent DOALL *)
  reduction_vars : (string * Mil.Ast.binop) list;
      (** reduction-resolvable variables used by carried deps *)
  private_vars : string list;   (** carried WAR/WAW name-dependence targets *)
  body_cus : Cunit.Cu.t list;
  free_cus : int;               (** body CUs untouched by blocking deps *)
  iterations : int;             (** total iterations observed (PET) *)
  instructions : int;           (** dynamic memory instructions in the loop *)
}

val loop_level_reductions :
  Static.t -> int -> (string * Mil.Ast.binop * int) list
(** Reduction statements anywhere in the loop's subtree:
    (variable, operator, statement line). *)

val pet_stats : Profiler.Pet.t -> int -> int * int
(** [(iterations, instructions)] of the loop with the given header line. *)

val analyze_loop :
  ?global_reductions:(string, Mil.Ast.binop * int list) Hashtbl.t ->
  Static.t -> Cunit.Top_down.result -> Dep.Set_.t -> Profiler.Pet.t ->
  Static.region -> analysis

val analyze_all :
  Static.t -> Cunit.Top_down.result -> Dep.Set_.t -> Profiler.Pet.t ->
  analysis list
(** Every loop that was actually executed. *)

val to_string : analysis -> string
