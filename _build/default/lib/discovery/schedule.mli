(** Deterministic multicore schedule simulation: greedy list scheduling of a
    weighted task DAG onto p identical processors (Brent's bound). Used to
    *model* the speedup shapes of Table 4.2 / Fig. 4.11 when the host lacks
    the paper's core count. *)

type task = {
  t_id : int;
  t_cost : int;              (** dynamic memory instructions, a cost proxy *)
  t_deps : int list;         (** must finish before this task starts *)
}

val makespan : processors:int -> task list -> int
val total_work : task list -> int

val speedup : processors:int -> ?serial:int -> task list -> float
(** Modeled speedup with [serial] unparallelisable work (Amdahl). *)

val independent : int list -> task list
(** Tasks with the given costs and no dependences. *)

val doall_speedup :
  ?chunks_per_proc:int ->
  ?overhead_frac:float ->
  processors:int ->
  iterations:int ->
  loop_instructions:int ->
  total_instructions:int ->
  unit ->
  float
(** A DOALL suggestion modeled as OpenMP-style static chunks, each paying a
    small spawn/reduction overhead; work outside the loop is serial. *)
