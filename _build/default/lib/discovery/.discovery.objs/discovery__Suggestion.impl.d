lib/discovery/suggestion.ml: Array Buffer Cunit List Loops Mil Printf Profiler Ranking Tasks
