lib/discovery/loops.ml: Array Cunit Hashtbl List Mil Printf Profiler String
