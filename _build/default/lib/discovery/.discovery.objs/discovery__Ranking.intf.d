lib/discovery/ranking.mli: Cunit Mil Profiler
