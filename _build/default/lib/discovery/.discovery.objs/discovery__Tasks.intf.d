lib/discovery/tasks.mli: Cunit Loops Mil Profiler
