lib/discovery/schedule.ml: Array Hashtbl List
