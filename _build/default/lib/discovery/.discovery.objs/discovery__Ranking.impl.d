lib/discovery/ranking.ml: Array Cunit Hashtbl List Mil Printf Profiler
