lib/discovery/suggestion.mli: Cunit Loops Mil Profiler Ranking Tasks
