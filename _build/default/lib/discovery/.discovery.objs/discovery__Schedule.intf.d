lib/discovery/schedule.mli:
