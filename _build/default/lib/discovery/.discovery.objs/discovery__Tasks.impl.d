lib/discovery/tasks.ml: Array Cunit Hashtbl List Loops Mil Printf Profiler String
