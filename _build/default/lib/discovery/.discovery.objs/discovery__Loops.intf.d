lib/discovery/loops.mli: Cunit Hashtbl Mil Profiler
