(* Deterministic multicore schedule simulation.

   The paper's speedup results (Table 4.2, Fig. 4.11) were measured on real
   multicore hardware; this reproduction may run on a single core, so we also
   *model* the parallel execution of a suggested decomposition: greedy list
   scheduling of a weighted task DAG onto p identical processors. For
   independent tasks this converges to Brent's bound T_p ~ T1/p + Tinf; for a
   task graph the critical path caps the speedup exactly the way
   FaceDetection's curve saturates in Fig. 4.11. *)

type task = {
  t_id : int;
  t_cost : int;              (* dynamic memory instructions, the cost proxy *)
  t_deps : int list;         (* must finish before this task starts *)
}

(* Greedy list scheduling: at each step assign the first ready task to the
   earliest-free processor. Returns the makespan. *)
let makespan ~processors (tasks : task list) : int =
  let n = List.length tasks in
  if n = 0 then 0
  else begin
    let arr = Array.of_list tasks in
    let finish = Array.make n (-1) in
    let by_id = Hashtbl.create n in
    Array.iteri (fun k t -> Hashtbl.replace by_id t.t_id k) arr;
    let proc_free = Array.make (max 1 processors) 0 in
    let done_ = Array.make n false in
    let remaining = ref n in
    while !remaining > 0 do
      (* earliest-ready task among unscheduled ones *)
      let best = ref (-1) in
      let best_ready = ref max_int in
      Array.iteri
        (fun k t ->
          if not done_.(k) then begin
            let ready =
              List.fold_left
                (fun acc d ->
                  match Hashtbl.find_opt by_id d with
                  | Some dk ->
                      if finish.(dk) < 0 then max_int else max acc finish.(dk)
                  | None -> acc)
                0 t.t_deps
            in
            if ready < !best_ready then begin
              best_ready := ready;
              best := k
            end
          end)
        arr;
      let k = !best in
      if k < 0 || !best_ready = max_int then (
        (* dependency cycle: run the rest sequentially as a fallback *)
        Array.iteri
          (fun k t ->
            if not done_.(k) then begin
              let p = ref 0 in
              Array.iteri (fun q f -> if f < proc_free.(!p) then p := q) proc_free;
              proc_free.(!p) <- proc_free.(!p) + t.t_cost;
              finish.(k) <- proc_free.(!p);
              done_.(k) <- true
            end)
          arr;
        remaining := 0)
      else begin
        (* earliest-free processor *)
        let p = ref 0 in
        Array.iteri (fun q f -> if f < proc_free.(!p) then p := q) proc_free;
        let start = max proc_free.(!p) !best_ready in
        proc_free.(!p) <- start + arr.(k).t_cost;
        finish.(k) <- proc_free.(!p);
        done_.(k) <- true;
        decr remaining
      end
    done;
    Array.fold_left max 0 proc_free
  end

let total_work tasks = List.fold_left (fun acc t -> acc + t.t_cost) 0 tasks

(* Modeled speedup of running [tasks] on [processors], with [serial] work
   that cannot be parallelised (Amdahl). *)
let speedup ~processors ?(serial = 0) tasks =
  let t1 = total_work tasks + serial in
  let tp = makespan ~processors tasks + serial in
  if tp = 0 then 1.0 else float_of_int t1 /. float_of_int tp

(* Convenience: n independent tasks of (possibly uneven) costs. *)
let independent costs =
  List.mapi (fun k c -> { t_id = k; t_cost = c; t_deps = [] }) costs

(* Model a DOALL loop suggestion: iterations are distributed over
   [chunks_per_proc * processors] chunks (static OpenMP-style scheduling),
   each chunk paying a small spawn/reduction overhead; everything outside
   the loop is serial work. The overhead is what keeps modeled speedups in
   the paper's 2.5-3.9x band instead of the ideal p. *)
let doall_speedup ?(chunks_per_proc = 4) ?(overhead_frac = 0.04) ~processors
    ~iterations ~loop_instructions ~total_instructions () =
  let chunks = max 1 (min iterations (chunks_per_proc * processors)) in
  let per_chunk = max 1 (loop_instructions / chunks) in
  let overhead = int_of_float (float_of_int per_chunk *. overhead_frac) + 16 in
  let tasks = independent (List.init chunks (fun _ -> per_chunk + overhead)) in
  let serial = max 0 (total_instructions - loop_instructions) in
  let t1 = total_instructions in
  let tp = makespan ~processors tasks + serial in
  if tp = 0 then 1.0 else float_of_int t1 /. float_of_int tp
