(** Task parallelism discovery (§4.2): SPMD-style tasks (taskloops and
    recursive fork-join) and MPMD-style task graphs found by simplifying the
    CU graph (SCC and chain contraction, Fig. 4.5). *)

module Dep = Profiler.Dep
module Static = Mil.Static

type spmd = {
  s_kind : [ `Loop_tasks of int | `Recursive_forkjoin of string ];
  s_region : int;
  s_task_lines : int list;     (** lines of the task bodies / call sites *)
  s_evidence : string;
}

type mpmd_shape = Taskgraph | Pipeline

type mpmd = {
  m_region : int;
  m_shape : mpmd_shape;
  m_stages : int list list;    (** member item lines per stage, dataflow order *)
  m_width : int;               (** substantial tasks in the widest stage *)
  m_evidence : string;
}

val call_sites_to : string -> Mil.Ast.block -> int list
(** Lines of statements calling the named function. *)

val recursive_forkjoin :
  Static.t -> Cunit.Top_down.result -> Dep.Set_.t -> spmd list
(** Functions with >= 2 recursive call sites whose tasks are mutually
    independent: the later spawn must not consume a value produced at or
    after the earlier one, and RAW flow through reduction-only variables
    does not serialise (Fig. 4.3 / 4.9). *)

val loop_tasks : Loops.analysis list -> spmd list
(** DOALL(-reduction) loops whose bodies do heavy work through calls become
    one-task-per-iteration suggestions (BOTS style). *)

val mpmd_of_region :
  Cunit.Top_down.result -> Dep.Set_.t -> int -> mpmd option
(** Level the region's item dataflow graph (Fig. 4.5): [Some] when at least
    two stages with at least two substantial tasks remain. An antichain of
    width >= 2 is a task graph; a substantial chain is a pipeline. *)

val spmd_to_string : spmd -> string
val mpmd_to_string : mpmd -> string
