(* Scoring of discovery results against workload ground truth — the machinery
   behind Table 4.1 (DOALL detection) and Table 4.4 (DOACROSS detection). *)

module L = Discovery.Loops

type loop_result = {
  workload : string;
  loop_line : int;
  expected : Registry.expectation;
  got : L.loop_class;
  exact : bool;        (* class matches exactly *)
  binary : bool;       (* parallelisable-vs-not matches (Table 4.1 scoring) *)
}

let parallelisable_expected = function
  | Registry.Edoall | Registry.Edoall_reduction -> true
  | Registry.Edoacross | Registry.Eseq | Registry.Eany -> false

let parallelisable_got = function
  | L.Doall | L.Doall_reduction -> true
  | L.Doacross | L.Sequential -> false

let exact_match e g =
  match (e, g) with
  | Registry.Edoall, L.Doall -> true
  | Registry.Edoall_reduction, L.Doall_reduction -> true
  | Registry.Edoacross, L.Doacross -> true
  | Registry.Eseq, (L.Sequential | L.Doacross) ->
      (* Sequential-vs-DOACROSS is a feasibility judgement, not correctness:
         either way the loop is correctly withheld from DOALL. *)
      true
  | _ -> false

let score_workload ?size (w : Registry.t) : loop_result list =
  let prog = Registry.program ?size w in
  let report = Discovery.Suggestion.analyze prog in
  let loops =
    List.sort
      (fun (a : L.analysis) b -> compare a.L.loop_line b.L.loop_line)
      report.Discovery.Suggestion.loops
  in
  List.filteri (fun k _ -> k < List.length w.Registry.expected_loops) loops
  |> List.mapi (fun k (a : L.analysis) ->
         let expected = List.nth w.Registry.expected_loops k in
         { workload = w.Registry.name;
           loop_line = a.L.loop_line;
           expected;
           got = a.L.cls;
           exact = exact_match expected a.L.cls;
           binary = parallelisable_expected expected = parallelisable_got a.L.cls })

type summary = {
  total_scored : int;
  exact_correct : int;
  binary_correct : int;
  parallel_truth : int;      (* ground-truth parallelisable loops *)
  parallel_found : int;      (* of those, correctly identified (recall) *)
  false_parallel : int;      (* non-parallelisable loops claimed parallel *)
}

let summarise (results : loop_result list) : summary =
  let scored = List.filter (fun r -> r.expected <> Registry.Eany) results in
  let parallel_truth = List.filter (fun r -> parallelisable_expected r.expected) scored in
  { total_scored = List.length scored;
    exact_correct = List.length (List.filter (fun r -> r.exact) scored);
    binary_correct = List.length (List.filter (fun r -> r.binary) scored);
    parallel_truth = List.length parallel_truth;
    parallel_found =
      List.length (List.filter (fun r -> parallelisable_got r.got) parallel_truth);
    false_parallel =
      List.length
        (List.filter
           (fun r ->
             (not (parallelisable_expected r.expected)) && parallelisable_got r.got)
           scored) }

let detection_rate s =
  if s.parallel_truth = 0 then 1.0
  else float_of_int s.parallel_found /. float_of_int s.parallel_truth
