(* Additional numerical kernels widening the loop corpus (and the ML training
   set of §5.1): classic shapes whose parallel/sequential status is textbook
   knowledge — n-body forces, CSR sparse mat-vec, 2D convolution,
   Floyd-Warshall, and an LCS dynamic program. *)

open Mil.Builder
module R = Registry

(* n-body: all-pairs forces (independent per body, inner reduction), then an
   independent position update. *)
let nbody size =
  let n = size in
  number
    (program ~entry:"main" "nbody"
       ~globals:[ garray "posx" n; garray "vel" n; garray "force" n ]
       [ func "main"
           [ for_ "b" (i 0) (i n)
               [ seti "posx" (v "b") (call "rand" [ i 1000 ]);
                 seti "vel" (v "b") (i 0) ];
             for_ "step" (i 0) (i 3)
               [ for_ "b" (i 0) (i n)
                   [ decl "f" (i 0);
                     for_ "o" (i 0) (i n)
                       [ decl "d" ("posx".%[v "o"] - "posx".%[v "b"]);
                         set "f" (v "f" + (v "d" / (call "abs" [ v "d" ] + i 1))) ];
                     seti "force" (v "b") (v "f") ];
                 for_ "b" (i 0) (i n)
                   [ seti "vel" (v "b") ("vel".%[v "b"] + "force".%[v "b"]);
                     seti "posx" (v "b") ("posx".%[v "b"] + "vel".%[v "b"]) ] ] ] ])

(* CSR sparse matrix-vector product: rows independent, inner dot reduces. *)
let spmv size =
  let rows = size and nnz_per_row = 5 in
  let nnz = rows *$ nnz_per_row in
  number
    (program ~entry:"main" "spmv"
       ~globals:
         [ garray "rowptr" (rows +$ 1); garray "colidx" nnz; garray "vals" nnz;
           garray "x" rows; garray "y" rows ]
       [ func "main"
           [ for_ "r" (i 0) (i (rows +$ 1))
               [ seti "rowptr" (v "r") (v "r" * i nnz_per_row) ];
             for_ "e" (i 0) (i nnz)
               [ seti "colidx" (v "e") (call "rand" [ i rows ]);
                 seti "vals" (v "e") ((v "e" % i 9) + i 1) ];
             for_ "r" (i 0) (i rows) [ seti "x" (v "r") ((v "r" % i 7) + i 1) ];
             for_ "r" (i 0) (i rows)
               [ decl "acc" (i 0);
                 for_ "e" ("rowptr".%[v "r"]) ("rowptr".%[v "r" + i 1])
                   [ set "acc" (v "acc" + ("vals".%[v "e"] * "x".%["colidx".%[v "e"]])) ];
                 seti "y" (v "r") (v "acc") ] ] ])

(* 2D convolution with a 3x3 kernel: output pixels independent. *)
let conv2d size =
  let n = size in
  number
    (program ~entry:"main" "conv2d"
       ~globals:[ garray "img" (n *$ n); garray "out" (n *$ n); garray "kern" 9 ]
       [ func "main"
           [ for_ "p" (i 0) (i (n *$ n)) [ seti "img" (v "p") (call "rand" [ i 256 ]) ];
             for_ "p" (i 0) (i 9) [ seti "kern" (v "p") ((v "p" % i 3) + i 1) ];
             for_ "y" (i 1) (i (n -$ 1))
               [ for_ "x" (i 1) (i (n -$ 1))
                   [ decl "acc" (i 0);
                     for_ "ky" (i 0) (i 3)
                       [ for_ "kx" (i 0) (i 3)
                           [ set "acc"
                               (v "acc"
                               + ("kern".%[(v "ky" * i 3) + v "kx"]
                                 * "img".%[((v "y" + v "ky" - i 1) * i n) + v "x"
                                           + v "kx" - i 1])) ] ];
                     seti "out" ((v "y" * i n) + v "x") (v "acc" / i 9) ] ] ] ])

(* Floyd-Warshall: the k loop is a true recurrence; with the row/column-k
   updates guarded out, the i and j sweeps of one k step are independent. *)
let floyd_warshall size =
  let n = size in
  number
    (program ~entry:"main" "floyd_warshall" ~globals:[ garray "dist" (n *$ n) ]
       [ func "main"
           [ for_ "p" (i 0) (i (n *$ n))
               [ seti "dist" (v "p") (call "rand" [ i 100 ] + i 1) ];
             for_ "k" (i 0) (i n)
               [ for_ "r" (i 0) (i n)
                   [ when_ (v "r" != v "k")
                       [ for_ "c" (i 0) (i n)
                           [ when_ (v "c" != v "k")
                               [ seti "dist" ((v "r" * i n) + v "c")
                                   (min_
                                      ("dist".%[(v "r" * i n) + v "c"])
                                      ("dist".%[(v "r" * i n) + v "k"]
                                      + "dist".%[(v "k" * i n) + v "c"])) ] ] ] ] ] ] ])

(* Longest common subsequence DP: each cell needs up/left/diagonal — both
   sweeps are recurrences. *)
let lcs size =
  let n = size in
  number
    (program ~entry:"main" "lcs"
       ~globals:[ garray "sa" n; garray "sb" n; garray "dp" ((n +$ 1) *$ (n +$ 1)) ]
       [ func "main"
           [ for_ "p" (i 0) (i n)
               [ seti "sa" (v "p") (call "rand" [ i 4 ]);
                 seti "sb" (v "p") (call "rand" [ i 4 ]) ];
             for_ "r" (i 1) (i (n +$ 1))
               [ for_ "c" (i 1) (i (n +$ 1))
                   [ if_ ("sa".%[v "r" - i 1] == "sb".%[v "c" - i 1])
                       [ seti "dp" ((v "r" * i (n +$ 1)) + v "c")
                           ("dp".%[((v "r" - i 1) * i (n +$ 1)) + v "c" - i 1] + i 1) ]
                       [ seti "dp" ((v "r" * i (n +$ 1)) + v "c")
                           (max_
                              ("dp".%[((v "r" - i 1) * i (n +$ 1)) + v "c"])
                              ("dp".%[(v "r" * i (n +$ 1)) + v "c" - i 1])) ] ] ];
             return ("dp".%[i ((n *$ (n +$ 1)) +$ n)]) ] ])

let all : R.t list =
  [ R.make_workload ~suite:"numerics" ~default_size:60 "nbody" nbody
      ~expected_loops:
        [ R.Edoall; R.Eany (* step *); R.Edoall; R.Edoall_reduction; R.Edoall ];
    R.make_workload ~suite:"numerics" ~default_size:200 "spmv" spmv
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall; R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"numerics" ~default_size:22 "conv2d" conv2d
      ~expected_loops:
        [ R.Edoall; R.Edoall; R.Edoall; R.Edoall; R.Edoall_reduction;
          R.Edoall_reduction ];
    R.make_workload ~suite:"numerics" ~default_size:14 "floyd_warshall"
      floyd_warshall
      ~expected_loops:[ R.Edoall; R.Eseq; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"numerics" ~default_size:40 "lcs" lcs
      ~expected_loops:[ R.Edoall; R.Eseq; R.Eseq ] ]
