(* MIL analogues of the (SNU) NAS Parallel Benchmarks used throughout the
   paper's evaluation. Each kernel reproduces the *dependence shape* of its
   namesake — which loops are independent, which carry reductions, which are
   recurrences — rather than its numerics (per DESIGN.md's substitution
   table): EP's embarrassingly-parallel accumulation, CG's sparse mat-vec and
   dot products, FT's independent evolve loops plus the Fig. 2.14 `dummy`
   WAW-generating initialisation, IS's bucket sort with its sequential prefix
   scan, MG's multigrid relaxations, BT/SP's independent line solves with
   sequential inner recurrences, and LU's wavefront sweep. *)

open Mil.Builder
module R = Registry

(* EP: independent random experiments, counts gathered by reduction. *)
let abs_bin t = Mil.Ast.Bin (Mil.Ast.Mod, Mil.Ast.Call ("abs", [ t ]), Mil.Ast.Int 10)

let ep size =
  number
    (program ~entry:"main" "EP" ~globals:[ garray "qbins" 10 ]
       [ func "main"
           [ decl "sx" (i 0);
             decl "sy" (i 0);
             for_ "k" (i 0) (i size)
               [ decl "x" (call "rand" [ i 2000 ] - i 1000);
                 decl "y" (call "rand" [ i 2000 ] - i 1000);
                 decl "t" ((v "x" * v "x") + (v "y" * v "y"));
                 when_ (v "t" < i 1000000)
                   [ decl "b" (abs_bin (v "t"));
                     seti "qbins" (v "b") ("qbins".%[v "b"] + i 1);
                     set "sx" (v "sx" + v "x");
                     set "sy" (v "sy" + v "y") ] ];
             return (v "sx" + v "sy") ] ])

(* CG: conjugate-gradient iteration — outer solver loop is a recurrence, the
   sparse mat-vec rows and vector updates are DOALL, dot products reduce. *)
let cg size =
  let n = size in
  let nnz = 4 in
  number
    (program ~entry:"main" "CG"
       ~globals:
         [ garray "colidx" (n *$ nnz); garray "aval" (n *$ nnz); garray "x" n;
           garray "q" n; garray "z" n; garray "r" n; garray "p" n ]
       [ func "matvec" ~arrays:[ "src"; "dst" ]
           [ for_ "row" (i 0) (i n)
               [ decl "acc" (i 0);
                 for_ "j" (i 0) (i nnz)
                   [ decl "idx" ((v "row" * i nnz) + v "j");
                     set "acc"
                       (v "acc" + ("aval".%[v "idx"] * "src".%["colidx".%[v "idx"]])) ];
                 seti "dst" (v "row") (v "acc" / i 16) ] ];
         func "dot" ~arrays:[ "u"; "w" ]
           [ decl "acc" (i 0);
             for_ "k" (i 0) (i n) [ set "acc" (v "acc" + ("u".%[v "k"] * "w".%[v "k"])) ];
             return (v "acc") ];
         func "main"
           [ for_ "k" (i 0) (i (n *$ nnz))
               [ seti "colidx" (v "k") (call "rand" [ i n ]);
                 seti "aval" (v "k") ((v "k" % i 7) + i 1) ];
             for_ "k" (i 0) (i n)
               [ seti "x" (v "k") (i 1); seti "p" (v "k") (i 1); seti "r" (v "k") (i 1) ];
             decl "rho" (i 1);
             for_ "it" (i 0) (i 8)
               [ call_ "matvec" [ v "p"; v "q" ];
                 decl "alpha" (call "dot" [ v "p"; v "q" ] + i 1);
                 for_ "k" (i 0) (i n)
                   [ seti "z" (v "k") ("z".%[v "k"] + ("p".%[v "k"] / (v "alpha" + i 1)));
                     seti "r" (v "k") ("r".%[v "k"] - ("q".%[v "k"] / (v "alpha" + i 1))) ];
                 set "rho" (call "dot" [ v "r"; v "r" ] + v "rho" / i 2);
                 for_ "k" (i 0) (i n)
                   [ seti "p" (v "k") ("r".%[v "k"] + (("p".%[v "k"] * v "rho") / i 1024)) ] ];
             return (v "rho") ] ])

(* FT: evolve's nested loops are fully independent (Fig. 4.1); the random
   initialisation carries a seed recurrence and writes a `dummy` variable
   that is never read — the source of FT's WAW anomaly (Fig. 2.14). *)
let ft size =
  let n = size in
  let starts = max 64 (n /$ 4) in
  number
    (program ~entry:"main" "FT"
       ~globals:[ garray "u_re" n; garray "u_im" n; garray "ran_starts" starts ]
       [ func "main"
           [ decl "start" (i 1);
             decl "dummy" (i 0);
             (* Fig 2.14: [dummy] holds randlc's return value but is never
                read — every iteration's write pairs with the previous one
                into a WAW dependence *)
             for_ "k" (i 0) (i starts)
               [ set "start" (((v "start" * i 1237) + i 101) % i 65536);
                 set "dummy" (v "start" / i 7);
                 seti "ran_starts" (v "k") (v "start") ];
             for_ "k" (i 0) (i n)
               [ seti "u_re" (v "k") ("ran_starts".%[v "k" % i starts] % i 256);
                 seti "u_im" (v "k") ((v "k" * i 31) % i 256) ];
             (* evolve: independent element-wise twiddle (Fig. 4.1); like the
                real FT, a checksum-style scratch value is stored each step
                and never read (the paper's dummy-variable pattern recurs
                at several places in FT) *)
             for_ "t" (i 0) (i 6)
               [ for_ "k" (i 0) (i n)
                   [ decl "re" ("u_re".%[v "k"]);
                     decl "im" ("u_im".%[v "k"]);
                     seti "u_re" (v "k") (((v "re" * i 3) - v "im") % i 65536);
                     seti "u_im" (v "k") (((v "im" * i 3) + v "re") % i 65536);
                     set "dummy" ((v "re" + v "im") / i 7) ] ];
             (* checksum: reduction *)
             decl "chk" (i 0);
             for_ "k" (i 0) (i n) [ set "chk" (v "chk" + "u_re".%[v "k"]) ];
             return (v "chk") ] ])

(* IS: bucket sort — counting reduces into buckets, the bucket prefix scan is
   a recurrence, the final scatter writes disjoint positions. *)
let is_bench size =
  let n = size in
  let buckets = 64 in
  number
    (program ~entry:"main" "IS"
       ~globals:
         [ garray "keys" n; garray "bcount" buckets; garray "bstart" buckets;
           garray "sorted" n ]
       [ func "main"
           [ for_ "k" (i 0) (i n) [ seti "keys" (v "k") (call "rand" [ i buckets ]) ];
             for_ "k" (i 0) (i n)
               [ decl "b" ("keys".%[v "k"]);
                 seti "bcount" (v "b") ("bcount".%[v "b"] + i 1) ];
             seti "bstart" (i 0) (i 0);
             for_ "b" (i 1) (i buckets)
               [ seti "bstart" (v "b")
                   ("bstart".%[v "b" - i 1] + "bcount".%[v "b" - i 1]) ];
             (* scatter: sequential here (shared cursor per bucket) *)
             for_ "k" (i 0) (i n)
               [ decl "b" ("keys".%[v "k"]);
                 decl "pos" ("bstart".%[v "b"]);
                 seti "sorted" (v "pos") ("keys".%[v "k"]);
                 seti "bstart" (v "b") (v "pos" + i 1) ];
             return ("sorted".%[i (n -$ 1)]) ] ])

(* MG: V-cycle-ish — smoothing sweeps are element-wise independent per level,
   level recursion is sequential. *)
let mg size =
  let n = size in
  number
    (program ~entry:"main" "MG"
       ~globals:[ garray "v" n; garray "u" n; garray "res" n ]
       [ func "smooth" ~arrays:[ "src"; "dst" ]
           [ for_ "k" (i 1) (i (n -$ 1))
               [ seti "dst" (v "k")
                   (("src".%[v "k" - i 1] + (i 2 * "src".%[v "k"])
                    + "src".%[v "k" + i 1])
                   / i 4) ] ];
         func "main"
           [ for_ "k" (i 0) (i n) [ seti "v" (v "k") (v "k" % i 19) ];
             for_ "cycle" (i 0) (i 4)
               [ call_ "smooth" [ v "v"; v "u" ];
                 call_ "smooth" [ v "u"; v "res" ];
                 for_ "k" (i 0) (i n)
                   [ seti "v" (v "k") ("v".%[v "k"] + ("res".%[v "k"] / i 2)) ] ];
             decl "norm" (i 0);
             for_ "k" (i 0) (i n) [ set "norm" (v "norm" + call "abs" [ "v".%[v "k"] ]) ];
             return (v "norm") ] ])

(* BT: block-tridiagonal line solves — lines (rows) are independent, the
   forward/backward substitution along a line is a recurrence. *)
let bt size =
  let rows = size and cols = 24 in
  number
    (program ~entry:"main" "BT"
       ~globals:[ garray "grid" (rows *$ cols); garray "rhs" (rows *$ cols) ]
       [ func "main"
           [ for_ "k" (i 0) (i (rows *$ cols))
               [ seti "grid" (v "k") ((v "k" % i 23) + i 1);
                 seti "rhs" (v "k") (v "k" % i 17) ];
             (* independent line solves: DOALL over rows *)
             for_ "r" (i 0) (i rows)
               [ (* forward elimination along the line: recurrence in c *)
                 for_ "c" (i 1) (i cols)
                   [ decl "idx" ((v "r" * i cols) + v "c");
                     seti "rhs" (v "idx")
                       ("rhs".%[v "idx"]
                       - (("rhs".%[v "idx" - i 1] * "grid".%[v "idx"]) / i 32)) ];
                 (* back substitution: recurrence walking the line backwards *)
                 for_ "c2" (i 1) (i cols)
                   [ decl "idx" ((v "r" * i cols) + (i (cols -$ 1) - v "c2"));
                     seti "rhs" (v "idx")
                       (("rhs".%[v "idx"] + ("rhs".%[v "idx" + i 1] / i 2)) % i 65536) ] ] ] ])

(* SP: scalar-pentadiagonal — same line-sweep structure as BT plus an
   element-wise update and a residual reduction. *)
let sp size =
  let rows = size and cols = 24 in
  number
    (program ~entry:"main" "SP"
       ~globals:[ garray "q" (rows *$ cols); garray "speed" (rows *$ cols) ]
       [ func "main"
           [ for_ "k" (i 0) (i (rows *$ cols))
               [ seti "q" (v "k") ((v "k" % i 29) + i 1);
                 seti "speed" (v "k") ((v "k" % i 13) + i 1) ];
             for_ "r" (i 0) (i rows)
               [ for_ "c" (i 2) (i cols)
                   [ decl "idx" ((v "r" * i cols) + v "c");
                     seti "q" (v "idx")
                       ("q".%[v "idx"]
                       - ((("q".%[v "idx" - i 1] + "q".%[v "idx" - i 2])
                          * "speed".%[v "idx"])
                         / i 64)) ] ];
             for_ "k" (i 0) (i (rows *$ cols))
               [ seti "speed" (v "k") (("speed".%[v "k"] * i 3) % i 4096) ];
             decl "rms" (i 0);
             for_ "k" (i 0) (i (rows *$ cols)) [ set "rms" (v "rms" + "q".%[v "k"]) ];
             return (v "rms") ] ])

(* LU: wavefront SSOR sweep — both grid dimensions carry dependences. *)
let lu size =
  let n = size in
  number
    (program ~entry:"main" "LU" ~globals:[ garray "g" (n *$ n) ]
       [ func "main"
           [ for_ "k" (i 0) (i (n *$ n)) [ seti "g" (v "k") ((v "k" % i 31) + i 1) ];
             for_ "sweep" (i 0) (i 3)
               [ for_ "r" (i 1) (i n)
                   [ for_ "c" (i 1) (i n)
                       [ decl "idx" ((v "r" * i n) + v "c");
                         seti "g" (v "idx")
                           (("g".%[v "idx"] + "g".%[v "idx" - i 1]
                            + "g".%[v "idx" - i n])
                           / i 3) ] ] ];
             decl "norm" (i 0);
             for_ "k" (i 0) (i (n *$ n)) [ set "norm" (v "norm" + "g".%[v "k"]) ];
             return (v "norm") ] ])

let all : R.t list =
  [ (* loop order is source order; Eany marks loops the paper doesn't score *)
    R.make_workload ~suite:"nas" ~default_size:2500 "EP" ep
      ~expected_loops:[ R.Edoall_reduction ];
    R.make_workload ~suite:"nas" ~default_size:60 "CG" cg
      ~expected_loops:
        [ (* matvec row loop; inner nnz loop; dot loop; init x2; solver it;
             update; p-update *)
          R.Edoall; R.Edoall_reduction; R.Edoall_reduction; R.Edoall; R.Edoall;
          R.Eseq; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"nas" ~default_size:3000 "FT" ft
      ~expected_loops:[ R.Eseq; R.Edoall; R.Eany; R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"nas" ~default_size:3000 "IS" is_bench
      ~expected_loops:[ R.Edoall; R.Edoall_reduction; R.Eseq; R.Eseq ];
    R.make_workload ~suite:"nas" ~default_size:1200 "MG" mg
      ~expected_loops:[ R.Edoall; R.Edoall; R.Eany; R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"nas" ~default_size:80 "BT" bt
      ~expected_loops:[ R.Edoall; R.Edoall; R.Eseq; R.Eseq ];
    R.make_workload ~suite:"nas" ~default_size:80 "SP" sp
      ~expected_loops:[ R.Edoall; R.Edoall; R.Eseq; R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"nas" ~default_size:40 "LU" lu
      ~expected_loops:[ R.Edoall; R.Eany; R.Eseq; R.Eseq; R.Edoall_reduction ] ]
