(* Textbook programs (Table 4.2 / 4.3): the small classics the paper uses to
   show that following the framework's suggestions yields real speedups.
   All arithmetic is integer (fixed-point where the original uses floats);
   the dependence structure is what matters. *)

open Mil.Builder
module R = Registry

let histogram size =
  number
    (program ~entry:"main" "histogram"
       ~globals:[ garray "data" size; garray "hist" 32 ]
       [ func "main"
           [ (* fill: DOALL *)
             for_ "i" (i 0) (i size) [ seti "data" (v "i") (call "rand" [ i 32 ]) ];
             (* count: DOALL with array reduction *)
             for_ "i" (i 0) (i size)
               [ decl "b" ("data".%[v "i"]);
                 seti "hist" (v "b") ("hist".%[v "b"] + i 1) ];
             (* max bucket: scalar reduction *)
             decl "mx" (i 0);
             for_ "i" (i 0) (i 32) [ set "mx" (max_ (v "mx") ("hist".%[v "i"])) ];
             return (v "mx") ] ])

(* Fixed-point Mandelbrot-style escape iteration: each pixel independent. *)
let mandelbrot size =
  let w = size and h = size in
  number
    (program ~entry:"main" "mandelbrot"
       ~globals:[ garray "image" (w *$ h) ]
       [ func "escape" ~params:[ "cx"; "cy" ]
           [ decl "zx" (i 0);
             decl "zy" (i 0);
             decl "n" (i 0);
             while_ (v "n" < i 32 && (v "zx" * v "zx" + v "zy" * v "zy") / i 256 < i 1024)
               [ decl "tx" ((v "zx" * v "zx" - v "zy" * v "zy") / i 256 + v "cx");
                 set "zy" (i 2 * v "zx" * v "zy" / i 256 + v "cy");
                 set "zx" (v "tx");
                 incr "n" ];
             return (v "n") ];
         func "main"
           [ for_ "y" (i 0) (i h)
               [ for_ "x" (i 0) (i w)
                   [ decl "cx" ((v "x" - i (w /$ 2)) * i 4);
                     decl "cy" ((v "y" - i (h /$ 2)) * i 4);
                     seti "image" ((v "y" * i w) + v "x")
                       (call "escape" [ v "cx"; v "cy" ]) ] ] ] ])

let matmul size =
  let n = size in
  number
    (program ~entry:"main" "matmul"
       ~globals:[ garray "ma" (n *$ n); garray "mb" (n *$ n); garray "mc" (n *$ n) ]
       [ func "main"
           [ for_ "i" (i 0) (i (n *$ n))
               [ seti "ma" (v "i") (v "i" % i 17);
                 seti "mb" (v "i") (v "i" % i 13) ];
             for_ "r" (i 0) (i n)
               [ for_ "c" (i 0) (i n)
                   [ decl "acc" (i 0);
                     for_ "k" (i 0) (i n)
                       [ set "acc"
                           (v "acc"
                           + ("ma".%[(v "r" * i n) + v "k"]
                             * "mb".%[(v "k" * i n) + v "c"])) ];
                     seti "mc" ((v "r" * i n) + v "c") (v "acc") ] ] ] ])

let dot_product size =
  number
    (program ~entry:"main" "dotprod"
       ~globals:[ garray "xs" size; garray "ys" size ]
       [ func "main"
           [ for_ "i" (i 0) (i size)
               [ seti "xs" (v "i") (v "i" % i 7); seti "ys" (v "i") (v "i" % i 5) ];
             decl "acc" (i 0);
             for_ "i" (i 0) (i size)
               [ set "acc" (v "acc" + ("xs".%[v "i"] * "ys".%[v "i"])) ];
             return (v "acc") ] ])

(* Sequential recurrence: the control case every detector must NOT suggest. *)
let prefix_sum size =
  number
    (program ~entry:"main" "prefix_sum" ~globals:[ garray "a" size ]
       [ func "main"
           [ for_ "i" (i 0) (i size) [ seti "a" (v "i") (v "i" % i 9) ];
             for_ "i" (i 1) (i size)
               [ seti "a" (v "i") ("a".%[v "i"] + "a".%[v "i" - i 1]) ];
             return ("a".%[i (size -$ 1)]) ] ])

(* Monte-Carlo pi estimation: embarrassingly parallel with one reduction. *)
let monte_carlo size =
  number
    (program ~entry:"main" "monte_carlo"
       [ func "main"
           [ decl "hits" (i 0);
             for_ "t" (i 0) (i size)
               [ decl "x" (call "rand" [ i 1000 ]);
                 decl "y" (call "rand" [ i 1000 ]);
                 when_ ((v "x" * v "x") + (v "y" * v "y") < i 1000000)
                   [ set "hits" (v "hits" + i 1) ] ];
             return (v "hits") ] ])

(* Jacobi sweep over a double buffer: DOALL per sweep. *)
let jacobi size =
  let n = size in
  number
    (program ~entry:"main" "jacobi"
       ~globals:[ garray "grid" n; garray "next" n ]
       [ func "main"
           [ for_ "i" (i 0) (i n) [ seti "grid" (v "i") (v "i" % i 11) ];
             for_ "sweep" (i 0) (i 10)
               [ for_ "i" (i 1) (i (n -$ 1))
                   [ seti "next" (v "i")
                       (("grid".%[v "i" - i 1] + "grid".%[v "i"]
                        + "grid".%[v "i" + i 1])
                       / i 3) ];
                 for_ "i" (i 1) (i (n -$ 1))
                   [ seti "grid" (v "i") ("next".%[v "i"]) ] ] ] ])

(* Gauss-Seidel sweep: in-place update, loop-carried RAW — sequential. *)
let gauss_seidel size =
  let n = size in
  number
    (program ~entry:"main" "gauss_seidel" ~globals:[ garray "grid" n ]
       [ func "main"
           [ for_ "i" (i 0) (i n) [ seti "grid" (v "i") (v "i" % i 11) ];
             for_ "sweep" (i 0) (i 10)
               [ for_ "i" (i 1) (i (n -$ 1))
                   [ seti "grid" (v "i")
                       (("grid".%[v "i" - i 1] + "grid".%[v "i"]
                        + "grid".%[v "i" + i 1])
                       / i 3) ] ] ] ])

(* Histogram visualization (Table 4.3): read values, bucket them, then draw
   rows whose lengths depend on the bucket counts. *)
let histo_visualization size =
  number
    (program ~entry:"main" "histo_vis"
       ~globals:
         [ garray "values" size; garray "buckets" 16; garray "canvas" 1024 ]
       [ func "main"
           [ (* input generation: DOALL *)
             for_ "i" (i 0) (i size)
               [ seti "values" (v "i") (call "rand" [ i 64 ]) ];
             (* bucketing: DOALL + array reduction *)
             for_ "i" (i 0) (i size)
               [ decl "b" ("values".%[v "i"] / i 4);
                 seti "buckets" (v "b") ("buckets".%[v "b"] + i 1) ];
             (* drawing: DOALL over rows (inner loop bound is data-dependent) *)
             for_ "r" (i 0) (i 16)
               [ decl "len" (min_ ("buckets".%[v "r"]) (i 64));
                 for_ "c" (i 0) (v "len")
                   [ seti "canvas" ((v "r" * i 64) + v "c") (i 1) ] ] ] ])

(* Iterative Fibonacci: a pure recurrence chain. *)
let fib_iterative size =
  number
    (program ~entry:"main" "fib_iter"
       [ func "main"
           [ decl "a" (i 0);
             decl "b" (i 1);
             for_ "k" (i 0) (i size)
               [ decl "tmp" (v "a" + v "b"); set "a" (v "b"); set "b" (v "tmp") ];
             return (v "a") ] ])

(* String match count: reduction over a scanning loop. *)
let match_count size =
  number
    (program ~entry:"main" "match_count"
       ~globals:[ garray "text" size; garray "pat" 4 ]
       [ func "main"
           [ for_ "i" (i 0) (i size) [ seti "text" (v "i") (call "rand" [ i 4 ]) ];
             for_ "i" (i 0) (i 4) [ seti "pat" (v "i") (v "i" % i 4) ];
             decl "hits" (i 0);
             for_ "i" (i 0) (i (size -$ 4))
               [ decl "ok" (i 1);
                 for_ "j" (i 0) (i 4)
                   [ when_ ("text".%[v "i" + v "j"] != "pat".%[v "j"])
                       [ set "ok" (i 0) ] ];
                 when_ (v "ok" == i 1) [ set "hits" (v "hits" + i 1) ] ];
             return (v "hits") ] ])

let all : R.t list =
  [ R.make_workload ~suite:"textbook" ~default_size:2000 "histogram" histogram
      ~expected_loops:[ R.Edoall; R.Edoall_reduction; R.Edoall_reduction ];
    (* loops in source order: escape's while, then the y and x pixel loops *)
    R.make_workload ~suite:"textbook" ~default_size:24 "mandelbrot" mandelbrot
      ~expected_loops:[ R.Eany; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"textbook" ~default_size:14 "matmul" matmul
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"textbook" ~default_size:4000 "dotprod" dot_product
      ~expected_loops:[ R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"textbook" ~default_size:2000 "prefix_sum" prefix_sum
      ~expected_loops:[ R.Edoall; R.Eseq ];
    R.make_workload ~suite:"textbook" ~default_size:3000 "monte_carlo" monte_carlo
      ~expected_loops:[ R.Edoall_reduction ];
    R.make_workload ~suite:"textbook" ~default_size:800 "jacobi" jacobi
      ~expected_loops:[ R.Edoall; R.Eany; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"textbook" ~default_size:800 "gauss_seidel" gauss_seidel
      ~expected_loops:[ R.Edoall; R.Eany; R.Eseq ];
    R.make_workload ~suite:"textbook" ~default_size:1500 "histo_vis"
      histo_visualization
      ~expected_loops:
        [ R.Edoall; R.Edoall_reduction; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"textbook" ~default_size:2000 "fib_iter" fib_iterative
      ~expected_loops:[ R.Eseq ];
    R.make_workload ~suite:"textbook" ~default_size:1500 "match_count" match_count
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall_reduction; R.Eany ] ]
