(** Workload registry: every benchmark program ships with its ground truth —
    expected loop classifications (in source order) and expected task
    findings — so the discovery experiments score detection accuracy the way
    the paper scores DiscoPoP against hand-parallelised references. *)

type expectation =
  | Edoall            (** parallelisable with no transformation *)
  | Edoall_reduction  (** parallelisable given a reduction clause *)
  | Edoacross         (** inter-iteration deps, partial overlap possible *)
  | Eseq              (** must stay sequential *)
  | Eany              (** not scored *)

val expectation_to_string : expectation -> string

(** Expected task-parallelism findings (Table 4.6 / 4.7 ground truth). *)
type task_expectation =
  | Sforkjoin of string   (** recursive fork-join in the named function *)
  | Staskloop             (** at least one SPMD task loop *)
  | Smpmd of int          (** an MPMD task graph of at least this width *)
  | Spipeline of int      (** an MPMD pipeline of at least this many stages *)

type t = {
  name : string;
  suite : string;
  make : int -> Mil.Ast.program;   (** size-parameterised builder *)
  default_size : int;
  expected_loops : expectation list;
      (** per executed loop, in source order; shorter lists leave trailing
          loops unscored *)
  expected_tasks : task_expectation list;
  parallel_target : bool;          (** uses par/lock (pthread-style) *)
}

val make_workload :
  ?suite:string ->
  ?expected_loops:expectation list ->
  ?expected_tasks:task_expectation list ->
  ?parallel_target:bool ->
  default_size:int ->
  string ->
  (int -> Mil.Ast.program) ->
  t

val program : ?size:int -> t -> Mil.Ast.program
