lib/workloads/numerics.ml: Mil Registry
