lib/workloads/parsec.ml: Mil Registry
