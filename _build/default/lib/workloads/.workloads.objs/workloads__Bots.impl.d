lib/workloads/bots.ml: Mil Registry
