lib/workloads/registry.mli: Mil
