lib/workloads/score.mli: Discovery Registry
