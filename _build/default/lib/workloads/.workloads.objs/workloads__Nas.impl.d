lib/workloads/nas.ml: Mil Registry
