lib/workloads/splash2x.ml: List Mil Registry
