lib/workloads/textbook.ml: Mil Registry
