lib/workloads/apps.ml: Mil Registry
