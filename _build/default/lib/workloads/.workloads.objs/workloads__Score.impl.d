lib/workloads/score.ml: Discovery List Registry
