lib/workloads/registry.ml: Mil
