lib/workloads/starbench.ml: List Mil Registry
