(* MIL analogues of the PARSEC programs Table 4.7 evaluates MPMD detection
   on: blackscholes' independent option pricing, swaptions' simulation
   sweep, ferret's similarity-search pipeline, and fluidanimate's
   neighbour-coupled grid. *)

open Mil.Builder
module R = Registry

(* blackscholes: every option priced independently (fixed-point surrogate of
   the closed-form formula). *)
let blackscholes size =
  let opts = size in
  number
    (program ~entry:"main" "blackscholes"
       ~globals:
         [ garray "spot" opts; garray "strike" opts; garray "price" opts ]
       [ func "bs_price" ~params:[ "s"; "k" ]
           [ decl "d1" (((v "s" - v "k") * i 100) / (v "k" + i 1));
             decl "nd" (i 50 + (v "d1" / i 4));
             decl "acc" (i 0);
             for_ "term" (i 0) (i 8)
               [ set "acc" (v "acc" + ((v "nd" * (v "term" + i 1)) % i 10007)) ];
             return ((v "s" * (v "acc" % i 10007)) / i 10007) ];
         func "main"
           [ for_ "o" (i 0) (i opts)
               [ seti "spot" (v "o") (call "rand" [ i 200 ] + i 50);
                 seti "strike" (v "o") (call "rand" [ i 200 ] + i 50) ];
             for_ "o" (i 0) (i opts)
               [ seti "price" (v "o")
                   (call "bs_price" [ "spot".%[v "o"]; "strike".%[v "o"] ]) ] ] ])

(* swaptions: Monte-Carlo simulation per swaption; paths reduce into the
   price, swaptions are independent. *)
let swaptions size =
  let n = size and paths = 24 in
  number
    (program ~entry:"main" "swaptions"
       ~globals:[ garray "params" n; garray "prices" n ]
       [ func "simulate" ~params:[ "p"; "path" ]
           [ decl "r" (v "p");
             for_ "t" (i 0) (i 10)
               [ set "r" (((v "r" * i 31) + (v "path" * i 7) + v "t") % i 4093) ];
             return (v "r") ];
         func "main"
           [ for_ "s" (i 0) (i n) [ seti "params" (v "s") (call "rand" [ i 512 ] + i 1) ];
             for_ "s" (i 0) (i n)
               [ decl "sum" (i 0);
                 for_ "p" (i 0) (i paths)
                   [ set "sum" (v "sum" + call "simulate" [ "params".%[v "s"]; v "p" ]) ];
                 seti "prices" (v "s") (v "sum" / i paths) ] ] ])

(* ferret: the four-stage similarity-search pipeline — segment, extract,
   index probe, rank — each query flowing through all stages. *)
let ferret size =
  let queries = size and fdim = 16 in
  number
    (program ~entry:"main" "ferret"
       ~globals:
         [ garray "images" (size *$ fdim); garray "segs" (size *$ fdim);
           garray "feats" (size *$ fdim); garray "cands" size;
           garray "ranks" size; garray "table" 64 ]
       [ func "segment" ~params:[ "q" ]
           [ for_ "x" (i 0) (i fdim)
               [ decl "idx" ((v "q" * i fdim) + v "x");
                 seti "segs" (v "idx") ("images".%[v "idx"] / i 2) ];
             return_unit ];
         func "extract" ~params:[ "q" ]
           [ for_ "x" (i 0) (i fdim)
               [ decl "idx" ((v "q" * i fdim) + v "x");
                 seti "feats" (v "idx") (("segs".%[v "idx"] * i 13) % i 64) ];
             return_unit ];
         func "probe" ~params:[ "q" ]
           [ decl "best" (i 0);
             for_ "x" (i 0) (i fdim)
               [ set "best" (v "best" + "table".%["feats".%[(v "q" * i fdim) + v "x"]]) ];
             seti "cands" (v "q") (v "best");
             return_unit ];
         func "rank" ~params:[ "q" ]
           [ seti "ranks" (v "q") (("cands".%[v "q"] * i 7) % i 101); return_unit ];
         func "main"
           [ for_ "x" (i 0) (i (size *$ fdim))
               [ seti "images" (v "x") (call "rand" [ i 256 ]) ];
             for_ "x" (i 0) (i 64) [ seti "table" (v "x") (call "rand" [ i 32 ]) ];
             for_ "q" (i 0) (i queries)
               [ call_ "segment" [ v "q" ];
                 call_ "extract" [ v "q" ];
                 call_ "probe" [ v "q" ];
                 call_ "rank" [ v "q" ] ] ] ])

(* fluidanimate: particles in a grid interact with neighbouring cells —
   in-place updates couple consecutive cells (DOACROSS-ish). *)
let fluidanimate size =
  let cells = size in
  number
    (program ~entry:"main" "fluidanimate"
       ~globals:[ garray "density" cells; garray "velocity" cells ]
       [ func "main"
           [ for_ "c" (i 0) (i cells)
               [ seti "density" (v "c") (call "rand" [ i 100 ] + i 1);
                 seti "velocity" (v "c") (i 0) ];
             for_ "step" (i 0) (i 4)
               [ (* density exchange with the left neighbour, in place *)
                 for_ "c" (i 1) (i cells)
                   [ decl "flow" (("density".%[v "c" - i 1] - "density".%[v "c"]) / i 4);
                     seti "density" (v "c") ("density".%[v "c"] + v "flow") ];
                 (* velocity update: independent per cell *)
                 for_ "c" (i 0) (i cells)
                   [ seti "velocity" (v "c")
                       (("velocity".%[v "c"] + "density".%[v "c"]) % i 65536) ] ] ] ])

let all : R.t list =
  [ R.make_workload ~suite:"parsec" ~default_size:300 "blackscholes" blackscholes
      ~expected_loops:[ R.Edoall_reduction; R.Edoall; R.Edoall ]
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"parsec" ~default_size:80 "swaptions" swaptions
      ~expected_loops:[ R.Eseq; R.Edoall; R.Edoall; R.Edoall_reduction ]
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"parsec" ~default_size:60 "ferret" ferret
      ~expected_tasks:[ R.Staskloop; R.Spipeline 3 ];
    R.make_workload ~suite:"parsec" ~default_size:500 "fluidanimate" fluidanimate
      ~expected_loops:[ R.Edoall; R.Eany; R.Eseq; R.Edoall ] ]
