(* Open-source application analogues for the case studies of §4.4.2/§4.4.4:
   gzip/bzip2 block compressors (Table 4.5), the libVorbis-style encoder
   pipeline and the FaceDetection task graph (Table 4.7, Fig. 4.10/4.11). *)

open Mil.Builder
module R = Registry

(* gzip-like block compressor: the paper's headline gzip opportunity is the
   block-compression loop in deflate — blocks are independent once the output
   offsets are known; the sequential output append is the DOACROSS part. *)
let gzip size =
  let blocks = size and bs = 64 in
  number
    (program ~entry:"main" "gzip"
       ~globals:
         [ garray "input" (blocks *$ bs); garray "output" (blocks *$ bs *$ 2);
           garray "lens" blocks; gscalar "outpos" 0 ]
       [ func "compress_block" ~params:[ "b" ]
           [ (* LZ-style scan inside the block: heavy, block-local *)
             decl "outlen" (i 0);
             decl "x" (i 0);
             while_ (v "x" < i bs)
               [ decl "run" (i 1);
                 while_
                   (v "x" + v "run" < i bs
                   && (* bounded lookahead; both operands always valid *)
                   "input".%[(v "b" * i bs) + min_ (v "x" + v "run") (i (bs -$ 1))]
                   == "input".%[(v "b" * i bs) + v "x"])
                   [ set "run" (v "run" + i 1) ];
                 seti "output" ((v "b" * i (bs *$ 2)) + v "outlen") (v "run");
                 seti "output" ((v "b" * i (bs *$ 2)) + v "outlen" + i 1)
                   ("input".%[(v "b" * i bs) + v "x"]);
                 set "outlen" (v "outlen" + i 2);
                 set "x" (v "x" + v "run") ];
             seti "lens" (v "b") (v "outlen");
             return (v "outlen") ];
         func "main"
           [ for_ "x" (i 0) (i (blocks *$ bs))
               [ seti "input" (v "x") (call "rand" [ i 4 ]) ];
             (* hot loop: compress each block (independent) and append the
                length to a shared cursor (reduction) *)
             for_ "b" (i 0) (i blocks)
               [ decl "n" (call "compress_block" [ v "b" ]);
                 set "outpos" (v "outpos" + v "n") ];
             return (v "outpos") ] ])

(* bzip2-like: per-block BWT-ish transform (sort surrogate) then MTF —
   blocks independent, in-block work heavier than gzip's. *)
let bzip2 size =
  let blocks = size and bs = 48 in
  number
    (program ~entry:"main" "bzip2"
       ~globals:
         [ garray "data" (blocks *$ bs); garray "bwt" (blocks *$ bs);
           gscalar "total" 0 ]
       [ func "transform_block" ~params:[ "b" ]
           [ (* selection-sort surrogate for the BWT rotation sort *)
             for_ "x" (i 0) (i bs)
               [ seti "bwt" ((v "b" * i bs) + v "x")
                   ("data".%[(v "b" * i bs) + v "x"]) ];
             for_ "x" (i 0) (i (bs -$ 1))
               [ for_ "y" (v "x" + i 1) (i bs)
                   [ when_
                       ("bwt".%[(v "b" * i bs) + v "y"]
                       < "bwt".%[(v "b" * i bs) + v "x"])
                       [ decl "t" ("bwt".%[(v "b" * i bs) + v "x"]);
                         seti "bwt" ((v "b" * i bs) + v "x")
                           ("bwt".%[(v "b" * i bs) + v "y"]);
                         seti "bwt" ((v "b" * i bs) + v "y") (v "t") ] ] ];
             decl "crc" (i 0);
             for_ "x" (i 0) (i bs)
               [ set "crc" (v "crc" + "bwt".%[(v "b" * i bs) + v "x"]) ];
             return (v "crc" % i 65521) ];
         func "main"
           [ for_ "x" (i 0) (i (blocks *$ bs))
               [ seti "data" (v "x") (call "rand" [ i 64 ]) ];
             for_ "b" (i 0) (i blocks)
               [ set "total" (v "total" + call "transform_block" [ v "b" ]) ];
             return (v "total") ] ])

(* libVorbis-like encoder: per-frame pipeline analysis -> MDCT surrogate ->
   quantise -> entropy-code. Frames stream through four stages. *)
let vorbis size =
  let frames = size and fs = 32 in
  number
    (program ~entry:"main" "vorbis"
       ~globals:
         [ garray "pcm" (frames *$ fs); garray "spec" (frames *$ fs);
           garray "quant" (frames *$ fs); garray "bits" frames ]
       [ func "analysis" ~params:[ "f" ]
           [ for_ "x" (i 0) (i fs)
               [ decl "idx" ((v "f" * i fs) + v "x");
                 seti "spec" (v "idx")
                   (("pcm".%[v "idx"] * (v "x" + i 1)) % i 4096) ];
             return_unit ];
         func "quantise" ~params:[ "f" ]
           [ for_ "x" (i 0) (i fs)
               [ decl "idx" ((v "f" * i fs) + v "x");
                 seti "quant" (v "idx") ("spec".%[v "idx"] / i 16) ];
             return_unit ];
         func "entropy" ~params:[ "f" ]
           [ decl "n" (i 0);
             for_ "x" (i 0) (i fs)
               [ when_ ("quant".%[(v "f" * i fs) + v "x"] != i 0)
                   [ set "n" (v "n" + i 1) ] ];
             seti "bits" (v "f") (v "n");
             return_unit ];
         func "main"
           [ for_ "x" (i 0) (i (frames *$ fs))
               [ seti "pcm" (v "x") (call "rand" [ i 256 ]) ];
             for_ "f" (i 0) (i frames)
               [ call_ "analysis" [ v "f" ];
                 call_ "quantise" [ v "f" ];
                 call_ "entropy" [ v "f" ] ] ] ])

(* FaceDetection (Fig. 4.10): grab frame -> two independent feature filters ->
   merge -> per-window classifier cascade -> aggregate. The filters give MPMD
   width 2; the window loop is the SPMD part. *)
let facedetect size =
  let n = size in
  number
    (program ~entry:"main" "facedetect"
       ~globals:
         [ garray "frame" n; garray "edges" n; garray "skin" n;
           garray "feat" n; garray "hits" n; gscalar "faces" 0 ]
       [ func "edge_filter" ~arrays:[]
           [ for_ "x" (i 1) (i (n -$ 1))
               [ seti "edges" (v "x")
                   (call "abs" [ "frame".%[v "x" + i 1] - "frame".%[v "x" - i 1] ]) ];
             return_unit ];
         func "skin_filter" ~arrays:[]
           [ for_ "x" (i 0) (i n)
               [ seti "skin" (v "x")
                   (max_ (i 0) ("frame".%[v "x"] - i 96)) ];
             return_unit ];
         func "classify" ~params:[ "w" ]
           [ decl "score" (i 0);
             for_ "s" (i 0) (i 8)
               [ set "score" ((v "score" + ("feat".%[v "w"] * (v "s" + i 1))) % i 257) ];
             return (v "score") ];
         func "main"
           [ for_ "x" (i 0) (i n) [ seti "frame" (v "x") (call "rand" [ i 256 ]) ];
             (* two independent filters: the MPMD stage pair *)
             call_ "edge_filter" [];
             call_ "skin_filter" [];
             (* merge *)
             for_ "x" (i 0) (i n)
               [ seti "feat" (v "x") (("edges".%[v "x"] + "skin".%[v "x"]) / i 2) ];
             (* sliding-window classification: SPMD *)
             for_ "w" (i 0) (i n)
               [ seti "hits" (v "w") (call "classify" [ v "w" ]);
                 when_ ("hits".%[v "w"] > i 200) [ set "faces" (v "faces" + i 1) ] ] ] ])

(* PARSEC-style dedup: chunk -> fingerprint -> (duplicate check against a
   shared table: locked) -> compress unique chunks. Pipeline + taskloop mix. *)
let dedup size =
  let chunks = size and cs = 24 in
  number
    (program ~entry:"main" "dedup"
       ~globals:
         [ garray "stream" (chunks *$ cs); garray "fps" chunks;
           garray "table" 128; gscalar "unique" 0 ]
       [ func "fingerprint" ~params:[ "c" ]
           [ decl "h" (i 0);
             for_ "x" (i 0) (i cs)
               [ set "h" (((v "h" * i 31) + "stream".%[(v "c" * i cs) + v "x"]) % i 8191) ];
             return (v "h") ];
         func "compress_chunk" ~params:[ "c" ]
           [ decl "acc" (i 0);
             for_ "x" (i 0) (i cs)
               [ set "acc" ((v "acc" * i 2) + "stream".%[(v "c" * i cs) + v "x"]) ];
             return (v "acc" % i 65536) ];
         func "main"
           [ for_ "x" (i 0) (i (chunks *$ cs))
               [ seti "stream" (v "x") (call "rand" [ i 16 ]) ];
             (* the dedup pipeline: fingerprint -> duplicate check ->
                compress, per streamed chunk *)
             for_ "c" (i 0) (i chunks)
               [ decl "fp" (call "fingerprint" [ v "c" ]);
                 seti "fps" (v "c") (v "fp");
                 decl "slot" (v "fp" % i 128);
                 when_ ("table".%[v "slot"] != v "fp")
                   [ seti "table" (v "slot") (v "fp");
                     set "unique" (v "unique" + call "compress_chunk" [ v "c" ] % i 2
                                  + i 1) ] ];
             return (v "unique") ] ])

let all : R.t list =
  [ R.make_workload ~suite:"apps" ~default_size:60 "gzip" gzip
      (* loops in source order: the two in-block scan whiles (recurrences on
         their own control variables), the input fill, the hot block loop *)
      ~expected_loops:[ R.Eseq; R.Eseq; R.Edoall; R.Edoall_reduction ]
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"apps" ~default_size:40 "bzip2" bzip2
      ~expected_loops:
        [ R.Edoall; R.Eany; R.Eany; R.Edoall_reduction; R.Edoall;
          R.Edoall_reduction ]
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"apps" ~default_size:50 "vorbis" vorbis
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"apps" ~default_size:400 "facedetect" facedetect
      ~expected_tasks:[ R.Smpmd 2; R.Staskloop ];
    R.make_workload ~suite:"apps" ~default_size:80 "dedup" dedup
      ~expected_tasks:[ R.Spipeline 3 ] ]
