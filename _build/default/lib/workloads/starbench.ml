(* MIL analogues of the Starbench parallel benchmark suite (§2.5): image
   processing, information security, machine learning, and media kernels.
   Each program exists in a sequential version and — where the paper profiles
   the pthread version (Fig. 2.10/2.11) — a `-par` variant in which the hot
   loop is split across four MIL threads with explicitly locked shared
   accumulators, exactly the explicit-locking discipline §2.3.4 requires. *)

open Mil.Builder
module R = Registry

let nthreads = 4

(* Split [0, n) into [nthreads] chunks and run [body lo hi] in parallel. *)
let par_chunks n body =
  par
    (List.init nthreads (fun t ->
         let lo = t *$ n /$ nthreads in
         let hi = (t +$ 1) *$ n /$ nthreads in
         body lo hi))

(* c-ray: ray tracing — every pixel independent; per-pixel sphere loop finds
   the nearest hit (a min-reduction over a local). *)
let cray_body n =
  [ func "trace" ~params:[ "px" ]
      [ decl "best" (i 1000000);
        for_ "s" (i 0) (i 8)
          [ decl "d" (call "abs" [ (v "px" * i 7) - ("spheres".%[v "s"] * i 11) ]);
            set "best" (min_ (v "best") (v "d")) ];
        return (v "best") ];
    func "main"
      [ for_ "s" (i 0) (i 8) [ seti "spheres" (v "s") (call "rand" [ i 100 ]) ];
        for_ "p" (i 0) (i n) [ seti "fb" (v "p") (call "trace" [ v "p" ]) ] ] ]

let cray size =
  number
    (program ~entry:"main" "c-ray"
       ~globals:[ garray "spheres" 8; garray "fb" size ]
       (cray_body size))

let cray_par size =
  let n = size in
  number
    (program ~entry:"main" "c-ray-par"
       ~globals:[ garray "spheres" 8; garray "fb" n ]
       [ func "trace" ~params:[ "px" ]
           [ decl "best" (i 1000000);
             for_ "s" (i 0) (i 8)
               [ decl "d" (call "abs" [ (v "px" * i 7) - ("spheres".%[v "s"] * i 11) ]);
                 set "best" (min_ (v "best") (v "d")) ];
             return (v "best") ];
         func "main"
           [ for_ "s" (i 0) (i 8) [ seti "spheres" (v "s") (call "rand" [ i 100 ]) ];
             par_chunks n (fun lo hi ->
                 [ for_ "p" (i lo) (i hi) [ seti "fb" (v "p") (call "trace" [ v "p" ]) ] ]) ] ])

(* kmeans: assign points to nearest centre (DOALL + locked accumulation),
   recompute centres, iterate. *)
let kmeans_funcs n k par_version =
  let assign_body lo hi locked =
    [ for_ "p" (i lo) (i hi)
        [ decl "best" (i 0);
          decl "bestd" (i 1000000);
          for_ "c" (i 0) (i k)
            [ decl "d" (call "abs" [ "points".%[v "p"] - "centres".%[v "c"] ]);
              when_ (v "d" < v "bestd") [ set "bestd" (v "d"); set "best" (v "c") ] ];
          seti "assign" (v "p") (v "best");
          (if locked then lock "m" else set "zero" (i 0));
          seti "csum" (v "best") ("csum".%[v "best"] + "points".%[v "p"]);
          seti "ccount" (v "best") ("ccount".%[v "best"] + i 1);
          (if locked then unlock "m" else set "zero" (i 0)) ] ]
  in
  [ func "main"
      ([ decl "zero" (i 0);
         for_ "p" (i 0) (i n) [ seti "points" (v "p") (call "rand" [ i 1000 ]) ];
         for_ "c" (i 0) (i k) [ seti "centres" (v "c") (call "rand" [ i 1000 ]) ] ]
      @ [ for_ "it" (i 0) (i 5)
            ([ for_ "c" (i 0) (i k)
                 [ seti "csum" (v "c") (i 0); seti "ccount" (v "c") (i 0) ] ]
            @ (if par_version then
                 [ par_chunks n (fun lo hi -> assign_body lo hi true) ]
               else assign_body 0 n false)
            @ [ for_ "c" (i 0) (i k)
                  [ when_ ("ccount".%[v "c"] > i 0)
                      [ seti "centres" (v "c") ("csum".%[v "c"] / "ccount".%[v "c"]) ] ] ]) ])
  ]

let kmeans_globals n k =
  [ garray "points" n; garray "centres" k; garray "csum" k; garray "ccount" k;
    garray "assign" n ]

let kmeans size =
  number
    (program ~entry:"main" "kmeans" ~globals:(kmeans_globals size 8)
       (kmeans_funcs size 8 false))

let kmeans_par size =
  number
    (program ~entry:"main" "kmeans-par" ~globals:(kmeans_globals size 8)
       (kmeans_funcs size 8 true))

(* md5: many independent buffers, each hashed by a sequential round chain. *)
let md5_funcs n bufs par_version =
  let digest_one =
    func "digest" ~params:[ "b" ]
      [ decl "h" (i 0x67452301);
        for_ "r" (i 0) (i n)
          [ set "h"
              ((((v "h" lsl i 3) lxor v "h") + "blocks".%[(v "b" * i n) + v "r"])
              % i 1048576) ];
        return (v "h") ]
  in
  let hash_range lo hi =
    [ for_ "b" (i lo) (i hi) [ seti "digests" (v "b") (call "digest" [ v "b" ]) ] ]
  in
  [ digest_one;
    func "main"
      ([ for_ "x" (i 0) (i (bufs *$ n)) [ seti "blocks" (v "x") (call "rand" [ i 256 ]) ] ]
      @ (if par_version then [ par_chunks bufs hash_range ] else hash_range 0 bufs)) ]

let md5 size =
  let bufs = 16 in
  number
    (program ~entry:"main" "md5"
       ~globals:[ garray "blocks" (size *$ bufs); garray "digests" bufs ]
       (md5_funcs size bufs false))

let md5_par size =
  let bufs = 16 in
  number
    (program ~entry:"main" "md5-par"
       ~globals:[ garray "blocks" (size *$ bufs); garray "digests" bufs ]
       (md5_funcs size bufs true))

(* rotate: pure index remap, per-pixel independent. *)
let rotate_funcs w h par_version =
  let body lo hi =
    [ for_ "y" (i lo) (i hi)
        [ for_ "x" (i 0) (i w)
            [ seti "dst" ((v "x" * i h) + (i (h -$ 1) - v "y"))
                ("src".%[(v "y" * i w) + v "x"]) ] ] ]
  in
  [ func "main"
      ([ for_ "p" (i 0) (i (w *$ h)) [ seti "src" (v "p") (v "p" % i 256) ] ]
      @ (if par_version then [ par_chunks h body ] else body 0 h)) ]

let rotate size =
  let w = size and h = size in
  number
    (program ~entry:"main" "rotate"
       ~globals:[ garray "src" (w *$ h); garray "dst" (w *$ h) ]
       (rotate_funcs w h false))

let rotate_par size =
  let w = size and h = size in
  number
    (program ~entry:"main" "rotate-par"
       ~globals:[ garray "src" (w *$ h); garray "dst" (w *$ h) ]
       (rotate_funcs w h true))

(* rgbyuv: colour conversion with global channel accumulators — the Fig 4.7
   loop: element-wise map plus scalar sums that need reduction/locks. *)
let rgbyuv_funcs n par_version =
  let body locked lo hi =
    [ for_ "p" (i lo) (i hi)
        [ decl "r" ("rgb".%[v "p" * i 3]);
          decl "g" ("rgb".%[(v "p" * i 3) + i 1]);
          decl "b" ("rgb".%[(v "p" * i 3) + i 2]);
          decl "yv" (((i 66 * v "r") + (i 129 * v "g") + (i 25 * v "b")) / i 256);
          seti "yout" (v "p") (v "yv");
          seti "uout" (v "p") ((((i 112 * v "b") - (i 74 * v "g")) / i 256) + i 128);
          seti "vout" (v "p") ((((i 112 * v "r") - (i 94 * v "g")) / i 256) + i 128);
          (if locked then lock "m" else set "pad" (i 0));
          set "ysum" (v "ysum" + v "yv");
          (if locked then unlock "m" else set "pad" (i 0)) ] ]
  in
  [ func "main"
      ([ decl "pad" (i 0);
         for_ "x" (i 0) (i (n *$ 3)) [ seti "rgb" (v "x") (call "rand" [ i 256 ]) ] ]
      @ (if par_version then [ par_chunks n (body true) ] else body false 0 n)
      @ [ return (v "ysum") ]) ]

let rgbyuv_globals n =
  [ garray "rgb" (n *$ 3); garray "yout" n; garray "uout" n; garray "vout" n;
    gscalar "ysum" 0 ]

let rgbyuv size =
  number
    (program ~entry:"main" "rgbyuv" ~globals:(rgbyuv_globals size)
       (rgbyuv_funcs size false))

let rgbyuv_par size =
  number
    (program ~entry:"main" "rgbyuv-par" ~globals:(rgbyuv_globals size)
       (rgbyuv_funcs size true))

(* ray-rot parallel: both stages split across threads with a barrier at the
   stage boundary. *)
let rayrot_par size =
  let w = size and h = size in
  number
    (program ~entry:"main" "ray-rot-par"
       ~globals:[ garray "spheres" 8; garray "fb" (w *$ h); garray "out" (w *$ h) ]
       [ func "trace" ~params:[ "px" ]
           [ decl "best" (i 1000000);
             for_ "s" (i 0) (i 8)
               [ set "best"
                   (min_ (v "best")
                      (call "abs" [ (v "px" * i 7) - ("spheres".%[v "s"] * i 11) ])) ];
             return (v "best") ];
         func "main"
           [ for_ "s" (i 0) (i 8) [ seti "spheres" (v "s") (call "rand" [ i 100 ]) ];
             par
               (List.init nthreads (fun t ->
                    let ylo = t *$ h /$ nthreads and yhi = (t +$ 1) *$ h /$ nthreads in
                    [ for_ "p" (i (ylo *$ w)) (i (yhi *$ w))
                        [ seti "fb" (v "p") (call "trace" [ v "p" ]) ];
                      barrier "stage";
                      for_ "y" (i ylo) (i yhi)
                        [ for_ "x" (i 0) (i w)
                            [ seti "out" ((v "x" * i h) + (i (h -$ 1) - v "y"))
                                ("fb".%[(v "y" * i w) + v "x"]) ] ] ])) ] ])

(* streamcluster parallel: per-thread point ranges with a locked cost sum. *)
let streamcluster_par size =
  let n = size and k = 6 in
  number
    (program ~entry:"main" "streamcluster-par"
       ~globals:[ garray "pts" n; garray "ctr" k; gscalar "cost" 0 ]
       [ func "dist" ~params:[ "a"; "b" ] [ return (call "abs" [ v "a" - v "b" ]) ];
         func "main"
           [ for_ "p" (i 0) (i n) [ seti "pts" (v "p") (call "rand" [ i 4096 ]) ];
             for_ "c" (i 0) (i k) [ seti "ctr" (v "c") (call "rand" [ i 4096 ]) ];
             par_chunks n (fun lo hi ->
                 [ decl "local" (i 0);
                   for_ "p" (i lo) (i hi)
                     [ decl "best" (i 1000000);
                       for_ "c" (i 0) (i k)
                         [ set "best"
                             (min_ (v "best")
                                (call "dist" [ "pts".%[v "p"]; "ctr".%[v "c"] ])) ];
                       set "local" (v "local" + v "best") ];
                   lock "m";
                   set "cost" (v "cost" + v "local");
                   unlock "m" ]) ] ])

(* bodytrack parallel: per-particle weights in parallel, locked weight sum,
   sequential resampling left on the main thread. *)
let bodytrack_par size =
  let n = size in
  number
    (program ~entry:"main" "bodytrack-par"
       ~globals:[ garray "particles" n; garray "weights" n; gscalar "wsum" 0 ]
       [ func "likelihood" ~params:[ "x" ]
           [ decl "acc" (i 0);
             for_ "f" (i 0) (i 6)
               [ set "acc" (v "acc" + call "abs" [ (v "x" * v "f") % i 97 ]) ];
             return (v "acc" + i 1) ];
         func "main"
           [ for_ "p" (i 0) (i n) [ seti "particles" (v "p") (call "rand" [ i 1024 ]) ];
             par_chunks n (fun lo hi ->
                 [ decl "local" (i 0);
                   for_ "p" (i lo) (i hi)
                     [ decl "wt" (call "likelihood" [ "particles".%[v "p"] ]);
                       seti "weights" (v "p") (v "wt");
                       set "local" (v "local" + v "wt") ];
                   lock "m";
                   set "wsum" (v "wsum" + v "local");
                   unlock "m" ]);
             return (v "wsum") ] ])

(* h264dec parallel: rows assigned round-robin; a barrier per row wave keeps
   the top neighbour available (the wavefront schedule). *)
let h264dec_par size =
  let n = size in
  number
    (program ~entry:"main" "h264dec-par"
       ~globals:[ garray "mb" (n *$ n); garray "residual" (n *$ n) ]
       [ func "main"
           [ for_ "x" (i 0) (i (n *$ n)) [ seti "residual" (v "x") (call "rand" [ i 64 ]) ];
             par
               (List.init nthreads (fun t ->
                    [ for_ "r" (i 0) (i n)
                        [ when_ (v "r" % i nthreads == i t)
                            [ for_ "c" (i 0) (i n)
                                [ decl "left" (i 128);
                                  decl "top" (i 128);
                                  when_ (v "c" > i 0)
                                    [ set "left" ("mb".%[(v "r" * i n) + v "c" - i 1]) ];
                                  when_ (v "r" > i 0)
                                    [ set "top" ("mb".%[((v "r" - i 1) * i n) + v "c"]) ];
                                  seti "mb" ((v "r" * i n) + v "c")
                                    (((v "left" + v "top") / i 2)
                                    + "residual".%[(v "r" * i n) + v "c"]) ] ];
                          barrier "wave" ] ])) ] ])

(* ray-rot: c-ray followed by rotate, per-pixel independent throughout. *)
let rayrot size =
  let w = size and h = size in
  number
    (program ~entry:"main" "ray-rot"
       ~globals:[ garray "spheres" 8; garray "fb" (w *$ h); garray "out" (w *$ h) ]
       [ func "trace" ~params:[ "px" ]
           [ decl "best" (i 1000000);
             for_ "s" (i 0) (i 8)
               [ set "best"
                   (min_ (v "best")
                      (call "abs" [ (v "px" * i 7) - ("spheres".%[v "s"] * i 11) ])) ];
             return (v "best") ];
         func "main"
           [ for_ "s" (i 0) (i 8) [ seti "spheres" (v "s") (call "rand" [ i 100 ]) ];
             for_ "p" (i 0) (i (w *$ h)) [ seti "fb" (v "p") (call "trace" [ v "p" ]) ];
             for_ "y" (i 0) (i h)
               [ for_ "x" (i 0) (i w)
                   [ seti "out" ((v "x" * i h) + (i (h -$ 1) - v "y"))
                       ("fb".%[(v "y" * i w) + v "x"]) ] ] ] ])

(* rot-cc: rotate then colour-convert — the three-step barrier structure of
   Fig 3.6. *)
let rotcc size =
  let w = size and h = size in
  let n = w *$ h in
  number
    (program ~entry:"main" "rot-cc"
       ~globals:[ garray "src" n; garray "mid" n; garray "yout" n ]
       [ func "main"
           [ for_ "p" (i 0) (i n) [ seti "src" (v "p") (v "p" % i 256) ];
             for_ "y" (i 0) (i h)
               [ for_ "x" (i 0) (i w)
                   [ seti "mid" ((v "x" * i h) + (i (h -$ 1) - v "y"))
                       ("src".%[(v "y" * i w) + v "x"]) ] ];
             for_ "p" (i 0) (i n)
               [ seti "yout" (v "p") (((i 66 * "mid".%[v "p"]) + i 4096) / i 256) ] ] ])

(* streamcluster: nearest-centre cost — distance loops reduce into a cost. *)
let streamcluster size =
  let n = size and k = 6 in
  number
    (program ~entry:"main" "streamcluster"
       ~globals:[ garray "pts" n; garray "ctr" k; gscalar "cost" 0 ]
       [ func "dist" ~params:[ "a"; "b" ] [ return (call "abs" [ v "a" - v "b" ]) ];
         func "main"
           [ for_ "p" (i 0) (i n) [ seti "pts" (v "p") (call "rand" [ i 4096 ]) ];
             for_ "c" (i 0) (i k) [ seti "ctr" (v "c") (call "rand" [ i 4096 ]) ];
             for_ "p" (i 0) (i n)
               [ decl "best" (i 1000000);
                 for_ "c" (i 0) (i k)
                   [ set "best"
                       (min_ (v "best") (call "dist" [ "pts".%[v "p"]; "ctr".%[v "c"] ])) ];
                 set "cost" (v "cost" + v "best") ];
             return (v "cost") ] ])

(* tinyjpeg: sequential bitstream decode per block, independent IDCT after. *)
let tinyjpeg size =
  let blocks = size and blk = 16 in
  number
    (program ~entry:"main" "tinyjpeg"
       ~globals:
         [ garray "bits" (blocks *$ blk); garray "coef" (blocks *$ blk);
           garray "pix" (blocks *$ blk); gscalar "bitpos" 0 ]
       [ func "main"
           [ for_ "x" (i 0) (i (blocks *$ blk))
               [ seti "bits" (v "x") (call "rand" [ i 64 ]) ];
             (* Huffman-style decode: shared bit cursor makes this a chain *)
             for_ "b" (i 0) (i blocks)
               [ for_ "t" (i 0) (i blk)
                   [ decl "code" ("bits".%[v "bitpos" % i (blocks *$ blk)]);
                     seti "coef" ((v "b" * i blk) + v "t") (v "code");
                     set "bitpos" (v "bitpos" + (v "code" % i 3) + i 1) ] ];
             (* IDCT: per-block independent *)
             for_ "b" (i 0) (i blocks)
               [ for_ "t" (i 0) (i blk)
                   [ decl "idx" ((v "b" * i blk) + v "t");
                     seti "pix" (v "idx")
                       ((("coef".%[v "idx"] * i 181) + i 128) / i 256) ] ] ] ])

(* bodytrack: per-particle likelihood (DOALL), weight normalisation
   (reduction), sequential resampling. *)
let bodytrack size =
  let n = size in
  number
    (program ~entry:"main" "bodytrack"
       ~globals:[ garray "particles" n; garray "weights" n; garray "resampled" n ]
       [ func "likelihood" ~params:[ "x" ]
           [ decl "acc" (i 0);
             for_ "f" (i 0) (i 6)
               [ set "acc" (v "acc" + call "abs" [ (v "x" * v "f") % i 97 ]) ];
             return (v "acc" + i 1) ];
         func "main"
           [ for_ "p" (i 0) (i n) [ seti "particles" (v "p") (call "rand" [ i 1024 ]) ];
             for_ "p" (i 0) (i n)
               [ seti "weights" (v "p") (call "likelihood" [ "particles".%[v "p"] ]) ];
             decl "wsum" (i 0);
             for_ "p" (i 0) (i n) [ set "wsum" (v "wsum" + "weights".%[v "p"]) ];
             (* systematic resampling: cumulative scan — sequential *)
             decl "cum" (i 0);
             decl "j" (i 0);
             for_ "p" (i 0) (i n)
               [ set "cum" (v "cum" + "weights".%[v "p"]);
                 while_ ((v "j" * (v "wsum" / i n)) < v "cum" && v "j" < i n)
                   [ seti "resampled" (v "j") ("particles".%[v "p"]);
                     set "j" (v "j" + i 1) ] ] ] ])

(* h264dec: intra-prediction over macroblocks — each block depends on its
   left and top neighbours: a wavefront (DOACROSS) structure. *)
let h264dec size =
  let n = size in
  number
    (program ~entry:"main" "h264dec"
       ~globals:[ garray "mb" (n *$ n); garray "residual" (n *$ n) ]
       [ func "main"
           [ for_ "x" (i 0) (i (n *$ n)) [ seti "residual" (v "x") (call "rand" [ i 64 ]) ];
             for_ "r" (i 0) (i n)
               [ for_ "c" (i 0) (i n)
                   [ decl "left" (i 128);
                     decl "top" (i 128);
                     when_ (v "c" > i 0) [ set "left" ("mb".%[(v "r" * i n) + v "c" - i 1]) ];
                     when_ (v "r" > i 0) [ set "top" ("mb".%[((v "r" - i 1) * i n) + v "c"]) ];
                     seti "mb" ((v "r" * i n) + v "c")
                       (((v "left" + v "top") / i 2) + "residual".%[(v "r" * i n) + v "c"]) ] ] ] ])

let all : R.t list =
  [ R.make_workload ~suite:"starbench" ~default_size:1500 "c-ray" cray
      ~expected_loops:[ R.Edoall_reduction; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:1500 "c-ray-par" cray_par
      ~parallel_target:true;
    (* loops: point fill, centre fill, solver iteration, accumulator reset,
       assignment (array reduction), nearest-centre scan (conditional min —
       not a recognisable reduction), centre update *)
    R.make_workload ~suite:"starbench" ~default_size:600 "kmeans" kmeans
      ~expected_loops:
        [ R.Edoall; R.Edoall; R.Eany; R.Edoall; R.Edoall_reduction; R.Eany;
          R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:600 "kmeans-par" kmeans_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:120 "md5" md5
      ~expected_loops:[ R.Eseq; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:120 "md5-par" md5_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:42 "rotate" rotate
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:42 "rotate-par" rotate_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:1200 "rgbyuv" rgbyuv
      ~expected_loops:[ R.Edoall; R.Edoall_reduction ];
    R.make_workload ~suite:"starbench" ~default_size:1200 "rgbyuv-par" rgbyuv_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:36 "ray-rot" rayrot
      ~expected_loops:[ R.Edoall_reduction; R.Edoall; R.Edoall; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:24 "ray-rot-par" rayrot_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:600 "streamcluster-par"
      streamcluster_par ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:400 "bodytrack-par"
      bodytrack_par ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:20 "h264dec-par" h264dec_par
      ~parallel_target:true;
    R.make_workload ~suite:"starbench" ~default_size:40 "rot-cc" rotcc
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:800 "streamcluster"
      streamcluster
      ~expected_loops:[ R.Edoall; R.Edoall; R.Edoall_reduction; R.Edoall_reduction ];
    R.make_workload ~suite:"starbench" ~default_size:100 "tinyjpeg" tinyjpeg
      ~expected_loops:[ R.Edoall; R.Eseq; R.Eseq; R.Edoall; R.Edoall ];
    R.make_workload ~suite:"starbench" ~default_size:500 "bodytrack" bodytrack
      ~expected_loops:
        [ R.Edoall_reduction; R.Edoall; R.Edoall; R.Edoall_reduction; R.Eseq; R.Eany ];
    R.make_workload ~suite:"starbench" ~default_size:28 "h264dec" h264dec
      ~expected_loops:[ R.Edoall; R.Eseq; R.Eseq ] ]
