(* MIL analogues of the splash2x programs whose communication patterns the
   paper derives from the DiscoPoP profiler (Fig. 5.1). Each program is a
   phase-structured `par` computation over [nthreads] threads with barriers
   between phases, engineered to reproduce its namesake's characteristic
   thread-to-thread communication shape:

   - ocean / water-spatial: block-partitioned grids exchanging halo cells
     with neighbouring threads -> banded (neighbour) matrices;
   - barnes / raytrace / volrend: workers read a structure the main thread
     built -> master-worker (hub column);
   - water-nsquared / fmm: all-pairs interactions -> all-to-all;
   - radiosity: a lock-protected shared work counter -> hub + diffuse. *)

open Mil.Builder
module R = Registry

let nthreads = 4

let par_threads body = par (List.init nthreads body)

(* ocean: red-black-ish grid relaxation; each thread owns a block and reads
   the boundary cells of its neighbours after a barrier. *)
let ocean size =
  let block = size in
  let n = nthreads *$ block in
  number
    (program ~entry:"main" "ocean" ~globals:[ garray "grid" n; garray "acc" nthreads ]
       [ func "main"
           [ (* threads initialise their own blocks (as real ocean does) and
                then iterate time steps with a two-barrier halo-exchange
                protocol — cross-thread traffic is only the halo cells *)
             par_threads (fun t ->
                 let lo = t *$ block and hi = (t +$ 1) *$ block in
                 [ for_ "k" (i lo) (i hi) [ seti "grid" (v "k") (v "k" % i 97) ];
                   barrier "init";
                   for_ "step" (i 0) (i 3)
                     [ (* phase 1: relax the interior of the owned block *)
                       for_ "k" (i (lo +$ 1)) (i (hi -$ 1))
                         [ seti "grid" (v "k")
                             (("grid".%[v "k" - i 1] + "grid".%[v "k"]
                              + "grid".%[v "k" + i 1])
                             / i 3) ];
                       barrier "halo";
                       (* phase 2: read the halo cells of the neighbours *)
                       decl "left" (if t = 0 then i 0 else "grid".%[i (lo -$ 1)]);
                       decl "right"
                         (if t = nthreads -$ 1 then i 0 else "grid".%[i hi]);
                       seti "acc" (i t) ("acc".%[i t] + v "left" + v "right");
                       barrier "tick" ] ]) ] ])

(* barnes: main thread builds the tree; workers traverse it read-only and
   update their own bodies. *)
let barnes size =
  let bodies = size in
  number
    (program ~entry:"main" "barnes"
       ~globals:[ garray "tree" 64; garray "bodies" bodies; garray "forces" bodies ]
       [ func "main"
           [ for_ "k" (i 0) (i 64) [ seti "tree" (v "k") (call "rand" [ i 512 ]) ];
             for_ "k" (i 0) (i bodies) [ seti "bodies" (v "k") (call "rand" [ i 512 ]) ];
             par_threads (fun t ->
                 let lo = t *$ bodies /$ nthreads in
                 let hi = (t +$ 1) *$ bodies /$ nthreads in
                 [ for_ "b" (i lo) (i hi)
                     [ decl "f" (i 0);
                       for_ "c" (i 0) (i 64)
                         [ set "f"
                             (v "f"
                             + (call "abs" [ "bodies".%[v "b"] - "tree".%[v "c"] ]
                               / i 8)) ];
                       seti "forces" (v "b") (v "f") ] ]) ] ])

(* water-nsquared: all-pairs molecular interactions — every thread reads
   every other thread's molecules after the position update. *)
let water_nsq size =
  let mols = nthreads *$ size in
  number
    (program ~entry:"main" "water-nsq"
       ~globals:[ garray "pos" mols; garray "force" mols ]
       [ func "main"
           [ for_ "k" (i 0) (i mols) [ seti "pos" (v "k") (call "rand" [ i 256 ]) ];
             par_threads (fun t ->
                 let lo = t *$ size and hi = (t +$ 1) *$ size in
                 [ (* update own molecules *)
                   for_ "k" (i lo) (i hi)
                     [ seti "pos" (v "k") (("pos".%[v "k"] * i 3) % i 256) ];
                   barrier "positions";
                   (* all-pairs force against every molecule *)
                   for_ "k" (i lo) (i hi)
                     [ decl "f" (i 0);
                       for_ "j" (i 0) (i mols)
                         [ set "f" (v "f" + call "abs" [ "pos".%[v "k"] - "pos".%[v "j"] ]) ];
                       seti "force" (v "k") (v "f") ] ]) ] ])

(* radiosity: a lock-protected shared work queue cursor — every thread
   contends on the same counter (hub) while doing private patch work. *)
let radiosity size =
  let patches = size in
  number
    (program ~entry:"main" "radiosity"
       ~globals:[ garray "patch" patches; gscalar "cursor" 0; gscalar "energy" 0 ]
       [ func "main"
           [ for_ "k" (i 0) (i patches) [ seti "patch" (v "k") (call "rand" [ i 64 ]) ];
             par_threads (fun _ ->
                 [ decl "mine" (i 0);
                   while_ (v "mine" >= i 0)
                     [ lock "queue";
                       if_ (v "cursor" < i patches)
                         [ set "mine" (v "cursor");
                           set "cursor" (v "cursor" + i 1) ]
                         [ set "mine" (i 0 - i 1) ];
                       unlock "queue";
                       when_ (v "mine" >= i 0)
                         [ decl "e" ("patch".%[v "mine"] * i 3);
                           lock "energy";
                           set "energy" (v "energy" + v "e");
                           unlock "energy" ] ] ]) ] ])

(* raytrace: workers trace disjoint pixel ranges against the shared scene. *)
let raytrace size =
  let pixels = nthreads *$ size in
  number
    (program ~entry:"main" "raytrace"
       ~globals:[ garray "scene" 32; garray "img" pixels ]
       [ func "main"
           [ for_ "k" (i 0) (i 32) [ seti "scene" (v "k") (call "rand" [ i 128 ]) ];
             par_threads (fun t ->
                 let lo = t *$ size and hi = (t +$ 1) *$ size in
                 [ for_ "p" (i lo) (i hi)
                     [ decl "c" (i 0);
                       for_ "s" (i 0) (i 32)
                         [ set "c" (v "c" + (("scene".%[v "s"] * v "p") % i 61)) ];
                       seti "img" (v "p") (v "c") ] ]) ] ])

(* fmm: hierarchical interactions — neighbour exchange at the fine level
   plus a shared coarse summary everyone reads (mixed pattern). *)
let fmm size =
  let cells = nthreads *$ size in
  number
    (program ~entry:"main" "fmm"
       ~globals:[ garray "fine" cells; garray "coarse" nthreads; gscalar "root" 0 ]
       [ func "main"
           [ for_ "k" (i 0) (i cells) [ seti "fine" (v "k") (call "rand" [ i 64 ]) ];
             par_threads (fun t ->
                 let lo = t *$ size and hi = (t +$ 1) *$ size in
                 [ (* upward pass: summarise own cells *)
                   decl "sum" (i 0);
                   for_ "k" (i lo) (i hi) [ set "sum" (v "sum" + "fine".%[v "k"]) ];
                   seti "coarse" (i t) (v "sum");
                   barrier "up";
                   (* root combines on thread 0's data path *)
                   (if t = 0 then
                      set "root"
                        ("coarse".%[i 0] + "coarse".%[i 1] + "coarse".%[i 2]
                        + "coarse".%[i 3])
                    else set "sum" (v "sum"));
                   barrier "root";
                   (* downward pass: everyone reads the root and neighbours *)
                   for_ "k" (i lo) (i hi)
                     [ seti "fine" (v "k")
                         (("fine".%[v "k"] + (v "root" / i cells)
                          + "coarse".%[i ((t +$ 1) mod nthreads)])
                         % i 4096) ] ]) ] ])

(* volrend: independent ray casting over a shared read-only volume. *)
let volrend size =
  let rays = nthreads *$ size in
  number
    (program ~entry:"main" "volrend"
       ~globals:[ garray "volume" 128; garray "shade" rays ]
       [ func "main"
           [ for_ "k" (i 0) (i 128) [ seti "volume" (v "k") (call "rand" [ i 256 ]) ];
             par_threads (fun t ->
                 let lo = t *$ size and hi = (t +$ 1) *$ size in
                 [ for_ "r" (i lo) (i hi)
                     [ decl "acc" (i 0);
                       for_ "d" (i 0) (i 16)
                         [ set "acc"
                             (v "acc" + "volume".%[((v "r" * i 7) + (v "d" * i 13)) % i 128]) ];
                       seti "shade" (v "r") (v "acc") ] ]) ] ])

(* water-spatial: like ocean, block-partitioned with halo exchange. *)
let water_spatial size =
  let block = size in
  let n = nthreads *$ block in
  number
    (program ~entry:"main" "water-spatial"
       ~globals:[ garray "cells" n; garray "flux" n ]
       [ func "main"
           [ par_threads (fun t ->
                 let lo = t *$ block and hi = (t +$ 1) *$ block in
                 [ for_ "k" (i lo) (i hi)
                     [ seti "cells" (v "k") (((v "k" + i 3) * i 5) % i 512) ];
                   barrier "sync";
                   for_ "k" (i (max 1 lo)) (i (min (n -$ 1) hi))
                     [ seti "flux" (v "k")
                         (("cells".%[v "k" - i 1] + "cells".%[v "k" + i 1]) / i 2) ] ]) ] ])

let all : R.t list =
  let mk name f size = R.make_workload ~suite:"splash2x" ~default_size:size name f ~parallel_target:true in
  [ mk "ocean" ocean 200;
    mk "barnes" barnes 150;
    mk "water-nsq" water_nsq 60;
    mk "radiosity" radiosity 300;
    mk "raytrace" raytrace 120;
    mk "fmm" fmm 200;
    mk "volrend" volrend 120;
    mk "water-spatial" water_spatial 250 ]
