(* MIL analogues of the Barcelona OpenMP Task Suite (BOTS) programs the paper
   evaluates SPMD-style task discovery on (Table 4.6): ten programs, each with
   the hot spots the paper's 20-hot-spot study covers — either a loop spawning
   independent heavy work (taskloop) or independent recursive calls
   (fork-join, as in Fig. 4.3 / 4.9). *)

open Mil.Builder
module R = Registry

(* fib: the canonical two-way recursive fork-join (Fig. 4.3). *)
let fib size =
  number
    (program ~entry:"main" "fib"
       [ func "fib" ~params:[ "n" ]
           [ when_ (v "n" < i 2) [ return (v "n") ];
             decl "x" (call "fib" [ v "n" - i 1 ]);
             decl "y" (call "fib" [ v "n" - i 2 ]);
             return (v "x" + v "y") ];
         func "main" [ return (call "fib" [ i size ]) ] ])

(* nqueens: recursive search; the placement loop spawns independent subtrees
   counting solutions by reduction (Fig. 4.2). *)
let nqueens size =
  let n = size in
  number
    (program ~entry:"main" "nqueens" ~globals:[ garray "cols" 16 ]
       [ func "ok" ~params:[ "row"; "col" ]
           [ decl "q" (i 0);
             decl "good" (i 1);
             while_ (v "q" < v "row")
               [ decl "c" ("cols".%[v "q"]);
                 when_
                   (v "c" == v "col"
                   || call "abs" [ v "c" - v "col" ] == v "row" - v "q")
                   [ set "good" (i 0) ];
                 set "q" (v "q" + i 1) ];
             return (v "good") ];
         func "solve" ~params:[ "row" ]
           [ when_ (v "row" == i n) [ return (i 1) ];
             decl "count" (i 0);
             for_ "col" (i 0) (i n)
               [ when_ (call "ok" [ v "row"; v "col" ] == i 1)
                   [ seti "cols" (v "row") (v "col");
                     set "count" (v "count" + call "solve" [ v "row" + i 1 ]) ] ];
             return (v "count") ];
         func "main" [ return (call "solve" [ i 0 ]) ] ])

(* sort: merge sort — two independent recursive sorts, then a merge. *)
let sort size =
  let n = size in
  number
    (program ~entry:"main" "sort"
       ~globals:[ garray "a" n; garray "tmp" n ]
       [ func "merge" ~params:[ "lo"; "mid"; "hi" ]
           [ decl "l" (v "lo");
             decl "r" (v "mid");
             decl "k" (v "lo");
             (* MIL has no short-circuit evaluation: guard the index reads
                with nested branches instead of && / || chains *)
             while_ (v "k" < v "hi")
               [ if_ (v "l" >= v "mid")
                   [ seti "tmp" (v "k") ("a".%[v "r"]); set "r" (v "r" + i 1) ]
                   [ if_ (v "r" >= v "hi")
                       [ seti "tmp" (v "k") ("a".%[v "l"]); set "l" (v "l" + i 1) ]
                       [ if_ ("a".%[v "l"] <= "a".%[v "r"])
                           [ seti "tmp" (v "k") ("a".%[v "l"]); set "l" (v "l" + i 1) ]
                           [ seti "tmp" (v "k") ("a".%[v "r"]); set "r" (v "r" + i 1) ] ] ];
                 set "k" (v "k" + i 1) ];
             for_ "j" (v "lo") (v "hi") [ seti "a" (v "j") ("tmp".%[v "j"]) ];
             return_unit ];
         func "msort" ~params:[ "lo"; "hi" ]
           [ when_ (v "hi" - v "lo" < i 2) [ return_unit ];
             decl "mid" ((v "lo" + v "hi") / i 2);
             call_ "msort" [ v "lo"; v "mid" ];
             call_ "msort" [ v "mid"; v "hi" ];
             call_ "merge" [ v "lo"; v "mid"; v "hi" ];
             return_unit ];
         func "main"
           [ for_ "j" (i 0) (i n) [ seti "a" (v "j") (call "rand" [ i 10000 ]) ];
             call_ "msort" [ i 0; i n ] ] ])

(* fft: recursive split plus the fft_twiddle-style independent work loop
   (Fig. 4.9). *)
let fft size =
  let n = size in
  number
    (program ~entry:"main" "fft"
       ~globals:[ garray "re" n; garray "im" n ]
       [ func "twiddle" ~params:[ "lo"; "hi" ]
           [ for_ "k" (v "lo") (v "hi")
               [ decl "a" ("re".%[v "k"]);
                 decl "b" ("im".%[v "k"]);
                 seti "re" (v "k") (((v "a" * i 3) - v "b") % i 65536);
                 seti "im" (v "k") (((v "b" * i 3) + v "a") % i 65536) ];
             return_unit ];
         func "fft_rec" ~params:[ "lo"; "hi" ]
           [ when_ (v "hi" - v "lo" < i 8) [ call_ "twiddle" [ v "lo"; v "hi" ]; return_unit ];
             decl "mid" ((v "lo" + v "hi") / i 2);
             call_ "fft_rec" [ v "lo"; v "mid" ];
             call_ "fft_rec" [ v "mid"; v "hi" ];
             call_ "twiddle" [ v "lo"; v "hi" ];
             return_unit ];
         func "main"
           [ for_ "k" (i 0) (i n)
               [ seti "re" (v "k") (v "k" % i 256); seti "im" (v "k") (v "k" % i 128) ];
             call_ "fft_rec" [ i 0; i n ] ] ])

(* strassen: block multiply with independent recursive sub-multiplies. *)
let strassen size =
  let n = size in
  number
    (program ~entry:"main" "strassen"
       ~globals:[ garray "ma" (n *$ n); garray "mb" (n *$ n); garray "mc" (n *$ n) ]
       [ func "mult_block" ~params:[ "r0"; "c0"; "sz" ]
           [ for_ "r" (i 0) (v "sz")
               [ for_ "c" (i 0) (v "sz")
                   [ decl "acc" (i 0);
                     for_ "k" (i 0) (v "sz")
                       [ set "acc"
                           (v "acc"
                           + ("ma".%[((v "r0" + v "r") * i n) + v "k"]
                             * "mb".%[(v "k" * i n) + v "c0" + v "c"])) ];
                     seti "mc" (((v "r0" + v "r") * i n) + v "c0" + v "c") (v "acc") ] ];
             return_unit ];
         func "strassen_rec" ~params:[ "r0"; "c0"; "sz" ]
           [ when_ (v "sz" <= i 4)
               [ call_ "mult_block" [ v "r0"; v "c0"; v "sz" ]; return_unit ];
             decl "h" (v "sz" / i 2);
             call_ "strassen_rec" [ v "r0"; v "c0"; v "h" ];
             call_ "strassen_rec" [ v "r0"; v "c0" + v "h"; v "h" ];
             call_ "strassen_rec" [ v "r0" + v "h"; v "c0"; v "h" ];
             call_ "strassen_rec" [ v "r0" + v "h"; v "c0" + v "h"; v "h" ];
             return_unit ];
         func "main"
           [ for_ "x" (i 0) (i (n *$ n))
               [ seti "ma" (v "x") (v "x" % i 7); seti "mb" (v "x") (v "x" % i 5) ];
             call_ "strassen_rec" [ i 0; i 0; i n ] ] ])

(* sparselu: factorisation over a block grid; the bmod block updates within
   one step are independent tasks. *)
let sparselu size =
  let nb = size in
  let bs = 8 in
  number
    (program ~entry:"main" "sparselu"
       ~globals:[ garray "blocks" (nb *$ nb *$ bs) ]
       [ func "lu0" ~params:[ "b" ]
           [ for_ "x" (i 1) (i bs)
               [ seti "blocks" ((v "b" * i bs) + v "x")
                   (("blocks".%[(v "b" * i bs) + v "x"]
                    + "blocks".%[(v "b" * i bs) + v "x" - i 1])
                   % i 65536) ];
             return_unit ];
         func "bmod" ~params:[ "b"; "d" ]
           [ for_ "x" (i 0) (i bs)
               [ seti "blocks" ((v "b" * i bs) + v "x")
                   (("blocks".%[(v "b" * i bs) + v "x"]
                    + ("blocks".%[(v "d" * i bs) + v "x"] / i 2))
                   % i 65536) ];
             return_unit ];
         func "main"
           [ for_ "x" (i 0) (i (nb *$ nb *$ bs))
               [ seti "blocks" (v "x") ((v "x" % i 97) + i 1) ];
             for_ "kk" (i 0) (i nb)
               [ call_ "lu0" [ (v "kk" * i nb) + v "kk" ];
                 (* independent trailing-block updates: the taskloop *)
                 for_ "jj" (i 0) (i nb)
                   [ when_ (v "jj" != v "kk")
                       [ call_ "bmod" [ (v "kk" * i nb) + v "jj"; (v "kk" * i nb) + v "kk" ] ] ] ] ] ])

(* health: per-village simulation steps are independent tasks per round. *)
let health size =
  let villages = size in
  number
    (program ~entry:"main" "health"
       ~globals:[ garray "patients" villages; garray "waiting" villages ]
       [ func "sim_village" ~params:[ "vg" ]
           [ decl "load" ("patients".%[v "vg"]);
             decl "acc" (i 0);
             for_ "s" (i 0) (i 20)
               [ set "acc" ((v "acc" + (v "load" * v "s")) % i 10007) ];
             seti "waiting" (v "vg") (v "acc");
             return_unit ];
         func "main"
           [ for_ "vg" (i 0) (i villages)
               [ seti "patients" (v "vg") (call "rand" [ i 50 ]) ];
             for_ "round" (i 0) (i 4)
               [ for_ "vg" (i 0) (i villages) [ call_ "sim_village" [ v "vg" ] ] ] ] ])

(* alignment: all sequence pairs aligned independently; scores reduce. *)
let alignment size =
  let seqs = size and len = 12 in
  number
    (program ~entry:"main" "alignment"
       ~globals:[ garray "seqs" (seqs *$ len); garray "scores" (seqs *$ seqs) ]
       [ func "align_pair" ~params:[ "s1"; "s2" ]
           [ decl "score" (i 0);
             for_ "x" (i 0) (i len)
               [ when_
                   ("seqs".%[(v "s1" * i len) + v "x"]
                   == "seqs".%[(v "s2" * i len) + v "x"])
                   [ set "score" (v "score" + i 1) ] ];
             return (v "score") ];
         func "main"
           [ for_ "x" (i 0) (i (seqs *$ len))
               [ seti "seqs" (v "x") (call "rand" [ i 4 ]) ];
             for_ "s1" (i 0) (i seqs)
               [ for_ "s2" (i 0) (i seqs)
                   [ seti "scores" ((v "s1" * i seqs) + v "s2")
                       (call "align_pair" [ v "s1"; v "s2" ]) ] ] ] ])

(* floorplan: recursive placement enumeration with a best-cost reduction. *)
let floorplan size =
  let cells = size in
  number
    (program ~entry:"main" "floorplan"
       ~globals:[ garray "areas" 16; gscalar "best" 1000000 ]
       [ func "place" ~params:[ "cell"; "cost" ]
           [ when_ (v "cell" == i cells)
               [ set "best" (min_ (v "best") (v "cost")); return_unit ];
             (* two placements per cell: two independent subtrees *)
             call_ "place" [ v "cell" + i 1; v "cost" + "areas".%[v "cell"] ];
             call_ "place" [ v "cell" + i 1; v "cost" + ("areas".%[v "cell"] / i 2) + i 1 ];
             return_unit ];
         func "main"
           [ for_ "x" (i 0) (i 16) [ seti "areas" (v "x") (call "rand" [ i 30 ] + i 1) ];
             call_ "place" [ i 0; i 0 ] ] ])

(* uts: unbalanced tree search — children explored as independent tasks,
   node count reduced. *)
let uts size =
  number
    (program ~entry:"main" "uts" ~globals:[ gscalar "nodes" 0 ]
       [ func "explore" ~params:[ "depth"; "seed" ]
           [ set "nodes" (v "nodes" + i 1);
             when_ (v "depth" >= i size) [ return_unit ];
             decl "kids" ((v "seed" % i 3) + i 1);
             for_ "k" (i 0) (v "kids")
               [ call_ "explore"
                   [ v "depth" + i 1; ((v "seed" * i 1103) + v "k" + i 12345) % i 65536 ] ];
             return_unit ];
         func "main" [ call_ "explore" [ i 0; i 7 ] ] ])

let all : R.t list =
  [ R.make_workload ~suite:"bots" ~default_size:13 "fib" fib
      ~expected_tasks:[ R.Sforkjoin "fib" ];
    R.make_workload ~suite:"bots" ~default_size:6 "nqueens" nqueens
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"bots" ~default_size:512 "sort" sort
      ~expected_tasks:[ R.Sforkjoin "msort" ];
    R.make_workload ~suite:"bots" ~default_size:256 "fft" fft
      ~expected_tasks:[ R.Sforkjoin "fft_rec" ];
    R.make_workload ~suite:"bots" ~default_size:16 "strassen" strassen
      ~expected_tasks:[ R.Sforkjoin "strassen_rec" ];
    R.make_workload ~suite:"bots" ~default_size:6 "sparselu" sparselu
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"bots" ~default_size:60 "health" health
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"bots" ~default_size:24 "alignment" alignment
      ~expected_tasks:[ R.Staskloop ];
    R.make_workload ~suite:"bots" ~default_size:10 "floorplan" floorplan
      ~expected_tasks:[ R.Sforkjoin "place" ];
    R.make_workload ~suite:"bots" ~default_size:8 "uts" uts
      ~expected_tasks:[ R.Staskloop ] ]
