(* Workload registry: every benchmark program ships with its ground truth —
   the expected classification of each executed loop in source order — so the
   discovery experiments (Tables 4.1/4.4, etc.) can score detection accuracy
   exactly like the paper scores DiscoPoP against the hand-parallelised
   reference versions of NAS and BOTS. *)

type expectation =
  | Edoall            (* parallelisable with no transformation *)
  | Edoall_reduction  (* parallelisable given a reduction clause *)
  | Edoacross         (* inter-iteration deps, partial overlap possible *)
  | Eseq              (* must stay sequential *)
  | Eany              (* not scored *)

let expectation_to_string = function
  | Edoall -> "DOALL"
  | Edoall_reduction -> "DOALL(red)"
  | Edoacross -> "DOACROSS"
  | Eseq -> "seq"
  | Eany -> "-"

(* Expected task-parallelism findings (Table 4.6 / 4.7 ground truth). *)
type task_expectation =
  | Sforkjoin of string   (* recursive fork-join in the named function *)
  | Staskloop             (* at least one SPMD task loop *)
  | Smpmd of int          (* an MPMD task graph of at least this width *)
  | Spipeline of int      (* an MPMD pipeline of at least this many stages *)

type t = {
  name : string;
  suite : string;                        (* "nas", "starbench", "bots", ... *)
  make : int -> Mil.Ast.program;         (* size-parameterised builder *)
  default_size : int;
  (* Expected class per executed loop, in source order. Shorter lists leave
     trailing loops unscored. *)
  expected_loops : expectation list;
  expected_tasks : task_expectation list;
  parallel_target : bool;                (* uses par/lock (pthread-style) *)
}

let make_workload ?(suite = "misc") ?(expected_loops = []) ?(expected_tasks = [])
    ?(parallel_target = false) ~default_size name make =
  { name; suite; make; default_size; expected_loops; expected_tasks;
    parallel_target }

let program ?size (w : t) : Mil.Ast.program =
  w.make (match size with Some s -> s | None -> w.default_size)
