(** Scoring of discovery results against workload ground truth — the
    machinery behind Table 4.1 (DOALL detection) and Table 4.4. *)

module L = Discovery.Loops

type loop_result = {
  workload : string;
  loop_line : int;
  expected : Registry.expectation;
  got : L.loop_class;
  exact : bool;        (** class matches exactly *)
  binary : bool;       (** parallelisable-vs-not matches (Table 4.1) *)
}

val parallelisable_expected : Registry.expectation -> bool
val parallelisable_got : L.loop_class -> bool
val exact_match : Registry.expectation -> L.loop_class -> bool

val score_workload : ?size:int -> Registry.t -> loop_result list

type summary = {
  total_scored : int;
  exact_correct : int;
  binary_correct : int;
  parallel_truth : int;      (** ground-truth parallelisable loops *)
  parallel_found : int;      (** of those, correctly identified *)
  false_parallel : int;      (** non-parallelisable loops claimed parallel *)
}

val summarise : loop_result list -> summary
val detection_rate : summary -> float
