(** Computational Units (Chapter 3): the smallest units of code mapped onto
    a thread. A CU is a collection of instructions following the
    read-compute-write pattern over the variables global to its enclosing
    code section; it never crosses a control-region boundary, but need not
    align with a source-language construct. *)

module SS = Mil.Static.SS

type t = {
  id : int;
  region : int;           (** {!Mil.Static} region the CU belongs to *)
  func : string;
  lines : SS.t;           (** statement lines (as strings, for set ops) *)
  first_line : int;
  last_line : int;
  read_set : SS.t;        (** global variables read (the read phase) *)
  write_set : SS.t;       (** global variables written (the write phase) *)
  weight : int;           (** static statement count, a size proxy *)
  contains_call : bool;
  contains_region : bool; (** spans a nested loop/branch *)
}

val line_key : int -> string
val mem_line : t -> int -> bool

val make :
  id:int -> region:int -> func:string -> lines:int list -> read_set:SS.t ->
  write_set:SS.t -> weight:int -> contains_call:bool -> contains_region:bool ->
  t

val to_string : t -> string
