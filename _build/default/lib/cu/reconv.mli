(** Dynamic control-dependence analysis via re-convergence points (§3.2.2):
    for every branch, find where the alternatives end and unconditional
    execution resumes by looking ahead along every alternative until the
    paths meet, over a statement-level CFG. *)

type t

val build_function : Mil.Ast.func -> exit_line:int -> t
val analyze : Mil.Ast.program -> (string, t) Hashtbl.t
(** One CFG per function; the synthetic exit line is one past the program's
    last line. *)

val reconvergence_point : t -> int -> int option
(** The re-convergence line of the branch statement at the given line. *)

val control_dependent_lines : t -> int -> int list
(** Statements control-dependent on the branch: reachable from an
    alternative head before the re-convergence point. *)
