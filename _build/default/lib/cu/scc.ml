(* Tarjan's strongly-connected-components algorithm over adjacency arrays.
   Used to contract cyclically-dependent CU groups into single vertices when
   simplifying the CU graph for task discovery (Fig 4.5). *)

type result = {
  component : int array;   (* node -> component id *)
  components : int list array;  (* component id -> members *)
  count : int;
}

let run (adj : int list array) : result =
  let n = Array.length adj in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit work stack to avoid deep recursion on long chains. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let comp = !next_comp in
      incr next_comp;
      let rec pop () =
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        component.(w) <- comp;
        if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let components = Array.make !next_comp [] in
  for v = n - 1 downto 0 do
    components.(component.(v)) <- v :: components.(component.(v))
  done;
  { component; components; count = !next_comp }

(* Condensation: the DAG of components. *)
let condense (adj : int list array) (r : result) : int list array =
  let cadj = Array.make r.count [] in
  Array.iteri
    (fun v ws ->
      List.iter
        (fun w ->
          let cv = r.component.(v) and cw = r.component.(w) in
          if cv <> cw then cadj.(cv) <- cw :: cadj.(cv))
        ws)
    adj;
  Array.map (List.sort_uniq compare) cadj

(* Chain contraction (Fig 4.5): merge maximal paths of nodes with exactly one
   predecessor and one successor into single vertices. Returns the group id
   of each node. *)
let contract_chains (adj : int list array) : int array =
  let n = Array.length adj in
  let preds = Array.make n [] in
  Array.iteri (fun v ws -> List.iter (fun w -> preds.(w) <- v :: preds.(w)) ws) adj;
  let group = Array.init n (fun i -> i) in
  let rec find g v = if g.(v) = v then v else find g g.(v) in
  for v = 0 to n - 1 do
    match adj.(v) with
    | [ w ] when v <> w && List.length preds.(w) = 1 ->
        (* v -> w is a chain link: merge. *)
        let gv = find group v and gw = find group w in
        if gv <> gw then group.(gw) <- gv
    | _ -> ()
  done;
  Array.init n (fun v -> find group v)
