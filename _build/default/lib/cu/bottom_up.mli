(** Bottom-up CU construction (§3.2.3): every instruction starts as its own
    CU; CUs merge along anti-dependences (WAR) while true dependences become
    edges. Reproduced at source-line granularity over the profiled
    dependence set; the paper found the result too fine for task discovery
    (Fig. 3.7) but uses it for fine-grained views. *)

module Dep = Profiler.Dep
module SS = Mil.Static.SS

type t = {
  group_of_line : (int, int) Hashtbl.t;  (** line -> CU group id *)
  groups : (int, int list) Hashtbl.t;    (** group id -> member lines *)
  raw_edges : (int * int) list;          (** group -> group true deps *)
}

val build : ?exclude_vars:SS.t -> lo:int -> hi:int -> Dep.Set_.t -> t
(** Build over the dependences whose lines lie within [[lo, hi]];
    [exclude_vars] drops dependences on region-local variables (step 2 of
    the bottom-up algorithm). *)

val n_groups : t -> int

(** {1 Dynamic instruction-level variant} *)

(** The on-the-fly construction of §3.2.3: static memory operations merged
    along anti-dependences as the trace streams by — the fine-grained CU
    graph of Fig 3.7. *)
type dynamic = {
  group_of_op : (int, int) Hashtbl.t;  (** op id -> group representative *)
  op_lines : (int, int) Hashtbl.t;     (** op id -> source line *)
  d_raw_edges : (int * int) list;      (** group -> group true dependences *)
  n_ops : int;
}

val build_dynamic : ?exclude_vars:SS.t -> Trace.Event.t list -> dynamic
val dynamic_group_count : dynamic -> int
