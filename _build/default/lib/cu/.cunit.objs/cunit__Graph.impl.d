lib/cu/graph.ml: Array Buffer Cu Hashtbl List Printf Profiler String
