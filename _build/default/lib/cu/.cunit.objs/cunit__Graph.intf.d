lib/cu/graph.mli: Cu Hashtbl Profiler
