lib/cu/reconv.ml: Ast Hashtbl List Mil Queue
