lib/cu/scc.ml: Array List Stack
