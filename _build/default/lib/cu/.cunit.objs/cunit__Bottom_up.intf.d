lib/cu/bottom_up.mli: Hashtbl Mil Profiler Trace
