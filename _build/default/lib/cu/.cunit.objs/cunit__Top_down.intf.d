lib/cu/top_down.mli: Cu Hashtbl Mil
