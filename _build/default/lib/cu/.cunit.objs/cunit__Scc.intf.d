lib/cu/scc.mli:
