lib/cu/cu.ml: List Mil Printf String
