lib/cu/reconv.mli: Hashtbl Mil
