lib/cu/top_down.ml: Array Ast Cu Fun Hashtbl List Mil Static
