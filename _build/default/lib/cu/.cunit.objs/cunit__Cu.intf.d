lib/cu/cu.mli: Mil
