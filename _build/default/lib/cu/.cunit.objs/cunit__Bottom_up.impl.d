lib/cu/bottom_up.ml: Hashtbl List Mil Profiler Trace
