(* Dynamic control-dependence analysis via re-convergence points (§3.2.2).

   When only a binary is available, DiscoPoP finds, for every branch, the
   point where the alternatives end and unconditional execution resumes, by
   looking ahead along every alternative until the paths meet. We reproduce
   the algorithm over a statement-level control-flow graph derived from MIL:
   nodes are statement lines plus a synthetic exit; a branch's re-convergence
   point is the first node reachable on *every* outgoing path. *)

open Mil

type t = {
  succ : (int, int list) Hashtbl.t;     (* CFG successor lines *)
  branches : (int, int list) Hashtbl.t; (* branch line -> alternative heads *)
  reconv : (int, int) Hashtbl.t;        (* branch line -> re-convergence line *)
  exit_line : int;
}

let first_line (block : Ast.block) (fallthrough : int) =
  match block with [] -> fallthrough | s :: _ -> s.Ast.line

(* Build the CFG of one function. [next] is the line control reaches after the
   current block. *)
let build_function (f : Ast.func) ~(exit_line : int) : t =
  let succ = Hashtbl.create 64 in
  let branches = Hashtbl.create 16 in
  let add_succ l s =
    let prev = try Hashtbl.find succ l with Not_found -> [] in
    if not (List.mem s prev) then Hashtbl.replace succ l (s :: prev)
  in
  let rec block stmts next =
    match stmts with
    | [] -> ()
    | s :: rest ->
        let next_of_s = first_line rest next in
        stmt s next_of_s;
        block rest next
  and stmt (s : Ast.stmt) next =
    match s.Ast.node with
    | Ast.If (_, t, e) ->
        let t_head = first_line t next in
        let e_head = first_line e next in
        add_succ s.Ast.line t_head;
        add_succ s.Ast.line e_head;
        Hashtbl.replace branches s.Ast.line [ t_head; e_head ];
        block t next;
        block e next
    | Ast.While (_, body) | Ast.For { body; _ } ->
        let b_head = first_line body s.Ast.line in
        add_succ s.Ast.line b_head;
        add_succ s.Ast.line next;
        Hashtbl.replace branches s.Ast.line [ b_head; next ];
        (* back edge: last statement of the body returns to the header *)
        block body s.Ast.line
    | Ast.Par blocks ->
        List.iter
          (fun b ->
            add_succ s.Ast.line (first_line b next);
            block b next)
          blocks;
        if blocks = [] then add_succ s.Ast.line next
    | Ast.Return _ -> add_succ s.Ast.line exit_line
    | Ast.Break ->
        (* Conservative: treat as fallthrough; MIL workloads use break only
           as the last statement of a branch arm. *)
        add_succ s.Ast.line next
    | Ast.Decl _ | Ast.Decl_arr _ | Ast.Assign _ | Ast.Atomic_assign _
    | Ast.Call_stmt _ | Ast.Lock _ | Ast.Unlock _ | Ast.Barrier _ | Ast.Free _ ->
        add_succ s.Ast.line next
  in
  add_succ f.Ast.fline (first_line f.Ast.body exit_line);
  block f.Ast.body exit_line;
  let t = { succ; branches; reconv = Hashtbl.create 16; exit_line } in
  (* Look-ahead: walk every alternative, collecting reachable-node sets in BFS
     order; the re-convergence point is the first node (in the first
     alternative's BFS order) reachable from all alternatives. *)
  Hashtbl.iter
    (fun br alts ->
      let reach_from head =
        let seen = Hashtbl.create 32 in
        let order = ref [] in
        let q = Queue.create () in
        Queue.push head q;
        while not (Queue.is_empty q) do
          let l = Queue.pop q in
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.replace seen l ();
            order := l :: !order;
            List.iter (fun s -> Queue.push s q)
              (try Hashtbl.find succ l with Not_found -> [])
          end
        done;
        (seen, List.rev !order)
      in
      match alts with
      | [] -> ()
      | head :: others ->
          let _, order0 = reach_from head in
          let other_sets = List.map (fun h -> fst (reach_from h)) others in
          let rec first_common = function
            | [] -> exit_line
            | l :: rest ->
                if List.for_all (fun set -> Hashtbl.mem set l) other_sets then l
                else first_common rest
          in
          Hashtbl.replace t.reconv br (first_common order0))
    branches;
  t

let reconvergence_point t line = Hashtbl.find_opt t.reconv line

(* Lines control-dependent on branch [br]: reachable from an alternative head
   before hitting the re-convergence point. *)
let control_dependent_lines t br =
  match (Hashtbl.find_opt t.branches br, Hashtbl.find_opt t.reconv br) with
  | Some alts, Some rc ->
      let seen = Hashtbl.create 32 in
      let rec walk l =
        if l <> rc && (not (Hashtbl.mem seen l)) && l <> t.exit_line then begin
          Hashtbl.replace seen l ();
          List.iter walk (try Hashtbl.find t.succ l with Not_found -> [])
        end
      in
      List.iter walk alts;
      Hashtbl.fold (fun l () acc -> l :: acc) seen [] |> List.sort compare
  | _ -> []

let analyze (p : Ast.program) : (string, t) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  let max_line =
    List.fold_left
      (fun acc (f : Ast.func) ->
        let rec m acc (s : Ast.stmt) =
          let acc = max acc s.Ast.line in
          match s.Ast.node with
          | Ast.If (_, t, e) -> List.fold_left m acc (t @ e)
          | Ast.While (_, b) -> List.fold_left m acc b
          | Ast.For { body; _ } -> List.fold_left m acc body
          | Ast.Par bs -> List.fold_left m acc (List.concat bs)
          | _ -> acc
        in
        List.fold_left m (max acc f.Ast.fline) f.Ast.body)
      0 p.Ast.funcs
  in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace tbl f.Ast.fname (build_function f ~exit_line:(max_line + 1)))
    p.Ast.funcs;
  tbl
