(** Tarjan's strongly-connected components and the graph contractions used to
    simplify CU graphs for task discovery (Fig. 4.5). *)

type result = {
  component : int array;          (** node -> component id *)
  components : int list array;    (** component id -> members *)
  count : int;
}

val run : int list array -> result

val condense : int list array -> result -> int list array
(** The DAG of components. *)

val contract_chains : int list array -> int array
(** Merge maximal single-predecessor/single-successor paths; returns each
    node's group representative. *)
