(** Top-down CU construction (Algorithm 3, §3.2.3): starting from functions,
    check whether a whole control region satisfies the read-compute-write
    pattern; reads that violate it split the region at the violating
    statements. Nested regions are single items at their parent's level and
    are decomposed recursively. The §3.2.5 special rules apply: scalar
    parameters in the read set only, [ret] in the write set, loop indices
    local unless the body writes them. *)

module SS = Mil.Static.SS

(** One item of a region's statement sequence: a plain statement or a nested
    control region collapsed to its aggregated access sets. *)
type item = {
  it_line : int;
  it_reads : SS.t;         (** region-global variables read by the item *)
  it_writes : SS.t;
  it_lines : int list;     (** all lines covered (subtree for regions) *)
  it_weight : int;
  it_call : bool;
  it_region : int option;  (** nested region id, if the item is a region *)
}

type result = {
  cus : Cu.t list;                          (** every CU, all regions *)
  by_region : (int, Cu.t list) Hashtbl.t;   (** region id -> its partition *)
  static : Mil.Static.t;
}

val build : Mil.Static.t -> result

val cus_of_region : result -> int -> Cu.t list
val region_is_single_cu : result -> int -> bool
(** Whether the whole region satisfies the read-compute-write pattern. *)

(** {1 Exposed internals (testing, custom analyses)} *)

val shallow_rw : Mil.Static.t -> Mil.Ast.stmt -> SS.t * SS.t
(** Reads/writes of a statement's directly-evaluated expressions, including
    interprocedural call effects; nested blocks excluded. *)

val construction_globals : Mil.Static.t -> int -> SS.t
(** The variable set used for CU construction in the region, with the
    §3.2.5 special rules applied. *)

val items_of_region : Mil.Static.t -> int -> SS.t -> item list
val partition_items : item list -> item list list
(** Cut before every item containing a violating read. *)

val stmt_lines : Mil.Ast.stmt -> int list
val stmt_weight : Mil.Ast.stmt -> int
val stmt_has_call : Mil.Ast.stmt -> bool
val region_lines : Mil.Static.t -> int -> int list
