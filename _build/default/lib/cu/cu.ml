(* Computational Units (Chapter 3).

   A CU is a collection of instructions following the read-compute-write
   pattern: variables global to the enclosing code section are read, a
   computation is performed over locals, and results are written back to
   global variables. A CU never crosses a control-region boundary, but it is
   not required to align with a source-language construct. *)

module SS = Mil.Static.SS

type t = {
  id : int;
  region : int;           (* Static region the CU belongs to *)
  func : string;
  lines : SS.t;           (* statement lines, as strings for set ops *)
  first_line : int;
  last_line : int;
  read_set : SS.t;        (* global variables read (the read phase) *)
  write_set : SS.t;       (* global variables written (the write phase) *)
  weight : int;           (* static statement count, a size proxy *)
  contains_call : bool;
  contains_region : bool; (* spans a nested loop/branch *)
}

let line_key = string_of_int
let mem_line cu line = SS.mem (line_key line) cu.lines

let make ~id ~region ~func ~lines ~read_set ~write_set ~weight ~contains_call
    ~contains_region =
  let ints = List.sort compare lines in
  let first_line = match ints with [] -> 0 | l :: _ -> l in
  let last_line = match List.rev ints with [] -> 0 | l :: _ -> l in
  { id; region; func;
    lines = SS.of_list (List.map line_key lines);
    first_line; last_line; read_set; write_set; weight; contains_call;
    contains_region }

let to_string cu =
  Printf.sprintf "CU%d[%s:%d-%d r={%s} w={%s} weight=%d]" cu.id cu.func
    cu.first_line cu.last_line
    (String.concat "," (SS.elements cu.read_set))
    (String.concat "," (SS.elements cu.write_set))
    cu.weight
