(* §4.3 / Fig 4.6 — the ranking metrics across all suites: instruction
   coverage, local speedup, CU imbalance, and the combined rank, for the top
   suggestion of each workload. Demonstrates that ranking puts the
   genuinely-hot opportunities first. *)

module R = Workloads.Registry
module S = Discovery.Suggestion

let run () =
  Util.header "Ranking metrics (§4.3) for the top suggestion per workload";
  let rows =
    List.filter_map
      (fun (w : R.t) ->
        if w.R.parallel_target then None
        else begin
          let report = S.analyze (R.program w) in
          match report.S.suggestions with
          | [] -> Some [ w.R.name; "-"; "-"; "-"; "-"; "(no suggestion)" ]
          | top :: _ ->
              let sc = top.S.score in
              Some
                [ w.R.name;
                  Util.f2 sc.Discovery.Ranking.coverage;
                  Util.f2 sc.Discovery.Ranking.local_speedup;
                  Util.f2 sc.Discovery.Ranking.imbalance;
                  Util.f2 sc.Discovery.Ranking.combined;
                  S.kind_to_string top.S.kind ]
        end)
      (Workloads.Textbook.all @ Util.nas @ Workloads.Apps.all)
  in
  Util.table
    ~columns:[ "program"; "coverage"; "local-speedup"; "imbalance"; "rank"; "suggestion" ]
    rows
