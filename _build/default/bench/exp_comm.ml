(* §5.3 / Fig 5.1 — communication patterns of multi-threaded programs derived
   from the profiler's cross-thread RAW dependences. The primary subjects are
   the splash2x analogues, as in the paper; the pthread Starbench targets
   follow for comparison. *)

let show (w : Workloads.Registry.t) =
  let prog = Workloads.Registry.program w in
  let r = Profiler.Serial.profile prog in
  let m = Apps.Comm.of_deps r.deps in
  Printf.printf "\n%s: %d threads, pattern = %s\n" w.name m.Apps.Comm.threads
    (Apps.Comm.pattern_to_string (Apps.Comm.classify m));
  print_string (Apps.Comm.render m)

let run () =
  Util.header "Fig 5.1: thread communication patterns (splash2x)";
  List.iter show Workloads.Splash2x.all;
  Util.header "Fig 5.1 (cont.): parallel Starbench targets";
  List.iter
    (fun (w : Workloads.Registry.t) ->
      show { w with Workloads.Registry.default_size = max 8 (w.default_size / 4) })
    Util.starbench_par;
  print_endline
    "\n(paper: splash2x shows master-worker hubs, neighbour bands, and\n\
    \ all-to-all blocks — ocean/water-spatial band, barnes/raytrace/volrend\n\
    \ hub, water-nsquared/fmm all-to-all, matching Fig 5.1's shapes)"
