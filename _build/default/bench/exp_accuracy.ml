(* Table 2.6 — false positive and false negative rates of profiled
   dependences for Starbench, under three signature sizes. Rates are
   occurrence-weighted: a record stands for all its merged dynamic instances
   (see Dep.Set_.accuracy_weighted).

   The paper uses 1e6/1e7/1e8 slots against programs touching ~1e3..1e7
   distinct addresses; our MIL workloads touch ~1e2..1e5 addresses, so the
   slot columns are scaled to hit the same collision regimes of Eq. 2.2
   (heavily collided / transitional / nearly exact). *)

module Dep = Profiler.Dep

let slot_columns = [ 1_000; 10_000; 100_000 ]

let run () =
  Util.header
    "Table 2.6: FPR/FNR of signature-based profiling (Starbench), by slots";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let truth =
          (Profiler.Serial.profile ~shadow:Profiler.Engine.Perfect prog).deps
        in
        let addresses = Util.count_addresses prog in
        let cells =
          List.concat_map
            (fun slots ->
              let r =
                Profiler.Serial.profile
                  ~shadow:(Profiler.Engine.Signature slots) prog
              in
              let fpr, fnr = Dep.Set_.accuracy_weighted ~truth ~got:r.deps in
              [ Util.pct fpr; Util.pct fnr ])
            slot_columns
        in
        (w.name, addresses, Dep.Set_.cardinal truth, cells))
      Util.starbench_seq
  in
  Util.table
    ~columns:
      ([ "program"; "#addresses"; "#deps" ]
      @ List.concat_map
          (fun s -> [ Printf.sprintf "FPR@%d" s; Printf.sprintf "FNR@%d" s ])
          slot_columns)
    (List.map
       (fun (name, addrs, deps, cells) ->
         [ name; string_of_int addrs; string_of_int deps ] @ cells)
       rows);
  (* averages, as the paper's last row *)
  let n = float_of_int (List.length rows) in
  let avg k =
    List.fold_left
      (fun acc (_, _, _, cells) ->
        acc +. float_of_string (String.sub (List.nth cells k) 0
                                  (String.length (List.nth cells k) - 1)))
      0.0 rows
    /. n
  in
  Printf.printf "average:";
  List.iteri
    (fun c _ -> Printf.printf "  %.2f%%" (avg c))
    (List.concat_map (fun _ -> [ (); () ]) slot_columns);
  print_newline ();
  Printf.printf
    "(paper: avg FPR/FNR 24.47%%/5.42%% -> 4.71%%/0.71%% -> 0.35%%/0.04%% as slots grow)\n"
