bench/util.ml: Hashtbl List Mil Printf String Trace Unix Workloads
