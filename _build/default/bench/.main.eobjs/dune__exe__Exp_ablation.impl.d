bench/exp_ablation.ml: List Printf Profiler Util Workloads
