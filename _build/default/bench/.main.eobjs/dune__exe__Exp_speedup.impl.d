bench/exp_speedup.ml: Array Discovery Domain List Printf Profiler String Util Workloads
