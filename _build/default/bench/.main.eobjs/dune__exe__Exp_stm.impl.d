bench/exp_stm.ml: Apps Discovery List Printf Util Workloads
