bench/exp_comm.ml: Apps List Printf Profiler Util Workloads
