bench/exp_doall.ml: Discovery List Printf Util Workloads
