bench/exp_slowdown.ml: Array List Printf Profiler String Util Workloads
