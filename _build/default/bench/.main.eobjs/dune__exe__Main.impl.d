bench/main.ml: Array Exp_ablation Exp_accuracy Exp_comm Exp_cugraphs Exp_doall Exp_examples Exp_micro Exp_ml Exp_ranking Exp_skip Exp_slowdown Exp_speedup Exp_stm Exp_tasks List Printf Sys Unix
