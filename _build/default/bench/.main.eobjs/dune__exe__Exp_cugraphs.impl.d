bench/exp_cugraphs.ml: Cunit List Mil Printf Profiler Util Workloads
