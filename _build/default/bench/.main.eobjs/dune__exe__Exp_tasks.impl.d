bench/exp_tasks.ml: Discovery List Printf String Util Workloads
