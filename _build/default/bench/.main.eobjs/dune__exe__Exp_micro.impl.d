bench/exp_micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Mil Printf Profiler Sigmem Staged Test Time Toolkit Trace Util Workloads
