bench/exp_ml.ml: Apps List Printf Util Workloads
