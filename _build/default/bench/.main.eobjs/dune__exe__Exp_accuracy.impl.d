bench/exp_accuracy.ml: List Printf Profiler String Util Workloads
