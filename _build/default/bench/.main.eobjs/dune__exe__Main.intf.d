bench/main.mli:
