bench/exp_skip.ml: List Printf Profiler Util Workloads
