bench/exp_examples.ml: Mil Printf Profiler Util
