bench/exp_ranking.ml: Discovery List Util Workloads
