(* §5.2 / Table 5.4 — number of transactions in the NAS programs, determined
   by analysing the profiler output: code sections that update shared state
   inside parallelisable loops become transactions; their set sizes are the
   STM tuning parameters. *)

let run () =
  Util.header "Table 5.4: transactions derived from the profiler output (NAS)";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let report = Discovery.Suggestion.analyze (Workloads.Registry.program w) in
        let stm = Apps.Stm.analyze report in
        let instances =
          List.fold_left
            (fun acc t -> acc + t.Apps.Stm.t_instances)
            0 stm.Apps.Stm.transactions
        in
        [ w.name;
          string_of_int (Apps.Stm.count stm);
          string_of_int instances;
          Printf.sprintf "%.1f" stm.Apps.Stm.write_set_avg ])
      Util.nas
  in
  Util.table
    ~columns:[ "program"; "transactions"; "dynamic instances"; "avg set size" ]
    rows;
  print_endline
    "(paper: a handful of static transactions per NAS program, with dynamic\n\
    \ counts scaling with iteration counts)"
