(* Figures 3.6 / 3.7 — CU-graph structure:
   - rot-cc's top-down CU graph shows the three-step barrier organisation
     (rotate -> colour-convert with intermediate buffers, Fig 3.6);
   - CG's bottom-up (instruction-level) graph is orders of magnitude finer
     than the top-down one — the reason the framework prefers top-down
     construction (Fig 3.7, §3.3). *)

let run () =
  Util.header "Fig 3.6: top-down CU graph of rot-cc's main";
  let rotcc =
    List.find (fun (w : Workloads.Registry.t) -> w.name = "rot-cc")
      Workloads.Starbench.all
  in
  let prog = Workloads.Registry.program ~size:16 rotcc in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let r = Profiler.Serial.profile prog in
  let main_region = Mil.Static.func_region st "main" in
  let cus = Cunit.Top_down.cus_of_region cures main_region in
  let g = Cunit.Graph.build ~cus ~deps:r.deps () in
  List.iter (fun cu -> Printf.printf "  %s\n" (Cunit.Cu.to_string cu)) cus;
  Printf.printf "  edges: %d (RAW chain over the src -> mid -> yout buffers)\n"
    (List.length g.Cunit.Graph.edges);

  Util.header "Fig 3.7: top-down vs bottom-up granularity on CG";
  let cg =
    List.find (fun (w : Workloads.Registry.t) -> w.name = "CG") Workloads.Nas.all
  in
  let prog = Workloads.Registry.program ~size:24 cg in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let _, events = Mil.Interp.trace prog in
  let fine = Cunit.Bottom_up.build_dynamic events in
  Printf.printf
    "  top-down: %d CUs across all regions\n\
    \  bottom-up: %d memory operations -> %d fine-grained CUs, %d RAW edges\n"
    (List.length cures.Cunit.Top_down.cus)
    fine.Cunit.Bottom_up.n_ops
    (Cunit.Bottom_up.dynamic_group_count fine)
    (List.length fine.Cunit.Bottom_up.d_raw_edges);
  print_endline
    "(paper: the bottom-up graph is \"much more complex, and it is almost\n\
    \ impossible for users to manually explore the parallelism it contains\")"
