(* §5.1 — characterizing features for DOALL loops:
   - Table 5.1: the dynamic feature set;
   - Table 5.2: feature importance in the AdaBoost stump ensemble;
   - Table 5.3: classification scores on the held-out set. *)

module F = Apps.Features
module A = Apps.Adaboost

let run () =
  Util.header "Table 5.1: dynamic features used for DOALL classification";
  List.iter (fun n -> Printf.printf "  - %s\n" n) F.names;

  let corpus =
    F.corpus
      (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
     @ Workloads.Apps.all @ Workloads.Numerics.all @ Workloads.Parsec.all)
  in
  let train, test = A.split corpus in
  Printf.printf "\ncorpus: %d labelled loops (%d train / %d held out)\n"
    (List.length corpus) (List.length train) (List.length test);
  let m = A.train train in

  Util.header "Table 5.2: feature importance (share of ensemble weight)";
  List.iter
    (fun (name, imp) ->
      if imp > 0.0 then Printf.printf "  %-20s %.3f\n" name imp)
    (A.feature_importance m);
  print_endline
    "(paper: dependence-count features dominate, loop-shape features refine)";

  Util.header "Table 5.3: classification scores on the held-out set";
  let sc = A.evaluate m test in
  Printf.printf "  accuracy %.2f  precision %.2f  recall %.2f  F1 %.2f  (n=%d)\n"
    sc.A.accuracy sc.A.precision sc.A.recall sc.A.f1 sc.A.n;
  (* the paper separates loops with pragmas (ground-truth parallel) from
     loops without: report per-class accuracy the same way *)
  let pos, neg = List.partition (fun s -> s.F.y) test in
  let acc samples =
    if samples = [] then 1.0 else (A.evaluate m samples).A.accuracy
  in
  Printf.printf "  parallel loops (with pragma):    accuracy %.2f (n=%d)\n"
    (acc pos) (List.length pos);
  Printf.printf "  sequential loops (without):      accuracy %.2f (n=%d)\n"
    (acc neg) (List.length neg);
  print_endline
    "(paper: high scores on pragma loops, lower on non-pragma loops)"
