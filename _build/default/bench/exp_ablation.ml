(* Ablations of the profiler's design choices, quantifying each claim the
   paper makes for them:
   - shadow-memory backend (§2.3.2): signature vs hash table vs two-level
     pages — time and memory;
   - variable-lifetime analysis (§2.3.5): false dependences without it;
   - runtime dependence merging (§2.3.5): output file size with and without
     (the paper's 6.1 GB -> 53 KB, ~1e5x reduction);
   - hot-address redistribution (§2.3.3): worker load balance with and
     without. *)

module Dep = Profiler.Dep

let sample_workloads () =
  List.filter
    (fun (w : Workloads.Registry.t) ->
      List.mem w.name [ "FT"; "CG"; "kmeans"; "c-ray" ])
    (Util.nas @ Util.starbench_seq)

let run_shadow_backends () =
  Util.header "Ablation: shadow-memory backend (time, memory)";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let t_native = Util.native_time prog in
        let slow shadow =
          Util.med_time (fun () -> Profiler.Serial.profile ~shadow prog)
          /. t_native
        in
        let mem shadow =
          (Profiler.Serial.profile ~shadow prog).footprint_words * 8 / 1024
        in
        [ w.name;
          Printf.sprintf "%.1fx/%dKB"
            (slow (Profiler.Engine.Signature 100_000))
            (mem (Profiler.Engine.Signature 100_000));
          Printf.sprintf "%.1fx/%dKB" (slow Profiler.Engine.Perfect)
            (mem Profiler.Engine.Perfect);
          Printf.sprintf "%.1fx/%dKB" (slow Profiler.Engine.Paged)
            (mem Profiler.Engine.Paged) ])
      (sample_workloads ())
  in
  Util.table ~columns:[ "program"; "signature"; "hashtable"; "paged" ] rows;
  print_endline
    "(paper: the hash-table shadow is 1.5-3.7x slower than the signature;\n\
    \ exact backends never err but pay in memory or hashing time)"

let run_lifetime () =
  Util.header "Ablation: variable-lifetime analysis (§2.3.5)";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let with_lt = Profiler.Serial.profile prog in
        let without = Profiler.Serial.profile ~lifetime:false prog in
        let fpr, fnr =
          Dep.Set_.accuracy_weighted ~truth:with_lt.deps ~got:without.deps
        in
        [ w.name;
          string_of_int (Dep.Set_.cardinal with_lt.deps);
          string_of_int (Dep.Set_.cardinal without.deps);
          Util.pct fpr; Util.pct fnr ])
      (sample_workloads ())
  in
  Util.table
    ~columns:
      [ "program"; "deps (lifetime on)"; "deps (off)"; "false+ w/o"; "missed w/o" ]
    rows;
  print_endline
    "(recycled addresses of dead locals manufacture dependences between\n\
    \ unrelated variables when their slots are not cleared)"

let run_merging () =
  Util.header "Ablation: runtime dependence merging (§2.3.5 output sizes)";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let r = Profiler.Serial.profile prog in
        let s = Profiler.Depfile.measure r.deps in
        [ w.name;
          Printf.sprintf "%d B" s.Profiler.Depfile.merged_bytes;
          Printf.sprintf "%d KB" (s.Profiler.Depfile.unmerged_bytes / 1024);
          Printf.sprintf "%.0fx" s.Profiler.Depfile.reduction ])
      (sample_workloads ())
  in
  Util.table ~columns:[ "program"; "merged"; "unmerged"; "reduction" ] rows;
  print_endline
    "(paper: 6.1 GB -> 53 KB average for NAS, a ~1e5x reduction; ours scales\n\
    \ with the smaller inputs but shows the same orders-of-magnitude gap)"

let run () =
  run_shadow_backends ();
  run_lifetime ();
  run_merging ()
