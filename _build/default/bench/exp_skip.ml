(* §2.4 experiments:
   - Fig 2.12: slowdown with and without skipping repeatedly executed memory
     operations in loops;
   - Table 2.7: how many of the dependence-leading memory instructions were
     skipped (reads / writes / total);
   - Fig 2.13: distribution of skipped instructions by the dependence type
     they would have created, including FT's dummy-variable WAW anomaly. *)

module E = Profiler.Engine

let workloads () = Util.nas @ Util.starbench_seq

let run_slowdown () =
  Util.header "Fig 2.12: slowdown with (DiscoPoP+opt) and without skipping";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let t_native = Util.native_time prog in
        let t_plain = Util.med_time (fun () -> Profiler.Serial.profile prog) in
        let t_skip =
          Util.med_time (fun () -> Profiler.Serial.profile ~skip:true prog)
        in
        [ w.name;
          Printf.sprintf "%.1f" (t_plain /. t_native);
          Printf.sprintf "%.1f" (t_skip /. t_native);
          Util.pct ((t_plain -. t_skip) /. t_plain) ])
      (workloads ())
  in
  Util.table ~columns:[ "program"; "DiscoPoP"; "DiscoPoP+opt"; "reduction" ] rows;
  print_endline
    "(paper: 31.1%-52.0% reduction, 41.3% on average; FT highest, rot-cc lowest)"

let run_stats () =
  Util.header
    "Table 2.7: dependence-leading memory instructions skipped by the profiler";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let r = Profiler.Serial.profile ~skip:true prog in
        let s = r.skip_stats in
        let pct a b = if b = 0 then "-" else Util.pct (float_of_int a /. float_of_int b) in
        [ w.name;
          string_of_int s.E.reads_total;
          string_of_int s.E.reads_skipped;
          pct s.E.reads_skipped s.E.reads_total;
          string_of_int s.E.writes_total;
          string_of_int s.E.writes_skipped;
          pct s.E.writes_skipped s.E.writes_total;
          pct (s.E.reads_skipped + s.E.writes_skipped)
            (s.E.reads_total + s.E.writes_total) ])
      (workloads ())
  in
  Util.table
    ~columns:
      [ "program"; "reads"; "r-skip"; "r%"; "writes"; "w-skip"; "w%"; "total%" ]
    rows;
  print_endline
    "(paper: 82.08% of reads, 66.56% of writes, 80.06% total skipped on average)"

let run_distribution () =
  Util.header
    "Fig 2.13: skipped instructions by the dependence type they would create";
  let rows =
    List.map
      (fun (w : Workloads.Registry.t) ->
        let prog = Workloads.Registry.program w in
        let r = Profiler.Serial.profile ~skip:true prog in
        let s = r.skip_stats in
        let total = s.E.skipped_raw + s.E.skipped_war + s.E.skipped_waw in
        let pct x =
          if total = 0 then "-" else Util.pct (float_of_int x /. float_of_int total)
        in
        [ w.name; pct s.E.skipped_raw; pct s.E.skipped_war; pct s.E.skipped_waw ])
      (workloads ())
  in
  Util.table ~columns:[ "program"; "RAW_skip"; "WAR_skip"; "WAW_skip" ] rows;
  print_endline
    "(paper: RAW dominates everywhere; WAW near zero except FT, whose unused\n\
    \ `dummy` variable manufactures WAW dependences — Fig 2.14)"
