(* Task-parallelism experiments:
   - Table 4.5: parallelism found in gzip/bzip2-style block compressors,
     with the headline opportunity;
   - Table 4.6: SPMD-style tasks in the BOTS programs (paper: correct
     decisions on all 20 hot spots);
   - Table 4.7: MPMD-style tasks in the pipeline applications. *)

module R = Workloads.Registry
module S = Discovery.Suggestion

let suggestion_counts (report : S.report) =
  List.fold_left
    (fun (d, x, sp, mp) (s : S.t) ->
      match s.S.kind with
      | S.Sdoall _ -> (d + 1, x, sp, mp)
      | S.Sdoacross _ -> (d, x + 1, sp, mp)
      | S.Sspmd _ -> (d, x, sp + 1, mp)
      | S.Smpmd _ -> (d, x, sp, mp + 1))
    (0, 0, 0, 0) report.S.suggestions

let headline (report : S.report) =
  match report.S.suggestions with
  | top :: _ -> S.kind_to_string top.S.kind
  | [] -> "(none)"

let run_gzip_bzip2 () =
  Util.header "Table 4.5: gzip / bzip2 parallelism discovery";
  List.iter
    (fun name ->
      let w = List.find (fun w -> w.R.name = name) Workloads.Apps.all in
      let report = S.analyze (R.program w) in
      let d, x, sp, mp = suggestion_counts report in
      Printf.printf
        "%-6s suggestions: %d DOALL, %d DOACROSS, %d SPMD, %d MPMD\n" name d x
        sp mp;
      Printf.printf "       top suggestion: %s\n" (headline report))
    [ "gzip"; "bzip2" ];
  print_endline
    "(paper: gzip's key opportunity is compressing blocks in parallel — the\n\
    \ pigz design; bzip2's the same per-block transform — the pbzip2 design)"

let run_bots () =
  Util.header "Table 4.6: SPMD-style tasks in BOTS";
  let found = ref 0 and expected = ref 0 in
  let rows =
    List.map
      (fun (w : R.t) ->
        let report = S.analyze (R.program w) in
        let cells =
          List.map
            (fun e ->
              incr expected;
              let ok =
                match e with
                | R.Sforkjoin f ->
                    List.exists
                      (fun (s : S.t) ->
                        match s.S.kind with
                        | S.Sspmd { s_kind = `Recursive_forkjoin g; _ } -> g = f
                        | _ -> false)
                      report.S.suggestions
                | R.Staskloop ->
                    List.exists
                      (fun (s : S.t) ->
                        match s.S.kind with
                        | S.Sspmd { s_kind = `Loop_tasks _; _ } -> true
                        | _ -> false)
                      report.S.suggestions
                | R.Smpmd k ->
                    List.exists
                      (fun (s : S.t) ->
                        match s.S.kind with
                        | S.Smpmd m -> m.Discovery.Tasks.m_width >= k
                        | _ -> false)
                      report.S.suggestions
                | R.Spipeline k ->
                    List.exists
                      (fun (s : S.t) ->
                        match s.S.kind with
                        | S.Smpmd m -> List.length m.Discovery.Tasks.m_stages >= k
                        | _ -> false)
                      report.S.suggestions
              in
              if ok then incr found;
              Printf.sprintf "%s:%s"
                (match e with
                | R.Sforkjoin f -> "forkjoin(" ^ f ^ ")"
                | R.Staskloop -> "taskloop"
                | R.Smpmd k -> Printf.sprintf "mpmd>=%d" k
                | R.Spipeline k -> Printf.sprintf "pipeline>=%d" k)
                (if ok then "found" else "MISSED"))
            w.R.expected_tasks
        in
        [ w.R.name; String.concat ", " cells ])
      Workloads.Bots.all
  in
  Util.table ~columns:[ "program"; "hot-spot decisions" ] rows;
  Printf.printf "correct decisions: %d/%d\n" !found !expected;
  print_endline "(paper: correct parallelization decisions on all 20 hot spots)"

let run_mpmd () =
  Util.header "Table 4.7: MPMD-style tasks in pipeline applications";
  let apps =
    [ "vorbis"; "facedetect"; "dedup"; "gzip"; "bzip2"; "ferret";
      "blackscholes"; "swaptions"; "fluidanimate" ]
  in
  let rows =
    List.map
      (fun name ->
        let w =
          List.find (fun w -> w.R.name = name)
            (Workloads.Apps.all @ Workloads.Parsec.all)
        in
        let report = S.analyze (R.program w) in
        let mpmds =
          List.filter_map
            (fun (s : S.t) ->
              match s.S.kind with S.Smpmd m -> Some m | _ -> None)
            report.S.suggestions
        in
        match mpmds with
        | [] -> [ name; "0"; "-"; "-"; "-" ]
        | best :: _ ->
            [ name;
              string_of_int (List.length mpmds);
              (match best.Discovery.Tasks.m_shape with
              | Discovery.Tasks.Taskgraph -> "task graph"
              | Discovery.Tasks.Pipeline -> "pipeline");
              string_of_int (List.length best.Discovery.Tasks.m_stages);
              string_of_int best.Discovery.Tasks.m_width ])
      apps
  in
  Util.table ~columns:[ "program"; "MPMD findings"; "shape"; "stages"; "width" ] rows;
  print_endline
    "(paper: PARSEC/libVorbis pipelines found as stage graphs; FaceDetection\n\
    \ yields the Fig 4.10 task graph with independent filter stages)"
