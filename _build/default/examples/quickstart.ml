(* Quickstart: profile a small program and read the dependence report.

   Run with:  dune exec examples/quickstart.exe

   The program is the paper's Figure 2.7 loop. The profiler output below uses
   the paper's text format (Fig. 2.1): BGN/END control records and NOM lines
   that aggregate the dependences whose sink is that source line. *)

let () =
  let program =
    let open Mil.Builder in
    number
      (program ~entry:"main" "quickstart"
         [ func "main"
             [ decl "k" (i 100);
               decl "sum" (i 0);
               while_ (v "k" > i 0)
                 [ set "sum" (v "sum" + v "k" * i 2);
                   set "k" (v "k" - i 1) ] ] ])
  in
  print_endline "--- source ---";
  print_string (Mil.Pretty.render_program program);

  (* Phase 1: instrument and execute, collecting data dependences. *)
  let result = Profiler.Serial.profile program in
  let with_skip = Profiler.Serial.profile ~skip:true program in
  Printf.printf "\n--- profile ---\n";
  Printf.printf "dynamic memory instructions : %d\n" result.accesses;
  Printf.printf "distinct dependences        : %d (merging factor %.1fx)\n"
    (Profiler.Dep.Set_.cardinal result.deps)
    result.merging_factor;
  Printf.printf "instructions skipped (§2.4) : %d reads, %d writes\n"
    with_skip.skip_stats.Profiler.Engine.reads_skipped
    with_skip.skip_stats.Profiler.Engine.writes_skipped;

  print_endline "\n--- dependences (paper format, Fig. 2.1) ---";
  print_string (Profiler.Serial.report result);

  print_endline "\n--- program execution tree (§2.3.6) ---";
  print_string (Profiler.Pet.to_string result.pet)
