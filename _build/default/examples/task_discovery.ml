(* Task discovery: find SPMD fork-join tasks in a recursive program and the
   MPMD task graph of a multi-stage application (Fig. 4.10), and render the
   CU graph the detection is based on.

   Run with:  dune exec examples/task_discovery.exe *)

let analyze_and_print name (w : Workloads.Registry.t) =
  Printf.printf "=== %s ===\n" name;
  let prog = Workloads.Registry.program w in
  let report = Discovery.Suggestion.analyze prog in
  print_string (Discovery.Suggestion.render report);
  print_newline ()

let () =
  let fib = List.find (fun (w : Workloads.Registry.t) -> w.name = "fib") Workloads.Bots.all in
  let sort = List.find (fun (w : Workloads.Registry.t) -> w.name = "sort") Workloads.Bots.all in
  let facedetect =
    List.find (fun (w : Workloads.Registry.t) -> w.name = "facedetect") Workloads.Apps.all
  in
  analyze_and_print "fib (recursive fork-join, Fig 4.3)" fib;
  analyze_and_print "merge sort (divide and conquer)" sort;
  analyze_and_print "face detection (MPMD task graph, Fig 4.10)" facedetect;

  (* Show the CU graph behind the facedetect MPMD finding. *)
  let prog = Workloads.Registry.program facedetect in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let profile = Profiler.Serial.profile prog in
  let main_region = Mil.Static.func_region st "main" in
  let cus = Cunit.Top_down.cus_of_region cures main_region in
  let g = Cunit.Graph.build ~cus ~deps:profile.Profiler.Serial.deps () in
  print_endline "--- CU graph of facedetect main (graphviz) ---";
  print_string (Cunit.Graph.to_dot g)
