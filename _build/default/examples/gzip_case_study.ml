(* Case study: parallelising a gzip-style block compressor (§4.4.2,
   Table 4.5) — the full DiscoPoP narrative on one program:

   1. profile the dependences,
   2. construct computational units,
   3. discover and rank the parallelism,
   4. model what the top suggestion buys (the pigz design).

   Run with:  dune exec examples/gzip_case_study.exe *)

module R = Workloads.Registry
module L = Discovery.Loops

let () =
  let w = List.find (fun (w : R.t) -> w.R.name = "gzip") Workloads.Apps.all in
  let prog = R.program w in

  print_endline "=== 1. the program ===";
  print_string (Mil.Pretty.render_program prog);

  print_endline "\n=== 2. profile ===";
  let report = Discovery.Suggestion.analyze prog in
  let profile = report.Discovery.Suggestion.profile in
  Printf.printf "%d dynamic memory instructions -> %d merged dependences\n"
    profile.accesses
    (Profiler.Dep.Set_.cardinal profile.deps);

  print_endline "\n=== 3. computational units of main ===";
  let main_region =
    Mil.Static.func_region report.Discovery.Suggestion.static "main"
  in
  List.iter
    (fun cu -> Printf.printf "  %s\n" (Cunit.Cu.to_string cu))
    (Cunit.Top_down.cus_of_region report.Discovery.Suggestion.cures main_region);

  print_endline "\n=== 4. ranked suggestions ===";
  print_string (Discovery.Suggestion.render report);

  print_endline "\n=== 5. what the top suggestion buys ===";
  (match report.Discovery.Suggestion.suggestions with
  | { Discovery.Suggestion.kind = Discovery.Suggestion.Sdoall a; _ } :: _ ->
      let total = Profiler.Pet.total_instructions profile.pet in
      List.iter
        (fun p ->
          let sp =
            Discovery.Schedule.doall_speedup ~processors:p
              ~iterations:a.L.iterations ~loop_instructions:a.L.instructions
              ~total_instructions:total ()
          in
          Printf.printf "  %2d threads -> modeled %.2fx\n" p sp)
        [ 2; 4; 8 ];
      Printf.printf
        "  compressing the %d blocks in parallel with a reduction over the\n\
        \  output cursor — the design pigz ships\n"
        a.L.iterations
  | _ -> print_endline "  (expected the block loop on top)")
