examples/task_discovery.mli:
