examples/quickstart.ml: Mil Printf Profiler
