examples/signature_sizing.mli:
