examples/loop_advisor.mli:
