examples/signature_sizing.ml: Hashtbl List Mil Printf Profiler Sigmem Trace Workloads
