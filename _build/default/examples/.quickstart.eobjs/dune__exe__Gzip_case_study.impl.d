examples/gzip_case_study.ml: Cunit Discovery List Mil Printf Profiler Workloads
