examples/task_discovery.ml: Cunit Discovery List Mil Printf Profiler Workloads
