examples/race_finder.ml: Apps List Mil Printf Profiler Workloads
