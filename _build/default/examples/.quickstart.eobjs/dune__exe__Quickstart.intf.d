examples/quickstart.mli:
