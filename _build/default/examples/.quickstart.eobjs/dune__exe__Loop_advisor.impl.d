examples/loop_advisor.ml: Array Discovery Domain List Printf Unix Workloads
