examples/gzip_case_study.mli:
