examples/race_finder.mli:
