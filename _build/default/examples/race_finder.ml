(* Race finder: profile a multi-threaded target program (§2.3.4) and report
   timestamp-reversal race candidates plus the thread-to-thread communication
   matrix (§5.3).

   Run with:  dune exec examples/race_finder.exe *)

let buggy_counter =
  (* Two threads update a shared counter; one path forgets the lock. *)
  let open Mil.Builder in
  number
    (program ~entry:"main" "buggy_counter" ~globals:[ gscalar "hits" 0 ]
       [ func "main"
           [ par
               [ (* correct: locked update *)
                 [ for_ "k" (i 0) (i 50)
                     [ lock "m"; set "hits" (v "hits" + i 1); unlock "m" ] ];
                 (* buggy: unlocked update *)
                 [ for_ "k" (i 0) (i 50) [ set "hits" (v "hits" + i 1) ] ] ];
             return (v "hits") ] ])

let () =
  print_string (Mil.Pretty.render_program buggy_counter);
  (* Scrambling unlocked pushes models the access/push atomicity violation
     the paper exploits to expose unordered accesses. *)
  let found = ref [] in
  List.iter
    (fun seed ->
      let r = Profiler.Serial.profile ~scramble_unlocked:true ~seed buggy_counter in
      List.iter
        (fun race -> if not (List.mem race !found) then found := race :: !found)
        r.Profiler.Serial.races)
    [ 1; 2; 3; 4; 5 ];
  Printf.printf "\npotential data races (var, line-a, line-b):\n";
  List.iter
    (fun (var, l1, l2) -> Printf.printf "  %s between lines %d and %d\n" var l1 l2)
    (List.sort compare !found);
  if !found = [] then print_endline "  (none found on these schedules)";

  (* Communication matrix of a correctly locked parallel workload. *)
  let kmeans =
    List.find
      (fun (w : Workloads.Registry.t) -> w.Workloads.Registry.name = "kmeans-par")
      Workloads.Starbench.all
  in
  let r =
    Profiler.Serial.profile (Workloads.Registry.program ~size:120 kmeans)
  in
  let m = Apps.Comm.of_deps r.Profiler.Serial.deps in
  Printf.printf "\nkmeans-par communication pattern: %s\n"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify m));
  print_string (Apps.Comm.render m)
