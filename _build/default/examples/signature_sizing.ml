(* Signature sizing: use Equation 2.2 to pick a signature size for a target
   accuracy, then verify the prediction against measurement — the §2.5.1
   methodology, interactively.

   Run with:  dune exec examples/signature_sizing.exe *)

module Dep = Profiler.Dep

let () =
  let w =
    List.find
      (fun (w : Workloads.Registry.t) -> w.Workloads.Registry.name = "c-ray")
      Workloads.Starbench.all
  in
  let prog = Workloads.Registry.program w in

  (* 1. count distinct addresses with a cheap pre-pass *)
  let seen = Hashtbl.create 4096 in
  let _ =
    Mil.Interp.run
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Access a -> Hashtbl.replace seen a.Trace.Event.addr ()
        | Trace.Event.Region _ -> ())
      prog
  in
  let addresses = Hashtbl.length seen in
  Printf.printf "c-ray touches %d distinct addresses\n\n" addresses;

  (* 2. Eq. 2.2: predicted slot-collision probability per signature size *)
  print_endline "slots      predicted P(collision)   measured FPR (weighted)";
  let truth = (Profiler.Serial.profile ~shadow:Profiler.Engine.Perfect prog).deps in
  List.iter
    (fun slots ->
      let predicted = Sigmem.Shadow.predicted_fpr ~slots ~addresses in
      let r =
        Profiler.Serial.profile ~shadow:(Profiler.Engine.Signature slots) prog
      in
      let fpr, _ = Dep.Set_.accuracy_weighted ~truth ~got:r.deps in
      Printf.printf "%-10d %-24.4f %.4f\n" slots predicted fpr)
    [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000 ];

  (* 3. pick the smallest size whose prediction is under 1% *)
  let rec pick slots =
    if Sigmem.Shadow.predicted_fpr ~slots ~addresses < 0.01 then slots
    else pick (2 * slots)
  in
  let chosen = pick 1_024 in
  Printf.printf
    "\nfor <1%% predicted collisions, Eq. 2.2 suggests %d slots (%d KB)\n"
    chosen (chosen * 2 * 8 / 1024);
  let r =
    Profiler.Serial.profile ~shadow:(Profiler.Engine.Signature chosen) prog
  in
  let fpr, fnr = Dep.Set_.accuracy_weighted ~truth ~got:r.deps in
  Printf.printf "measured at that size: FPR %.4f, FNR %.4f\n" fpr fnr;
  print_endline
    "(measurements beat the prediction: Eq. 2.2 assumes all addresses stay\n\
    \ live, while variable-lifetime analysis keeps clearing dead slots)"
