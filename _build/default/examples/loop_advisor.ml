(* Loop advisor: run the full DiscoPoP pipeline (profile -> CUs -> discovery
   -> ranking) on a realistic workload and print the ranked suggestions, then
   actually apply the top DOALL suggestion with OCaml domains and measure the
   resulting speedup — the experiment behind Table 4.2.

   Run with:  dune exec examples/loop_advisor.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The histogram workload the suggestions refer to: bucketing a hash of each
   element, so each iteration carries real work. *)
let size = 4_000_000

let native_fill data =
  Array.iteri (fun k _ -> data.(k) <- (k * 1103515245 + 12345) land 0xFFFFF) data

let bucket_of v =
  (* a few rounds of mixing per element *)
  let h = ref v in
  for _ = 1 to 16 do
    h := (!h lxor (!h lsr 7)) * 0x9E3779B1 land 0x3FFFFFFF
  done;
  !h land 31

let sequential_histogram data hist =
  Array.iter
    (fun v ->
      let b = bucket_of v in
      hist.(b) <- hist.(b) + 1)
    data

(* The parallel version the DOALL(reduction) suggestion prescribes:
   privatised histograms per domain, combined by reduction. *)
let parallel_histogram ~domains data hist =
  let n = Array.length data in
  let chunk = (n + domains - 1) / domains in
  let parts =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let local = Array.make (Array.length hist) 0 in
            let lo = d * chunk and hi = min n ((d + 1) * chunk) in
            for k = lo to hi - 1 do
              let b = bucket_of data.(k) in
              local.(b) <- local.(b) + 1
            done;
            local))
  in
  List.iter
    (fun dom ->
      let local = Domain.join dom in
      Array.iteri (fun b v -> hist.(b) <- hist.(b) + v) local)
    parts

let () =
  (* 1. analyse the MIL model of the workload *)
  let w =
    List.find
      (fun (w : Workloads.Registry.t) -> w.Workloads.Registry.name = "histogram")
      Workloads.Textbook.all
  in
  let report = Discovery.Suggestion.analyze (Workloads.Registry.program w) in
  print_endline "--- ranked suggestions ---";
  print_string (Discovery.Suggestion.render report);

  (* 2. apply the top suggestion natively and measure *)
  print_endline "\n--- applying the DOALL(reduction) suggestion natively ---";
  let data = Array.make size 0 in
  native_fill data;
  let hist_seq = Array.make 32 0 in
  let (), t_seq = time (fun () -> sequential_histogram data hist_seq) in
  List.iter
    (fun domains ->
      let hist_par = Array.make 32 0 in
      let (), t_par =
        time (fun () -> parallel_histogram ~domains data hist_par)
      in
      assert (hist_par = hist_seq);
      Printf.printf "threads=%d  sequential %.3fs  parallel %.3fs  speedup %.2fx\n"
        domains t_seq t_par (t_seq /. t_par))
    [ 2; 4 ];
  Printf.printf
    "(wall-clock speedup is bounded by the %d core(s) of this machine)\n"
    (Domain.recommended_domain_count ())
