(* Tests for the Chapter-5 applications: feature extraction, AdaBoost,
   STM transaction analysis, and communication-pattern detection. *)

module F = Apps.Features
module A = Apps.Adaboost

let synthetic_samples =
  (* A linearly separable toy set: positive iff feature 2 (carried_raw) is
     zero. *)
  List.init 40 (fun k ->
      let carried = if k mod 2 = 0 then 0.0 else float_of_int (1 + (k mod 3)) in
      let x = Array.make F.dim 0.0 in
      x.(0) <- float_of_int (10 + k);
      x.(2) <- carried;
      x.(9) <- float_of_int (k mod 5) /. 5.0;
      { F.x; y = carried = 0.0; tag = "syn" ^ string_of_int k })

let test_adaboost_learns_separable () =
  let m = A.train synthetic_samples in
  let sc = A.evaluate m synthetic_samples in
  Alcotest.(check (float 1e-9)) "perfect on separable data" 1.0 sc.A.accuracy

let test_adaboost_importance () =
  let m = A.train synthetic_samples in
  let imp = A.feature_importance m in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 imp in
  Alcotest.(check (float 1e-6)) "importances sum to 1" 1.0 total;
  match imp with
  | (top, _) :: _ ->
      Alcotest.(check string) "carried_raw is the decisive feature" "carried_raw" top
  | [] -> Alcotest.fail "no importance"

let test_feature_corpus () =
  let corpus = F.corpus Workloads.Textbook.all in
  Alcotest.(check bool) "corpus non-trivial" true (List.length corpus > 15);
  List.iter
    (fun s ->
      Alcotest.(check int) "feature dimension" F.dim (Array.length s.F.x);
      Array.iter
        (fun v ->
          Alcotest.(check bool) "finite features" true
            (Float.is_finite v))
        s.F.x)
    corpus

let test_classifier_on_real_corpus () =
  let corpus =
    F.corpus (Workloads.Textbook.all @ Workloads.Nas.all)
  in
  let train, test = A.split corpus in
  let m = A.train train in
  let sc = A.evaluate m test in
  Alcotest.(check bool)
    (Printf.sprintf "held-out accuracy %.2f reasonable" sc.A.accuracy)
    true (sc.A.accuracy > 0.6)

let test_stm_counts () =
  (* EP has a single hot reduction loop -> at least one transaction; a plain
     DOALL-only program has none. *)
  let ep = List.find (fun (w : Workloads.Registry.t) -> w.name = "EP") Workloads.Nas.all in
  let report = Discovery.Suggestion.analyze (Workloads.Registry.program ep) in
  let stm = Apps.Stm.analyze report in
  Alcotest.(check bool) "EP has transactions" true (Apps.Stm.count stm >= 1);
  let pure =
    let open Mil.Builder in
    number
      (program ~entry:"main" "t" ~globals:[ garray "a" 32 ]
         [ func "main" [ for_ "k" (i 0) (i 32) [ seti "a" (v "k") (v "k") ] ] ])
  in
  let report2 = Discovery.Suggestion.analyze pure in
  Alcotest.(check int) "pure DOALL has none" 0
    (Apps.Stm.count (Apps.Stm.analyze report2))

let test_comm_matrix () =
  (* thread t+1 reads what thread t wrote (handoff through stage buffers):
     neighbour-ish pattern; here all threads read thread 0's data. *)
  let p =
    let open Mil.Builder in
    Helpers.prog_of_main ~globals:[ garray "buf" 16 ]
      [ for_ "k" (i 0) (i 16) [ seti "buf" (v "k") (v "k") ];
        par
          (List.init 3 (fun t ->
               [ decl "s" (i 0);
                 for_ "k" (i 0) (i 16) [ set "s" (v "s" + "buf".%[v "k"]) ];
                 seti "buf" (i t) (v "s") ])) ]
  in
  let r = Helpers.profile p in
  let m = Apps.Comm.of_deps r.Profiler.Serial.deps in
  Alcotest.(check bool) "several threads" true (m.Apps.Comm.threads >= 4);
  (* all workers consume main-thread data: master-worker *)
  Alcotest.(check string) "pattern" "master-worker"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify m));
  let rendered = Apps.Comm.render m in
  Alcotest.(check bool) "renders" true (Astring_contains.contains rendered "producer")

let test_comm_classify_synthetic () =
  let mk counts = { Apps.Comm.threads = Array.length counts; counts } in
  let uncoupled = mk [| [| 5; 0 |]; [| 0; 5 |] |] in
  Alcotest.(check string) "uncoupled" "uncoupled"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify uncoupled));
  let master = mk [| [| 0; 9; 9 |]; [| 9; 0; 0 |]; [| 9; 0; 0 |] |] in
  Alcotest.(check string) "master-worker" "master-worker"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify master));
  let neighbour =
    mk [| [| 0; 9; 0; 0 |]; [| 9; 0; 9; 0 |]; [| 0; 9; 0; 9 |]; [| 0; 0; 9; 0 |] |]
  in
  Alcotest.(check string) "neighbour" "neighbour"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify neighbour));
  let a2a = mk (Array.make_matrix 4 4 3) in
  Alcotest.(check string) "all-to-all" "all-to-all"
    (Apps.Comm.pattern_to_string (Apps.Comm.classify a2a))

let test_splash2x_patterns () =
  let pattern name =
    let w =
      List.find
        (fun (w : Workloads.Registry.t) -> w.name = name)
        Workloads.Splash2x.all
    in
    let r = Profiler.Serial.profile (Workloads.Registry.program w) in
    Apps.Comm.pattern_to_string
      (Apps.Comm.classify (Apps.Comm.of_deps r.Profiler.Serial.deps))
  in
  Alcotest.(check string) "ocean is a neighbour band" "neighbour" (pattern "ocean");
  Alcotest.(check string) "water-spatial too" "neighbour" (pattern "water-spatial");
  Alcotest.(check string) "barnes is master-worker" "master-worker" (pattern "barnes");
  Alcotest.(check string) "raytrace too" "master-worker" (pattern "raytrace");
  Alcotest.(check string) "water-nsq is all-to-all" "all-to-all" (pattern "water-nsq")

let tests =
  [ Alcotest.test_case "adaboost separable" `Quick test_adaboost_learns_separable;
    Alcotest.test_case "adaboost importance" `Quick test_adaboost_importance;
    Alcotest.test_case "feature corpus" `Slow test_feature_corpus;
    Alcotest.test_case "classifier on real corpus" `Slow
      test_classifier_on_real_corpus;
    Alcotest.test_case "STM transaction counts" `Quick test_stm_counts;
    Alcotest.test_case "comm matrix from deps" `Quick test_comm_matrix;
    Alcotest.test_case "comm classification" `Quick test_comm_classify_synthetic;
    Alcotest.test_case "splash2x patterns (Fig 5.1)" `Slow test_splash2x_patterns ]
