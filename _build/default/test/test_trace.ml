(* Tests for the trace layer: loop-carrier computation and chunks. *)

module Event = Trace.Event
module Chunk = Trace.Chunk

let frame loop_line inst iter = { Event.loop_line; inst; iter }

let carrier_line src snk =
  match Event.carrier ~src ~snk with
  | Some f -> Some f.Event.loop_line
  | None -> None

let test_carrier_basic () =
  (* same iteration of the same loop instance: not carried *)
  Alcotest.(check (option int))
    "same iteration" None
    (carrier_line [ frame 5 1 3 ] [ frame 5 1 3 ]);
  (* different iterations: carried at that loop *)
  Alcotest.(check (option int))
    "different iterations" (Some 5)
    (carrier_line [ frame 5 1 3 ] [ frame 5 1 4 ]);
  (* no common loops: not carried *)
  Alcotest.(check (option int))
    "different instances" None
    (carrier_line [ frame 5 1 3 ] [ frame 5 2 0 ]);
  Alcotest.(check (option int)) "empty stacks" None (carrier_line [] [])

let test_carrier_nested () =
  let outer = frame 2 1 in
  let inner i1 it = { Event.loop_line = 4; inst = i1; iter = it } in
  (* same outer iteration, different inner iterations: carried at inner *)
  Alcotest.(check (option int))
    "carried at inner" (Some 4)
    (carrier_line [ outer 0; inner 7 1 ] [ outer 0; inner 7 2 ]);
  (* different outer iterations (inner instances differ): carried at outer *)
  Alcotest.(check (option int))
    "carried at outer" (Some 2)
    (carrier_line [ outer 0; inner 7 1 ] [ outer 1; inner 8 0 ]);
  (* source outside the loop, sink inside: not loop-carried *)
  Alcotest.(check (option int))
    "entry from outside" None
    (carrier_line [] [ outer 0; inner 7 0 ])

let test_chunks () =
  let c = Chunk.create ~capacity:4 ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Chunk.is_empty c);
  Chunk.push c 10;
  Chunk.push c 20;
  Alcotest.(check int) "length" 2 (Chunk.length c);
  Alcotest.(check int) "get" 20 (Chunk.get c 1);
  Chunk.push c 30;
  Chunk.push c 40;
  Alcotest.(check bool) "full" true (Chunk.is_full c);
  let sum = ref 0 in
  Chunk.iter (fun x -> sum := !sum + x) c;
  Alcotest.(check int) "iter" 100 !sum;
  Chunk.reset c;
  Alcotest.(check bool) "reset empties" true (Chunk.is_empty c);
  Alcotest.(check int) "capacity preserved" 4 (Chunk.capacity c)

let qcheck_carrier_symmetry =
  let open QCheck in
  let frame_gen =
    Gen.(
      map3
        (fun l inst iter -> { Event.loop_line = 1 + (l mod 4); inst = inst mod 3; iter = iter mod 4 })
        (int_bound 10) (int_bound 10) (int_bound 10))
  in
  let stack_gen = Gen.(list_size (int_range 0 3) frame_gen) in
  Test.make ~name:"carrier is at a common loop with differing iterations"
    ~count:300
    (make Gen.(pair stack_gen stack_gen))
    (fun (src, snk) ->
      match Event.carrier ~src ~snk with
      | None -> true
      | Some f ->
          (* The carrying frame must appear in both stacks with the same
             instance and differing iterations. *)
          let find st =
            List.find_opt
              (fun g -> g.Event.loop_line = f.Event.loop_line && g.Event.inst = f.Event.inst)
              st
          in
          (match (find src, find snk) with
          | Some a, Some b -> a.Event.iter <> b.Event.iter
          | _ -> false))

let tests =
  [ Alcotest.test_case "carrier basics" `Quick test_carrier_basic;
    Alcotest.test_case "carrier nesting" `Quick test_carrier_nested;
    Alcotest.test_case "chunks" `Quick test_chunks;
    QCheck_alcotest.to_alcotest qcheck_carrier_symmetry ]
