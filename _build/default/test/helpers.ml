(* Shared test helpers: tiny MIL programs, dependence-set assertions, and a
   QCheck generator of random (memory-safe) MIL programs used by the
   profiler-equivalence property tests. *)

open Mil
module Dep = Profiler.Dep

let prog_of_main ?(globals = []) body =
  Builder.number
    (Builder.program ~globals ~entry:"main" "test" [ Builder.func "main" body ])

(* The paper's Figure 2.7 loop. *)
let fig27 =
  let open Builder in
  prog_of_main
    [ decl "k" (i 100);
      decl "sum" (i 0);
      while_ (v "k" > i 0)
        [ set "sum" (v "sum" + v "k" * i 2); set "k" (v "k" - i 1) ] ]

(* The paper's Figure 2.8 loop: w x; r x; r x; w x. *)
let fig28 =
  let open Builder in
  prog_of_main ~globals:[ Builder.gscalar "x" 0 ]
    [ for_ "it" (i 0) (i 50)
        [ set "x" (v "it");
          decl "a" (v "x");
          decl "b" (v "x" + i 1);
          set "x" (v "a" + v "b") ] ]

(* Figure 3.4: single-CU loop body. *)
let fig34 =
  let open Builder in
  prog_of_main
    [ decl "x" (i 3);
      for_ "it" (i 0) (i 20)
        [ decl "a" (v "x" + call "rand" [ i 10 ] / v "x");
          decl "b" (v "x" - call "rand" [ i 10 ] / v "x");
          set "x" (v "a" + v "b") ] ]

let profile ?shadow ?skip ?seed ?scramble_unlocked p =
  Profiler.Serial.profile ?shadow ?skip ?seed ?scramble_unlocked p

let dep_strings (deps : Dep.Set_.t) : string list =
  Dep.Set_.to_list deps
  |> List.map (fun (d, _) ->
         Printf.sprintf "%d<-%s" d.Dep.sink_line (Dep.to_string d))

let check_same_deps msg (a : Dep.Set_.t) (b : Dep.Set_.t) =
  let fpr, fnr = Dep.Set_.accuracy ~truth:a ~got:b in
  if fpr <> 0.0 || fnr <> 0.0 then begin
    let only l1 l2 = List.filter (fun x -> not (List.mem x l2)) l1 in
    let sa = dep_strings a and sb = dep_strings b in
    Alcotest.failf "%s: fpr=%.3f fnr=%.3f\n missing: %s\n extra: %s" msg fpr fnr
      (String.concat " " (only sa sb))
      (String.concat " " (only sb sa))
  end

(* ---- random program generator ----

   Programs are memory-safe by construction: array indices are always taken
   modulo the (constant) array length; loop bounds are small constants;
   a bounded set of scalar and array names is used so that dependences
   actually collide. *)

module Gen = struct
  open QCheck.Gen

  let scalars = [| "s0"; "s1"; "s2" |]
  let arrays = [| "a0"; "a1" |]
  let arr_len = 8

  let scalar = map (fun k -> scalars.(k mod Array.length scalars)) (int_bound 10)
  let array_ = map (fun k -> arrays.(k mod Array.length arrays)) (int_bound 10)

  let rec expr depth =
    let open Ast in
    if depth = 0 then
      oneof
        [ map (fun n -> Int (n - 8)) (int_bound 16);
          map (fun x -> Var x) scalar;
          map2 (fun a k -> Idx (a, Bin (Mod, Call ("abs", [ Int k ]), Int arr_len)))
            array_ (int_bound 100) ]
    else
      frequency
        [ (2, expr 0);
          (2,
           map3
             (fun op e1 e2 -> Bin (op, e1, e2))
             (oneofl [ Add; Sub; Mul; Min; Max; Bxor ])
             (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map2
             (fun a e ->
               Idx (a, Bin (Mod, Call ("abs", [ e ]), Int arr_len)))
             array_ (expr (depth - 1))) ]

  let assign =
    let open Ast in
    oneof
      [ map2 (fun x e -> { line = 0; node = Assign (Lvar x, e) }) scalar (expr 2);
        map3
          (fun a ie e ->
            { line = 0;
              node =
                Assign (Lidx (a, Bin (Mod, Call ("abs", [ ie ]), Int arr_len)), e) })
          array_ (expr 1) (expr 2) ]

  let rec stmt depth =
    let open Ast in
    if depth = 0 then assign
    else
      frequency
        [ (4, assign);
          (2,
           map2
             (fun c body -> { line = 0; node = If (c, body, []) })
             (expr 1)
             (list_size (int_range 1 3) (stmt (depth - 1))));
          (2,
           map2
             (fun n body ->
               { line = 0;
                 node =
                   For
                     { index = "q" ^ string_of_int depth;
                       lo = Int 0; hi = Int (2 + (n mod 6)); step = Int 1;
                       body } })
             (int_bound 10)
             (list_size (int_range 1 4) (stmt (depth - 1)))) ]

  let program_gen =
    map
      (fun stmts ->
        let open Builder in
        let globals =
          [ gscalar "s0" 1; gscalar "s1" 2; gscalar "s2" 3;
            garray "a0" arr_len; garray "a1" arr_len ]
        in
        number (program ~globals ~entry:"main" "rand_prog" [ func "main" stmts ]))
      (list_size (int_range 2 8) (stmt 2))

  let arbitrary_program =
    QCheck.make program_gen ~print:(fun p -> Pretty.render_program p)
end
