(* Tests for computational units: top-down construction (Algorithm 3), the
   special-variable rules of §3.2.5, CU graph edge admission (Table 3.1),
   SCC/chain contraction, the bottom-up variant, and re-convergence points. *)

open Mil
module B = Builder
module TD = Cunit.Top_down

let build p =
  let st = Static.analyze p in
  (st, TD.build st)

let loop_region st =
  List.hd (Static.loop_regions st)

(* Fig 3.4: locals inside the loop -> one CU. *)
let test_fig34_single_cu () =
  let st, res = build Helpers.fig34 in
  let l = loop_region st in
  Alcotest.(check int) "single CU" 1 (List.length (TD.cus_of_region res l.Static.id));
  Alcotest.(check bool) "region is one CU" true
    (TD.region_is_single_cu res l.Static.id);
  let cu = List.hd (TD.cus_of_region res l.Static.id) in
  Alcotest.(check bool) "reads x" true (Cunit.Cu.SS.mem "x" cu.Cunit.Cu.read_set);
  Alcotest.(check bool) "writes x" true (Cunit.Cu.SS.mem "x" cu.Cunit.Cu.write_set)

(* §3.2.4 variant: a and b declared outside -> two CUs. *)
let test_fig34b_two_cus () =
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl "x" (i 3);
        decl "a" (i 0);
        decl "b" (i 0);
        for_ "it" (i 0) (i 20)
          [ set "a" (v "x" + call "rand" [ i 10 ] / v "x");
            set "b" (v "x" - call "rand" [ i 10 ] / v "x");
            set "x" (v "a" + v "b") ] ]
  in
  let st, res = build p in
  let l = loop_region st in
  let cus = TD.cus_of_region res l.Static.id in
  Alcotest.(check int) "two CUs" 2 (List.length cus);
  (* first CU writes a,b; second reads a,b and writes x *)
  let by_line = List.sort (fun (a : Cunit.Cu.t) b -> compare a.Cunit.Cu.first_line b.Cunit.Cu.first_line) cus in
  match by_line with
  | [ c1; c2 ] ->
      Alcotest.(check bool) "CU1 writes a" true (Cunit.Cu.SS.mem "a" c1.Cunit.Cu.write_set);
      Alcotest.(check bool) "CU2 reads b" true (Cunit.Cu.SS.mem "b" c2.Cunit.Cu.read_set);
      Alcotest.(check bool) "CU2 writes x" true (Cunit.Cu.SS.mem "x" c2.Cunit.Cu.write_set)
  | _ -> Alcotest.fail "expected two CUs"

let test_function_params_and_ret () =
  let p =
    let open B in
    B.number
      (B.program ~entry:"main" "t"
         [ B.func "f" ~params:[ "a"; "b" ] [ return (v "a" + v "b") ];
           B.func "main" [ decl "r" (call "f" [ i 1; i 2 ]) ] ])
  in
  let st, res = build p in
  let rid = Static.func_region st "f" in
  let cus = TD.cus_of_region res rid in
  Alcotest.(check int) "function body is one CU" 1 (List.length cus);
  let cu = List.hd cus in
  Alcotest.(check bool) "params in read set" true
    (Cunit.Cu.SS.mem "a" cu.Cunit.Cu.read_set && Cunit.Cu.SS.mem "b" cu.Cunit.Cu.read_set);
  Alcotest.(check bool) "ret in write set" true
    (Cunit.Cu.SS.mem "ret" cu.Cunit.Cu.write_set)

let test_loop_index_rule () =
  (* Index not written in body: excluded from CU globals. *)
  let p1 =
    let open B in
    Helpers.prog_of_main ~globals:[ B.garray "a" 32 ]
      [ for_ "k" (i 0) (i 32) [ seti "a" (v "k") (v "k") ] ]
  in
  let st1, res1 = build p1 in
  let cu1 = List.hd (TD.cus_of_region res1 (loop_region st1).Static.id) in
  Alcotest.(check bool) "index excluded" false
    (Cunit.Cu.SS.mem "k" cu1.Cunit.Cu.read_set);
  (* Index written in body: it becomes global to the loop. *)
  let p2 =
    let open B in
    Helpers.prog_of_main ~globals:[ B.garray "a" 32 ]
      [ for_ "k" (i 0) (i 32)
          [ seti "a" (v "k") (v "k"); set "k" (v "k" + i 1) ] ]
  in
  let st2, res2 = build p2 in
  let cu2s = TD.cus_of_region res2 (loop_region st2).Static.id in
  let any_k =
    List.exists
      (fun (cu : Cunit.Cu.t) ->
        Cunit.Cu.SS.mem "k" cu.Cunit.Cu.read_set
        || Cunit.Cu.SS.mem "k" cu.Cunit.Cu.write_set)
      cu2s
  in
  Alcotest.(check bool) "written index included" true any_k

let test_nested_region_boundary () =
  (* A CU never crosses a control-region boundary: the inner loop is one item
     of the outer region and is decomposed separately. *)
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.garray "a" 8; B.gscalar "s" 0 ]
      [ for_ "k" (i 0) (i 8)
          [ seti "a" (v "k") (v "k");
            for_ "j" (i 0) (i 8) [ set "s" (v "s" + "a".%[v "j"]) ] ] ]
  in
  let st, res = build p in
  let outer =
    List.find
      (fun (r : Static.region) -> r.Static.first_line = 2)
      (Static.loop_regions st)
  in
  let inner =
    List.find
      (fun (r : Static.region) -> r.Static.first_line <> 2)
      (Static.loop_regions st)
  in
  Alcotest.(check bool) "outer has CUs" true (TD.cus_of_region res outer.Static.id <> []);
  Alcotest.(check bool) "inner has its own CUs" true
    (TD.cus_of_region res inner.Static.id <> []);
  (* every line belongs to at most one CU within a single region partition *)
  let lines = Hashtbl.create 16 in
  List.iter
    (fun (cu : Cunit.Cu.t) ->
      Cunit.Cu.SS.iter
        (fun l ->
          Alcotest.(check bool) "no line in two CUs of one region" false
            (Hashtbl.mem lines l);
          Hashtbl.replace lines l ())
        cu.Cunit.Cu.lines)
    (TD.cus_of_region res outer.Static.id)

(* ---- CU graph ---- *)

let graph_of p =
  let st, res = build p in
  let r = Helpers.profile p in
  let l = loop_region st in
  let cus = TD.cus_of_region res l.Static.id in
  Cunit.Graph.build ~cus ~deps:r.Profiler.Serial.deps ()

let test_graph_edge_rules () =
  let g = graph_of Helpers.fig34 in
  (* single CU: only RAW self-edges may exist (Table 3.1) *)
  List.iter
    (fun (e : Cunit.Graph.edge) ->
      if e.Cunit.Graph.e_from = e.Cunit.Graph.e_to then
        Alcotest.(check bool) "self edges are RAW only" true
          (e.Cunit.Graph.e_type = Profiler.Dep.Raw))
    g.Cunit.Graph.edges;
  Alcotest.(check bool) "self RAW present (iterative feedback)" true
    (Cunit.Graph.self_raw g <> [])

let test_graph_no_init_edges () =
  let g = graph_of Helpers.fig34 in
  Alcotest.(check bool) "INIT never becomes an edge" true
    (List.for_all
       (fun (e : Cunit.Graph.edge) -> e.Cunit.Graph.e_type <> Profiler.Dep.Init)
       g.Cunit.Graph.edges)

let test_graph_dot () =
  let g = graph_of Helpers.fig34 in
  let dot = Cunit.Graph.to_dot g in
  Alcotest.(check bool) "dot output" true
    (Astring_contains.contains dot "digraph cu_graph")

(* ---- SCC / chains ---- *)

let test_scc () =
  (* 0 -> 1 -> 2 -> 0 cycle plus 3 -> 0 *)
  let adj = [| [ 1 ]; [ 2 ]; [ 0 ]; [ 0 ] |] in
  let r = Cunit.Scc.run adj in
  Alcotest.(check int) "two components" 2 r.Cunit.Scc.count;
  Alcotest.(check bool) "cycle in one component" true
    (r.Cunit.Scc.component.(0) = r.Cunit.Scc.component.(1)
    && r.Cunit.Scc.component.(1) = r.Cunit.Scc.component.(2));
  Alcotest.(check bool) "3 alone" true
    (r.Cunit.Scc.component.(3) <> r.Cunit.Scc.component.(0));
  let cadj = Cunit.Scc.condense adj r in
  Alcotest.(check int) "condensation has an edge" 1
    (List.length cadj.(r.Cunit.Scc.component.(3)))

let test_chain_contraction () =
  (* linear chain 0 -> 1 -> 2 -> 3 contracts to one group *)
  let adj = [| [ 1 ]; [ 2 ]; [ 3 ]; [] |] in
  let groups = Cunit.Scc.contract_chains adj in
  let distinct = Array.to_list groups |> List.sort_uniq compare in
  Alcotest.(check int) "one group" 1 (List.length distinct);
  (* diamond 0 -> {1,2} -> 3 must NOT contract across the fork *)
  let adj2 = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let g2 = Cunit.Scc.contract_chains adj2 in
  let distinct2 = Array.to_list g2 |> List.sort_uniq compare in
  Alcotest.(check int) "diamond keeps 4 groups" 4 (List.length distinct2)

(* ---- bottom-up ---- *)

let test_bottom_up () =
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.gscalar "x" 0; B.gscalar "y" 0 ]
      [ set "x" (i 1);         (* line 2 *)
        decl "t" (v "x");      (* line 3: reads x *)
        set "x" (i 2);         (* line 4: WAR with line 3 -> merge *)
        set "y" (v "t") ]      (* line 5 *)
  in
  let r = Helpers.profile p in
  let bu = Cunit.Bottom_up.build ~lo:2 ~hi:5 r.Profiler.Serial.deps in
  (* lines 3 and 4 merged through the anti-dependence on x *)
  Alcotest.(check bool) "WAR merges lines" true
    (Hashtbl.find_opt bu.Cunit.Bottom_up.group_of_line 3
    = Hashtbl.find_opt bu.Cunit.Bottom_up.group_of_line 4);
  Alcotest.(check bool) "RAW edges recorded" true
    (bu.Cunit.Bottom_up.raw_edges <> [])

(* ---- re-convergence (§3.2.2) ---- *)

let test_reconvergence () =
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl "a" (i 1);                                        (* 2 *)
        if_ (v "a" > i 0) [ set "a" (i 2) ] [ set "a" (i 3) ]; (* 3,4,5 *)
        set "a" (i 4);                                         (* 6 *)
        while_ (v "a" > i 0) [ set "a" (v "a" - i 1) ];        (* 7,8 *)
        set "a" (i 9) ]                                        (* 9 *)
  in
  let tbl = Cunit.Reconv.analyze p in
  let t = Hashtbl.find tbl "main" in
  Alcotest.(check (option int)) "if reconverges after both arms" (Some 6)
    (Cunit.Reconv.reconvergence_point t 3);
  Alcotest.(check (option int)) "loop reconverges at exit" (Some 9)
    (Cunit.Reconv.reconvergence_point t 7);
  let dep = Cunit.Reconv.control_dependent_lines t 3 in
  Alcotest.(check (list int)) "branch arms control-dependent" [ 4; 5 ] dep

let test_reconvergence_if_only () =
  (* the §1.2.2 example: S2 control-dependent on S1, S3 not *)
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl "a" (i 1);                         (* 2 *)
        when_ (v "a" == i 1) [ set "a" (i 5) ]; (* 3, 4 *)
        set "a" (i 7) ]                         (* 5 *)
  in
  let tbl = Cunit.Reconv.analyze p in
  let t = Hashtbl.find tbl "main" in
  Alcotest.(check (option int)) "if without else" (Some 5)
    (Cunit.Reconv.reconvergence_point t 3);
  Alcotest.(check (list int)) "only the then-arm is control-dependent" [ 4 ]
    (Cunit.Reconv.control_dependent_lines t 3)

let test_weight_positive () =
  let _, res = build Helpers.fig34 in
  List.iter
    (fun (cu : Cunit.Cu.t) ->
      Alcotest.(check bool) "positive weight" true (cu.Cunit.Cu.weight > 0))
    res.TD.cus

let qcheck_partition_covers_items =
  let open QCheck in
  Test.make ~name:"top-down CUs partition each region's statements" ~count:80
    Helpers.Gen.arbitrary_program (fun p ->
      let st = Static.analyze p in
      let res = TD.build st in
      Array.to_list st.Static.regions
      |> List.for_all (fun (r : Static.region) ->
             let cus = TD.cus_of_region res r.Static.id in
             let covered = Hashtbl.create 16 in
             List.iter
               (fun (cu : Cunit.Cu.t) ->
                 Cunit.Cu.SS.iter
                   (fun l ->
                     if Hashtbl.mem covered l then raise Exit
                     else Hashtbl.replace covered l ())
                   cu.Cunit.Cu.lines)
               cus;
             (* every direct statement line of the region is covered *)
             List.for_all
               (fun (s : Ast.stmt) -> Hashtbl.mem covered (string_of_int s.Ast.line))
               r.Static.stmts))

let tests =
  [ Alcotest.test_case "Fig 3.4 single CU" `Quick test_fig34_single_cu;
    Alcotest.test_case "Fig 3.4b two CUs" `Quick test_fig34b_two_cus;
    Alcotest.test_case "params and ret (§3.2.5)" `Quick test_function_params_and_ret;
    Alcotest.test_case "loop index rule (§3.2.5)" `Quick test_loop_index_rule;
    Alcotest.test_case "region boundaries" `Quick test_nested_region_boundary;
    Alcotest.test_case "graph edge rules (Table 3.1)" `Quick test_graph_edge_rules;
    Alcotest.test_case "no INIT edges" `Quick test_graph_no_init_edges;
    Alcotest.test_case "dot rendering" `Quick test_graph_dot;
    Alcotest.test_case "Tarjan SCC" `Quick test_scc;
    Alcotest.test_case "chain contraction" `Quick test_chain_contraction;
    Alcotest.test_case "bottom-up merging" `Quick test_bottom_up;
    Alcotest.test_case "re-convergence points" `Quick test_reconvergence;
    Alcotest.test_case "re-convergence if-only" `Quick test_reconvergence_if_only;
    Alcotest.test_case "CU weights" `Quick test_weight_positive;
    QCheck_alcotest.to_alcotest qcheck_partition_covers_items ]

(* ---- final property batch ---- *)

let qcheck_cu_sets_within_globals =
  let open QCheck in
  Test.make ~name:"CU read/write sets stay within the region's globals"
    ~count:60 Helpers.Gen.arbitrary_program (fun p ->
      let st = Static.analyze p in
      let res = TD.build st in
      Array.to_list st.Static.regions
      |> List.for_all (fun (r : Static.region) ->
             let gv = TD.construction_globals st r.Static.id in
             TD.cus_of_region res r.Static.id
             |> List.for_all (fun (cu : Cunit.Cu.t) ->
                    Cunit.Cu.SS.subset cu.Cunit.Cu.read_set gv
                    && Cunit.Cu.SS.subset cu.Cunit.Cu.write_set gv)))

let qcheck_graph_edges_reference_cus =
  let open QCheck in
  Test.make ~name:"CU graph edges always reference graph members" ~count:50
    Helpers.Gen.arbitrary_program (fun p ->
      let st = Static.analyze p in
      let res = TD.build st in
      let r = Helpers.profile p in
      let g =
        Cunit.Graph.build ~cus:res.TD.cus ~deps:r.Profiler.Serial.deps ()
      in
      List.for_all
        (fun (e : Cunit.Graph.edge) ->
          Hashtbl.mem g.Cunit.Graph.index_of e.Cunit.Graph.e_from
          && Hashtbl.mem g.Cunit.Graph.index_of e.Cunit.Graph.e_to)
        g.Cunit.Graph.edges)

let tests =
  tests
  @ [ QCheck_alcotest.to_alcotest qcheck_cu_sets_within_globals;
      QCheck_alcotest.to_alcotest qcheck_graph_edges_reference_cus ]
