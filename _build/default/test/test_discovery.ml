(* Tests for parallelism discovery: loop classification against every
   workload's ground truth (the Table 4.1/4.4 machinery), SPMD/MPMD task
   detection (Tables 4.6/4.7), and the ranking metrics of §4.3. *)

module L = Discovery.Loops
module R = Workloads.Registry

let scoreable w = w.R.expected_loops <> [] && not w.R.parallel_target

let check_workload (w : R.t) () =
  let results = Workloads.Score.score_workload w in
  List.iter
    (fun (r : Workloads.Score.loop_result) ->
      if r.expected <> R.Eany then
        Alcotest.(check bool)
          (Printf.sprintf "%s loop@%d expected %s got %s" r.workload r.loop_line
             (R.expectation_to_string r.expected)
             (L.class_to_string r.got))
          true r.exact)
    results

let loop_truth_tests =
  List.concat_map
    (fun w ->
      if scoreable w then
        [ Alcotest.test_case ("ground truth: " ^ w.R.name) `Slow (check_workload w) ]
      else [])
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Apps.all @ Workloads.Numerics.all @ Workloads.Parsec.all)

let check_tasks (w : R.t) () =
  let prog = R.program w in
  let report = Discovery.Suggestion.analyze prog in
  List.iter
    (fun e ->
      let ok =
        match e with
        | R.Sforkjoin f ->
            List.exists
              (fun (s : Discovery.Suggestion.t) ->
                match s.kind with
                | Discovery.Suggestion.Sspmd { s_kind = `Recursive_forkjoin g; _ } ->
                    g = f
                | _ -> false)
              report.suggestions
        | R.Staskloop ->
            List.exists
              (fun (s : Discovery.Suggestion.t) ->
                match s.kind with
                | Discovery.Suggestion.Sspmd { s_kind = `Loop_tasks _; _ } -> true
                | _ -> false)
              report.suggestions
        | R.Smpmd k ->
            List.exists
              (fun (s : Discovery.Suggestion.t) ->
                match s.kind with
                | Discovery.Suggestion.Smpmd m -> m.Discovery.Tasks.m_width >= k
                | _ -> false)
              report.suggestions
        | R.Spipeline k ->
            List.exists
              (fun (s : Discovery.Suggestion.t) ->
                match s.kind with
                | Discovery.Suggestion.Smpmd m ->
                    List.length m.Discovery.Tasks.m_stages >= k
                | _ -> false)
              report.suggestions
      in
      Alcotest.(check bool) (w.R.name ^ " task expectation") true ok)
    w.R.expected_tasks

let task_truth_tests =
  List.concat_map
    (fun w ->
      if w.R.expected_tasks <> [] then
        [ Alcotest.test_case ("tasks: " ^ w.R.name) `Slow (check_tasks w) ]
      else [])
    (Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Parsec.all)

(* ---- targeted classification tests ---- *)

let analyze p =
  let report = Discovery.Suggestion.analyze p in
  report.Discovery.Suggestion.loops

let open_b = Mil.Builder.number

let test_doall_basic () =
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ garray "a" 64 ]
         [ func "main" [ for_ "k" (i 0) (i 64) [ seti "a" (v "k") (v "k") ] ] ])
  in
  match analyze p with
  | [ a ] -> Alcotest.(check string) "doall" "DOALL" (L.class_to_string a.L.cls)
  | _ -> Alcotest.fail "expected one loop"

let test_false_doall_blocked () =
  (* a[k] = a[k-1]: recurrence, must be sequential with the blocking dep
     reported *)
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ garray "a" 64 ]
         [ func "main"
             [ seti "a" (i 0) (i 1);
               for_ "k" (i 1) (i 64)
                 [ seti "a" (v "k") ("a".%[v "k" - i 1] + i 1) ] ] ])
  in
  match analyze p with
  | [ a ] ->
      Alcotest.(check string) "sequential" "sequential" (L.class_to_string a.L.cls);
      Alcotest.(check bool) "blocking dep reported" true (a.L.blocking <> [])
  | _ -> Alcotest.fail "expected one loop"

let test_reduction_classified () =
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ garray "a" 64 ]
         [ func "main"
             [ decl "s" (i 0);
               for_ "k" (i 0) (i 64) [ seti "a" (v "k") (v "k") ];
               for_ "k" (i 0) (i 64) [ set "s" (v "s" + "a".%[v "k"]) ] ] ])
  in
  match analyze p with
  | [ _; b ] ->
      Alcotest.(check string) "doall(reduction)" "DOALL(reduction)"
        (L.class_to_string b.L.cls);
      Alcotest.(check (list string)) "reduction var" [ "s" ]
        (List.map fst b.L.reduction_vars)
  | _ -> Alcotest.fail "expected two loops"

let test_privatizable_reported () =
  (* t written then read each iteration, declared outside: name dependence *)
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ garray "a" 64 ]
         [ func "main"
             [ decl "t" (i 0);
               for_ "k" (i 0) (i 64)
                 [ set "t" (v "k" * i 2); seti "a" (v "k") (v "t") ] ] ])
  in
  match analyze p with
  | [ a ] ->
      Alcotest.(check string) "doall" "DOALL" (L.class_to_string a.L.cls);
      Alcotest.(check (list string)) "private var" [ "t" ] a.L.private_vars
  | _ -> Alcotest.fail "expected one loop"

let test_doacross_partial () =
  (* chain on s, but the heavy a[] part of the body is iteration-independent:
     DOACROSS *)
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ garray "a" 64; gscalar "s" 0 ]
         [ func "main"
             [ for_ "k" (i 1) (i 64)
                 [ seti "a" (v "k") ((v "k" * i 17) % i 23);
                   set "s" ((v "s" * i 31) + "a".%[v "k"]) ] ] ])
  in
  match analyze p with
  | [ a ] ->
      Alcotest.(check string) "doacross" "DOACROSS" (L.class_to_string a.L.cls);
      Alcotest.(check bool) "has free CUs or multiple body CUs" true
        (a.L.free_cus > 0 || List.length a.L.body_cus > 1)
  | _ -> Alcotest.fail "expected one loop"

let test_while_cond_var_blocks () =
  (* x += step drives the while condition: never DOALL even though the update
     looks like a reduction *)
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t" ~globals:[ gscalar "x" 0 ]
         [ func "main" [ while_ (v "x" < i 50) [ set "x" (v "x" + i 3) ] ] ])
  in
  match analyze p with
  | [ a ] ->
      Alcotest.(check bool) "not parallelisable" true
        (a.L.cls = L.Sequential || a.L.cls = L.Doacross)
  | _ -> Alcotest.fail "expected one loop"

let test_zero_iteration_loops_skipped () =
  let p =
    let open Mil.Builder in
    open_b
      (program ~entry:"main" "t"
         [ func "main" [ for_ "k" (i 0) (i 0) [ set "k" (v "k") ] ] ])
  in
  Alcotest.(check int) "unexecuted loop not analysed" 0 (List.length (analyze p))

(* ---- ranking ---- *)

let test_ranking_bounds () =
  List.iter
    (fun (w : R.t) ->
      if scoreable w then begin
        let prog = R.program ~size:(max 8 (w.R.default_size / 4)) w in
        let report = Discovery.Suggestion.analyze prog in
        List.iter
          (fun (s : Discovery.Suggestion.t) ->
            let sc = s.Discovery.Suggestion.score in
            Alcotest.(check bool) "coverage in [0,1]" true
              (sc.Discovery.Ranking.coverage >= 0.0 && sc.Discovery.Ranking.coverage <= 1.0);
            Alcotest.(check bool) "local speedup >= 1" true
              (sc.Discovery.Ranking.local_speedup >= 1.0);
            Alcotest.(check bool) "imbalance in [0,1]" true
              (sc.Discovery.Ranking.imbalance >= 0.0 && sc.Discovery.Ranking.imbalance <= 1.0);
            Alcotest.(check bool) "combined rank >= ~1 for real suggestions" true
              (sc.Discovery.Ranking.combined > 0.4))
          report.suggestions
      end)
    Workloads.Textbook.all

let test_ranking_prefers_hot_loop () =
  (* In histogram the counting loop dominates; it must outrank the fill. *)
  let w = List.find (fun w -> w.R.name = "histogram") Workloads.Textbook.all in
  let report = Discovery.Suggestion.analyze (R.program w) in
  match report.Discovery.Suggestion.suggestions with
  | top :: _ -> (
      match top.Discovery.Suggestion.kind with
      | Discovery.Suggestion.Sdoall a ->
          Alcotest.(check bool) "hot loop first" true (a.L.instructions > 3000)
      | _ -> Alcotest.fail "expected a DOALL suggestion on top")
  | [] -> Alcotest.fail "no suggestions"

let test_suggestions_sorted () =
  let w = List.find (fun w -> w.R.name = "gzip") Workloads.Apps.all in
  let report = Discovery.Suggestion.analyze (R.program w) in
  let ranks =
    List.map
      (fun (s : Discovery.Suggestion.t) -> s.score.Discovery.Ranking.combined)
      report.suggestions
  in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> compare b a) ranks = ranks)

let test_render_report () =
  let w = List.hd Workloads.Textbook.all in
  let report = Discovery.Suggestion.analyze (R.program w) in
  let s = Discovery.Suggestion.render report in
  Alcotest.(check bool) "mentions suggestions" true
    (Astring_contains.contains s "suggestions")

let tests =
  [ Alcotest.test_case "DOALL basic" `Quick test_doall_basic;
    Alcotest.test_case "recurrence blocked" `Quick test_false_doall_blocked;
    Alcotest.test_case "reduction classified" `Quick test_reduction_classified;
    Alcotest.test_case "privatizable reported" `Quick test_privatizable_reported;
    Alcotest.test_case "DOACROSS partial overlap" `Quick test_doacross_partial;
    Alcotest.test_case "while cond var blocks" `Quick test_while_cond_var_blocks;
    Alcotest.test_case "zero-iteration loops" `Quick test_zero_iteration_loops_skipped;
    Alcotest.test_case "ranking bounds" `Slow test_ranking_bounds;
    Alcotest.test_case "ranking prefers hot loop" `Quick test_ranking_prefers_hot_loop;
    Alcotest.test_case "suggestions sorted" `Quick test_suggestions_sorted;
    Alcotest.test_case "render report" `Quick test_render_report ]
  @ loop_truth_tests @ task_truth_tests

(* Every bundled workload must run end-to-end through the whole pipeline at a
   reduced size — a smoke test covering the suites (splash2x in particular)
   whose programs are not loop-scored. *)
let test_every_workload_runs () =
  List.iter
    (fun (w : R.t) ->
      let size = max 6 (w.R.default_size / 8) in
      let prog = R.program ~size w in
      let report = Discovery.Suggestion.analyze prog in
      Alcotest.(check bool)
        (w.R.name ^ " profiled some accesses")
        true
        (report.Discovery.Suggestion.profile.Profiler.Serial.accesses > 0))
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
   @ Workloads.Numerics.all @ Workloads.Parsec.all)

let tests =
  tests @ [ Alcotest.test_case "every workload runs" `Slow test_every_workload_runs ]
