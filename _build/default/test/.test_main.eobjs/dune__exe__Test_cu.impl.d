test/test_cu.ml: Alcotest Array Ast Astring_contains Builder Cunit Hashtbl Helpers List Mil Profiler QCheck QCheck_alcotest Static Test
