test/test_main.ml: Alcotest Test_apps Test_cu Test_discovery Test_mil Test_profiler Test_schedule Test_sigmem Test_trace
