test/helpers.ml: Alcotest Array Ast Builder List Mil Pretty Printf Profiler QCheck String
