test/test_profiler.ml: Alcotest Astring_contains Builder Domain Filename Fun Hashtbl Helpers List Mil Printf Profiler QCheck QCheck_alcotest String Sys Test Workloads
