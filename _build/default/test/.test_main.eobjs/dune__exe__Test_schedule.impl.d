test/test_schedule.ml: Alcotest Array Cunit Discovery Gen Helpers List Mil Printf Profiler QCheck QCheck_alcotest Test Workloads
