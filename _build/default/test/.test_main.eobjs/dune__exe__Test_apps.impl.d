test/test_apps.ml: Alcotest Apps Array Astring_contains Discovery Float Helpers List Mil Printf Profiler Workloads
