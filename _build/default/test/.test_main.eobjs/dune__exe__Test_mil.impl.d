test/test_mil.ml: Alcotest Ast Astring_contains Builder Hashtbl Helpers Interp List Mil Option Pretty QCheck QCheck_alcotest Static Stdlib Test Trace
