test/test_discovery.ml: Alcotest Astring_contains Discovery List Mil Printf Profiler Workloads
