test/test_sigmem.ml: Alcotest Gen Hashtbl List Printf QCheck QCheck_alcotest Sigmem Test
