test/test_trace.ml: Alcotest Gen List QCheck QCheck_alcotest Test Trace
