(* Tests for the schedule model and dependence files added on top of the core
   pipeline: list-scheduling bounds, DOALL modeling, dynamic bottom-up CUs,
   and item-level MPMD extraction. *)

module Sch = Discovery.Schedule

let test_makespan_bounds () =
  let tasks = Sch.independent [ 10; 10; 10; 10; 10; 10; 10; 10 ] in
  let t1 = Sch.total_work tasks in
  Alcotest.(check int) "p=1 is total work" t1 (Sch.makespan ~processors:1 tasks);
  let t4 = Sch.makespan ~processors:4 tasks in
  Alcotest.(check int) "even tasks divide perfectly" (t1 / 4) t4;
  (* makespan can never beat work/p nor the longest task *)
  let uneven = Sch.independent [ 40; 1; 1; 1; 1 ] in
  let m = Sch.makespan ~processors:4 uneven in
  Alcotest.(check bool) "bounded below by longest task" true (m >= 40);
  Alcotest.(check bool) "bounded above by work" true
    (m <= Sch.total_work uneven)

let test_dag_critical_path () =
  (* chain of three: no parallelism possible *)
  let chain =
    [ { Sch.t_id = 0; t_cost = 5; t_deps = [] };
      { Sch.t_id = 1; t_cost = 5; t_deps = [ 0 ] };
      { Sch.t_id = 2; t_cost = 5; t_deps = [ 1 ] } ]
  in
  Alcotest.(check int) "chain runs sequentially" 15
    (Sch.makespan ~processors:4 chain);
  (* diamond: the two middle tasks overlap *)
  let diamond =
    [ { Sch.t_id = 0; t_cost = 5; t_deps = [] };
      { Sch.t_id = 1; t_cost = 10; t_deps = [ 0 ] };
      { Sch.t_id = 2; t_cost = 10; t_deps = [ 0 ] };
      { Sch.t_id = 3; t_cost = 5; t_deps = [ 1; 2 ] } ]
  in
  Alcotest.(check int) "diamond overlaps the middle" 20
    (Sch.makespan ~processors:2 diamond)

let test_speedup_monotone_in_processors () =
  let tasks = Sch.independent (List.init 64 (fun k -> 5 + (k mod 7))) in
  let s p = Sch.speedup ~processors:p tasks in
  Alcotest.(check bool) "more processors never hurt" true
    (s 1 <= s 2 && s 2 <= s 4 && s 4 <= s 8);
  Alcotest.(check (float 1e-9)) "one processor is 1.0" 1.0 (s 1)

let test_doall_model () =
  let sp =
    Sch.doall_speedup ~processors:4 ~iterations:1000 ~loop_instructions:100_000
      ~total_instructions:100_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "fully parallel loop near 4x (got %.2f)" sp)
    true
    (sp > 3.2 && sp <= 4.0);
  let amdahl =
    Sch.doall_speedup ~processors:4 ~iterations:1000 ~loop_instructions:50_000
      ~total_instructions:100_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "half-serial program below 2x (got %.2f)" amdahl)
    true (amdahl < 2.0);
  let tiny =
    Sch.doall_speedup ~processors:4 ~iterations:2 ~loop_instructions:100
      ~total_instructions:100 ()
  in
  Alcotest.(check bool) "two iterations cap at 2x" true (tiny <= 2.0)

let qcheck_makespan_brent =
  let open QCheck in
  Test.make ~name:"makespan respects Brent's bounds" ~count:200
    (make Gen.(pair (int_range 1 8) (list_size (int_range 1 30) (int_range 1 50))))
    (fun (p, costs) ->
      let tasks = Sch.independent costs in
      let t1 = Sch.total_work tasks in
      let tinf = List.fold_left max 0 costs in
      let tp = Sch.makespan ~processors:p tasks in
      tp >= tinf && tp >= (t1 + p - 1) / p && tp <= t1)

(* ---- dynamic bottom-up ---- *)

let test_bottom_up_dynamic () =
  let _, events = Mil.Interp.trace Helpers.fig34 in
  let d = Cunit.Bottom_up.build_dynamic events in
  Alcotest.(check bool) "operations tracked" true (d.Cunit.Bottom_up.n_ops > 5);
  let groups = Cunit.Bottom_up.dynamic_group_count d in
  Alcotest.(check bool) "merging reduced groups" true
    (groups < d.Cunit.Bottom_up.n_ops);
  Alcotest.(check bool) "fine graph has RAW edges" true
    (d.Cunit.Bottom_up.d_raw_edges <> [])

let test_bottom_up_finer_than_top_down () =
  let w = List.find (fun (w : Workloads.Registry.t) -> w.name = "CG") Workloads.Nas.all in
  let prog = Workloads.Registry.program ~size:16 w in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let _, events = Mil.Interp.trace prog in
  let fine = Cunit.Bottom_up.build_dynamic events in
  Alcotest.(check bool) "bottom-up is finer (Fig 3.7)" true
    (Cunit.Bottom_up.dynamic_group_count fine
    > List.length cures.Cunit.Top_down.cus)

(* ---- item-level MPMD ---- *)

let test_mpmd_facedetect_width () =
  let w =
    List.find (fun (w : Workloads.Registry.t) -> w.name = "facedetect")
      Workloads.Apps.all
  in
  let prog = Workloads.Registry.program ~size:100 w in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let r = Profiler.Serial.profile prog in
  let main_region = Mil.Static.func_region st "main" in
  match Discovery.Tasks.mpmd_of_region cures r.deps main_region with
  | Some m ->
      Alcotest.(check int) "Fig 4.10 width is exactly 2" 2
        m.Discovery.Tasks.m_width;
      Alcotest.(check bool) "task graph shape" true
        (m.Discovery.Tasks.m_shape = Discovery.Tasks.Taskgraph)
  | None -> Alcotest.fail "facedetect main must have MPMD structure"

let test_mpmd_ferret_pipeline () =
  let w =
    List.find (fun (w : Workloads.Registry.t) -> w.name = "ferret")
      Workloads.Parsec.all
  in
  let prog = Workloads.Registry.program ~size:20 w in
  let st = Mil.Static.analyze prog in
  let cures = Cunit.Top_down.build st in
  let r = Profiler.Serial.profile prog in
  let qloop =
    List.filter
      (fun (reg : Mil.Static.region) ->
        Mil.Static.func_of_region st reg.Mil.Static.id = "main")
      (Mil.Static.loop_regions st)
    |> List.rev |> List.hd
  in
  match Discovery.Tasks.mpmd_of_region cures r.deps qloop.Mil.Static.id with
  | Some m ->
      Alcotest.(check int) "four pipeline stages" 4
        (List.length m.Discovery.Tasks.m_stages);
      Alcotest.(check bool) "pipeline shape" true
        (m.Discovery.Tasks.m_shape = Discovery.Tasks.Pipeline)
  | None -> Alcotest.fail "ferret's query loop must be a pipeline"

(* ---- load balance ---- *)

let test_parallel_per_worker () =
  let r = Profiler.Parallel.profile ~workers:4 ~perfect:true Helpers.fig34 in
  Alcotest.(check int) "one counter per worker" 4
    (Array.length r.Profiler.Parallel.per_worker);
  Alcotest.(check int) "counters sum to total" r.Profiler.Parallel.accesses
    (Array.fold_left ( + ) 0 r.Profiler.Parallel.per_worker)

let tests =
  [ Alcotest.test_case "makespan bounds" `Quick test_makespan_bounds;
    Alcotest.test_case "DAG critical path" `Quick test_dag_critical_path;
    Alcotest.test_case "speedup monotone" `Quick test_speedup_monotone_in_processors;
    Alcotest.test_case "DOALL model" `Quick test_doall_model;
    Alcotest.test_case "bottom-up dynamic" `Quick test_bottom_up_dynamic;
    Alcotest.test_case "bottom-up finer than top-down" `Quick
      test_bottom_up_finer_than_top_down;
    Alcotest.test_case "facedetect MPMD width (Fig 4.10)" `Quick
      test_mpmd_facedetect_width;
    Alcotest.test_case "ferret pipeline stages" `Quick test_mpmd_ferret_pipeline;
    Alcotest.test_case "per-worker counters" `Quick test_parallel_per_worker;
    QCheck_alcotest.to_alcotest qcheck_makespan_brent ]
