(* Hot-path overhaul safety net: byte-identical depfile output against
   committed golden files, intern round-trips, and chunk recycling.

   The golden files pin the profiler's observable output across the interning
   / monomorphic-engine / chunk-pooling changes: any byte that moves is a
   semantic change, not an optimization. *)

module Intern = Trace.Intern
module Event = Trace.Event
module Chunk = Trace.Chunk

(* ---- golden depfile sweep ---- *)

(* A golden file "name.deps" is the serial profile of workload [name] with
   the exact (Perfect) shadow at the pinned size below and the default seed;
   "name.sig4096.deps" the same with a 4096-slot signature shadow. Serial
   only: parallel domain ids are scheduling-dependent. *)
let golden_sizes =
  [ ("histogram", 500); ("mandelbrot", 12); ("matmul", 10); ("dotprod", 800);
    ("prefix_sum", 400); ("jacobi", 100); ("gauss_seidel", 100);
    ("monte_carlo", 500); ("fib", 10); ("sort", 128); ("sparselu", 4);
    ("nqueens", 5) ]
(* Under `dune runtest` the cwd is the test directory; under
   `dune exec test/test_main.exe` it is the project root. *)
let golden_dir =
  if Sys.file_exists "golden" then "golden" else Filename.concat "test" "golden"

let golden_files () =
  Sys.readdir golden_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".deps")
  |> List.sort compare

let workload_of_file f =
  let base = Filename.chop_suffix f ".deps" in
  match Filename.extension base with
  | ".sig4096" ->
      (Filename.chop_suffix base ".sig4096",
       Profiler.Engine.Signature 4096)
  | _ -> (base, Profiler.Engine.Perfect)

let find_workload name =
  List.find_opt
    (fun (w : Workloads.Registry.t) -> w.name = name)
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
   @ Workloads.Numerics.all @ Workloads.Parsec.all)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_sweep () =
  let files = golden_files () in
  Alcotest.(check bool)
    "golden corpus present" true
    (List.length files >= 10);
  List.iter
    (fun f ->
      let name, shadow = workload_of_file f in
      match find_workload name with
      | None -> Alcotest.failf "golden %s: unknown workload %s" f name
      | Some w ->
          let size =
            match List.assoc_opt name golden_sizes with
            | Some s -> s
            | None -> w.default_size
          in
          let prog = Workloads.Registry.program ~size w in
          let r = Profiler.Serial.profile ~shadow prog in
          let got = Profiler.Depfile.render r.Profiler.Serial.deps in
          let want = read_file (Filename.concat golden_dir f) in
          Alcotest.(check string) (Printf.sprintf "depfile bytes: %s" f) want got)
    files

(* The paged (two-level) shadow is exact, like Perfect: profiling any
   workload with it must reproduce the Perfect golden files byte for byte.
   This pins all three backends to one observable output through the packed
   slot-store re-encoding. *)
let test_paged_golden_agreement () =
  golden_files ()
  |> List.filter (fun f -> workload_of_file f |> snd = Profiler.Engine.Perfect)
  |> List.iter (fun f ->
         let name, _ = workload_of_file f in
         match find_workload name with
         | None -> Alcotest.failf "golden %s: unknown workload %s" f name
         | Some w ->
             let size =
               match List.assoc_opt name golden_sizes with
               | Some s -> s
               | None -> w.default_size
             in
             let prog = Workloads.Registry.program ~size w in
             let r = Profiler.Serial.profile ~shadow:Profiler.Engine.Paged prog in
             let got = Profiler.Depfile.render r.Profiler.Serial.deps in
             let want = read_file (Filename.concat golden_dir f) in
             Alcotest.(check string)
               (Printf.sprintf "paged depfile bytes: %s" f)
               want got)

(* ---- allocation regression ---- *)

(* The zero-alloc fast path (off-heap slot store, scratch cells, closure-free
   probe loops, two-way dedup slots) must not silently regrow a per-access
   allocation: feed a pre-recorded stream through each backend and hold the
   GC minor-words delta per access under a hard cap. The cap (3.0) leaves
   room for amortized table growth (Perfect sits near 0.5); the seed engine
   burned ~14 words per access. *)
let alloc_cap = 3.0

let record_stream prog =
  let acc = ref [] in
  let _ =
    Mil.Interp.run
      ~emit:(fun ev ->
        match ev with
        | Event.Access a -> acc := a :: !acc
        | Event.Region _ -> ())
      prog
  in
  Array.of_list (List.rev !acc)

let test_alloc_regression () =
  let w =
    match find_workload "histogram" with
    | Some w -> w
    | None -> Alcotest.fail "histogram workload missing"
  in
  let stream = record_stream (Workloads.Registry.program ~size:1000 w) in
  let n = float_of_int (Array.length stream) in
  Alcotest.(check bool) "stream non-trivial" true (Array.length stream > 1000);
  List.iter
    (fun (label, shadow) ->
      (* Warm run: interning, carrier memo fills and shadow-table growth are
         one-time costs, not per-access ones. *)
      let e = Profiler.Engine.create shadow in
      Array.iter (Profiler.Engine.feed_access e) stream;
      let e = Profiler.Engine.create shadow in
      let w0 = Gc.minor_words () in
      Array.iter (Profiler.Engine.feed_access e) stream;
      let per_access = (Gc.minor_words () -. w0) /. n in
      if per_access > alloc_cap then
        Alcotest.failf "%s: %.2f minor words/access exceeds cap %.1f" label
          per_access alloc_cap)
    [ ("sig", Profiler.Engine.Signature 4096);
      ("perfect", Profiler.Engine.Perfect);
      ("paged", Profiler.Engine.Paged) ]

(* ---- interning ---- *)

let test_sym_roundtrip () =
  let names = [ "x"; "sum"; "a_rather_long_variable_name"; ""; "x" ] in
  let syms = List.map Intern.Sym.intern names in
  List.iter2
    (fun n s -> Alcotest.(check string) "name round-trip" n (Intern.Sym.name s))
    names syms;
  (* Same string -> same symbol. *)
  Alcotest.(check int) "stable intern" (List.hd syms)
    (List.nth syms 4)

let frames_of l = List.map (fun (a, b, c) -> { Event.loop_line = a; inst = b; iter = c }) l

let test_lstack_roundtrip () =
  let stacks =
    [ []; [ (3, 1, 0) ]; [ (3, 1, 4); (7, 2, 9) ];
      [ (3, 1, 4); (7, 2, 9); (11, 5, 0) ] ]
    |> List.map frames_of
  in
  List.iter
    (fun fs ->
      let id = Intern.Lstack.of_frames fs in
      Alcotest.(check int) "depth" (List.length fs) (Intern.Lstack.depth id);
      Alcotest.(check bool) "frames round-trip" true
        (Intern.Lstack.to_frames id = fs);
      (* Hash-consing: re-interning is the identity. *)
      Alcotest.(check int) "stable id" id (Intern.Lstack.of_frames fs))
    stacks;
  Alcotest.(check int) "empty is id 0" Intern.Lstack.empty
    (Intern.Lstack.of_frames [])

(* The interned carrier must agree with the reference list-based computation
   on every stack pair, including partial overlaps and depth mismatches. *)
let test_carrier_agreement () =
  let cases =
    [ ([], []);
      ([ (3, 1, 0) ], []);
      ([], [ (3, 1, 0) ]);
      ([ (3, 1, 0) ], [ (3, 1, 0) ]);         (* same iteration *)
      ([ (3, 1, 0) ], [ (3, 1, 1) ]);         (* carried by loop 3 *)
      ([ (3, 1, 0); (7, 2, 5) ], [ (3, 1, 0); (7, 2, 6) ]);  (* inner *)
      ([ (3, 1, 0); (7, 2, 5) ], [ (3, 1, 1); (7, 3, 0) ]);  (* outer *)
      ([ (3, 1, 0); (7, 2, 5) ], [ (3, 1, 0) ]);   (* sink outside inner *)
      ([ (3, 1, 0) ], [ (3, 1, 0); (7, 2, 5) ]);   (* src outside inner *)
      ([ (3, 4, 0) ], [ (3, 9, 2) ]) ]             (* distinct loop entries *)
    |> List.map (fun (a, b) -> (frames_of a, frames_of b))
  in
  List.iter
    (fun (src, snk) ->
      let expect =
        match Event.carrier ~src ~snk with
        | Some f -> f.Event.loop_line
        | None -> -1
      in
      let got =
        Intern.Lstack.carrier_code
          ~src:(Intern.Lstack.of_frames src)
          ~snk:(Intern.Lstack.of_frames snk)
      in
      Alcotest.(check int)
        (Printf.sprintf "carrier src=%d snk=%d" (List.length src)
           (List.length snk))
        expect got)
    cases

(* ---- chunk pooling ---- *)

let test_chunk_fill_reset () =
  let c = Chunk.create ~capacity:4 ~seq:7 ~dummy:(-1) () in
  Alcotest.(check bool) "fresh empty" true (Chunk.is_empty c);
  List.iter (Chunk.push c) [ 10; 20; 30; 40 ];
  Alcotest.(check bool) "full" true (Chunk.is_full c);
  Alcotest.(check int) "seq" 7 (Chunk.seq c);
  let sum = ref 0 in
  Chunk.iter (fun x -> sum := !sum + x) c;
  Alcotest.(check int) "contents" 100 !sum;
  Chunk.reset c;
  Alcotest.(check bool) "reset empties" true (Chunk.is_empty c);
  (* Default reset clears the used prefix back to the dummy. *)
  Chunk.push c 5;
  Alcotest.(check int) "refill after reset" 5 (Chunk.get c 0)

let test_chunk_no_clear_recycle () =
  let c = Chunk.create ~capacity:4 ~clear_on_reset:false ~dummy:(-1) () in
  List.iter (Chunk.push c) [ 1; 2; 3 ];
  Chunk.reset c;
  Alcotest.(check bool) "O(1) reset empties" true (Chunk.is_empty c);
  Chunk.set_seq c 42;
  (* Recycled use: overwrites see only their own pushes. *)
  List.iter (Chunk.push c) [ 7; 8 ];
  Alcotest.(check int) "recycled seq" 42 (Chunk.seq c);
  Alcotest.(check int) "recycled length" 2 (Chunk.length c);
  let xs = ref [] in
  Chunk.iter (fun x -> xs := x :: !xs) c;
  Alcotest.(check (list int)) "iter covers only the new fill" [ 8; 7 ] !xs

(* Parallel profiling with chunk recycling must agree with serial profiling
   (same merged records) — the pool must never tear or resurrect entries.
   A tiny chunk capacity maximizes recycling churn. *)
let test_pooled_parallel_equivalence () =
  let prog = Helpers.fig27 in
  let serial =
    (Profiler.Serial.profile ~shadow:Profiler.Engine.Perfect prog)
      .Profiler.Serial.deps
  in
  let par =
    (Profiler.Parallel.profile ~workers:3 ~perfect:true ~chunk_capacity:8 prog)
      .Profiler.Parallel.deps
  in
  Helpers.check_same_deps "pooled parallel differs from serial" serial par

let tests =
  [ Alcotest.test_case "golden depfile sweep byte-identical" `Slow
      test_golden_sweep;
    Alcotest.test_case "paged backend matches perfect goldens" `Slow
      test_paged_golden_agreement;
    Alcotest.test_case "per-access allocation under cap" `Quick
      test_alloc_regression;
    Alcotest.test_case "symbol intern round-trip" `Quick test_sym_roundtrip;
    Alcotest.test_case "loop-stack intern round-trip" `Quick
      test_lstack_roundtrip;
    Alcotest.test_case "interned carrier agrees with reference" `Quick
      test_carrier_agreement;
    Alcotest.test_case "chunk fill/reset/seq" `Quick test_chunk_fill_reset;
    Alcotest.test_case "chunk recycle without clearing" `Quick
      test_chunk_no_clear_recycle;
    Alcotest.test_case "pooled parallel equals serial" `Quick
      test_pooled_parallel_equivalence ]
