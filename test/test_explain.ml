(* Tests for dependence provenance (first witness + false-positive risk) and
   the per-domain timeline tracing behind `discopop explain` / `--trace`:
   serial and parallel profilers agree on every dependence's first witness
   timestamp, exact shadows report zero risk while signatures report a
   bounded positive one, and the exported Chrome trace round-trips through
   the bundled JSON parser with well-formed, monotone events. *)

module J = Obs.Json
module Dep = Profiler.Dep

(* Every test owns both global observability layers: start clean, leave
   clean, so tracing never leaks into the timing-sensitive tests. *)
let with_tracing f =
  Obs.Trace.disable ();
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ())
    f

(* --- provenance: serial vs parallel determinism --- *)

let prov_exn deps d =
  match Dep.Set_.prov deps d with
  | Some p -> p
  | None -> Alcotest.failf "dependence %s has no provenance" (Dep.to_string d)

let check_prov_deterministic name prog =
  let serial = (Profiler.Serial.profile prog).deps in
  let par = (Profiler.Parallel.profile ~workers:3 ~perfect:true prog).deps in
  Helpers.check_same_deps (name ^ ": serial vs parallel deps") serial par;
  Dep.Set_.iter
    (fun d _ ->
      let ps = prov_exn serial d and pp = prov_exn par d in
      Alcotest.(check int)
        (Printf.sprintf "%s: first witness time of %s" name (Dep.to_string d))
        ps.Dep.first_time pp.Dep.first_time;
      (* exact shadows never produce false positives *)
      Alcotest.(check (float 0.0)) "serial risk 0" 0.0 ps.Dep.risk;
      Alcotest.(check (float 0.0)) "parallel risk 0" 0.0 pp.Dep.risk)
    serial

let test_prov_deterministic () =
  check_prov_deterministic "fig27" Helpers.fig27;
  check_prov_deterministic "fig28" Helpers.fig28

let test_prov_witness_fields () =
  let deps = (Profiler.Serial.profile Helpers.fig27).deps in
  Alcotest.(check bool) "found deps" true (Dep.Set_.cardinal deps > 0);
  Dep.Set_.iter
    (fun d _ ->
      let p = prov_exn deps d in
      (* the witness is a real dynamic access: positive global timestamp,
         in-range access index *)
      Alcotest.(check bool) "time positive" true (p.Dep.first_time > 0);
      Alcotest.(check bool) "index nonneg" true (p.Dep.first_index >= 0);
      Alcotest.(check bool) "domain nonneg" true (p.Dep.witness_domain >= 0))
    deps

(* --- risk: signatures report a bounded collision proxy --- *)

let test_signature_risk_bounded () =
  let deps =
    (Profiler.Serial.profile
       ~shadow:(Profiler.Engine.Signature 64)
       Helpers.fig27)
      .deps
  in
  let max_risk = ref 0.0 in
  Dep.Set_.iter
    (fun d _ ->
      let r = Dep.Set_.risk_of deps d in
      Alcotest.(check bool) "risk in [0,1]" true (r >= 0.0 && r <= 1.0);
      if r > !max_risk then max_risk := r)
    deps;
  (* a 100-iteration loop through 64 slots must occupy some of them by the
     time the hot dependences are first witnessed *)
  Alcotest.(check bool) "some dependence carries positive risk" true
    (!max_risk > 0.0)

let test_ranked_order () =
  let deps = (Profiler.Serial.profile Helpers.fig27).deps in
  let ranked = Dep.Set_.to_ranked deps in
  Alcotest.(check int) "one row per record" (Dep.Set_.cardinal deps)
    (List.length ranked);
  let rec check = function
    | (_, c1, _) :: ((_, c2, _) :: _ as rest) ->
        Alcotest.(check bool) "counts descend" true (c1 >= c2);
        check rest
    | _ -> ()
  in
  check ranked

let test_render_explain () =
  let deps = (Profiler.Serial.profile Helpers.fig27).deps in
  let table = Profiler.Report.render_explain ~top:3 deps in
  Alcotest.(check bool) "has header" true
    (String.length table > 0 && table.[0] = '#');
  let lines =
    String.split_on_char '\n' table
    |> List.filter (fun l -> String.trim l <> "")
  in
  (* header + column line + 3 rows *)
  Alcotest.(check int) "top limits rows" 5 (List.length lines)

(* --- depfile v2: provenance persists across render/parse --- *)

let test_depfile_v2_roundtrip () =
  let deps =
    (Profiler.Serial.profile ~shadow:(Profiler.Engine.Signature 64)
       Helpers.fig27)
      .deps
  in
  let text = Profiler.Depfile.render deps in
  Alcotest.(check bool) "v2 header" true
    (String.length text > 17 && String.sub text 0 17 = "# discopop-deps v")
  ;
  let back = Profiler.Depfile.parse text in
  Helpers.check_same_deps "deps survive the file" deps back;
  Alcotest.(check int) "instance counts survive"
    (Dep.Set_.occurrences deps)
    (Dep.Set_.occurrences back);
  Dep.Set_.iter
    (fun d _ ->
      let p = prov_exn deps d and q = prov_exn back d in
      Alcotest.(check int)
        (Printf.sprintf "first_time of %s" (Dep.to_string d))
        p.Dep.first_time q.Dep.first_time;
      Alcotest.(check int) "first_index" p.Dep.first_index q.Dep.first_index;
      Alcotest.(check int) "domain" p.Dep.witness_domain q.Dep.witness_domain;
      (* risk is serialized with %.6g; compare loosely *)
      Alcotest.(check bool) "risk close" true
        (Float.abs (p.Dep.risk -. q.Dep.risk) < 1e-5))
    deps

let test_depfile_v1_compat () =
  let deps = (Profiler.Serial.profile Helpers.fig27).deps in
  (* strip header and the four provenance columns to reconstruct a v1 file *)
  let v1 =
    Profiler.Depfile.render deps
    |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | "D" :: rest when List.length rest = 13 ->
                 Some
                   ("D "
                   ^ String.concat " "
                       (List.filteri (fun k _ -> k < 9) rest))
             | _ -> Alcotest.failf "unexpected v2 line: %s" line)
    |> String.concat "\n"
  in
  let back = Profiler.Depfile.parse v1 in
  Helpers.check_same_deps "v1 lines still parse" deps back;
  Alcotest.(check int) "counts survive v1"
    (Dep.Set_.occurrences deps)
    (Dep.Set_.occurrences back);
  (* but provenance is gone: these records were never witnessed *)
  Dep.Set_.iter
    (fun d _ ->
      Alcotest.(check bool)
        (Printf.sprintf "no prov for %s" (Dep.to_string d))
        true
        (Dep.Set_.prov back d = None))
    back

(* --- tracing: export round-trips through the bundled parser --- *)

let events_of_export () =
  let doc = Obs.Trace.export () in
  match J.of_string (J.to_string doc) with
  | Error msg -> Alcotest.failf "trace export unparseable: %s" msg
  | Ok j -> (
      match J.member "traceEvents" j with
      | Some (J.List evs) -> evs
      | _ -> Alcotest.fail "no traceEvents list")

let field name ev =
  match J.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "event lacks %S" name

let str_field name ev =
  match J.get_string (field name ev) with
  | Some s -> s
  | None -> Alcotest.failf "%S not a string" name

let test_trace_roundtrip () =
  with_tracing @@ fun () ->
  Obs.Trace.set_track "test track";
  Obs.Trace.with_span "outer" (fun () -> Obs.Trace.instant "tick");
  Obs.Trace.counter "depth" 3;
  let evs = events_of_export () in
  (* metadata + B + i + E + C *)
  Alcotest.(check int) "event count" 5 (List.length evs);
  let phases = List.map (fun e -> str_field "ph" e) evs in
  List.iter
    (fun ph ->
      Alcotest.(check bool) (ph ^ " present") true (List.mem ph phases))
    [ "M"; "B"; "i"; "E"; "C" ];
  let last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      ignore (str_field "name" ev);
      (match J.get_int (field "pid" ev) with
      | Some 1 -> ()
      | _ -> Alcotest.fail "pid must be 1");
      (match J.get_int (field "tid" ev) with
      | Some t -> Alcotest.(check bool) "tid nonneg" true (t >= 0)
      | None -> Alcotest.fail "tid not an int");
      match J.get_float (field "ts" ev) with
      | Some ts ->
          (* single-domain trace: timestamps are globally monotone *)
          Alcotest.(check bool) "ts monotone" true (ts >= !last_ts);
          last_ts := ts
      | None -> Alcotest.fail "ts not a number")
    evs;
  (* the named track surfaces as a thread_name metadata record *)
  let meta = List.find (fun e -> str_field "ph" e = "M") evs in
  Alcotest.(check string) "metadata kind" "thread_name" (str_field "name" meta);
  match J.member "args" meta with
  | Some args ->
      Alcotest.(check string) "track name" "test track" (str_field "name" args)
  | None -> Alcotest.fail "thread_name lacks args"

let test_counter_events_carry_value () =
  with_tracing @@ fun () ->
  Obs.Trace.counter "queue.depth" 7;
  let evs = events_of_export () in
  let c = List.find (fun e -> str_field "ph" e = "C") evs in
  match J.member "args" c with
  | Some args -> (
      match J.get_int (field "value" args) with
      | Some v -> Alcotest.(check int) "counter value" 7 v
      | None -> Alcotest.fail "value not an int")
  | None -> Alcotest.fail "counter lacks args"

let test_span_emits_slices_without_stats () =
  (* Obs.Span.with_ must feed the timeline even when the metrics registry is
     off — --trace alone still yields phase slices. *)
  Obs.disable ();
  with_tracing @@ fun () ->
  Obs.Span.with_ ~phase:"solo" (fun () -> ());
  let phases =
    List.map (fun e -> str_field "ph" e) (events_of_export ())
  in
  Alcotest.(check bool) "B emitted" true (List.mem "B" phases);
  Alcotest.(check bool) "E emitted" true (List.mem "E" phases)

let test_parallel_trace_has_worker_tracks () =
  with_tracing @@ fun () ->
  let workers = 3 in
  let _ = Profiler.Parallel.profile ~workers ~perfect:true Helpers.fig27 in
  let evs = events_of_export () in
  let tracks =
    List.filter_map
      (fun e ->
        if str_field "ph" e = "M" then
          J.member "args" e |> Option.map (str_field "name")
        else None)
      evs
  in
  for i = 0 to workers - 1 do
    let name = Printf.sprintf "worker %d" i in
    Alcotest.(check bool) (name ^ " track present") true
      (List.mem name tracks)
  done;
  Alcotest.(check bool) "producer track present" true
    (List.mem "producer (main)" tracks)

let test_trace_disabled_and_reset () =
  Obs.Trace.disable ();
  Obs.Trace.reset ();
  Obs.Trace.instant "dropped";
  Obs.Trace.counter "dropped" 1;
  Alcotest.(check int) "disabled buffers nothing" 0 (Obs.Trace.event_count ());
  with_tracing (fun () ->
      Obs.Trace.instant "kept";
      Alcotest.(check bool) "enabled buffers" true
        (Obs.Trace.event_count () > 0));
  Alcotest.(check int) "reset empties buffers" 0 (Obs.Trace.event_count ())

let tests =
  [ Alcotest.test_case "provenance deterministic serial vs parallel" `Quick
      test_prov_deterministic;
    Alcotest.test_case "witness fields well-formed" `Quick
      test_prov_witness_fields;
    Alcotest.test_case "signature risk bounded and positive" `Quick
      test_signature_risk_bounded;
    Alcotest.test_case "ranked rows ordered by count" `Quick test_ranked_order;
    Alcotest.test_case "explain table renders" `Quick test_render_explain;
    Alcotest.test_case "depfile v2 provenance roundtrip" `Quick
      test_depfile_v2_roundtrip;
    Alcotest.test_case "depfile v1 back-compat" `Quick test_depfile_v1_compat;
    Alcotest.test_case "chrome trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "counter events carry value" `Quick
      test_counter_events_carry_value;
    Alcotest.test_case "spans trace without stats" `Quick
      test_span_emits_slices_without_stats;
    Alcotest.test_case "parallel run names worker tracks" `Quick
      test_parallel_trace_has_worker_tracks;
    Alcotest.test_case "disabled is no-op, reset empties" `Quick
      test_trace_disabled_and_reset ]
