let () =
  Alcotest.run "discopop"
    [ ("mil", Test_mil.tests);
      ("trace", Test_trace.tests);
      ("sigmem", Test_sigmem.tests);
      ("profiler", Test_profiler.tests);
      ("cu", Test_cu.tests);
      ("discovery", Test_discovery.tests);
      ("schedule", Test_schedule.tests);
      ("apps", Test_apps.tests);
      ("obs", Test_obs.tests);
      ("explain", Test_explain.tests);
      ("transform", Test_transform.tests);
      ("passes", Test_passes.tests);
      ("hotpath", Test_hotpath.tests);
      ("pipeline", Test_pipeline.tests);
      ("runtime", Test_runtime.tests);
      ("serve", Test_serve.tests) ]
