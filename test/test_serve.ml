(* Tests for discopop serve: the in-process LRU cache tier (eviction order,
   hit/miss counters, coherence with the disk tier), the HTTP daemon's
   status codes (200/400/404/405/429/504), admission control and the
   /metrics endpoint. Servers bind port 0, so tests never collide. *)

module P = Pipeline

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "discopop-test-serve.%d.%d" (Unix.getpid ()) !dir_seq)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  rm_rf d;
  d

let entry tag = (Profiler.Dep.Set_.create (), "summary " ^ tag)

(* A small program with enough dynamic statements (~15k) that the
   cooperative-cancel poll (every ~2k) fires several times per run. *)
let small_src =
  "func main() {\n  var s = 0\n  for i = 0; i < 5000; i++ {\n    s += i\n  }\n\
  \  return s\n}\n"

let parse src =
  match Mil.Parse.program src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "test program does not parse: %s" msg

(* ---- memory LRU ---- *)

let test_lru_eviction () =
  let m = P.Mem_cache.create ~capacity:2 in
  P.Mem_cache.add m "k1" (entry "1");
  P.Mem_cache.add m "k2" (entry "2");
  (* touch k1 so k2 becomes least-recently-used, then overflow *)
  ignore (P.Mem_cache.find m "k1");
  P.Mem_cache.add m "k3" (entry "3");
  Alcotest.(check int) "capacity respected" 2 (P.Mem_cache.length m);
  Alcotest.(check bool) "LRU entry evicted" true
    (P.Mem_cache.find m "k2" = None);
  Alcotest.(check bool) "recently-used entry survives" true
    (P.Mem_cache.find m "k1" <> None);
  Alcotest.(check bool) "new entry resident" true
    (P.Mem_cache.find m "k3" <> None);
  Alcotest.(check (list string)) "MRU order" [ "k3"; "k1" ]
    (P.Mem_cache.keys_mru_first m)

let test_lru_counters () =
  let m = P.Mem_cache.create ~capacity:4 in
  Alcotest.(check bool) "miss on empty" true (P.Mem_cache.find m "k" = None);
  P.Mem_cache.add m "k" (entry "k");
  Alcotest.(check bool) "hit after add" true (P.Mem_cache.find m "k" <> None);
  Alcotest.(check int) "one hit" 1 (P.Mem_cache.hits m);
  Alcotest.(check int) "one miss" 1 (P.Mem_cache.misses m)

let test_lru_capacity_zero () =
  let m = P.Mem_cache.create ~capacity:0 in
  P.Mem_cache.add m "k" (entry "k");
  Alcotest.(check int) "nothing stored" 0 (P.Mem_cache.length m);
  Alcotest.(check bool) "every lookup misses" true
    (P.Mem_cache.find m "k" = None)

(* The memory tier must stay coherent with the disk tier: a disk hit
   repopulates memory, invalidation drops exactly one key, and deleting the
   disk entry after invalidation makes the key fully uncached. *)
let test_tier_coherence () =
  let dir = fresh_dir () in
  let mem = P.Mem_cache.create ~capacity:8 in
  let prog = parse small_src in
  let config = P.Cache.default_config in
  let key = P.Cache.key config prog in
  let job = P.program_job ~cache_dir:dir ~mem ~name:"t" ~config prog in
  (match P.run_job ~cancelled:(fun () -> false) job with
  | P.Ok_ ok ->
      Alcotest.(check bool) "first run is a cache miss" false
        ok.P.jr_cache_hit
  | _ -> Alcotest.fail "job failed");
  let tier () = snd (P.lookup ~mem ~dir ~key ()) in
  Alcotest.(check bool) "answered from memory" true (tier () = P.Mem);
  P.Mem_cache.invalidate mem key;
  Alcotest.(check bool) "after invalidation: disk answers" true
    (tier () = P.Disk);
  Alcotest.(check bool) "disk hit repopulated memory" true (tier () = P.Mem);
  P.Mem_cache.invalidate mem key;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ Filename.concat dir (key ^ ".deps");
      Filename.concat dir (key ^ ".sugg") ];
  match P.lookup ~mem ~dir ~key () with
  | None, P.Uncached -> ()
  | _ -> Alcotest.fail "stale entry survived invalidation of both tiers"

(* ---- the daemon ---- *)

let with_server ?(jobs = 2) ?(queue = 8) ?(deadline = 30.0) ?cache_dir
    ?(mem = 8) ?(flight = 64) ?(slow_threshold = 0.25) f =
  let t =
    Serve.start
      { Serve.default_config with
        Serve.port = 0;
        jobs;
        queue_capacity = queue;
        deadline_s = deadline;
        cache_dir;
        mem_capacity = mem;
        profile = P.Cache.default_config;
        flight_capacity = flight;
        slow_threshold_s = slow_threshold }
  in
  Fun.protect ~finally:(fun () -> Serve.stop t) (fun () -> f t)

let ok_response = function
  | Ok (r : Serve.Client.response) -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let test_http_health_and_routing () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let r = ok_response (Serve.Client.get ~port "/health") in
  Alcotest.(check int) "health 200" 200 r.Serve.Client.status;
  Alcotest.(check string) "health body" "ok\n" r.Serve.Client.body;
  let r = ok_response (Serve.Client.get ~port "/nope") in
  Alcotest.(check int) "unknown path 404" 404 r.Serve.Client.status;
  let r = ok_response (Serve.Client.get ~port "/profile") in
  Alcotest.(check int) "GET /profile 405" 405 r.Serve.Client.status

let test_http_profile_and_cache_tiers () =
  let dir = fresh_dir () in
  with_server ~cache_dir:dir @@ fun t ->
  let port = Serve.port t in
  let post () =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=t")
  in
  let x_cache (r : Serve.Client.response) =
    Option.value ~default:"?"
      (List.assoc_opt "x-cache" r.Serve.Client.headers)
  in
  let r1 = post () in
  Alcotest.(check int) "cold 200" 200 r1.Serve.Client.status;
  Alcotest.(check string) "cold misses" "miss" (x_cache r1);
  let r2 = post () in
  Alcotest.(check int) "warm 200" 200 r2.Serve.Client.status;
  Alcotest.(check string) "warm hits memory" "mem" (x_cache r2);
  Alcotest.(check string) "answers byte-identical" r1.Serve.Client.body
    r2.Serve.Client.body;
  (* drop the memory tier: the disk entry must answer *)
  P.Mem_cache.clear (Serve.mem_cache t);
  let r3 = post () in
  Alcotest.(check string) "disk answers after LRU clear" "disk" (x_cache r3);
  (* a parse failure is the client's fault *)
  let r =
    ok_response (Serve.Client.post ~port ~body:"not MIL at all" "/profile")
  in
  Alcotest.(check int) "parse error 400" 400 r.Serve.Client.status;
  let r =
    ok_response
      (Serve.Client.post ~port ~body:small_src "/profile?shadow=bogus")
  in
  Alcotest.(check int) "bad parameter 400" 400 r.Serve.Client.status

let test_http_deadline_504 () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let r =
    ok_response
      (Serve.Client.post ~port ~body:small_src
         "/profile?name=slow&deadline=0.000001")
  in
  Alcotest.(check int) "expired deadline 504" 504 r.Serve.Client.status

let test_http_load_shed_429 () =
  with_server ~queue:0 @@ fun t ->
  let port = Serve.port t in
  let r =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile")
  in
  Alcotest.(check int) "full queue 429" 429 r.Serve.Client.status;
  Alcotest.(check (option string)) "Retry-After set" (Some "1")
    (List.assoc_opt "retry-after" r.Serve.Client.headers)

let test_http_metrics () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let _ =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=m")
  in
  let r = ok_response (Serve.Client.get ~port "/metrics") in
  Alcotest.(check int) "metrics 200" 200 r.Serve.Client.status;
  match Obs.Json.of_string r.Serve.Client.body with
  | Error msg -> Alcotest.failf "metrics is not JSON: %s" msg
  | Ok json -> (
      match Obs.Json.member "counters" json with
      | None -> Alcotest.fail "no counters section"
      | Some counters ->
          let count name =
            Option.bind (Obs.Json.member name counters) Obs.Json.get_int
          in
          Alcotest.(check bool) "serve.requests.ok counted" true
            (match count "serve.requests.ok" with
            | Some n -> n >= 1
            | None -> false);
          Alcotest.(check bool) "serve.cache.miss counted" true
            (count "serve.cache.miss" <> None))

(* Every response must carry an X-Trace-Id that resolves through GET /trace
   to that request's span tree (the Chrome Trace JSON names the phases the
   daemon promises: queue wait, parse, cache lookup, profile, render). *)
let test_http_trace_roundtrip () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let r =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=tr")
  in
  Alcotest.(check int) "profile 200" 200 r.Serve.Client.status;
  let tid =
    match List.assoc_opt "x-trace-id" r.Serve.Client.headers with
    | Some id -> id
    | None -> Alcotest.fail "no X-Trace-Id on the profile response"
  in
  let tr = ok_response (Serve.Client.get ~port ("/trace?id=" ^ tid)) in
  Alcotest.(check int) "trace 200" 200 tr.Serve.Client.status;
  (match Obs.Json.of_string tr.Serve.Client.body with
  | Error msg -> Alcotest.failf "trace is not JSON: %s" msg
  | Ok doc ->
      let names =
        match Obs.Json.member "traceEvents" doc with
        | Some (Obs.Json.List events) ->
            List.filter_map
              (fun e ->
                Option.bind (Obs.Json.member "name" e) Obs.Json.get_string)
              events
        | _ -> Alcotest.fail "trace has no traceEvents list"
      in
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span present") true
            (List.mem phase names))
        [ "queue_wait"; "serve.parse"; "serve.cache_lookup"; "profile";
          "serve.render" ]);
  let r = ok_response (Serve.Client.get ~port "/trace?id=feedfacecafe01") in
  Alcotest.(check int) "unknown id 404" 404 r.Serve.Client.status;
  let r = ok_response (Serve.Client.get ~port "/trace") in
  Alcotest.(check int) "missing id 400" 400 r.Serve.Client.status

(* GET /requests lists the flight recorder; the same record is reachable
   in-process through Serve.flight, with route/status/tier filled in. *)
let test_http_requests_endpoint () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let r =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=fr")
  in
  let tid =
    match List.assoc_opt "x-trace-id" r.Serve.Client.headers with
    | Some id -> id
    | None -> Alcotest.fail "no X-Trace-Id on the profile response"
  in
  let rr = ok_response (Serve.Client.get ~port "/requests") in
  Alcotest.(check int) "requests 200" 200 rr.Serve.Client.status;
  (match Obs.Json.of_string rr.Serve.Client.body with
  | Error msg -> Alcotest.failf "/requests is not JSON: %s" msg
  | Ok doc ->
      let recent =
        match Obs.Json.member "recent" doc with
        | Some (Obs.Json.List rs) -> rs
        | _ -> Alcotest.fail "/requests has no recent list"
      in
      let id_of r =
        Option.bind (Obs.Json.member "id" r) Obs.Json.get_string
      in
      Alcotest.(check bool) "profile request listed" true
        (List.exists (fun r -> id_of r = Some tid) recent));
  match Obs.Flight.find (Serve.flight t) tid with
  | None -> Alcotest.fail "trace id not in the flight recorder"
  | Some rec_ ->
      Alcotest.(check string) "route recorded" "POST /profile"
        rec_.Obs.Flight.fr_route;
      Alcotest.(check int) "status recorded" 200 rec_.Obs.Flight.fr_status;
      Alcotest.(check string) "cold request was a miss" "miss"
        rec_.Obs.Flight.fr_tier

(* A shed request never reaches a worker, but it still gets a trace id and
   a flight record (route "(shed)", no spans) — overload is observable. *)
let test_shed_flight_record () =
  with_server ~queue:0 @@ fun t ->
  let port = Serve.port t in
  let r =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile")
  in
  Alcotest.(check int) "shed 429" 429 r.Serve.Client.status;
  let tid =
    match List.assoc_opt "x-trace-id" r.Serve.Client.headers with
    | Some id -> id
    | None -> Alcotest.fail "shed response lacks X-Trace-Id"
  in
  match Obs.Flight.find (Serve.flight t) tid with
  | None -> Alcotest.fail "shed request not in the flight recorder"
  | Some rec_ ->
      Alcotest.(check string) "shed route" "(shed)" rec_.Obs.Flight.fr_route;
      Alcotest.(check int) "shed status" 429 rec_.Obs.Flight.fr_status;
      Alcotest.(check (list reject)) "shed record has no spans" []
        rec_.Obs.Flight.fr_spans

(* The latency split: one POST /profile bumps serve.queue_wait,
   serve.service and the combined serve.latency by exactly one each, and a
   non-profile request bumps none (the registry is global, so deltas). *)
let test_split_latency_histograms () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let hq = Obs.histogram "serve.queue_wait" in
  let hs = Obs.histogram "serve.service" in
  let hl = Obs.histogram "serve.latency" in
  let q0 = Obs.Histogram.count hq in
  let s0 = Obs.Histogram.count hs in
  let l0 = Obs.Histogram.count hl in
  let _ =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=h")
  in
  let _ = ok_response (Serve.Client.get ~port "/health") in
  Alcotest.(check int) "queue_wait observed once" (q0 + 1)
    (Obs.Histogram.count hq);
  Alcotest.(check int) "service observed once" (s0 + 1)
    (Obs.Histogram.count hs);
  Alcotest.(check int) "combined latency kept" (l0 + 1)
    (Obs.Histogram.count hl)

(* GET /metrics?format=prometheus answers the text exposition; a bogus
   format is the client's fault. *)
let test_http_metrics_prometheus () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let _ =
    ok_response (Serve.Client.post ~port ~body:small_src "/profile?name=p")
  in
  let r =
    ok_response (Serve.Client.get ~port "/metrics?format=prometheus")
  in
  Alcotest.(check int) "prometheus 200" 200 r.Serve.Client.status;
  Alcotest.(check (option string)) "prometheus content type"
    (Some "text/plain; version=0.0.4; charset=utf-8")
    (List.assoc_opt "content-type" r.Serve.Client.headers);
  let has_line prefix =
    String.split_on_char '\n' r.Serve.Client.body
    |> List.exists (fun l ->
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
  in
  Alcotest.(check bool) "ok counter exposed" true
    (has_line "serve_requests_ok_total ");
  Alcotest.(check bool) "queue_wait histogram exposed" true
    (has_line "serve_queue_wait_seconds_count ");
  Alcotest.(check bool) "service histogram exposed" true
    (has_line "serve_service_seconds_bucket{");
  let r = ok_response (Serve.Client.get ~port "/metrics?format=xml") in
  Alcotest.(check int) "unknown format 400" 400 r.Serve.Client.status

let test_http_shutdown () =
  with_server @@ fun t ->
  let port = Serve.port t in
  let r = ok_response (Serve.Client.post ~port ~body:"" "/shutdown") in
  Alcotest.(check int) "shutdown 200" 200 r.Serve.Client.status;
  (* the daemon flags itself down; Serve.stop in the finally joins it *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Serve.stopping t)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "daemon stopping" true (Serve.stopping t)

let tests =
  [ Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "LRU hit/miss counters" `Quick test_lru_counters;
    Alcotest.test_case "LRU capacity 0" `Quick test_lru_capacity_zero;
    Alcotest.test_case "mem/disk tier coherence" `Quick test_tier_coherence;
    Alcotest.test_case "HTTP health + routing" `Quick
      test_http_health_and_routing;
    Alcotest.test_case "HTTP profile + cache tiers" `Quick
      test_http_profile_and_cache_tiers;
    Alcotest.test_case "HTTP deadline 504" `Quick test_http_deadline_504;
    Alcotest.test_case "HTTP load shed 429" `Quick test_http_load_shed_429;
    Alcotest.test_case "HTTP metrics endpoint" `Quick test_http_metrics;
    Alcotest.test_case "HTTP trace id round-trip" `Quick
      test_http_trace_roundtrip;
    Alcotest.test_case "HTTP requests endpoint" `Quick
      test_http_requests_endpoint;
    Alcotest.test_case "shed requests hit the flight recorder" `Quick
      test_shed_flight_record;
    Alcotest.test_case "queue-wait/service latency split" `Quick
      test_split_latency_histograms;
    Alcotest.test_case "HTTP prometheus exposition" `Quick
      test_http_metrics_prometheus;
    Alcotest.test_case "HTTP shutdown" `Quick test_http_shutdown ]
