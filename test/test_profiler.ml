(* Tests for the profiler: Algorithm 2 semantics (Table 2.2/2.3 ground
   truth), INIT handling, loop-carried tagging, merging, lifetime analysis,
   the §2.4 skip optimization, the PET, races, the report format, and
   serial/parallel/lock-based equivalence — including property tests over
   random programs. *)

open Mil
module B = Builder
module Dep = Profiler.Dep

let has_dep deps ~sink ~dtype ~src ~var ~carried =
  List.exists
    (fun (d, _) ->
      d.Dep.sink_line = sink && d.Dep.dtype = dtype && d.Dep.src_line = src
      && d.Dep.var = var
      && (match carried with
         | None -> d.Dep.carrier = None
         | Some l -> d.Dep.carrier = Some l))
    (Dep.Set_.to_list deps)

(* Figure 2.7 / Table 2.2: the while loop's dependence set. Lines:
   1 func, 2 decl k, 3 decl sum, 4 while, 5 sum+=k*2, 6 k-=1. *)
let test_fig27_deps () =
  let r = Helpers.profile Helpers.fig27 in
  let d = r.Profiler.Serial.deps in
  (* dependence 1: WAR sum at line 5 (intra-iteration) *)
  Alcotest.(check bool) "WAR sum@5" true
    (has_dep d ~sink:5 ~dtype:Dep.War ~src:5 ~var:"sum" ~carried:None);
  (* dependence 5-8 of Table 2.2 are the loop-carried RAWs *)
  Alcotest.(check bool) "RAW k: condition reads last iteration's k" true
    (has_dep d ~sink:4 ~dtype:Dep.Raw ~src:6 ~var:"k" ~carried:(Some 4));
  Alcotest.(check bool) "RAW sum carried" true
    (has_dep d ~sink:5 ~dtype:Dep.Raw ~src:5 ~var:"sum" ~carried:(Some 4));
  Alcotest.(check bool) "RAW k carried into body" true
    (has_dep d ~sink:5 ~dtype:Dep.Raw ~src:6 ~var:"k" ~carried:(Some 4));
  Alcotest.(check bool) "RAW k self carried" true
    (has_dep d ~sink:6 ~dtype:Dep.Raw ~src:6 ~var:"k" ~carried:(Some 4));
  (* intra-iteration chain: sum@5 reads decl sum@3 on iteration 0 *)
  Alcotest.(check bool) "RAW sum from init" true
    (has_dep d ~sink:5 ~dtype:Dep.Raw ~src:3 ~var:"sum" ~carried:None);
  (* first writes are INITs *)
  Alcotest.(check bool) "INIT at decl k" true
    (has_dep d ~sink:2 ~dtype:Dep.Init ~src:0 ~var:"*" ~carried:None)

let test_rar_ignored () =
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl "x" (i 1); decl "a" (v "x"); decl "b" (v "x"); return (v "a" + v "b") ]
  in
  let r = Helpers.profile p in
  (* No dependence between the two reads of x; both RAW from the decl. *)
  Alcotest.(check bool) "no read-to-read dep" true
    (List.for_all
       (fun (d, _) ->
         not (d.Dep.dtype = Dep.Raw && d.Dep.src_line = 3 && d.Dep.var = "x"))
       (Dep.Set_.to_list r.Profiler.Serial.deps))

let test_waw_init () =
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.gscalar "x" 0 ]
      [ set "x" (i 1); set "x" (i 2); set "x" (i 3) ]
  in
  let r = Helpers.profile p in
  let d = r.Profiler.Serial.deps in
  Alcotest.(check bool) "first write is INIT" true
    (has_dep d ~sink:2 ~dtype:Dep.Init ~src:0 ~var:"*" ~carried:None);
  Alcotest.(check bool) "WAW 3<-2" true
    (has_dep d ~sink:3 ~dtype:Dep.Waw ~src:2 ~var:"x" ~carried:None);
  Alcotest.(check bool) "WAW 4<-3" true
    (has_dep d ~sink:4 ~dtype:Dep.Waw ~src:3 ~var:"x" ~carried:None)

let test_merging () =
  let r = Helpers.profile Helpers.fig27 in
  Alcotest.(check bool) "100 iterations merge into few records" true
    (Dep.Set_.cardinal r.Profiler.Serial.deps < 25);
  Alcotest.(check bool) "merging factor substantial" true
    (r.Profiler.Serial.merging_factor > 10.0)

let test_lifetime_analysis () =
  (* Block locals are recycled; without lifetime removal the recycled address
     would link iterations through a false dependence. With removal, `tmp`
     shows INIT each iteration and no carried RAW. *)
  let p =
    let open B in
    Helpers.prog_of_main
      [ for_ "k" (i 0) (i 10) [ decl "tmp" (v "k"); set "tmp" (v "tmp" + i 1) ] ]
  in
  let r = Helpers.profile p in
  Alcotest.(check bool) "no carried RAW on recycled local" true
    (List.for_all
       (fun (d, _) ->
         not (d.Dep.var = "tmp" && d.Dep.dtype = Dep.Raw && d.Dep.carrier <> None))
       (Dep.Set_.to_list r.Profiler.Serial.deps))

let test_loop_carried_tagging () =
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.garray "a" 8 ]
      [ for_ "s" (i 0) (i 3)
          [ for_ "k" (i 1) (i 7)
              [ seti "a" (v "k") ("a".%[v "k" - i 1] + "a".%[v "k" + i 1]) ] ] ]
  in
  let r = Helpers.profile p in
  let d = r.Profiler.Serial.deps in
  (* a[k-1] was written in the previous k-iteration: carried at the inner
     loop (line 3); a[k+1] was last written in the previous sweep: carried at
     the outer loop (line 2). *)
  Alcotest.(check bool) "carried at inner loop" true
    (List.exists
       (fun (dd, _) ->
         dd.Dep.var = "a" && dd.Dep.dtype = Dep.Raw && dd.Dep.carrier = Some 3)
       (Dep.Set_.to_list d));
  Alcotest.(check bool) "carried at outer loop" true
    (List.exists
       (fun (dd, _) ->
         dd.Dep.var = "a" && dd.Dep.dtype = Dep.Raw && dd.Dep.carrier = Some 2)
       (Dep.Set_.to_list d))

(* ---- §2.4 skipping ---- *)

let test_skip_preserves_deps () =
  List.iter
    (fun p ->
      let plain = Helpers.profile ~skip:false p in
      let skip = Helpers.profile ~skip:true p in
      Helpers.check_same_deps "skip changes deps" plain.Profiler.Serial.deps
        skip.Profiler.Serial.deps;
      Alcotest.(check bool) "something was skipped" true
        (skip.Profiler.Serial.skip_stats.Profiler.Engine.reads_skipped > 0))
    [ Helpers.fig27; Helpers.fig28; Helpers.fig34 ]

let test_skip_rates () =
  let r = Helpers.profile ~skip:true Helpers.fig27 in
  let s = r.Profiler.Serial.skip_stats in
  let open Profiler.Engine in
  Alcotest.(check bool) "most dep-leading reads skipped" true
    (s.reads_skipped * 2 > s.reads_total);
  Alcotest.(check bool) "skip classification covers all skips" true
    (s.skipped_raw = s.reads_skipped
    && s.skipped_war + s.skipped_waw >= s.writes_skipped)

let test_fig28_skip_table () =
  (* Fig 2.8 / Table 2.4-2.5: after the first two iterations the four memory
     operations on x are all skippable; only 4 distinct deps + INITs are in
     the final set. *)
  let plain = Helpers.profile ~skip:false Helpers.fig28 in
  let skip = Helpers.profile ~skip:true Helpers.fig28 in
  Helpers.check_same_deps "fig28" plain.Profiler.Serial.deps
    skip.Profiler.Serial.deps;
  let s = skip.Profiler.Serial.skip_stats in
  Alcotest.(check bool) "steady state skips reads and writes" true
    Profiler.Engine.(s.reads_skipped > 40 && s.writes_skipped > 40)

let qcheck_skip_equivalence =
  let open QCheck in
  Test.make ~name:"skip optimization never changes the dependence set"
    ~count:120 Helpers.Gen.arbitrary_program (fun p ->
      let plain = Helpers.profile ~skip:false p in
      let skip = Helpers.profile ~skip:true p in
      let fpr, fnr =
        Dep.Set_.accuracy ~truth:plain.Profiler.Serial.deps
          ~got:skip.Profiler.Serial.deps
      in
      fpr = 0.0 && fnr = 0.0)

(* ---- signature accuracy ---- *)

let test_signature_accuracy_improves_with_slots () =
  let p = Workloads.Registry.program ~size:300 (List.hd Workloads.Textbook.all) in
  let perfect = Helpers.profile ~shadow:Profiler.Engine.Perfect p in
  let err slots =
    let r = Helpers.profile ~shadow:(Profiler.Engine.Signature slots) p in
    let fpr, fnr =
      Dep.Set_.accuracy_weighted ~truth:perfect.Profiler.Serial.deps
        ~got:r.Profiler.Serial.deps
    in
    fpr +. fnr
  in
  let tiny = err 13 and big = err 1_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "tiny sig err %.3f >= big sig err %.3f" tiny big)
    true (tiny >= big);
  (* even a huge signature has a small birthday-collision probability; the
     paper's Table 2.6 shows the same sub-percent residual error — weighted
     by dynamic occurrences a rare collision is negligible *)
  Alcotest.(check bool) (Printf.sprintf "big signature err %.4f < 1%%" big) true
    (big < 0.01)

(* ---- PET ---- *)

let test_pet_structure () =
  let r = Helpers.profile Helpers.fig27 in
  let pet = r.Profiler.Serial.pet in
  let root = Profiler.Pet.node pet 0 in
  (match root.Profiler.Pet.kind with
  | Profiler.Pet.Fnode f -> Alcotest.(check string) "root is main" "main" f
  | _ -> Alcotest.fail "root not a function");
  let loops = ref [] in
  Profiler.Pet.iter
    (fun n ->
      match n.Profiler.Pet.kind with
      | Profiler.Pet.Lnode l -> loops := (l, n.Profiler.Pet.iterations) :: !loops
      | _ -> ())
    pet;
  Alcotest.(check (list (pair int int))) "one loop, 100 iterations" [ (4, 100) ]
    !loops;
  Alcotest.(check int) "instructions counted" r.Profiler.Serial.accesses
    (Profiler.Pet.total_instructions pet)

let test_pet_merges_instances () =
  let p =
    let open B in
    B.number
      (B.program ~entry:"main" "t"
         [ B.func "leaf" ~params:[ "x" ] [ return (v "x" + i 1) ];
           B.func "main"
             [ decl "s" (i 0);
               for_ "k" (i 0) (i 5) [ set "s" (call "leaf" [ v "s" ]) ];
               return (v "s") ] ])
  in
  let r = Helpers.profile p in
  let count = ref 0 in
  Profiler.Pet.iter
    (fun n ->
      match n.Profiler.Pet.kind with
      | Profiler.Pet.Fnode "leaf" ->
          incr count;
          Alcotest.(check int) "5 instances merged" 5 n.Profiler.Pet.instances
      | _ -> ())
    r.Profiler.Serial.pet;
  Alcotest.(check int) "exactly one merged node" 1 !count

(* ---- report format ---- *)

let test_report_format () =
  let r = Helpers.profile Helpers.fig27 in
  let s = Profiler.Serial.report r in
  Alcotest.(check bool) "BGN loop line" true
    (Astring_contains.contains s "1:4 BGN loop");
  Alcotest.(check bool) "END with iteration count" true
    (Astring_contains.contains s "END loop 100");
  Alcotest.(check bool) "NOM record with RAW" true
    (Astring_contains.contains s "NOM");
  Alcotest.(check bool) "INIT record" true (Astring_contains.contains s "{INIT *}")

(* ---- races (§2.3.4) ---- *)

let racy_program locked =
  (* Several increments per thread: thread termination flushes the delayed
     unlocked accesses, so a single-statement thread would never share a
     pending batch with its sibling. *)
  let open B in
  Helpers.prog_of_main ~globals:[ B.gscalar "shared" 0 ]
    [ par
        (List.init 2 (fun _ ->
             List.concat
               (List.init 3 (fun _ ->
                    if locked then
                      [ lock "m"; set "shared" (v "shared" + i 1); unlock "m" ]
                    else [ set "shared" (v "shared" + i 1) ])))) ]

let test_race_detection () =
  (* With scrambled unlocked pushes, the unlocked version must produce
     timestamp reversals on some seed; the locked version never does. *)
  let races locked seed =
    let r = Helpers.profile ~scramble_unlocked:true ~seed (racy_program locked) in
    List.length r.Profiler.Serial.races
  in
  let unlocked_total =
    List.fold_left (fun acc s -> acc + races false s) 0 [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "unlocked program exposes potential races" true
    (unlocked_total > 0);
  List.iter
    (fun s -> Alcotest.(check int) "locked program clean" 0 (races true s))
    [ 1; 2; 3; 4; 5 ]

let test_thread_ids_recorded () =
  let r = Helpers.profile (racy_program true) in
  let threads = Hashtbl.create 4 in
  Dep.Set_.iter
    (fun d _ -> Hashtbl.replace threads d.Dep.sink_thread ())
    r.Profiler.Serial.deps;
  Alcotest.(check bool) "multiple thread ids in deps" true (Hashtbl.length threads >= 2)

(* ---- parallel profiler ---- *)

let parallel_matches ~queue ~workers p =
  let serial = Helpers.profile p in
  let par =
    Profiler.Parallel.profile ~queue ~workers ~perfect:true p
  in
  Helpers.check_same_deps
    (Printf.sprintf "parallel(%d workers) differs from serial" workers)
    serial.Profiler.Serial.deps par.Profiler.Parallel.deps;
  Alcotest.(check int) "same access count" serial.Profiler.Serial.accesses
    par.Profiler.Parallel.accesses

let test_parallel_equivalence () =
  List.iter
    (fun p ->
      List.iter (fun w -> parallel_matches ~queue:Profiler.Parallel.Lockfree ~workers:w p) [ 1; 2; 4 ])
    [ Helpers.fig27; Helpers.fig34 ]

let test_lock_based_equivalence () =
  parallel_matches ~queue:Profiler.Parallel.Lock_based ~workers:4 Helpers.fig27

let test_parallel_on_workload () =
  let p = Workloads.Registry.program ~size:200 (List.hd Workloads.Textbook.all) in
  parallel_matches ~queue:Profiler.Parallel.Lockfree ~workers:8 p

let test_parallel_rebalancing_runs () =
  (* A heavily skewed single-address workload exercises the hot-address path;
     correctness must hold regardless of whether redistribution fired. *)
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.gscalar "hot" 0 ]
      [ for_ "k" (i 0) (i 3000) [ set "hot" (v "hot" + i 1) ] ]
  in
  parallel_matches ~queue:Profiler.Parallel.Lockfree ~workers:4 p

let qcheck_parallel_equivalence =
  let open QCheck in
  Test.make ~name:"parallel profiler equals serial on random programs"
    ~count:40 Helpers.Gen.arbitrary_program (fun p ->
      let serial = Helpers.profile p in
      let par = Profiler.Parallel.profile ~workers:3 ~perfect:true p in
      let fpr, fnr =
        Dep.Set_.accuracy ~truth:serial.Profiler.Serial.deps
          ~got:par.Profiler.Parallel.deps
      in
      fpr = 0.0 && fnr = 0.0)

(* ---- dependence files ---- *)

let test_depfile_roundtrip () =
  let r = Helpers.profile Helpers.fig27 in
  let rendered = Profiler.Depfile.render r.Profiler.Serial.deps in
  let parsed = Profiler.Depfile.parse rendered in
  Helpers.check_same_deps "depfile round trip" r.Profiler.Serial.deps parsed;
  Alcotest.(check int) "occurrences preserved"
    (Dep.Set_.occurrences r.Profiler.Serial.deps)
    (Dep.Set_.occurrences parsed);
  let s = Profiler.Depfile.measure r.Profiler.Serial.deps in
  Alcotest.(check bool) "merging shrinks the file" true
    (s.Profiler.Depfile.reduction > 5.0)

let test_depfile_disk () =
  let r = Helpers.profile Helpers.fig34 in
  let path = Filename.temp_file "discopop" ".deps" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profiler.Depfile.write path r.Profiler.Serial.deps;
      let back = Profiler.Depfile.read path in
      Helpers.check_same_deps "disk round trip" r.Profiler.Serial.deps back)

(* ---- shadow backends agree ---- *)

let test_paged_shadow_agrees () =
  List.iter
    (fun p ->
      let exact = Helpers.profile ~shadow:Profiler.Engine.Perfect p in
      let paged = Helpers.profile ~shadow:Profiler.Engine.Paged p in
      Helpers.check_same_deps "paged shadow differs from hashtable"
        exact.Profiler.Serial.deps paged.Profiler.Serial.deps)
    [ Helpers.fig27; Helpers.fig28; Helpers.fig34 ]

(* ---- lifetime analysis ablation ---- *)

let test_lifetime_off_creates_false_deps () =
  (* With scope recycling but lifetime analysis disabled, dead locals' stale
     shadow entries manufacture dependences between unrelated variables. *)
  let p =
    let open B in
    Helpers.prog_of_main
      [ for_ "k" (i 0) (i 10)
          [ decl "first" (v "k"); set "first" (v "first" + i 1) ];
        for_ "k" (i 0) (i 10)
          [ decl "second" (v "k"); set "second" (v "second" * i 2) ] ]
  in
  let on = Helpers.profile p in
  let off = Profiler.Serial.profile ~lifetime:false p in
  let cross deps =
    List.exists
      (fun (d, _) -> d.Dep.var = "first" && d.Dep.sink_line > 4)
      (Dep.Set_.to_list deps)
  in
  Alcotest.(check bool) "no cross-variable deps with lifetime on" false
    (cross on.Profiler.Serial.deps);
  Alcotest.(check bool) "stale deps appear with lifetime off" true
    (cross off.Profiler.Serial.deps)

(* ---- queues ---- *)

let test_spsc_queue () =
  let q = Profiler.Spsc_queue.create ~capacity:8 in
  Alcotest.(check bool) "empty" true (Profiler.Spsc_queue.is_empty q);
  for k = 1 to 8 do
    Alcotest.(check bool) "push" true (Profiler.Spsc_queue.try_push q k)
  done;
  Alcotest.(check bool) "full rejects" false (Profiler.Spsc_queue.try_push q 9);
  for k = 1 to 8 do
    Alcotest.(check (option int)) "fifo" (Some k) (Profiler.Spsc_queue.try_pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Profiler.Spsc_queue.try_pop q)

let test_spsc_cross_domain () =
  let q = Profiler.Spsc_queue.create ~capacity:16 in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and got = ref 0 in
        while !got < n do
          match Profiler.Spsc_queue.try_pop q with
          | Some x ->
              sum := !sum + x;
              incr got
          | None -> Domain.cpu_relax ()
        done;
        !sum)
  in
  for k = 1 to n do
    Profiler.Spsc_queue.push q k
  done;
  Alcotest.(check int) "all items transferred in order-preserving stream"
    (n * (n + 1) / 2)
    (Domain.join consumer)

let test_mpsc_queue_single () =
  let q = Profiler.Mpsc_queue.create () in
  for k = 1 to 600 do
    Profiler.Mpsc_queue.push q k
  done;
  let out = ref [] in
  let rec drain () =
    match Profiler.Mpsc_queue.try_pop q with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all items (across node boundaries)" 600
    (List.length !out);
  Alcotest.(check bool) "single-producer order preserved" true
    (List.rev !out = List.init 600 (fun k -> k + 1))

let test_mpsc_queue_multi_domain () =
  let q = Profiler.Mpsc_queue.create () in
  let producers = 4 and per = 2_000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for k = 0 to per - 1 do
              Profiler.Mpsc_queue.push q ((p * per) + k)
            done))
  in
  let seen = Hashtbl.create 1024 in
  let got = ref 0 in
  while !got < producers * per do
    match Profiler.Mpsc_queue.try_pop q with
    | Some x ->
        Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen x);
        Hashtbl.replace seen x ();
        incr got
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  Alcotest.(check int) "all items from all producers" (producers * per)
    (Hashtbl.length seen)

let tests =
  [ Alcotest.test_case "Table 2.2 dependence set" `Quick test_fig27_deps;
    Alcotest.test_case "RAR ignored" `Quick test_rar_ignored;
    Alcotest.test_case "WAW and INIT" `Quick test_waw_init;
    Alcotest.test_case "runtime merging" `Quick test_merging;
    Alcotest.test_case "variable lifetime analysis" `Quick test_lifetime_analysis;
    Alcotest.test_case "loop-carried tagging" `Quick test_loop_carried_tagging;
    Alcotest.test_case "skip preserves dep sets" `Quick test_skip_preserves_deps;
    Alcotest.test_case "skip rates" `Quick test_skip_rates;
    Alcotest.test_case "Fig 2.8 skip behaviour" `Quick test_fig28_skip_table;
    Alcotest.test_case "signature accuracy vs slots" `Quick
      test_signature_accuracy_improves_with_slots;
    Alcotest.test_case "PET structure" `Quick test_pet_structure;
    Alcotest.test_case "PET merges instances" `Quick test_pet_merges_instances;
    Alcotest.test_case "report format" `Quick test_report_format;
    Alcotest.test_case "race detection" `Quick test_race_detection;
    Alcotest.test_case "thread ids recorded" `Quick test_thread_ids_recorded;
    Alcotest.test_case "parallel == serial" `Quick test_parallel_equivalence;
    Alcotest.test_case "lock-based == serial" `Quick test_lock_based_equivalence;
    Alcotest.test_case "parallel on workload" `Quick test_parallel_on_workload;
    Alcotest.test_case "hot-address rebalancing" `Quick
      test_parallel_rebalancing_runs;
    Alcotest.test_case "depfile round trip" `Quick test_depfile_roundtrip;
    Alcotest.test_case "depfile on disk" `Quick test_depfile_disk;
    Alcotest.test_case "paged shadow agrees" `Quick test_paged_shadow_agrees;
    Alcotest.test_case "lifetime ablation" `Quick test_lifetime_off_creates_false_deps;
    Alcotest.test_case "SPSC queue" `Quick test_spsc_queue;
    Alcotest.test_case "SPSC cross-domain" `Quick test_spsc_cross_domain;
    Alcotest.test_case "MPSC queue" `Quick test_mpsc_queue_single;
    Alcotest.test_case "MPSC multi-domain" `Quick test_mpsc_queue_multi_domain;
    QCheck_alcotest.to_alcotest qcheck_skip_equivalence;
    QCheck_alcotest.to_alcotest qcheck_parallel_equivalence ]

(* ---- additional coverage ---- *)

let test_report_threads_mode () =
  let r = Helpers.profile (racy_program true) in
  let s = Profiler.Serial.report ~threads:true r in
  (* sinks carry thread ids in the |thread form (Fig 2.3) *)
  Alcotest.(check bool) "threaded sink form" true
    (Astring_contains.contains s "|1 NOM" || Astring_contains.contains s "|2 NOM")

let test_depfile_rejects_garbage () =
  Alcotest.check_raises "malformed line"
    (Profiler.Depfile.Parse_error "Depfile: malformed line: D oops") (fun () ->
      ignore (Profiler.Depfile.parse "D oops"))

let test_pet_to_string () =
  let r = Helpers.profile Helpers.fig27 in
  let s = Profiler.Pet.to_string r.Profiler.Serial.pet in
  Alcotest.(check bool) "func line" true (Astring_contains.contains s "func main");
  Alcotest.(check bool) "loop with iterations" true
    (Astring_contains.contains s "100 iterations")

let test_engine_word_footprint_grows () =
  let small = Helpers.profile ~shadow:(Profiler.Engine.Signature 100) Helpers.fig27 in
  let big = Helpers.profile ~shadow:(Profiler.Engine.Signature 100_000) Helpers.fig27 in
  Alcotest.(check bool) "footprint scales with slots" true
    (big.Profiler.Serial.footprint_words > small.Profiler.Serial.footprint_words)

let tests =
  tests
  @ [ Alcotest.test_case "report threads mode" `Quick test_report_threads_mode;
      Alcotest.test_case "depfile rejects garbage" `Quick test_depfile_rejects_garbage;
      Alcotest.test_case "PET rendering" `Quick test_pet_to_string;
      Alcotest.test_case "footprint scales" `Quick test_engine_word_footprint_grows ]

(* ---- final property batch ---- *)

let qcheck_huge_signature_matches_perfect =
  let open QCheck in
  Test.make ~name:"a huge signature is occurrence-indistinguishable from exact"
    ~count:60 Helpers.Gen.arbitrary_program (fun p ->
      let exact = Helpers.profile ~shadow:Profiler.Engine.Perfect p in
      let sig_ =
        Helpers.profile ~shadow:(Profiler.Engine.Signature 4_000_000) p
      in
      let fpr, fnr =
        Dep.Set_.accuracy_weighted ~truth:exact.Profiler.Serial.deps
          ~got:sig_.Profiler.Serial.deps
      in
      fpr < 0.001 && fnr < 0.001)

let qcheck_report_renders =
  let open QCheck in
  Test.make ~name:"report rendering is total on random programs" ~count:80
    Helpers.Gen.arbitrary_program (fun p ->
      let r = Helpers.profile p in
      (* a program that only reads pre-initialised globals legitimately has
         an empty dependence report *)
      (String.length (Profiler.Serial.report r) > 0
      || Dep.Set_.cardinal r.Profiler.Serial.deps = 0)
      && String.length (Profiler.Pet.to_string r.Profiler.Serial.pet) > 0)

let qcheck_depfile_roundtrip_random =
  let open QCheck in
  Test.make ~name:"depfile round-trips random programs" ~count:60
    Helpers.Gen.arbitrary_program (fun p ->
      let r = Helpers.profile p in
      let back = Profiler.Depfile.parse (Profiler.Depfile.render r.Profiler.Serial.deps) in
      Dep.Set_.accuracy ~truth:r.Profiler.Serial.deps ~got:back = (0.0, 0.0)
      && Dep.Set_.occurrences back = Dep.Set_.occurrences r.Profiler.Serial.deps)

let tests =
  tests
  @ [ QCheck_alcotest.to_alcotest qcheck_huge_signature_matches_perfect;
      QCheck_alcotest.to_alcotest qcheck_report_renders;
      QCheck_alcotest.to_alcotest qcheck_depfile_roundtrip_random ]
